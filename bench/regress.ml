(* Perf-regression gate (`make perf-regress`): measure a fresh perf point
   with the same kernel as the perf experiment (Perf_common) and compare it
   against the committed baseline BENCH_perf.json with per-metric
   thresholds. Every run appends one JSONL line to a trajectory history, so
   drift is visible over time, not just run-to-run.

   Checks:
     - absolute: the predecoded path must not be slower than
       decode-per-step (speedup >= 1.0) — same invariant as perf-smoke —
       and the tier-2 block engine must not be slower than the predecoded
       dispatch loop (speedup_block >= 1.0);
     - relative: fresh predecode speedup >= baseline speedup * (1 - TOL),
       and likewise for the tier-2 speedup when the baseline has one
       (TOL defaults to 0.12; a seeded >=20% throughput regression — see
       EEL_PERF_HANDICAP in Perf_common — must fail);
     - informational: absolute MIPS is machine-dependent, so a large drop
       (>50% below baseline) only warns;
     - scaling: per-domain speedup_vs_1 within 25% of the baseline point,
       skipped for points tagged "contended": true (measured with more
       domains than cores: GC-handshake slowdown, not regression), on
       1-core machines, and under EEL_REGRESS_SCALING=skip.

   Environment: EEL_PERF_BASELINE (default BENCH_perf.json),
   EEL_REGRESS_TOL, EEL_REGRESS_SCALING=skip, EEL_PERF_HISTORY (default
   _build/perf-history.jsonl), plus Perf_common's EEL_PERF_BUDGET /
   EEL_PERF_HANDICAP. `regress --write-baseline FILE` measures and writes
   a fresh baseline instead of comparing (the gate's tests use it to
   compare same-budget measurements on the same machine). *)

module Json = Eel_obs.Json

let fail_usage () =
  prerr_endline "usage: regress [--write-baseline FILE]";
  exit 2

let getenv_f name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

(* --- baseline parsing ------------------------------------------------ *)

type base_point = { bp_jobs : int; bp_speedup : float; bp_contended : bool }

type baseline = {
  b_cores : int;
  b_speedup : float;
  b_speedup_block : float option;
      (** tier-2 vs predecode; None in pre-tier-2 baselines *)
  b_mips_on : float;
  b_points : base_point list;
}

let num ctx = function
  | Some (Json.Num n) -> n
  | _ -> failwith ("baseline: missing number " ^ ctx)

let parse_baseline src =
  match Json.parse src with
  | Error m -> failwith ("baseline: not valid JSON: " ^ m)
  | Ok root ->
      let throughput =
        match Json.member "throughput" root with
        | Some t -> t
        | None -> failwith "baseline: no throughput"
      in
      let on =
        match Json.member "predecode_on" throughput with
        | Some v -> v
        | None -> failwith "baseline: no predecode_on"
      in
      let points =
        match Json.member "scaling" root with
        | Some sc -> (
            match Json.member "points" sc with
            | Some (Json.Arr ps) ->
                List.map
                  (fun p ->
                    {
                      bp_jobs = int_of_float (num "jobs" (Json.member "jobs" p));
                      bp_speedup =
                        num "speedup_vs_1" (Json.member "speedup_vs_1" p);
                      bp_contended =
                        (match Json.member "contended" p with
                        | Some (Json.Bool b) -> b
                        | _ -> false);
                    })
                  ps
            | _ -> [])
        | None -> []
      in
      {
        b_cores = int_of_float (num "cores" (Json.member "cores" root));
        b_speedup = num "speedup" (Json.member "speedup" throughput);
        b_speedup_block =
          (match Json.member "speedup_block" throughput with
          | Some (Json.Num n) -> Some n
          | _ -> None);
        b_mips_on = num "mips" (Json.member "mips" on);
        b_points = points;
      }

(* --- history --------------------------------------------------------- *)

let append_history ~pass ~baseline th =
  let path =
    match Sys.getenv_opt "EEL_PERF_HISTORY" with
    | Some p -> p
    | None -> "_build/perf-history.jsonl"
  in
  (try
     let dir = Filename.dirname path in
     if dir <> "" && dir <> "." && not (Sys.file_exists dir) then
       Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Printf.fprintf oc
      "{\"ts\": %.0f, \"speedup\": %.3f, \"speedup_block\": %.3f, \
       \"mips_on\": %.2f, \"mips_off\": %.2f, \"mips_block\": %.2f, \
       \"smoke\": %b, \"baseline\": \"%s\", \"pass\": %b}\n"
      (Unix.time ())
      (Perf_common.speedup th)
      (Perf_common.speedup_block th)
      (Perf_common.mips th th.Perf_common.th_on)
      (Perf_common.mips th th.Perf_common.th_off)
      (Perf_common.mips th th.Perf_common.th_block)
      (Perf_common.smoke ()) baseline pass;
    close_out oc
  with Sys_error m -> Printf.eprintf "regress: history append failed: %s\n" m

(* --- main ------------------------------------------------------------ *)

let () =
  let write_baseline = ref "" in
  (match Array.to_list Sys.argv with
  | [ _ ] -> ()
  | [ _; "--write-baseline"; f ] -> write_baseline := f
  | _ -> fail_usage ());
  let smoke = Perf_common.smoke () in
  if !write_baseline <> "" then begin
    let th = Perf_common.measure_throughput ~smoke () in
    (* scaling points are optional in a baseline; a gate run against one
       without them just skips the scaling checks *)
    let sc =
      {
        Perf_common.sc_sweep_jobs = 0;
        sc_fuel = 0;
        sc_cores = Domain.recommended_domain_count ();
        sc_points = [];
      }
    in
    let oc = open_out !write_baseline in
    output_string oc
      (Perf_common.trajectory_json ~cores:sc.Perf_common.sc_cores ~smoke th sc);
    close_out oc;
    Printf.printf "regress: wrote baseline %s (speedup %.2fx)\n"
      !write_baseline (Perf_common.speedup th);
    exit 0
  end;
  let baseline_path =
    match Sys.getenv_opt "EEL_PERF_BASELINE" with
    | Some p -> p
    | None -> "BENCH_perf.json"
  in
  let base =
    try
      let ic = open_in_bin baseline_path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse_baseline src
    with
    | Sys_error m ->
        Printf.eprintf "regress: cannot read baseline %s: %s\n" baseline_path m;
        exit 2
    | Failure m ->
        Printf.eprintf "regress: %s: %s\n" baseline_path m;
        exit 2
  in
  let tol = getenv_f "EEL_REGRESS_TOL" 0.12 in
  let failures = ref [] in
  let check name ok detail =
    Printf.printf "%-34s %s  %s\n" name (if ok then "PASS" else "FAIL") detail;
    if not ok then failures := name :: !failures
  in
  Printf.printf "perf-regress: baseline %s (cores %d), %s budget, tol %.0f%%\n"
    baseline_path base.b_cores
    (if smoke then "smoke" else "full")
    (tol *. 100.);
  let th = Perf_common.measure_throughput ~smoke () in
  let speedup = Perf_common.speedup th in
  check "predecode not slower than decode" (speedup >= 1.0)
    (Printf.sprintf "%.2fx" speedup);
  check "throughput speedup vs baseline"
    (speedup >= base.b_speedup *. (1.0 -. tol))
    (Printf.sprintf "%.2fx vs %.2fx (floor %.2fx)" speedup base.b_speedup
       (base.b_speedup *. (1.0 -. tol)));
  let sp_block = Perf_common.speedup_block th in
  check "tier-2 not slower than predecode" (sp_block >= 1.0)
    (Printf.sprintf "%.2fx" sp_block);
  (match base.b_speedup_block with
  | None ->
      Printf.printf "%-34s SKIP  baseline predates the block tier\n"
        "tier-2 speedup vs baseline"
  | Some b ->
      check "tier-2 speedup vs baseline"
        (sp_block >= b *. (1.0 -. tol))
        (Printf.sprintf "%.2fx vs %.2fx (floor %.2fx)" sp_block b
           (b *. (1.0 -. tol))));
  let mips_on = Perf_common.mips th th.Perf_common.th_on in
  if mips_on < base.b_mips_on *. 0.5 then
    Printf.printf
      "%-34s WARN  %.1f MIPS vs baseline %.1f (machine-dependent, not gated)\n"
      "absolute MIPS" mips_on base.b_mips_on;
  (* scaling: only meaningful with real cores and an uncontended baseline *)
  let cores = Domain.recommended_domain_count () in
  let skip_scaling =
    Sys.getenv_opt "EEL_REGRESS_SCALING" = Some "skip"
    || base.b_points = []
    || cores <= 1
    || base.b_cores <= 1
    || List.exists (fun p -> p.bp_contended) base.b_points
  in
  if skip_scaling then
    Printf.printf
      "%-34s SKIP  %s\n" "scaling speedup per domain count"
      (if base.b_points = [] then "baseline has no sweep points"
       else if cores <= 1 || base.b_cores <= 1 then
         "1-core run: sweep measures GC-handshake contention, not scaling"
       else if List.exists (fun p -> p.bp_contended) base.b_points then
         "baseline sweep points tagged contended"
       else "EEL_REGRESS_SCALING=skip")
  else begin
    let jobs_list =
      List.filter_map
        (fun p ->
          if (not p.bp_contended) && p.bp_jobs <= cores then Some p.bp_jobs
          else None)
        base.b_points
    in
    let sc = Perf_common.measure_scaling ~smoke ~jobs_list () in
    List.iter
      (fun (j, t) ->
        match List.find_opt (fun p -> p.bp_jobs = j) base.b_points with
        | None -> ()
        | Some p ->
            let fresh = Perf_common.point_speedup sc t in
            check
              (Printf.sprintf "scaling speedup at %d domains" j)
              (fresh >= p.bp_speedup *. 0.75)
              (Printf.sprintf "%.2fx vs %.2fx" fresh p.bp_speedup))
      sc.Perf_common.sc_points
  end;
  let pass = !failures = [] in
  append_history ~pass ~baseline:baseline_path th;
  if pass then print_endline "perf-regress: PASS"
  else begin
    Printf.printf "perf-regress: FAIL (%s)\n"
      (String.concat ", " (List.rev !failures));
    exit 1
  end
