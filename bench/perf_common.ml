(* Shared measurement kernel for the perf experiment (main.ml perf) and the
   perf-regression gate (regress.ml): both must measure the same workload
   the same way or the gate's thresholds are meaningless.

   Environment:
     EEL_PERF_BUDGET=smoke   tiny budget (CI): fewer samples, smaller loop
     EEL_PERF_HANDICAP=F     multiply the measured predecode-on time by F —
                             the gate's own tests seed a fake >=20%
                             throughput regression with F=1.35 and demand
                             the gate fail *)

module Emu = Eel_emu.Emu
module Tier2 = Eel_emu.Tier2
module Gen = Eel_workload.Gen

let smoke () = Sys.getenv_opt "EEL_PERF_BUDGET" = Some "smoke"

let handicap () =
  match Sys.getenv_opt "EEL_PERF_HANDICAP" with
  | Some s -> (
      match float_of_string_opt s with Some f when f > 0. -> f | _ -> 1.0)
  | None -> 1.0

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* best-of-N for single-threaded throughput: on a shared/1-core box the
   median still carries interference from neighbours, and the gate's
   tolerance has to cover that noise twice (baseline run + gate run). The
   minimum estimates the uncontended cost and is far more reproducible. *)
let best xs = List.fold_left min infinity xs

let assemble src =
  match Eel_sparc.Asm.assemble src with
  | Ok e -> e
  | Error m -> failwith ("perf: assembly failed: " ^ m)

(* the loop-heavy throughput workload; ~33M dynamic instructions at full
   budget, ~3.3M at smoke *)
let workload ~smoke =
  assemble
    (Gen.memory_bound ~iters:(if smoke then 400 else 4000) ~size_words:1024 ())

type throughput = {
  th_insns : int;  (** dynamic instructions in one run *)
  th_on : float;  (** best seconds, predecode on (tier-1 dispatch) *)
  th_off : float;  (** best seconds, predecode off (decode-per-step) *)
  th_block : float;  (** best seconds, tier-2 block compilation *)
  th_load_on : float;
  th_load_off : float;
  th_samples : int;
  th_warmup : int;
}

let mips th t = float_of_int th.th_insns /. t /. 1e6
let speedup th = th.th_off /. th.th_on

(** tier-2 throughput gain over the tier-1 predecoded dispatch loop *)
let speedup_block th = th.th_on /. th.th_block

(* steady-state emulated MIPS across the three tiers; load time measured
   separately so the MIPS numbers are pure execution. The block tier runs
   at the production hotness threshold (Tier2.attach's default), warmup
   compilation included in its measured time — that's what a user gets. *)
let measure_throughput ?(smoke = smoke ()) () =
  let samples = if smoke then 3 else 7 in
  let warmup = if smoke then 1 else 2 in
  let exe = workload ~smoke in
  let time_run ~tier =
    let t = Emu.load ~predecode:(tier <> Tier2.Interp) exe in
    if tier = Tier2.Block then ignore (Tier2.attach t);
    let t0 = Unix.gettimeofday () in
    let r = Emu.run t in
    (Unix.gettimeofday () -. t0, r.Emu.insns)
  in
  let measure ~tier =
    for _ = 1 to warmup do
      ignore (time_run ~tier)
    done;
    let runs = List.init samples (fun _ -> time_run ~tier) in
    (best (List.map fst runs), snd (List.hd runs))
  in
  let t_on, insns = measure ~tier:Tier2.Predecode in
  let t_off, _ = measure ~tier:Tier2.Interp in
  let t_block, _ = measure ~tier:Tier2.Block in
  let time_loads ~predecode =
    let n = 10 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Emu.load ~predecode exe)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  {
    th_insns = insns;
    th_on = t_on *. handicap ();
    th_off = t_off;
    th_block = t_block;
    th_load_on = time_loads ~predecode:true;
    th_load_off = time_loads ~predecode:false;
    th_samples = samples;
    th_warmup = warmup;
  }

type scaling = {
  sc_sweep_jobs : int;  (** work items per sweep *)
  sc_fuel : int;
  sc_cores : int;  (** Domain.recommended_domain_count at measure time *)
  sc_points : (int * float) list;  (** (domains, median seconds) *)
}

let point_speedup sc t =
  match sc.sc_points with (_, t1) :: _ -> t1 /. t | [] -> 1.0

(** A sweep point measured with more domains than the machine has cores
    records GC-handshake contention, not parallel speedup — the regression
    gate must not read it as either. *)
let point_contended sc jobs = jobs > sc.sc_cores

(* the verification kernel the fuzz/diff drivers shard: identity
   round-trip per corpus program, swept across domain counts *)
let measure_scaling ?(smoke = smoke ()) ?(jobs_list = [ 1; 2; 4 ]) () =
  let mach = Eel_sparc.Mach.mach in
  let fuel = if smoke then 50_000 else 300_000 in
  let repeat = if smoke then 1 else 3 in
  let work =
    Array.of_list
      (List.concat (List.init repeat (fun _ -> Eel_diffexec.Corpus.sources)))
  in
  let sweep jobs =
    let t0 = Unix.gettimeofday () in
    let res =
      Eel_util.Pool.map ~jobs
        (fun (name, src) ->
          let exe = assemble src in
          match Eel_diffexec.Diffexec.identity_roundtrip ~fuel ~mach exe with
          | Ok _ -> true
          | Error e ->
              failwith
                ("perf sweep " ^ name ^ ": " ^ Eel_robust.Diag.error_message e))
        work
    in
    if not (Array.for_all (fun b -> b) res) then
      failwith "perf sweep: oracle refused a corpus program";
    Unix.gettimeofday () -. t0
  in
  let sweep_samples = if smoke then 1 else 3 in
  let points =
    List.map
      (fun j ->
        ignore (sweep j);
        (j, median (List.init sweep_samples (fun _ -> sweep j))))
      jobs_list
  in
  {
    sc_sweep_jobs = Array.length work;
    sc_fuel = fuel;
    sc_cores = Domain.recommended_domain_count ();
    sc_points = points;
  }

(* One trajectory point, the BENCH_perf.json schema. Sweep points run with
   more domains than cores carry "contended": true so the gate (and a
   human) knows the slowdown is GC handshakes, not a scaling regression. *)
let trajectory_json ~cores ~smoke th sc =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n\
    \  \"experiment\": \"perf\",\n\
    \  \"cores\": %d,\n\
    \  \"smoke\": %b,\n\
    \  \"methodology\": { \"statistic\": \"best-of-N throughput, median \
     scaling\", \"samples\": %d, \"warmup\": %d },\n"
    cores smoke th.th_samples th.th_warmup;
  Printf.bprintf buf
    "  \"throughput\": {\n\
    \    \"workload_insns\": %d,\n\
    \    \"predecode_on\": { \"seconds\": %.6f, \"mips\": %.2f, \
     \"load_seconds\": %.6f },\n\
    \    \"predecode_off\": { \"seconds\": %.6f, \"mips\": %.2f, \
     \"load_seconds\": %.6f },\n\
    \    \"block\": { \"seconds\": %.6f, \"mips\": %.2f },\n\
    \    \"speedup\": %.3f,\n\
    \    \"speedup_block\": %.3f\n\
    \  },\n"
    th.th_insns th.th_on (mips th th.th_on) th.th_load_on th.th_off
    (mips th th.th_off) th.th_load_off th.th_block (mips th th.th_block)
    (speedup th) (speedup_block th);
  Printf.bprintf buf
    "  \"scaling\": { \"sweep_jobs\": %d, \"fuel\": %d, \"points\": [%s] }\n}\n"
    sc.sc_sweep_jobs sc.sc_fuel
    (String.concat ", "
       (List.map
          (fun (j, t) ->
            Printf.sprintf
              "{ \"jobs\": %d, \"seconds\": %.6f, \"speedup_vs_1\": %.3f%s }"
              j t (point_speedup sc t)
              (if point_contended sc j then ", \"contended\": true" else ""))
          sc.sc_points));
  Buffer.contents buf
