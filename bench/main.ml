(* The experiment harness: regenerates every quantitative claim of the
   paper's evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md
   for paper-vs-measured numbers).

     E1 (Table 1)  qpt vs qpt2 tool cost
     E2 (§3.3)     indirect-jump analyzability, gcc vs sunpro styles
     E3 (§3.3)     uneditable blocks and edges (paper: 15-20%)
     E4 (§5)       CFG block counts vs old-style blocks
     E5 (§3.4)     instruction sharing (paper: ~4x fewer objects)
     E6 (§5)       Active Memory slowdown (paper: 2-7x)
     E7 (§4)       spawn description vs generated vs handwritten lines
     E8 (§5)       allocated objects, EEL tool vs ad-hoc tool
     ablations     delay-slot refolding, slicing, span limits, scavenging

   Wall-clock timings use Bechamel (one Test per timed table); counts come
   from the emulator and EEL's allocation statistics.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- e2 *)

module Sef = Eel_sef.Sef
module E = Eel.Executable
module C = Eel.Cfg
module Emu = Eel_emu.Emu
module Gen = Eel_workload.Gen
module Qpt2 = Eel_tools.Qpt2
module Oldqpt = Eel_tools.Oldqpt
module Amemory = Eel_tools.Amemory

let mach = Eel_sparc.Mach.mach

let assemble src =
  match Eel_sparc.Asm.assemble src with
  | Ok e -> e
  | Error m -> failwith ("bench: assembly failed: " ^ m)

let spim_like = lazy (assemble (Gen.spim_like ~seed:7 ~routines:120 ()))

let check_same_output exe edited =
  let a, _ = Emu.run_exe exe in
  let b, _ = Emu.run_exe edited in
  if a.Emu.out <> b.Emu.out then failwith "bench: edited output diverged";
  (a, b)

(* ---------------------------------------------------------------- *)
(* Bechamel glue: estimated ns/run for a thunk                       *)
(* ---------------------------------------------------------------- *)

let ols =
  Bechamel.Analyze.ols ~r_square:false ~bootstrap:0
    ~predictors:[| Bechamel.Measure.run |]

let measure_ns ?(quota = 1.0) name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> acc)
    res nan

let ms ns = ns /. 1e6

(* ---------------------------------------------------------------- *)
(* E1 — Table 1: qpt vs qpt2                                          *)
(* ---------------------------------------------------------------- *)

let e1 () =
  print_endline "=== E1 (Table 1): qpt vs qpt2 on the spim-like program ===";
  let exe = Lazy.force spim_like in
  Printf.printf "input: %d bytes of text+data, %d symbols\n"
    (Sef.image_size exe)
    (List.length exe.Sef.symbols);
  (* correctness of each tool first *)
  let old = Oldqpt.instrument exe in
  ignore (check_same_output exe old.Oldqpt.edited);
  let q2_base = Qpt2.instrument ~cache_instrs:false ~fold_delay:false mach exe in
  ignore (check_same_output exe q2_base.Qpt2.edited);
  let q2_opt = Qpt2.instrument ~cache_instrs:true ~fold_delay:true mach exe in
  ignore (check_same_output exe q2_opt.Qpt2.edited);
  (* timings *)
  let t_old = measure_ns "qpt(oldqpt)" (fun () -> ignore (Oldqpt.instrument exe)) in
  let t_q2_base =
    measure_ns "qpt2(base)" (fun () ->
        ignore (Qpt2.instrument ~cache_instrs:false ~fold_delay:false mach exe))
  in
  let t_q2_opt =
    measure_ns "qpt2(-O2)" (fun () ->
        ignore (Qpt2.instrument ~cache_instrs:true ~fold_delay:true mach exe))
  in
  (* allocation counts *)
  Eel.Stats.reset ();
  let _ = Qpt2.instrument ~cache_instrs:true ~fold_delay:true mach exe in
  let objs_opt = Eel.Stats.total_objects () in
  Eel.Stats.reset ();
  let _ = Qpt2.instrument ~cache_instrs:false ~fold_delay:false mach exe in
  let objs_base = Eel.Stats.total_objects () in
  Printf.printf "%-14s %12s %9s %10s %12s\n" "tool version" "run time" "ratio"
    "objects" "output size";
  let row name t objs size =
    Printf.printf "%-14s %9.1f ms %8.2fx %10d %11dB\n" name (ms t) (t /. t_old)
      objs size
  in
  row "qpt" t_old old.Oldqpt.objects (Sef.image_size old.Oldqpt.edited);
  row "qpt2" t_q2_base objs_base (Sef.image_size q2_base.Qpt2.edited);
  row "qpt2 -O2" t_q2_opt objs_opt (Sef.image_size q2_opt.Qpt2.edited);
  Printf.printf
    "(paper Table 1: qpt2 4.3x slower than qpt unoptimized, 2.4x at -O2)\n\n"

(* ---------------------------------------------------------------- *)
(* E2 — indirect-jump analyzability                                  *)
(* ---------------------------------------------------------------- *)

let suite style =
  List.map
    (fun seed ->
      assemble (Gen.program { Gen.default with style; seed; routines = 40 }))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let e2 () =
  print_endline "=== E2 (§3.3): indirect-jump analyzability ===";
  Printf.printf "%-22s %9s %12s %8s %14s\n" "suite" "routines" "instructions"
    "ijumps" "unanalyzable";
  List.iter
    (fun (name, style) ->
      let totals = ref (0, 0, 0, 0) in
      List.iter
        (fun exe ->
          let t = E.read_contents mach exe in
          let s = E.jump_stats t in
          let a, b, c, d = !totals in
          totals :=
            ( a + s.E.js_routines,
              b + s.E.js_instructions,
              c + s.E.js_indirect_jumps,
              d + s.E.js_unanalyzable ))
        (suite style);
      let a, b, c, d = !totals in
      Printf.printf "%-22s %9d %12d %8d %14d\n" name a b c d)
    [ ("gcc-style (SunOS)", Gen.Gcc); ("sunpro-style (Solaris)", Gen.Sunpro) ];
  Printf.printf
    "(paper: gcc 0 of 1,325 unanalyzable; sunpro 138 of 1,244, all from the\n\
    \ pop-frame-and-jump tail-call idiom -- the same idiom drives ours)\n\n"

(* ---------------------------------------------------------------- *)
(* E3 — uneditable blocks and edges                                  *)
(* ---------------------------------------------------------------- *)

let e3 () =
  print_endline "=== E3 (§3.3): uneditable blocks and edges ===";
  let stats =
    List.map
      (fun exe ->
        let t = E.read_contents mach exe in
        ignore (E.jump_stats t);
        E.cfg_stats t)
      (suite Gen.Gcc)
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
  let blocks = sum (fun s -> s.C.s_blocks) in
  let ub = sum (fun s -> s.C.s_uneditable_blocks) in
  let edges = sum (fun s -> s.C.s_edges) in
  let ue = sum (fun s -> s.C.s_uneditable_edges) in
  Printf.printf "blocks: %d of %d uneditable (%.1f%%)\n" ub blocks
    (100. *. float_of_int ub /. float_of_int blocks);
  Printf.printf "edges:  %d of %d uneditable (%.1f%%)\n" ue edges
    (100. *. float_of_int ue /. float_of_int edges);
  Printf.printf "(paper: \"although 15-20%% of edges and blocks are uneditable...\")\n\n"

(* ---------------------------------------------------------------- *)
(* E4 — CFG block counts                                             *)
(* ---------------------------------------------------------------- *)

let e4 () =
  print_endline "=== E4 (§5): EEL CFG blocks vs old-style blocks ===";
  let exe = Lazy.force spim_like in
  let old = Oldqpt.instrument exe in
  let t = E.read_contents mach exe in
  ignore (E.jump_stats t);
  let s = E.cfg_stats t in
  Printf.printf "old-style blocks (linear scan):    %d\n" old.Oldqpt.blocks_seen;
  Printf.printf "EEL CFG blocks:                    %d\n" s.C.s_blocks;
  Printf.printf "  of which delay-slot blocks:      %d\n" s.C.s_delay;
  Printf.printf "  of which entry/exit blocks:      %d\n" s.C.s_entry_exit;
  Printf.printf "  of which call-surrogate blocks:  %d\n" s.C.s_surrogate;
  Printf.printf
    "(paper: 26,912 EEL blocks vs 15,441 -- 12,774 delay, 920 entry/exit,\n\
    \ 1,942 call surrogates; EEL CFGs are larger by design)\n\n"

(* ---------------------------------------------------------------- *)
(* E5 — instruction sharing                                          *)
(* ---------------------------------------------------------------- *)

let e5 () =
  print_endline "=== E5 (§3.4): instruction sharing ===";
  let exe = Lazy.force spim_like in
  let count cache_instrs =
    Eel.Stats.reset ();
    let t = E.read_contents ~cache_instrs mach exe in
    ignore (E.jump_stats t);
    let s = Eel.Stats.snapshot () in
    (s.Eel.Stats.s_instrs_lifted, s.Eel.Stats.s_instrs_alloc)
  in
  let lifted, alloc_shared = count true in
  let _, alloc_unshared = count false in
  Printf.printf "machine words lifted:              %d\n" lifted;
  Printf.printf "instruction objects, sharing OFF:  %d\n" alloc_unshared;
  Printf.printf "instruction objects, sharing ON:   %d\n" alloc_shared;
  Printf.printf "reduction factor:                  %.1fx\n"
    (float_of_int alloc_unshared /. float_of_int alloc_shared);
  Printf.printf
    "(paper: \"typically ... reduces the number of allocated EEL\n\
    \ instructions by a factor of four\")\n\n"

(* ---------------------------------------------------------------- *)
(* E6 — Active Memory slowdown                                       *)
(* ---------------------------------------------------------------- *)

let e6 () =
  print_endline "=== E6 (§5): Active Memory cache-simulation slowdown ===";
  Printf.printf "%-24s %10s %10s %9s %8s %8s\n" "workload" "orig-insn"
    "edited" "slowdown" "refs" "misses";
  List.iter
    (fun (name, src) ->
      let exe = assemble src in
      let orig, _ = Emu.run_exe exe in
      let am = Amemory.instrument mach exe in
      let res, st = Emu.run_exe am.Amemory.edited in
      assert (orig.Emu.out = res.Emu.out);
      Printf.printf "%-24s %10d %10d %8.2fx %8d %8d\n" name orig.Emu.insns
        res.Emu.insns
        (float_of_int res.Emu.insns /. float_of_int orig.Emu.insns)
        (Amemory.refs am st.Emu.mem)
        (Amemory.misses am st.Emu.mem))
    [
      ("dense-walk", Gen.memory_bound ~iters:30 ~size_words:1024 ());
      ("hot-set", Gen.memory_bound ~iters:200 ~size_words:16 ());
      ( "mixed-mem",
        Gen.program { Gen.default with routines = 25; seed = 9; mem_frac = 0.9 } );
      ( "mixed-light",
        Gen.program { Gen.default with routines = 25; seed = 10; mem_frac = 0.2 } );
    ];
  Printf.printf "(paper: Active Memory lowered cache simulation to a 2-7x slowdown)\n\n"

(* ---------------------------------------------------------------- *)
(* E7 — spawn conciseness                                            *)
(* ---------------------------------------------------------------- *)

let loc_of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  (s, Eel_spawn.Codegen.loc_of_string s)

let find_path p = if Sys.file_exists p then p else Filename.concat ".." p

let e7 () =
  print_endline "=== E7 (§4): machine-description conciseness ===";
  let desc_path = find_path "descriptions/sparc.spawn" in
  let _, desc_loc = loc_of_file desc_path in
  let el = Eel_spawn.Smach.load_description desc_path in
  let gen_loc = Eel_spawn.Codegen.loc_of_string (Eel_spawn.Codegen.generate el) in
  let handwritten =
    List.filter_map
      (fun f ->
        let p = find_path ("lib/sparc/" ^ f) in
        if Sys.file_exists p then Some (snd (loc_of_file p)) else None)
      [ "insn.ml"; "lift.ml"; "mach.ml" ]
  in
  let hand_loc = List.fold_left ( + ) 0 handwritten in
  Printf.printf "spawn description:            %4d lines\n" desc_loc;
  Printf.printf "spawn-generated OCaml:        %4d lines\n" gen_loc;
  Printf.printf "handwritten machine layer:    %4d lines (insn+lift+mach)\n" hand_loc;
  Printf.printf
    "(paper: description 145 lines, handwritten 2,268, generated 6,178)\n\n"

(* ---------------------------------------------------------------- *)
(* E8 — allocated objects                                            *)
(* ---------------------------------------------------------------- *)

let e8 () =
  print_endline "=== E8 (§5): allocated objects, EEL tool vs ad-hoc tool ===";
  let exe = Lazy.force spim_like in
  Eel.Stats.reset ();
  let _ = Qpt2.instrument mach exe in
  let eel_objects = Eel.Stats.total_objects () in
  let old = Oldqpt.instrument exe in
  Printf.printf "qpt2 (EEL) objects:   %d  (%s)\n" eel_objects
    (Format.asprintf "%a" Eel.Stats.pp ());
  Printf.printf "qpt (ad-hoc) objects: %d\n" old.Oldqpt.objects;
  Printf.printf "ratio:                %.1fx\n"
    (float_of_int eel_objects /. float_of_int old.Oldqpt.objects);
  Printf.printf "(paper: 317,494 vs 84,655 -- about 3.8x)\n\n"

(* ---------------------------------------------------------------- *)
(* Ablations                                                         *)
(* ---------------------------------------------------------------- *)

let edited_with t = E.to_edited_sef t ()

let new_text_size (ed : Sef.t) =
  (List.find (fun (s : Sef.section) -> s.Sef.sec_name = ".eel.text") ed.Sef.sections)
    .Sef.size

let ablation_folding () =
  print_endline "--- ablation: delay-slot refolding (§3.3) ---";
  let exe = assemble (Gen.program { Gen.default with routines = 30; seed = 17 }) in
  let orig, _ = Emu.run_exe exe in
  let run fold =
    let t = E.read_contents mach exe in
    t.E.fold_delay <- fold;
    let ed = edited_with t in
    let res, _ = Emu.run_exe ed in
    assert (res.Emu.out = orig.Emu.out);
    (new_text_size ed, res.Emu.insns)
  in
  let size_f, insns_f = run true in
  let size_n, insns_n = run false in
  Printf.printf "refolding ON:  edited text %6d bytes, %7d dynamic instructions\n"
    size_f insns_f;
  Printf.printf "refolding OFF: edited text %6d bytes, %7d dynamic instructions\n"
    size_n insns_n;
  Printf.printf
    "(paper: \"duplicated delay slot instructions increase a program's\n\
    \ size and execution time, so EEL folds instructions back\")\n\n"

let ablation_slicing () =
  print_endline
    "--- ablation: dispatch-table slicing vs run-time translation (§3.3) ---";
  let exe =
    assemble (Gen.program { Gen.default with routines = 30; seed = 19; case_frac = 0.9 })
  in
  let orig, _ = Emu.run_exe exe in
  let run slicing =
    let t = E.read_contents mach exe in
    t.E.slicing <- slicing;
    let s = E.jump_stats t in
    let ed = edited_with t in
    let res, _ = Emu.run_exe ed in
    assert (res.Emu.out = orig.Emu.out);
    (s.E.js_unanalyzable, s.E.js_indirect_jumps, res.Emu.insns)
  in
  let un_on, j_on, insns_on = run true in
  let un_off, j_off, insns_off = run false in
  Printf.printf "slicing ON:  %d/%d jumps unanalyzable, %7d dynamic instructions\n"
    un_on j_on insns_on;
  Printf.printf "slicing OFF: %d/%d jumps unanalyzable, %7d dynamic instructions\n"
    un_off j_off insns_off;
  Printf.printf
    "(paper: \"EEL's slicing makes run-time translation a rare occurrence\")\n\n"

let ablation_span () =
  print_endline "--- ablation: branch-span limits force long-jump thunks (§3.3.1) ---";
  (* a routine with a far backward loop branch near its end: under an
     artificially small span the branch cannot reach the loop head and is
     re-targeted at a long-jump thunk *)
  let pad = String.concat "" (List.init 700 (fun _ -> "        add %l1, 1, %l1\n")) in
  let exe =
    assemble
      ("main:   mov 3, %l0\n        mov 0, %l1\nLtop:\n" ^ pad
     ^ "        subcc %l0, 1, %l0\n        bne Ltop\n        nop\n\
        \        mov %l1, %o0\n        ta 2\n        mov 0, %o0\n        ta 1\n")
  in
  let orig, _ = Emu.run_exe exe in
  let run max_span =
    let t = E.read_contents mach exe in
    t.E.max_span <- max_span;
    let ed = edited_with t in
    let res, _ = Emu.run_exe ed in
    assert (res.Emu.out = orig.Emu.out);
    new_text_size ed
  in
  let normal = run None in
  let tight = run (Some 2048) in
  Printf.printf "native span (+-8MB): edited text %6d bytes\n" normal;
  Printf.printf "forced 2KB span:     edited text %6d bytes (thunks added)\n" tight;
  Printf.printf
    "(paper: \"occasionally replacing these instructions by snippets\n\
    \ containing instructions with a longer span\")\n\n"

let ablation_scavenging () =
  print_endline "--- ablation: register scavenging vs forced spills (§3.5) ---";
  let exe = assemble (Gen.program { Gen.default with routines = 20; seed = 29 }) in
  let orig, _ = Emu.run_exe exe in
  let counter_snippet forbid addr =
    Eel.Snippet.of_asm mach ~forbid
      ~params:[ ("counter", addr) ]
      "sethi %hi($counter), %v0\n\
       ld [%v0 + %lo($counter)], %v1\n\
       add %v1, 1, %v1\n\
       st %v1, [%v0 + %lo($counter)]\n"
  in
  let run forbid =
    let t = E.read_contents mach exe in
    let do_routine r =
      let g = E.control_flow_graph t r in
      let ed = E.editor t r in
      List.iter
        (fun (b : C.block) ->
          if
            b.C.kind = C.Normal && b.C.reachable && b.C.editable
            && (not b.C.is_data)
            && Array.length b.C.instrs > 0
          then Eel.Edit.add_before ed b 0 (counter_snippet forbid (E.reserve_data t 4)))
        (C.blocks g);
      E.produce_edited_routine t r
    in
    List.iter do_routine (E.routines t);
    let rec drain () =
      match E.take_hidden t with
      | Some r ->
          do_routine r;
          drain ()
      | None -> ()
    in
    drain ();
    let ed = edited_with t in
    let res, _ = Emu.run_exe ed in
    assert (res.Emu.out = orig.Emu.out);
    res.Emu.insns
  in
  let scavenged = run Eel_arch.Regset.empty in
  let forced =
    run
      (Eel_arch.Regset.diff mach.Eel_arch.Machine.allocatable
         (Eel_arch.Regset.of_list [ 16; 17 ]))
  in
  Printf.printf "scavenged registers: %7d dynamic instructions\n" scavenged;
  Printf.printf "forced spills:       %7d dynamic instructions\n" forced;
  Printf.printf
    "(paper: \"EEL finds the live registers ... and assigns dead\n\
    \ registers to the snippet\"; spills are the fallback)\n\n"

(* ---------------------------------------------------------------- *)
(* Optimal profiling (Ball-Larus placement)                          *)
(* ---------------------------------------------------------------- *)

let optprof () =
  print_endline "--- qpt's optimal edge profiling (Ball-Larus placement) ---";
  let exe = assemble (Gen.program { Gen.default with routines = 30; seed = 41 }) in
  let orig, _ = Emu.run_exe exe in
  let opt = Eel_tools.Optprof.instrument mach exe in
  let ores, st = Emu.run_exe opt.Eel_tools.Optprof.edited in
  assert (ores.Emu.out = orig.Emu.out);
  ignore (Eel_tools.Optprof.edge_counts opt st.Emu.mem);
  let editable =
    List.fold_left
      (fun acc (rp : Eel_tools.Optprof.routine_prof) ->
        acc
        + List.length
            (List.filter
               (fun (re : Eel_tools.Optprof.redge) ->
                 match re.Eel_tools.Optprof.re_cfg with
                 | Some e -> e.C.e_editable
                 | None -> false)
               rp.Eel_tools.Optprof.rp_edges))
      0 opt.Eel_tools.Optprof.routines
  in
  Printf.printf "flow-graph edges profiled:        %4d\n" opt.Eel_tools.Optprof.n_edges;
  Printf.printf "editable (instrumentable) edges:  %4d\n" editable;
  Printf.printf "counters actually placed:         %4d (%.0f%% of editable)\n"
    opt.Eel_tools.Optprof.n_counters
    (100. *. float_of_int opt.Eel_tools.Optprof.n_counters /. float_of_int editable);
  Printf.printf "instrumented run: %d dynamic instructions (original %d)\n"
    ores.Emu.insns orig.Emu.insns;
  Printf.printf
    "(qpt's approach [4]: counters only off a maximum spanning tree, hot\n\
    \ loop back edges uninstrumented; the rest reconstructed by flow\n\
    \ conservation — validated against full instrumentation in the tests)\n\n"

(* ---------------------------------------------------------------- *)
(* Contract oracle: masked equivalence of real instrumented edits    *)
(* ---------------------------------------------------------------- *)

let equiv () =
  print_endline "--- contract oracle: real edits over the example corpus ---";
  Printf.printf "%-10s %10s %12s %12s %10s\n" "tool" "programs" "equivalent"
    "violations" "masked";
  (* one pool job per tool; each job assembles its own corpus so no SEF
     value is shared across domains, and rows come back (and print) in
     Toolbox.names order — identical to the serial sweep *)
  let rows =
    Eel_util.Pool.map_list
      (fun tool ->
        let corpus = Eel_diffexec.Corpus.all () in
        let total = ref 0
        and ok = ref 0
        and bad = ref 0
        and masked = ref 0 in
        List.iter
          (fun (prog, exe) ->
            incr total;
            (* measure (not bare verify) so the eel.ledger.* overhead
               accounting lands in bench-metrics.json alongside eel.equiv.* *)
            match Eel_tools.Toolbox.measure ~prog tool mach exe with
            | Error e -> failwith ("bench: " ^ Eel_robust.Diag.error_message e)
            | Ok ms ->
                let er = ms.Eel_tools.Toolbox.ms_report in
                masked := !masked + er.Eel_diffexec.Diffexec.er_masked;
                if
                  er.Eel_diffexec.Diffexec.er_report
                    .Eel_diffexec.Diffexec.rp_verdict
                  = Eel_diffexec.Diffexec.Equivalent
                then incr ok
                else incr bad)
          corpus;
        (tool, !total, !ok, !bad, !masked))
      Eel_tools.Toolbox.names
  in
  List.iter
    (fun (tool, total, ok, bad, masked) ->
      Printf.printf "%-10s %10d %12d %12d %10d\n" tool total ok bad masked)
    rows;
  Printf.printf
    "(every tool must verify masked-equivalent on every program; the\n\
    \ eel.equiv.* registry slice lands in bench-metrics.json)\n\n"

(* ---------------------------------------------------------------- *)
(* perf — predecoded execution + multicore fan-out (ISSUE 5)         *)
(* ---------------------------------------------------------------- *)

let perf_path =
  match Sys.getenv_opt "EEL_BENCH_PERF" with
  | Some p -> p
  | None -> "BENCH_perf.json"

(* The measurement kernel lives in Perf_common, shared with the regression
   gate (bench/regress.exe) so both read the same workload the same way. *)
let perf () =
  print_endline
    "=== perf: tiered execution + multicore verification fan-out ===";
  let smoke = Perf_common.smoke () in
  let th = Perf_common.measure_throughput ~smoke () in
  let speedup = Perf_common.speedup th in
  let speedup_block = Perf_common.speedup_block th in
  Printf.printf "workload: %d dynamic instructions (best of %d, %d warmup)\n"
    th.Perf_common.th_insns th.Perf_common.th_samples th.Perf_common.th_warmup;
  Printf.printf "tier interp:    %8.1f MIPS  (%.4f s)\n"
    (Perf_common.mips th th.Perf_common.th_off)
    th.Perf_common.th_off;
  Printf.printf "tier predecode: %8.1f MIPS  (%.4f s)\n"
    (Perf_common.mips th th.Perf_common.th_on)
    th.Perf_common.th_on;
  Printf.printf "tier block:     %8.1f MIPS  (%.4f s)\n"
    (Perf_common.mips th th.Perf_common.th_block)
    th.Perf_common.th_block;
  Printf.printf "throughput speedup: %.2fx predecode/interp, %.2fx \
                 block/predecode\n"
    speedup speedup_block;
  Printf.printf "load time: %.4f s predecoded vs %.4f s plain\n"
    th.Perf_common.th_load_on th.Perf_common.th_load_off;
  let sc = Perf_common.measure_scaling ~smoke () in
  let cores = sc.Perf_common.sc_cores in
  Printf.printf "verification sweep (%d jobs x identity round-trip, %d cores):\n"
    sc.Perf_common.sc_sweep_jobs cores;
  List.iter
    (fun (j, t) ->
      Printf.printf "  %d domain%s: %.4f s  (%.2fx vs 1)%s\n" j
        (if j = 1 then " " else "s")
        t
        (Perf_common.point_speedup sc t)
        (if Perf_common.point_contended sc j then "  [contended]" else ""))
    sc.Perf_common.sc_points;
  let oc = open_out perf_path in
  output_string oc (Perf_common.trajectory_json ~cores ~smoke th sc);
  close_out oc;
  Printf.printf "wrote perf trajectory to %s\n\n" perf_path;
  if smoke && speedup < 1.0 then (
    Printf.eprintf
      "perf-smoke FAILED: predecoded path slower than decode-per-step \
       (%.2fx)\n"
      speedup;
    exit 1);
  if smoke && speedup_block < 1.0 then (
    Printf.eprintf
      "perf-smoke FAILED: tier-2 block engine slower than predecoded \
       dispatch (%.2fx)\n"
      speedup_block;
    exit 1)

(* ---------------------------------------------------------------- *)
(* Experiment I: seeded-fault detection rate (ISSUE 6)               *)
(* ---------------------------------------------------------------- *)

(* The adversarial campaign as an experiment: per (tool x fault class),
   how many known-bad edits/contracts were injected and how many the
   oracle flagged. The paper never had to defend its tools against a
   lying edit; our oracle does, and this is the measurement. *)
let inject () =
  let module Fault = Eel_mutate.Fault in
  print_endline "=== Experiment I: seeded-fault detection rate ===";
  let o = Fault.campaign ~seed:42 ~budget:48 () in
  let tools = Eel_tools.Toolbox.names in
  Printf.printf "%-14s" "fault class";
  List.iter (fun t -> Printf.printf " %8s" t) tools;
  print_newline ();
  List.iter
    (fun cls ->
      Printf.printf "%-14s" (Fault.class_name cls);
      List.iter
        (fun tool ->
          match
            List.find_opt
              (fun (c : Fault.cell) ->
                c.Fault.cl_tool = tool && c.Fault.cl_class = cls)
              o.Fault.o_cells
          with
          | None -> Printf.printf " %8s" "n/a"
          | Some c ->
              Printf.printf " %8s" (if c.Fault.cl_flagged then "caught" else "MISS"))
        tools;
      print_newline ())
    Fault.all_classes;
  Printf.printf
    "detection %d/%d, %d reproducers, %d distinct hunt signatures, %d \
     crashes, clean sweep %d/%d\n\n"
    o.Fault.o_caught o.Fault.o_injected
    (List.length o.Fault.o_repros)
    o.Fault.o_hunt_distinct o.Fault.o_crashes
    (o.Fault.o_clean_total - o.Fault.o_clean_bad)
    o.Fault.o_clean_total;
  if not (Fault.passed o) then (
    print_endline "FAIL: campaign below the 100%-detection bar";
    exit 1)

(* ---------------------------------------------------------------- *)
(* serve — rewriting-as-a-service cold vs warm throughput (ISSUE 8)  *)
(* ---------------------------------------------------------------- *)

let serve_path =
  match Sys.getenv_opt "EEL_BENCH_SERVE" with
  | Some p -> p
  | None -> "BENCH_serve.json"

(* Cold: a fresh content-addressed cache directory — every job analyzes,
   instruments and verifies from scratch (plus pays the cache stores).
   Warm: a brand-new Cache.t over the same directory, as a restarted daemon
   would see it — the in-memory layer starts empty, so every hit crosses
   the durable disk layer. The gate: byte-identical responses and >=3x
   warm-over-cold throughput (the ISSUE 8 acceptance bar; the smoke budget
   keeps the corpus small and gates at a conservative 1.5x). *)
let serve () =
  let module Serve = Eel_service.Serve in
  let module SCache = Eel_service.Cache in
  print_endline "=== serve: cold vs warm throughput on the mixed job corpus ===";
  let smoke = Sys.getenv_opt "EEL_SERVE_BUDGET" = Some "smoke" in
  let count = if smoke then 24 else 100 in
  let seed = 42 in
  let batch = Serve.mixed_jobs ~count ~seed in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eel-serve-bench-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.is_directory path then (
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists dir then rm_rf dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  let run () =
    let cache = SCache.create ~dir () in
    let cfg = Serve.default_config cache in
    let t0 = Unix.gettimeofday () in
    let results = Serve.run_batch cfg batch in
    let dt = Unix.gettimeofday () -. t0 in
    (results, dt, cache)
  in
  let cold_results, cold_s, _ = run () in
  let warm_results, warm_s, warm_cache = run () in
  let edited r =
    match r.Serve.sr_outcome with
    | Ok o -> o.Serve.o_edited
    | Error m -> failwith ("bench serve: job failed: " ^ m)
  in
  (* byte-identity: the warm (cache-hit) edited image of every job must
     equal the cold (cache-miss) one *)
  List.iter2
    (fun c w ->
      if edited c <> edited w then
        failwith
          (Printf.sprintf "bench serve: cache hit diverged from miss on %s"
             c.Serve.sr_id))
    cold_results warm_results;
  let n_ok rs = List.length (List.filter Serve.ok rs) in
  let warm_cached = List.length (List.filter Serve.cached warm_results) in
  if n_ok cold_results <> count || n_ok warm_results <> count then
    failwith "bench serve: not every job came back equivalent";
  let speedup = if warm_s > 0.0 then cold_s /. warm_s else infinity in
  let rate n dt = if dt > 0.0 then float_of_int n /. dt else 0.0 in
  Printf.printf "corpus: %d jobs (6 tools x corpus + generated workloads)\n"
    count;
  Printf.printf "cold (empty cache):   %7.2f s  (%6.1f jobs/s)\n" cold_s
    (rate count cold_s);
  Printf.printf "warm (durable cache): %7.2f s  (%6.1f jobs/s, %d/%d cached)\n"
    warm_s (rate count warm_s) warm_cached count;
  Printf.printf "warm-over-cold throughput: %.1fx\n" speedup;
  Printf.printf "cache hits are byte-identical to misses on all %d jobs\n"
    count;
  let oc = open_out serve_path in
  Printf.fprintf oc
    {|{"count": %d, "seed": %d, "smoke": %b, "cold_s": %.4f, "warm_s": %.4f, "cold_jobs_per_s": %.2f, "warm_jobs_per_s": %.2f, "speedup": %.2f, "warm_cached": %d, "cache": %s}
|}
    count seed smoke cold_s warm_s (rate count cold_s) (rate count warm_s)
    speedup warm_cached
    (SCache.stats_json warm_cache);
  close_out oc;
  Printf.printf "wrote serve trajectory to %s\n\n" serve_path;
  let bar = if smoke then 1.5 else 3.0 in
  if speedup < bar then (
    Printf.eprintf "serve FAILED: warm throughput only %.2fx cold (need >= %.1fx)\n"
      speedup bar;
    exit 1)

(* ---------------------------------------------------------------- *)
(* Micro-benchmarks                                                  *)
(* ---------------------------------------------------------------- *)

let micro () =
  print_endline "=== micro-benchmarks (Bechamel) ===";
  let exe = Lazy.force spim_like in
  let text = List.hd (Sef.text_sections exe) in
  let words =
    Array.init (text.Sef.size / 4) (fun i ->
        Eel_util.Bytebuf.get32_be text.Sef.contents (4 * i))
  in
  let smach =
    lazy (Eel_spawn.Smach.mach_of_file (find_path "descriptions/sparc.spawn"))
  in
  let per_insn ns = ns /. float_of_int (Array.length words) in
  let rows =
    [
      ( "decode+lift handwritten (ns/insn)",
        true,
        fun () -> Array.iter (fun w -> ignore (mach.Eel_arch.Machine.lift w)) words );
      ( "decode+lift spawn-derived (ns/insn)",
        true,
        fun () ->
          let sm = Lazy.force smach in
          Array.iter (fun w -> ignore (sm.Eel_arch.Machine.lift w)) words );
      ("open + refine symbol table", false, fun () -> ignore (E.read_contents mach exe));
      ( "build all CFGs + slicing",
        false,
        fun () ->
          let t = E.read_contents mach exe in
          ignore (E.jump_stats t) );
      ("full qpt2 instrumentation", false, fun () -> ignore (Qpt2.instrument mach exe));
    ]
  in
  List.iter
    (fun (name, per, f) ->
      let ns = measure_ns ~quota:1.0 name f in
      if per then Printf.printf "%-38s %12.1f\n" name (per_insn ns)
      else Printf.printf "%-38s %12.2f ms\n" name (ms ns))
    rows;
  print_newline ()

(* ---------------------------------------------------------------- *)
(* Per-experiment observability (ISSUE 2): every experiment runs     *)
(* under a fresh tracer and a reset metrics registry; phase-level    *)
(* span totals plus the registry snapshot are persisted as JSON next *)
(* to the Bechamel numbers, so BENCH_*.json trajectories gain the    *)
(* paper's Table 1-style per-phase cost breakdown.                   *)
(* ---------------------------------------------------------------- *)

module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

type experiment_obs = {
  x_name : string;
  x_phases : (string * float * int) list;  (** span name, total µs, count *)
  x_metrics : (string * Metrics.value) list;
}

let observations : experiment_obs list ref = ref []

let observed (name, f) =
  ( name,
    fun () ->
      Metrics.reset ();
      Eel.Stats.reset ();
      let tr = Trace.create () in
      Fun.protect
        ~finally:(fun () ->
          observations :=
            {
              x_name = name;
              x_phases = Trace.totals tr;
              x_metrics = Metrics.snapshot ();
            }
            :: !observations)
        (fun () -> Trace.with_current tr f) )

let metrics_path =
  match Sys.getenv_opt "EEL_BENCH_METRICS" with
  | Some p -> p
  | None -> "bench-metrics.json"

let write_observations () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"experiments\":[";
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n{\"name\":\"%s\",\"phases\":[" (Trace.json_escape x.x_name));
      List.iteri
        (fun j (span, total_us, count) ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf
            (Printf.sprintf "{\"span\":\"%s\",\"total_us\":%.1f,\"count\":%d}"
               (Trace.json_escape span) total_us count))
        x.x_phases;
      Buffer.add_string buf "],\"metrics\":{";
      List.iteri
        (fun j (name, v) ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":%s" (Trace.json_escape name)
               (Metrics.value_to_json v)))
        x.x_metrics;
      Buffer.add_string buf "}}")
    (List.rev !observations);
  Buffer.add_string buf "\n]}\n";
  let oc = open_out metrics_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote per-experiment phase metrics to %s\n" metrics_path

let all =
  List.map observed
    [
      ("table1", e1);
      ("e2", e2);
      ("e3", e3);
      ("e4", e4);
      ("e5", e5);
      ("e6", e6);
      ("e7", e7);
      ("e8", e8);
      ("optprof", optprof);
      ("equiv", equiv);
      ("perf", perf);
      ("fold", ablation_folding);
      ("slice", ablation_slicing);
      ("span", ablation_span);
      ("scavenge", ablation_scavenging);
      ("inject", inject);
      ("serve", serve);
      ("micro", micro);
    ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | [] -> List.iter (fun (_, f) -> f ()) all
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n all with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s (have: %s)\n" n
                (String.concat " " (List.map fst all)))
        names);
  if !observations <> [] then write_observations ()
