# Convenience wrapper over dune. `make check` is the full local gate:
# build everything, run the test suites, the never-crash fuzz corpus, and
# the observability trace smoke test.

.PHONY: all build test fuzz diff-smoke equiv-smoke trace-smoke inject-smoke perf perf-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

fuzz:
	dune build @fuzz

# Differential verification gate: the identity-edit round-trip oracle over
# the example corpus (original vs no-op-edited image, lockstep emulation).
diff-smoke:
	dune build @diff

# Contract oracle gate: real instrumented edits (qpt2, tracer, SFI) over
# the corpus must be event-equivalent to the originals modulo each tool's
# declared side effects — its edit contract.
equiv-smoke:
	dune build @equiv

# End-to-end observability gate: generate a synthetic workload, run it under
# the emulator with tracing + metrics on, then structurally validate the
# emitted Chrome trace JSON with the bundled checker.
trace-smoke:
	dune build bin/workload_gen.exe bin/eel_run.exe bin/trace_check.exe
	./_build/default/bin/workload_gen.exe --seed 7 --routines 8 -o _build/smoke.sef
	./_build/default/bin/eel_run.exe --trace _build/smoke-trace.json --metrics _build/smoke.sef 2> /dev/null
	./_build/default/bin/trace_check.exe _build/smoke-trace.json

# Adversarial campaign gate: seed known-bad edits, contracts and
# environments against the oracle (tool x fault class matrix + guided
# hunt + clean and environment sweeps). Fails unless every seeded fault
# is detected with zero crashes and zero clean-corpus false violations;
# minimized reproducers land in _build/inject (CI uploads them).
inject-smoke:
	dune build bin/eel_fuzz.exe
	./_build/default/bin/eel_fuzz.exe --inject --budget 48 --out _build/inject

# Performance trajectory: the predecode + multicore fan-out experiment,
# persisted to BENCH_perf.json at the repo root (methodology in
# EXPERIMENTS.md). perf-smoke is the tiny-budget CI variant: it fails if
# the predecoded path is ever slower than decode-per-step.
perf:
	dune build bench/main.exe
	./_build/default/bench/main.exe perf

perf-smoke:
	dune build bench/main.exe
	EEL_PERF_BUDGET=smoke ./_build/default/bench/main.exe perf

check:
	dune build && dune runtest && dune build @fuzz && dune build @diff && dune build @equiv && $(MAKE) trace-smoke && $(MAKE) inject-smoke

clean:
	dune clean
