# Convenience wrapper over dune. `make check` is the full local gate:
# build everything, run the test suites, then the never-crash fuzz corpus.

.PHONY: all build test fuzz check clean

all: build

build:
	dune build

test:
	dune runtest

fuzz:
	dune build @fuzz

check:
	dune build && dune runtest && dune build @fuzz

clean:
	dune clean
