# Convenience wrapper over dune. `make check` is the full local gate:
# build everything, run the test suites, the never-crash fuzz corpus, and
# the observability trace smoke test.

.PHONY: all build test fuzz diff-smoke equiv-smoke trace-smoke inject-smoke report-smoke os-smoke perf perf-smoke perf-regress serve-bench serve-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

fuzz:
	dune build @fuzz

# Differential verification gate: the identity-edit round-trip oracle over
# the example corpus (original vs no-op-edited image, lockstep emulation).
diff-smoke:
	dune build @diff

# Contract oracle gate: real instrumented edits (qpt2, tracer, SFI) over
# the corpus must be event-equivalent to the originals modulo each tool's
# declared side effects — its edit contract.
equiv-smoke:
	dune build @equiv

# End-to-end observability gate: generate a synthetic workload, run it under
# the emulator with tracing + metrics on, then structurally validate the
# emitted Chrome trace JSON with the bundled checker.
trace-smoke:
	dune build bin/workload_gen.exe bin/eel_run.exe bin/trace_check.exe
	./_build/default/bin/workload_gen.exe --seed 7 --routines 8 -o _build/smoke.sef
	./_build/default/bin/eel_run.exe --trace _build/smoke-trace.json --metrics _build/smoke.sef 2> /dev/null
	./_build/default/bin/trace_check.exe _build/smoke-trace.json

# Adversarial campaign gate: seed known-bad edits, contracts and
# environments against the oracle (tool x fault class matrix + guided
# hunt + clean and environment sweeps). Fails unless every seeded fault
# is detected with zero crashes and zero clean-corpus false violations;
# minimized reproducers land in _build/inject (CI uploads them).
inject-smoke:
	dune build bin/eel_fuzz.exe
	./_build/default/bin/eel_fuzz.exe --inject --budget 48 --out _build/inject

# Observability report gate: run the hotspot + overhead report over the
# whole corpus (all tools), export the flamegraph / speedscope / ledger
# JSON artifacts into _build, and structurally validate the profile
# exports. eel_report itself exits non-zero if any tool/program pair is
# not equivalent or any overhead is unexplained.
report-smoke:
	dune build bin/eel_report.exe bin/trace_check.exe
	./_build/default/bin/eel_report.exe --flame _build/report.flame \
	  --speedscope _build/report.speedscope.json \
	  --json _build/report-ledger.json | tee _build/report.txt
	./_build/default/bin/trace_check.exe _build/report.flame _build/report.speedscope.json

# OS workload gate: assemble the I/O-bound OS-mode corpus (each program
# runs against its deterministic in-memory world) and push it through all
# six tools under Toolbox.measure via eel_report --corpus os. eel_report
# exits non-zero on any divergence or any unexplained overhead, so this
# asserts 6 tools x the whole OS corpus verify equivalent. Artifacts:
# _build/os-report.txt (verdict + overhead table), _build/os-ledger.json.
os-smoke:
	dune build bin/eel_report.exe
	./_build/default/bin/eel_report.exe --corpus os \
	  --json _build/os-ledger.json | tee _build/os-report.txt

# Performance trajectory: the predecode + multicore fan-out experiment,
# persisted to BENCH_perf.json at the repo root (methodology in
# EXPERIMENTS.md). perf-smoke is the tiny-budget CI variant: it fails if
# the predecoded path is ever slower than decode-per-step.
perf:
	dune build bench/main.exe
	./_build/default/bench/main.exe perf

perf-smoke:
	dune build bench/main.exe
	EEL_PERF_BUDGET=smoke ./_build/default/bench/main.exe perf

# Perf-regression gate: remeasure the perf experiment's throughput kernel
# and compare against the committed BENCH_perf.json (or EEL_PERF_BASELINE)
# within EEL_REGRESS_TOL (default 12%); appends a line to the trajectory
# history (EEL_PERF_HISTORY, default _build/perf-history.jsonl). Scaling
# assertions are skipped on 1-core machines / contended baselines, or with
# EEL_REGRESS_SCALING=skip.
perf-regress:
	dune build bench/regress.exe
	./_build/default/bench/regress.exe

# Rewriting-as-a-service benchmark: cold vs warm throughput of the 100-job
# mixed corpus through the eel_serve engine with a durable content-addressed
# cache (persisted to BENCH_serve.json; methodology in EXPERIMENTS.md).
# Fails unless warm throughput is >= 3x cold and every cache hit is
# byte-identical to its miss. serve-smoke is the CI variant: a smaller
# budget through the same gate, plus the real binaries end-to-end — a cold
# eel_batch populates _build/serve-cache, then a fresh eel_batch process and
# an eel_serve fed the emitted JSONL corpus must both serve entirely from
# the durable layer (--expect-cached). Artifacts: _build/serve-report.json,
# _build/serve-stats*.json, _build/serve-responses.jsonl.
serve-bench:
	dune build bench/main.exe
	./_build/default/bench/main.exe serve

serve-smoke:
	dune build bench/main.exe bin/eel_batch.exe bin/eel_serve.exe
	EEL_SERVE_BUDGET=smoke EEL_BENCH_SERVE=_build/BENCH_serve_smoke.json ./_build/default/bench/main.exe serve
	rm -rf _build/serve-cache
	./_build/default/bin/eel_batch.exe --gen 24 --cache-dir _build/serve-cache \
	  --report _build/serve-report.json --stats _build/serve-stats-cold.json > _build/serve-batch.txt
	./_build/default/bin/eel_batch.exe --gen 24 --cache-dir _build/serve-cache \
	  --expect-cached --stats _build/serve-stats-warm.json >> _build/serve-batch.txt
	./_build/default/bin/eel_batch.exe --gen 6 --emit _build/serve-jobs.jsonl
	./_build/default/bin/eel_serve.exe --expect-cached --cache-dir _build/serve-cache \
	  --stats _build/serve-stats-serve.json _build/serve-jobs.jsonl > _build/serve-responses.jsonl

check:
	dune build && dune runtest && dune build @fuzz && dune build @diff && dune build @equiv && $(MAKE) trace-smoke && $(MAKE) inject-smoke && $(MAKE) report-smoke && $(MAKE) os-smoke && $(MAKE) serve-smoke

clean:
	dune clean
