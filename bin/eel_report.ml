(* Observability report: one human-readable rollup of a corpus run — where
   the dynamic instructions went (calling-context hot-path attribution) and
   what each instrumentation tool costs (the overhead ledger), with the
   divergence/violation summary the oracle produced along the way.

   Two phases, both fanned across domains by Pool with DLS-merged results
   (output is byte-identical at any EEL_JOBS):

     1. hotspot: every program runs under the emulator's ground-truth
        profiler; the per-run calling-context tree is named via the SEF
        symbol table and merged into one corpus-wide Hotspot tree,
        exportable as a collapsed-stack flamegraph (--flame) or speedscope
        JSON (--speedscope).

     2. ledger: every (tool x program) pair goes through Toolbox.measure —
        instrument, verify under the tool's contract with both sides
        profiled, and ledger the static/dynamic overhead. The report's
        per-tool table reproduces the shape of the paper's qpt overhead
        tables, and the "unexpl" column is the cross-check: extra store
        instructions not explained by the contract's masked events (always
        0 for an honest tool).

   Deliberately no wall-clock numbers anywhere: everything reported is a
   deterministic instruction/byte count, so re-runs diff cleanly. *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Diffexec = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
module Toolbox = Eel_tools.Toolbox
module Emu = Eel_emu.Emu
module Hotspot = Eel_obs.Hotspot
module Ledger = Eel_obs.Ledger
module Trace = Eel_obs.Trace

type source = Src of string | File of string

let load = function
  | Src src -> (
      match Eel_sparc.Asm.assemble src with
      | Ok exe -> Ok exe
      | Error m -> Error (Diag.Exe_error { what = "assemble: " ^ m }))
  | File f -> Sef.load_file f

(* Name a pc from the image's symbol table: exact Func/Label match, else
   nearest preceding symbol as "name+0x<off>", else bare hex. *)
let namer (exe : Sef.t) =
  let syms =
    List.filter
      (fun s -> s.Sef.kind = Sef.Func || s.Sef.kind = Sef.Label)
      exe.Sef.symbols
    |> List.sort (fun a b -> compare a.Sef.value b.Sef.value)
    |> Array.of_list
  in
  fun pc ->
    let n = Array.length syms in
    let rec best lo hi acc =
      if lo > hi then acc
      else
        let mid = (lo + hi) / 2 in
        if syms.(mid).Sef.value <= pc then best (mid + 1) hi (Some mid)
        else best lo (mid - 1) acc
    in
    match best 0 (n - 1) None with
    | Some i when syms.(i).Sef.value = pc -> syms.(i).Sef.sym_name
    | Some i -> Printf.sprintf "%s+0x%x" syms.(i).Sef.sym_name (pc - syms.(i).Sef.value)
    | None -> Printf.sprintf "0x%x" pc

let () =
  Printexc.record_backtrace true;
  let fuel = ref Diffexec.default_fuel in
  let top = ref 10 in
  let tools = ref [] in
  let flame = ref "" and speedscope = ref "" and json_out = ref "" in
  let trace_file = ref "" in
  let corpus_sel = ref "all" in
  let files = ref [] in
  Arg.parse
    [
      ( "--fuel",
        Arg.Set_int fuel,
        Printf.sprintf "FUEL per-run instruction budget (default %d)"
          Diffexec.default_fuel );
      ("--top", Arg.Set_int top, "N hot routines to list (default 10)");
      ( "--tool",
        Arg.String (fun t -> tools := t :: !tools),
        Printf.sprintf
          "NAME restrict the overhead ledger to this tool (repeatable; \
           default: all of %s)"
          (String.concat ", " Toolbox.names) );
      ("--flame", Arg.Set_string flame, "FILE write a collapsed-stack flamegraph");
      ( "--speedscope",
        Arg.Set_string speedscope,
        "FILE write the merged profile as speedscope JSON" );
      ( "--json",
        Arg.Set_string json_out,
        "FILE write the full report (hotspot + ledger) as JSON ('-' = stdout)"
      );
      ( "--trace",
        Arg.Set_string trace_file,
        "FILE write both report phases as a Chrome trace timeline (forces \
         EEL_JOBS=1)" );
      ( "--corpus",
        Arg.Set_string corpus_sel,
        "SET built-in corpus subset: all (default), cpu, or os (the \
         OS-mode programs; make os-smoke gates this slice)" );
    ]
    (fun f -> files := f :: !files)
    "eel_report [--tool NAME] [FILE.sef ...]: hot-path attribution + \
     instrumentation-overhead report (default: built-in corpus)";
  let tools =
    match List.rev !tools with
    | [] | [ "all" ] -> Toolbox.names
    | ts ->
        List.iter
          (fun t ->
            if not (List.mem t Toolbox.names) then (
              Printf.eprintf "eel_report: unknown tool %s (expected one of: %s)\n"
                t
                (String.concat ", " Toolbox.names);
              exit 2))
          ts;
        ts
  in
  let programs =
    (* default corpus = CPU-bound programs + the OS-mode corpus (each OS
       program carries its in-memory world spec); --corpus narrows it *)
    match List.rev !files with
    | [] -> (
        let cpu = List.map (fun (n, src) -> (n, Src src, None)) Corpus.sources
        and os =
          List.map
            (fun (n, (src, spec)) -> (n, Src src, Some spec))
            Corpus.os_sources
        in
        match !corpus_sel with
        | "all" -> cpu @ os
        | "cpu" -> cpu
        | "os" -> os
        | s ->
            Printf.eprintf
              "eel_report: unknown --corpus %s (expected all, cpu or os)\n" s;
            exit 2)
    | fs -> List.map (fun f -> (Filename.basename f, File f, None)) fs
  in
  let tracer = if !trace_file <> "" then Some (Trace.create ()) else None in
  Trace.set_current tracer;
  (* both sweeps are jobs-agnostic (DLS metrics/ledger merge at the join),
     but span hierarchies don't cross domains, so --trace pins them — and
     says so, since it silently overrides EEL_JOBS *)
  let jobs =
    if tracer = None then None
    else (
      Printf.eprintf
        "eel_report: --trace forces EEL_JOBS=1 (span hierarchies don't cross \
         domains)\n";
      Some 1)
  in
  (* ---- phase 1: hot-path attribution (one profiled run per program) ---- *)
  let hot_rows =
    Eel_util.Pool.map_list ?jobs
      (fun (prog, src, os) ->
        match load src with
        | Error e -> (prog, Error (Diag.error_message e))
        | Ok exe -> (
            match Diffexec.execute ~fuel:!fuel ~profile:true ?os exe with
            | Error e -> (prog, Error (Diag.error_message e))
            | Ok r ->
                let p = Option.get r.Diffexec.r_profile in
                let name_of = namer exe in
                Hotspot.record
                  (Emu.profile_hotspot ~name_of
                     ~root:(name_of exe.Sef.entry) ~prefix:[ prog ] p);
                ( prog,
                  Ok
                    ( Format.asprintf "%a" Diffexec.pp_stop r.Diffexec.r_stop,
                      p.Emu.p_insns ) )))
      programs
  in
  let hot = Hotspot.ambient () in
  let grand_total = Hotspot.total hot in
  (* ---- phase 2: overhead ledger (tool x program sweep) ---- *)
  let pairs =
    List.concat_map
      (fun t -> List.map (fun (p, s, os) -> (t, p, s, os)) programs)
      tools
  in
  let ledger_rows =
    Eel_util.Pool.map_list ?jobs
      (fun (tool, prog, src, os) ->
        match load src with
        | Error e -> (tool, prog, Error (Diag.error_message e))
        | Ok exe -> (
            match
              Toolbox.measure ~fuel:!fuel ?os ~prog tool Eel_sparc.Mach.mach exe
            with
            | Error e -> (tool, prog, Error (Diag.error_message e))
            | Ok ms -> (tool, prog, Ok ms.Toolbox.ms_entry)))
      pairs
  in
  let entries = Ledger.entries () in
  (* ---- render ---- *)
  Printf.printf "eel_report: %d programs x %d tools, fuel %d\n\n"
    (List.length programs) (List.length tools) !fuel;
  Printf.printf "Programs (dynamic instructions under the profiler):\n";
  List.iter
    (fun (prog, res) ->
      match res with
      | Ok (stop, insns) -> Printf.printf "  %-14s %9d  %s\n" prog insns stop
      | Error m -> Printf.printf "  %-14s     ERROR  %s\n" prog m)
    hot_rows;
  Printf.printf "\nTop %d hot routines (of %d attributed instructions):\n"
    !top grand_total;
  Printf.printf "  %-28s %10s %10s %6s  %s\n" "routine" "self" "total" "%"
    "mix (top classes)";
  let rstats =
    List.filter (fun r -> r.Hotspot.rs_self > 0) (Hotspot.routines hot)
    |> List.sort (fun a b ->
           match compare b.Hotspot.rs_self a.Hotspot.rs_self with
           | 0 -> compare a.Hotspot.rs_name b.Hotspot.rs_name
           | c -> c)
  in
  let class_names = Hotspot.class_names hot in
  let mix_string cs =
    let named =
      Array.to_list (Array.mapi (fun i n -> (class_names.(i), n)) cs)
      |> List.filter (fun (_, n) -> n > 0)
      |> List.sort (fun (na, a) (nb, b) ->
             match compare b a with 0 -> compare na nb | c -> c)
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    String.concat " "
      (List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c) (take 3 named))
  in
  List.iteri
    (fun i r ->
      if i < !top then
        Printf.printf "  %-28s %10d %10d %5.1f%%  %s\n" r.Hotspot.rs_name
          r.Hotspot.rs_self r.Hotspot.rs_total
          (if grand_total = 0 then 0.0
           else 100.0 *. float_of_int r.Hotspot.rs_self /. float_of_int grand_total)
          (mix_string r.Hotspot.rs_classes))
    rstats;
  Printf.printf
    "\nInstrumentation overhead (static bytes + dynamic cost per tool,\n\
     cross-checked against the contract's masked events; unexpl must be 0):\n";
  print_string
    (Format.asprintf "%a"
       (fun ppf es -> Ledger.pp_tool_table ppf ~order:Toolbox.names es)
       entries);
  (* divergence/violation summary *)
  let bad_entries =
    List.filter (fun e -> e.Ledger.le_verdict <> "equivalent") entries
  in
  let unexplained =
    List.fold_left (fun acc e -> acc + abs e.Ledger.le_unexplained) 0 entries
  in
  let errors =
    List.filter (fun (_, _, r) -> Result.is_error r) ledger_rows
    @ List.filter_map
        (fun (p, r) ->
          match r with Error m -> Some ("run", p, Error m) | Ok _ -> None)
        hot_rows
  in
  Printf.printf "\nVerdicts: %d/%d equivalent"
    (List.length entries - List.length bad_entries)
    (List.length entries);
  if bad_entries = [] && errors = [] && unexplained = 0 then
    Printf.printf "; no divergences, no violations, 0 unexplained overhead\n"
  else begin
    Printf.printf "\n";
    List.iter
      (fun e ->
        Printf.printf "  %-8s %-14s %s\n" e.Ledger.le_tool e.Ledger.le_prog
          e.Ledger.le_verdict)
      bad_entries;
    List.iter
      (fun (tool, prog, r) ->
        match r with
        | Error m -> Printf.printf "  %-8s %-14s ERROR %s\n" tool prog m
        | Ok _ -> ())
      errors;
    if unexplained <> 0 then
      Printf.printf "  %d unexplained extra store instructions\n" unexplained
  end;
  (* ---- exports ---- *)
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  if !flame <> "" then write_file !flame (Hotspot.collapsed hot);
  if !speedscope <> "" then
    write_file !speedscope (Hotspot.speedscope_json ~name:"eel corpus" hot);
  if !json_out <> "" then begin
    let esc = Hotspot.json_escape in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"hotspot\": {";
    Buffer.add_string buf (Printf.sprintf "\"total\": %d, \"routines\": [" grand_total);
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "{\"name\": \"%s\", \"self\": %d, \"total\": %d}"
             (esc r.Hotspot.rs_name) r.Hotspot.rs_self r.Hotspot.rs_total))
      rstats;
    Buffer.add_string buf "]},\n \"ledger\": ";
    Buffer.add_string buf (Ledger.to_json entries);
    Buffer.add_string buf
      (Printf.sprintf
         ",\n \"summary\": {\"programs\": %d, \"tools\": %d, \"entries\": %d, \
          \"equivalent\": %d, \"errors\": %d, \"unexplained\": %d}}\n"
         (List.length programs) (List.length tools) (List.length entries)
         (List.length entries - List.length bad_entries)
         (List.length errors) unexplained);
    if !json_out = "-" then print_string (Buffer.contents buf)
    else write_file !json_out (Buffer.contents buf)
  end;
  (match tracer with
  | Some tr -> Trace.write_chrome_json tr !trace_file
  | None -> ());
  if bad_entries <> [] || errors <> [] || unexplained <> 0 then exit 1
