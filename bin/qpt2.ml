(* qpt2 — the EEL-based edge profiler as a command-line tool (paper §5).

   Instruments FILE, writes FILE.count (paper Fig. 1 writes argv[1]
   ".count"), and with --run executes the edited program and prints the
   edge profile. --trace/--metrics expose the instrumentation pipeline's
   phase timeline and the metrics registry (ISSUE 2). *)

open Cmdliner
module E = Eel.Executable
module Emu = Eel_emu.Emu
module Qpt2 = Eel_tools.Qpt2
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

let main path run_it no_fold trace_file metrics =
  let tracer =
    if trace_file <> None || metrics then Some (Trace.create ()) else None
  in
  Trace.set_current tracer;
  let exe = Trace.with_span "load" (fun () -> Eel_sef.Sef.read_file path) in
  let t0 = Unix.gettimeofday () in
  let prof =
    Trace.with_span "instrument" (fun () ->
        Qpt2.instrument ~fold_delay:(not no_fold) Eel_sparc.Mach.mach exe)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let out = path ^ ".count" in
  Eel_sef.Sef.write_file out prof.Qpt2.edited;
  Metrics.set (Metrics.gauge "qpt2.counters") (float_of_int (List.length prof.Qpt2.counters));
  Metrics.set (Metrics.gauge "qpt2.skipped_uneditable")
    (float_of_int prof.Qpt2.skipped_uneditable);
  Printf.printf "instrumented %s -> %s: %d counters, %d uneditable edges skipped (%.3fs)\n"
    path out
    (List.length prof.Qpt2.counters)
    prof.Qpt2.skipped_uneditable dt;
  if run_it then (
    let profile = if metrics then Some (Emu.create_profile ()) else None in
    let res, st =
      Trace.with_span "emulate" (fun () -> Emu.run_exe ?profile prof.Qpt2.edited)
    in
    Option.iter Emu.publish_profile profile;
    print_string res.Emu.out;
    Printf.printf "--- edge profile ---\n";
    List.iter
      (fun ((c : Qpt2.counter), n) ->
        if n > 0 then
          Printf.printf "%-20s block %-4d edge %-4d : %d\n" c.Qpt2.c_routine
            c.Qpt2.c_block c.Qpt2.c_edge n)
      (Qpt2.counts prof st.Emu.mem));
  (match (trace_file, tracer) with
  | Some f, Some tr -> Trace.write_chrome_json tr f
  | _ -> ());
  if metrics then Format.eprintf "%a%!" Metrics.pp ()

let main path run_it no_fold trace_file metrics =
  try main path run_it no_fold trace_file metrics with
  | Eel_robust.Diag.Error e ->
      Printf.eprintf "qpt2: %s\n" (Eel_robust.Diag.error_message e);
      exit 1
  | Emu.Fault m ->
      Printf.eprintf "qpt2: fault: %s\n" m;
      exit 1

let cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run_it = Arg.(value & flag & info [ "run" ] ~doc:"run and print profile") in
  let no_fold =
    Arg.(value & flag & info [ "no-fold" ] ~doc:"disable delay-slot refolding")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"write a Chrome trace_event JSON timeline")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"print the metrics registry to stderr")
  in
  Cmd.v
    (Cmd.info "qpt2" ~doc:"EEL-based edge profiler")
    Term.(const main $ path $ run_it $ no_fold $ trace_file $ metrics)

let () = exit (Cmd.eval cmd)
