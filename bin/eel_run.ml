(* eel_run — execute a SEF executable in the emulator.

   --rtl runs the program under the spawn-description-driven interpreter
   instead of the handwritten emulator (they must agree; see test_spawn).

   Observability (ISSUE 2): --trace FILE writes a Chrome trace_event JSON
   timeline of the load -> analyze -> emulate phases (view it in
   chrome://tracing or Perfetto); --metrics profiles the emulated program
   (per-block execution counts, instruction-class mix, memory ops) and
   prints the metrics registry to stderr. Either flag enables the front-end
   analysis phase so the CFG spans appear on the timeline.

   OS mode (ISSUE 9): --os installs the lib/os syscall layer (in-memory
   file system + fd table) as the trap handler, so programs using the OS
   ABI window run instead of faulting on an unknown trap. --os-stdin
   seeds the guest's stdin, --os-file NAME=PATH loads a host file into
   the in-memory FS under NAME. The world is rebuilt from these flags on
   every run — nothing persists.

   Exit status: the process exits 0 when emulation completed (whatever
   the guest's own exit code), nonzero only on eel_run's own errors.
   --exit-status instead maps the guest's exit(n) — syscall or trap-halt
   — onto the process exit code, so shell scripts can branch on the
   guest's result. *)

open Cmdliner
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics
module Emu = Eel_emu.Emu
module Tier2 = Eel_emu.Tier2

let parse_os_file spec =
  match String.index_opt spec '=' with
  | None ->
      Printf.eprintf "eel_run: --os-file expects NAME=PATH, got %S\n" spec;
      exit 2
  | Some i ->
      let name = String.sub spec 0 i in
      let path = String.sub spec (i + 1) (String.length spec - i - 1) in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      close_in ic;
      (name, data)

(* Resolve the execution tier. An explicit [--tier] combined with a flag
   that forces per-instruction interpretation is a contradiction and is
   rejected ([Diag] error); the default tier silently degrades — with a
   one-line stderr notice, mirroring the EEL_JOBS=1 notices — because the
   engine itself refuses to run while a hook or profile is armed. *)
let resolve_tier ~tier ~rtl ~itrace ~metrics ~no_predecode =
  let forcer =
    if rtl then Some "--rtl"
    else if itrace then Some "--itrace"
    else if metrics then Some "--metrics"
    else if no_predecode then Some "--no-predecode"
    else None
  in
  match (tier, forcer) with
  | Some Tier2.Block, Some flag ->
      Eel_robust.Diag.exe_error
        "--tier block is incompatible with %s, which forces per-instruction \
         interpretation; drop one of the two"
        flag
  | Some Tier2.Predecode, Some "--no-predecode" ->
      Eel_robust.Diag.exe_error
        "--tier predecode is incompatible with --no-predecode; drop one of \
         the two"
  | Some tr, _ -> tr
  | None, Some "--no-predecode" -> Tier2.Interp
  | None, Some flag ->
      if flag <> "--rtl" then
        Printf.eprintf
          "eel_run: %s forces per-instruction interpretation (tier-2 block \
           engine off)\n"
          flag;
      Tier2.Predecode
  | None, None -> Tier2.Block

let run path rtl itrace trace_file metrics fuel no_predecode os os_stdin
    os_files exit_status tier =
  if rtl && os then begin
    Printf.eprintf "eel_run: --os is not supported under --rtl\n";
    exit 2
  end;
  let tier = resolve_tier ~tier ~rtl ~itrace ~metrics ~no_predecode in
  let observing = trace_file <> None || metrics in
  let tracer = if observing then Some (Trace.create ()) else None in
  Trace.set_current tracer;
  let exe = Trace.with_span "load" (fun () -> Eel_sef.Sef.read_file path) in
  if observing then
    Trace.with_span "analyze" (fun () ->
        (* advisory: a program can be run even when analysis degrades *)
        match Eel.Executable.open_exe Eel_sparc.Mach.mach exe with
        | Ok t -> ignore (Eel.Executable.jump_stats t)
        | Error e ->
            Trace.mark "analyze-failed"
              ~args:[ ("error", Eel_robust.Diag.error_message e) ]);
  let profile = if metrics && not rtl then Some (Emu.create_profile ()) else None in
  let os_state = ref None in
  let engine = ref None in
  let result =
    Trace.with_span "emulate" @@ fun () ->
    if rtl then (
      let el = Eel_spawn.Smach.load_description "descriptions/sparc.spawn" in
      let r, _ = Eel_spawn.Interp.run ~fuel el exe in
      r)
    else
      let hook =
        if itrace then
          Some
            (function
            | Emu.Ev_exec { pc; word } ->
                Printf.eprintf "%08x: %s\n" pc
                  (Eel_sparc.Mach.mach.Eel_arch.Machine.disas ~pc word)
            | _ -> ())
        else None
      in
      let t =
        Trace.with_span "emu.load" (fun () ->
            Emu.load ~predecode:(tier <> Tier2.Interp) exe)
      in
      if tier = Tier2.Block then engine := Tier2.attach t;
      t.Emu.hook <- hook;
      t.Emu.profile <- profile;
      if os then begin
        let spec =
          Eel_os.Spec.make
            ~files:(List.map parse_os_file os_files)
            ~stdin:os_stdin ()
        in
        os_state := Some (Eel_os.Os.install t spec)
      end;
      Trace.with_span "emu.run" (fun () -> Emu.run ~fuel t)
  in
  print_string result.Emu.out;
  Printf.eprintf "[exit=%d insns=%d loads=%d stores=%d]\n" result.Emu.exit_code
    result.Emu.insns result.Emu.loads result.Emu.stores;
  (match !engine with
  | Some st -> Printf.eprintf "[tier2: %s]\n" (Tier2.summary st)
  | None -> ());
  (match !os_state with
  | Some st ->
      Printf.eprintf "[os: syscalls=%d denied=%d]\n" (Eel_os.Os.sys_count st)
        (Eel_os.Os.denied_count st)
  | None -> ());
  Option.iter Emu.publish_profile profile;
  (match (trace_file, tracer) with
  | Some f, Some tr -> Trace.write_chrome_json tr f
  | _ -> ());
  if metrics then Format.eprintf "%a%!" Metrics.pp ();
  exit (if exit_status then result.Emu.exit_code else 0)

let run path rtl itrace trace_file metrics fuel no_predecode os os_stdin
    os_files exit_status tier =
  try
    run path rtl itrace trace_file metrics fuel no_predecode os os_stdin
      os_files exit_status tier
  with
  | Eel_robust.Diag.Error e ->
      Printf.eprintf "eel_run: %s\n" (Eel_robust.Diag.error_message e);
      exit 1
  | Emu.Fault m ->
      Printf.eprintf "eel_run: fault: %s\n" m;
      exit 1
  | Sys_error m ->
      Printf.eprintf "eel_run: %s\n" m;
      exit 1

let cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let rtl =
    Arg.(value & flag & info [ "rtl" ] ~doc:"use the spawn RTL interpreter")
  in
  let itrace =
    Arg.(value & flag & info [ "itrace" ] ~doc:"print each executed instruction")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"write a Chrome trace_event JSON timeline")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"profile execution and print the metrics registry")
  in
  let fuel =
    Arg.(value & opt int 200_000_000 & info [ "fuel" ] ~doc:"instruction budget")
  in
  let no_predecode =
    Arg.(
      value & flag
      & info [ "no-predecode" ]
          ~doc:"decode every dynamic instruction instead of predecoding the text segment at load")
  in
  let os =
    Arg.(
      value & flag
      & info [ "os" ]
          ~doc:"install the OS syscall layer (in-memory FS, fd table)")
  in
  let os_stdin =
    Arg.(
      value & opt string ""
      & info [ "os-stdin" ] ~docv:"STRING"
          ~doc:"guest stdin contents (OS mode)")
  in
  let os_files =
    Arg.(
      value & opt_all string []
      & info [ "os-file" ] ~docv:"NAME=PATH"
          ~doc:"preload host file PATH as NAME in the in-memory FS (repeatable)")
  in
  let want_exit_status =
    Arg.(
      value & flag
      & info [ "exit-status" ]
          ~doc:"exit with the guest program's exit code instead of 0")
  in
  let tier =
    let tiers =
      List.map (fun tr -> (Tier2.tier_name tr, tr)) Tier2.all_tiers
    in
    Arg.(
      value
      & opt (some (enum tiers)) None
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "execution tier: $(b,interp) decodes every instruction, \
             $(b,predecode) dispatches the predecoded text one instruction \
             at a time, $(b,block) (the default) compiles hot basic blocks. \
             Rejected when combined with a flag that forces \
             per-instruction interpretation.")
  in
  Cmd.v
    (Cmd.info "eel_run" ~doc:"run a SEF executable")
    Term.(
      const run $ path $ rtl $ itrace $ trace_file $ metrics $ fuel
      $ no_predecode $ os $ os_stdin $ os_files $ want_exit_status $ tier)

let () = exit (Cmd.eval cmd)
