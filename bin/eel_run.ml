(* eel_run — execute a SEF executable in the emulator.

   --rtl runs the program under the spawn-description-driven interpreter
   instead of the handwritten emulator (they must agree; see test_spawn).

   Observability (ISSUE 2): --trace FILE writes a Chrome trace_event JSON
   timeline of the load -> analyze -> emulate phases (view it in
   chrome://tracing or Perfetto); --metrics profiles the emulated program
   (per-block execution counts, instruction-class mix, memory ops) and
   prints the metrics registry to stderr. Either flag enables the front-end
   analysis phase so the CFG spans appear on the timeline. *)

open Cmdliner
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

let run path rtl itrace trace_file metrics fuel no_predecode =
  let observing = trace_file <> None || metrics in
  let tracer = if observing then Some (Trace.create ()) else None in
  Trace.set_current tracer;
  let exe = Trace.with_span "load" (fun () -> Eel_sef.Sef.read_file path) in
  if observing then
    Trace.with_span "analyze" (fun () ->
        (* advisory: a program can be run even when analysis degrades *)
        match Eel.Executable.open_exe Eel_sparc.Mach.mach exe with
        | Ok t -> ignore (Eel.Executable.jump_stats t)
        | Error e ->
            Trace.mark "analyze-failed"
              ~args:[ ("error", Eel_robust.Diag.error_message e) ]);
  let profile = if metrics && not rtl then Some (Eel_emu.Emu.create_profile ()) else None in
  let result =
    Trace.with_span "emulate" @@ fun () ->
    if rtl then (
      let el = Eel_spawn.Smach.load_description "descriptions/sparc.spawn" in
      let r, _ = Eel_spawn.Interp.run ~fuel el exe in
      r)
    else
      let hook =
        if itrace then
          Some
            (function
            | Eel_emu.Emu.Ev_exec { pc; word } ->
                Printf.eprintf "%08x: %s\n" pc
                  (Eel_sparc.Mach.mach.Eel_arch.Machine.disas ~pc word)
            | _ -> ())
        else None
      in
      let r, _ =
        Eel_emu.Emu.run_exe ~fuel ?hook ?profile ~predecode:(not no_predecode)
          exe
      in
      r
  in
  print_string result.Eel_emu.Emu.out;
  Printf.eprintf "[exit=%d insns=%d loads=%d stores=%d]\n"
    result.Eel_emu.Emu.exit_code result.Eel_emu.Emu.insns
    result.Eel_emu.Emu.loads result.Eel_emu.Emu.stores;
  Option.iter Eel_emu.Emu.publish_profile profile;
  (match (trace_file, tracer) with
  | Some f, Some tr -> Trace.write_chrome_json tr f
  | _ -> ());
  if metrics then Format.eprintf "%a%!" Metrics.pp ();
  exit result.Eel_emu.Emu.exit_code

let run path rtl itrace trace_file metrics fuel no_predecode =
  try run path rtl itrace trace_file metrics fuel no_predecode with
  | Eel_robust.Diag.Error e ->
      Printf.eprintf "eel_run: %s\n" (Eel_robust.Diag.error_message e);
      exit 1
  | Eel_emu.Emu.Fault m ->
      Printf.eprintf "eel_run: fault: %s\n" m;
      exit 1

let cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let rtl =
    Arg.(value & flag & info [ "rtl" ] ~doc:"use the spawn RTL interpreter")
  in
  let itrace =
    Arg.(value & flag & info [ "itrace" ] ~doc:"print each executed instruction")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"write a Chrome trace_event JSON timeline")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"profile execution and print the metrics registry")
  in
  let fuel =
    Arg.(value & opt int 200_000_000 & info [ "fuel" ] ~doc:"instruction budget")
  in
  let no_predecode =
    Arg.(
      value & flag
      & info [ "no-predecode" ]
          ~doc:"decode every dynamic instruction instead of predecoding the text segment at load")
  in
  Cmd.v
    (Cmd.info "eel_run" ~doc:"run a SEF executable")
    Term.(
      const run $ path $ rtl $ itrace $ trace_file $ metrics $ fuel
      $ no_predecode)

let () = exit (Cmd.eval cmd)
