(* trace_check — validate a Chrome trace_event JSON file (the Makefile's
   trace-smoke gate). Checks that the file parses as JSON, carries a
   traceEvents array, and that every event is structurally sound: a name, a
   known phase, a non-negative timestamp, and a non-negative duration on
   complete ("X") events. Exits 0 and prints a one-line summary on success;
   exits 1 with the first problem otherwise. *)

module Json = Eel_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("trace_check: " ^ m); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: trace_check FILE.json";
        exit 2
  in
  let src =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error m -> fail "%s" m
  in
  let root =
    match Json.parse src with
    | Ok v -> v
    | Error m -> fail "%s: not valid JSON: %s" path m
  in
  let events =
    match Json.member "traceEvents" root with
    | Some (Json.Arr evs) -> evs
    | Some _ -> fail "%s: traceEvents is not an array" path
    | None -> fail "%s: no traceEvents member" path
  in
  let spans = ref 0 and instants = ref 0 in
  List.iteri
    (fun i ev ->
      let str key =
        match Json.member key ev with
        | Some (Json.Str s) -> s
        | _ -> fail "event %d: missing string %S" i key
      in
      let num key =
        match Json.member key ev with
        | Some (Json.Num n) -> n
        | _ -> fail "event %d: missing number %S" i key
      in
      let name = str "name" in
      if name = "" then fail "event %d: empty name" i;
      if num "ts" < 0. then fail "event %d (%s): negative ts" i name;
      match str "ph" with
      | "X" ->
          incr spans;
          if num "dur" < 0. then fail "event %d (%s): negative dur" i name
      | "i" -> incr instants
      | ph -> fail "event %d (%s): unexpected phase %S" i name ph)
    events;
  if !spans = 0 then fail "%s: no complete (ph=X) span events" path;
  Printf.printf "trace_check: %s ok (%d spans, %d instants)\n" path !spans
    !instants
