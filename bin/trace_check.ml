(* trace_check — validate the observability layer's export files (the
   Makefile's trace-smoke / report-smoke gates). The format is sniffed:

     - Chrome trace_event JSON (a traceEvents array): every event needs a
       name, a known phase, a non-negative timestamp, and a non-negative
       duration on complete ("X") events;
     - speedscope JSON (a "$schema" pointing at speedscope): non-empty
       named frames, and for every sampled profile each sample's frame
       indices in range, one non-negative weight per sample, and
       endValue - startValue equal to the weight sum;
     - collapsed-stack flamegraph text (anything that is not JSON): every
       line is "frame;frame;... count" with a positive integer count.

   --total N additionally asserts the file's stack totals (speedscope
   weight sum / collapsed count sum) equal N — drivers pass the profile's
   dynamic instruction count so an export that silently dropped samples
   fails the gate. Exits 0 with a one-line summary per file on success;
   exits 1 with the first problem otherwise. *)

module Json = Eel_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("trace_check: " ^ m); exit 1) fmt

let check_chrome path root =
  let events =
    match Json.member "traceEvents" root with
    | Some (Json.Arr evs) -> evs
    | Some _ -> fail "%s: traceEvents is not an array" path
    | None -> fail "%s: no traceEvents member" path
  in
  let spans = ref 0 and instants = ref 0 in
  List.iteri
    (fun i ev ->
      let str key =
        match Json.member key ev with
        | Some (Json.Str s) -> s
        | _ -> fail "event %d: missing string %S" i key
      in
      let num key =
        match Json.member key ev with
        | Some (Json.Num n) -> n
        | _ -> fail "event %d: missing number %S" i key
      in
      let name = str "name" in
      if name = "" then fail "event %d: empty name" i;
      if num "ts" < 0. then fail "event %d (%s): negative ts" i name;
      match str "ph" with
      | "X" ->
          incr spans;
          if num "dur" < 0. then fail "event %d (%s): negative dur" i name
      | "i" -> incr instants
      | ph -> fail "event %d (%s): unexpected phase %S" i name ph)
    events;
  if !spans = 0 then fail "%s: no complete (ph=X) span events" path;
  Printf.printf "trace_check: %s ok (%d spans, %d instants)\n" path !spans
    !instants

let check_speedscope path root ~total =
  let nframes =
    match Json.member "shared" root with
    | Some shared -> (
        match Json.member "frames" shared with
        | Some (Json.Arr frames) ->
            if frames = [] then fail "%s: empty frames table" path;
            List.iteri
              (fun i f ->
                match Json.member "name" f with
                | Some (Json.Str s) when s <> "" -> ()
                | _ -> fail "%s: frame %d has no name" path i)
              frames;
            List.length frames
        | _ -> fail "%s: shared.frames is not an array" path)
    | None -> fail "%s: no shared.frames table" path
  in
  let profiles =
    match Json.member "profiles" root with
    | Some (Json.Arr ps) when ps <> [] -> ps
    | _ -> fail "%s: no profiles" path
  in
  let grand = ref 0 in
  List.iteri
    (fun pi prof ->
      let samples =
        match Json.member "samples" prof with
        | Some (Json.Arr s) -> s
        | _ -> fail "%s: profile %d: no samples array" path pi
      in
      let weights =
        match Json.member "weights" prof with
        | Some (Json.Arr w) -> w
        | _ -> fail "%s: profile %d: no weights array" path pi
      in
      if List.length samples <> List.length weights then
        fail "%s: profile %d: %d samples but %d weights" path pi
          (List.length samples) (List.length weights);
      List.iteri
        (fun si s ->
          match s with
          | Json.Arr frames ->
              if frames = [] then
                fail "%s: profile %d sample %d: empty stack" path pi si;
              List.iter
                (function
                  | Json.Num f ->
                      let fi = int_of_float f in
                      if float_of_int fi <> f || fi < 0 || fi >= nframes then
                        fail
                          "%s: profile %d sample %d: frame index %g out of \
                           range [0,%d)"
                          path pi si f nframes
                  | _ ->
                      fail "%s: profile %d sample %d: non-numeric frame" path
                        pi si)
                frames
          | _ -> fail "%s: profile %d sample %d: not an array" path pi si)
        samples;
      let wsum =
        List.fold_left
          (fun acc w ->
            match w with
            | Json.Num n when n >= 0. -> acc + int_of_float n
            | Json.Num _ -> fail "%s: profile %d: negative weight" path pi
            | _ -> fail "%s: profile %d: non-numeric weight" path pi)
          0 weights
      in
      (match (Json.member "startValue" prof, Json.member "endValue" prof) with
      | Some (Json.Num sv), Some (Json.Num ev) ->
          if int_of_float ev - int_of_float sv <> wsum then
            fail "%s: profile %d: endValue-startValue %d <> weight sum %d"
              path pi
              (int_of_float ev - int_of_float sv)
              wsum
      | _ -> fail "%s: profile %d: missing startValue/endValue" path pi);
      grand := !grand + wsum)
    profiles;
  (match total with
  | Some t when t <> !grand ->
      fail "%s: stack total %d <> expected dynamic instructions %d" path
        !grand t
  | _ -> ());
  Printf.printf "trace_check: %s ok (speedscope, %d frames, total %d)\n" path
    nframes !grand

let check_collapsed path src ~total =
  let lines =
    String.split_on_char '\n' src |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "%s: empty collapsed-stack file" path;
  let grand = ref 0 in
  List.iteri
    (fun i line ->
      match String.rindex_opt line ' ' with
      | None -> fail "%s: line %d: no count field" path (i + 1)
      | Some sp ->
          let stack = String.sub line 0 sp in
          let count = String.sub line (sp + 1) (String.length line - sp - 1) in
          (match int_of_string_opt count with
          | Some n when n > 0 -> grand := !grand + n
          | _ -> fail "%s: line %d: bad count %S" path (i + 1) count);
          if stack = "" then fail "%s: line %d: empty stack" path (i + 1);
          List.iter
            (fun frame ->
              if frame = "" then
                fail "%s: line %d: empty frame in %S" path (i + 1) stack)
            (String.split_on_char ';' stack))
    lines;
  (match total with
  | Some t when t <> !grand ->
      fail "%s: stack total %d <> expected dynamic instructions %d" path
        !grand t
  | _ -> ());
  Printf.printf "trace_check: %s ok (collapsed, %d stacks, total %d)\n" path
    (List.length lines) !grand

let () =
  let total = ref None in
  let paths = ref [] in
  Arg.parse
    [
      ( "--total",
        Arg.Int (fun n -> total := Some n),
        "N require stack totals to equal N dynamic instructions \
         (speedscope/collapsed only)" );
    ]
    (fun p -> paths := p :: !paths)
    "trace_check [--total N] FILE...: validate Chrome trace / speedscope / \
     collapsed-stack exports";
  let paths = List.rev !paths in
  if paths = [] then (
    prerr_endline "usage: trace_check [--total N] FILE...";
    exit 2);
  List.iter
    (fun path ->
      let src =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error m -> fail "%s" m
      in
      match Json.parse src with
      | Ok root -> (
          match (Json.member "traceEvents" root, Json.member "$schema" root) with
          | Some _, _ -> check_chrome path root
          | None, Some (Json.Str schema)
            when String.length schema >= 10
                 && String.lowercase_ascii schema |> fun s ->
                    let rec find i =
                      i + 10 <= String.length s
                      && (String.sub s i 10 = "speedscope" || find (i + 1))
                    in
                    find 0 ->
              check_speedscope path root ~total:!total
          | _ -> fail "%s: JSON but neither Chrome trace nor speedscope" path)
      | Error _ -> check_collapsed path src ~total:!total)
    paths
