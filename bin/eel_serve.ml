(* Rewriting as a service: the batch daemon.

   Reads JSONL jobs ({"id", "tool", one of corpus|file|gen|sef_hex, params};
   see lib/serve/proto.ml) from stdin — or from FILE arguments — shards each
   batch across the Pool, routes every job through Toolbox.measure (contract
   oracle + overhead ledger included), and answers one JSON object per line
   on stdout, in input order. The content-addressed cache (EEL_CACHE_DIR /
   EEL_CACHE_MB, or the flags below) persists per-routine analysis facts and
   whole-job results across invocations, so a warm daemon serves repeat
   images without re-analyzing or re-verifying them.

   Responses are deterministic (no wall-clock fields, stable order at any
   EEL_JOBS); the stderr summary and --stats JSON carry the timing and
   cache-efficiency numbers. Exits 0 iff every job parsed and came back
   "equivalent". *)

module Serve = Eel_service.Serve
module Proto = Eel_service.Proto
module Cache = Eel_service.Cache
module Diffexec = Eel_diffexec.Diffexec

let () =
  Printexc.record_backtrace true;
  let cache_dir = ref "" in
  let cache_mb = ref 0 in
  let jobs = ref 0 in
  let batch = ref 64 in
  let fuel = ref Diffexec.default_fuel in
  let out = ref "" in
  let stats = ref "" in
  let no_result = ref false in
  let no_analysis = ref false in
  let expect_cached = ref false in
  let files = ref [] in
  Arg.parse
    [
      ( "--cache-dir",
        Arg.Set_string cache_dir,
        "DIR durable cache directory (default $EEL_CACHE_DIR; unset: memory-only)"
      );
      ( "--cache-mb",
        Arg.Set_int cache_mb,
        "MB disk cache budget (default $EEL_CACHE_MB, else 256)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains per batch (default $EEL_JOBS, else cores)" );
      ( "--batch",
        Arg.Set_int batch,
        "N jobs buffered per pool dispatch (default 64)" );
      ( "--fuel",
        Arg.Set_int fuel,
        Printf.sprintf "FUEL default per-job instruction budget (default %d)"
          Diffexec.default_fuel );
      ("--out", Arg.Set_string out, "FILE write responses here instead of stdout");
      ( "--stats",
        Arg.Set_string stats,
        "FILE write cache + throughput stats JSON on exit" );
      ( "--no-result-cache",
        Arg.Set no_result,
        " disable the whole-job result cache (analysis cache stays on)" );
      ( "--no-analysis-cache",
        Arg.Set no_analysis,
        " disable the per-routine analysis cache" );
      ( "--expect-cached",
        Arg.Set expect_cached,
        " fail if any successful job was not served from the result cache" );
    ]
    (fun f -> files := f :: !files)
    "eel_serve [options] [JOBS.jsonl ...]  (no files: read jobs from stdin)";
  let cache =
    Cache.create
      ?dir:(if !cache_dir = "" then None else Some !cache_dir)
      ?disk_budget_bytes:
        (if !cache_mb > 0 then Some (!cache_mb * 1024 * 1024) else None)
      ()
  in
  let cfg =
    {
      (Serve.default_config cache) with
      Serve.c_use_result = not !no_result;
      c_use_analysis = not !no_analysis;
      c_fuel = !fuel;
    }
  in
  let jobs = if !jobs > 0 then Some !jobs else None in
  let out_chan = if !out = "" then stdout else open_out !out in
  let t0 = Unix.gettimeofday () in
  let seq = ref 0 in
  let n_ok = ref 0 and n_cached = ref 0 and n_err = ref 0 and n_total = ref 0 in
  let flush_batch pending =
    match List.rev pending with
    | [] -> ()
    | batch ->
        let results = Serve.run_batch ?jobs cfg batch in
        List.iter
          (fun r ->
            incr n_total;
            if Serve.ok r then incr n_ok else incr n_err;
            if Serve.cached r then incr n_cached;
            output_string out_chan (Serve.result_to_line r);
            output_char out_chan '\n')
          results;
        flush out_chan
  in
  let pending = ref [] and n_pending = ref 0 in
  let feed_line line =
    let line = String.trim line in
    if line <> "" then (
      incr seq;
      (match Proto.job_of_line ~seq:!seq line with
      | Ok job ->
          pending := job :: !pending;
          incr n_pending
      | Error m ->
          (* a bad line is a per-job error response, not a dead daemon *)
          incr n_total;
          incr n_err;
          output_string out_chan
            (Printf.sprintf {|{"id": %s, "ok": false, "error": %s}|}
               (Proto.json_str (Printf.sprintf "job-%d" !seq))
               (Proto.json_str m));
          output_char out_chan '\n';
          flush out_chan);
      if !n_pending >= !batch then (
        flush_batch !pending;
        pending := [];
        n_pending := 0))
  in
  let feed_channel ic =
    try
      while true do
        feed_line (input_line ic)
      done
    with End_of_file -> ()
  in
  (match List.rev !files with
  | [] -> feed_channel stdin
  | fs ->
      List.iter
        (fun f ->
          let ic = open_in f in
          Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> feed_channel ic))
        fs);
  flush_batch !pending;
  if !out <> "" then close_out out_chan;
  let dt = Unix.gettimeofday () -. t0 in
  let rate = if dt > 0.0 then float_of_int !n_total /. dt else 0.0 in
  let uncached = !n_ok - !n_cached in
  Printf.eprintf
    "eel_serve: %d job(s), %d ok (%d cached, %d computed), %d error(s) in %.2fs (%.1f jobs/s)\n%!"
    !n_total !n_ok !n_cached uncached !n_err dt rate;
  if !stats <> "" then (
    let oc = open_out !stats in
    Printf.fprintf oc
      {|{"jobs": %d, "ok": %d, "cached": %d, "errors": %d, "elapsed_s": %.3f, "jobs_per_s": %.2f, "cache": %s}|}
      !n_total !n_ok !n_cached !n_err dt rate (Cache.stats_json cache);
    output_char oc '\n';
    close_out oc);
  if !expect_cached && uncached > 0 then (
    Printf.eprintf "eel_serve: --expect-cached: %d job(s) missed the result cache\n%!" uncached;
    exit 1);
  if !n_err > 0 then exit 1
