(* Fault-injection fuzz driver: the executable form of the never-crash
   contract. A well-formed workload executable is mutated [--count] times
   (deterministically from [--seed], cycling through every mutation class),
   and each mutant is pushed through the full front end: SEF load, symbol
   refinement, CFG construction for every routine (hidden-routine queue
   drained), then a no-op edit + layout + output-image build. Each mutant
   must either succeed or be rejected with a structured [Diag.error] — any
   other exception is a crash, reported with its backtrace, and the driver
   exits 1.

   Per-class outcomes land in the metrics registry as
   fuzz.<class>.{survived,degraded,rejected} counters (survived = loaded
   with no diagnostics, degraded = loaded but some analysis was degraded,
   rejected = structured refusal) and are reported as a table at the end —
   the coverage signal the ROADMAP's coverage-guided mutation item needs.
   --metrics dumps the registry at the end (works at any EEL_JOBS — metrics
   merge at pool joins); --trace FILE writes the whole corpus run as a
   Chrome trace timeline and pins the sweep to one domain, since span
   hierarchies don't cross domains. *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Mutate = Eel_mutate.Mutate
module Sched = Eel_mutate.Sched
module Diffexec = Eel_diffexec.Diffexec
module Toolbox = Eel_tools.Toolbox
module E = Eel.Executable
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

type outcome =
  | Ok_load of int  (** diagnostics count *)
  | Rejected of Diag.error
  | Crashed of string

(* The load -> CFG -> edit pipeline under test. [jump_stats] forces every
   routine's CFG (draining the hidden-routine discovery queue);
   [to_edited_sef] performs the no-op edit, layout and invariant-verified
   image build. *)
let pipeline bytes =
  let diag = Diag.create () in
  match Sef.load ~diag bytes with
  | Error e -> Rejected e
  | Ok exe -> (
      let budget = Diag.budget ~stage:"fuzz" (8 * 1024 * 1024) in
      match E.open_exe ~diag ~budget Eel_sparc.Mach.mach exe with
      | Error e -> Rejected e
      | Ok t -> (
          match
            Diag.guard (fun () ->
                ignore (E.jump_stats t);
                ignore (E.to_edited_sef t ()))
          with
          | Ok () -> Ok_load (Diag.count diag)
          | Error e -> Rejected e))

let run_one bytes =
  try pipeline bytes with
  | Stack_overflow -> Crashed "Stack_overflow"
  | exn ->
      Crashed
        (Printf.sprintf "%s\n%s" (Printexc.to_string exn)
           (Printexc.get_backtrace ()))

let outcome_slots = [ "survived"; "degraded"; "rejected" ]

let class_counter kind slot =
  Metrics.counter (Printf.sprintf "fuzz.%s.%s" kind slot)

(* ---- differential mode (--diff) ----------------------------------

   Each mutant's coverage signature is what it exercised end to end: the
   structured rejection kind when the front end refused it, or — when the
   identity round-trip ran — whether the mutant's no-op-edited image is
   event-equivalent to the mutant itself, and how it diverged if not.
   The blind pass replays Mutate.corpus's class cycle; the guided pass
   closes the loop through Sched, biasing the mutation budget toward the
   classes still discovering new signatures. *)

let diff_signature ~fuel ~tool bytes =
  let diag = Diag.create () in
  match Sef.load ~diag bytes with
  | Error e -> "rejected:" ^ Diag.error_kind e
  | Ok exe ->
      if tool = "" then (
        let budget = Diag.budget ~stage:"fuzz-diff" (8 * 1024 * 1024) in
        match
          Diffexec.identity_roundtrip ~fuel ~diag ~budget
            ~mach:Eel_sparc.Mach.mach exe
        with
        | Error e -> "rejected:" ^ Diag.error_kind e
        | Ok rp ->
            (if Diag.count diag = 0 then "ok:" else "degraded:")
            ^ Diffexec.coverage_signature rp)
      else (
        (* contract-oracle mode: instrument the mutant with the named tool
           and require masked-event equivalence under its contract *)
        match
          Diag.guard (fun () ->
              match Toolbox.apply tool Eel_sparc.Mach.mach exe with
              | Ok ap -> ap
              | Error m -> Diag.fail (Diag.Exe_error { what = m }))
        with
        | Error e -> "rejected:" ^ Diag.error_kind e
        | Ok ap -> (
            match
              Diffexec.verify_edit ~fuel ~norm_b:ap.Toolbox.ap_norm_b
                ~block_of:ap.Toolbox.ap_block_of
                ~contract:ap.Toolbox.ap_contract exe ap.Toolbox.ap_edited
            with
            | Error e -> "rejected:" ^ Diag.error_kind e
            | Ok er ->
                (if Diag.count diag = 0 then "ok:" else "degraded:")
                ^ Diffexec.coverage_signature er.Diffexec.er_report))

let diff_slots =
  [
    "survived"; "degraded"; "rejected"; "equivalent"; "fuel-eq"; "diverged";
    "both-fault"; "contract";
  ]

(* signature -> the outcome-table slots it lands in *)
let diff_slots_of signature =
  let has_prefix p =
    String.length signature >= String.length p
    && String.sub signature 0 (String.length p) = p
  in
  let front =
    if has_prefix "ok:" then [ "survived" ]
    else if has_prefix "degraded:" then [ "degraded" ]
    else if has_prefix "rejected:" then [ "rejected" ]
    else []
  in
  let verdict =
    match String.index_opt signature ':' with
    | None -> []
    | Some i -> (
        let v = String.sub signature (i + 1) (String.length signature - i - 1) in
        let vp p = String.length v >= String.length p && String.sub v 0 (String.length p) = p in
        if v = "equivalent" then [ "equivalent" ]
        else if v = "fuel-truncated-equal" then [ "fuel-eq" ]
        else if vp "both-fault" then [ "both-fault" ]
        else if vp "contract-violation" then [ "contract" ]
        else if vp "diverged" then [ "diverged" ]
        else [])
  in
  front @ verdict

let () =
  Printexc.record_backtrace true;
  let count = ref 200 and seed = ref 42 and routines = ref 12 in
  let verbose = ref false in
  let trace_file = ref "" in
  let diff = ref false and fuel = ref 300_000 in
  let tool = ref "" in
  let inject = ref false and out_dir = ref "_build/inject" in
  let budget = ref 48 in
  let show_metrics = ref false in
  Arg.parse
    [
      ("--count", Arg.Set_int count, "NUMBER of mutants (default 200)");
      ("--seed", Arg.Set_int seed, "SEED for mutation and the base workload (default 42)");
      ("--routines", Arg.Set_int routines, "ROUTINES in the base workload (default 12)");
      ("--verbose", Arg.Set verbose, "print one line per mutant");
      ("--trace", Arg.Set_string trace_file, "FILE to write a Chrome trace timeline to");
      ( "--diff",
        Arg.Set diff,
        "run the differential oracle per mutant; compare blind vs coverage-guided scheduling" );
      ( "--fuel",
        Arg.Set_int fuel,
        "FUEL per-side instruction budget in --diff mode (default 300000)" );
      ( "--tool",
        Arg.Set_string tool,
        Printf.sprintf
          "NAME in --diff mode, verify a real instrumented edit of each \
           mutant under the tool's contract (%s)"
          (String.concat "|" Toolbox.names) );
      ( "--inject",
        Arg.Set inject,
        "run the adversarial fault-injection campaign (tool x fault-class \
         detection matrix, guided hunt, clean and environment sweeps)" );
      ( "--out",
        Arg.Set_string out_dir,
        "DIR for minimized violation reproducers in --inject mode (default \
         _build/inject)" );
      ( "--budget",
        Arg.Set_int budget,
        "ATTEMPTS for the guided hunt in --inject mode (default 48)" );
      ( "--metrics",
        Arg.Set show_metrics,
        "dump the fuzz.* / eel.* metrics registry at the end (merges across \
         domains; works at any EEL_JOBS)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "eel_fuzz: assert the front end never crashes on mutated executables";
  let tracer = if !trace_file <> "" then Some (Trace.create ()) else None in
  Trace.set_current tracer;
  (* mirror the EEL_JOBS notice: these modes arm per-instruction
     instrumentation (ground-truth profiles, poke plans), which silently
     drops the affected runs to tier-1 *)
  (if !tool <> "" then
     Printf.eprintf
       "eel_fuzz: --tool arms the ground-truth profile (tier-2 block engine \
        off for profiled runs)\n");
  (if !inject then
     Printf.eprintf
       "eel_fuzz: --inject arms profiles and poke plans (tier-2 block \
        engine off for those trials)\n");
  (* metrics (and ledger/hotspot data) live in Domain.DLS and merge
     deterministically at pool joins, so --metrics is jobs-agnostic; only
     --trace pins the run to one domain (worker domains have no ambient
     tracer, their span hierarchies would be lost) *)
  let dump_metrics () =
    if !show_metrics then
      List.iter
        (fun (name, v) ->
          let has_prefix p =
            String.length name >= String.length p
            && String.sub name 0 (String.length p) = p
          in
          if has_prefix "fuzz." || has_prefix "eel." then
            match v with
            | Metrics.Int n -> Printf.printf "  %-32s %d\n" name n
            | Metrics.Float f -> Printf.printf "  %-32s %g\n" name f
            | Metrics.Hist _ -> ())
        (Metrics.snapshot ())
  in
  let base =
    Eel_workload.Gen.assemble_program
      { Eel_workload.Gen.default with seed = !seed; routines = !routines }
  in
  if !tool <> "" && not (List.mem !tool Toolbox.names) then (
    Printf.eprintf "eel_fuzz: unknown tool %s (expected one of: %s)\n" !tool
      (String.concat ", " Toolbox.names);
    exit 2);
  if !inject then (
    (* ---- adversarial campaign (--inject) --------------------------
       Seeded faults on all three attack surfaces; the acceptance bar is
       100% detection, zero crashes and a clean corpus sweep. Minimized
       reproducers land in --out as JSON artifacts (CI uploads them). *)
    let module Fault = Eel_mutate.Fault in
    let o = Fault.campaign ~seed:!seed ~fuel:!fuel ~budget:!budget () in
    let rec mkdirs d =
      if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then (
        mkdirs (Filename.dirname d);
        try Sys.mkdir d 0o755 with Sys_error _ -> ())
    in
    mkdirs !out_dir;
    List.iteri
      (fun i (r : Fault.repro) ->
        let path =
          Filename.concat !out_dir
            (Printf.sprintf "repro-%02d-%s-%s.json" i r.Fault.rx_tool
               (Fault.class_name r.Fault.rx_class))
        in
        let oc = open_out path in
        output_string oc (Fault.repro_to_json r);
        output_char oc '\n';
        close_out oc)
      o.Fault.o_repros;
    Printf.printf
      "eel_fuzz --inject: seed %d, fuel %d, hunt budget %d\n\n" !seed !fuel
      !budget;
    Printf.printf "%-8s %-14s %-9s %6s %8s  %s\n" "tool" "fault class"
      "surface" "sites" "caught" "verdict";
    List.iter
      (fun (c : Fault.cell) ->
        Printf.printf "%-8s %-14s %-9s %6d %8s  %s\n" c.Fault.cl_tool
          (Fault.class_name c.Fault.cl_class)
          (Fault.surface c.Fault.cl_class)
          c.Fault.cl_sites
          (if c.Fault.cl_flagged then "yes" else "MISSED")
          c.Fault.cl_verdict)
      o.Fault.o_cells;
    Printf.printf
      "\ndetection: %d/%d cells flagged; %d minimized reproducers in %s\n"
      o.Fault.o_caught o.Fault.o_injected
      (List.length o.Fault.o_repros)
      !out_dir;
    Printf.printf
      "guided hunt: %d distinct violation signatures in %d attempts\n"
      o.Fault.o_hunt_distinct o.Fault.o_hunt_attempts;
    Printf.printf "clean sweep: %d trials, %d false violations\n"
      o.Fault.o_clean_total o.Fault.o_clean_bad;
    Printf.printf "environment sweep: %d trials\n" o.Fault.o_env_trials;
    Printf.printf "crashes anywhere: %d\n" o.Fault.o_crashes;
    if !verbose then
      List.iter
        (fun (r : Fault.repro) ->
          Printf.printf "  repro %s/%s sites=[%s] %s (%s @0x%x): %s\n"
            r.Fault.rx_tool
            (Fault.class_name r.Fault.rx_class)
            (String.concat ","
               (List.map string_of_int r.Fault.rx_sites))
            r.Fault.rx_verdict r.Fault.rx_dclass r.Fault.rx_anchor
            r.Fault.rx_desc)
        o.Fault.o_repros;
    dump_metrics ();
    (match tracer with
    | Some tr -> Trace.write_chrome_json tr !trace_file
    | None -> ());
    if Fault.passed o then (
      print_string "PASS: every seeded fault detected, no crashes\n";
      exit 0)
    else (
      print_string "FAIL: missed faults, crashes or false violations\n";
      exit 1));
  let jobs =
    if tracer = None then None
    else (
      Printf.eprintf
        "eel_fuzz: --trace forces EEL_JOBS=1 (span hierarchies don't cross \
         domains)\n";
      Some 1)
  in
  if !diff then (
    let crashed = ref 0 in
    (* strict gate: a mutant whose instrumented edit violates its tool's
       contract is a finding, not a statistic — the run must fail *)
    let violations = ref 0 in
    let count_violation s =
      if List.mem "contract" (diff_slots_of s) then incr violations
    in
    (* run the oracle, returning any crash as data: the blind pass runs in
       pool workers, which must not mutate shared counters or print *)
    let signature i kind bytes =
      try (diff_signature ~fuel:!fuel ~tool:!tool bytes, None) with
      | Stack_overflow -> ("crash", Some "")
      | exn ->
          ( "crash",
            Some
              (Printf.sprintf "%4d %-22s CRASH: %s\n%s\n" i (Mutate.name kind)
                 (Printexc.to_string exn)
                 (Printexc.get_backtrace ())) )
    in
    let absorb_crash = function
      | None -> ()
      | Some msg ->
          incr crashed;
          if msg <> "" then print_string msg
    in
    (* pass 1: the blind schedule — Mutate.corpus's class cycle, signatures
       collected but no scheduling feedback. Mutants are independent and the
       signature {e set} is order-blind, so this pass fans out across
       domains; crash accounting happens serially after the join. *)
    let blind_sigs = Hashtbl.create 64 in
    List.iter
      (fun (s, crash) ->
        absorb_crash crash;
        count_violation s;
        Hashtbl.replace blind_sigs s ())
      (Eel_util.Pool.map_list ?jobs
         (fun (i, kind, bytes) -> signature i kind bytes)
         (Mutate.corpus ~seed:!seed ~count:!count base));
    (* pass 2: coverage-guided — same seed, same budget, class picked per
       round by discovery rate. Inherently serial: each round's class choice
       depends on every earlier round's discoveries. *)
    let sched = Sched.create () in
    ignore
      (Sched.guided sched ~seed:!seed ~count:!count base
         ~run:(fun i kind bytes ->
           let s, crash = signature i kind bytes in
           absorb_crash crash;
           count_violation s;
           let kname = Mutate.name kind in
           List.iter
             (fun slot -> Metrics.incr (class_counter kname slot))
             (diff_slots_of s);
           if !verbose then Printf.printf "%4d %-22s %s\n" i kname s;
           s));
    let nb = Hashtbl.length blind_sigs and ng = Sched.distinct sched in
    Metrics.set (Metrics.gauge "eel.diff.cover.blind") (float_of_int nb);
    Metrics.set (Metrics.gauge "eel.diff.cover.guided") (float_of_int ng);
    Printf.printf
      "eel_fuzz --diff%s: %d mutants (seed %d), per-side fuel %d\n"
      (if !tool = "" then "" else " --tool " ^ !tool)
      !count !seed !fuel;
    Printf.printf "%-22s %9s %9s %9s %10s %9s %9s %10s %9s %9s\n"
      "mutation class" "survived" "degraded" "rejected" "equivalent" "fuel-eq"
      "diverged" "both-fault" "contract" "attempts";
    List.iter
      (fun kind ->
        let kname = Mutate.name kind in
        let read slot =
          match Metrics.find (Printf.sprintf "fuzz.%s.%s" kname slot) with
          | Some (Metrics.Int n) -> n
          | _ -> 0
        in
        match List.map read diff_slots with
        | [ s; d; r; eq; fe; dv; bf; cv ] ->
            Printf.printf "%-22s %9d %9d %9d %10d %9d %9d %10d %9d %9d\n"
              kname s d r eq fe dv bf cv
              (Sched.attempts_of sched kind)
        | _ -> assert false)
      Mutate.all;
    Printf.printf
      "coverage (distinct signatures): blind %d, guided %d%s\n" nb ng
      (if ng > nb then " — guided found more" else "");
    if !verbose then
      List.iter (fun s -> Printf.printf "  guided signature: %s\n" s)
        (Sched.signatures sched);
    if !violations > 0 then
      Printf.printf "contract violations found: %d (failing the run)\n"
        !violations;
    dump_metrics ();
    (match tracer with
    | Some tr -> Trace.write_chrome_json tr !trace_file
    | None -> ());
    exit (if !crashed > 0 || !violations > 0 then 1 else 0));
  let corpus = Mutate.corpus ~seed:!seed ~count:!count base in
  (* mutants are independent: the pipeline runs fan out across domains and
     return outcomes in corpus order; counting, the per-class table and all
     printing happen serially after the join, so output and metrics are
     byte-identical whatever EEL_JOBS says *)
  let outcomes =
    Eel_util.Pool.map_list ?jobs
      (fun (i, kind, bytes) ->
        let kname = Mutate.name kind in
        let o =
          Trace.with_span (Printf.sprintf "mutant:%s" kname)
            ~args:[ ("index", string_of_int i) ]
            (fun () -> run_one bytes)
        in
        (i, kname, o))
      corpus
  in
  let ok = ref 0 and rejected = ref 0 and crashed = ref 0 in
  List.iter
    (fun (i, kname, outcome) ->
      match outcome with
      | Ok_load ndiag ->
          incr ok;
          Metrics.incr
            (class_counter kname (if ndiag = 0 then "survived" else "degraded"));
          if !verbose then
            Printf.printf "%4d %-22s ok (%d diagnostics)\n" i kname ndiag
      | Rejected e ->
          incr rejected;
          Metrics.incr (class_counter kname "rejected");
          if !verbose then
            Printf.printf "%4d %-22s rejected: %s\n" i kname
              (Diag.error_message e)
      | Crashed msg ->
          incr crashed;
          Printf.printf "%4d %-22s CRASH: %s\n" i kname msg)
    outcomes;
  Printf.printf "eel_fuzz: %d mutants (seed %d): %d ok, %d rejected, %d crashed\n"
    (List.length corpus) !seed !ok !rejected !crashed;
  (* per-class outcome table, read back from the metrics registry *)
  let classes =
    List.sort_uniq compare (List.map (fun (_, k, _) -> Mutate.name k) corpus)
  in
  Printf.printf "%-22s %9s %9s %9s\n" "mutation class" "survived" "degraded"
    "rejected";
  List.iter
    (fun kname ->
      let read slot =
        match Metrics.find (Printf.sprintf "fuzz.%s.%s" kname slot) with
        | Some (Metrics.Int n) -> n
        | _ -> 0
      in
      match List.map read outcome_slots with
      | [ s; d; r ] -> Printf.printf "%-22s %9d %9d %9d\n" kname s d r
      | _ -> assert false)
    classes;
  dump_metrics ();
  (match tracer with
  | Some tr -> Trace.write_chrome_json tr !trace_file
  | None -> ());
  if !crashed > 0 then exit 1
