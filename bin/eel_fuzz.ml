(* Fault-injection fuzz driver: the executable form of the never-crash
   contract. A well-formed workload executable is mutated [--count] times
   (deterministically from [--seed], cycling through every mutation class),
   and each mutant is pushed through the full front end: SEF load, symbol
   refinement, CFG construction for every routine (hidden-routine queue
   drained), then a no-op edit + layout + output-image build. Each mutant
   must either succeed or be rejected with a structured [Diag.error] — any
   other exception is a crash, reported with its backtrace, and the driver
   exits 1.

   Per-class outcomes land in the metrics registry as
   fuzz.<class>.{survived,degraded,rejected} counters (survived = loaded
   with no diagnostics, degraded = loaded but some analysis was degraded,
   rejected = structured refusal) and are reported as a table at the end —
   the coverage signal the ROADMAP's coverage-guided mutation item needs.
   --trace FILE writes the whole corpus run as a Chrome trace timeline. *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Mutate = Eel_mutate.Mutate
module E = Eel.Executable
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

type outcome =
  | Ok_load of int  (** diagnostics count *)
  | Rejected of Diag.error
  | Crashed of string

(* The load -> CFG -> edit pipeline under test. [jump_stats] forces every
   routine's CFG (draining the hidden-routine discovery queue);
   [to_edited_sef] performs the no-op edit, layout and invariant-verified
   image build. *)
let pipeline bytes =
  let diag = Diag.create () in
  match Sef.load ~diag bytes with
  | Error e -> Rejected e
  | Ok exe -> (
      let budget = Diag.budget ~stage:"fuzz" (8 * 1024 * 1024) in
      match E.open_exe ~diag ~budget Eel_sparc.Mach.mach exe with
      | Error e -> Rejected e
      | Ok t -> (
          match
            Diag.guard (fun () ->
                ignore (E.jump_stats t);
                ignore (E.to_edited_sef t ()))
          with
          | Ok () -> Ok_load (Diag.count diag)
          | Error e -> Rejected e))

let run_one bytes =
  try pipeline bytes with
  | Stack_overflow -> Crashed "Stack_overflow"
  | exn ->
      Crashed
        (Printf.sprintf "%s\n%s" (Printexc.to_string exn)
           (Printexc.get_backtrace ()))

let outcome_slots = [ "survived"; "degraded"; "rejected" ]

let class_counter kind slot =
  Metrics.counter (Printf.sprintf "fuzz.%s.%s" kind slot)

let () =
  Printexc.record_backtrace true;
  let count = ref 200 and seed = ref 42 and routines = ref 12 in
  let verbose = ref false in
  let trace_file = ref "" in
  Arg.parse
    [
      ("--count", Arg.Set_int count, "NUMBER of mutants (default 200)");
      ("--seed", Arg.Set_int seed, "SEED for mutation and the base workload (default 42)");
      ("--routines", Arg.Set_int routines, "ROUTINES in the base workload (default 12)");
      ("--verbose", Arg.Set verbose, "print one line per mutant");
      ("--trace", Arg.Set_string trace_file, "FILE to write a Chrome trace timeline to");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "eel_fuzz: assert the front end never crashes on mutated executables";
  let tracer = if !trace_file <> "" then Some (Trace.create ()) else None in
  Trace.set_current tracer;
  let base =
    Eel_workload.Gen.assemble_program
      { Eel_workload.Gen.default with seed = !seed; routines = !routines }
  in
  let corpus = Mutate.corpus ~seed:!seed ~count:!count base in
  let ok = ref 0 and rejected = ref 0 and crashed = ref 0 in
  List.iter
    (fun (i, kind, bytes) ->
      let kname = Mutate.name kind in
      Trace.with_span (Printf.sprintf "mutant:%s" kname)
        ~args:[ ("index", string_of_int i) ]
      @@ fun () ->
      match run_one bytes with
      | Ok_load ndiag ->
          incr ok;
          Metrics.incr
            (class_counter kname (if ndiag = 0 then "survived" else "degraded"));
          if !verbose then
            Printf.printf "%4d %-22s ok (%d diagnostics)\n" i kname ndiag
      | Rejected e ->
          incr rejected;
          Metrics.incr (class_counter kname "rejected");
          if !verbose then
            Printf.printf "%4d %-22s rejected: %s\n" i kname
              (Diag.error_message e)
      | Crashed msg ->
          incr crashed;
          Printf.printf "%4d %-22s CRASH: %s\n" i kname msg)
    corpus;
  Printf.printf "eel_fuzz: %d mutants (seed %d): %d ok, %d rejected, %d crashed\n"
    (List.length corpus) !seed !ok !rejected !crashed;
  (* per-class outcome table, read back from the metrics registry *)
  let classes =
    List.sort_uniq compare (List.map (fun (_, k, _) -> Mutate.name k) corpus)
  in
  Printf.printf "%-22s %9s %9s %9s\n" "mutation class" "survived" "degraded"
    "rejected";
  List.iter
    (fun kname ->
      let read slot =
        match Metrics.find (Printf.sprintf "fuzz.%s.%s" kname slot) with
        | Some (Metrics.Int n) -> n
        | _ -> 0
      in
      match List.map read outcome_slots with
      | [ s; d; r ] -> Printf.printf "%-22s %9d %9d %9d\n" kname s d r
      | _ -> assert false)
    classes;
  (match tracer with
  | Some tr -> Trace.write_chrome_json tr !trace_file
  | None -> ());
  if !crashed > 0 then exit 1
