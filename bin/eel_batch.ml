(* Batch driver for the rewriting service: generates a deterministic mixed
   job corpus (all 6 tools x corpus programs + generated workloads), runs it
   through the same engine as eel_serve (Pool-sharded, contract-verified,
   content-addressed cache), and prints a per-tool summary table. --emit
   writes the corpus as JSONL instead, which pipes straight into eel_serve.

   Artifacts: --out (response JSONL), --report (summary JSON), --stats
   (cache + throughput JSON). Exits 0 iff every job came back "equivalent"
   (and, under --expect-cached, every one was served from the cache). *)

module Serve = Eel_service.Serve
module Proto = Eel_service.Proto
module Cache = Eel_service.Cache
module Toolbox = Eel_tools.Toolbox
module Diffexec = Eel_diffexec.Diffexec
module Ledger = Eel_obs.Ledger

let make_jobs ~count ~seed = Serve.mixed_jobs ~count ~seed

let () =
  Printexc.record_backtrace true;
  let count = ref 100 in
  let seed = ref 42 in
  let cache_dir = ref "" in
  let cache_mb = ref 0 in
  let jobs = ref 0 in
  let fuel = ref Diffexec.default_fuel in
  let emit = ref "" in
  let out = ref "" in
  let report = ref "" in
  let stats = ref "" in
  let no_result = ref false in
  let no_analysis = ref false in
  let expect_cached = ref false in
  Arg.parse
    [
      ("--gen", Arg.Set_int count, "N number of jobs in the corpus (default 100)");
      ("--seed", Arg.Set_int seed, "S corpus mix seed (default 42)");
      ( "--emit",
        Arg.Set_string emit,
        "FILE write the job corpus as JSONL (for eel_serve) and exit" );
      ( "--cache-dir",
        Arg.Set_string cache_dir,
        "DIR durable cache directory (default $EEL_CACHE_DIR; unset: memory-only)"
      );
      ( "--cache-mb",
        Arg.Set_int cache_mb,
        "MB disk cache budget (default $EEL_CACHE_MB, else 256)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains (default $EEL_JOBS, else cores)" );
      ( "--fuel",
        Arg.Set_int fuel,
        Printf.sprintf "FUEL per-job instruction budget (default %d)"
          Diffexec.default_fuel );
      ("--out", Arg.Set_string out, "FILE write per-job response JSONL");
      ("--report", Arg.Set_string report, "FILE write the summary report JSON");
      ( "--stats",
        Arg.Set_string stats,
        "FILE write cache + throughput stats JSON" );
      ( "--no-result-cache",
        Arg.Set no_result,
        " disable the whole-job result cache" );
      ( "--no-analysis-cache",
        Arg.Set no_analysis,
        " disable the per-routine analysis cache" );
      ( "--expect-cached",
        Arg.Set expect_cached,
        " fail if any successful job was not served from the result cache" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "eel_batch [options]  -- run a deterministic mixed job corpus through the service";
  let batch = make_jobs ~count:!count ~seed:!seed in
  if !emit <> "" then (
    let oc = open_out !emit in
    List.iter
      (fun j ->
        output_string oc (Proto.job_to_line j);
        output_char oc '\n')
      batch;
    close_out oc;
    Printf.eprintf "eel_batch: wrote %d job(s) to %s\n%!" !count !emit;
    exit 0);
  let cache =
    Cache.create
      ?dir:(if !cache_dir = "" then None else Some !cache_dir)
      ?disk_budget_bytes:
        (if !cache_mb > 0 then Some (!cache_mb * 1024 * 1024) else None)
      ()
  in
  let cfg =
    {
      (Serve.default_config cache) with
      Serve.c_use_result = not !no_result;
      c_use_analysis = not !no_analysis;
      c_fuel = !fuel;
    }
  in
  let jobs = if !jobs > 0 then Some !jobs else None in
  let t0 = Unix.gettimeofday () in
  let results = Serve.run_batch ?jobs cfg batch in
  let dt = Unix.gettimeofday () -. t0 in
  (if !out <> "" then (
     let oc = open_out !out in
     List.iter
       (fun r ->
         output_string oc (Serve.result_to_line r);
         output_char oc '\n')
       results;
     close_out oc));
  (* per-tool rollup *)
  let by_tool =
    List.map
      (fun tool ->
        let rs = List.filter (fun r -> r.Serve.sr_tool = tool) results in
        let ok = List.filter Serve.ok rs in
        let cached = List.filter Serve.cached rs in
        let sum f =
          List.fold_left
            (fun a r ->
              match r.Serve.sr_outcome with Ok o -> a + f o | Error _ -> a)
            0 rs
        in
        ( tool,
          List.length rs,
          List.length ok,
          List.length cached,
          sum (fun o -> o.Serve.o_entry.Ledger.le_sites),
          sum (fun o -> o.Serve.o_masked) ))
      Toolbox.names
  in
  Printf.printf "tool      jobs    ok  cached   sites  masked\n";
  Printf.printf "--------  ----  ----  ------  ------  ------\n";
  List.iter
    (fun (tool, n, ok, cached, sites, masked) ->
      Printf.printf "%-8s  %4d  %4d  %6d  %6d  %6d\n" tool n ok cached sites
        masked)
    by_tool;
  let n_total = List.length results in
  let n_ok = List.length (List.filter Serve.ok results) in
  let n_cached = List.length (List.filter Serve.cached results) in
  let n_err = n_total - n_ok in
  let rate = if dt > 0.0 then float_of_int n_total /. dt else 0.0 in
  Printf.printf "--------  ----  ----  ------  ------  ------\n";
  Printf.printf "total     %4d  %4d  %6d\n" n_total n_ok n_cached;
  Printf.eprintf "eel_batch: %d job(s), %d ok (%d cached), %d failed in %.2fs (%.1f jobs/s)\n%!"
    n_total n_ok n_cached n_err dt rate;
  let report_json =
    let tool_json =
      String.concat ", "
        (List.map
           (fun (tool, n, ok, cached, sites, masked) ->
             Printf.sprintf
               {|%s: {"jobs": %d, "ok": %d, "cached": %d, "sites": %d, "masked": %d}|}
               (Proto.json_str tool) n ok cached sites masked)
           by_tool)
    in
    Printf.sprintf
      {|{"count": %d, "seed": %d, "ok": %d, "cached": %d, "errors": %d, "elapsed_s": %.3f, "jobs_per_s": %.2f, "by_tool": {%s}}|}
      !count !seed n_ok n_cached n_err dt rate tool_json
  in
  (if !report <> "" then (
     let oc = open_out !report in
     output_string oc report_json;
     output_char oc '\n';
     close_out oc));
  (if !stats <> "" then (
     let oc = open_out !stats in
     Printf.fprintf oc
       {|{"jobs": %d, "ok": %d, "cached": %d, "errors": %d, "elapsed_s": %.3f, "jobs_per_s": %.2f, "cache": %s}|}
       n_total n_ok n_cached n_err dt rate (Cache.stats_json cache);
     output_char oc '\n';
     close_out oc));
  List.iter
    (fun r ->
      match r.Serve.sr_outcome with
      | Error m -> Printf.eprintf "  %s (%s/%s): error: %s\n" r.Serve.sr_id r.Serve.sr_tool r.Serve.sr_prog m
      | Ok o when o.Serve.o_verdict <> "equivalent" ->
          Printf.eprintf "  %s (%s/%s): verdict %s\n" r.Serve.sr_id r.Serve.sr_tool r.Serve.sr_prog o.Serve.o_verdict
      | Ok _ -> ())
    results;
  if !expect_cached && n_ok - n_cached > 0 then (
    Printf.eprintf "eel_batch: --expect-cached: %d job(s) missed the result cache\n%!"
      (n_ok - n_cached);
    exit 1);
  if n_err > 0 then exit 1
