(* eel_objdump — inspect a SEF executable through EEL's eyes.

   Shows sections and symbols, the refined routine list (after the paper's
   §3.1 symbol-table analysis: hidden routines, data tables, multiple entry
   points), per-routine disassembly, and CFG statistics. *)

open Cmdliner
module Sef = Eel_sef.Sef
module E = Eel.Executable
module C = Eel.Cfg
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

let mach = Eel_sparc.Mach.mach

(* OS ABI annotation: a [ta] whose immediate lands in the syscall window
   gets its resolved mnemonic as a trailing comment; anything else (other
   conditions, computed trap numbers, out-of-window immediates) is left
   alone. *)
let syscall_note word =
  match Eel_sparc.Insn.decode word with
  | Eel_sparc.Insn.Ticc
      { cond = Eel_sparc.Insn.CA; rs1 = 0; op2 = Eel_sparc.Insn.O_imm imm } -> (
      match Eel_os.Abi.name_of_trap_imm imm with
      | Some name -> Printf.sprintf "  ! sys_%s" name
      | None -> "")
  | _ -> ""

let disas_line a word =
  Format.printf "      %08x: %s%s\n" a
    (mach.Eel_arch.Machine.disas ~pc:a word)
    (syscall_note word)

let dump path disas cfg trace_file metrics =
  let tracer =
    if trace_file <> None || metrics then Some (Trace.create ()) else None
  in
  Trace.set_current tracer;
  let exe = Trace.with_span "load" (fun () -> Sef.read_file path) in
  Format.printf "%a" Sef.pp exe;
  let t = Trace.with_span "analyze" (fun () -> E.read_contents mach exe) in
  (* force full analysis including hidden-routine discovery *)
  let stats = E.jump_stats t in
  Format.printf "\nroutines (%d) — %d instructions, %d indirect jumps (%d unanalyzable):\n"
    stats.E.js_routines stats.E.js_instructions stats.E.js_indirect_jumps
    stats.E.js_unanalyzable;
  List.iter
    (fun (r : E.routine) ->
      let g = E.control_flow_graph t r in
      let s = C.stats_of g in
      Format.printf "  %-20s 0x%x..0x%x%s%s  blocks=%d (delay=%d) edges=%d%s\n"
        r.E.r_name r.E.r_lo r.E.r_hi
        (if r.E.r_hidden then " [hidden]" else "")
        (if List.length r.E.r_entries > 1 then
           Printf.sprintf " [%d entries]" (List.length r.E.r_entries)
         else "")
        s.C.s_blocks s.C.s_delay s.C.s_edges
        (if E.is_data_table t r then " [data table]" else "");
      if disas then
        List.iter
          (fun (b : C.block) ->
            if b.C.kind = C.Normal && b.C.reachable then (
              Array.iter
                (fun (a, (i : Eel_arch.Instr.t)) ->
                  disas_line a i.Eel_arch.Instr.word)
                b.C.instrs;
              match C.term_instr b with
              | Some (a, i) -> disas_line a i.Eel_arch.Instr.word
              | None -> ()))
          (C.blocks g);
      if cfg then
        List.iter
          (fun (b : C.block) ->
            Format.printf "      %a ->" C.pp_block b;
            List.iter (fun (e : C.edge) -> Format.printf " %a" C.pp_block e.C.edst) b.C.succs;
            Format.printf "\n")
          (C.blocks g))
    (E.routines t);
  (match (trace_file, tracer) with
  | Some f, Some tr -> Trace.write_chrome_json tr f
  | _ -> ());
  if metrics then Format.eprintf "%a%!" Metrics.pp ()

(* malformed inputs produce typed errors; report them as such, not as an
   "internal error" backtrace *)
let dump path disas cfg trace_file metrics =
  try dump path disas cfg trace_file metrics
  with Eel_robust.Diag.Error e ->
    Printf.eprintf "eel_objdump: %s\n" (Eel_robust.Diag.error_message e);
    exit 1

let cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let disas = Arg.(value & flag & info [ "d"; "disassemble" ]) in
  let cfg = Arg.(value & flag & info [ "cfg" ] ~doc:"dump CFG edges") in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"write a Chrome trace_event JSON timeline")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"print the metrics registry to stderr")
  in
  Cmd.v
    (Cmd.info "eel_objdump" ~doc:"inspect a SEF executable")
    Term.(const dump $ path $ disas $ cfg $ trace_file $ metrics)

let () = exit (Cmd.eval cmd)
