(* Differential verification driver: run the identity-edit round-trip
   oracle over the example corpus (or over SEF images given on the command
   line) and report each verdict. The oracle pushes every program through
   load -> CFG -> no-op edit -> finalize -> emit, then runs the original
   and edited images in lockstep under a shared fuel budget and requires
   event-equivalence. Front-end refusals surface as structured Diag errors
   (the driver degrades, it never crashes); any divergence or refusal makes
   the exit status 1.

   --metrics dumps the eel.diff.* registry slice at the end; --trace FILE
   writes the whole run as a Chrome trace timeline. *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Diffexec = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

let () =
  Printexc.record_backtrace true;
  let fuel = ref Diffexec.default_fuel in
  let verbose = ref false and show_metrics = ref false in
  let trace_file = ref "" in
  let files = ref [] in
  Arg.parse
    [
      ( "--fuel",
        Arg.Set_int fuel,
        Printf.sprintf "FUEL shared per-side instruction budget (default %d)"
          Diffexec.default_fuel );
      ("--verbose", Arg.Set verbose, "print event/instruction counts per program");
      ("--metrics", Arg.Set show_metrics, "dump the eel.diff.* metrics at the end");
      ("--trace", Arg.Set_string trace_file, "FILE to write a Chrome trace timeline to");
    ]
    (fun f -> files := f :: !files)
    "eel_diff [FILE.sef ...]: identity-edit round-trip oracle (default: built-in corpus)";
  let tracer = if !trace_file <> "" then Some (Trace.create ()) else None in
  Trace.set_current tracer;
  let programs =
    match List.rev !files with
    | [] -> List.map (fun (n, e) -> (n, Ok e)) (Corpus.all ())
    | fs ->
        List.map
          (fun f ->
            (Filename.basename f, Sef.load_file f))
          fs
  in
  let equivalent = ref 0
  and truncated = ref 0
  and diverged = ref 0
  and errors = ref 0 in
  List.iter
    (fun (name, img) ->
      match img with
      | Error e ->
          incr errors;
          Printf.printf "%-14s ERROR  %s\n" name (Diag.error_message e)
      | Ok exe -> (
          match
            Diffexec.identity_roundtrip ~fuel:!fuel ~mach:Eel_sparc.Mach.mach
              exe
          with
          | Error e ->
              incr errors;
              Printf.printf "%-14s ERROR  %s\n" name (Diag.error_message e)
          | Ok rp ->
              (match rp.Diffexec.rp_verdict with
              | Diffexec.Equivalent -> incr equivalent
              | Diffexec.Fuel_truncated_equal -> incr truncated
              | Diffexec.Both_fault | Diffexec.Diverged _ -> incr diverged);
              if !verbose || Diffexec.is_divergence rp.Diffexec.rp_verdict then
                Format.printf "%-14s %a@." name Diffexec.pp_report rp
              else
                Printf.printf "%-14s %s\n" name
                  (Diffexec.verdict_name rp.Diffexec.rp_verdict)))
    programs;
  Printf.printf
    "eel_diff: %d programs: %d equivalent, %d fuel-truncated, %d diverged, %d errors\n"
    (List.length programs) !equivalent !truncated !diverged !errors;
  if !show_metrics then
    List.iter
      (fun (name, v) ->
        if String.length name >= 8 && String.sub name 0 8 = "eel.diff" then
          match v with
          | Metrics.Int n -> Printf.printf "  %-32s %d\n" name n
          | Metrics.Float f -> Printf.printf "  %-32s %g\n" name f
          | Metrics.Hist _ -> ())
      (Metrics.snapshot ());
  (match tracer with
  | Some tr -> Trace.write_chrome_json tr !trace_file
  | None -> ());
  if !diverged > 0 || !errors > 0 then exit 1
