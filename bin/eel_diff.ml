(* Differential verification driver: run the round-trip oracle over the
   example corpus (or over SEF images given on the command line) and report
   each verdict.

   Default mode is the identity-edit oracle: every program is pushed
   through load -> CFG -> no-op edit -> finalize -> emit, then the original
   and edited images run in lockstep under a shared fuel budget and must be
   event-equivalent.

   --tool NAME switches to the contract oracle: the named tool (qpt2,
   oldqpt, tracer, sfi, amemory, optprof) instruments each program for
   real, and the edited image must be event-equivalent to the original
   modulo the tool's declared side effects (its edit contract), with the
   instrumentation's own output cross-validated against emulator ground
   truth. Contract violations and divergences both fail the run.

   Front-end refusals surface as structured Diag errors (the driver
   degrades, it never crashes); any divergence, violation or refusal makes
   the exit status 1.

   --json writes one machine-readable JSON object (per-program verdicts +
   summary) to stdout instead of the table; --metrics dumps the eel.diff.*,
   eel.equiv.* and eel.ledger.* registry slices at the end (metrics merge
   across domains, so this works at any EEL_JOBS); --trace FILE writes the
   whole run as a Chrome trace timeline (and pins the sweep to one domain,
   since span hierarchies don't cross domains). *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Diffexec = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
module Toolbox = Eel_tools.Toolbox
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics

type outcome =
  | O_report of Diffexec.report * int  (** report, masked-event count *)
  | O_error of Diag.error

let run_identity ~fuel exe =
  match Diffexec.identity_roundtrip ~fuel ~mach:Eel_sparc.Mach.mach exe with
  | Ok rp -> O_report (rp, 0)
  | Error e -> O_error e

(* measure (not bare verify_edit) so every --tool run also populates the
   eel.ledger.* overhead accounting, merged across domains at the join *)
let run_tool ~fuel ~tool ~prog exe =
  match Toolbox.measure ~fuel ~prog tool Eel_sparc.Mach.mach exe with
  | Ok ms ->
      O_report
        (ms.Toolbox.ms_report.Diffexec.er_report,
         ms.Toolbox.ms_report.Diffexec.er_masked)
  | Error e -> O_error e

let json_escape = Trace.json_escape

let () =
  Printexc.record_backtrace true;
  let fuel = ref Diffexec.default_fuel in
  let verbose = ref false and show_metrics = ref false and json = ref false in
  let trace_file = ref "" and tool = ref "" in
  let reproduce = ref "" in
  let files = ref [] in
  Arg.parse
    [
      ( "--fuel",
        Arg.Set_int fuel,
        Printf.sprintf "FUEL shared per-side instruction budget (default %d)"
          Diffexec.default_fuel );
      ( "--tool",
        Arg.Set_string tool,
        Printf.sprintf
          "NAME verify a real instrumented edit under its contract (%s)"
          (String.concat "|" Toolbox.names) );
      ("--json", Arg.Set json, "emit machine-readable JSON verdicts on stdout");
      ("--verbose", Arg.Set verbose, "print event/instruction counts per program");
      ( "--metrics",
        Arg.Set show_metrics,
        "dump the eel.diff.* / eel.equiv.* / eel.ledger.* metrics at the end" );
      ("--trace", Arg.Set_string trace_file, "FILE to write a Chrome trace timeline to");
      ( "--reproduce",
        Arg.Set_string reproduce,
        "FILE replay a minimized fault-injection reproducer (JSON artifact \
         written by eel_fuzz --inject); exit 0 iff the fault is still \
         flagged" );
    ]
    (fun f -> files := f :: !files)
    "eel_diff [--tool NAME] [FILE.sef ...]: differential oracle (default: \
     built-in corpus)";
  let tracer = if !trace_file <> "" then Some (Trace.create ()) else None in
  Trace.set_current tracer;
  (if !tool <> "" && not (List.mem !tool Toolbox.names) then (
     Printf.eprintf "eel_diff: unknown tool %s (expected one of: %s)\n" !tool
       (String.concat ", " Toolbox.names);
     exit 2));
  (* mirror the EEL_JOBS notice: armed per-instruction instrumentation
     silently drops the run to tier-1, which is worth a line on stderr *)
  (if !tool <> "" then
     Printf.eprintf
       "eel_diff: --tool arms the ground-truth profile (tier-2 block engine \
        off for profiled runs)\n");
  if !reproduce <> "" then (
    (* replay a reproducer artifact: rebuild the exact (tool, program,
       fault class, sites) trial deterministically and demand the oracle
       still flag it. Reproducers are untrusted input like everything else
       the front end reads, so every failure — unreadable file, malformed
       or truncated JSON, a spec the campaign cannot rebuild — funnels into
       one structured Diag error and exit 2; nothing escapes as an uncaught
       exception. *)
    let module Fault = Eel_mutate.Fault in
    let module Json = Eel_obs.Json in
    let loc = Diag.in_file !reproduce in
    let outcome =
      Diag.guard (fun () ->
          try
          let text =
            try
              let ic = open_in_bin !reproduce in
              let n = in_channel_length ic in
              let s = really_input_string ic n in
              close_in ic;
              s
            with
            | Sys_error m -> Diag.fail (Diag.Sef_error { what = m; loc })
            | End_of_file ->
                Diag.fail
                  (Diag.Sef_error { what = "truncated reproducer file"; loc })
          in
          let spec =
            match Result.bind (Json.parse text) Fault.spec_of_json with
            | Ok spec -> spec
            | Error m ->
                Diag.fail
                  (Diag.Sef_error { what = "bad reproducer: " ^ m; loc })
          in
          (match Fault.replay ~fuel:!fuel spec with
          | Ok (at, desc) -> (spec, at, desc)
          | Error m -> Diag.fail (Diag.Exe_error { what = m }))
          with
          | (Diag.Error _ | Eel_util.Bytebuf.Truncated _) as e -> raise e
          | exn ->
              Diag.fail
                (Diag.Exe_error
                   { what = "replay raised " ^ Printexc.to_string exn }))
    in
    match outcome with
    | Error e ->
        Printf.eprintf "eel_diff --reproduce: %s\n" (Diag.error_message e);
        exit 2
    | Ok (spec, at, desc) ->
        Printf.printf "%s %s on %s: %s\n  fault: %s\n  verdict: %s%s\n"
          spec.Fault.sp_tool
          (Fault.class_name spec.Fault.sp_class)
          spec.Fault.sp_prog
          (if at.Fault.at_flagged then "REPRODUCED" else "NOT REPRODUCED")
          desc at.Fault.at_verdict
          (if at.Fault.at_dclass = "" then ""
           else
             Printf.sprintf " (%s at 0x%x)" at.Fault.at_dclass at.Fault.at_anchor);
        exit (if at.Fault.at_flagged then 0 else 1));
  let programs =
    match List.rev !files with
    | [] -> List.map (fun (n, e) -> (n, Ok e)) (Corpus.all ())
    | fs -> List.map (fun f -> (Filename.basename f, Sef.load_file f)) fs
  in
  let oracle name =
    if !tool = "" then run_identity ~fuel:!fuel
    else run_tool ~fuel:!fuel ~tool:!tool ~prog:name
  in
  (* fan the per-program verifications across domains; results come back in
     program order, and all counting/printing happens serially after the
     join, so the output is byte-identical whatever EEL_JOBS says. Metrics
     and ledger entries live in Domain.DLS and merge deterministically at
     the join, so --metrics works at any domain count; only --trace (span
     hierarchies) forces a serial run, because worker domains have no
     ambient tracer and their spans would be lost. *)
  let jobs =
    if tracer = None then None
    else (
      Printf.eprintf
        "eel_diff: --trace forces EEL_JOBS=1 (span hierarchies don't cross \
         domains)\n";
      Some 1)
  in
  let results =
    Eel_util.Pool.map_list ?jobs
      (fun (name, img) ->
        let outcome =
          match img with Error e -> O_error e | Ok exe -> oracle name exe
        in
        (name, outcome))
      programs
  in
  let equivalent = ref 0
  and truncated = ref 0
  and diverged = ref 0
  and violations = ref 0
  and errors = ref 0 in
  List.iter
    (fun (_, outcome) ->
      match outcome with
      | O_error _ -> incr errors
      | O_report (rp, _) -> (
          match rp.Diffexec.rp_verdict with
          | Diffexec.Equivalent -> incr equivalent
          | Diffexec.Fuel_truncated_equal -> incr truncated
          | Diffexec.Contract_violation -> incr violations
          | Diffexec.Both_fault | Diffexec.Diverged _ -> incr diverged))
    results;
  let json_rows = Buffer.create 1024 in
  if !json then (
    List.iter
      (fun (name, outcome) ->
        if Buffer.length json_rows > 0 then Buffer.add_string json_rows ",";
        match outcome with
        | O_error e ->
            Buffer.add_string json_rows
              (Printf.sprintf {|{"program":"%s","error":"%s"}|}
                 (json_escape name)
                 (json_escape (Diag.error_message e)))
        | O_report (rp, masked) ->
            Buffer.add_string json_rows
              (Printf.sprintf {|{"program":"%s","report":%s}|}
                 (json_escape name)
                 (Diffexec.report_to_json ~masked rp)))
      results;
    Printf.printf
      {|{"oracle":"%s","fuel":%d,"programs":[%s],"summary":{"total":%d,"equivalent":%d,"fuel_truncated":%d,"diverged":%d,"contract_violations":%d,"errors":%d}}|}
      (if !tool = "" then "identity" else !tool)
      !fuel (Buffer.contents json_rows) (List.length results) !equivalent
      !truncated !diverged !violations !errors;
    print_newline ())
  else (
    List.iter
      (fun (name, outcome) ->
        match outcome with
        | O_error e ->
            Printf.printf "%-14s ERROR  %s\n" name (Diag.error_message e)
        | O_report (rp, masked) ->
            if !verbose || Diffexec.is_divergence rp.Diffexec.rp_verdict then
              Format.printf "%-14s %a%s@." name Diffexec.pp_report rp
                (if masked > 0 then
                   Printf.sprintf " [%d events masked]" masked
                 else "")
            else
              Printf.printf "%-14s %s%s\n" name
                (Diffexec.verdict_name rp.Diffexec.rp_verdict)
                (if masked > 0 then
                   Printf.sprintf " (%d events masked)" masked
                 else ""))
      results;
    Printf.printf
      "eel_diff%s: %d programs: %d equivalent, %d fuel-truncated, %d \
       diverged, %d contract violations, %d errors\n"
      (if !tool = "" then "" else " --tool " ^ !tool)
      (List.length results) !equivalent !truncated !diverged !violations
      !errors);
  if !show_metrics then
    List.iter
      (fun (name, v) ->
        let has_prefix p =
          String.length name >= String.length p
          && String.sub name 0 (String.length p) = p
        in
        if
          has_prefix "eel.diff" || has_prefix "eel.equiv"
          || has_prefix "eel.ledger"
        then
          match v with
          | Metrics.Int n -> Printf.printf "  %-32s %d\n" name n
          | Metrics.Float f -> Printf.printf "  %-32s %g\n" name f
          | Metrics.Hist _ -> ())
      (Metrics.snapshot ());
  (match tracer with
  | Some tr -> Trace.write_chrome_json tr !trace_file
  | None -> ());
  if !diverged > 0 || !violations > 0 || !errors > 0 then exit 1
