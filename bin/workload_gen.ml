(* workload_gen — generate synthetic SPARC workload executables.

   Emits either assembly source (--asm) or an assembled SEF executable.
   The generated programs exhibit the code idioms of the paper's SPEC92
   environment (see lib/workload/gen.ml and DESIGN.md). *)

open Cmdliner

let run style routines seed strip asm_only out =
  let os_mode = style = "os" in
  let style =
    match style with
    | "gcc" | "os" -> Eel_workload.Gen.Gcc
    | "sunpro" -> Eel_workload.Gen.Sunpro
    | s -> failwith ("unknown style: " ^ s)
  in
  let cfg = { Eel_workload.Gen.default with style; routines; seed } in
  let src, world =
    if os_mode then
      let src, w = Eel_workload.Gen.os_program cfg in
      (src, Some w)
    else (Eel_workload.Gen.program cfg, None)
  in
  if asm_only then
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc
    | None -> print_string src
  else
    let exe =
      match Eel_sparc.Asm.assemble src with
      | Ok e -> e
      | Error m -> failwith ("assembly failed: " ^ m)
    in
    let exe = if strip then Eel_sef.Sef.strip exe else exe in
    let path = Option.value ~default:"workload.sef" out in
    Eel_sef.Sef.write_file path exe;
    Printf.printf "wrote %s (%d bytes of text+data, %d symbols)\n" path
      (Eel_sef.Sef.image_size exe)
      (List.length exe.Eel_sef.Sef.symbols);
    (* the OS world is part of the workload: say what eel_run --os needs *)
    match world with
    | None -> ()
    | Some w ->
        Printf.printf "os world: stdin %d bytes; files:%s\n"
          (String.length w.Eel_workload.Gen.ow_stdin)
          (match w.Eel_workload.Gen.ow_files with
          | [] -> " (none)"
          | fs ->
              String.concat ""
                (List.map
                   (fun (n, d) ->
                     Printf.sprintf " %s(%d bytes)" n (String.length d))
                   fs))

let cmd =
  let style =
    Arg.(
      value & opt string "gcc"
      & info [ "style" ] ~doc:"gcc, sunpro, or os (I/O-bound OS-mode program)")
  in
  let routines =
    Arg.(value & opt int 20 & info [ "routines" ] ~doc:"number of routines")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"random seed") in
  let strip =
    Arg.(value & flag & info [ "strip" ] ~doc:"strip the symbol table")
  in
  let asm =
    Arg.(value & flag & info [ "asm" ] ~doc:"emit assembly source instead")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"output file")
  in
  Cmd.v
    (Cmd.info "workload_gen" ~doc:"generate synthetic SPARC workloads")
    Term.(const run $ style $ routines $ seed $ strip $ asm $ out)

let () = exit (Cmd.eval cmd)
