lib/arch/machine.ml: Instr Regset Template
