lib/arch/regset.ml: Format List String
