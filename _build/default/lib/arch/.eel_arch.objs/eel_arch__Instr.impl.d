lib/arch/instr.ml: Eel_util Format Regset
