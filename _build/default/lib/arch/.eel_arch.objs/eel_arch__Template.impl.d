lib/arch/template.ml: Array Eel_util List
