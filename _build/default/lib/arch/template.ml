(** Assembled code templates — the machine-level substance of code snippets.

    A template is a sequence of encoded machine words plus two kinds of
    unresolved references:

    - {!vreg_use}: occurrences of {e virtual registers} (written [%v0]–[%v7]
      in snippet assembly). EEL's snippet machinery assigns them dead
      physical registers at each insertion point (register scavenging,
      paper §3.5) and patches the recorded bit fields.
    - {!reloc}: pc-relative control transfers to {e absolute} targets (e.g.
      a snippet calling a handler routine). They can only be resolved once
      the snippet's final address is known, mirroring the paper's snippet
      call-back mechanism ("adjust instruction displacements when an
      instruction's final location is known"). *)

type vreg_use = {
  index : int;  (** which word of the template *)
  lo : int;
  hi : int;  (** the register bit field to patch *)
  vreg : int;  (** virtual register number (0-based) *)
}

type reloc = {
  index : int;  (** word holding the pc-relative control transfer *)
  target : int;  (** absolute byte address the transfer must reach *)
}

type t = { words : int array; vuses : vreg_use list; relocs : reloc list }

let of_words words = { words = Array.of_list words; vuses = []; relocs = [] }

let length t = Array.length t.words

(** Number of distinct virtual registers used. *)
let num_vregs t =
  List.fold_left (fun acc (u : vreg_use) -> max acc (u.vreg + 1)) 0 t.vuses

(** [subst_vregs t assign] returns the words with every virtual-register use
    replaced by [assign.(vreg)]. Relocations remain to be applied. *)
let subst_vregs t (assign : int array) =
  let words = Array.copy t.words in
  List.iter
    (fun (u : vreg_use) ->
      words.(u.index) <-
        Eel_util.Word.set_bits ~lo:u.lo ~hi:u.hi words.(u.index) assign.(u.vreg))
    t.vuses;
  words
