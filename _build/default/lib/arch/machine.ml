(** The machine-description interface between machine-independent EEL and a
    particular architecture (paper §4, "System-Dependent EEL").

    Everything the core editing library knows about an architecture flows
    through one {!t} value. Two implementations exist in this repository:

    - {!Eel_sparc.Mach.mach} — the handwritten SPARC V8 subset (the analog of
      the paper's 2,268 handwritten architecture-specific lines), and
    - an implementation elaborated by {!Eel_spawn} from the concise machine
      description in [descriptions/sparc.spawn] (the analog of
      spawn-generated code).

    A property-based test asserts that the two agree instruction-for-
    instruction on decoding, classification and register usage. *)

type t = {
  name : string;
  word_bytes : int;  (** instruction width in bytes (4 for our RISC) *)
  num_regs : int;  (** register numbers are [0 .. num_regs-1] *)
  reg_name : int -> string;
  zero_regs : Regset.t;
      (** registers hardwired to zero: writes are discarded, reads are not
          real dependences (e.g. SPARC %g0) *)
  sp : int;  (** stack pointer register *)
  link : int;  (** link register written by direct calls (SPARC %o7) *)
  ret_regs : Regset.t;
      (** registers through which returns jump (SPARC %o7/%i7) *)
  allocatable : Regset.t;
      (** registers the snippet allocator may scavenge when dead *)
  reserved_scratch : int;
      (** a register EEL reserves for itself for long-jump synthesis; never
          allocatable and never used by conforming programs (SPARC %g7, which
          the ABI reserves for the system) *)
  reserved_scratch2 : int;
      (** second reserved register (SPARC %g6), needed by the run-time
          address-translation sequence which must hold the old target across
          the relocated delay-slot instruction *)
  lift : int -> Instr.t;
      (** decode one machine word into an EEL instruction. Total: invalid
          encodings yield an {!Instr.Invalid} instruction rather than an
          error, which is how EEL distinguishes data from code. *)
  noreturn : Instr.t -> bool;
      (** ABI knowledge: does this instruction never fall through (e.g. the
          exit system call)? Used by CFG construction to avoid spurious
          fall-through edges off the end of exit-terminated routines. *)
  branch_span : int;
      (** maximum byte magnitude of a conditional-branch displacement *)
  retarget : Instr.t -> disp:int -> int option;
      (** re-encode a pc-relative control transfer with a new byte
          displacement; [None] if the displacement does not fit the field, in
          which case the editor substitutes a longer sequence (§3.3.1) *)
  nop : int;
  set_annul : int -> bool -> int;
      (** set/clear the annul bit of a delayed branch encoding *)
  mk_ba : disp:int -> int;
      (** unconditional pc-relative branch (delay slot NOT annulled; the
          caller supplies the slot contents, usually [nop]) *)
  mk_call : disp:int -> int;
  mk_set_const : reg:int -> int -> int list;
      (** materialize a 32-bit constant into [reg] (SPARC: sethi/or) *)
  mk_jmp_reg : rs1:int -> op2:Instr.operand -> link:int -> int;
  mk_ld_word : addr_rs1:int -> addr_op2:Instr.operand -> dst:int -> int;
  mk_add : rs1:int -> op2:Instr.operand -> dst:int -> int;
  mk_spill : reg:int -> sp_off:int -> int;
      (** store [reg] to [sp + sp_off] (offsets may be negative: EEL owns a
          red zone below the stack pointer) *)
  mk_unspill : reg:int -> sp_off:int -> int;
  set_const_hi : int -> value:int -> int;
      (** patch the high-part immediate field of a constant-building
          instruction (the paper's [SET_SETHI_HI]) *)
  set_const_lo : int -> value:int -> int;
      (** patch the low-part immediate field (the paper's [SET_SETHI_LOW]) *)
  eval_compute : Instr.t -> read:(int -> int option) -> (int * int) option;
  shift_left : Instr.t -> (int * int) option;
      (** [(src, k)] when the instruction is [dst := src << k] — the
          scaled-index shape of dispatch-table address arithmetic *)
  mask_bound : Instr.t -> (int * int) option;
      (** [(src, m)] when the instruction bounds its result to [0..m]
          (e.g. [and src, m]); used to bound dispatch-table extents *)
      (** replicate a computation instruction's effect over statically-known
          register values: given [read] returning known constants, return
          [(dest, value)] when the instruction computes a compile-time
          constant. Powers backward slicing for dispatch tables (§3.3). *)
  asm : params:(string * int) list -> string -> (Template.t, string) result;
      (** assemble a snippet body written in this machine's assembly syntax
          into a {!Template.t}. [$name] parameters are substituted from
          [params]; virtual registers [%v0..%v7] become template
          {!Template.vreg_use}s for later scavenged allocation; pc-relative
          transfers to absolute targets become {!Template.reloc}s. *)
  disas : pc:int -> int -> string;  (** disassemble one word, for tooling *)
}

(** [lift_at mach ~pc word] decodes and pairs the result with its address's
    absolute target, for convenience in diagnostics. *)
let lift_at mach word = mach.lift word

(** Registers that count as definitions for liveness: writes to hardwired
    zero registers define nothing. *)
let real_writes mach (i : Instr.t) = Regset.diff i.writes mach.zero_regs

let real_reads mach (i : Instr.t) = Regset.diff i.reads mach.zero_regs
