(** Register sets as bit masks.

    EEL's analyses (liveness, slicing, snippet register scavenging) operate on
    sets of machine registers. A machine exposes at most 62 register numbers
    (plenty for the integer subset of a RISC: 32 GPRs plus pseudo-registers
    for condition codes and special registers), so a set fits in one OCaml
    [int] and all set operations are single machine instructions. *)

type t = int

let empty : t = 0
let is_empty s = s = 0
let singleton r = 1 lsl r
let add r s = s lor (1 lsl r)
let remove r s = s land lnot (1 lsl r)
let mem r s = s land (1 lsl r) <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let equal (a : t) b = a = b
let subset a b = a land lnot b = 0

let of_list rs = List.fold_left (fun s r -> add r s) empty rs

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

(** [iter f s] applies [f] to each member in increasing register order. *)
let iter f s =
  for r = 0 to 61 do
    if mem r s then f r
  done

let fold f s init =
  let acc = ref init in
  iter (fun r -> acc := f r !acc) s;
  !acc

let elements s = List.rev (fold (fun r acc -> r :: acc) s [])

(** [choose s] returns the lowest-numbered member, if any. *)
let choose s =
  if s = 0 then None
  else (
    let r = ref 0 in
    while not (mem !r s) do
      incr r
    done;
    Some !r)

(** [range lo hi] is the set {lo, lo+1, ..., hi}. *)
let range lo hi =
  let s = ref empty in
  for r = lo to hi do
    s := add r !s
  done;
  !s

let pp ~name fmt s =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map name (elements s)))
