(** Machine-independent instructions — EEL's central abstraction (paper §3.4).

    An {!t} is "a machine-independent description of a machine instruction":
    it records the instruction's functional category, the registers it reads
    and writes, its memory behaviour, and its control behaviour, while keeping
    the original encoding word so the instruction can be re-emitted.

    Values of this type are {e position independent}: control-transfer targets
    are stored as displacements and resolved against a program counter on
    demand ({!abs_target}). This is what lets EEL "allocate only one
    instruction to represent all instances of a particular machine
    instruction" (§3.4) — identical words share one [Instr.t], which the
    instruction-sharing experiment (E5) measures. *)

(** Functional categories, per §3.4: "memory references (loads and stores),
    control transfers (calls, returns, system calls, jumps, and branches),
    computations, and invalid (data)". *)
type category =
  | Load
  | Store
  | Load_store  (** e.g. swap/autoincrement-style combined accesses *)
  | Call  (** direct subroutine call *)
  | Call_indirect  (** call through a register (function pointer) *)
  | Jump  (** direct unconditional jump *)
  | Jump_indirect  (** computed jump (case dispatch, tail call) *)
  | Return
  | Branch  (** conditional, direct, pc-relative *)
  | Syscall
  | Compute
  | Invalid  (** does not decode: data in the text segment *)

let category_name = function
  | Load -> "load"
  | Store -> "store"
  | Load_store -> "load_store"
  | Call -> "call"
  | Call_indirect -> "call_indirect"
  | Jump -> "jump"
  | Jump_indirect -> "jump_indirect"
  | Return -> "return"
  | Branch -> "branch"
  | Syscall -> "syscall"
  | Compute -> "compute"
  | Invalid -> "invalid"

(** The second operand of a register-indirect address or ALU operation. *)
type operand = O_reg of int | O_imm of int

(** Control behaviour of an instruction, with pc-relative targets kept as
    displacements so instruction values can be shared across addresses. *)
type ctl =
  | C_none  (** falls through *)
  | C_branch of { always : bool; never : bool; annul : bool; disp : int }
      (** conditional or unconditional pc-relative branch with a delay slot.
          [disp] is a byte displacement. [annul] is the SPARC-style annul
          bit: for a conditional branch the delay instruction executes only
          if the branch is taken; for [always]/[never] branches the delay
          instruction never executes. *)
  | C_call of { disp : int }  (** direct call, writes the link register *)
  | C_jump_ind of { rs1 : int; op2 : operand; link : int }
      (** register-indirect transfer ([jmpl]-style); [link] receives the pc
          (the machine's zero register if the value is discarded). *)
  | C_syscall of { num : int option }
      (** trap into the OS; [num] is the literal trap/syscall number when it
          is statically evident. *)

type t = {
  word : int;  (** original 32-bit encoding *)
  cat : category;
  reads : Regset.t;
  writes : Regset.t;
  ctl : ctl;
  delayed : bool;  (** has an architectural delay slot *)
  width : int;  (** memory access width in bytes; 0 for non-memory ops *)
  ea : (int * operand) option;
      (** effective address [rs1 + op2] for memory references *)
  mnem : string;  (** mnemonic, for diagnostics and disassembly *)
}

(** {1 Inquiries (paper Fig. 4 style)} *)

let reads t = t.reads
let writes t = t.writes
let category t = t.cat
let is_delayed t = t.delayed

let is_annulled t =
  match t.ctl with C_branch b -> b.annul | _ -> false

let is_memory t = t.width > 0

let is_cti t = match t.ctl with C_none -> false | _ -> true

(** [abs_target ~pc t] resolves a direct control-transfer target. *)
let abs_target ~pc t =
  match t.ctl with
  | C_branch { disp; _ } -> Some (Eel_util.Word.add pc disp)
  | C_call { disp } -> Some (Eel_util.Word.add pc disp)
  | _ -> None

(** [falls_through t] holds when control may continue at the next sequential
    instruction {e after} the instruction (and its delay slot, if any) —
    i.e. the instruction does not unconditionally transfer control away. *)
let falls_through t =
  match t.ctl with
  | C_none -> true
  | C_branch { always; _ } -> not always
  | C_call _ -> true (* control returns after the call *)
  | C_jump_ind _ -> false
  | C_syscall _ -> true

let pp fmt t = Format.fprintf fmt "%s" t.mnem
