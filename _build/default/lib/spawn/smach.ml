(** A complete {!Eel_arch.Machine.t} built from a spawn description.

    This module is the analog of the paper's Fig. 6: "mostly machine-
    independent annotated C++" that consumes spawn-derived information and
    adds the system knowledge spawn cannot extract from instruction
    semantics — the overloaded uses of [jmpl] (indirect call / return /
    computed jump), the system-call ABI, and the names of the instructions
    used for code synthesis (nop, unconditional branch, constant
    construction, spills).

    The derived machine is cross-checked against the handwritten
    {!Eel_sparc.Mach.mach} by property tests, and a second, semantics-driven
    emulator ({!Interp}) executes whole programs from the same description
    and must agree with the handwritten emulator. *)

open Eel_arch
module A = Analyze

(* System conventions, mirroring the handwritten lifter's glue. *)
let link_regs = [ 15; 31 ]

let syscall_reads = Regset.of_list [ 8; 9; 10 ]

let syscall_writes = Regset.of_list [ 8 ]

(** [lift el word] — build an EEL instruction from the description's
    semantics (paper Fig. 6's [mach_inst_make_instruction]). *)
let lift (el : Elab.t) word : Instr.t =
  let mk ?(reads = Regset.empty) ?(writes = Regset.empty) ?(ctl = Instr.C_none)
      ?(delayed = false) ?(width = 0) ?ea ~mnem cat =
    {
      Instr.word = Eel_util.Word.mask word;
      cat;
      reads;
      writes;
      ctl;
      delayed;
      width;
      ea;
      mnem;
    }
  in
  match Elab.instance el word with
  | None -> mk ~mnem:(Printf.sprintf ".word 0x%08x" word) Instr.Invalid
  | Some inst ->
      let mnem = inst.Elab.i_name in
      let reads, writes =
        A.rtl_usage inst.Elab.i_rtl (Regset.empty, Regset.empty)
      in
      let env = A.var_env_rtl inst.Elab.i_rtl_struct [] in
      let pc_writes = A.find_pc_writes env None inst.Elab.i_rtl_struct [] in
      let annul = A.has_annul inst.Elab.i_rtl in
      let delayed = List.length inst.Elab.i_rtl_struct > 1 in
      let mems = A.find_mem env inst.Elab.i_rtl [] in
      match pc_writes with
      | pw :: _ -> (
          match A.as_pc_rel env pw.A.pw_target with
          | Some disp -> (
              (* direct transfer: branch or call *)
              match pw.A.pw_guard with
              | Some tag ->
                  mk ~mnem ~reads ~writes ~delayed
                    (if tag = "n" then Instr.Branch else Instr.Branch)
                    ~ctl:
                      (Instr.C_branch
                         { always = tag = "a"; never = tag = "n"; annul; disp })
              | None -> (
                  match A.find_link inst.Elab.i_rtl_struct with
                  | Some link when List.mem link link_regs ->
                      mk ~mnem ~reads ~writes ~delayed Instr.Call
                        ~ctl:(Instr.C_call { disp })
                  | _ ->
                      (* unconditional direct transfer without a link:
                         branch-always *)
                      mk ~mnem ~reads ~writes ~delayed Instr.Branch
                        ~ctl:
                          (Instr.C_branch
                             { always = true; never = false; annul; disp })))
          | None -> (
              match A.as_indirect env pw.A.pw_target with
              | Some (rs1, op2) ->
                  (* the paper's Fig. 6 jmpl overload resolution *)
                  let link =
                    Option.value ~default:0 (A.find_link inst.Elab.i_rtl_struct)
                  in
                  let ctl = Instr.C_jump_ind { rs1; op2; link } in
                  let cat =
                    if List.mem link link_regs then Instr.Call_indirect
                    else if
                      link = 0 && List.mem rs1 link_regs
                      && (op2 = Instr.O_imm 8 || op2 = Instr.O_imm 12)
                    then Instr.Return
                    else Instr.Jump_indirect
                  in
                  mk ~mnem ~reads ~writes ~delayed cat ~ctl
              | None ->
                  A.err "cannot analyze control transfer of %s" inst.Elab.i_name))
      | [] -> (
          match A.find_syscall env inst.Elab.i_rtl_struct with
          | Some arg ->
              let num =
                match arg with
                | Ast.E_int k -> Some k
                | Ast.E_bin (Ast.Add, Ast.E_reg (_, Ast.E_int 0), Ast.E_int k) ->
                    Some k
                | _ -> None
              in
              mk ~mnem Instr.Syscall
                ~reads:(Regset.union reads syscall_reads)
                ~writes:(Regset.union writes syscall_writes)
                ~ctl:(Instr.C_syscall { num })
          | None -> (
              match mems with
              | [] -> mk ~mnem ~reads ~writes Instr.Compute
              | ms ->
                  let width = List.fold_left (fun a m -> a + m.A.ma_width) 0 ms in
                  let stores = List.exists (fun m -> m.A.ma_store) ms in
                  let loads = List.exists (fun m -> not m.A.ma_store) ms in
                  let ea =
                    match A.as_indirect env (List.hd (List.rev ms)).A.ma_addr with
                    | Some (rs1, op2) -> Some (rs1, op2)
                    | None -> None
                  in
                  let cat =
                    if stores && loads then Instr.Load_store
                    else if stores then Instr.Store
                    else Instr.Load
                  in
                  mk ~mnem ~reads ~writes ~width ?ea cat))

(* ------------------------------------------------------------------ *)
(* Derived field knowledge for synthesis                               *)
(* ------------------------------------------------------------------ *)

(* the pc-relative displacement field of a direct CTI: found by locating
   [pc := pc + (sx(FIELD, k) << s)] in the (unsubstituted) semantics *)
let disp_field (el : Elab.t) name =
  match Hashtbl.find_opt el.Elab.sems name with
  | None -> None
  | Some rtl -> (
      let env = A.var_env_rtl rtl [] in
      let pws = A.find_pc_writes env None rtl [] in
      let rec shape e =
        match e with
        | Ast.E_bin (Ast.Add, Ast.E_pc, rest) | Ast.E_bin (Ast.Add, rest, Ast.E_pc)
          -> (
            match rest with
            | Ast.E_bin (Ast.Shl, Ast.E_sext (Ast.E_field f, k), Ast.E_int s) ->
                Some (f, k, s)
            | Ast.E_sext (Ast.E_field f, k) -> Some (f, k, 0)
            | _ -> None)
        | Ast.E_var _ -> shape (A.chase env e)
        | _ -> None
      in
      List.fold_left
        (fun acc pw -> match acc with Some _ -> acc | None -> shape pw.A.pw_target)
        None pws)

(* the annul-control field: the guard of an [annul] statement *)
let annul_field (el : Elab.t) name =
  match Hashtbl.find_opt el.Elab.sems name with
  | None -> None
  | Some rtl ->
      let rec in_rtl r =
        List.fold_left
          (fun acc ph -> List.fold_left (fun a st -> in_stmt a st) acc ph)
          None r
      and in_stmt acc st =
        match (acc, st) with
        | Some _, _ -> acc
        | None, Ast.S_if (Ast.E_bin (Ast.Eq, Ast.E_field f, Ast.E_int 1), t_, e_)
          ->
            if A.has_annul t_ then Some f else in_rtl e_
        | None, Ast.S_if (_, t_, e_) -> (
            match in_rtl t_ with Some f -> Some f | None -> in_rtl e_)
        | None, _ -> None
      in
      in_rtl rtl

(* ------------------------------------------------------------------ *)
(* The machine                                                         *)
(* ------------------------------------------------------------------ *)

exception Smach_error of string

let serr fmt = Printf.ksprintf (fun s -> raise (Smach_error s)) fmt

(** [mach_of el] — a full machine interface derived from the description
    (plus the synthesis glue). *)
let mach_of (el : Elab.t) : Machine.t =
  let enc = Elab.encode el in
  let field_of name =
    match disp_field el name with
    | Some (f, k, s) -> (f, k, s)
    | None -> serr "no displacement field for %s" name
  in
  let bf, bk, bs = field_of "ba" in
  let cf, ck, cs = field_of "call" in
  let set_disp_field (fname, k, s) word disp =
    if disp land ((1 lsl s) - 1) <> 0 then None
    else
      let v = disp asr s in
      if not (Eel_util.Word.fits_signed k v) then None
      else
        let fd = Hashtbl.find el.Elab.fields fname in
        Some
          (Eel_util.Word.set_bits ~lo:fd.Elab.f_lo ~hi:fd.Elab.f_hi word
             (Eel_util.Word.zext k v))
  in
  let lift_cache = lift el in
  ignore lift_cache;
  let retarget (i : Instr.t) ~disp =
    match Elab.decode el i.Instr.word with
    | None -> None
    | Some name -> (
        match disp_field el name with
        | Some f -> set_disp_field f i.Instr.word disp
        | None -> None)
  in
  let nop = enc "sethi" [ ("rd", 0); ("imm22", 0) ] in
  let aflag =
    match annul_field el "ba" with
    | Some f -> f
    | None -> serr "no annul field"
  in
  let set_annul word annul =
    match Elab.decode el word with
    | Some name when disp_field el name <> None && name <> "call" ->
        let fd = Hashtbl.find el.Elab.fields aflag in
        Eel_util.Word.set_bits ~lo:fd.Elab.f_lo ~hi:fd.Elab.f_hi word
          (if annul then 1 else 0)
    | _ -> word
  in
  let op2_fields = function
    | Instr.O_imm k ->
        [ ("iflag", 1); ("simm13", Eel_util.Word.zext 13 k) ]
    | Instr.O_reg r -> [ ("iflag", 0); ("rs2", r) ]
  in
  {
    Machine.name = "sparc-v8-spawn";
    word_bytes = 4;
    num_regs = el.Elab.num_regs;
    reg_name = Eel_sparc.Regs.name;
    zero_regs = Regset.singleton 0;
    sp = 14;
    link = 15;
    ret_regs = Regset.of_list [ 15; 31 ];
    allocatable =
      Regset.diff (Regset.range 1 31) (Regset.of_list [ 14; 6; 7 ]);
    reserved_scratch = 7;
    reserved_scratch2 = 6;
    lift = lift el;
    noreturn =
      (fun i ->
        match i.Instr.ctl with
        | Instr.C_syscall { num = Some 1 } -> true
        | _ -> false);
    branch_span = (1 lsl (bk - 1)) * (1 lsl bs);
    retarget;
    nop;
    set_annul;
    mk_ba =
      (fun ~disp ->
        match
          set_disp_field (bf, bk, bs) (enc "ba" [ ("aflag", 0) ]) disp
        with
        | Some w -> w
        | None -> serr "ba displacement out of range");
    mk_call =
      (fun ~disp ->
        match set_disp_field (cf, ck, cs) (enc "call" []) disp with
        | Some w -> w
        | None -> serr "call displacement out of range");
    mk_set_const =
      (fun ~reg v ->
        let v = Eel_util.Word.mask v in
        [
          enc "sethi" [ ("rd", reg); ("imm22", v lsr 10) ];
          enc "or"
            (("rd", reg) :: ("rs1", reg) :: op2_fields (Instr.O_imm (v land 0x3FF)));
        ]);
    mk_jmp_reg =
      (fun ~rs1 ~op2 ~link ->
        enc "jmpl" (("rd", link) :: ("rs1", rs1) :: op2_fields op2));
    mk_ld_word =
      (fun ~addr_rs1 ~addr_op2 ~dst ->
        enc "ld" (("rd", dst) :: ("rs1", addr_rs1) :: op2_fields addr_op2));
    mk_add =
      (fun ~rs1 ~op2 ~dst -> enc "add" (("rd", dst) :: ("rs1", rs1) :: op2_fields op2));
    mk_spill =
      (fun ~reg ~sp_off ->
        enc "st" (("rd", reg) :: ("rs1", 14) :: op2_fields (Instr.O_imm sp_off)));
    mk_unspill =
      (fun ~reg ~sp_off ->
        enc "ld" (("rd", reg) :: ("rs1", 14) :: op2_fields (Instr.O_imm sp_off)));
    set_const_hi =
      (fun word ~value ->
        let fd = Hashtbl.find el.Elab.fields "imm22" in
        Eel_util.Word.set_bits ~lo:fd.Elab.f_lo ~hi:fd.Elab.f_hi word
          (Eel_util.Word.mask value lsr 10));
    set_const_lo =
      (fun word ~value ->
        let fd = Hashtbl.find el.Elab.fields "simm13" in
        Eel_util.Word.set_bits ~lo:fd.Elab.f_lo ~hi:fd.Elab.f_hi word
          (Eel_util.Word.mask value land 0x3FF));
    eval_compute =
      (fun i ~read ->
        match Elab.instance el i.Instr.word with
        | None -> None
        | Some inst ->
            let read r = if r = 0 then Some 0 else read r in
            Analyze.eval_compute_rtl inst.Elab.i_rtl ~read);
    shift_left =
      (fun i ->
        match Elab.instance el i.Instr.word with
        | Some inst -> (
            match inst.Elab.i_rtl with
            | [ [ Ast.S_assign
                    ( Ast.L_reg _,
                      Ast.E_bin
                        (Ast.Shl, Ast.E_reg (_, Ast.E_int src), Ast.E_bin (Ast.And, Ast.E_int k, Ast.E_int 31)) ) ] ]
              ->
                Some (src, k land 31)
            | [ [ Ast.S_assign
                    ( Ast.L_reg _,
                      Ast.E_bin (Ast.Shl, Ast.E_reg (_, Ast.E_int src), Ast.E_int k) ) ] ]
              ->
                Some (src, k land 31)
            | _ -> None)
        | None -> None);
    mask_bound =
      (fun i ->
        match Elab.instance el i.Instr.word with
        | Some inst -> (
            let pick = function
              | Ast.S_assign
                  ( Ast.L_reg _,
                    Ast.E_bin (Ast.And, Ast.E_reg (_, Ast.E_int src), Ast.E_int m) )
              | Ast.S_assign
                  ( Ast.L_reg _,
                    Ast.E_bin (Ast.And, Ast.E_int m, Ast.E_reg (_, Ast.E_int src)) )
                when m >= 0 ->
                  Some (src, m)
              | _ -> None
            in
            match inst.Elab.i_rtl with
            | [ stmts ] ->
                List.fold_left
                  (fun acc st -> match acc with Some _ -> acc | None -> pick st)
                  None stmts
            | _ -> None)
        | None -> None);
    asm = (fun ~params src -> Eel_sparc.Asm.parse_snippet ~params src);
    disas =
      (fun ~pc word ->
        ignore pc;
        match Elab.decode el word with
        | Some name -> Printf.sprintf "%s 0x%08x" name word
        | None -> Printf.sprintf ".word 0x%08x" word);
  }

(** Load and elaborate a description file, returning the machine. *)
let load_description path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let d = Parser.parse ~source_name:path src in
  Elab.elaborate d

let mach_of_file path = mach_of (load_description path)
