lib/spawn/interp.ml: Ast Buffer Bytes Eel_emu Eel_util Elab Hashtbl List Option Printf
