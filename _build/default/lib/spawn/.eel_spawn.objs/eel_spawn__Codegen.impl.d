lib/spawn/codegen.ml: Ast Buffer Elab Hashtbl List Printf String
