lib/spawn/smach.ml: Analyze Ast Eel_arch Eel_sparc Eel_util Elab Hashtbl Instr List Machine Option Parser Printf Regset
