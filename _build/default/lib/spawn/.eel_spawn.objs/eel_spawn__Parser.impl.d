lib/spawn/parser.ml: Ast List Printf String
