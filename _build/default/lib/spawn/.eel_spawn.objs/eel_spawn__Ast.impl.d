lib/spawn/ast.ml:
