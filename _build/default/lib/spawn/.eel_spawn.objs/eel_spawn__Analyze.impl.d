lib/spawn/analyze.ml: Ast Eel_arch Eel_util Instr List Option Printf Regset
