lib/spawn/elab.ml: Ast Eel_util Hashtbl List Option Printf
