(** Elaboration of spawn descriptions (paper §4).

    "Spawn extracts much information about a machine's instructions and
    registers from a machine description. It determines a classification for
    each instruction (jump, call, store, invalid, etc.). It finds registers
    that each instruction reads and writes and literal values in instruction
    fields. [...] It even generates C++ code to replicate the computation in
    most instructions."

    Elaboration proceeds in stages:

    + resolve declarations (fields, register sets, aliases, patterns,
      [val] bindings) and beta-reduce each instruction's semantics to a
      closed RTL term (vector application [f X @ \['ne 'e ...\]] binds one
      argument per instruction name);
    + {e decode}: match a machine word against the patterns in declaration
      order, checking [valid] predicates — undecodable words are data;
    + {e instance analysis}: substitute the word's field values into the
      RTL, constant-fold, and read off the register sets, memory behaviour,
      control behaviour (direct target displacement / indirect address /
      condition / annul / phases = delay slots) — everything EEL's
      machine-independent core needs. *)

open Ast

exception Elab_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

type field = { f_lo : int; f_hi : int }

type pat = {
  p_name : string;
  p_constraints : (string * int) list;  (** field -> required value *)
  p_valid : expr option;
}

type t = {
  fields : (string, field) Hashtbl.t;
  num_regs : int;
  aliases : (string, int) Hashtbl.t;  (** alias name -> register number *)
  regset : string;  (** name of the (single) register set *)
  pats : pat list;  (** in declaration order *)
  sems : (string, rtl) Hashtbl.t;  (** closed RTL per instruction name *)
  description : description;
}

(* ------------------------------------------------------------------ *)
(* Normalization (beta reduction + alias resolution)                   *)
(* ------------------------------------------------------------------ *)

(* Substitute expression values for variables; resolve [val] names and
   aliases; turn tag application into tests. *)
let rec norm (el : t) (vals : (string, expr) Hashtbl.t) env e =
  match e with
  | E_int _ | E_field _ | E_pc | E_tag _ -> e
  | E_var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt el.aliases x with
          | Some r -> E_reg (el.regset, E_int r)
          | None -> (
              match Hashtbl.find_opt vals x with
              | Some body -> norm el vals env body
              | None ->
                  if Hashtbl.mem el.fields x then E_field x
                  else E_var x (* runtime temporary *))))
  | E_sext (a, k) -> E_sext (norm el vals env a, k)
  | E_reg (set, i) ->
      let set_name, base =
        if set = el.regset then (set, 0)
        else
          match Hashtbl.find_opt el.aliases set with
          | Some r -> (el.regset, r)
          | None -> err "unknown register set '%s'" set
      in
      let i = norm el vals env i in
      let i = if base = 0 then i else E_bin (Add, E_int base, i) in
      E_reg (set_name, i)
  | E_bin (op, a, b) -> E_bin (op, norm el vals env a, norm el vals env b)
  | E_mem (a, w, sg) -> E_mem (norm el vals env a, w, sg)
  | E_builtin (f, args) -> E_builtin (f, List.map (norm el vals env) args)
  | E_test (a, b) -> E_test (norm el vals env a, norm el vals env b)
  | E_cond (c, a, b) ->
      E_cond (norm el vals env c, norm el vals env a, norm el vals env b)
  | E_app (f, a) -> (
      let f = norm el vals env f in
      let a = norm el vals env a in
      match f with
      | E_lam (x, body) -> E_rtl (norm_rtl el vals ((x, a) :: env) body)
      | E_tag _ -> E_test (f, a)
      | E_var _ ->
          (* a lambda-bound function variable: stays symbolic until the
             surrounding lambda is applied *)
          E_app (f, a)
      | _ -> err "application of a non-function")
  | E_lam (x, body) -> E_lam (x, body_with_env el vals env x body)
  | E_rtl r -> E_rtl (norm_rtl el vals env r)

and body_with_env el vals env x body =
  (* normalize under the lambda, shadowing x *)
  norm_rtl el vals (List.remove_assoc x env) body

and norm_rtl el vals env (r : rtl) : rtl =
  List.map (List.map (norm_stmt el vals env)) r

and norm_stmt el vals env = function
  | S_assign (L_var x, e) -> (
      (* an alias used as an assignment target *)
      match Hashtbl.find_opt el.aliases x with
      | Some rnum -> S_assign (L_reg (el.regset, E_int rnum), norm el vals env e)
      | None -> S_assign (L_var x, norm el vals env e))
  | S_assign (L_reg (set, i), e) -> (
      match norm el vals env (E_reg (set, i)) with
      | E_reg (set', i') -> S_assign (L_reg (set', i'), norm el vals env e)
      | _ -> assert false)
  | S_assign (L_pc, e) -> S_assign (L_pc, norm el vals env e)
  | S_store (a, w, v) -> S_store (norm el vals env a, w, norm el vals env v)
  | S_if (c, t_, e_) ->
      S_if (norm el vals env c, norm_rtl el vals env t_, norm_rtl el vals env e_)
  | S_annul -> S_annul
  | S_syscall e -> S_syscall (norm el vals env e)

(* ------------------------------------------------------------------ *)
(* Elaboration of declarations                                         *)
(* ------------------------------------------------------------------ *)

let elaborate (d : description) : t =
  let el =
    {
      fields = Hashtbl.create 32;
      num_regs = 0;
      aliases = Hashtbl.create 8;
      regset = "";
      pats = [];
      sems = Hashtbl.create 64;
      description = d;
    }
  in
  let vals : (string, expr) Hashtbl.t = Hashtbl.create 16 in
  let regset = ref None in
  let num_regs = ref 0 in
  let pats = ref [] in
  (* first pass: fields, registers, aliases *)
  List.iter
    (function
      | D_fields fs ->
          List.iter
            (fun (name, lo, hi) ->
              if lo > hi || hi > 31 then err "bad field %s %d:%d" name lo hi;
              Hashtbl.replace el.fields name { f_lo = lo; f_hi = hi })
            fs
      | D_register { rname; width; count } ->
          if width <> 32 then err "only 32-bit registers are supported";
          (match !regset with
          | None ->
              regset := Some rname;
              num_regs := count
          | Some _ -> err "only one register set is supported (use aliases)")
      | D_alias { aname; rset; index } -> (
          match !regset with
          | Some r when r = rset -> Hashtbl.replace el.aliases aname index
          | _ -> err "alias %s refers to unknown register set %s" aname rset)
      | _ -> ())
    d.decls;
  let el =
    {
      el with
      regset = (match !regset with Some r -> r | None -> err "no register set");
      num_regs = !num_regs;
    }
  in
  (* second pass: patterns, vals, sems *)
  List.iter
    (function
      | D_pat { names; constraints; valid } ->
          let n = List.length names in
          List.iteri
            (fun i name ->
              let cs =
                List.map
                  (fun c ->
                    if not (Hashtbl.mem el.fields c.pc_field) then
                      err "pattern %s constrains unknown field %s" name c.pc_field;
                    match c.pc_values with
                    | [ v ] -> (c.pc_field, v)
                    | vs when List.length vs = n -> (c.pc_field, List.nth vs i)
                    | _ ->
                        err
                          "pattern vector for %s: %d names but %d values for %s"
                          name n (List.length c.pc_values) c.pc_field)
                  constraints
              in
              pats := { p_name = name; p_constraints = cs; p_valid = valid } :: !pats)
            names
      | D_val (name, body) -> Hashtbl.replace vals name body
      | D_sem { names; body; vector } ->
          let n = List.length names in
          let bodies =
            match vector with
            | None -> List.map (fun _ -> body) names
            | Some args when List.length args = n ->
                List.map (fun a -> E_app (body, a)) args
            | Some args ->
                err "sem vector: %d names but %d arguments" n (List.length args)
          in
          List.iter2
            (fun name b ->
              match norm el vals [] b with
              | E_rtl r -> Hashtbl.replace el.sems name r
              | E_lam _ -> err "semantics of %s is under-applied" name
              | e ->
                  (* a bare expression: treat as a value-producing no-op *)
                  ignore e;
                  err "semantics of %s is not a statement block" name)
            names bodies
      | _ -> ())
    d.decls;
  let el = { el with pats = List.rev !pats } in
  (* every pattern must have semantics *)
  List.iter
    (fun p ->
      if not (Hashtbl.mem el.sems p.p_name) then
        err "pattern %s has no semantics" p.p_name)
    el.pats;
  el

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let field_value (el : t) word fname =
  match Hashtbl.find_opt el.fields fname with
  | Some f -> Eel_util.Word.bits ~lo:f.f_lo ~hi:f.f_hi word
  | None -> err "unknown field %s" fname

(* Evaluate an expression over known field values only (validity
   predicates). *)
let rec eval_fields el word e =
  match e with
  | E_int v -> v
  | E_field f -> field_value el word f
  | E_var f when Hashtbl.mem el.fields f -> field_value el word f
  | E_sext (a, k) -> Eel_util.Word.sext k (eval_fields el word a)
  | E_bin (op, a, b) -> (
      let a = eval_fields el word a and b = eval_fields el word b in
      let open Eel_util.Word in
      match op with
      | Add -> add a b
      | Sub -> sub a b
      | And -> a land b
      | Or -> a lor b
      | Xor -> mask (a lxor b)
      | Shl -> sll a b
      | Shr -> srl a b
      | Sra -> sra a b
      | Eq -> if a = b then 1 else 0
      | Ne -> if a <> b then 1 else 0
      | Mulu | Muls -> mul a b)
  | E_cond (c, a, b) ->
      if eval_fields el word c <> 0 then eval_fields el word a
      else eval_fields el word b
  | _ -> err "validity predicate may only mention fields"

(** [decode el word] — the name of the instruction encoded by [word], if
    any pattern (with its validity predicate) matches. *)
let decode el word =
  let matches p =
    List.for_all (fun (f, v) -> field_value el word f = v) p.p_constraints
    && match p.p_valid with None -> true | Some e -> eval_fields el word e <> 0
  in
  List.find_opt matches el.pats |> Option.map (fun p -> p.p_name)

(** [encode el name fields] — build a word for instruction [name] with the
    given field assignments (pattern-constrained fields are set from the
    pattern). Spawn-derived code synthesis. *)
let encode el name fields =
  match List.find_opt (fun p -> p.p_name = name) el.pats with
  | None -> err "encode: unknown instruction %s" name
  | Some p ->
      let w = ref 0 in
      let set f v =
        match Hashtbl.find_opt el.fields f with
        | Some fd -> w := Eel_util.Word.set_bits ~lo:fd.f_lo ~hi:fd.f_hi !w v
        | None -> err "encode: unknown field %s" f
      in
      List.iter (fun (f, v) -> set f v) p.p_constraints;
      List.iter (fun (f, v) -> set f v) fields;
      !w

(* ------------------------------------------------------------------ *)
(* Instance simplification                                             *)
(* ------------------------------------------------------------------ *)

(* Substitute field values and constant-fold. [fold_tests] additionally
   resolves always/never branch tests ('a / 'n), which is wanted for
   register-usage analysis but not for classification. *)
let rec simplify el word ~fold_tests e =
  let s = simplify el word ~fold_tests in
  match e with
  | E_int _ | E_pc | E_tag _ | E_var _ -> e
  | E_field f -> E_int (field_value el word f)
  | E_sext (a, k) -> (
      match s a with E_int v -> E_int (Eel_util.Word.sext k v) | a -> E_sext (a, k))
  | E_reg (set, i) -> E_reg (set, s i)
  | E_bin (op, a, b) -> (
      match (s a, s b) with
      | E_int x, E_int y ->
          E_int (eval_fields el word (E_bin (op, E_int x, E_int y)))
      | a, b -> E_bin (op, a, b))
  | E_mem (a, w, sg) -> E_mem (s a, w, sg)
  | E_builtin (f, args) -> E_builtin (f, List.map s args)
  | E_test (E_tag "a", _) when fold_tests -> E_int 1
  | E_test (E_tag "n", _) when fold_tests -> E_int 0
  | E_test (a, b) -> E_test (s a, s b)
  | E_cond (c, a, b) -> (
      match s c with E_int 0 -> s b | E_int _ -> s a | c -> E_cond (c, s a, s b))
  | E_app _ | E_lam _ | E_rtl _ -> err "unreduced term in instance semantics"

let rec simplify_rtl el word ~fold_tests (r : rtl) : rtl =
  List.map (List.concat_map (simplify_stmt el word ~fold_tests)) r

and simplify_stmt el word ~fold_tests st : stmt list =
  let se = simplify el word ~fold_tests in
  match st with
  | S_assign (L_reg (set, i), e) -> [ S_assign (L_reg (set, se i), se e) ]
  | S_assign (l, e) -> [ S_assign (l, se e) ]
  | S_store (a, w, v) -> [ S_store (se a, w, se v) ]
  | S_if (c, t_, e_) -> (
      match se c with
      | E_int 0 -> List.concat (simplify_rtl el word ~fold_tests e_)
      | E_int _ -> List.concat (simplify_rtl el word ~fold_tests t_)
      | c ->
          [
            S_if
              (c, simplify_rtl el word ~fold_tests t_, simplify_rtl el word ~fold_tests e_);
          ])
  | S_annul -> [ S_annul ]
  | S_syscall e -> [ S_syscall (se e) ]

(** The fully-instantiated semantics of a decoded word. *)
type instance = {
  i_name : string;
  i_word : int;
  i_rtl : rtl;  (** tests folded: for register usage and execution *)
  i_rtl_struct : rtl;  (** tests kept: for classification *)
}

let instance el word =
  match decode el word with
  | None -> None
  | Some name ->
      let r = Hashtbl.find el.sems name in
      Some
        {
          i_name = name;
          i_word = word;
          i_rtl = simplify_rtl el word ~fold_tests:true r;
          i_rtl_struct = simplify_rtl el word ~fold_tests:false r;
        }
