(** Hand-written recursive-descent parser for spawn machine descriptions.

    The concrete syntax follows paper Fig. 7 closely; see
    [descriptions/sparc.spawn] for the full SPARC description and {!Ast}
    for the grammar summary. Comments run from [!] to end of line. *)

open Ast

exception Parse_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | T_ident of string
  | T_int of int
  | T_tag of string  (** 'ne *)
  | T_punct of string
  | T_eof

let show_token = function
  | T_ident w -> w
  | T_int v -> string_of_int v
  | T_punct q -> "'" ^ q ^ "'"
  | T_tag g -> "'" ^ g
  | T_eof -> "<eof>"

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (
      incr line;
      incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '!' && not (!i + 1 < n && src.[!i + 1] = '=') then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '\'' then (
      let j = ref (!i + 1) in
      while !j < n && is_word src.[!j] do
        incr j
      done;
      toks := (T_tag (String.sub src (!i + 1) (!j - !i - 1)), !line) :: !toks;
      i := !j)
    else if is_word c then (
      let j = ref !i in
      while !j < n && is_word src.[!j] do
        incr j
      done;
      let w = String.sub src !i (!j - !i) in
      (match int_of_string_opt w with
      | Some v -> toks := (T_int v, !line) :: !toks
      | None -> toks := (T_ident w, !line) :: !toks);
      i := !j)
    else
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      if three = ">>a" then (
        toks := (T_punct ">>a", !line) :: !toks;
        i := !i + 3)
      else if List.mem two [ ":="; "&&"; "<<"; ">>"; "*u"; "*s"; "!=" ] then (
        toks := (T_punct two, !line) :: !toks;
        i := !i + 2)
      else (
        toks := (T_punct (String.make 1 c), !line) :: !toks;
        incr i)
  done;
  List.rev ((T_eof, !line) :: !toks)

type stream = { mutable toks : (token * int) list }

let peek s = fst (List.hd s.toks)
let peek2 s = match s.toks with _ :: (t, _) :: _ -> t | _ -> T_eof
let lineno s = snd (List.hd s.toks)
let advance s =
  match s.toks with [] | [ _ ] -> () | _ :: rest -> s.toks <- rest

let next s =
  let t = peek s in
  advance s;
  t

let expect s p =
  match next s with
  | T_punct q when q = p -> ()
  | t -> err "line %d: expected '%s', got %s" (lineno s) p (show_token t)

let expect_ident s =
  match next s with
  | T_ident w -> w
  | t -> err "line %d: expected identifier, got %s" (lineno s) (show_token t)

let expect_int s =
  match next s with
  | T_int v -> v
  | T_punct "-" -> (
      match next s with
      | T_int v -> -v
      | t -> err "line %d: expected integer, got %s" (lineno s) (show_token t))
  | t -> err "line %d: expected integer, got %s" (lineno s) (show_token t)

let is_punct s p = match peek s with T_punct q -> q = p | _ -> false

let is_ident s w = match peek s with T_ident q -> q = w | _ -> false

let eat s p =
  if is_punct s p then (
    advance s;
    true)
  else false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let builtins =
  [ "cc_add"; "cc_sub"; "cc_logic"; "hmulu"; "hmuls"; "divu"; "divs"; "ltu" ]

let rec parse_expr s = parse_ternary s

and parse_ternary s =
  let c = parse_or s in
  if is_punct s "?" && peek2 s <> T_punct "{" then (
    advance s;
    let a = parse_expr s in
    expect s ":";
    let b = parse_expr s in
    E_cond (c, a, b))
  else c

and parse_or s =
  let a = ref (parse_xor s) in
  while is_punct s "|" do
    advance s;
    a := E_bin (Or, !a, parse_xor s)
  done;
  !a

and parse_xor s =
  let a = ref (parse_and s) in
  while is_punct s "^" do
    advance s;
    a := E_bin (Xor, !a, parse_and s)
  done;
  !a

and parse_and s =
  let a = ref (parse_cmp s) in
  while is_punct s "&" do
    advance s;
    a := E_bin (And, !a, parse_cmp s)
  done;
  !a

and parse_cmp s =
  let a = parse_shift s in
  if eat s "=" then E_bin (Eq, a, parse_shift s)
  else if eat s "!=" then E_bin (Ne, a, parse_shift s)
  else a

and parse_shift s =
  let a = ref (parse_addsub s) in
  let continue_ = ref true in
  while !continue_ do
    if is_punct s "<<" then (
      advance s;
      a := E_bin (Shl, !a, parse_addsub s))
    else if is_punct s ">>a" then (
      advance s;
      a := E_bin (Sra, !a, parse_addsub s))
    else if is_punct s ">>" then (
      advance s;
      a := E_bin (Shr, !a, parse_addsub s))
    else continue_ := false
  done;
  !a

and parse_addsub s =
  let a = ref (parse_mul s) in
  let continue_ = ref true in
  while !continue_ do
    if is_punct s "+" then (
      advance s;
      a := E_bin (Add, !a, parse_mul s))
    else if is_punct s "-" then (
      advance s;
      a := E_bin (Sub, !a, parse_mul s))
    else continue_ := false
  done;
  !a

and parse_mul s =
  let a = ref (parse_unary s) in
  let continue_ = ref true in
  while !continue_ do
    if is_punct s "*u" then (
      advance s;
      a := E_bin (Mulu, !a, parse_unary s))
    else if is_punct s "*s" then (
      advance s;
      a := E_bin (Muls, !a, parse_unary s))
    else continue_ := false
  done;
  !a

and parse_unary s =
  if eat s "~" then E_bin (Xor, E_int 0xFFFFFFFF, parse_unary s)
  else parse_postfix s

and parse_postfix s =
  let a = ref (parse_atom s) in
  while is_punct s "(" do
    advance s;
    let arg = parse_expr s in
    expect s ")";
    a := E_app (!a, arg)
  done;
  !a

and parse_lambda s =
  (* '\' already consumed *)
  let x = expect_ident s in
  expect s ".";
  let body =
    if is_punct s "{" then parse_block s
    else if is_punct s "\\" then (
      advance s;
      [ [ S_assign (L_var "_ret", parse_lambda s) ] ])
    else [ [ S_assign (L_var "_ret", parse_expr s) ] ]
  in
  E_lam (x, body)

and parse_mem_expr s ~signed =
  (* 'm' / 'ms' already consumed; at '{' *)
  expect s "{";
  let w = expect_int s in
  expect s "}";
  expect s "[";
  let addr = parse_expr s in
  expect s "]";
  E_mem (addr, w, signed)

and parse_atom s =
  match next s with
  | T_int v -> E_int v
  | T_tag g -> E_tag g
  | T_punct "(" ->
      let e = parse_expr s in
      expect s ")";
      e
  | T_punct "\\" -> parse_lambda s
  | T_punct "-" -> (
      match next s with
      | T_int v -> E_int (-v)
      | t -> err "line %d: expected integer after '-', got %s" (lineno s) (show_token t))
  | T_ident "pc" -> E_pc
  | T_ident "sx" ->
      expect s "(";
      let e = parse_expr s in
      expect s ",";
      let k = expect_int s in
      expect s ")";
      E_sext (e, k)
  | T_ident "m" when is_punct s "{" -> parse_mem_expr s ~signed:false
  | T_ident "ms" when is_punct s "{" -> parse_mem_expr s ~signed:true
  | T_ident f when List.mem f builtins ->
      expect s "(";
      let args = ref [ parse_expr s ] in
      while eat s "," do
        args := parse_expr s :: !args
      done;
      expect s ")";
      E_builtin (f, List.rev !args)
  | T_ident w ->
      if is_punct s "[" then (
        advance s;
        let e = parse_expr s in
        expect s "]";
        E_reg (w, e))
      else E_var w
  | t -> err "line %d: unexpected %s in expression" (lineno s) (show_token t)

(* ------------------------------------------------------------------ *)
(* Statements and blocks                                               *)
(* ------------------------------------------------------------------ *)

and parse_block s : rtl =
  expect s "{";
  let phases = ref [] in
  let cur = ref [] in
  let flush () =
    phases := List.rev !cur :: !phases;
    cur := []
  in
  let rec go () =
    if eat s "}" then flush ()
    else if eat s ";" then (
      flush ();
      go ())
    else if eat s "," then go ()
    else (
      cur := parse_stmt s :: !cur;
      go ())
  in
  go ();
  List.rev !phases

and parse_stmt s : stmt =
  match peek s with
  | T_ident "annul" ->
      advance s;
      S_annul
  | T_ident "syscall" ->
      advance s;
      expect s "(";
      let e = parse_expr s in
      expect s ")";
      S_syscall e
  | T_ident ("m" | "ms") when peek2 s = T_punct "{" -> (
      let signed = match next s with T_ident "ms" -> true | _ -> false in
      ignore signed;
      expect s "{";
      let w = expect_int s in
      expect s "}";
      expect s "[";
      let addr = parse_expr s in
      expect s "]";
      expect s ":=";
      let v = parse_expr s in
      S_store (addr, w, v))
  | _ -> (
      let e = parse_expr s in
      if eat s ":=" then
        let rhs = parse_expr s in
        match e with
        | E_pc -> S_assign (L_pc, rhs)
        | E_reg (set, idx) -> S_assign (L_reg (set, idx), rhs)
        | E_var x -> S_assign (L_var x, rhs)
        | _ -> err "line %d: bad assignment target" (lineno s)
      else if eat s "?" then (
        let then_ = parse_block s in
        let else_ = if eat s ":" then parse_block s else [ [] ] in
        S_if (e, then_, else_))
      else err "line %d: expected ':=' or '?' after expression" (lineno s))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_name_vector s =
  if eat s "[" then (
    let names = ref [] in
    while not (is_punct s "]") do
      names := expect_ident s :: !names
    done;
    expect s "]";
    List.rev !names)
  else [ expect_ident s ]

let parse_int_vector s =
  if eat s "[" then (
    let vals = ref [] in
    while not (is_punct s "]") do
      vals := expect_int s :: !vals
    done;
    expect s "]";
    List.rev !vals)
  else [ expect_int s ]

let parse_constraints s =
  let one () =
    let f = expect_ident s in
    expect s "=";
    { pc_field = f; pc_values = parse_int_vector s }
  in
  let cs = ref [ one () ] in
  while is_punct s "&&" do
    advance s;
    cs := one () :: !cs
  done;
  List.rev !cs

let parse_decl s : decl option =
  match peek s with
  | T_eof -> None
  | T_ident "fields" ->
      advance s;
      let one () =
        let name = expect_ident s in
        let lo = expect_int s in
        expect s ":";
        let hi = expect_int s in
        (name, lo, hi)
      in
      let fs = ref [ one () ] in
      while eat s "," do
        fs := one () :: !fs
      done;
      Some (D_fields (List.rev !fs))
  | T_ident "register" ->
      advance s;
      let _ty = expect_ident s in
      expect s "{";
      let width = expect_int s in
      expect s "}";
      let rname = expect_ident s in
      expect s "[";
      let count = expect_int s in
      expect s "]";
      Some (D_register { rname; width; count })
  | T_ident "alias" ->
      advance s;
      let aname = expect_ident s in
      (match next s with
      | T_ident "is" -> ()
      | t -> err "line %d: expected 'is', got %s" (lineno s) (show_token t));
      let rset = expect_ident s in
      expect s "[";
      let index = expect_int s in
      expect s "]";
      Some (D_alias { aname; rset; index })
  | T_ident "pat" ->
      advance s;
      let names = parse_name_vector s in
      (match next s with
      | T_ident "is" -> ()
      | t -> err "line %d: expected 'is', got %s" (lineno s) (show_token t));
      let constraints = parse_constraints s in
      let valid =
        if is_ident s "valid" then (
          advance s;
          Some (parse_expr s))
        else None
      in
      Some (D_pat { names; constraints; valid })
  | T_ident "val" ->
      advance s;
      let name = expect_ident s in
      (match next s with
      | T_ident "is" -> ()
      | t -> err "line %d: expected 'is', got %s" (lineno s) (show_token t));
      let body =
        if is_punct s "{" then E_rtl (parse_block s)
        else if is_punct s "\\" then (
          advance s;
          parse_lambda s)
        else parse_expr s
      in
      Some (D_val (name, body))
  | T_ident "sem" ->
      advance s;
      let names = parse_name_vector s in
      (match next s with
      | T_ident "is" -> ()
      | t -> err "line %d: expected 'is', got %s" (lineno s) (show_token t));
      let body =
        if is_punct s "{" then E_rtl (parse_block s) else parse_expr s
      in
      let vector =
        if eat s "@" then (
          expect s "[";
          let args = ref [] in
          while not (is_punct s "]") do
            args := parse_atom s :: !args
          done;
          expect s "]";
          Some (List.rev !args))
        else None
      in
      Some (D_sem { names; body; vector })
  | t -> err "line %d: unexpected %s at top level" (lineno s) (show_token t)

(** Parse a complete description. *)
let parse ?(source_name = "<description>") src =
  let s = { toks = tokenize src } in
  let decls = ref [] in
  let rec go () =
    match parse_decl s with
    | Some d ->
        decls := d :: !decls;
        go ()
    | None -> ()
  in
  go ();
  { source_name; decls = List.rev !decls }
