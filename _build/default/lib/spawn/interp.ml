(** A semantics-driven emulator: execute programs directly from the spawn
    description's RTL.

    This is an independent implementation of the SPARC's behaviour — shared
    code with the handwritten emulator ({!Eel_emu.Emu}) is limited to the
    machine-state container (memory, registers, output buffer, system
    calls). Whole-program equivalence between the two emulators is a strong
    check that the 100-line description really captures the instruction
    set's semantics, which is what makes spawn-derived analysis trustworthy
    (paper §4: the machine description "specifies both instruction syntax
    and semantics").

    Parallel statements ([,]) read the pre-phase state: all right-hand
    sides and guards are evaluated before any effect is committed. The
    pc/npc rule is uniform: a [pc := t] in the delay phase redirects [npc];
    [annul] skips the instruction that would otherwise execute next. *)

open Ast
module Emu = Eel_emu.Emu

exception Interp_error of string

let ierr fmt = Printf.ksprintf (fun s -> raise (Interp_error s)) fmt

(* branch-test tags over the condition-codes value (N=8, Z=4, V=2, C=1) —
   implemented independently of Eel_sparc.Insn.cond_eval *)
let test_tag tag cc =
  let n = cc land 8 <> 0
  and z = cc land 4 <> 0
  and v = cc land 2 <> 0
  and c = cc land 1 <> 0 in
  let ( <> ) a b = (a || b) && not (a && b) in
  match tag with
  | "a" -> true
  | "n" -> false
  | "e" -> z
  | "ne" -> not z
  | "g" -> not (z || n <> v)
  | "le" -> z || n <> v
  | "ge" -> not (n <> v)
  | "l" -> n <> v
  | "gu" -> not (c || z)
  | "leu" -> c || z
  | "cc" -> not c
  | "cs" -> c
  | "pos" -> not n
  | "neg" -> n
  | "vc" -> not v
  | "vs" -> v
  | t -> ierr "unknown test tag '%s" t

let eval_builtin f args =
  let open Eel_util.Word in
  match (f, args) with
  | "cc_add", [ a; b ] ->
      let r = add a b in
      let n = if r land 0x80000000 <> 0 then 8 else 0 in
      let z = if r = 0 then 4 else 0 in
      let v =
        if lnot (a lxor b) land (a lxor r) land 0x80000000 <> 0 then 2 else 0
      in
      let c = if a + b > 0xFFFFFFFF then 1 else 0 in
      n lor z lor v lor c
  | "cc_sub", [ a; b ] ->
      let r = sub a b in
      let n = if r land 0x80000000 <> 0 then 8 else 0 in
      let z = if r = 0 then 4 else 0 in
      let v = if (a lxor b) land (a lxor r) land 0x80000000 <> 0 then 2 else 0 in
      let c = if a < b then 1 else 0 in
      n lor z lor v lor c
  | "cc_logic", [ r; _ ] | "cc_logic", [ r ] ->
      (if r land 0x80000000 <> 0 then 8 else 0) lor if r = 0 then 4 else 0
  | "ltu", [ a; b ] -> if mask a < mask b then 1 else 0
  | "hmulu", [ a; b ] -> mask ((a * b) lsr 32)
  | "hmuls", [ a; b ] -> mask ((signed a * signed b) asr 32)
  | "divu", [ y; a; b ] ->
      if b = 0 then ierr "division by zero";
      mask (((y lsl 32) lor a) / b)
  | "divs", [ y; a; b ] ->
      if b = 0 then ierr "division by zero";
      of_signed (((signed y * 4294967296) + a) / signed b)
  | f, _ -> ierr "bad builtin %s" f

(* one instruction's effects, gathered before committing *)
type effect =
  | Ef_reg of int * int
  | Ef_store of int * int * int  (** addr, width, value *)
  | Ef_pc of int
  | Ef_annul
  | Ef_syscall of int

let rec eval (t : Emu.t) vars e =
  let ev = eval t vars in
  let open Eel_util.Word in
  match e with
  | E_int v -> mask v
  | E_field _ -> ierr "unsubstituted field"
  | E_sext (a, k) -> mask (sext k (ev a))
  | E_reg (_, i) -> Emu.reg t (ev i)
  | E_pc -> t.Emu.pc
  | E_var x -> (
      match Hashtbl.find_opt vars x with
      | Some v -> v
      | None -> ierr "unbound temporary %s" x)
  | E_bin (op, a, b) -> (
      let a = ev a and b = ev b in
      match op with
      | Add -> add a b
      | Sub -> sub a b
      | And -> a land b
      | Or -> a lor b
      | Xor -> mask (a lxor b)
      | Shl -> sll a b
      | Shr -> srl a b
      | Sra -> sra a b
      | Eq -> if a = b then 1 else 0
      | Ne -> if a <> b then 1 else 0
      | Mulu -> mul a b
      | Muls -> mul a b)
  | E_mem (a, w, signed) -> Emu.load_mem t (ev a) w ~signed
  | E_builtin (f, args) -> eval_builtin f (List.map ev args)
  | E_test (E_tag g, cc) -> if test_tag g (ev cc) then 1 else 0
  | E_test _ -> ierr "test applied to a non-tag"
  | E_tag _ -> ierr "bare tag in expression"
  | E_cond (c, a, b) -> if ev c <> 0 then ev a else ev b
  | E_app _ | E_lam _ | E_rtl _ -> ierr "unreduced term at run time"

(* gather a phase's effects with parallel (pre-state) evaluation *)
let rec gather t vars stmts acc =
  List.fold_left
    (fun acc st ->
      match st with
      | S_assign (L_var x, e) ->
          (* temporaries are sequential bookkeeping, visible immediately *)
          Hashtbl.replace vars x (eval t vars e);
          acc
      | S_assign (L_reg (_, i), e) ->
          Ef_reg (eval t vars i, eval t vars e) :: acc
      | S_assign (L_pc, e) -> Ef_pc (eval t vars e) :: acc
      | S_store (a, w, v) -> Ef_store (eval t vars a, w, eval t vars v) :: acc
      | S_if (c, then_, else_) ->
          let taken = eval t vars c <> 0 in
          List.fold_left
            (fun acc ph -> gather t vars ph acc)
            acc
            (if taken then then_ else else_)
      | S_annul -> Ef_annul :: acc
      | S_syscall e -> Ef_syscall (eval t vars e) :: acc)
    acc stmts

(** Execute one instruction via the description's semantics. *)
let step (el : Elab.t) (t : Emu.t) =
  let pc = t.Emu.pc in
  if pc land 3 <> 0 then raise (Emu.Fault (Printf.sprintf "misaligned pc 0x%x" pc));
  if pc < 0 || pc + 4 > Bytes.length t.Emu.mem then
    raise (Emu.Fault (Printf.sprintf "pc out of range 0x%x" pc));
  let word = Eel_util.Bytebuf.get32_be t.Emu.mem pc in
  t.Emu.ninsns <- t.Emu.ninsns + 1;
  match Elab.instance el word with
  | None ->
      raise
        (Emu.Fault (Printf.sprintf "illegal instruction 0x%08x at pc=0x%x" word pc))
  | Some inst ->
      let vars = Hashtbl.create 4 in
      let next_pc = ref t.Emu.npc in
      let next_npc = ref (t.Emu.npc + 4) in
      let annul = ref false in
      let apply = function
        | Ef_reg (r, v) -> Emu.set_reg t r v
        | Ef_store (a, w, v) -> Emu.store_mem t a w v
        | Ef_pc v -> next_npc := v
        | Ef_annul -> annul := true
        | Ef_syscall n -> Emu.syscall t n
      in
      List.iter
        (fun phase -> List.iter apply (List.rev (gather t vars phase [])))
        inst.Elab.i_rtl;
      if !annul then (
        next_pc := !next_npc;
        next_npc := !next_npc + 4);
      t.Emu.pc <- !next_pc;
      t.Emu.npc <- !next_npc

(** Run a whole executable under the RTL interpreter. *)
let run ?(fuel = 200_000_000) (el : Elab.t) exe =
  let t = Emu.load exe in
  while t.Emu.exited = None do
    if t.Emu.ninsns >= fuel then raise Emu.Out_of_fuel;
    step el t
  done;
  ( {
      Emu.exit_code = Option.get t.Emu.exited;
      insns = t.Emu.ninsns;
      loads = t.Emu.nloads;
      stores = t.Emu.nstores;
      out = Buffer.contents t.Emu.output;
    },
    t )
