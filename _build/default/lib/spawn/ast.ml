(** Abstract syntax of spawn machine descriptions (paper §4, Fig. 7).

    A description has four kinds of declarations:

    - [fields name lo:hi, ...] — instruction bit fields;
    - [register integer{w} R[n]] and [alias NAME is R[k]] — register sets
      and aliases (condition codes and special registers are modeled as
      high-numbered registers, exactly as the paper's [PSR is R[32]]);
    - [pat name is op=2 && op3=0x38] / [pat [n1 n2 ...] is ... f=[v1 v2 ...]]
      — binary encodings, with the paper's matrix convention: a vector of
      names zips with vectors of field values. An optional
      [valid <expr>] clause adds a decode-validity predicate over fields
      (reserved-bits-must-be-zero rules);
    - [val x is e] — semantic function bindings (with lambdas [\x.e]) and
      [sem name is e] / [sem [n1 ...] is f X @ ['t1 ...]] — attaching
      (vectors of) semantics to instructions.

    Semantic expressions are a small register-transfer language: statements
    grouped with [,] execute in parallel; [;] separates {e phases} (the
    paper: "the semicolon indicates that the first statement executes before
    the second statement (which overlaps the next instruction's execution)"
    — i.e. everything after [;] happens in the delay-slot cycle, which is
    how delayed control transfer is expressed). *)

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Sra | Eq | Ne | Mulu | Muls

type expr =
  | E_int of int
  | E_field of string  (** zero-extended field value *)
  | E_sext of expr * int  (** [sx(e, k)]: sign-extend low k bits *)
  | E_reg of string * expr  (** [R[e]] — set (or alias) name and index *)
  | E_pc
  | E_var of string  (** lambda- or [t :=]-bound variable *)
  | E_bin of binop * expr * expr
  | E_mem of expr * int * bool  (** [m{w}[addr]]; bool = sign-extending *)
  | E_builtin of string * expr list
      (** builtins: [cc_add(a,b)], [cc_sub], [cc_logic], [hmulu], [hmuls],
          [divu(y,a,b)], [divs(y,a,b)] *)
  | E_test of expr * expr  (** [tst(cc)]: apply a branch-test tag *)
  | E_tag of string  (** ['ne] *)
  | E_cond of expr * expr * expr  (** value-level [c ? a : b] *)
  | E_app of expr * expr
  | E_lam of string * rtl
  | E_rtl of rtl  (** a statement block used as a function body *)

(** Statements. A [rtl] is a list of phases; each phase is a list of
    parallel statements. *)
and stmt =
  | S_assign of lhs * expr
  | S_store of expr * int * expr  (** [m{w}[addr] := v] *)
  | S_if of expr * rtl * rtl  (** guard ? { ... } : { ... } *)
  | S_annul  (** squash the delay-slot instruction *)
  | S_syscall of expr  (** trap into the OS with the given number *)

and lhs = L_reg of string * expr | L_pc | L_var of string

and rtl = stmt list list

type pat_constraint = { pc_field : string; pc_values : int list }
(** [f=[v1 v2 ...]]; a scalar constraint has one value *)

type decl =
  | D_fields of (string * int * int) list  (** name, lo, hi *)
  | D_register of { rname : string; width : int; count : int }
  | D_alias of { aname : string; rset : string; index : int }
  | D_pat of {
      names : string list;
      constraints : pat_constraint list;
      valid : expr option;
    }
  | D_val of string * expr
  | D_sem of { names : string list; body : expr; vector : expr list option }
      (** [sem [names] is body @ [args]]: [body] applied to each arg *)

type description = { source_name : string; decls : decl list }
