(** Deriving EEL instructions from elaborated spawn semantics (paper §4).

    This module reads each decoded instance's RTL and extracts what the
    paper says spawn extracts: classification, registers read and written,
    literal field values, memory behaviour, and control behaviour. The
    handful of system conventions spawn cannot know — which [jmpl] uses are
    calls/returns, what a system call reads and writes — live in
    {!Smach}, mirroring the paper's Fig. 6 annotated glue ("Spawn is
    currently unaware of a system's subroutine and system call
    conventions, so these instructions require additional processing"). *)

open Ast
open Eel_arch

exception Analyze_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Analyze_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Variable chasing                                                    *)
(* ------------------------------------------------------------------ *)

(* temporaries ([t := ...]) bound anywhere in the instance *)
let rec var_env_rtl (r : rtl) acc =
  List.fold_left
    (fun acc phase -> List.fold_left (fun acc st -> var_env_stmt st acc) acc phase)
    acc r

and var_env_stmt st acc =
  match st with
  | S_assign (L_var x, e) -> (x, e) :: acc
  | S_if (_, t_, e_) -> var_env_rtl t_ (var_env_rtl e_ acc)
  | _ -> acc

let rec chase env e =
  match e with
  | E_var x -> (
      match List.assoc_opt x env with
      | Some v -> chase env v
      | None -> e)
  | e -> e

(* ------------------------------------------------------------------ *)
(* Register usage                                                      *)
(* ------------------------------------------------------------------ *)

let reg_of_index = function
  | E_int k -> k
  | _ -> err "register index did not fold to a constant"

let rec expr_reads e acc =
  match e with
  | E_int _ | E_pc | E_tag _ | E_field _ | E_var _ -> acc
  | E_reg (_, i) -> Regset.add (reg_of_index i) acc
  | E_sext (a, _) -> expr_reads a acc
  | E_bin (_, a, b) -> expr_reads a (expr_reads b acc)
  | E_mem (a, _, _) -> expr_reads a acc
  | E_builtin (_, args) -> List.fold_left (fun acc a -> expr_reads a acc) acc args
  | E_test (a, b) -> expr_reads a (expr_reads b acc)
  | E_cond (c, a, b) -> expr_reads c (expr_reads a (expr_reads b acc))
  | E_app _ | E_lam _ | E_rtl _ -> err "unreduced term"

let rec rtl_usage (r : rtl) (reads, writes) =
  List.fold_left
    (fun acc phase -> List.fold_left (fun acc st -> stmt_usage st acc) acc phase)
    (reads, writes) r

and stmt_usage st (reads, writes) =
  match st with
  | S_assign (L_reg (_, i), e) ->
      (expr_reads e reads, Regset.add (reg_of_index i) writes)
  | S_assign (L_pc, e) | S_assign (L_var _, e) -> (expr_reads e reads, writes)
  | S_store (a, _, v) -> (expr_reads a (expr_reads v reads), writes)
  | S_if (c, t_, e_) ->
      rtl_usage e_ (rtl_usage t_ (expr_reads c reads, writes))
  | S_annul -> (reads, writes)
  | S_syscall e -> (expr_reads e reads, writes)

(* ------------------------------------------------------------------ *)
(* Control behaviour                                                   *)
(* ------------------------------------------------------------------ *)

type pc_write = {
  pw_target : expr;  (** chased target expression *)
  pw_guard : string option;  (** enclosing branch-test tag, if any *)
}

let rec find_pc_writes env guard (r : rtl) acc =
  List.fold_left
    (fun acc phase ->
      List.fold_left (fun acc st -> pc_writes_stmt env guard st acc) acc phase)
    acc r

and pc_writes_stmt env guard st acc =
  match st with
  | S_assign (L_pc, e) -> { pw_target = chase env e; pw_guard = guard } :: acc
  | S_if (E_test (E_tag g, _), t_, e_) ->
      find_pc_writes env (Some g) t_ (find_pc_writes env guard e_ acc)
  | S_if (_, t_, e_) ->
      find_pc_writes env guard t_ (find_pc_writes env guard e_ acc)
  | _ -> acc

let rec has_annul (r : rtl) =
  List.exists
    (List.exists (function
      | S_annul -> true
      | S_if (_, t_, e_) -> has_annul t_ || has_annul e_
      | _ -> false))
    r

let rec find_syscall env (r : rtl) : expr option =
  let stmt st =
    match st with
    | S_syscall e -> Some (chase env e)
    | S_if (_, t_, e_) -> (
        match find_syscall env t_ with
        | Some x -> Some x
        | None -> find_syscall env e_)
    | _ -> None
  in
  List.fold_left
    (fun acc phase ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun a st -> match a with Some _ -> a | None -> stmt st)
            None phase)
    None r

(* direct pc-relative target: pc + const (signed) *)
let as_pc_rel env e =
  match chase env e with
  | E_bin (Add, E_pc, E_int d) | E_bin (Add, E_int d, E_pc) ->
      Some (Eel_util.Word.signed d)
  | _ -> None

(* indirect target: R[a] + (imm | R[b]) *)
let as_indirect env e =
  match chase env e with
  | E_reg (_, i) -> Some (reg_of_index i, Instr.O_imm 0)
  | E_bin (Add, E_reg (_, i), E_int k) | E_bin (Add, E_int k, E_reg (_, i)) ->
      Some (reg_of_index i, Instr.O_imm (Eel_util.Word.signed k))
  | E_bin (Add, E_reg (_, i), E_reg (_, j)) ->
      Some (reg_of_index i, Instr.O_reg (reg_of_index j))
  | _ -> None

(* the register assigned the current pc (a link register), if any *)
let rec find_link (r : rtl) =
  List.fold_left
    (fun acc phase ->
      List.fold_left
        (fun acc st ->
          match st with
          | S_assign (L_reg (_, i), E_pc) -> Some (reg_of_index i)
          | S_if (_, t_, e_) -> (
              match acc with
              | Some _ -> acc
              | None -> ( match find_link t_ with Some l -> Some l | None -> find_link e_))
          | _ -> acc)
        acc phase)
    None r

(* ------------------------------------------------------------------ *)
(* Memory behaviour                                                    *)
(* ------------------------------------------------------------------ *)

type mem_access = { ma_addr : expr; ma_width : int; ma_store : bool }

let rec find_mem env (r : rtl) acc =
  List.fold_left
    (fun acc phase -> List.fold_left (fun acc st -> mem_stmt env st acc) acc phase)
    acc r

and mem_stmt env st acc =
  let rec in_expr e acc =
    match e with
    | E_mem (a, w, _) ->
        { ma_addr = chase env a; ma_width = w; ma_store = false }
        :: in_expr a acc
    | E_bin (_, a, b) -> in_expr a (in_expr b acc)
    | E_sext (a, _) -> in_expr a acc
    | E_builtin (_, args) -> List.fold_left (fun acc a -> in_expr a acc) acc args
    | E_cond (c, a, b) -> in_expr c (in_expr a (in_expr b acc))
    | E_test (a, b) -> in_expr a (in_expr b acc)
    | _ -> acc
  in
  match st with
  | S_assign (_, e) -> in_expr e acc
  | S_store (a, w, v) ->
      { ma_addr = chase env a; ma_width = w; ma_store = true }
      :: in_expr a (in_expr v acc)
  | S_if (c, t_, e_) -> find_mem env e_ (find_mem env t_ (in_expr c acc))
  | S_annul -> acc
  | S_syscall e -> in_expr e acc

(* ------------------------------------------------------------------ *)
(* Constant execution (spawn's "replicate the computation")            *)
(* ------------------------------------------------------------------ *)

let rec eval_const env read e =
  let ev a = eval_const env read a in
  let open Eel_util.Word in
  match chase env e with
  | E_int v -> Some (mask v)
  | E_reg (_, E_int r) -> read r
  | E_sext (a, k) -> Option.map (fun v -> mask (sext k v)) (ev a)
  | E_bin (op, a, b) -> (
      match (ev a, ev b) with
      | Some x, Some y ->
          Some
            (match op with
            | Add -> add x y
            | Sub -> sub x y
            | And -> x land y
            | Or -> x lor y
            | Xor -> mask (x lxor y)
            | Shl -> sll x y
            | Shr -> srl x y
            | Sra -> sra x y
            | Eq -> if x = y then 1 else 0
            | Ne -> if x <> y then 1 else 0
            | Mulu | Muls -> mul x y)
      | _ -> None)
  | E_cond (c, a, b) -> (
      match ev c with Some 0 -> ev b | Some _ -> ev a | None -> None)
  | _ -> None

(** A pure single-register computation's result over known inputs — powers
    dispatch-table slicing ({!Eel.Slice}). *)
let eval_compute_rtl (r : rtl) ~read =
  match r with
  | [ stmts ] -> (
      (* single phase, single register assignment, no memory/pc effects *)
      let effects =
        List.filter
          (function S_assign (L_var _, _) -> false | _ -> true)
          stmts
      in
      match effects with
      | [ S_assign (L_reg (_, E_int rd), e) ] when rd <> 0 ->
          let env = var_env_rtl r [] in
          let rec pure e =
            match e with
            | E_mem _ | E_builtin _ -> false
            | E_pc -> false
            | E_bin (_, a, b) -> pure a && pure b
            | E_sext (a, _) -> pure a
            | E_cond (c, a, b) -> pure c && pure a && pure b
            | E_test _ -> false
            | _ -> true
          in
          if pure (chase env e) then
            Option.map (fun v -> (rd, v)) (eval_const env read e)
          else None
      | _ -> None)
  | _ -> None
