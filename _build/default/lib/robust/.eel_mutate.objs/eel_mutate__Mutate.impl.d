lib/robust/mutate.ml: Bytes Char Eel_sef List Printf String
