lib/robust/diag.ml: Eel_util Format List Option Printexc Printf Result String
