lib/emu/emu.ml: Array Buffer Bytes Char Eel_sef Eel_sparc Eel_util Insn List Option Printf Regs
