(** SPARC register numbering.

    Registers 0–31 are the integer file (%g0–%g7, %o0–%o7, %l0–%l7,
    %i0–%i7). Two pseudo-registers make implicit state explicit for EEL's
    data-flow analyses: {!icc} (the integer condition codes, set by the
    [*cc] ALU ops and read by conditional branches) and {!y} (the Y register
    used by multiply/divide).

    This reproduction uses a {e flat} register file: [save]/[restore] adjust
    the stack pointer like ordinary adds instead of rotating register
    windows (see DESIGN.md, substitutions table). *)

let g0 = 0
let g1 = 1
let g5 = 5
let g6 = 6
let g7 = 7
let o0 = 8
let o1 = 9
let o2 = 10
let o7 = 15
let sp = 14 (* %o6 *)
let fp = 30 (* %i6 *)
let i7 = 31

(** Integer condition codes pseudo-register (%icc). Value layout: bit 3 = N,
    bit 2 = Z, bit 1 = V, bit 0 = C. *)
let icc = 32

(** The Y register pseudo-register. *)
let y = 33

let num_regs = 34

(** First virtual register number used by unallocated snippet templates
    (%v0 maps to 40, %v1 to 41, ...). Virtual registers never appear in a
    final encoding; {!Insn.encode} rejects them. *)
let v0 = 40

let num_virtual = 8

let is_virtual r = r >= v0 && r < v0 + num_virtual

let name r =
  if r = icc then "%icc"
  else if r = y then "%y"
  else if is_virtual r then Printf.sprintf "%%v%d" (r - v0)
  else if r < 0 || r > 31 then Printf.sprintf "%%r?%d" r
  else
    let group = [| 'g'; 'o'; 'l'; 'i' |].(r / 8) in
    Printf.sprintf "%%%c%d" group (r mod 8)

(** Parse a register name, e.g. ["%l3"], ["%sp"], ["%r17"], ["%v0"].
    Returns [None] for anything else. *)
let of_name s =
  let num tail lo hi =
    match int_of_string_opt tail with
    | Some n when n >= lo && n <= hi -> Some n
    | _ -> None
  in
  if String.length s < 2 || s.[0] <> '%' then None
  else
    let body = String.sub s 1 (String.length s - 1) in
    match body with
    | "sp" -> Some sp
    | "fp" -> Some fp
    | "y" -> Some y
    | "icc" -> Some icc
    | _ -> (
        if String.length body < 2 then None
        else
          let tail = String.sub body 1 (String.length body - 1) in
          match body.[0] with
          | 'g' -> num tail 0 7
          | 'o' -> Option.map (fun n -> n + 8) (num tail 0 7)
          | 'l' -> Option.map (fun n -> n + 16) (num tail 0 7)
          | 'i' -> Option.map (fun n -> n + 24) (num tail 0 7)
          | 'r' -> num tail 0 31
          | 'v' -> Option.map (fun n -> n + v0) (num tail 0 (num_virtual - 1))
          | _ -> None)
