lib/sparc/regs.ml: Array Option Printf String
