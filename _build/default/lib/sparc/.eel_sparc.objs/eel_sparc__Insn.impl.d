lib/sparc/insn.ml: Eel_arch Eel_util Format Printf Regs Word
