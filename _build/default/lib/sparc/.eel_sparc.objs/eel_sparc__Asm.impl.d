lib/sparc/asm.ml: Array Buffer Bytebuf Bytes Char Eel_arch Eel_sef Eel_util Hashtbl Insn List Printf Regs Result String Word
