lib/sparc/mach.ml: Asm Eel_arch Eel_util Insn Instr Lift Machine Regs Regset
