lib/sparc/lift.ml: Eel_arch Eel_util Insn Instr Option Regs Regset Word
