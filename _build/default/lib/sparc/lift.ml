(** Lift structured SPARC instructions to EEL's machine-independent
    {!Eel_arch.Instr.t}.

    This is the handwritten analog of the paper's Figure 6
    ([mach_inst_make_instruction]): it maps each machine instruction to an
    EEL category and resolves the SPARC's overloaded uses of [jmpl]
    (indirect call, return, computed jump). *)

open Eel_arch
module I = Instr

let rs = Regset.of_list
let ( ++ ) s r = Regset.add r s

let op2_reads = function
  | Insn.O_reg r -> Regset.singleton r
  | Insn.O_imm _ -> Regset.empty

(** System-call convention (documented in DESIGN.md): [ta n] selects call
    [n] with arguments in %o0–%o2; the result is returned in %o0. For
    data-flow purposes a syscall reads {o0,o1,o2} and writes {o0}. *)
let syscall_reads = rs [ Regs.o0; Regs.o1; Regs.o2 ]

let syscall_writes = rs [ Regs.o0 ]

let lift word : I.t =
  let insn = Insn.decode word in
  let mk ?(reads = Regset.empty) ?(writes = Regset.empty) ?(ctl = I.C_none)
      ?(delayed = false) ?(width = 0) ?ea cat =
    {
      I.word = Eel_util.Word.mask word;
      cat;
      reads;
      writes;
      ctl;
      delayed;
      width;
      ea;
      mnem = Insn.to_string insn;
    }
  in
  match insn with
  | Invalid _ | Unimp _ -> mk I.Invalid
  | Sethi { rd; _ } -> mk I.Compute ~writes:(Regset.singleton rd)
  | Rdy { rd } ->
      mk I.Compute ~reads:(Regset.singleton Regs.y) ~writes:(Regset.singleton rd)
  | Wry { rs1; op2 } ->
      mk I.Compute
        ~reads:(op2_reads op2 ++ rs1)
        ~writes:(Regset.singleton Regs.y)
  | Alu { op; rs1; op2; rd } ->
      let reads = op2_reads op2 ++ rs1 in
      let reads =
        match op with
        | Udiv | Sdiv -> reads ++ Regs.y
        | _ -> reads
      in
      let writes = Regset.singleton rd in
      let writes =
        match op with
        | Umul | Smul -> writes ++ Regs.y
        | _ -> writes
      in
      let writes = if Insn.alu_sets_cc op then writes ++ Regs.icc else writes in
      mk I.Compute ~reads ~writes
  | Bicc { cond; annul; disp22 } ->
      let always = cond = Insn.CA and never = cond = Insn.CN in
      let reads =
        if always || never then Regset.empty else Regset.singleton Regs.icc
      in
      mk I.Branch ~reads ~delayed:true
        ~ctl:(I.C_branch { always; never; annul; disp = disp22 * 4 })
  | Call { disp30 } ->
      mk I.Call ~delayed:true
        ~writes:(Regset.singleton Regs.o7)
        ~ctl:(I.C_call { disp = disp30 * 4 })
  | Jmpl { rs1; op2; rd } ->
      (* Resolve the SPARC's three overloaded uses of jmpl (paper Fig. 6):
         - jmpl with rd a link register      => indirect call
         - jmpl %o7+8 / %i7+8 with rd = %g0  => return
         - otherwise                          => computed jump *)
      let reads = op2_reads op2 ++ rs1 in
      let writes = Regset.singleton rd in
      let ctl = I.C_jump_ind { rs1; op2; link = rd } in
      let cat =
        if rd = Regs.o7 || rd = Regs.i7 then I.Call_indirect
        else if
          rd = Regs.g0
          && (rs1 = Regs.o7 || rs1 = Regs.i7)
          && (op2 = Insn.O_imm 8 || op2 = Insn.O_imm 12)
        then I.Return
        else I.Jump_indirect
      in
      mk cat ~reads ~writes ~delayed:true ~ctl
  | Ticc { cond; rs1; op2 } ->
      let num =
        match (rs1, op2) with 0, Insn.O_imm i -> Some i | _ -> None
      in
      let reads = op2_reads op2 ++ rs1 in
      let reads = if cond = Insn.CA then reads else reads ++ Regs.icc in
      mk I.Syscall
        ~reads:(Regset.union reads syscall_reads)
        ~writes:syscall_writes
        ~ctl:(I.C_syscall { num })
  | Mem { op; rs1; op2; rd } ->
      let width = Insn.mem_width op in
      let addr_reads = op2_reads op2 ++ rs1 in
      let pair r s = if op = Insn.Ldd || op = Insn.Std then s ++ (r + 1) else s in
      if Insn.mem_is_store op then
        mk I.Store ~width ~ea:(rs1, op2)
          ~reads:(Regset.union addr_reads (pair rd (Regset.singleton rd)))
      else
        mk I.Load ~width ~ea:(rs1, op2) ~reads:addr_reads
          ~writes:(pair rd (Regset.singleton rd))

(** Constant-fold one instruction over known register values; the machine-
    description analog is spawn's generated "replicate the computation" code
    (paper §4). [read r] returns the known constant value of [r], if any
    (%g0 is always 0). *)
let eval_compute (i : I.t) ~read : (int * int) option =
  let read r = if r = Regs.g0 then Some 0 else read r in
  let open Eel_util in
  match Insn.decode i.I.word with
  | Sethi { rd; imm22 } when rd <> 0 -> Some (rd, imm22 lsl 10)
  | Alu { op; rs1; op2; rd } when rd <> 0 -> (
      let v2 =
        match op2 with Insn.O_imm x -> Some (Word.mask x) | Insn.O_reg r -> read r
      in
      match (read rs1, v2) with
      | Some a, Some b ->
          let v =
            match op with
            | Add | Addcc -> Some (Word.add a b)
            | Sub | Subcc -> Some (Word.sub a b)
            | And | Andcc -> Some (a land b)
            | Or | Orcc -> Some (a lor b)
            | Xor | Xorcc -> Some (a lxor b)
            | Andn -> Some (a land Word.mask (lnot b))
            | Orn -> Some (a lor Word.mask (lnot b))
            | Xnor -> Some (Word.mask (lnot (a lxor b)))
            | Sll -> Some (Word.sll a b)
            | Srl -> Some (Word.srl a b)
            | Sra -> Some (Word.sra a b)
            | Umul | Smul -> Some (Word.mul a b)
            | Udiv | Sdiv | Save | Restore -> None
          in
          Option.map (fun v -> (rd, v)) v
      | _ -> None)
  | _ -> None
