(** A two-pass SPARC assembler.

    This repository's substitute for the system assembler: workload programs,
    instrumentation handler routines and code snippets are all written in
    (a useful subset of) SPARC assembly syntax and assembled here, either
    into complete {!Eel_sef.Sef.t} executables ({!assemble}) or into
    relocatable snippet templates ({!parse_snippet}).

    Beyond the standard directives, a few directives exist specifically to
    {e fabricate the symbol-table pathologies} of paper §3.1 so that EEL's
    refinement analysis has something real to repair:

    - [.nosym name] — suppress the symbol: a {e hidden routine};
    - [.labelsym name] — emit as an internal label (stage-1 pollution);
    - [.debugsym name] — emit an extra debugging symbol at [name];
    - [.symat name expr kind] — plant an arbitrary (possibly misleading)
      symbol, e.g. a [Func] symbol on a data table in the text segment.

    Comments run from [!] to end of line. Local labels (names beginning with
    ['L'] or ['.']) never reach the symbol table, like temporary labels in a
    real assembler. *)

open Eel_util
module Sef = Eel_sef.Sef

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type expr =
  | Enum of int
  | Esym of string  (** label or [$param] *)
  | Edot  (** current location counter *)
  | Eadd of expr * expr
  | Esub of expr * expr
  | Eneg of expr
  | Ehi of expr  (** [%hi(e)]: bits 31:10 *)
  | Elo of expr  (** [%lo(e)]: bits 9:0 *)

type env = {
  lookup : string -> int option;  (** labels and [$params] *)
  dot : int;
  mutable used_label : bool;  (** set when a {e local} label was referenced *)
  is_label : string -> bool;
}

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let rec eval env = function
  | Enum n -> n
  | Edot -> env.dot
  | Esym s -> (
      match env.lookup s with
      | Some v ->
          if env.is_label s then env.used_label <- true;
          v
      | None -> err "undefined symbol '%s'" s)
  | Eadd (a, b) -> eval env a + eval env b
  | Esub (a, b) -> eval env a - eval env b
  | Eneg a -> -eval env a
  | Ehi a -> (Word.mask (eval env a) lsr 10) land 0x3FFFFF
  | Elo a -> Word.mask (eval env a) land 0x3FF

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '$' || c = '%'
  in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '!' then i := n (* comment *)
    else if is_word c then (
      let j = ref !i in
      while !j < n && is_word line.[!j] do
        incr j
      done;
      toks := String.sub line !i (!j - !i) :: !toks;
      i := !j)
    else (
      toks := String.make 1 c :: !toks;
      incr i)
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parsed items                                                        *)
(* ------------------------------------------------------------------ *)

type operandx = Xreg of int | Ximm of expr

type pre_insn =
  | P_alu of Insn.alu * int * operandx * int
  | P_sethi of expr * int  (** expr already wrapped in Ehi when written %hi *)
  | P_mem of Insn.mem * int * operandx * int
  | P_branch of Insn.cond * bool * expr
  | P_call of expr
  | P_jmpl of int * operandx * int
  | P_ta of expr
  | P_unimp of expr
  | P_rdy of int
  | P_wry of int * operandx

type item =
  | I_insn of pre_insn
  | I_set of expr * int  (** [set expr, rd] — expands to sethi+or, 8 bytes *)
  | I_word of expr list
  | I_half of expr list
  | I_byte of expr list
  | I_ascii of string
  | I_align of int
  | I_space of int

type sym_directive =
  | D_global of string
  | D_nosym of string
  | D_labelsym of string
  | D_debugsym of string
  | D_symat of string * expr * Sef.sym_kind
  | D_entry of string

type line = {
  sec : int;  (** 0 = text, 1 = data, 2 = bss *)
  labels : string list;
  item : item option;
  lineno : int;
}

let item_size = function
  | I_insn _ -> 4
  | I_set _ -> 8
  | I_word es -> 4 * List.length es
  | I_half es -> 2 * List.length es
  | I_byte es -> List.length es
  | I_ascii s -> String.length s
  | I_align _ -> -1 (* computed during layout *)
  | I_space n -> n

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_int s =
  match int_of_string_opt s with
  | Some v -> Some v
  | None -> None

let is_number s =
  String.length s > 0
  && ((s.[0] >= '0' && s.[0] <= '9') || (String.length s > 1 && s.[0] = '-'))

(* expr := ['-'] term (('+'|'-') term)* ; term := num | ident | '.' | %hi(e) | %lo(e) *)
let rec parse_expr toks =
  let rec term toks =
    match toks with
    | "%hi" :: "(" :: rest ->
        let e, rest = parse_expr rest in
        (match rest with
        | ")" :: rest -> (Ehi e, rest)
        | _ -> err "expected ) after %%hi")
    | "%lo" :: "(" :: rest ->
        let e, rest = parse_expr rest in
        (match rest with
        | ")" :: rest -> (Elo e, rest)
        | _ -> err "expected ) after %%lo")
    | "(" :: rest ->
        let e, rest = parse_expr rest in
        (match rest with
        | ")" :: rest -> (e, rest)
        | _ -> err "expected )")
    | "." :: rest -> (Edot, rest)
    | "-" :: rest ->
        let e, rest = term rest in
        (Eneg e, rest)
    | t :: rest when is_number t -> (
        match parse_int t with
        | Some v -> (Enum v, rest)
        | None -> err "bad number '%s'" t)
    | t :: rest
      when String.length t > 0
           && t.[0] <> ','
           && t.[0] <> '['
           && t.[0] <> ']' ->
        (Esym t, rest)
    | t :: _ -> err "unexpected token '%s' in expression" t
    | [] -> err "missing expression"
  in
  let lhs, rest = term toks in
  let rec loop lhs = function
    | "+" :: rest ->
        let rhs, rest = term rest in
        loop (Eadd (lhs, rhs)) rest
    | "-" :: rest ->
        let rhs, rest = term rest in
        loop (Esub (lhs, rhs)) rest
    | rest -> (lhs, rest)
  in
  loop lhs rest

let parse_reg tok =
  match Regs.of_name tok with
  | Some r when r < 32 || Regs.is_virtual r -> r
  | Some r -> err "register %s not usable here" (Regs.name r)
  | None -> err "expected register, got '%s'" tok

let expect tok = function
  | t :: rest when t = tok -> rest
  | t :: _ -> err "expected '%s', got '%s'" tok t
  | [] -> err "expected '%s' at end of line" tok

(* operand: register or immediate expression *)
let parse_op2 toks =
  match toks with
  | t :: rest when String.length t > 1 && t.[0] = '%' && t <> "%hi" && t <> "%lo"
    ->
      (Xreg (parse_reg t), rest)
  | _ ->
      let e, rest = parse_expr toks in
      (Ximm e, rest)

(* memory address: [ reg ( (+|-) (reg|expr) )? ] *)
let parse_mem_addr toks =
  let toks = expect "[" toks in
  match toks with
  | t :: rest when String.length t > 1 && t.[0] = '%' && t <> "%hi" && t <> "%lo"
    -> (
      let rs1 = parse_reg t in
      match rest with
      | "]" :: rest -> ((rs1, Ximm (Enum 0)), rest)
      | "+" :: rest ->
          let op2, rest = parse_op2 rest in
          ((rs1, op2), expect "]" rest)
      | "-" :: rest ->
          let e, rest = parse_expr rest in
          ((rs1, Ximm (Eneg e)), expect "]" rest)
      | t :: _ -> err "bad memory operand near '%s'" t
      | [] -> err "unterminated memory operand")
  | _ -> err "memory operand must start with a register"

let branch_conds =
  [
    ("ba", Insn.CA); ("bn", Insn.CN); ("bne", Insn.CNE); ("be", Insn.CE);
    ("bg", Insn.CG); ("ble", Insn.CLE); ("bge", Insn.CGE); ("bl", Insn.CL);
    ("bgu", Insn.CGU); ("bleu", Insn.CLEU); ("bcc", Insn.CCC);
    ("bcs", Insn.CCS); ("bpos", Insn.CPOS); ("bneg", Insn.CNEG);
    ("bvc", Insn.CVC); ("bvs", Insn.CVS); ("b", Insn.CA);
  ]

let alu_mnems =
  [
    ("add", Insn.Add); ("and", Insn.And); ("or", Insn.Or); ("xor", Insn.Xor);
    ("sub", Insn.Sub); ("andn", Insn.Andn); ("orn", Insn.Orn);
    ("xnor", Insn.Xnor); ("umul", Insn.Umul); ("smul", Insn.Smul);
    ("udiv", Insn.Udiv); ("sdiv", Insn.Sdiv); ("addcc", Insn.Addcc);
    ("andcc", Insn.Andcc); ("orcc", Insn.Orcc); ("xorcc", Insn.Xorcc);
    ("subcc", Insn.Subcc); ("sll", Insn.Sll); ("srl", Insn.Srl);
    ("sra", Insn.Sra); ("save", Insn.Save); ("restore", Insn.Restore);
  ]

let mem_mnems =
  [
    ("ld", Insn.Ld); ("ldub", Insn.Ldub); ("lduh", Insn.Lduh);
    ("ldd", Insn.Ldd); ("st", Insn.St); ("stb", Insn.Stb); ("sth", Insn.Sth);
    ("std", Insn.Std); ("ldsb", Insn.Ldsb); ("ldsh", Insn.Ldsh);
  ]

(* Parse one instruction from tokens; returns a list of items (pseudo-ops
   may expand to several). *)
let parse_insn mnem toks : item list =
  let alu op toks =
    let rs1 = parse_reg (List.nth toks 0) in
    let toks = expect "," (List.tl toks) in
    let op2, toks = parse_op2 toks in
    let toks = expect "," toks in
    let rd = parse_reg (List.nth toks 0) in
    if List.tl toks <> [] then err "trailing tokens after instruction";
    [ I_insn (P_alu (op, rs1, op2, rd)) ]
  in
  match (List.assoc_opt mnem alu_mnems, List.assoc_opt mnem mem_mnems) with
  | Some op, _ -> alu op toks
  | None, Some op when Insn.mem_is_store op ->
      let rd = parse_reg (List.hd toks) in
      let toks = expect "," (List.tl toks) in
      let (rs1, op2), toks = parse_mem_addr toks in
      if toks <> [] then err "trailing tokens after store";
      [ I_insn (P_mem (op, rs1, op2, rd)) ]
  | None, Some op ->
      let (rs1, op2), toks = parse_mem_addr toks in
      let toks = expect "," toks in
      let rd = parse_reg (List.hd toks) in
      if List.tl toks <> [] then err "trailing tokens after load";
      [ I_insn (P_mem (op, rs1, op2, rd)) ]
  | None, None -> (
      (* branches, possibly with ,a suffix *)
      let bmnem, annul, toks' =
        match toks with
        | "," :: "a" :: rest when List.mem_assoc mnem branch_conds ->
            (mnem, true, rest)
        | _ -> (mnem, false, toks)
      in
      match List.assoc_opt bmnem branch_conds with
      | Some cond ->
          let e, rest = parse_expr toks' in
          if rest <> [] then err "trailing tokens after branch target";
          [ I_insn (P_branch (cond, annul, e)) ]
      | None -> (
          match mnem with
          | "sethi" ->
              (* [sethi %hi(e), rd] puts bits 31:10 of e in imm22;
                 [sethi e, rd] treats e as the raw imm22 field value. *)
              let e, toks = parse_expr toks in
              let e = match e with Ehi _ -> e | _ -> e in
              let toks = expect "," toks in
              let rd = parse_reg (List.hd toks) in
              if List.tl toks <> [] then err "trailing tokens after sethi";
              [ I_insn (P_sethi (e, rd)) ]
          | "call" ->
              let e, rest = parse_expr toks in
              if rest <> [] then err "trailing tokens after call";
              [ I_insn (P_call e) ]
          | "jmpl" | "jmp" ->
              let rs1, op2, toks =
                match toks with
                | "[" :: _ ->
                    let (rs1, op2), t = parse_mem_addr toks in
                    (rs1, op2, t)
                | t :: rest when String.length t > 1 && t.[0] = '%' -> (
                    let rs1 = parse_reg t in
                    match rest with
                    | "+" :: rest ->
                        let op2, rest = parse_op2 rest in
                        (rs1, op2, rest)
                    | "-" :: rest ->
                        let e, rest = parse_expr rest in
                        (rs1, Ximm (Eneg e), rest)
                    | _ -> (rs1, Ximm (Enum 0), rest))
                | _ -> err "jmp/jmpl requires a register target"
              in
              let rd, toks =
                if mnem = "jmp" then (Regs.g0, toks)
                else
                  let toks = expect "," toks in
                  (parse_reg (List.hd toks), List.tl toks)
              in
              if toks <> [] then err "trailing tokens after jmpl";
              [ I_insn (P_jmpl (rs1, op2, rd)) ]
          | "ta" ->
              let e, rest = parse_expr toks in
              if rest <> [] then err "trailing tokens after ta";
              [ I_insn (P_ta e) ]
          | "unimp" ->
              let e, rest = parse_expr toks in
              if rest <> [] then err "trailing tokens after unimp";
              [ I_insn (P_unimp e) ]
          | "rd" ->
              let toks = expect "%y" toks in
              let toks = expect "," toks in
              [ I_insn (P_rdy (parse_reg (List.hd toks))) ]
          | "wr" ->
              let rs1 = parse_reg (List.hd toks) in
              let toks = expect "," (List.tl toks) in
              let op2, toks = parse_op2 toks in
              let toks = expect "," toks in
              let _ = expect "%y" toks in
              [ I_insn (P_wry (rs1, op2)) ]
          | "nop" -> [ I_insn (P_sethi (Ehi (Enum 0), 0)) ]
          | "mov" ->
              let op2, toks = parse_op2 toks in
              let toks = expect "," toks in
              let rd = parse_reg (List.hd toks) in
              [ I_insn (P_alu (Insn.Or, Regs.g0, op2, rd)) ]
          | "set" ->
              let e, toks = parse_expr toks in
              let toks = expect "," toks in
              let rd = parse_reg (List.hd toks) in
              [ I_set (e, rd) ]
          | "cmp" ->
              let rs1 = parse_reg (List.hd toks) in
              let toks = expect "," (List.tl toks) in
              let op2, toks = parse_op2 toks in
              if toks <> [] then err "trailing tokens after cmp";
              [ I_insn (P_alu (Insn.Subcc, rs1, op2, Regs.g0)) ]
          | "tst" ->
              let rs1 = parse_reg (List.hd toks) in
              [ I_insn (P_alu (Insn.Orcc, rs1, Xreg Regs.g0, Regs.g0)) ]
          | "clr" ->
              let rd = parse_reg (List.hd toks) in
              [ I_insn (P_alu (Insn.Or, Regs.g0, Xreg Regs.g0, rd)) ]
          | "ret" ->
              [ I_insn (P_jmpl (Regs.i7, Ximm (Enum 8), Regs.g0)) ]
          | "retl" ->
              [ I_insn (P_jmpl (Regs.o7, Ximm (Enum 8), Regs.g0)) ]
          | _ -> err "unknown mnemonic '%s'" mnem))

(* ------------------------------------------------------------------ *)
(* Line-level parsing                                                  *)
(* ------------------------------------------------------------------ *)

type parsed_line = {
  pl_labels : string list;
  pl_items : item list;
  pl_dirs : sym_directive list;
  pl_sec_switch : int option;
}

let sym_kind_of_string = function
  | "func" -> Sef.Func
  | "object" -> Sef.Object
  | "label" -> Sef.Label
  | "debug" -> Sef.Debug
  | s -> err "unknown symbol kind '%s'" s

(* Parse a string literal for .ascii/.asciz out of the raw line text. *)
let parse_string_lit raw =
  match String.index_opt raw '"' with
  | None -> err ".ascii requires a string literal"
  | Some i ->
      let buf = Buffer.create 16 in
      let n = String.length raw in
      let rec go j =
        if j >= n then err "unterminated string literal"
        else
          match raw.[j] with
          | '"' -> ()
          | '\\' when j + 1 < n ->
              (match raw.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | '0' -> Buffer.add_char buf '\000'
              | c -> Buffer.add_char buf c);
              go (j + 2)
          | c ->
              Buffer.add_char buf c;
              go (j + 1)
      in
      go (i + 1);
      Buffer.contents buf

let rec parse_expr_list toks =
  let e, rest = parse_expr toks in
  match rest with
  | "," :: rest ->
      let es, rest = parse_expr_list rest in
      (e :: es, rest)
  | _ -> ([ e ], rest)

let parse_line raw : parsed_line =
  let toks = tokenize raw in
  (* leading labels *)
  let rec strip_labels acc = function
    | name :: ":" :: rest
      when String.length name > 0 && name.[0] <> '.' && name.[0] <> '%' ->
        strip_labels (name :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let labels, toks = strip_labels [] toks in
  let nothing = { pl_labels = labels; pl_items = []; pl_dirs = []; pl_sec_switch = None } in
  match toks with
  | [] -> nothing
  | d :: rest when String.length d > 1 && d.[0] = '.' -> (
      match (d, rest) with
      | ".text", [] -> { nothing with pl_sec_switch = Some 0 }
      | ".data", [] -> { nothing with pl_sec_switch = Some 1 }
      | ".bss", [] -> { nothing with pl_sec_switch = Some 2 }
      | ".global", [ n ] -> { nothing with pl_dirs = [ D_global n ] }
      | ".nosym", [ n ] -> { nothing with pl_dirs = [ D_nosym n ] }
      | ".labelsym", [ n ] -> { nothing with pl_dirs = [ D_labelsym n ] }
      | ".debugsym", [ n ] -> { nothing with pl_dirs = [ D_debugsym n ] }
      | ".entry", [ n ] -> { nothing with pl_dirs = [ D_entry n ] }
      | ".symat", n :: rest ->
          let e, rest = parse_expr rest in
          let kind =
            match rest with
            | [ k ] -> sym_kind_of_string k
            | [] -> Sef.Func
            | _ -> err "bad .symat"
          in
          { nothing with pl_dirs = [ D_symat (n, e, kind) ] }
      | ".word", _ ->
          let es, rest = parse_expr_list rest in
          if rest <> [] then err "trailing tokens after .word";
          { nothing with pl_items = [ I_word es ] }
      | ".half", _ ->
          let es, _ = parse_expr_list rest in
          { nothing with pl_items = [ I_half es ] }
      | ".byte", _ ->
          let es, _ = parse_expr_list rest in
          { nothing with pl_items = [ I_byte es ] }
      | ".ascii", _ -> { nothing with pl_items = [ I_ascii (parse_string_lit raw) ] }
      | ".asciz", _ ->
          { nothing with pl_items = [ I_ascii (parse_string_lit raw ^ "\000") ] }
      | ".align", [ n ] -> (
          match parse_int n with
          | Some v when v > 0 -> { nothing with pl_items = [ I_align v ] }
          | _ -> err "bad .align")
      | ".space", [ n ] -> (
          match parse_int n with
          | Some v when v >= 0 -> { nothing with pl_items = [ I_space v ] }
          | _ -> err "bad .space")
      | _ -> err "unknown or malformed directive '%s'" d)
  | mnem :: rest -> { nothing with pl_items = parse_insn mnem rest }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

type enc_ctx = {
  mutable e_env : env;
  mutable e_index : int;  (* word index within a snippet *)
  e_snippet : bool;
  mutable e_vuses : Eel_arch.Template.vreg_use list;
  mutable e_relocs : Eel_arch.Template.reloc list;
}

(* Substitute a possibly-virtual register for encoding, recording the
   bit-field use for later patching. *)
let enc_reg ctx ~lo ~hi r =
  if Regs.is_virtual r then
    if not ctx.e_snippet then err "virtual register %s outside a snippet" (Regs.name r)
    else (
      ctx.e_vuses <-
        { Eel_arch.Template.index = ctx.e_index; lo; hi; vreg = r - Regs.v0 }
        :: ctx.e_vuses;
      0)
  else r

let enc_op2 ctx = function
  | Xreg r -> Insn.O_reg (enc_reg ctx ~lo:0 ~hi:4 r)
  | Ximm e ->
      let v = eval ctx.e_env e in
      if not (Word.fits_signed 13 v) then
        err "immediate %d does not fit in simm13" v;
      Insn.O_imm v

(* Encode one pre-instruction at [pc] (absolute address, or snippet offset
   when ctx.e_snippet). *)
let encode_pre ctx ~pc pre =
  let env = ctx.e_env in
  let cti_target e =
    (* Returns `Rel disp (bytes) or `Abs target for snippet relocs. *)
    env.used_label <- false;
    let v = eval env e in
    if ctx.e_snippet && not env.used_label then `Abs v
    else (
      let disp = v - pc in
      if disp land 3 <> 0 then err "misaligned control-transfer target 0x%x" v;
      `Rel disp)
  in
  match pre with
  | P_alu (op, rs1, op2, rd) ->
      let rs1 = enc_reg ctx ~lo:14 ~hi:18 rs1 in
      let op2 = enc_op2 ctx op2 in
      let rd = enc_reg ctx ~lo:25 ~hi:29 rd in
      Insn.encode (Insn.Alu { op; rs1; op2; rd })
  | P_sethi (e, rd) ->
      let rd = enc_reg ctx ~lo:25 ~hi:29 rd in
      let imm22 =
        match e with
        | Ehi _ -> eval env e
        | _ ->
            let v = eval env e in
            if v < 0 || v > 0x3FFFFF then err "sethi immediate out of range";
            v
      in
      Insn.encode (Insn.Sethi { rd; imm22 })
  | P_mem (op, rs1, op2, rd) ->
      let rs1 = enc_reg ctx ~lo:14 ~hi:18 rs1 in
      let op2 = enc_op2 ctx op2 in
      let rd = enc_reg ctx ~lo:25 ~hi:29 rd in
      Insn.encode (Insn.Mem { op; rs1; op2; rd })
  | P_branch (cond, annul, e) -> (
      match cti_target e with
      | `Rel disp ->
          if not (Word.fits_signed 22 (disp asr 2)) then
            err "branch displacement %d out of range" disp;
          Insn.encode (Insn.Bicc { cond; annul; disp22 = disp asr 2 })
      | `Abs target ->
          ctx.e_relocs <-
            { Eel_arch.Template.index = ctx.e_index; target } :: ctx.e_relocs;
          Insn.encode (Insn.Bicc { cond; annul; disp22 = 0 }))
  | P_call e -> (
      match cti_target e with
      | `Rel disp -> Insn.encode (Insn.Call { disp30 = disp asr 2 })
      | `Abs target ->
          ctx.e_relocs <-
            { Eel_arch.Template.index = ctx.e_index; target } :: ctx.e_relocs;
          Insn.encode (Insn.Call { disp30 = 0 }))
  | P_jmpl (rs1, op2, rd) ->
      let rs1 = enc_reg ctx ~lo:14 ~hi:18 rs1 in
      let op2 = enc_op2 ctx op2 in
      let rd = enc_reg ctx ~lo:25 ~hi:29 rd in
      Insn.encode (Insn.Jmpl { rs1; op2; rd })
  | P_ta e ->
      let v = eval env e in
      Insn.encode (Insn.Ticc { cond = Insn.CA; rs1 = 0; op2 = Insn.O_imm v })
  | P_unimp e -> Insn.encode (Insn.Unimp (eval env e))
  | P_rdy rd -> Insn.encode (Insn.Rdy { rd = enc_reg ctx ~lo:25 ~hi:29 rd })
  | P_wry (rs1, op2) ->
      let rs1 = enc_reg ctx ~lo:14 ~hi:18 rs1 in
      let op2 = enc_op2 ctx op2 in
      Insn.encode (Insn.Wry { rs1; op2 })

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)

let align_up v a = (v + a - 1) / a * a

let default_text_base = 0x10000

type src_line = {
  sl_sec : int;
  sl_labels : string list;
  sl_items : item list;
  sl_dirs : sym_directive list;
  sl_no : int;
}

let parse_lines source =
  let cur = ref 0 in
  let out = ref [] in
  List.iteri
    (fun i raw ->
      let pl =
        try parse_line raw
        with Error m -> err "line %d: %s" (i + 1) m
      in
      (match pl.pl_sec_switch with Some s -> cur := s | None -> ());
      out :=
        {
          sl_sec = !cur;
          sl_labels = pl.pl_labels;
          sl_items = pl.pl_items;
          sl_dirs = pl.pl_dirs;
          sl_no = i + 1;
        }
        :: !out)
    (String.split_on_char '\n' source);
  List.rev !out

(* Layout: assign a (section, offset) to every label and item. *)
type placed = { p_sec : int; p_off : int; p_item : item; p_no : int }

let layout lines =
  let off = [| 0; 0; 0 |] in
  let labels : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let label_order = ref [] in
  let placed = ref [] in
  List.iter
    (fun sl ->
      List.iter
        (fun l ->
          if Hashtbl.mem labels l then err "line %d: duplicate label '%s'" sl.sl_no l;
          Hashtbl.add labels l (sl.sl_sec, off.(sl.sl_sec));
          label_order := l :: !label_order)
        sl.sl_labels;
      List.iter
        (fun item ->
          (match item with
          | I_align a -> off.(sl.sl_sec) <- align_up off.(sl.sl_sec) a
          | _ -> ());
          placed :=
            { p_sec = sl.sl_sec; p_off = off.(sl.sl_sec); p_item = item; p_no = sl.sl_no }
            :: !placed;
          match item with
          | I_align _ -> ()
          | it -> off.(sl.sl_sec) <- off.(sl.sl_sec) + item_size it)
        sl.sl_items)
    lines;
  (List.rev !placed, labels, List.rev !label_order, off)

let assemble ?(text_base = default_text_base) source : (Sef.t, string) result =
  try
    let lines = parse_lines source in
    let placed, labels, label_order, sizes = layout lines in
    let text_size = align_up sizes.(0) 4 in
    let data_size = align_up sizes.(1) 4 in
    let bss_size = align_up sizes.(2) 8 in
    let data_base = align_up (text_base + text_size) 0x1000 in
    let bss_base = align_up (data_base + data_size) 8 in
    let base = function 0 -> text_base | 1 -> data_base | _ -> bss_base in
    let label_addr l =
      match Hashtbl.find_opt labels l with
      | Some (sec, off) -> Some (base sec + off)
      | None -> None
    in
    let env =
      {
        lookup = label_addr;
        dot = 0;
        used_label = false;
        is_label = (fun l -> Hashtbl.mem labels l);
      }
    in
    let ctx =
      { e_env = env; e_index = 0; e_snippet = false; e_vuses = []; e_relocs = [] }
    in
    let text = Bytes.make text_size '\000' in
    let data = Bytes.make data_size '\000' in
    let buf_of = function 0 -> Some text | 1 -> Some data | _ -> None in
    List.iter
      (fun p ->
        let addr = base p.p_sec + p.p_off in
        let env = { env with dot = addr } in
        ctx.e_env <- env;
        match buf_of p.p_sec with
        | None -> (
            (* bss: only reservations allowed *)
            match p.p_item with
            | I_space _ | I_align _ -> ()
            | _ -> err "line %d: contents not allowed in .bss" p.p_no)
        | Some buf -> (
            try
              match p.p_item with
              | I_insn pre ->
                  Bytebuf.set32_be buf p.p_off (encode_pre ctx ~pc:addr pre)
              | I_set (e, rd) ->
                  let v = Word.mask (eval env e) in
                  Bytebuf.set32_be buf p.p_off
                    (Insn.encode (Insn.Sethi { rd; imm22 = v lsr 10 }));
                  Bytebuf.set32_be buf (p.p_off + 4)
                    (Insn.encode
                       (Insn.Alu
                          { op = Insn.Or; rs1 = rd; op2 = Insn.O_imm (v land 0x3FF); rd }))
              | I_word es ->
                  List.iteri
                    (fun i e ->
                      Bytebuf.set32_be buf (p.p_off + (4 * i)) (Word.mask (eval env e)))
                    es
              | I_half es ->
                  List.iteri
                    (fun i e ->
                      let v = eval env e land 0xFFFF in
                      Bytes.set buf (p.p_off + (2 * i)) (Char.chr (v lsr 8));
                      Bytes.set buf (p.p_off + (2 * i) + 1) (Char.chr (v land 0xFF)))
                    es
              | I_byte es ->
                  List.iteri
                    (fun i e -> Bytes.set buf (p.p_off + i) (Char.chr (eval env e land 0xFF)))
                    es
              | I_ascii s -> Bytes.blit_string s 0 buf p.p_off (String.length s)
              | I_align _ | I_space _ -> ()
            with
            | Error m -> err "line %d: %s" p.p_no m
            | Insn.Encode_error m -> err "line %d: %s" p.p_no m))
      placed;
    (* Directives *)
    let globals = Hashtbl.create 8 in
    let nosyms = Hashtbl.create 8 in
    let labelsyms = Hashtbl.create 8 in
    let extra_syms = ref [] in
    let entry_name = ref None in
    List.iter
      (fun sl ->
        List.iter
          (fun d ->
            match d with
            | D_global n -> Hashtbl.replace globals n ()
            | D_nosym n -> Hashtbl.replace nosyms n ()
            | D_labelsym n -> Hashtbl.replace labelsyms n ()
            | D_debugsym n -> (
                match label_addr n with
                | Some a ->
                    extra_syms :=
                      { Sef.sym_name = n; value = a; sym_size = 0; kind = Sef.Debug; global = false }
                      :: !extra_syms
                | None -> err "line %d: .debugsym of unknown label '%s'" sl.sl_no n)
            | D_symat (n, e, kind) ->
                let env = { env with dot = 0 } in
                extra_syms :=
                  { Sef.sym_name = n; value = Word.mask (eval env e); sym_size = 0; kind; global = false }
                  :: !extra_syms
            | D_entry n -> entry_name := Some n)
          sl.sl_dirs)
      lines;
    let is_local l = String.length l > 0 && (l.[0] = 'L' || l.[0] = '.') in
    let symbols =
      List.filter_map
        (fun l ->
          if is_local l || Hashtbl.mem nosyms l then None
          else
            match Hashtbl.find_opt labels l with
            | None -> None
            | Some (sec, off) ->
                let kind =
                  if Hashtbl.mem labelsyms l then Sef.Label
                  else if sec = 0 then Sef.Func
                  else Sef.Object
                in
                Some
                  {
                    Sef.sym_name = l;
                    value = base sec + off;
                    sym_size = 0;
                    kind;
                    global = Hashtbl.mem globals l;
                  })
        label_order
      @ List.rev !extra_syms
    in
    let entry =
      match !entry_name with
      | Some n -> (
          match label_addr n with
          | Some a -> a
          | None -> err ".entry names unknown label '%s'" n)
      | None -> (
          match (label_addr "start", label_addr "main") with
          | Some a, _ -> a
          | None, Some a -> a
          | None, None -> text_base)
    in
    let sections =
      [
        { Sef.sec_name = ".text"; sec_kind = Sef.Text; vaddr = text_base; size = text_size; contents = text };
        { Sef.sec_name = ".data"; sec_kind = Sef.Data; vaddr = data_base; size = data_size; contents = data };
      ]
      @
      if bss_size > 0 then
        [ { Sef.sec_name = ".bss"; sec_kind = Sef.Bss; vaddr = bss_base; size = bss_size; contents = Bytes.empty } ]
      else []
    in
    Ok (Sef.create ~entry ~sections ~symbols)
  with Error m -> Result.Error m

(* ------------------------------------------------------------------ *)
(* Snippet assembly                                                    *)
(* ------------------------------------------------------------------ *)

(** [parse_snippet ~params source] assembles a label-relative instruction
    sequence into a {!Eel_arch.Template.t}. [$name] parameters come from
    [params]; [%v0]–[%v7] become virtual-register uses; control transfers to
    absolute (parameter) targets become relocations. *)
let parse_snippet ?(params = []) source : (Eel_arch.Template.t, string) result =
  try
    let lines = parse_lines source in
    List.iter
      (fun sl ->
        if sl.sl_dirs <> [] || sl.sl_sec <> 0 then
          err "line %d: directives are not allowed in snippets" sl.sl_no;
        List.iter
          (fun it ->
            match it with
            | I_insn _ | I_set _ -> ()
            | _ -> err "line %d: only instructions are allowed in snippets" sl.sl_no)
          sl.sl_items)
      lines;
    let placed, labels, _order, sizes = layout lines in
    let nwords = sizes.(0) / 4 in
    let words = Array.make nwords 0 in
    let lookup s =
      if String.length s > 0 && s.[0] = '$' then
        List.assoc_opt (String.sub s 1 (String.length s - 1)) params
      else
        match Hashtbl.find_opt labels s with
        | Some (_, off) -> Some off
        | None -> None
    in
    let env =
      { lookup; dot = 0; used_label = false; is_label = (fun l -> Hashtbl.mem labels l) }
    in
    let ctx = { e_env = env; e_index = 0; e_snippet = true; e_vuses = []; e_relocs = [] } in
    List.iter
      (fun p ->
        let env = { env with dot = p.p_off } in
        ctx.e_env <- env;
        try
          match p.p_item with
          | I_insn pre ->
              ctx.e_index <- p.p_off / 4;
              words.(p.p_off / 4) <- encode_pre ctx ~pc:p.p_off pre
          | I_set (e, rd) ->
              let idx = p.p_off / 4 in
              let v = Word.mask (eval env e) in
              ctx.e_index <- idx;
              let rd1 = enc_reg ctx ~lo:25 ~hi:29 rd in
              words.(idx) <- Insn.encode (Insn.Sethi { rd = rd1; imm22 = v lsr 10 });
              ctx.e_index <- idx + 1;
              let rs1 = enc_reg ctx ~lo:14 ~hi:18 rd in
              let rd2 = enc_reg ctx ~lo:25 ~hi:29 rd in
              words.(idx + 1) <-
                Insn.encode
                  (Insn.Alu
                     { op = Insn.Or; rs1; op2 = Insn.O_imm (v land 0x3FF); rd = rd2 })
          | _ -> assert false
        with
        | Error m -> err "line %d: %s" p.p_no m
        | Insn.Encode_error m -> err "line %d: %s" p.p_no m)
      placed;
    Ok { Eel_arch.Template.words; vuses = List.rev ctx.e_vuses; relocs = List.rev ctx.e_relocs }
  with Error m -> Result.Error m
