(** The handwritten SPARC implementation of EEL's machine interface
    ({!Eel_arch.Machine.t}).

    This module (together with {!Insn}, {!Lift} and {!Asm}) is the analog of
    the paper's "2,268 lines of handwritten architecture-specific code". The
    same interface is also produced mechanically by {!Eel_spawn} from the
    145-line-scale description in [descriptions/sparc.spawn]; the two are
    cross-checked by property tests. *)

open Eel_arch
module W = Eel_util.Word

(** All scavengeable registers: every integer register except %g0 (zero),
    %o6/%sp (stack pointer) and %g6/%g7 (EEL's reserved scratch registers —
    the SPARC ABI reserves %g5–%g7 for the system, so conforming programs
    never hold live values there; this stands in for the paper's planned
    "mechanism to free a register"). *)
let allocatable =
  Regset.diff
    (Regset.range 1 31)
    (Regset.of_list [ Regs.sp; Regs.g6; Regs.g7 ])

let retarget (i : Instr.t) ~disp =
  if disp land 3 <> 0 then None
  else
    match Insn.decode i.Instr.word with
    | Insn.Bicc b ->
        if W.fits_signed 22 (disp asr 2) then
          Some (Insn.encode (Insn.Bicc { b with disp22 = disp asr 2 }))
        else None
    | Insn.Call _ ->
        if W.fits_signed 30 (disp asr 2) then
          Some (Insn.encode (Insn.Call { disp30 = disp asr 2 }))
        else None
    | _ -> None

let mk_set_const ~reg v =
  let v = W.mask v in
  [
    Insn.encode (Insn.Sethi { rd = reg; imm22 = v lsr 10 });
    Insn.encode
      (Insn.Alu { op = Insn.Or; rs1 = reg; op2 = Insn.O_imm (v land 0x3FF); rd = reg });
  ]

let set_const_hi word ~value =
  (* patch a sethi's imm22 with the high 22 bits of [value] *)
  W.set_bits ~lo:0 ~hi:21 word (W.mask value lsr 10)

let set_const_lo word ~value =
  (* patch an i=1 format-3 simm13 with the low 10 bits of [value] *)
  W.set_bits ~lo:0 ~hi:12 word (W.mask value land 0x3FF)

let mach : Machine.t =
  {
    name = "sparc-v8";
    word_bytes = 4;
    num_regs = Regs.num_regs;
    reg_name = Regs.name;
    zero_regs = Regset.singleton Regs.g0;
    sp = Regs.sp;
    link = Regs.o7;
    ret_regs = Regset.of_list [ Regs.o7; Regs.i7 ];
    allocatable;
    reserved_scratch = Regs.g7;
    reserved_scratch2 = Regs.g6;
    lift = Lift.lift;
    noreturn =
      (fun i ->
        match i.Instr.ctl with
        | Instr.C_syscall { num = Some 1 } -> true (* exit *)
        | _ -> false);
    branch_span = (1 lsl 21) * 4;
    retarget;
    nop = Insn.encode Insn.nop;
    set_annul =
      (fun word annul ->
        match Insn.decode word with
        | Insn.Bicc b -> Insn.encode (Insn.Bicc { b with annul })
        | _ -> word);
    mk_ba =
      (fun ~disp ->
        Insn.encode (Insn.Bicc { cond = Insn.CA; annul = false; disp22 = disp asr 2 }));
    mk_call = (fun ~disp -> Insn.encode (Insn.Call { disp30 = disp asr 2 }));
    mk_set_const = (fun ~reg v -> mk_set_const ~reg v);
    mk_jmp_reg =
      (fun ~rs1 ~op2 ~link -> Insn.encode (Insn.Jmpl { rs1; op2; rd = link }));
    mk_ld_word =
      (fun ~addr_rs1 ~addr_op2 ~dst ->
        Insn.encode (Insn.Mem { op = Insn.Ld; rs1 = addr_rs1; op2 = addr_op2; rd = dst }));
    mk_add =
      (fun ~rs1 ~op2 ~dst ->
        Insn.encode (Insn.Alu { op = Insn.Add; rs1; op2; rd = dst }));
    mk_spill =
      (fun ~reg ~sp_off ->
        Insn.encode
          (Insn.Mem { op = Insn.St; rs1 = Regs.sp; op2 = Insn.O_imm sp_off; rd = reg }));
    mk_unspill =
      (fun ~reg ~sp_off ->
        Insn.encode
          (Insn.Mem { op = Insn.Ld; rs1 = Regs.sp; op2 = Insn.O_imm sp_off; rd = reg }));
    set_const_hi;
    set_const_lo;
    eval_compute = Lift.eval_compute;
    shift_left =
      (fun i ->
        match Insn.decode i.Instr.word with
        | Insn.Alu { op = Insn.Sll; rs1; op2 = Insn.O_imm k; _ } -> Some (rs1, k)
        | _ -> None);
    mask_bound =
      (fun i ->
        match Insn.decode i.Instr.word with
        | Insn.Alu { op = Insn.And | Insn.Andcc; rs1; op2 = Insn.O_imm m; _ }
          when m >= 0 ->
            Some (rs1, m)
        | _ -> None);
    asm = (fun ~params src -> Asm.parse_snippet ~params src);
    disas = (fun ~pc word -> Insn.to_string ~pc (Insn.decode word));
  }
