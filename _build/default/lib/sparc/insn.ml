(** Structured SPARC V8 (integer subset) instructions: decode and encode.

    The encodings are the real SPARC V8 ones (formats 1, 2 and 3). The
    subset covers everything EEL's algorithms stress: delayed branches with
    annul bits, [sethi]-based constant construction, [call]/[jmpl] control
    transfers, the full integer ALU, loads/stores of all widths, and [ticc]
    traps used for system calls. Floating-point and coprocessor encodings
    decode as {!Invalid}, which EEL exploits to distinguish data from code.

    The decoder is {e strict}: reserved fields must be zero. Strictness makes
    random data words overwhelmingly likely to decode as {!Invalid}, which is
    what gives symbol-table refinement (paper §3.1) its discriminating
    power. *)

open Eel_util

type cond =
  | CN  (** never *)
  | CE
  | CLE
  | CL
  | CLEU
  | CCS
  | CNEG
  | CVS
  | CA  (** always *)
  | CNE
  | CG
  | CGE
  | CGU
  | CCC
  | CPOS
  | CVC

let cond_code = function
  | CN -> 0
  | CE -> 1
  | CLE -> 2
  | CL -> 3
  | CLEU -> 4
  | CCS -> 5
  | CNEG -> 6
  | CVS -> 7
  | CA -> 8
  | CNE -> 9
  | CG -> 10
  | CGE -> 11
  | CGU -> 12
  | CCC -> 13
  | CPOS -> 14
  | CVC -> 15

let cond_of_code = function
  | 0 -> CN
  | 1 -> CE
  | 2 -> CLE
  | 3 -> CL
  | 4 -> CLEU
  | 5 -> CCS
  | 6 -> CNEG
  | 7 -> CVS
  | 8 -> CA
  | 9 -> CNE
  | 10 -> CG
  | 11 -> CGE
  | 12 -> CGU
  | 13 -> CCC
  | 14 -> CPOS
  | _ -> CVC

let cond_name = function
  | CN -> "n"
  | CE -> "e"
  | CLE -> "le"
  | CL -> "l"
  | CLEU -> "leu"
  | CCS -> "cs"
  | CNEG -> "neg"
  | CVS -> "vs"
  | CA -> "a"
  | CNE -> "ne"
  | CG -> "g"
  | CGE -> "ge"
  | CGU -> "gu"
  | CCC -> "cc"
  | CPOS -> "pos"
  | CVC -> "vc"

(** [cond_eval c icc] evaluates branch condition [c] against the condition
    codes value (N=bit3, Z=bit2, V=bit1, C=bit0). *)
let cond_eval c icc =
  let n = icc land 8 <> 0
  and z = icc land 4 <> 0
  and v = icc land 2 <> 0
  and cf = icc land 1 <> 0 in
  let xor a b = (a || b) && not (a && b) in
  match c with
  | CA -> true
  | CN -> false
  | CE -> z
  | CNE -> not z
  | CG -> not (z || xor n v)
  | CLE -> z || xor n v
  | CGE -> not (xor n v)
  | CL -> xor n v
  | CGU -> not (cf || z)
  | CLEU -> cf || z
  | CCC -> not cf
  | CCS -> cf
  | CPOS -> not n
  | CNEG -> n
  | CVC -> not v
  | CVS -> v

type alu =
  | Add
  | And
  | Or
  | Xor
  | Sub
  | Andn
  | Orn
  | Xnor
  | Umul
  | Smul
  | Udiv
  | Sdiv
  | Addcc
  | Andcc
  | Orcc
  | Xorcc
  | Subcc
  | Sll
  | Srl
  | Sra
  | Save
  | Restore

let alu_op3 = function
  | Add -> 0x00
  | And -> 0x01
  | Or -> 0x02
  | Xor -> 0x03
  | Sub -> 0x04
  | Andn -> 0x05
  | Orn -> 0x06
  | Xnor -> 0x07
  | Umul -> 0x0a
  | Smul -> 0x0b
  | Udiv -> 0x0e
  | Sdiv -> 0x0f
  | Addcc -> 0x10
  | Andcc -> 0x11
  | Orcc -> 0x12
  | Xorcc -> 0x13
  | Subcc -> 0x14
  | Sll -> 0x25
  | Srl -> 0x26
  | Sra -> 0x27
  | Save -> 0x3c
  | Restore -> 0x3d

let alu_of_op3 = function
  | 0x00 -> Some Add
  | 0x01 -> Some And
  | 0x02 -> Some Or
  | 0x03 -> Some Xor
  | 0x04 -> Some Sub
  | 0x05 -> Some Andn
  | 0x06 -> Some Orn
  | 0x07 -> Some Xnor
  | 0x0a -> Some Umul
  | 0x0b -> Some Smul
  | 0x0e -> Some Udiv
  | 0x0f -> Some Sdiv
  | 0x10 -> Some Addcc
  | 0x11 -> Some Andcc
  | 0x12 -> Some Orcc
  | 0x13 -> Some Xorcc
  | 0x14 -> Some Subcc
  | 0x25 -> Some Sll
  | 0x26 -> Some Srl
  | 0x27 -> Some Sra
  | 0x3c -> Some Save
  | 0x3d -> Some Restore
  | _ -> None

let alu_name = function
  | Add -> "add"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sub -> "sub"
  | Andn -> "andn"
  | Orn -> "orn"
  | Xnor -> "xnor"
  | Umul -> "umul"
  | Smul -> "smul"
  | Udiv -> "udiv"
  | Sdiv -> "sdiv"
  | Addcc -> "addcc"
  | Andcc -> "andcc"
  | Orcc -> "orcc"
  | Xorcc -> "xorcc"
  | Subcc -> "subcc"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Save -> "save"
  | Restore -> "restore"

(** Does this ALU op write the integer condition codes? *)
let alu_sets_cc = function
  | Addcc | Andcc | Orcc | Xorcc | Subcc -> true
  | _ -> false

type mem =
  | Ld
  | Ldub
  | Lduh
  | Ldd
  | St
  | Stb
  | Sth
  | Std
  | Ldsb
  | Ldsh

let mem_op3 = function
  | Ld -> 0x00
  | Ldub -> 0x01
  | Lduh -> 0x02
  | Ldd -> 0x03
  | St -> 0x04
  | Stb -> 0x05
  | Sth -> 0x06
  | Std -> 0x07
  | Ldsb -> 0x09
  | Ldsh -> 0x0a

let mem_of_op3 = function
  | 0x00 -> Some Ld
  | 0x01 -> Some Ldub
  | 0x02 -> Some Lduh
  | 0x03 -> Some Ldd
  | 0x04 -> Some St
  | 0x05 -> Some Stb
  | 0x06 -> Some Sth
  | 0x07 -> Some Std
  | 0x09 -> Some Ldsb
  | 0x0a -> Some Ldsh
  | _ -> None

let mem_name = function
  | Ld -> "ld"
  | Ldub -> "ldub"
  | Lduh -> "lduh"
  | Ldd -> "ldd"
  | St -> "st"
  | Stb -> "stb"
  | Sth -> "sth"
  | Std -> "std"
  | Ldsb -> "ldsb"
  | Ldsh -> "ldsh"

let mem_is_store = function St | Stb | Sth | Std -> true | _ -> false

let mem_width = function
  | Ldub | Ldsb | Stb -> 1
  | Lduh | Ldsh | Sth -> 2
  | Ld | St -> 4
  | Ldd | Std -> 8

type operand = Eel_arch.Instr.operand = O_reg of int | O_imm of int

type t =
  | Sethi of { rd : int; imm22 : int }
  | Unimp of int
  | Bicc of { cond : cond; annul : bool; disp22 : int }
      (** [disp22] is the signed {e word} displacement from the branch pc *)
  | Call of { disp30 : int }  (** signed word displacement *)
  | Alu of { op : alu; rs1 : int; op2 : operand; rd : int }
  | Jmpl of { rs1 : int; op2 : operand; rd : int }
  | Ticc of { cond : cond; rs1 : int; op2 : operand }
  | Rdy of { rd : int }
  | Wry of { rs1 : int; op2 : operand }
  | Mem of { op : mem; rs1 : int; op2 : operand; rd : int }
  | Invalid of int  (** raw word that does not decode *)

(** The canonical no-op: [sethi 0, %g0]. *)
let nop = Sethi { rd = 0; imm22 = 0 }

(** {1 Decoding} *)

(** Strict operand decode: returns [None] when reserved asi bits are set. *)
let decode_op2_strict word =
  if Word.bits ~lo:13 ~hi:13 word = 1 then Some (O_imm (Word.sext 13 word))
  else if Word.bits ~lo:5 ~hi:12 word <> 0 then None
  else Some (O_reg (Word.bits ~lo:0 ~hi:4 word))

let decode word =
  let word = Word.mask word in
  let op = Word.bits ~lo:30 ~hi:31 word in
  let rd = Word.bits ~lo:25 ~hi:29 word in
  let rs1 = Word.bits ~lo:14 ~hi:18 word in
  let invalid = Invalid word in
  match op with
  | 0b01 -> Call { disp30 = Word.sext 30 word }
  | 0b00 -> (
      let op2 = Word.bits ~lo:22 ~hi:24 word in
      match op2 with
      | 0b100 -> Sethi { rd; imm22 = Word.bits ~lo:0 ~hi:21 word }
      | 0b010 ->
          let annul = Word.bits ~lo:29 ~hi:29 word = 1 in
          let cond = cond_of_code (Word.bits ~lo:25 ~hi:28 word) in
          Bicc { cond; annul; disp22 = Word.sext 22 word }
      | 0b000 ->
          (* UNIMP: reserved rd/a bits must be zero to count as the
             canonical unimplemented encoding *)
          if Word.bits ~lo:22 ~hi:29 word = 0 then
            Unimp (Word.bits ~lo:0 ~hi:21 word)
          else invalid
      | _ -> invalid)
  | 0b10 -> (
      let op3 = Word.bits ~lo:19 ~hi:24 word in
      match decode_op2_strict word with
      | None -> invalid
      | Some op2 -> (
          match op3 with
          | 0x38 -> Jmpl { rs1; op2; rd }
          | 0x3a ->
              (* Ticc: bit 29 reserved; software trap numbers are 7 bits *)
              if Word.bits ~lo:29 ~hi:29 word <> 0 then invalid
              else
                let ok =
                  match op2 with O_imm i -> i >= 0 && i < 128 | O_reg _ -> true
                in
                if ok then
                  Ticc
                    { cond = cond_of_code (Word.bits ~lo:25 ~hi:28 word); rs1; op2 }
                else invalid
          | 0x28 ->
              (* RDY: rs1 must be 0 *)
              if rs1 = 0 && op2 = O_reg 0 then Rdy { rd } else invalid
          | 0x30 ->
              (* WRY: rd must be 0 *)
              if rd = 0 then Wry { rs1; op2 } else invalid
          | _ -> (
              match alu_of_op3 op3 with
              | Some aop -> (
                  (* shifts use only 5 immediate bits; reserved bits 12:5
                     must be zero when i=1 *)
                  match aop with
                  | Sll | Srl | Sra -> (
                      match op2 with
                      | O_imm i when i >= 0 && i < 32 ->
                          Alu { op = aop; rs1; op2; rd }
                      | O_imm _ -> invalid
                      | O_reg _ -> Alu { op = aop; rs1; op2; rd })
                  | _ -> Alu { op = aop; rs1; op2; rd })
              | None -> invalid)))
  | _ -> (
      (* op = 0b11: memory *)
      let op3 = Word.bits ~lo:19 ~hi:24 word in
      match (mem_of_op3 op3, decode_op2_strict word) with
      | Some mop, Some op2 ->
          (* ldd/std require even rd *)
          if (mop = Ldd || mop = Std) && rd land 1 = 1 then invalid
          else Mem { op = mop; rs1; op2; rd }
      | _ -> invalid)

(** {1 Encoding} *)

exception Encode_error of string

let check_reg r =
  if r < 0 || r > 31 then
    raise (Encode_error (Printf.sprintf "register %s cannot be encoded" (Regs.name r)))

let enc_op2 word = function
  | O_imm i ->
      if not (Word.fits_signed 13 i) then
        raise (Encode_error (Printf.sprintf "immediate %d does not fit simm13" i));
      word lor (1 lsl 13) lor Word.zext 13 i
  | O_reg r ->
      check_reg r;
      word lor r

let encode = function
  | Sethi { rd; imm22 } ->
      check_reg rd;
      (0b00 lsl 30) lor (rd lsl 25) lor (0b100 lsl 22) lor Word.zext 22 imm22
  | Unimp i -> Word.zext 22 i
  | Bicc { cond; annul; disp22 } ->
      if not (Word.fits_signed 22 disp22) then
        raise (Encode_error (Printf.sprintf "branch displacement %d out of range" disp22));
      ((if annul then 1 else 0) lsl 29)
      lor (cond_code cond lsl 25)
      lor (0b010 lsl 22)
      lor Word.zext 22 disp22
  | Call { disp30 } -> (0b01 lsl 30) lor Word.zext 30 disp30
  | Alu { op; rs1; op2; rd } ->
      check_reg rs1;
      check_reg rd;
      enc_op2
        ((0b10 lsl 30) lor (rd lsl 25) lor (alu_op3 op lsl 19) lor (rs1 lsl 14))
        op2
  | Jmpl { rs1; op2; rd } ->
      check_reg rs1;
      check_reg rd;
      enc_op2 ((0b10 lsl 30) lor (rd lsl 25) lor (0x38 lsl 19) lor (rs1 lsl 14)) op2
  | Ticc { cond; rs1; op2 } ->
      check_reg rs1;
      enc_op2
        ((0b10 lsl 30) lor (cond_code cond lsl 25) lor (0x3a lsl 19) lor (rs1 lsl 14))
        op2
  | Rdy { rd } ->
      check_reg rd;
      (0b10 lsl 30) lor (rd lsl 25) lor (0x28 lsl 19)
  | Wry { rs1; op2 } ->
      check_reg rs1;
      enc_op2 ((0b10 lsl 30) lor (0x30 lsl 19) lor (rs1 lsl 14)) op2
  | Mem { op; rs1; op2; rd } ->
      check_reg rs1;
      check_reg rd;
      enc_op2
        ((0b11 lsl 30) lor (rd lsl 25) lor (mem_op3 op lsl 19) lor (rs1 lsl 14))
        op2
  | Invalid w -> Word.mask w

let is_valid_word w = match decode w with Invalid _ | Unimp _ -> false | _ -> true

(** {1 Pretty printing (disassembly)} *)

let pp_operand fmt = function
  | O_reg r -> Format.fprintf fmt "%s" (Regs.name r)
  | O_imm i -> Format.fprintf fmt "%d" i

let pp_addr_operand fmt (rs1, op2) =
  match op2 with
  | O_reg 0 -> Format.fprintf fmt "[%s]" (Regs.name rs1)
  | O_imm 0 -> Format.fprintf fmt "[%s]" (Regs.name rs1)
  | O_reg r -> Format.fprintf fmt "[%s + %s]" (Regs.name rs1) (Regs.name r)
  | O_imm i when i < 0 -> Format.fprintf fmt "[%s - %d]" (Regs.name rs1) (-i)
  | O_imm i -> Format.fprintf fmt "[%s + %d]" (Regs.name rs1) i

(** [pp ~pc fmt insn] disassembles with pc-relative targets resolved when
    [pc] is provided. *)
let pp ?pc fmt t =
  let target disp_words =
    match pc with
    | Some pc -> Format.asprintf "0x%x" (Word.add pc (disp_words * 4))
    | None -> Format.asprintf ".%+d" (disp_words * 4)
  in
  match t with
  | Invalid w -> Format.fprintf fmt ".word 0x%08x  ! invalid" w
  | Sethi { rd = 0; imm22 = 0 } -> Format.fprintf fmt "nop"
  | Sethi { rd; imm22 } ->
      Format.fprintf fmt "sethi %%hi(0x%x), %s" (imm22 lsl 10) (Regs.name rd)
  | Unimp i -> Format.fprintf fmt "unimp 0x%x" i
  | Bicc { cond; annul; disp22 } ->
      Format.fprintf fmt "b%s%s %s" (cond_name cond)
        (if annul then ",a" else "")
        (target disp22)
  | Call { disp30 } -> Format.fprintf fmt "call %s" (target disp30)
  | Alu { op; rs1; op2; rd } ->
      Format.fprintf fmt "%s %s, %a, %s" (alu_name op) (Regs.name rs1) pp_operand
        op2 (Regs.name rd)
  | Jmpl { rs1; op2 = O_imm 8; rd = 0 } when rs1 = Regs.o7 ->
      Format.fprintf fmt "retl"
  | Jmpl { rs1; op2 = O_imm 8; rd = 0 } when rs1 = Regs.i7 ->
      Format.fprintf fmt "ret"
  | Jmpl { rs1; op2; rd = 0 } ->
      Format.fprintf fmt "jmp %a" pp_addr_operand (rs1, op2)
  | Jmpl { rs1; op2; rd } ->
      Format.fprintf fmt "jmpl %a, %s" pp_addr_operand (rs1, op2) (Regs.name rd)
  | Ticc { cond; rs1 = 0; op2 = O_imm i } ->
      Format.fprintf fmt "t%s %d" (cond_name cond) i
  | Ticc { cond; rs1; op2 } ->
      Format.fprintf fmt "t%s %s, %a" (cond_name cond) (Regs.name rs1) pp_operand op2
  | Rdy { rd } -> Format.fprintf fmt "rd %%y, %s" (Regs.name rd)
  | Wry { rs1; op2 } ->
      Format.fprintf fmt "wr %s, %a, %%y" (Regs.name rs1) pp_operand op2
  | Mem { op; rs1; op2; rd } ->
      if mem_is_store op then
        Format.fprintf fmt "%s %s, %a" (mem_name op) (Regs.name rd) pp_addr_operand
          (rs1, op2)
      else
        Format.fprintf fmt "%s %a, %s" (mem_name op) pp_addr_operand (rs1, op2)
          (Regs.name rd)

let to_string ?pc t = Format.asprintf "%a" (pp ?pc) t
