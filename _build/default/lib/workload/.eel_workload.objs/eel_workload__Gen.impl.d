lib/workload/gen.ml: Array Buffer Eel_sparc List Printf Random String
