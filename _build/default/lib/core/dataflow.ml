(** Standard CFG analyses (paper §3.3): dominators, natural loops and live
    registers.

    "EEL can perform several standard CFG analyses: dominators, natural
    loops, live registers, and slicing. EEL uses them to improve the
    precision of control analysis and to reduce the need for run-time
    mechanisms."

    Liveness drives snippet register scavenging (§3.5): EEL assigns dead
    registers to snippet virtual registers, falling back on spills when too
    few are dead. The analysis is ABI-aware (see DESIGN.md): at routine exit
    the callee-saved registers, the stack pointer, frame pointer and return
    value are live; a call surrogate block defines the caller-volatile
    registers and uses the argument registers. *)

open Eel_arch
module C = Cfg

(** {1 Block orderings} *)

(** Reverse postorder over reachable blocks, entries first. *)
let rpo (g : C.t) =
  let order = ref [] in
  let seen = Hashtbl.create 64 in
  let rec dfs (b : C.block) =
    if not (Hashtbl.mem seen b.C.bid) then (
      Hashtbl.add seen b.C.bid ();
      List.iter (fun (e : C.edge) -> dfs e.C.edst) b.C.succs;
      order := b :: !order)
  in
  List.iter dfs (C.entry_blocks g);
  Array.of_list !order

(** {1 Dominators (Cooper–Harvey–Kennedy iterative algorithm)} *)

type doms = {
  d_rpo : C.block array;
  d_idom : int array;  (** indexed by bid; -1 = undefined/unreachable *)
  d_index : int array;  (** bid -> rpo index; -1 if unreachable *)
  d_root : int;  (** virtual root above all entry blocks *)
}

let dominators (g : C.t) =
  let order = rpo g in
  let nb = C.num_blocks g in
  (* a virtual root (id [nb]) above every entry block makes the CHK
     algorithm correct for routines with multiple entry points (Fortran
     ENTRY / interprocedural jumps, paper §3.1) *)
  let root = nb in
  let index = Array.make (nb + 1) max_int in
  Array.iteri (fun i b -> index.(b.C.bid) <- i) order;
  index.(root) <- -1;
  let idom = Array.make (nb + 1) (-1) in
  idom.(root) <- root;
  List.iter (fun (b : C.block) -> idom.(b.C.bid) <- root) (C.entry_blocks g);
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while index.(!a) > index.(!b) do
        a := idom.(!a)
      done;
      while index.(!b) > index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : C.block) ->
        if b.C.kind <> C.Entry then (
          let new_idom = ref (-1) in
          List.iter
            (fun (e : C.edge) ->
              let p = e.C.esrc.C.bid in
              if idom.(p) <> -1 then
                if !new_idom = -1 then new_idom := p
                else new_idom := intersect p !new_idom)
            b.C.preds;
          if !new_idom <> -1 && idom.(b.C.bid) <> !new_idom then (
            idom.(b.C.bid) <- !new_idom;
            changed := true)))
      order
  done;
  { d_rpo = order; d_idom = idom; d_index = index; d_root = root }

(** [dominates d a b] — does block [a] dominate block [b]? *)
let dominates d (a : C.block) (b : C.block) =
  let rec up x =
    if x = a.C.bid then true
    else if x = d.d_root then false
    else
      let i = d.d_idom.(x) in
      if i = -1 || i = x then x = a.C.bid
      else up i
  in
  a.C.bid = b.C.bid || up b.C.bid

(** {1 Natural loops} *)

type loop = { header : C.block; body : C.block list (* includes header *) }

let natural_loops (g : C.t) =
  let d = dominators g in
  let loops = ref [] in
  List.iter
    (fun (e : C.edge) ->
      if
        e.C.edst.C.reachable && e.C.esrc.C.reachable
        && dominates d e.C.edst e.C.esrc
      then (
        (* back edge: collect the loop body by backward reachability from the
           latch, stopping at the header *)
        let header = e.C.edst in
        let body = Hashtbl.create 8 in
        Hashtbl.add body header.C.bid header;
        let rec pull (b : C.block) =
          if not (Hashtbl.mem body b.C.bid) then (
            Hashtbl.add body b.C.bid b;
            List.iter (fun (p : C.edge) -> pull p.C.esrc) b.C.preds)
        in
        pull e.C.esrc;
        loops :=
          { header; body = Hashtbl.fold (fun _ b acc -> b :: acc) body [] }
          :: !loops))
    (C.edges g);
  !loops

(** {1 Liveness} *)

(** Caller-volatile registers under this repository's flat-register ABI:
    %g1–%g6, %o0–%o5 and %o7. A call may clobber them all. *)
let volatile_regs =
  Regset.union (Regset.range 1 6) (Regset.add 15 (Regset.range 8 13))

(** Registers live at a normal routine exit: return value, stack and frame
    pointers, the return-address registers, and every callee-saved
    register (%l0–%l7, %i0–%i7). *)
let abi_exit_live =
  Regset.union
    (Regset.of_list [ 8 (* o0 *); 14 (* sp *); 15 (* o7 *) ])
    (Regset.range 16 31)

(** Argument registers a callee may read. *)
let arg_regs = Regset.add 14 (Regset.range 8 13)

type live = {
  l_in : Regset.t array;  (** indexed by bid *)
  l_out : Regset.t array;
}

let block_use_def (g : C.t) (b : C.block) =
  match b.C.kind with
  | C.Call_surrogate ->
      (* the callee reads the argument registers and clobbers the
         caller-volatile set *)
      (arg_regs, volatile_regs)
  | _ ->
      List.fold_left
        (fun (use, def) (_, (i : Instr.t)) ->
          let reads = Machine.real_reads g.C.mach i in
          let writes = Machine.real_writes g.C.mach i in
          (Regset.union use (Regset.diff reads def), Regset.union def writes))
        (Regset.empty, Regset.empty)
        (C.all_instrs b)

let liveness (g : C.t) =
  let nb = C.num_blocks g in
  let l_in = Array.make nb Regset.empty in
  let l_out = Array.make nb Regset.empty in
  let all_regs = Regset.range 0 (g.C.mach.Machine.num_regs - 1) in
  let has_xfer =
    List.exists
      (fun (e : C.edge) -> match e.C.ekind with C.Ek_xfer _ -> true | _ -> false)
      g.C.exit_block.C.preds
  in
  let exit_live = if has_xfer then all_regs else abi_exit_live in
  l_in.(g.C.exit_block.C.bid) <- exit_live;
  l_out.(g.C.exit_block.C.bid) <- exit_live;
  let use_def = Array.make nb (Regset.empty, Regset.empty) in
  Eel_util.Dyn.iter
    (fun (b : C.block) -> use_def.(b.C.bid) <- block_use_def g b)
    g.C.blocks;
  let order = rpo g in
  let changed = ref true in
  while !changed do
    changed := false;
    (* backward problem: iterate in postorder (reverse of rpo) *)
    for i = Array.length order - 1 downto 0 do
      let b = order.(i) in
      if b.C.kind <> C.Exit then (
        let out =
          List.fold_left
            (fun acc (e : C.edge) -> Regset.union acc l_in.(e.C.edst.C.bid))
            Regset.empty b.C.succs
        in
        let use, def = use_def.(b.C.bid) in
        let inn = Regset.union use (Regset.diff out def) in
        if not (Regset.equal out l_out.(b.C.bid) && Regset.equal inn l_in.(b.C.bid))
        then (
          l_out.(b.C.bid) <- out;
          l_in.(b.C.bid) <- inn;
          changed := true))
    done
  done;
  { l_in; l_out }

(** [live_before lv g b idx] — registers live immediately before position
    [idx] in block [b]'s instruction sequence (indices over {!Cfg.all_instrs},
    i.e. the terminator is the last position; [idx] equal to the number of
    body instructions means "before the terminator"). *)
let live_before lv (g : C.t) (b : C.block) idx =
  let arr = C.all_instrs_array b in
  let n = Array.length arr in
  let live = ref lv.l_out.(b.C.bid) in
  for k = n - 1 downto idx do
    let _, i = arr.(k) in
    live :=
      Regset.union
        (Machine.real_reads g.C.mach i)
        (Regset.diff !live (Machine.real_writes g.C.mach i))
  done;
  !live

(** Registers live on an edge: those live into the destination block. *)
let live_on_edge lv (e : C.edge) = lv.l_in.(e.C.edst.C.bid)
