(** Interprocedural call graphs.

    Paper footnote 1: "EEL also supports interprocedural analysis and call
    graphs". The graph's nodes are the refined routine set (including
    hidden routines); edges come from three sources:

    - direct calls ([T_call] terminators),
    - interprocedural direct transfers (tail calls and multi-entry jumps:
      [Ek_xfer] edges whose destination falls in another routine),
    - indirect call {e sites} ([T_icall]), whose callee set is resolved
      through slicing when the function-pointer load folds to a constant
      (the same machinery as dispatch tables), and recorded as unresolved
      sites otherwise.

    "Unlike most compilers, which operate on a single file, editing can
    manipulate an entire program, which permits it to perform
    interprocedural analysis rather than stopping at procedure
    boundaries" (§1). *)

module C = Cfg
module E = Executable

type edge_kind = Direct_call | Tail_transfer | Indirect_call

type cedge = {
  caller : string;
  callee : string;
  kind : edge_kind;
  site : int;  (** address of the transfer instruction *)
}

type t = {
  nodes : string list;  (** routine names *)
  cedges : cedge list;
  unresolved : (string * int) list;  (** indirect sites slicing couldn't bind *)
}

let build (exec : E.t) =
  (* force discovery of every routine first *)
  ignore (E.jump_stats exec);
  let edges = ref [] in
  let unresolved = ref [] in
  let routine_of addr =
    Option.map (fun (r : E.routine) -> r.E.r_name) (E.find_routine exec addr)
  in
  List.iter
    (fun (r : E.routine) ->
      let g = E.control_flow_graph exec r in
      List.iter
        (fun (b : C.block) ->
          if b.C.reachable then
            match b.C.term with
            | C.T_call { addr; target; _ } -> (
                match routine_of target with
                | Some callee ->
                    edges :=
                      { caller = r.E.r_name; callee; kind = Direct_call; site = addr }
                      :: !edges
                | None -> ())
            | C.T_icall { addr; _ } -> (
                (* try the same constant analysis used for dispatch tables:
                   a function pointer loaded from a constant location *)
                match Slice.resolve_jump ~fetch:(E.fetch exec) g b with
                | Slice.Literal target -> (
                    match routine_of target with
                    | Some callee ->
                        edges :=
                          {
                            caller = r.E.r_name;
                            callee;
                            kind = Indirect_call;
                            site = addr;
                          }
                          :: !edges
                    | None -> unresolved := (r.E.r_name, addr) :: !unresolved)
                | Slice.Dispatch tbl ->
                    Array.iter
                      (fun target ->
                        match routine_of target with
                        | Some callee ->
                            edges :=
                              {
                                caller = r.E.r_name;
                                callee;
                                kind = Indirect_call;
                                site = addr;
                              }
                              :: !edges
                        | None -> ())
                      tbl.C.t_targets
                | Slice.Unanalyzable -> (
                    (* advisory: a function pointer loaded from a known
                       cell binds to that cell's initial contents *)
                    match Slice.loaded_cell ~fetch:(E.fetch exec) g b with
                    | Some target -> (
                        match routine_of target with
                        | Some callee ->
                            edges :=
                              {
                                caller = r.E.r_name;
                                callee;
                                kind = Indirect_call;
                                site = addr;
                              }
                              :: !edges
                        | None -> unresolved := (r.E.r_name, addr) :: !unresolved)
                    | None -> unresolved := (r.E.r_name, addr) :: !unresolved))
            | _ ->
                (* tail transfers leave through Ek_xfer edges *)
                List.iter
                  (fun (e : C.edge) ->
                    match e.C.ekind with
                    | C.Ek_xfer a -> (
                        match routine_of a with
                        | Some callee when callee <> r.E.r_name ->
                            edges :=
                              {
                                caller = r.E.r_name;
                                callee;
                                kind = Tail_transfer;
                                site = Option.value ~default:r.E.r_lo b.C.baddr;
                              }
                              :: !edges
                        | _ -> ())
                    | _ -> ())
                  b.C.succs)
        (C.blocks g))
    (E.routines exec);
  {
    nodes = List.map (fun (r : E.routine) -> r.E.r_name) (E.routines exec);
    cedges = List.rev !edges;
    unresolved = List.rev !unresolved;
  }

(** Direct+resolved callees of a routine. *)
let callees cg name =
  List.filter_map
    (fun e -> if e.caller = name then Some e.callee else None)
    cg.cedges
  |> List.sort_uniq compare

let callers cg name =
  List.filter_map
    (fun e -> if e.callee = name then Some e.caller else None)
    cg.cedges
  |> List.sort_uniq compare

(** Reverse-topological order over the acyclic part (recursive SCCs are
    emitted in discovery order) — the order interprocedural analyses
    process routines. *)
let bottom_up cg =
  let visited = Hashtbl.create 32 in
  let order = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then (
      Hashtbl.add visited n ();
      List.iter dfs (callees cg n);
      order := n :: !order)
  in
  List.iter dfs cg.nodes;
  List.rev !order
