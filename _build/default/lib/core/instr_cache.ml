(** Instruction sharing (paper §3.4).

    "To improve efficiency, EEL allocates only one instruction to represent
    all instances of a particular machine instruction. Typically, this
    optimization reduces the number of allocated EEL instructions by a
    factor of four."

    EEL instructions ({!Eel_arch.Instr.t}) are position independent — control
    transfer targets are displacements — so all occurrences of one encoding
    word can share a single value. The cache can be disabled to measure the
    effect (experiment E5). *)

type t = {
  mach : Eel_arch.Machine.t;
  table : (int, Eel_arch.Instr.t) Hashtbl.t;
  enabled : bool;
}

let create ?(enabled = true) mach = { mach; table = Hashtbl.create 1024; enabled }

(** [lift c word] returns the (possibly shared) EEL instruction for a machine
    word, updating the {!Stats} counters. *)
let lift c word =
  Stats.stats.instrs_lifted <- Stats.stats.instrs_lifted + 1;
  if not c.enabled then (
    Stats.stats.instrs_alloc <- Stats.stats.instrs_alloc + 1;
    c.mach.Eel_arch.Machine.lift word)
  else
    match Hashtbl.find_opt c.table word with
    | Some i -> i
    | None ->
        let i = c.mach.Eel_arch.Machine.lift word in
        Stats.stats.instrs_alloc <- Stats.stats.instrs_alloc + 1;
        Hashtbl.add c.table word i;
        i

(** Number of distinct instruction objects allocated through this cache. *)
let unique c = Hashtbl.length c.table
