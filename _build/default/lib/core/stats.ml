(** Global allocation counters for EEL objects.

    The paper compares the number of objects allocated by the EEL-based qpt2
    against the ad-hoc qpt (317,494 vs 84,655, §5) and reports that the
    instruction-sharing optimization reduces allocated EEL instructions by a
    factor of four (§3.4). These counters make both measurements
    reproducible (experiments E5 and E8). *)

type t = {
  mutable instrs_lifted : int;  (** total machine words lifted *)
  mutable instrs_alloc : int;  (** EEL instruction objects actually allocated *)
  mutable blocks_alloc : int;
  mutable edges_alloc : int;
  mutable snippets_alloc : int;
  mutable cfgs_built : int;
}

let stats =
  {
    instrs_lifted = 0;
    instrs_alloc = 0;
    blocks_alloc = 0;
    edges_alloc = 0;
    snippets_alloc = 0;
    cfgs_built = 0;
  }

let reset () =
  stats.instrs_lifted <- 0;
  stats.instrs_alloc <- 0;
  stats.blocks_alloc <- 0;
  stats.edges_alloc <- 0;
  stats.snippets_alloc <- 0;
  stats.cfgs_built <- 0

(** Total EEL objects allocated since the last {!reset}. *)
let total_objects () =
  stats.instrs_alloc + stats.blocks_alloc + stats.edges_alloc
  + stats.snippets_alloc

let pp fmt () =
  Format.fprintf fmt
    "instrs lifted=%d allocated=%d blocks=%d edges=%d snippets=%d cfgs=%d"
    stats.instrs_lifted stats.instrs_alloc stats.blocks_alloc stats.edges_alloc
    stats.snippets_alloc stats.cfgs_built
