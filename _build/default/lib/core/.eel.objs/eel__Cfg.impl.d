lib/core/cfg.ml: Array Eel_arch Eel_robust Eel_util Format Hashtbl Instr Instr_cache List Machine Option Printf Regset Stats
