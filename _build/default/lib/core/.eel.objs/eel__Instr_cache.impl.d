lib/core/instr_cache.ml: Eel_arch Hashtbl Stats
