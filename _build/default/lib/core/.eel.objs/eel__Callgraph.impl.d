lib/core/callgraph.ml: Array Cfg Executable Hashtbl List Option Slice
