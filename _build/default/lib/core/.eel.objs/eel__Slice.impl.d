lib/core/slice.ml: Array Cfg Dataflow Eel_arch Eel_util Hashtbl Instr List Machine Regset
