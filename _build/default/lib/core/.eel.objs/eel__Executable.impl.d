lib/core/executable.ml: Array Bytes Cfg Edit Eel_arch Eel_robust Eel_sef Eel_util Hashtbl Instr Instr_cache List Logs Machine Option Printf Slice Snippet Template
