lib/core/snippet.ml: Array Eel_arch List Machine Regset Stats Template
