lib/core/edit.ml: Array Cfg Dataflow Eel_arch Eel_robust Eel_util Hashtbl Instr List Machine Option Printf Snippet Template
