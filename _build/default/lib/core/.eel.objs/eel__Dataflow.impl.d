lib/core/dataflow.ml: Array Cfg Eel_arch Eel_util Hashtbl Instr List Machine Regset
