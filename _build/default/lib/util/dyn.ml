(** A minimal growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dyn.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Dyn.set";
  t.data.(i) <- v

let push t v =
  if t.len = Array.length t.data then (
    let cap = max 8 (2 * Array.length t.data) in
    let data = Array.make cap v in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data);
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_array t = Array.init t.len (fun i -> t.data.(i))
