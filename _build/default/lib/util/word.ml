(** 32-bit word arithmetic on OCaml [int].

    Executable editing manipulates 32-bit machine words and addresses. We
    represent both as non-negative OCaml [int]s in the range [0, 2^32).
    OCaml's 63-bit native ints hold these comfortably; every arithmetic
    operation re-normalizes with {!mask}. Signed interpretations (e.g. branch
    displacements, [simm13] fields) go through {!sext}. *)

let mask32 = 0xFFFF_FFFF

(** [mask x] truncates [x] to its low 32 bits. *)
let mask x = x land mask32

(** [sext width x] sign-extends the low [width] bits of [x] to an OCaml int.
    E.g. [sext 13 0x1FFF = -1]. *)
let sext width x =
  let x = x land ((1 lsl width) - 1) in
  if x land (1 lsl (width - 1)) <> 0 then x - (1 lsl width) else x

(** [zext width x] zero-extends (i.e. masks) the low [width] bits. *)
let zext width x = x land ((1 lsl width) - 1)

(** [bits ~lo ~hi x] extracts the inclusive bit-field [hi:lo] of [x],
    where bit 0 is the least significant. *)
let bits ~lo ~hi x = (x lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

(** [set_bits ~lo ~hi x v] returns [x] with field [hi:lo] replaced by the low
    bits of [v]. *)
let set_bits ~lo ~hi x v =
  let field_mask = ((1 lsl (hi - lo + 1)) - 1) lsl lo in
  (x land lnot field_mask) lor ((v lsl lo) land field_mask)

(** 32-bit wrapping addition. *)
let add x y = mask (x + y)

(** 32-bit wrapping subtraction. *)
let sub x y = mask (x - y)

(** 32-bit wrapping multiplication. *)
let mul x y = mask (x * y)

(** Signed value of a 32-bit word. *)
let signed x = sext 32 x

(** [of_signed x] re-normalizes a signed int to a 32-bit word. *)
let of_signed x = mask x

(** Logical shift left within 32 bits; the shift amount is taken mod 32,
    matching SPARC semantics. *)
let sll x s = mask (x lsl (s land 31))

(** Logical shift right. *)
let srl x s = mask x lsr (s land 31)

(** Arithmetic shift right of the 32-bit value. *)
let sra x s = mask (signed x asr (s land 31))

(** Unsigned comparison of two 32-bit words. *)
let ucompare x y = compare (mask x) (mask y)

(** Signed comparison of two 32-bit words. *)
let scompare x y = compare (signed x) (signed y)

(** [fits_signed width x] holds when signed [x] is representable in a
    [width]-bit two's-complement field. *)
let fits_signed width x =
  let x = signed (mask x) in
  x >= -(1 lsl (width - 1)) && x < 1 lsl (width - 1)

(** Hexadecimal printer, [0x%08x] style. *)
let pp fmt x = Format.fprintf fmt "0x%08x" (mask x)

let to_hex x = Printf.sprintf "0x%08x" (mask x)
