(** Little-endian binary readers and writers.

    The SEF executable format ({!Eel_sef}) and the raw text/data section
    contents are serialized with these helpers. Machine words inside the text
    segment are {e big-endian} (SPARC convention) and use the [*_be] variants;
    file-format metadata is little-endian. *)

(** {1 Writing} *)

let w8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w16 buf v =
  w8 buf v;
  w8 buf (v lsr 8)

let w32 buf v =
  w8 buf v;
  w8 buf (v lsr 8);
  w8 buf (v lsr 16);
  w8 buf (v lsr 24)

let w32_be buf v =
  w8 buf (v lsr 24);
  w8 buf (v lsr 16);
  w8 buf (v lsr 8);
  w8 buf v

(** [wstr buf s] writes a length-prefixed (u16) string. *)
let wstr buf s =
  w16 buf (String.length s);
  Buffer.add_string buf s

let wbytes buf (b : bytes) = Buffer.add_bytes buf b

(** {1 Reading}

    A reader is a mutable cursor over a [string]. All read functions raise
    {!Truncated} on short input, carrying the cursor position and the
    wanted/available byte counts so format-level code can turn the failure
    into a precise structured diagnostic. *)

type reader = { src : string; mutable pos : int }

(** Raised when a read runs past the end of the input. [context] names the
    reader primitive, [offset] is the cursor position, [wanted] the bytes the
    read needed and [available] how many remained. *)
exception
  Truncated of { context : string; offset : int; wanted : int; available : int }

let () =
  Printexc.register_printer (function
    | Truncated { context; offset; wanted; available } ->
        Some
          (Printf.sprintf
             "Bytebuf.Truncated(%s: at offset %d wanted %d bytes, %d available)"
             context offset wanted available)
    | _ -> None)

let truncated r context wanted =
  raise
    (Truncated
       { context; offset = r.pos; wanted; available = String.length r.src - r.pos })

let reader src = { src; pos = 0 }

let eof r = r.pos >= String.length r.src

let r8 r =
  if r.pos >= String.length r.src then truncated r "r8" 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r16 r =
  let a = r8 r in
  let b = r8 r in
  a lor (b lsl 8)

let r32 r =
  let a = r16 r in
  let b = r16 r in
  a lor (b lsl 16)

let rstr r =
  let n = r16 r in
  if r.pos + n > String.length r.src then truncated r "rstr" n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let rbytes r n =
  if n < 0 then truncated r "rbytes" n;
  if r.pos + n > String.length r.src then truncated r "rbytes" n;
  let b = Bytes.of_string (String.sub r.src r.pos n) in
  r.pos <- r.pos + n;
  b

(** {1 In-place big-endian word access (for text segments)} *)

let get32_be (b : bytes) off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let set32_be (b : bytes) off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 3) (Char.chr (v land 0xFF))
