lib/util/word.ml: Format Printf
