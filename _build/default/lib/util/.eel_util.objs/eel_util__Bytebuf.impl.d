lib/util/bytebuf.ml: Buffer Bytes Char Printexc Printf String
