lib/util/bytebuf.ml: Buffer Bytes Char String
