lib/util/dyn.ml: Array List
