(** qpt2 — the EEL-based profiler (paper Fig. 1 and Table 1).

    Follows the paper's branch-counting tool structure exactly: for every
    routine (and every hidden routine discovered along the way), place a
    counter snippet along each editable outgoing edge of every basic block
    with more than one successor, then produce the edited routine. Counter
    memory is reserved in the executable's added-data region, so the edited
    program counts its own edge executions as it runs; {!counts} reads the
    values back out of an emulator that ran it. *)

module E = Eel.Executable
module C = Eel.Cfg
module Snippet = Eel.Snippet

type counter = {
  c_addr : int;  (** counter word's address in the edited program *)
  c_routine : string;
  c_block : int;  (** source block id *)
  c_edge : int;  (** edge id within the routine's CFG *)
}

type t = {
  edited : Eel_sef.Sef.t;
  counters : counter list;
  exec : E.t;
  skipped_uneditable : int;  (** edges that could not carry code (§3.3) *)
}

(* paper Fig. 2: increment a counter word at a tool-chosen address *)
let incr_count mach counter_addr =
  Snippet.of_asm mach
    ~params:[ ("counter", counter_addr) ]
    {|
        sethi %hi($counter), %v0
        ld [%v0 + %lo($counter)], %v1
        add %v1, 1, %v1
        st %v1, [%v0 + %lo($counter)]
|}

(* paper Fig. 1: instrument one routine *)
let instrument_routine t (r : E.routine) counters skipped =
  let g = E.control_flow_graph t r in
  let ed = E.editor t r in
  List.iter
    (fun (b : C.block) ->
      if b.C.reachable && List.length b.C.succs > 1 then
        List.iter
          (fun (e : C.edge) ->
            if e.C.e_editable then (
              let addr = E.reserve_data t 4 in
              counters :=
                {
                  c_addr = addr;
                  c_routine = r.E.r_name;
                  c_block = b.C.bid;
                  c_edge = e.C.eid;
                }
                :: !counters;
              Eel.Edit.add_along ed e (incr_count t.E.mach addr))
            else incr skipped)
          b.C.succs)
    (C.blocks g);
  E.produce_edited_routine t r;
  E.delete_control_flow_graph r

(** [instrument mach exe] — the whole tool (paper Fig. 1's [main]). *)
let instrument ?(cache_instrs = true) ?(fold_delay = true) mach exe =
  let t = E.read_contents ~cache_instrs mach exe in
  t.E.fold_delay <- fold_delay;
  let counters = ref [] in
  let skipped = ref 0 in
  List.iter (fun r -> instrument_routine t r counters skipped) (E.routines t);
  (* "while (!exec->hidden_routines()->is_empty()) ..." *)
  let rec drain () =
    match E.take_hidden t with
    | Some r ->
        instrument_routine t r counters skipped;
        drain ()
    | None -> ()
  in
  drain ();
  let edited = E.to_edited_sef t () in
  {
    edited;
    counters = List.rev !counters;
    exec = t;
    skipped_uneditable = !skipped;
  }

(** Read counter values from the memory of an emulator that ran the edited
    program. *)
let counts (prof : t) (mem : Bytes.t) =
  List.map
    (fun c -> (c, Eel_util.Bytebuf.get32_be mem c.c_addr))
    prof.counters
