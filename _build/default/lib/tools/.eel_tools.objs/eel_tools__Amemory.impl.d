lib/tools/amemory.ml: Array Eel Eel_arch Eel_sef Eel_sparc Eel_util List Printf
