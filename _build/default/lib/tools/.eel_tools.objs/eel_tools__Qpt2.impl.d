lib/tools/qpt2.ml: Bytes Eel Eel_sef Eel_util List
