lib/tools/optprof.ml: Array Bytes Eel Eel_sef Eel_util Hashtbl List Option Printf Qpt2
