lib/tools/sfi.ml: Array Eel Eel_arch Eel_sef Eel_sparc Insn List Printf
