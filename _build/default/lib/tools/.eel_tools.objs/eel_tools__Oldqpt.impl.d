lib/tools/oldqpt.ml: Array Bytes Eel_sef Eel_sparc Eel_util Insn List Regs
