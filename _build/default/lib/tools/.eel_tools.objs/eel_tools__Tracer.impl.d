lib/tools/tracer.ml: Array Bytes Eel Eel_arch Eel_sef Eel_util List Printf
