(** SEF — the Simple Executable Format.

    SEF plays the role the paper assigns to Unix executable formats accessed
    through GNU bfd (§4): sections with virtual addresses, an entry point and
    a symbol table. Crucially for EEL, SEF symbol tables exhibit the same
    pathologies the paper's §3.1 analysis exists to repair: they may be
    incomplete (hidden routines), misleading (data tables in the text segment
    carrying function-looking symbols), polluted with temporary/debugging
    labels, or absent entirely (stripped executables).

    The on-disk encoding is a little-endian binary container; section
    contents are raw bytes (machine words inside text are big-endian, per
    SPARC convention). *)

open Eel_util

type sec_kind = Text | Data | Bss

type section = {
  sec_name : string;
  sec_kind : sec_kind;
  vaddr : int;
  size : int;  (** size in bytes; for [Bss] no contents are stored *)
  contents : bytes;  (** [Bytes.length contents = size] except for Bss *)
}

(** Symbol kinds, mirroring the zoo a real symbol table contains. [Label]
    and [Debug] entries are the "duplicate, temporary, and debugging labels"
    that EEL's stage-1 refinement discards. *)
type sym_kind = Func | Object | Label | Debug

type symbol = {
  sym_name : string;
  value : int;
  sym_size : int;  (** 0 when unknown *)
  kind : sym_kind;
  global : bool;
}

type t = { entry : int; sections : section list; symbols : symbol list }

let magic = "SEF1"

(** {1 Construction and inquiry} *)

let create ~entry ~sections ~symbols = { entry; sections; symbols }

let find_section t name =
  List.find_opt (fun s -> s.sec_name = name) t.sections

let text_sections t = List.filter (fun s -> s.sec_kind = Text) t.sections

(** [section_at t addr] finds the section whose address range contains
    [addr]. *)
let section_at t addr =
  List.find_opt (fun s -> addr >= s.vaddr && addr < s.vaddr + s.size) t.sections

(** [fetch32 t addr] reads the big-endian machine word at [addr], if [addr]
    lies within a non-bss section. *)
let fetch32 t addr =
  match section_at t addr with
  | Some s when s.sec_kind <> Bss && addr + 4 <= s.vaddr + s.size ->
      Some (Bytebuf.get32_be s.contents (addr - s.vaddr))
  | _ -> None

(** [patch32 t addr v] overwrites the word at [addr] in place. Returns
    [false] when the address is outside every stored section. *)
let patch32 t addr v =
  match section_at t addr with
  | Some s when s.sec_kind <> Bss && addr + 4 <= s.vaddr + s.size ->
      Bytebuf.set32_be s.contents (addr - s.vaddr) v;
      true
  | _ -> false

(** [strip t] removes the entire symbol table, producing the stripped
    executables of paper §3.1 stage 2. *)
let strip t = { t with symbols = [] }

(** Address of the end of the highest section. *)
let high_addr t =
  List.fold_left (fun a s -> max a (s.vaddr + s.size)) 0 t.sections

(** {1 Serialization} *)

let sec_kind_code = function Text -> 0 | Data -> 1 | Bss -> 2

let sec_kind_of_code = function
  | 0 -> Text
  | 1 -> Data
  | 2 -> Bss
  | n -> failwith (Printf.sprintf "SEF: bad section kind %d" n)

let sym_kind_code = function Func -> 0 | Object -> 1 | Label -> 2 | Debug -> 3

let sym_kind_of_code = function
  | 0 -> Func
  | 1 -> Object
  | 2 -> Label
  | 3 -> Debug
  | n -> failwith (Printf.sprintf "SEF: bad symbol kind %d" n)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Bytebuf.w32 buf t.entry;
  Bytebuf.w32 buf (List.length t.sections);
  List.iter
    (fun s ->
      Bytebuf.wstr buf s.sec_name;
      Bytebuf.w8 buf (sec_kind_code s.sec_kind);
      Bytebuf.w32 buf s.vaddr;
      Bytebuf.w32 buf s.size;
      if s.sec_kind <> Bss then Bytebuf.wbytes buf s.contents)
    t.sections;
  Bytebuf.w32 buf (List.length t.symbols);
  List.iter
    (fun s ->
      Bytebuf.wstr buf s.sym_name;
      Bytebuf.w32 buf s.value;
      Bytebuf.w32 buf s.sym_size;
      Bytebuf.w8 buf (sym_kind_code s.kind);
      Bytebuf.w8 buf (if s.global then 1 else 0))
    t.symbols;
  Buffer.contents buf

let of_string src =
  let r = Bytebuf.reader src in
  let m = Bytes.to_string (Bytebuf.rbytes r 4) in
  if m <> magic then failwith "SEF: bad magic";
  let entry = Bytebuf.r32 r in
  let nsec = Bytebuf.r32 r in
  let sections =
    List.init nsec (fun _ ->
        let sec_name = Bytebuf.rstr r in
        let sec_kind = sec_kind_of_code (Bytebuf.r8 r) in
        let vaddr = Bytebuf.r32 r in
        let size = Bytebuf.r32 r in
        let contents =
          if sec_kind = Bss then Bytes.empty else Bytebuf.rbytes r size
        in
        { sec_name; sec_kind; vaddr; size; contents })
  in
  let nsym = Bytebuf.r32 r in
  let symbols =
    List.init nsym (fun _ ->
        let sym_name = Bytebuf.rstr r in
        let value = Bytebuf.r32 r in
        let sym_size = Bytebuf.r32 r in
        let kind = sym_kind_of_code (Bytebuf.r8 r) in
        let global = Bytebuf.r8 r = 1 in
        { sym_name; value; sym_size; kind; global })
  in
  { entry; sections; symbols }

let write_file path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(** Total bytes of text and data contents — the "program size" reported in
    Table 1. *)
let image_size t =
  List.fold_left
    (fun acc s -> if s.sec_kind = Bss then acc else acc + s.size)
    0 t.sections

let pp fmt t =
  Format.fprintf fmt "entry=%a@\n" Word.pp t.entry;
  List.iter
    (fun s ->
      Format.fprintf fmt "section %-10s %s vaddr=%a size=%d@\n" s.sec_name
        (match s.sec_kind with Text -> "text" | Data -> "data" | Bss -> "bss")
        Word.pp s.vaddr s.size)
    t.sections;
  Format.fprintf fmt "%d symbols@\n" (List.length t.symbols)
