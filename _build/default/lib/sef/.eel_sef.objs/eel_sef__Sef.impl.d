lib/sef/sef.ml: Buffer Bytebuf Bytes Eel_robust Eel_util Format Fun List Printf String Word
