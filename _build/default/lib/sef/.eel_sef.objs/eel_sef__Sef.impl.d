lib/sef/sef.ml: Buffer Bytebuf Bytes Eel_util Format List Printf Word
