(* Robustness tests: the never-crash contract of the load -> CFG -> edit
   front end (paper §3.1: EEL must survive stripped binaries, misleading
   symbol tables, and data in the text segment — here extended to actively
   hostile containers).

   Every mutation class must produce either a successful load or a
   structured [Diag.error]; an escaped exception of any other kind fails
   the test. Strict mode must reject what non-strict mode merely warns
   about, and the emulator must [Fault] — never [Invalid_argument] or an
   aborting allocation — on images that lie about their geometry. *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Mutate = Eel_mutate.Mutate
module E = Eel.Executable
module C = Eel.Cfg
module Emu = Eel_emu.Emu
open Eel_sparc

let mach = Mach.mach

let base ?(seed = 42) ?(routines = 8) () =
  Eel_workload.Gen.assemble_program
    { Eel_workload.Gen.default with seed; routines }

(* The pipeline under test, mirroring bin/eel_fuzz.ml. *)
type outcome = Loaded of Diag.sink | Rejected of Diag.error

let pipeline ?(strict = false) bytes =
  let diag = Diag.create ~strict () in
  match Sef.load ~diag bytes with
  | Error e -> Rejected e
  | Ok exe -> (
      let budget = Diag.budget ~stage:"test" (8 * 1024 * 1024) in
      match E.open_exe ~diag ~budget mach exe with
      | Error e -> Rejected e
      | Ok t -> (
          match
            Diag.guard (fun () ->
                ignore (E.jump_stats t);
                ignore (E.to_edited_sef t ()))
          with
          | Ok () -> Loaded diag
          | Error e -> Rejected e))

(* [pipeline] already confines failures to [Rejected]; anything else
   propagates out of the test case and fails it. *)
let survives bytes =
  match pipeline bytes with Loaded _ -> `Ok | Rejected _ -> `Rejected

(* ------------------------------------------------------------------ *)
(* One test per mutation class                                         *)
(* ------------------------------------------------------------------ *)

let mutant kind seed =
  let r = Mutate.rng seed in
  Mutate.apply r kind (base ())

let expect_outcome kind seeds expected =
  List.iter
    (fun seed ->
      let got = survives (mutant kind seed) in
      match expected with
      | `Any -> ()
      | e ->
          if got <> e then
            Alcotest.failf "%s (seed %d): expected %s, got %s" (Mutate.name kind)
              seed
              (match e with `Ok -> "ok" | `Rejected -> "rejected" | `Any -> "any")
              (match got with `Ok -> "ok" | `Rejected -> "rejected"))
    seeds

let seeds = [ 1; 2; 3; 4; 5 ]

let test_truncate_header () = expect_outcome Mutate.Truncate_header seeds `Rejected

let test_truncate_tail () = expect_outcome Mutate.Truncate_tail seeds `Rejected

let test_bad_magic () = expect_outcome Mutate.Bad_magic seeds `Rejected

let test_bogus_section_kind () =
  expect_outcome Mutate.Bogus_section_kind seeds `Rejected

let test_giant_section_size () =
  expect_outcome Mutate.Giant_section_size seeds `Rejected

let test_empty_text () = expect_outcome Mutate.Empty_text seeds `Rejected

let test_huge_vaddr () = expect_outcome Mutate.Huge_vaddr seeds `Rejected

let test_bit_flip_text () =
  (* data-vs-code degradation: bit flips may corrupt instructions but the
     front end carries on (possibly rejecting, never crashing) *)
  expect_outcome Mutate.Bit_flip_text seeds `Any

let test_overlapping_sections () =
  expect_outcome Mutate.Overlapping_sections seeds `Any

let test_shuffled_sections () = expect_outcome Mutate.Shuffled_sections seeds `Ok

let test_bad_entry () = expect_outcome Mutate.Bad_entry seeds `Rejected

let test_stripped () = expect_outcome Mutate.Stripped seeds `Ok

let test_duplicate_symbols () = expect_outcome Mutate.Duplicate_symbols seeds `Ok

let test_debug_pollution () = expect_outcome Mutate.Debug_pollution seeds `Ok

let test_dangling_symbol () =
  (* loads, but the dangling address must surface as a warning *)
  List.iter
    (fun seed ->
      match pipeline (mutant Mutate.Dangling_symbol seed) with
      | Rejected e -> Alcotest.failf "rejected: %s" (Diag.error_message e)
      | Loaded diag ->
          Alcotest.(check bool)
            "dangling symbol warned" true
            (Diag.warnings diag > 0))
    seeds

let test_misaligned_symbol () =
  List.iter
    (fun seed ->
      match pipeline (mutant Mutate.Misaligned_symbol seed) with
      | Rejected e -> Alcotest.failf "rejected: %s" (Diag.error_message e)
      | Loaded diag ->
          Alcotest.(check bool)
            "misaligned symbol warned" true
            (Diag.warnings diag > 0))
    seeds

(* ------------------------------------------------------------------ *)
(* Structured diagnostics                                              *)
(* ------------------------------------------------------------------ *)

let test_strict_promotion () =
  (* a sink in strict mode records warnings as errors… *)
  let s = Diag.create ~strict:true () in
  Diag.emit s Diag.Warn ~source:"test" "suspicious but salvageable";
  Alcotest.(check int) "promoted to error" 1 (Diag.errors s);
  Alcotest.(check int) "no warning recorded" 0 (Diag.warnings s);
  (* …so strict load refuses an input non-strict load accepts *)
  let bytes = mutant Mutate.Dangling_symbol 1 in
  (match Sef.load bytes with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "non-strict load failed: %s" (Diag.error_message e));
  match Sef.load ~strict:true bytes with
  | Ok _ -> Alcotest.fail "strict load accepted a dangling symbol"
  | Error (Diag.Sef_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

let test_truncation_at_sef_boundary () =
  (* Bytebuf.Truncated from deep inside the reader must surface as a typed
     Sef_error carrying the offset, not as a raw exception *)
  let whole = Sef.to_string (base ()) in
  let cut = String.sub whole 0 (String.length whole / 2) in
  match Sef.load cut with
  | Ok _ -> Alcotest.fail "truncated input accepted"
  | Error (Diag.Sef_error { loc; _ }) ->
      Alcotest.(check bool) "offset recorded" true (loc.Diag.l_offset <> None)
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

let test_validation_rejects_lying_sections () =
  (* in-memory executables (never serialized) are validated by open_exe *)
  let lying =
    Sef.create ~entry:0x1000
      ~sections:
        [
          {
            Sef.sec_name = ".text";
            sec_kind = Sef.Text;
            vaddr = 0x1000;
            size = 64;
            contents = Bytes.make 8 '\000' (* 8 <> 64 *);
          };
        ]
      ~symbols:[]
  in
  (match E.open_exe mach lying with
  | Ok _ -> Alcotest.fail "lying section accepted"
  | Error (Diag.Sef_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e));
  let negative =
    Sef.create ~entry:0x1000
      ~sections:
        [
          {
            Sef.sec_name = ".text";
            sec_kind = Sef.Text;
            vaddr = -64;
            size = 64;
            contents = Bytes.make 64 '\000';
          };
        ]
      ~symbols:[]
  in
  match E.open_exe mach negative with
  | Ok _ -> Alcotest.fail "negative vaddr accepted"
  | Error (Diag.Sef_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

let test_cfg_degrades_missing_delay_slot () =
  (* a control transfer as the very last word of a region has no delay
     slot: the block must degrade to data with a warning, not abort *)
  let cache = Eel.Instr_cache.create ~enabled:true mach in
  let lo = 0x1000 in
  let call_word = mach.Eel_arch.Machine.mk_call ~disp:0 in
  let fetch a = if a = lo then Some call_word else None in
  let diag = Diag.create () in
  let g =
    C.build ~diag ~mach ~cache ~fetch ~lo ~hi:(lo + 4) ~entries:[ lo ]
      ~tables:[] ()
  in
  let b =
    match C.block_at g lo with
    | Some b -> b
    | None -> Alcotest.fail "block not carved"
  in
  Alcotest.(check bool) "degraded to data" true b.C.is_data;
  Alcotest.(check bool) "no terminator left" true (b.C.term = C.T_none);
  Alcotest.(check bool) "warning emitted" true (Diag.warnings diag > 0)

let test_budget_exhaustion_is_typed () =
  let tiny = Diag.budget ~stage:"tiny" 3 in
  match
    Diag.guard (fun () ->
        E.read_contents ~budget:tiny mach (base ()) |> ignore)
  with
  | Ok () -> Alcotest.fail "budget of 3 units survived a whole workload"
  | Error (Diag.Budget_error { stage; limit }) ->
      Alcotest.(check string) "stage" "tiny" stage;
      Alcotest.(check int) "limit" 3 limit
  | Error e -> Alcotest.failf "unexpected error: %s" (Diag.error_message e)

(* ------------------------------------------------------------------ *)
(* Emulator hardening                                                  *)
(* ------------------------------------------------------------------ *)

let expect_fault name f =
  try
    ignore (f ());
    Alcotest.failf "%s: no fault raised" name
  with
  | Emu.Fault _ -> ()
  | Invalid_argument m -> Alcotest.failf "%s: raw Invalid_argument %s" name m

let test_emu_rejects_lying_contents () =
  expect_fault "lying contents" (fun () ->
      Emu.load
        (Sef.create ~entry:0x1000
           ~sections:
             [
               {
                 Sef.sec_name = ".text";
                 sec_kind = Sef.Text;
                 vaddr = 0x1000;
                 size = 4096;
                 contents = Bytes.make 16 '\000';
               };
             ]
           ~symbols:[]))

let test_emu_rejects_huge_image () =
  (* a section at the top of the address space must fault, not allocate
     gigabytes *)
  expect_fault "huge image" (fun () ->
      Emu.load
        (Sef.create ~entry:0x1000
           ~sections:
             [
               {
                 Sef.sec_name = ".text";
                 sec_kind = Sef.Text;
                 vaddr = 0xFFFF_FF00;
                 size = 256;
                 contents = Bytes.make 256 '\000';
               };
             ]
           ~symbols:[]))

(* ------------------------------------------------------------------ *)
(* Determinism and the smoke corpus                                    *)
(* ------------------------------------------------------------------ *)

let test_mutation_determinism () =
  let t = base () in
  List.iter
    (fun kind ->
      let a = Mutate.apply (Mutate.rng 7) kind t in
      let b = Mutate.apply (Mutate.rng 7) kind t in
      Alcotest.(check bool)
        (Mutate.name kind ^ " deterministic")
        true (String.equal a b))
    Mutate.all

let test_smoke_corpus () =
  (* the satellite contract: 200 seeded mutants, every class, zero escaped
     exceptions. [pipeline] converts structured failures to [Rejected]; any
     other exception propagates and fails the test. *)
  let corpus = Mutate.corpus ~seed:42 ~count:200 (base ~routines:12 ()) in
  Alcotest.(check int) "corpus size" 200 (List.length corpus);
  let ok = ref 0 and rejected = ref 0 in
  List.iter
    (fun (_, _, bytes) ->
      match survives bytes with
      | `Ok -> incr ok
      | `Rejected -> incr rejected)
    corpus;
  Alcotest.(check int) "every mutant classified" 200 (!ok + !rejected);
  (* the corpus must exercise both sides of the contract *)
  Alcotest.(check bool) "some mutants load" true (!ok > 0);
  Alcotest.(check bool) "some mutants are rejected" true (!rejected > 0)

let () =
  Alcotest.run "robust"
    [
      ( "mutants",
        [
          Alcotest.test_case "truncate header" `Quick test_truncate_header;
          Alcotest.test_case "truncate tail" `Quick test_truncate_tail;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bogus section kind" `Quick test_bogus_section_kind;
          Alcotest.test_case "giant section size" `Quick test_giant_section_size;
          Alcotest.test_case "empty text" `Quick test_empty_text;
          Alcotest.test_case "huge vaddr" `Quick test_huge_vaddr;
          Alcotest.test_case "bit-flipped text" `Quick test_bit_flip_text;
          Alcotest.test_case "overlapping sections" `Quick test_overlapping_sections;
          Alcotest.test_case "shuffled sections" `Quick test_shuffled_sections;
          Alcotest.test_case "bad entry" `Quick test_bad_entry;
          Alcotest.test_case "stripped" `Quick test_stripped;
          Alcotest.test_case "duplicate symbols" `Quick test_duplicate_symbols;
          Alcotest.test_case "debug pollution" `Quick test_debug_pollution;
          Alcotest.test_case "dangling symbol" `Quick test_dangling_symbol;
          Alcotest.test_case "misaligned symbol" `Quick test_misaligned_symbol;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "strict promotion" `Quick test_strict_promotion;
          Alcotest.test_case "truncation at SEF boundary" `Quick
            test_truncation_at_sef_boundary;
          Alcotest.test_case "section validation" `Quick
            test_validation_rejects_lying_sections;
          Alcotest.test_case "CFG delay-slot degradation" `Quick
            test_cfg_degrades_missing_delay_slot;
          Alcotest.test_case "budget exhaustion" `Quick
            test_budget_exhaustion_is_typed;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "lying contents fault" `Quick
            test_emu_rejects_lying_contents;
          Alcotest.test_case "huge image fault" `Quick test_emu_rejects_huge_image;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "mutation determinism" `Quick
            test_mutation_determinism;
          Alcotest.test_case "200-mutant smoke corpus" `Quick test_smoke_corpus;
        ] );
    ]
