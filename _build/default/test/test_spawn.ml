(* Tests for spawn (paper §4): parsing the SPARC description, decode
   agreement with the handwritten layer, derived EEL instructions matching
   the handwritten lifter (category, register sets, control behaviour),
   RTL-emulator equivalence on whole programs, and the derived machine
   driving the full EEL editing pipeline. *)

module Emu = Eel_emu.Emu
module E = Eel.Executable
module Machine = Eel_arch.Machine
module Instr = Eel_arch.Instr
module Regset = Eel_arch.Regset
open Eel_sparc

let description_path = "../descriptions/sparc.spawn"

let el =
  lazy
    (try Eel_spawn.Smach.load_description description_path
     with Sys_error _ ->
       (* when run from another cwd *)
       Eel_spawn.Smach.load_description "descriptions/sparc.spawn")

let smach = lazy (Eel_spawn.Smach.mach_of (Lazy.force el))

let hmach = Mach.mach

let assemble src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

(* ------------------------------------------------------------------ *)
(* Parsing and elaboration                                             *)
(* ------------------------------------------------------------------ *)

let test_parses () =
  let el = Lazy.force el in
  Alcotest.(check bool) "has patterns" true (List.length el.Eel_spawn.Elab.pats > 50);
  Alcotest.(check int) "34 registers" 34 el.Eel_spawn.Elab.num_regs

let test_description_errors () =
  let fails src =
    match
      Eel_spawn.Elab.elaborate (Eel_spawn.Parser.parse src)
    with
    | exception Eel_spawn.Parser.Parse_error _ -> ()
    | exception Eel_spawn.Elab.Elab_error _ -> ()
    | _ -> Alcotest.failf "expected description error for %S" src
  in
  fails "register integer{32} R[34]\npat foo is op=0"; (* unknown field *)
  fails "fields op 30:31\nregister integer{32} R[4]\npat foo is op=0";
  (* pattern without semantics *)
  fails "fields op 30:31\nregister integer{32} R[4]\nsem foo is { R[0] := junk(";
  fails "fields op 33:40\nregister integer{32} R[4]" (* bad field range *)

(* ------------------------------------------------------------------ *)
(* Decode agreement                                                    *)
(* ------------------------------------------------------------------ *)

let words_of_interest =
  [
    Insn.encode Insn.nop;
    Insn.encode (Insn.Bicc { cond = Insn.CNE; annul = true; disp22 = -5 });
    Insn.encode (Insn.Bicc { cond = Insn.CA; annul = false; disp22 = 3 });
    Insn.encode (Insn.Call { disp30 = 99 });
    Insn.encode (Insn.Alu { op = Insn.Subcc; rs1 = 17; op2 = Insn.O_reg 18; rd = 0 });
    Insn.encode (Insn.Alu { op = Insn.Sll; rs1 = 9; op2 = Insn.O_imm 4; rd = 10 });
    Insn.encode (Insn.Jmpl { rs1 = 15; op2 = Insn.O_imm 8; rd = 0 });
    Insn.encode (Insn.Jmpl { rs1 = 3; op2 = Insn.O_imm 0; rd = 15 });
    Insn.encode (Insn.Mem { op = Insn.Ld; rs1 = 14; op2 = Insn.O_imm 8; rd = 8 });
    Insn.encode (Insn.Mem { op = Insn.Std; rs1 = 14; op2 = Insn.O_imm 8; rd = 8 });
    Insn.encode (Insn.Ticc { cond = Insn.CA; rs1 = 0; op2 = Insn.O_imm 1 });
    Insn.encode (Insn.Rdy { rd = 5 });
    Insn.encode (Insn.Wry { rs1 = 5; op2 = Insn.O_imm 0 });
    0;
    0xFFFFFFFF;
    0x1D800001 (* fbfcc: invalid *);
  ]

let agree_on word =
  let sm = Lazy.force smach in
  let hi = hmach.Machine.lift word in
  let si = sm.Machine.lift word in
  let show (i : Instr.t) =
    Format.asprintf "%s reads=%s writes=%s delayed=%b width=%d ctl=%s"
      (Instr.category_name i.Instr.cat)
      (String.concat "," (List.map string_of_int (Regset.elements i.Instr.reads)))
      (String.concat "," (List.map string_of_int (Regset.elements i.Instr.writes)))
      i.Instr.delayed i.Instr.width
      (match i.Instr.ctl with
      | Instr.C_none -> "none"
      | Instr.C_branch { always; never; annul; disp } ->
          Printf.sprintf "branch(a=%b,n=%b,an=%b,d=%d)" always never annul disp
      | Instr.C_call { disp } -> Printf.sprintf "call(%d)" disp
      | Instr.C_jump_ind { rs1; op2; link } ->
          Printf.sprintf "ind(%d,%s,%d)" rs1
            (match op2 with
            | Instr.O_imm k -> string_of_int k
            | Instr.O_reg r -> "r" ^ string_of_int r)
            link
      | Instr.C_syscall { num } ->
          Printf.sprintf "sys(%s)" (match num with Some n -> string_of_int n | None -> "?"))
  in
  Alcotest.(check string) (Printf.sprintf "word 0x%08x" word) (show hi) (show si)

let test_lift_agreement_samples () = List.iter agree_on words_of_interest

let prop_lift_agreement =
  QCheck.Test.make ~name:"spawn and handwritten lifters agree" ~count:3000
    QCheck.(int_bound 0x3FFFFFFF)
    (fun seed ->
      let word = seed * 7 land 0xFFFFFFFF in
      let sm = Lazy.force smach in
      let hi = hmach.Machine.lift word in
      let si = sm.Machine.lift word in
      hi.Instr.cat = si.Instr.cat
      && Regset.equal
           (Machine.real_reads hmach hi)
           (Machine.real_reads hmach si)
      && Regset.equal
           (Machine.real_writes hmach hi)
           (Machine.real_writes hmach si)
      && hi.Instr.delayed = si.Instr.delayed
      && hi.Instr.width = si.Instr.width
      && hi.Instr.ctl = si.Instr.ctl)

(* program text agreement: every word of a generated workload *)
let test_lift_agreement_workload () =
  let exe =
    match
      Asm.assemble
        (Eel_workload.Gen.program
           { Eel_workload.Gen.default with routines = 10; seed = 13 })
    with
    | Ok e -> e
    | Error m -> Alcotest.failf "asm: %s" m
  in
  let text = List.hd (Eel_sef.Sef.text_sections exe) in
  for k = 0 to (text.Eel_sef.Sef.size / 4) - 1 do
    agree_on (Eel_util.Bytebuf.get32_be text.Eel_sef.Sef.contents (4 * k))
  done

(* ------------------------------------------------------------------ *)
(* Synthesis hooks                                                     *)
(* ------------------------------------------------------------------ *)

let test_synthesis_agreement () =
  let sm = Lazy.force smach in
  Alcotest.(check int) "nop" hmach.Machine.nop sm.Machine.nop;
  Alcotest.(check int) "ba" (hmach.Machine.mk_ba ~disp:64) (sm.Machine.mk_ba ~disp:64);
  Alcotest.(check int) "call" (hmach.Machine.mk_call ~disp:(-128))
    (sm.Machine.mk_call ~disp:(-128));
  Alcotest.(check (list int)) "set_const"
    (hmach.Machine.mk_set_const ~reg:16 0xCAFEBABE)
    (sm.Machine.mk_set_const ~reg:16 0xCAFEBABE);
  Alcotest.(check int) "jmp"
    (hmach.Machine.mk_jmp_reg ~rs1:7 ~op2:(Instr.O_imm 0) ~link:0)
    (sm.Machine.mk_jmp_reg ~rs1:7 ~op2:(Instr.O_imm 0) ~link:0);
  Alcotest.(check int) "spill" (hmach.Machine.mk_spill ~reg:16 ~sp_off:(-8))
    (sm.Machine.mk_spill ~reg:16 ~sp_off:(-8));
  (* retarget a branch *)
  let b = Insn.encode (Insn.Bicc { cond = Insn.CNE; annul = false; disp22 = 4 }) in
  Alcotest.(check (option int)) "retarget"
    (hmach.Machine.retarget (hmach.Machine.lift b) ~disp:800)
    (sm.Machine.retarget (sm.Machine.lift b) ~disp:800);
  Alcotest.(check int) "set_annul" (hmach.Machine.set_annul b true)
    (sm.Machine.set_annul b true)

(* ------------------------------------------------------------------ *)
(* RTL interpreter equivalence                                         *)
(* ------------------------------------------------------------------ *)

let equivalent_run src =
  let exe = assemble src in
  let r1, _ = Emu.run_exe exe in
  let r2, _ = Eel_spawn.Interp.run (Lazy.force el) exe in
  Alcotest.(check string) "same output" r1.Emu.out r2.Emu.out;
  Alcotest.(check int) "same exit" r1.Emu.exit_code r2.Emu.exit_code;
  Alcotest.(check int) "same instruction count" r1.Emu.insns r2.Emu.insns

let test_interp_small () =
  equivalent_run
    {|
main:   mov 6, %l0
        mov 7, %l1
        smul %l0, %l1, %o0
        ta 2
        umul %l0, %l1, %l2
        rd %y, %o0
        ta 2
        mov 1, %l5
        cmp %l5, 1
        be,a Lok
        add %l5, 10, %l5
        add %l5, 100, %l5
Lok:    mov %l5, %o0
        ta 2
        mov 0, %o0
        ta 1
|}

let test_interp_workloads () =
  List.iter
    (fun (style, seed) ->
      let src =
        Eel_workload.Gen.program
          { Eel_workload.Gen.default with style; seed; routines = 12 }
      in
      equivalent_run src)
    [ (Eel_workload.Gen.Gcc, 21); (Eel_workload.Gen.Sunpro, 22) ]

(* ------------------------------------------------------------------ *)
(* The derived machine drives the whole EEL pipeline                   *)
(* ------------------------------------------------------------------ *)

let test_edit_with_spawn_mach () =
  let sm = Lazy.force smach in
  let src =
    Eel_workload.Gen.program
      { Eel_workload.Gen.default with routines = 10; seed = 31 }
  in
  let exe = assemble src in
  let orig, _ = Emu.run_exe exe in
  let t = E.read_contents sm exe in
  let edited = E.to_edited_sef t () in
  let res, _ = Emu.run_exe edited in
  Alcotest.(check string) "spawn-mach edited output" orig.Emu.out res.Emu.out

let test_qpt2_with_spawn_mach () =
  let sm = Lazy.force smach in
  let exe =
    assemble
      {|
main:   mov 5, %l0
Lloop:  subcc %l0, 1, %l0
        bne Lloop
        nop
        mov 0, %o0
        ta 1
|}
  in
  let prof = Eel_tools.Qpt2.instrument sm exe in
  let _, st = Emu.run_exe prof.Eel_tools.Qpt2.edited in
  let counts = List.map snd (Eel_tools.Qpt2.counts prof st.Emu.mem) in
  Alcotest.(check bool) "edge counts via spawn mach" true
    (List.sort compare counts = [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* Code generation (E7)                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let test_codegen () =
  let el = Lazy.force el in
  let code = Eel_spawn.Codegen.generate el in
  let gen_loc = Eel_spawn.Codegen.loc_of_string code in
  Alcotest.(check bool) "generated code is substantial" true (gen_loc > 400);
  (* description is concise, like the paper's 145 lines *)
  let src =
    try read_file description_path
    with Sys_error _ -> read_file "descriptions/sparc.spawn"
  in
  let desc_loc = Eel_spawn.Codegen.loc_of_string src in
  Alcotest.(check bool) "description under 200 lines" true (desc_loc < 200);
  Alcotest.(check bool) "generated >> description" true (gen_loc > 3 * desc_loc)

let () =
  Alcotest.run "spawn"
    [
      ( "description",
        [
          Alcotest.test_case "parses" `Quick test_parses;
          Alcotest.test_case "errors" `Quick test_description_errors;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "samples" `Quick test_lift_agreement_samples;
          Alcotest.test_case "workload text" `Quick test_lift_agreement_workload;
          Alcotest.test_case "synthesis" `Quick test_synthesis_agreement;
          QCheck_alcotest.to_alcotest prop_lift_agreement;
        ] );
      ( "interp",
        [
          Alcotest.test_case "small" `Quick test_interp_small;
          Alcotest.test_case "workloads" `Quick test_interp_workloads;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "editing" `Quick test_edit_with_spawn_mach;
          Alcotest.test_case "qpt2" `Quick test_qpt2_with_spawn_mach;
        ] );
      ("codegen", [ Alcotest.test_case "conciseness" `Quick test_codegen ]);
    ]
