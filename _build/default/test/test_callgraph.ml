(* Tests for interprocedural call graphs (paper footnote 1: "EEL also
   supports interprocedural analysis and call graphs"). *)

module E = Eel.Executable
module CG = Eel.Callgraph
open Eel_sparc

let mach = Mach.mach

let assemble src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

let test_direct_calls () =
  let exe =
    assemble
      {|
main:   call a
        nop
        call b
        nop
        mov 0, %o0
        ta 1
a:      call b
        nop
        retl
        nop
b:      retl
        nop
|}
  in
  let cg = CG.build (E.read_contents mach exe) in
  Alcotest.(check (list string)) "main calls a,b" [ "a"; "b" ] (CG.callees cg "main");
  Alcotest.(check (list string)) "a calls b" [ "b" ] (CG.callees cg "a");
  Alcotest.(check (list string)) "b's callers" [ "a"; "main" ] (CG.callers cg "b");
  (* bottom-up order: callees before callers *)
  let order = CG.bottom_up cg in
  let pos n =
    let rec go i = function
      | [] -> -1
      | x :: r -> if x = n then i else go (i + 1) r
    in
    go 0 order
  in
  Alcotest.(check bool) "b before a" true (pos "b" < pos "a");
  Alcotest.(check bool) "a before main" true (pos "a" < pos "main")

let test_indirect_resolved () =
  (* a function pointer loaded from a constant location: the slice binds the
     indirect call to its callee *)
  let exe =
    assemble
      {|
main:   set fptr, %l0
        ld [%l0], %l1
        jmpl %l1, %o7
        nop
        mov 0, %o0
        ta 1
target: retl
        nop
        .data
        .align 4
fptr:   .word target
|}
  in
  let cg = CG.build (E.read_contents mach exe) in
  Alcotest.(check (list string)) "indirect call resolved" [ "target" ]
    (CG.callees cg "main")

let test_tail_transfer () =
  let exe =
    assemble
      {|
main:   ba Lother
        nop
        mov 0, %o0
        ta 1
f:      mov 1, %o0
Lother: mov 0, %o0
        ta 1
|}
  in
  let cg = CG.build (E.read_contents mach exe) in
  Alcotest.(check bool) "tail transfer recorded" true
    (List.exists
       (fun (e : CG.cedge) ->
         e.CG.caller = "main" && e.CG.callee = "f" && e.CG.kind = CG.Tail_transfer)
       cg.CG.cedges)

let test_workload_dag () =
  (* the generator builds a call DAG: fn_i only calls fn_j with j < i, so
     bottom_up must list lower-numbered routines first *)
  let exe =
    assemble
      (Eel_workload.Gen.program
         { Eel_workload.Gen.default with routines = 15; seed = 33 })
  in
  let t = E.read_contents mach exe in
  let cg = CG.build t in
  List.iter
    (fun (e : CG.cedge) ->
      if
        e.CG.kind = CG.Direct_call
        && String.length e.CG.caller > 2
        && String.sub e.CG.caller 0 2 = "fn"
        && String.length e.CG.callee > 2
        && String.sub e.CG.callee 0 2 = "fn"
      then
        let n s = int_of_string (String.sub s 2 (String.length s - 2)) in
        Alcotest.(check bool)
          (Printf.sprintf "%s -> %s is a DAG edge" e.CG.caller e.CG.callee)
          true
          (n e.CG.callee < n e.CG.caller))
    cg.CG.cedges;
  Alcotest.(check bool) "has many edges" true (List.length cg.CG.cedges > 10);
  (* hidden routines are nodes too (main reaches them via pointers) *)
  Alcotest.(check bool) "hidden routine is a node" true
    (List.exists (fun n -> n = "hidden_0x10034" || String.length n > 6
                           && String.sub n 0 6 = "hidden") cg.CG.nodes)

let () =
  Alcotest.run "callgraph"
    [
      ( "callgraph",
        [
          Alcotest.test_case "direct calls" `Quick test_direct_calls;
          Alcotest.test_case "indirect resolved" `Quick test_indirect_resolved;
          Alcotest.test_case "tail transfer" `Quick test_tail_transfer;
          Alcotest.test_case "workload DAG" `Quick test_workload_dag;
        ] );
    ]
