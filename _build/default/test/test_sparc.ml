(* Tests for the handwritten SPARC layer: decode/encode round trips, the
   lifter's categories and register sets, the disassembler, and the
   assembler (program and snippet modes). *)

open Eel_sparc
module I = Eel_arch.Instr
module Regset = Eel_arch.Regset

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* decode/encode                                                       *)
(* ------------------------------------------------------------------ *)

let roundtrip insn =
  let w = Insn.encode insn in
  let insn' = Insn.decode w in
  Alcotest.(check string)
    (Printf.sprintf "roundtrip %s" (Insn.to_string insn))
    (Insn.to_string insn) (Insn.to_string insn')

let test_encode_roundtrip () =
  roundtrip (Insn.Sethi { rd = 3; imm22 = 0x12345 });
  roundtrip (Insn.Bicc { cond = Insn.CNE; annul = true; disp22 = -12 });
  roundtrip (Insn.Bicc { cond = Insn.CA; annul = false; disp22 = 100 });
  roundtrip (Insn.Call { disp30 = 1024 });
  roundtrip (Insn.Call { disp30 = -1024 });
  roundtrip (Insn.Alu { op = Insn.Add; rs1 = 1; op2 = Insn.O_imm (-5); rd = 2 });
  roundtrip (Insn.Alu { op = Insn.Subcc; rs1 = 17; op2 = Insn.O_reg 18; rd = 0 });
  roundtrip (Insn.Alu { op = Insn.Sll; rs1 = 9; op2 = Insn.O_imm 31; rd = 9 });
  roundtrip (Insn.Jmpl { rs1 = 15; op2 = Insn.O_imm 8; rd = 0 });
  roundtrip (Insn.Mem { op = Insn.Ld; rs1 = 14; op2 = Insn.O_imm 64; rd = 8 });
  roundtrip (Insn.Mem { op = Insn.St; rs1 = 14; op2 = Insn.O_reg 3; rd = 8 });
  roundtrip (Insn.Ticc { cond = Insn.CA; rs1 = 0; op2 = Insn.O_imm 1 });
  roundtrip (Insn.Rdy { rd = 5 });
  roundtrip (Insn.Wry { rs1 = 5; op2 = Insn.O_imm 0 })

let test_known_encodings () =
  (* Independently computed SPARC V8 encodings. *)
  check_int "nop = sethi 0,%g0" 0x01000000 (Insn.encode Insn.nop);
  (* call with displacement +8 bytes: 0x40000002 *)
  check_int "call .+8" 0x40000002 (Insn.encode (Insn.Call { disp30 = 2 }));
  (* ba 0x10 bytes ahead: op2=010 cond=1000 => 0x10800004 *)
  check_int "ba .+16" 0x10800004
    (Insn.encode (Insn.Bicc { cond = Insn.CA; annul = false; disp22 = 4 }));
  (* add %g1, %g2, %g3 = 0x86004002? rd=3 op3=0 rs1=1 rs2=2:
     10 00011 000000 00001 0 00000000 00010 *)
  check_int "add %g1,%g2,%g3" 0x86004002
    (Insn.encode (Insn.Alu { op = Insn.Add; rs1 = 1; op2 = Insn.O_reg 2; rd = 3 }));
  (* ld [%sp+4], %o0: 11 01000 000000 01110 1 0000000000100 *)
  check_int "ld [%sp+4],%o0" 0xD003A004
    (Insn.encode (Insn.Mem { op = Insn.Ld; rs1 = 14; op2 = Insn.O_imm 4; rd = 8 }))

let test_invalid_decodes () =
  let is_invalid w =
    match Insn.decode w with Insn.Invalid _ | Insn.Unimp _ -> true | _ -> false
  in
  Alcotest.(check bool) "zero word is not code" true (is_invalid 0);
  (* FP op2 patterns decode invalid *)
  Alcotest.(check bool) "fbfcc invalid" true (is_invalid 0x1D800001);
  (* reserved asi bits make register-form invalid *)
  let w =
    Insn.encode (Insn.Alu { op = Insn.Add; rs1 = 1; op2 = Insn.O_reg 2; rd = 3 })
  in
  Alcotest.(check bool) "asi bits invalid" true (is_invalid (w lor (0xFF lsl 5)));
  (* odd rd on ldd invalid *)
  Alcotest.(check bool) "ldd odd rd" true
    (is_invalid ((0b11 lsl 30) lor (3 lsl 25) lor (0x03 lsl 19)));
  Alcotest.(check bool) "text word is valid" true
    (Insn.is_valid_word (Insn.encode (Insn.Call { disp30 = 0 })))

(* Property: encode/decode round-trips over random valid instructions. *)
let arb_insn =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let operand =
    oneof [ map (fun r -> Insn.O_reg r) reg; map (fun i -> Insn.O_imm (i - 4096)) (int_bound 8191) ]
  in
  let alu_ops =
    [| Insn.Add; Insn.And; Insn.Or; Insn.Xor; Insn.Sub; Insn.Andn; Insn.Orn;
       Insn.Xnor; Insn.Umul; Insn.Smul; Insn.Udiv; Insn.Sdiv; Insn.Addcc;
       Insn.Andcc; Insn.Orcc; Insn.Xorcc; Insn.Subcc; Insn.Save; Insn.Restore |]
  in
  let mem_ops =
    [| Insn.Ld; Insn.Ldub; Insn.Lduh; Insn.Ldd; Insn.St; Insn.Stb; Insn.Sth;
       Insn.Std; Insn.Ldsb; Insn.Ldsh |]
  in
  let conds =
    [| Insn.CN; Insn.CE; Insn.CLE; Insn.CL; Insn.CLEU; Insn.CCS; Insn.CNEG;
       Insn.CVS; Insn.CA; Insn.CNE; Insn.CG; Insn.CGE; Insn.CGU; Insn.CCC;
       Insn.CPOS; Insn.CVC |]
  in
  QCheck.make
    (oneof
       [
         map2 (fun rd imm22 -> Insn.Sethi { rd; imm22 }) reg (int_bound 0x3FFFFF);
         map3
           (fun c a d -> Insn.Bicc { cond = c; annul = a; disp22 = d - (1 lsl 21) })
           (map (fun i -> conds.(i)) (int_bound 15))
           bool
           (int_bound ((1 lsl 22) - 1));
         map (fun d -> Insn.Call { disp30 = d - (1 lsl 29) }) (int_bound ((1 lsl 30) - 1));
         (let* op = map (fun i -> alu_ops.(i)) (int_bound (Array.length alu_ops - 1)) in
          let* rs1 = reg and* op2 = operand and* rd = reg in
          return (Insn.Alu { op; rs1; op2; rd }));
         (let* op = map (fun i -> mem_ops.(i)) (int_bound (Array.length mem_ops - 1)) in
          let* rs1 = reg and* op2 = operand and* rd = reg in
          let rd = if op = Insn.Ldd || op = Insn.Std then rd land 30 else rd in
          return (Insn.Mem { op; rs1; op2; rd }));
         (let* rs1 = reg and* op2 = operand and* rd = reg in
          return (Insn.Jmpl { rs1; op2; rd }));
       ])

let prop_decode_encode =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:2000 arb_insn (fun i ->
      Insn.decode (Insn.encode i) = i)

let prop_decode_total =
  QCheck.Test.make ~name:"decode total on random words" ~count:5000
    QCheck.(int_bound 0xFFFFFFF)
    (fun w ->
      let w = w * 17 land 0xFFFFFFFF in
      match Insn.decode w with
      | Insn.Invalid _ -> true
      | i -> Insn.encode i = w)

(* ------------------------------------------------------------------ *)
(* Lifter                                                              *)
(* ------------------------------------------------------------------ *)

let lift i = Lift.lift (Insn.encode i)

let test_lift_categories () =
  let cat i = (lift i).I.cat in
  Alcotest.(check string) "branch" "branch"
    (I.category_name (cat (Insn.Bicc { cond = Insn.CNE; annul = false; disp22 = 4 })));
  Alcotest.(check string) "call" "call" (I.category_name (cat (Insn.Call { disp30 = 4 })));
  Alcotest.(check string) "ret" "return"
    (I.category_name (cat (Insn.Jmpl { rs1 = Regs.i7; op2 = Insn.O_imm 8; rd = 0 })));
  Alcotest.(check string) "retl" "return"
    (I.category_name (cat (Insn.Jmpl { rs1 = Regs.o7; op2 = Insn.O_imm 8; rd = 0 })));
  Alcotest.(check string) "indirect call" "call_indirect"
    (I.category_name (cat (Insn.Jmpl { rs1 = 3; op2 = Insn.O_imm 0; rd = Regs.o7 })));
  Alcotest.(check string) "indirect jump" "jump_indirect"
    (I.category_name (cat (Insn.Jmpl { rs1 = 3; op2 = Insn.O_reg 4; rd = 0 })));
  Alcotest.(check string) "load" "load"
    (I.category_name (cat (Insn.Mem { op = Insn.Ld; rs1 = 14; op2 = Insn.O_imm 0; rd = 8 })));
  Alcotest.(check string) "store" "store"
    (I.category_name (cat (Insn.Mem { op = Insn.St; rs1 = 14; op2 = Insn.O_imm 0; rd = 8 })));
  Alcotest.(check string) "syscall" "syscall"
    (I.category_name (cat (Insn.Ticc { cond = Insn.CA; rs1 = 0; op2 = Insn.O_imm 1 })));
  Alcotest.(check string) "compute" "compute"
    (I.category_name (cat (Insn.Alu { op = Insn.Add; rs1 = 1; op2 = Insn.O_imm 1; rd = 1 })));
  Alcotest.(check string) "invalid" "invalid" (I.category_name (Lift.lift 0).I.cat)

let test_lift_regsets () =
  let i = lift (Insn.Alu { op = Insn.Subcc; rs1 = 17; op2 = Insn.O_reg 18; rd = 19 }) in
  Alcotest.(check bool) "reads rs1" true (Regset.mem 17 i.I.reads);
  Alcotest.(check bool) "reads rs2" true (Regset.mem 18 i.I.reads);
  Alcotest.(check bool) "writes rd" true (Regset.mem 19 i.I.writes);
  Alcotest.(check bool) "writes icc" true (Regset.mem Regs.icc i.I.writes);
  let b = lift (Insn.Bicc { cond = Insn.CNE; annul = false; disp22 = 4 }) in
  Alcotest.(check bool) "branch reads icc" true (Regset.mem Regs.icc b.I.reads);
  let ba = lift (Insn.Bicc { cond = Insn.CA; annul = true; disp22 = 4 }) in
  Alcotest.(check bool) "ba reads nothing" true (Regset.is_empty ba.I.reads);
  let ldd = lift (Insn.Mem { op = Insn.Ldd; rs1 = 14; op2 = Insn.O_imm 0; rd = 8 }) in
  Alcotest.(check bool) "ldd writes pair" true
    (Regset.mem 8 ldd.I.writes && Regset.mem 9 ldd.I.writes);
  let call = lift (Insn.Call { disp30 = 4 }) in
  Alcotest.(check bool) "call writes %o7" true (Regset.mem Regs.o7 call.I.writes)

let test_lift_targets () =
  let b = lift (Insn.Bicc { cond = Insn.CNE; annul = false; disp22 = 3 }) in
  Alcotest.(check (option int)) "branch target" (Some 0x100C)
    (I.abs_target ~pc:0x1000 b);
  let c = lift (Insn.Call { disp30 = -4 }) in
  Alcotest.(check (option int)) "call target" (Some 0xFF0) (I.abs_target ~pc:0x1000 c);
  Alcotest.(check bool) "branch is delayed" true b.I.delayed;
  Alcotest.(check bool) "conditional falls through" true (I.falls_through b);
  let ba = lift (Insn.Bicc { cond = Insn.CA; annul = false; disp22 = 3 }) in
  Alcotest.(check bool) "ba does not fall through" false (I.falls_through ba)

let test_eval_compute () =
  let read _ = None in
  let sethi = lift (Insn.Sethi { rd = 3; imm22 = 0x123 }) in
  Alcotest.(check (option (pair int int))) "sethi const" (Some (3, 0x123 lsl 10))
    (Lift.eval_compute sethi ~read);
  let or_ = lift (Insn.Alu { op = Insn.Or; rs1 = 3; op2 = Insn.O_imm 0x45; rd = 3 }) in
  let read r = if r = 3 then Some 0x1000 else None in
  Alcotest.(check (option (pair int int))) "or folds" (Some (3, 0x1045))
    (Lift.eval_compute or_ ~read);
  let add_g0 = lift (Insn.Alu { op = Insn.Add; rs1 = 0; op2 = Insn.O_imm 7; rd = 5 }) in
  Alcotest.(check (option (pair int int))) "g0 is zero" (Some (5, 7))
    (Lift.eval_compute add_g0 ~read:(fun _ -> None));
  let unknown = lift (Insn.Alu { op = Insn.Add; rs1 = 9; op2 = Insn.O_imm 7; rd = 5 }) in
  Alcotest.(check (option (pair int int))) "unknown input" None
    (Lift.eval_compute unknown ~read:(fun _ -> None))

(* ------------------------------------------------------------------ *)
(* Registers                                                           *)
(* ------------------------------------------------------------------ *)

let test_reg_names () =
  check_str "g0" "%g0" (Regs.name 0);
  check_str "o7" "%o7" (Regs.name 15);
  check_str "l3" "%l3" (Regs.name 19);
  check_str "i7" "%i7" (Regs.name 31);
  Alcotest.(check (option int)) "parse %sp" (Some 14) (Regs.of_name "%sp");
  Alcotest.(check (option int)) "parse %fp" (Some 30) (Regs.of_name "%fp");
  Alcotest.(check (option int)) "parse %r17" (Some 17) (Regs.of_name "%r17");
  Alcotest.(check (option int)) "parse %v2" (Some (Regs.v0 + 2)) (Regs.of_name "%v2");
  Alcotest.(check (option int)) "reject junk" None (Regs.of_name "%x3");
  Alcotest.(check (option int)) "reject %g9" None (Regs.of_name "%g9");
  (* name/of_name roundtrip over all real registers *)
  for r = 0 to 31 do
    Alcotest.(check (option int)) (Printf.sprintf "roundtrip r%d" r)
      (Some r) (Regs.of_name (Regs.name r))
  done

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)
(* ------------------------------------------------------------------ *)

let assemble_ok src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

let fetch exe addr =
  match Eel_sef.Sef.fetch32 exe addr with
  | Some w -> w
  | None -> Alcotest.failf "no word at 0x%x" addr

let test_asm_basic () =
  let exe =
    assemble_ok
      {|
        .text
        .global main
main:   add %g1, 5, %g2
        nop
        retl
        nop
|}
  in
  let base = 0x10000 in
  Alcotest.(check int) "entry" base exe.Eel_sef.Sef.entry;
  check_str "first insn" "add %g1, 5, %g2"
    (Insn.to_string (Insn.decode (fetch exe base)));
  check_str "second insn" "nop" (Insn.to_string (Insn.decode (fetch exe (base + 4))));
  check_str "retl" "retl" (Insn.to_string (Insn.decode (fetch exe (base + 8))))

let test_asm_branches_and_labels () =
  let exe =
    assemble_ok
      {|
main:   cmp %o0, 3
        bne,a L1
        add %o1, 1, %o1
L1:     ba main
        nop
|}
  in
  let base = 0x10000 in
  (match Insn.decode (fetch exe (base + 4)) with
  | Insn.Bicc { cond = Insn.CNE; annul = true; disp22 = 2 } -> ()
  | i -> Alcotest.failf "bad branch: %s" (Insn.to_string i));
  match Insn.decode (fetch exe (base + 12)) with
  | Insn.Bicc { cond = Insn.CA; annul = false; disp22 = -3 } -> ()
  | i -> Alcotest.failf "bad ba: %s" (Insn.to_string i)

let test_asm_data_and_hi_lo () =
  let exe =
    assemble_ok
      {|
        .text
main:   sethi %hi(counter), %l0
        ld [%l0 + %lo(counter)], %l1
        retl
        nop
        .data
        .align 4
counter: .word 42
|}
  in
  let data =
    List.find (fun (s : Eel_sef.Sef.section) -> s.sec_name = ".data")
      exe.Eel_sef.Sef.sections
  in
  Alcotest.(check int) "counter initial value" 42 (fetch exe data.vaddr);
  (* the sethi/ld pair reconstructs the counter address *)
  (match Insn.decode (fetch exe 0x10000) with
  | Insn.Sethi { imm22; _ } ->
      Alcotest.(check int) "hi bits" (data.vaddr lsr 10) imm22
  | i -> Alcotest.failf "expected sethi, got %s" (Insn.to_string i));
  match Insn.decode (fetch exe 0x10004) with
  | Insn.Mem { op = Insn.Ld; op2 = Insn.O_imm lo; _ } ->
      Alcotest.(check int) "lo bits" (data.vaddr land 0x3FF) lo
  | i -> Alcotest.failf "expected ld, got %s" (Insn.to_string i)

let test_asm_symbols () =
  let exe =
    assemble_ok
      {|
        .text
        .global main
main:   retl
        nop
helper: retl
        nop
        .nosym hidden
hidden: retl
        nop
Llocal: nop
        .labelsym weird
weird:  nop
        .data
tab:    .word 1, 2, 3
|}
  in
  let syms = exe.Eel_sef.Sef.symbols in
  let find n = List.find_opt (fun (s : Eel_sef.Sef.symbol) -> s.sym_name = n) syms in
  Alcotest.(check bool) "main exists & global" true
    (match find "main" with Some s -> s.global && s.kind = Eel_sef.Sef.Func | None -> false);
  Alcotest.(check bool) "helper local func" true
    (match find "helper" with Some s -> (not s.global) && s.kind = Eel_sef.Sef.Func | None -> false);
  Alcotest.(check bool) "hidden suppressed" true (find "hidden" = None);
  Alcotest.(check bool) "Llocal suppressed" true (find "Llocal" = None);
  Alcotest.(check bool) "weird is label kind" true
    (match find "weird" with Some s -> s.kind = Eel_sef.Sef.Label | None -> false);
  Alcotest.(check bool) "tab is object" true
    (match find "tab" with Some s -> s.kind = Eel_sef.Sef.Object | None -> false)

let test_asm_jump_table () =
  (* a case-dispatch shape: jump table of code addresses in .data *)
  let exe =
    assemble_ok
      {|
        .text
main:   set table, %l0
        sll %o0, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
c0:     retl
        nop
c1:     retl
        nop
        .data
        .align 4
table:  .word c0, c1
|}
  in
  let data =
    List.find (fun (s : Eel_sef.Sef.section) -> s.sec_name = ".data")
      exe.Eel_sef.Sef.sections
  in
  let c0 =
    (List.find (fun (s : Eel_sef.Sef.symbol) -> s.sym_name = "c0") exe.symbols).value
  in
  Alcotest.(check int) "table[0] = c0" c0 (fetch exe data.vaddr)

let test_asm_errors () =
  let fails src =
    match Asm.assemble src with
    | Ok _ -> Alcotest.failf "expected failure for %S" src
    | Error _ -> ()
  in
  fails "main: bne undefined_label\n nop";
  fails "main: add %g1, 99999, %g2"; (* immediate too large *)
  fails "main: frobnicate %g1";
  fails "main: add %g1, 5, %v0"; (* virtual register outside snippet *)
  fails "main: ba main2"; (* undefined *)
  fails "dup: nop\ndup: nop" (* duplicate label *)

let test_snippet_basic () =
  let params = [ ("counter", 0x20A44) ] in
  let t =
    match
      Asm.parse_snippet ~params
        {|
        sethi %hi($counter), %v0
        ld [%v0 + %lo($counter)], %v1
        add %v1, 1, %v1
        st %v1, [%v0 + %lo($counter)]
|}
    with
    | Ok t -> t
    | Error m -> Alcotest.failf "snippet failed: %s" m
  in
  Alcotest.(check int) "4 words" 4 (Array.length t.Eel_arch.Template.words);
  Alcotest.(check int) "2 vregs" 2 (Eel_arch.Template.num_vregs t);
  (* substitute %l0, %l1 and check the result decodes to the right code *)
  let words = Eel_arch.Template.subst_vregs t [| 16; 17 |] in
  check_str "sethi to %l0" "sethi %hi(0x20800), %l0"
    (Insn.to_string (Insn.decode words.(0)));
  check_str "ld" "ld [%l0 + 580], %l1" (Insn.to_string (Insn.decode words.(1)));
  check_str "add" "add %l1, 1, %l1" (Insn.to_string (Insn.decode words.(2)));
  check_str "st" "st %l1, [%l0 + 580]" (Insn.to_string (Insn.decode words.(3)))

let test_snippet_internal_branch () =
  let t =
    match
      Asm.parse_snippet
        {|
        cmp %v0, 0
        be Ldone
        nop
        add %v0, 1, %v0
Ldone:  nop
|}
    with
    | Ok t -> t
    | Error m -> Alcotest.failf "snippet failed: %s" m
  in
  Alcotest.(check int) "no relocs for internal branches" 0
    (List.length t.Eel_arch.Template.relocs);
  let words = Eel_arch.Template.subst_vregs t [| 16 |] in
  match Insn.decode words.(1) with
  | Insn.Bicc { disp22 = 3; _ } -> ()
  | i -> Alcotest.failf "bad internal branch %s" (Insn.to_string i)

let test_snippet_reloc () =
  let t =
    match
      Asm.parse_snippet ~params:[ ("handler", 0x40000) ]
        {|
        call $handler
        nop
|}
    with
    | Ok t -> t
    | Error m -> Alcotest.failf "snippet failed: %s" m
  in
  match t.Eel_arch.Template.relocs with
  | [ { index = 0; target = 0x40000 } ] -> ()
  | _ -> Alcotest.fail "expected one call reloc"

(* Disassembler smoke: decode of every valid random word pretty-prints. *)
let prop_disas_total =
  QCheck.Test.make ~name:"disassembler total" ~count:2000
    QCheck.(int_bound 0xFFFFFFF)
    (fun w ->
      let s = Mach.mach.Eel_arch.Machine.disas ~pc:0x1000 (w * 31) in
      String.length s > 0)

let test_mach_retarget () =
  let b = Lift.lift (Insn.encode (Insn.Bicc { cond = Insn.CNE; annul = false; disp22 = 4 })) in
  (match Mach.mach.Eel_arch.Machine.retarget b ~disp:400 with
  | Some w -> (
      match Insn.decode w with
      | Insn.Bicc { disp22 = 100; _ } -> ()
      | _ -> Alcotest.fail "bad retarget")
  | None -> Alcotest.fail "retarget failed");
  (match Mach.mach.Eel_arch.Machine.retarget b ~disp:(16 * 1024 * 1024) with
  | Some _ -> Alcotest.fail "should not fit"
  | None -> ());
  let c = Lift.lift (Insn.encode (Insn.Call { disp30 = 0 })) in
  match Mach.mach.Eel_arch.Machine.retarget c ~disp:(-0x10000) with
  | Some w -> (
      match Insn.decode w with
      | Insn.Call { disp30 } -> Alcotest.(check int) "call disp" (-0x4000) disp30
      | _ -> Alcotest.fail "bad call retarget")
  | None -> Alcotest.fail "call retarget failed"

let test_mach_set_const () =
  let m = Mach.mach in
  let words = m.Eel_arch.Machine.mk_set_const ~reg:16 0xDEADBEEF in
  Alcotest.(check int) "two words" 2 (List.length words);
  (* verify by constant folding through the lifter *)
  let values = Hashtbl.create 4 in
  List.iter
    (fun w ->
      match Lift.eval_compute (Lift.lift w) ~read:(Hashtbl.find_opt values) with
      | Some (r, v) -> Hashtbl.replace values r v
      | None -> Alcotest.fail "set_const not foldable")
    words;
  Alcotest.(check (option int)) "materialized" (Some 0xDEADBEEF) (Hashtbl.find_opt values 16)

let test_mach_hi_lo_patch () =
  let m = Mach.mach in
  let sethi = Insn.encode (Insn.Sethi { rd = 16; imm22 = 0 }) in
  let patched = m.Eel_arch.Machine.set_const_hi sethi ~value:0x20A44 in
  (match Insn.decode patched with
  | Insn.Sethi { imm22; _ } -> Alcotest.(check int) "hi22" (0x20A44 lsr 10) imm22
  | _ -> Alcotest.fail "not sethi");
  let ld = Insn.encode (Insn.Mem { op = Insn.Ld; rs1 = 16; op2 = Insn.O_imm 0; rd = 17 }) in
  let patched = m.Eel_arch.Machine.set_const_lo ld ~value:0x20A44 in
  match Insn.decode patched with
  | Insn.Mem { op2 = Insn.O_imm lo; _ } ->
      Alcotest.(check int) "lo10" (0x20A44 land 0x3FF) lo
  | _ -> Alcotest.fail "not ld"

let () =
  Alcotest.run "sparc"
    [
      ( "insn",
        [
          Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
          Alcotest.test_case "known encodings" `Quick test_known_encodings;
          Alcotest.test_case "invalid decodes" `Quick test_invalid_decodes;
        ] );
      ( "lift",
        [
          Alcotest.test_case "categories" `Quick test_lift_categories;
          Alcotest.test_case "register sets" `Quick test_lift_regsets;
          Alcotest.test_case "targets" `Quick test_lift_targets;
          Alcotest.test_case "eval_compute" `Quick test_eval_compute;
        ] );
      ("regs", [ Alcotest.test_case "names" `Quick test_reg_names ]);
      ( "asm",
        [
          Alcotest.test_case "basic" `Quick test_asm_basic;
          Alcotest.test_case "branches and labels" `Quick test_asm_branches_and_labels;
          Alcotest.test_case "data and hi/lo" `Quick test_asm_data_and_hi_lo;
          Alcotest.test_case "symbols" `Quick test_asm_symbols;
          Alcotest.test_case "jump table" `Quick test_asm_jump_table;
          Alcotest.test_case "errors" `Quick test_asm_errors;
        ] );
      ( "snippet",
        [
          Alcotest.test_case "basic" `Quick test_snippet_basic;
          Alcotest.test_case "internal branch" `Quick test_snippet_internal_branch;
          Alcotest.test_case "reloc" `Quick test_snippet_reloc;
        ] );
      ( "mach",
        [
          Alcotest.test_case "retarget" `Quick test_mach_retarget;
          Alcotest.test_case "set_const" `Quick test_mach_set_const;
          Alcotest.test_case "hi/lo patch" `Quick test_mach_hi_lo_patch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_decode_encode; prop_decode_total; prop_disas_total ] );
    ]
