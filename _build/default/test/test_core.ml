(* Tests for the EEL core: symbol-table refinement, CFG construction with
   delay-slot normalization (paper Fig. 3), data-flow analyses, slicing
   (Fig. 4 / §3.3), snippets (§3.5), and — most importantly — end-to-end
   editing: edited executables must run in the emulator with unchanged
   observable behaviour and correct instrumentation counters. *)

module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module C = Eel.Cfg
module E = Eel.Executable
module Edit = Eel.Edit
module Snippet = Eel.Snippet
module Regset = Eel_arch.Regset
open Eel_sparc

let mach = Mach.mach

let assemble src =
  match Asm.assemble src with
  | Ok exe -> exe
  | Error m -> Alcotest.failf "assembly failed: %s" m

let open_exe src = E.read_contents mach (assemble src)

let cfg_of_main exe =
  let t = open_exe exe in
  let r =
    match E.routine_named t "main" with
    | Some r -> r
    | None -> Alcotest.failf "no main routine"
  in
  (t, r, E.control_flow_graph t r)

let run_src src =
  let r, _ = Emu.run_exe (assemble src) in
  r

(* run both the original and the edited version; check identical output *)
let edit_and_run ?(edit = fun _t _r -> ()) src =
  let orig = run_src src in
  let t = open_exe src in
  List.iter (fun r -> edit t r) (E.routines t);
  let rec drain () =
    match E.take_hidden t with
    | Some r ->
        edit t r;
        drain ()
    | None -> ()
  in
  drain ();
  let edited = E.to_edited_sef t () in
  let res, st = Emu.run_exe edited in
  Alcotest.(check string) "output unchanged" orig.Emu.out res.Emu.out;
  Alcotest.(check int) "exit code unchanged" orig.Emu.exit_code res.Emu.exit_code;
  (orig, res, st, t)

let exit0 = "        mov 0, %o0\n        ta 1\n"

(* ------------------------------------------------------------------ *)
(* CFG construction                                                    *)
(* ------------------------------------------------------------------ *)

let branchy_program =
  {|
        .text
        .global main
main:   mov 5, %l0
Lloop:  subcc %l0, 1, %l0
        bne Lloop
        nop
        mov 0, %o0
        ta 1
|}

let test_cfg_shapes () =
  let _, _, g = cfg_of_main branchy_program in
  let s = C.stats_of g in
  Alcotest.(check bool) "has delay blocks" true (s.C.s_delay >= 2);
  Alcotest.(check int) "one entry + one exit" 2 s.C.s_entry_exit;
  Alcotest.(check bool) "complete" true g.C.complete;
  (* the loop branch's block has two successors, both through delay blocks
     (non-annulled conditional duplicates the slot, Fig. 3) *)
  let branch_block =
    List.find
      (fun (b : C.block) -> match b.C.term with C.T_branch _ -> true | _ -> false)
      (C.blocks g)
  in
  Alcotest.(check int) "branch has 2 successors" 2 (List.length branch_block.C.succs);
  List.iter
    (fun (e : C.edge) ->
      Alcotest.(check bool) "both go through delay blocks" true
        (e.C.edst.C.kind = C.Delay))
    branch_block.C.succs

let test_cfg_annulled () =
  (* Fig. 3: annulled branch's delay instruction appears only on the taken
     edge *)
  let src =
    {|
main:   cmp %o0, 0
        bne,a L1
        add %l1, %l2, %l1
        mov 1, %o0
L1:     mov 0, %o0
        ta 1
|}
  in
  let _, _, g = cfg_of_main src in
  let b =
    List.find
      (fun (b : C.block) -> match b.C.term with C.T_branch _ -> true | _ -> false)
      (C.blocks g)
  in
  let taken =
    List.find (fun (e : C.edge) -> e.C.ekind = C.Ek_taken) b.C.succs
  in
  let fall =
    List.find (fun (e : C.edge) -> e.C.ekind = C.Ek_fall) b.C.succs
  in
  Alcotest.(check bool) "taken goes through delay block" true
    (taken.C.edst.C.kind = C.Delay);
  Alcotest.(check bool) "fall edge skips the delay instr" true
    (fall.C.edst.C.kind = C.Normal)

let test_cfg_call_surrogate () =
  let src =
    {|
main:   call f
        nop
|} ^ exit0 ^ {|
f:      retl
        nop
|}
  in
  let _, _, g = cfg_of_main src in
  let s = C.stats_of g in
  Alcotest.(check int) "one surrogate" 1 s.C.s_surrogate;
  (* the call's delay block is uneditable (paper §3.3) *)
  let call_block =
    List.find
      (fun (b : C.block) -> match b.C.term with C.T_call _ -> true | _ -> false)
      (C.blocks g)
  in
  let dslot = (List.hd call_block.C.succs).C.edst in
  Alcotest.(check bool) "call delay uneditable" false dslot.C.editable;
  Alcotest.(check bool) "uneditable blocks exist" true (s.C.s_uneditable_blocks > 0)

let test_cfg_data_in_text () =
  (* a word of data after the routine: decodes invalid, becomes a data
     block, not a hidden routine *)
  let src =
    {|
main:   mov 0, %o0
        ta 1
        .word 0
        .word 12
|}
  in
  let t, r, g = cfg_of_main src in
  ignore t;
  ignore r;
  let has_data = List.exists (fun (b : C.block) -> b.C.is_data) (C.blocks g) in
  Alcotest.(check bool) "data block found" true has_data;
  Alcotest.(check (option int)) "no hidden candidate" None g.C.hidden_candidate

let test_hidden_routine () =
  (* a routine with no symbol, reachable only through a function pointer:
     unreachable tail code is reported as a hidden routine (stage 4) *)
  let src =
    {|
        .text
        .global main
main:   set fptr, %l0
        ld [%l0], %l1
        jmpl %l1, %o7
        nop
        mov 0, %o0
        ta 1
        retl
        nop
        .nosym secret
secret: retl
        mov 7, %o0
        .data
        .align 4
fptr:   .word secret
|}
  in
  let t = open_exe src in
  let main = Option.get (E.routine_named t "main") in
  let _ = E.control_flow_graph t main in
  Alcotest.(check int) "one hidden routine discovered" 1
    (List.length (E.hidden_routines t));
  match E.take_hidden t with
  | Some h ->
      Alcotest.(check bool) "hidden flag" true h.E.r_hidden;
      let g = E.control_flow_graph t h in
      Alcotest.(check bool) "hidden routine has code" true
        (List.exists (fun (b : C.block) -> b.C.kind = C.Normal && not b.C.is_data)
           (C.blocks g))
  | None -> Alcotest.fail "expected hidden routine"

let test_stage1_label_filtering () =
  (* debugging labels and internal labels must not become routines *)
  let src =
    {|
        .text
        .global main
main:   mov 3, %l0
Ltop:   subcc %l0, 1, %l0
        .labelsym weird
weird:  bne Ltop
        nop
|}
    ^ exit0
    ^ {|
        .debugsym main
helper: retl
        nop
|}
  in
  let t = open_exe src in
  let names = List.map (fun r -> r.E.r_name) (E.routines t) in
  Alcotest.(check bool) "main present" true (List.mem "main" names);
  Alcotest.(check bool) "helper present" true (List.mem "helper" names);
  Alcotest.(check bool) "debug/label syms dropped" true
    (not (List.mem "weird" names))

let test_stage3_multiple_entries () =
  (* an interprocedural jump creates a second entry point (Fortran ENTRY
     idiom) *)
  let src =
    {|
        .text
        .global main
main:   ba Lmid
        nop
|} ^ exit0 ^ {|
f:      mov 1, %o0
Lmid:   mov 0, %o0
        ta 1
|}
  in
  let t = open_exe src in
  let f = Option.get (E.routine_named t "f") in
  Alcotest.(check bool) "f got a second entry" true
    (List.length f.E.r_entries >= 2)

let test_stripped () =
  let src =
    {|
        .entry main
main:   call f
        nop
|} ^ exit0 ^ {|
f:      retl
        nop
|}
  in
  let exe = Sef.strip (assemble src) in
  let t = E.read_contents mach exe in
  (* entry point + call target found *)
  Alcotest.(check bool) "at least 2 routines" true (List.length (E.routines t) >= 2);
  let stats = E.jump_stats t in
  Alcotest.(check int) "no unanalyzable jumps" 0 stats.E.js_unanalyzable

(* ------------------------------------------------------------------ *)
(* Dataflow                                                            *)
(* ------------------------------------------------------------------ *)

let test_liveness () =
  let _, _, g = cfg_of_main branchy_program in
  let lv = Eel.Dataflow.liveness g in
  (* %l0 is live inside the loop *)
  let loop_block =
    List.find
      (fun (b : C.block) -> match b.C.term with C.T_branch _ -> true | _ -> false)
      (C.blocks g)
  in
  Alcotest.(check bool) "l0 live at loop head" true
    (Regset.mem 16 lv.Eel.Dataflow.l_in.(loop_block.C.bid));
  (* volatile scratch %g1 is dead there *)
  Alcotest.(check bool) "g1 dead" false
    (Regset.mem 1 lv.Eel.Dataflow.l_in.(loop_block.C.bid))

let test_dominators_and_loops () =
  let _, _, g = cfg_of_main branchy_program in
  let loops = Eel.Dataflow.natural_loops g in
  Alcotest.(check int) "one natural loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check bool) "loop body nonempty" true (List.length l.Eel.Dataflow.body >= 2)

(* ------------------------------------------------------------------ *)
(* Slicing (§3.3)                                                      *)
(* ------------------------------------------------------------------ *)

let case_program =
  {|
        .text
        .global main
main:   set sel, %l3
        ld [%l3], %o0
        set table, %l0
        sll %o0, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
Lc0:    mov 100, %o0
        ba Lend
        nop
Lc1:    mov 200, %o0
        ba Lend
        nop
Lc2:    mov 300, %o0
Lend:   ta 2
|}
  ^ exit0
  ^ {|
        .data
        .align 4
sel:    .word 2
table:  .word Lc0, Lc1, Lc2
|}

let test_slice_dispatch_table () =
  let _, _, g = cfg_of_main case_program in
  Alcotest.(check bool) "cfg complete" true g.C.complete;
  let jumps = C.indirect_jumps g in
  Alcotest.(check int) "one indirect jump" 1 (List.length jumps);
  let b, _ = List.hd jumps in
  match b.C.term with
  | C.T_jump { table = Some tbl; _ } ->
      Alcotest.(check int) "3 targets" 3 (Array.length tbl.C.t_targets);
      Alcotest.(check bool) "table in data section" true (tbl.C.t_addr > 0)
  | _ -> Alcotest.fail "jump not resolved"

let test_slice_literal_jump () =
  let src =
    {|
main:   set Ltarget, %l0
        jmp %l0
        nop
        mov 9, %o0
Ltarget: mov 0, %o0
        ta 1
|}
  in
  let _, _, g = cfg_of_main src in
  Alcotest.(check bool) "literal jump analyzed" true g.C.complete

let sunpro_tail_call =
  {|
        .text
        .global main
main:   set fptr, %l0
        ld [%l0], %l1
        jmp %l1
        nop
|}
  ^ exit0
  ^ {|
target: mov 0, %o0
        ta 1
        nop
        .data
        .align 4
fptr:   .word target
|}

let test_slice_unanalyzable () =
  (* a jump through a value loaded from writable data is unanalyzable:
     slicing must refuse (the table could change at run time)... except our
     table reader will read it. The honest unanalyzable case is a
     register-parameter jump. *)
  let src =
    {|
        .text
        .global main
main:   set cont, %o0
        call f
        nop
|} ^ exit0 ^ {|
f:      jmp %o0
        nop
cont:   mov 0, %o0
        ta 1
|}
  in
  let t = open_exe src in
  let stats = E.jump_stats t in
  Alcotest.(check int) "one indirect jump" 1 stats.E.js_indirect_jumps;
  Alcotest.(check int) "unanalyzable" 1 stats.E.js_unanalyzable

(* ------------------------------------------------------------------ *)
(* Snippets                                                            *)
(* ------------------------------------------------------------------ *)

let test_snippet_scavenging () =
  let s = Snippet.of_asm mach "add %v0, 1, %v0\n" in
  (* plenty of dead registers *)
  let inst = Snippet.instantiate mach s ~live:Regset.empty in
  Alcotest.(check int) "no spills" 0 inst.Snippet.in_spilled;
  Alcotest.(check int) "1 word" 1 (Array.length inst.Snippet.in_words);
  (* all allocatable registers live: must spill *)
  let inst2 = Snippet.instantiate mach s ~live:mach.Eel_arch.Machine.allocatable in
  Alcotest.(check int) "spilled one" 1 inst2.Snippet.in_spilled;
  Alcotest.(check int) "wrapped with spill/unspill" 3
    (Array.length inst2.Snippet.in_words)

let test_snippet_forbid () =
  let s =
    Snippet.of_asm mach ~forbid:(Regset.of_list [ 1; 2; 3; 4; 5 ]) "add %v0, 1, %v0\n"
  in
  let inst = Snippet.instantiate mach s ~live:Regset.empty in
  Alcotest.(check bool) "forbidden registers avoided" true
    (not (List.mem inst.Snippet.in_assigned.(0) [ 1; 2; 3; 4; 5 ]))

(* ------------------------------------------------------------------ *)
(* End-to-end editing                                                  *)
(* ------------------------------------------------------------------ *)

let test_identity_reemit () =
  (* produce with no edits: the edited executable must behave identically *)
  ignore (edit_and_run branchy_program);
  ignore (edit_and_run case_program);
  ignore (edit_and_run sunpro_tail_call)

let test_identity_delay_slots () =
  (* all the delay-slot flavours survive re-emission *)
  let src =
    {|
main:   mov 1, %l0
        cmp %l0, 1
        be,a L1
        add %l0, 10, %l0
        add %l0, 100, %l0
L1:     cmp %l0, 99
        be,a L2
        add %l0, 300, %l0
        add %l0, 1, %l0
L2:     ba,a L3
        add %l0, 2000, %l0
L3:     mov %l0, %o0
        ta 2
|}
    ^ exit0
  in
  ignore (edit_and_run src)

let counter_snippet t addr =
  Snippet.of_asm mach
    ~params:[ ("counter", addr) ]
    {|
        sethi %hi($counter), %v0
        ld [%v0 + %lo($counter)], %v1
        add %v1, 1, %v1
        st %v1, [%v0 + %lo($counter)]
|}

let test_insert_before () =
  (* count executions of the loop body: must equal 5 *)
  let t0 = ref 0 in
  let counter_addr = ref 0 in
  let _, _, st, _ =
    edit_and_run branchy_program ~edit:(fun t r ->
        if r.E.r_name = "main" then (
          let g = E.control_flow_graph t r in
          let ed = E.editor t r in
          counter_addr := E.reserve_data t 4;
          let loop_block =
            List.find
              (fun (b : C.block) ->
                match b.C.term with C.T_branch _ -> true | _ -> false)
              (C.blocks g)
          in
          Edit.add_before ed loop_block 0 (counter_snippet t !counter_addr);
          incr t0);
        E.produce_edited_routine t r)
  in
  Alcotest.(check int) "edited once" 1 !t0;
  Alcotest.(check int) "counter = 5" 5
    (Eel_util.Bytebuf.get32_be st.Emu.mem !counter_addr)

let test_edge_counting () =
  (* Fig. 1: a counter along each outgoing edge of a two-way branch *)
  let src =
    {|
        .text
        .global main
main:   mov 7, %l0
Lloop:  andcc %l0, 1, %g0
        be Leven
        nop
        ba Lnext            ! odd
        nop
Leven:  nop
Lnext:  subcc %l0, 1, %l0
        bne Lloop
        nop
|}
    ^ exit0
  in
  let counters = ref [] in
  let _, _, st, _ =
    edit_and_run src ~edit:(fun t r ->
        (if r.E.r_name = "main" then
           let g = E.control_flow_graph t r in
           let ed = E.editor t r in
           List.iter
             (fun (b : C.block) ->
               if List.length b.C.succs > 1 then
                 List.iter
                   (fun (e : C.edge) ->
                     if e.C.e_editable then (
                       let addr = E.reserve_data t 4 in
                       counters := addr :: !counters;
                       Edit.add_along ed e (counter_snippet t addr)))
                   b.C.succs)
             (C.blocks g));
        E.produce_edited_routine t r)
  in
  let values =
    List.rev_map (fun a -> Eel_util.Bytebuf.get32_be st.Emu.mem a) !counters
  in
  (* 7,6,...,1: 4 odd, 3 even; loop back-edge 6 times, exit once *)
  let total = List.fold_left ( + ) 0 values in
  Alcotest.(check int) "4 counters" 4 (List.length values);
  Alcotest.(check int) "edge executions total" 14 total;
  Alcotest.(check bool) "even/odd split" true
    (List.exists (( = ) 3) values && List.exists (( = ) 4) values);
  Alcotest.(check bool) "loop back edge 6" true (List.exists (( = ) 6) values)

let test_delete () =
  (* delete a dead instruction: output unchanged *)
  let src =
    {|
main:   mov 42, %l7          ! dead store, deleted by the tool
        mov 7, %o0
        ta 2
|}
    ^ exit0
  in
  let deleted = ref false in
  let _, res, _, _ =
    edit_and_run src ~edit:(fun t r ->
        (if r.E.r_name = "main" then
           let g = E.control_flow_graph t r in
           let ed = E.editor t r in
           List.iter
             (fun (b : C.block) ->
               Array.iteri
                 (fun idx (_, (i : Eel_arch.Instr.t)) ->
                   if (not !deleted) && Eel_arch.Regset.mem 23 i.Eel_arch.Instr.writes
                   then (
                     Edit.delete ed b idx;
                     deleted := true))
                 b.C.instrs)
             (C.blocks g));
        E.produce_edited_routine t r)
  in
  Alcotest.(check bool) "deleted something" true !deleted;
  Alcotest.(check string) "still prints 7" "7\n" res.Emu.out

let test_jump_table_rewrite () =
  (* the case program, edited: dispatch must land on edited code *)
  let counter = ref 0 in
  let _, _, st, _ =
    edit_and_run case_program ~edit:(fun t r ->
        (if r.E.r_name = "main" then (
           let g = E.control_flow_graph t r in
           let ed = E.editor t r in
           counter := E.reserve_data t 4;
           (* count case-block entries: insert before every table target *)
           List.iter
             (fun (b : C.block) ->
               match b.C.baddr with
               | Some _ when b.C.kind = C.Normal && b.C.reachable ->
                   let is_target =
                     List.exists
                       (fun (e : C.edge) ->
                         match e.C.ekind with C.Ek_computed _ -> true | _ -> false)
                       b.C.preds
                   in
                   if is_target then
                     Edit.add_before ed b 0 (counter_snippet t !counter)
               | _ -> ())
             (C.blocks g)));
        E.produce_edited_routine t r)
  in
  Alcotest.(check int) "case block entered once (instrumented)" 1
    (Eel_util.Bytebuf.get32_be st.Emu.mem !counter)

let test_runtime_translation () =
  (* the sunpro-style register-parameter jump forces the run-time
     translation table; the edited program still works *)
  let src =
    {|
        .text
        .global main
main:   set cont, %o0
        call f
        nop
|} ^ exit0 ^ {|
f:      jmp %o0
        nop
cont:   mov 5, %o0
        ta 2
        mov 0, %o0
        ta 1
|}
  in
  let _, res, _, _ =
    edit_and_run src ~edit:(fun t r -> E.produce_edited_routine t r)
  in
  Alcotest.(check string) "prints 5 through translated jump" "5\n" res.Emu.out

let test_indirect_call_translation () =
  (* function pointers hold original addresses; indirect calls are
     translated at run time *)
  let src =
    {|
        .text
        .global main
main:   mov 21, %o0
        set fptr, %l0
        ld [%l0], %l1
        jmpl %l1, %o7
        nop
        ta 2
|} ^ exit0 ^ {|
double: retl
        add %o0, %o0, %o0
        .data
        .align 4
fptr:   .word double
|}
  in
  let _, res, _, _ =
    edit_and_run src ~edit:(fun t r -> E.produce_edited_routine t r)
  in
  Alcotest.(check string) "prints 42" "42\n" res.Emu.out

let test_callback () =
  (* snippet call-backs receive final words and address (paper §3.5) *)
  let seen_addr = ref 0 in
  let snippet_with_cb =
    Snippet.of_asm mach
      ~callback:(fun ctx ->
        seen_addr := ctx.Snippet.cb_addr;
        Alcotest.(check bool) "words nonempty" true
          (Array.length ctx.Snippet.cb_words > 0))
      "add %v0, 0, %v0\n"
  in
  let _, _, _, t =
    edit_and_run branchy_program ~edit:(fun t r ->
        (if r.E.r_name = "main" then
           let g = E.control_flow_graph t r in
           let ed = E.editor t r in
           let b =
             List.find
               (fun (b : C.block) -> b.C.kind = C.Normal && b.C.reachable)
               (C.blocks g)
           in
           Edit.add_before ed b 0 snippet_with_cb);
        E.produce_edited_routine t r)
  in
  ignore t;
  Alcotest.(check bool) "callback saw an address" true (!seen_addr > 0)

let test_edited_addr () =
  let t = open_exe branchy_program in
  List.iter (fun r -> E.produce_edited_routine t r) (E.routines t);
  let x = E.edited_addr t (E.start_address t) in
  Alcotest.(check bool) "entry has an edited address" true (x <> None);
  Alcotest.(check bool) "edited address differs from original" true
    (x <> Some (E.start_address t))

let test_spill_in_situ () =
  (* force a spill: snippet needing registers at a point where everything
     allocatable is live is hard to fabricate; instead use forbid to shrink
     the pool to nothing so the allocator must spill *)
  let all_but_two =
    Regset.diff mach.Eel_arch.Machine.allocatable (Regset.of_list [ 16; 17 ])
  in
  let spilling_snippet counter =
    Snippet.of_asm mach ~forbid:all_but_two
      ~params:[ ("counter", counter) ]
      {|
        sethi %hi($counter), %v0
        ld [%v0 + %lo($counter)], %v1
        add %v1, 1, %v1
        st %v1, [%v0 + %lo($counter)]
|}
  in
  let counter = ref 0 in
  let _, _, st, _ =
    edit_and_run branchy_program ~edit:(fun t r ->
        (if r.E.r_name = "main" then
           let g = E.control_flow_graph t r in
           let ed = E.editor t r in
           counter := E.reserve_data t 4;
           let loop_block =
             List.find
               (fun (b : C.block) ->
                 match b.C.term with C.T_branch _ -> true | _ -> false)
               (C.blocks g)
           in
           Edit.add_before ed loop_block 0 (spilling_snippet !counter));
        E.produce_edited_routine t r)
  in
  Alcotest.(check int) "spilled snippet still counts 5" 5
    (Eel_util.Bytebuf.get32_be st.Emu.mem !counter)

let test_add_routine_and_call () =
  (* tools can add routines and call them from snippets (Active Memory) *)
  let src = "main: mov 3, %l0\n      mov %l0, %o0\n      ta 2\n" ^ exit0 in
  let counter = ref 0 in
  let _, res, st, _ =
    edit_and_run src ~edit:(fun t r ->
        (if r.E.r_name = "main" then (
           counter := E.reserve_data t 4;
           let handler =
             E.add_routine t ~name:"bump"
               ~params:[ ("counter", !counter) ]
               {|
        sethi %hi($counter), %g1
        ld [%g1 + %lo($counter)], %g2
        add %g2, 1, %g2
        retl
        st %g2, [%g1 + %lo($counter)]
|}
           in
           let g = E.control_flow_graph t r in
           let ed = E.editor t r in
           let call_snip =
             Snippet.of_asm mach
               ~params:[ ("handler", handler) ]
               (* o7 must be preserved around the helper call *)
               {|
        mov %o7, %v0
        call $handler
        nop
        mov %v0, %o7
|}
           in
           let b =
             List.find
               (fun (b : C.block) -> b.C.kind = C.Normal && b.C.reachable)
               (C.blocks g)
           in
           Edit.add_before ed b 0 call_snip));
        E.produce_edited_routine t r)
  in
  Alcotest.(check string) "program output intact" "3\n" res.Emu.out;
  Alcotest.(check int) "handler ran once" 1
    (Eel_util.Bytebuf.get32_be st.Emu.mem !counter)

let test_jump_table_in_text () =
  (* compilers also put dispatch tables in the TEXT segment; EEL must
     (a) classify the table words as data, not code (§3.1), (b) find the
     table by slicing, and (c) rewrite it in place so the edited program
     still dispatches correctly *)
  let src =
    {|
        .text
        .global main
main:   set sel, %l3
        ld [%l3], %o0
        and %o0, 3, %o0
        set Ltab, %l0
        sll %o0, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
Lc0:    mov 10, %o0
        ba Lend
        nop
Lc1:    mov 20, %o0
        ba Lend
        nop
Lc2:    mov 30, %o0
        ba Lend
        nop
Lc3:    mov 40, %o0
Lend:   ta 2
        mov 0, %o0
        ta 1
        .align 4
Ltab:   .word Lc0, Lc1, Lc2, Lc3
        .data
        .align 4
sel:    .word 2
|}
  in
  let t, _, g = cfg_of_main src in
  Alcotest.(check bool) "complete CFG" true g.C.complete;
  (* the in-text table words are data blocks *)
  Alcotest.(check bool) "table classified as data" true
    (List.exists (fun (b : C.block) -> b.C.is_data) (C.blocks g));
  (match C.indirect_jumps g with
  | [ (b, _) ] -> (
      match b.C.term with
      | C.T_jump { table = Some tbl; _ } ->
          Alcotest.(check int) "four targets" 4 (Array.length tbl.C.t_targets);
          (* the table's address is inside the text segment *)
          Alcotest.(check bool) "table in text" true
            (tbl.C.t_addr >= t.E.text_lo && tbl.C.t_addr < t.E.text_hi)
      | _ -> Alcotest.fail "jump not resolved")
  | _ -> Alcotest.fail "expected one indirect jump");
  (* end-to-end: edited executable dispatches through the rewritten table *)
  let _, res, _, _ = edit_and_run src in
  Alcotest.(check string) "dispatch still correct" "30\n" res.Emu.out

(* ------------------------------------------------------------------ *)
(* Property tests over random workloads                                *)
(* ------------------------------------------------------------------ *)

(* identity editing preserves observable behaviour on arbitrary seeded
   workloads, both compiler styles, with and without symbol tables *)
let prop_identity_random =
  QCheck.Test.make ~name:"identity editing preserves behaviour" ~count:12
    QCheck.(triple (int_bound 1000) bool bool)
    (fun (seed, sunpro, strip) ->
      let style = if sunpro then Eel_workload.Gen.Sunpro else Eel_workload.Gen.Gcc in
      let src =
        Eel_workload.Gen.program
          { Eel_workload.Gen.default with seed; style; routines = 12 }
      in
      let exe = assemble src in
      let exe = if strip then Sef.strip exe else exe in
      let orig, _ = Emu.run_exe exe in
      let t = E.read_contents mach exe in
      let edited = E.to_edited_sef t () in
      let res, _ = Emu.run_exe edited in
      orig.Emu.out = res.Emu.out && orig.Emu.exit_code = res.Emu.exit_code)

(* CFG structural invariants on random workloads *)
let prop_cfg_invariants =
  QCheck.Test.make ~name:"CFG structural invariants" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let src =
        Eel_workload.Gen.program
          { Eel_workload.Gen.default with seed; routines = 8 }
      in
      let t = E.read_contents mach (assemble src) in
      List.for_all
        (fun r ->
          let g = E.control_flow_graph t r in
          List.for_all
            (fun (b : C.block) ->
              (* succ/pred symmetry *)
              List.for_all
                (fun (e : C.edge) ->
                  e.C.esrc == b && List.memq e e.C.edst.C.preds)
                b.C.succs
              (* delay blocks hold exactly one instruction *)
              && (b.C.kind <> C.Delay || Array.length b.C.instrs = 1)
              (* surrogate and entry/exit blocks are empty *)
              && ((b.C.kind <> C.Call_surrogate && b.C.kind <> C.Entry
                   && b.C.kind <> C.Exit)
                 || Array.length b.C.instrs = 0)
              (* the exit block has no successors *)
              && (b.C.kind <> C.Exit || b.C.succs = [])
              (* data blocks have no successors *)
              && ((not b.C.is_data) || b.C.succs = []))
            (C.blocks g))
        (E.routines t))

(* instrumenting every edge of every block still preserves behaviour *)
let prop_heavy_instrumentation =
  QCheck.Test.make ~name:"dense edge instrumentation preserves behaviour"
    ~count:6
    QCheck.(int_bound 1000)
    (fun seed ->
      let src =
        Eel_workload.Gen.program
          { Eel_workload.Gen.default with seed; routines = 8 }
      in
      let exe = assemble src in
      let orig, _ = Emu.run_exe exe in
      let prof = Eel_tools.Qpt2.instrument mach exe in
      let res, _ = Emu.run_exe prof.Eel_tools.Qpt2.edited in
      orig.Emu.out = res.Emu.out)

let () =
  Alcotest.run "core"
    [
      ( "cfg",
        [
          Alcotest.test_case "shapes" `Quick test_cfg_shapes;
          Alcotest.test_case "annulled normalization" `Quick test_cfg_annulled;
          Alcotest.test_case "call surrogate" `Quick test_cfg_call_surrogate;
          Alcotest.test_case "data in text" `Quick test_cfg_data_in_text;
          Alcotest.test_case "jump table in text" `Quick test_jump_table_in_text;
        ] );
      ( "symtab",
        [
          Alcotest.test_case "hidden routine" `Quick test_hidden_routine;
          Alcotest.test_case "stage1 filtering" `Quick test_stage1_label_filtering;
          Alcotest.test_case "multiple entries" `Quick test_stage3_multiple_entries;
          Alcotest.test_case "stripped" `Quick test_stripped;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "dominators+loops" `Quick test_dominators_and_loops;
        ] );
      ( "slice",
        [
          Alcotest.test_case "dispatch table" `Quick test_slice_dispatch_table;
          Alcotest.test_case "literal jump" `Quick test_slice_literal_jump;
          Alcotest.test_case "unanalyzable" `Quick test_slice_unanalyzable;
        ] );
      ( "snippet",
        [
          Alcotest.test_case "scavenging" `Quick test_snippet_scavenging;
          Alcotest.test_case "forbid" `Quick test_snippet_forbid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_identity_random; prop_cfg_invariants; prop_heavy_instrumentation ] );
      ( "editing",
        [
          Alcotest.test_case "identity re-emit" `Quick test_identity_reemit;
          Alcotest.test_case "identity delay slots" `Quick test_identity_delay_slots;
          Alcotest.test_case "insert before" `Quick test_insert_before;
          Alcotest.test_case "edge counting" `Quick test_edge_counting;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "jump table rewrite" `Quick test_jump_table_rewrite;
          Alcotest.test_case "runtime translation" `Quick test_runtime_translation;
          Alcotest.test_case "indirect call translation" `Quick
            test_indirect_call_translation;
          Alcotest.test_case "callback" `Quick test_callback;
          Alcotest.test_case "edited_addr" `Quick test_edited_addr;
          Alcotest.test_case "spilling" `Quick test_spill_in_situ;
          Alcotest.test_case "add routine" `Quick test_add_routine_and_call;
        ] );
    ]
