test/test_spawn.ml: Alcotest Asm Eel Eel_arch Eel_emu Eel_sef Eel_sparc Eel_spawn Eel_tools Eel_util Eel_workload Format Insn Lazy List Mach Printf QCheck QCheck_alcotest String
