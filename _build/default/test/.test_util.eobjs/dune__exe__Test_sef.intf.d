test/test_sef.mli:
