test/test_sparc.ml: Alcotest Array Asm Eel_arch Eel_sef Eel_sparc Hashtbl Insn Lift List Mach Printf QCheck QCheck_alcotest Regs String
