test/test_mips.ml: Alcotest Bytes Eel_arch Eel_emu Eel_sef Eel_spawn Eel_util Lazy List Option Sys
