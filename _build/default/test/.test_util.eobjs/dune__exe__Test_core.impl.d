test/test_core.ml: Alcotest Array Asm Eel Eel_arch Eel_emu Eel_sef Eel_sparc Eel_tools Eel_util Eel_workload List Mach Option QCheck QCheck_alcotest
