test/test_callgraph.ml: Alcotest Asm Eel Eel_sparc Eel_workload List Mach Printf String
