test/test_sef.ml: Alcotest Bytes Char Eel_robust Eel_sef Eel_util Filename List Option Printf QCheck QCheck_alcotest Sys
