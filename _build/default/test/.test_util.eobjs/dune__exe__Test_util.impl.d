test/test_util.ml: Alcotest Buffer Bytebuf Bytes Char Eel_util List QCheck QCheck_alcotest Word
