test/test_robust.ml: Alcotest Bytes Eel Eel_arch Eel_emu Eel_mutate Eel_robust Eel_sef Eel_sparc Eel_workload List Mach String
