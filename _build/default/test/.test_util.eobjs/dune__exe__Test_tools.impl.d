test/test_tools.ml: Alcotest Asm Eel Eel_emu Eel_sef Eel_sparc Eel_tools Eel_util Eel_workload Hashtbl Insn List Mach Option Printf
