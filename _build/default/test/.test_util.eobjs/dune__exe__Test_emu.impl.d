test/test_emu.ml: Alcotest Asm Eel_emu Eel_sef Eel_sparc String
