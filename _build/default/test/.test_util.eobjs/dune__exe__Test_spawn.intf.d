test/test_spawn.mli:
