(* Retargetability: the SAME spawn elaborator, analyzer and RTL interpreter
   drive a second architecture from descriptions/mips.spawn (the paper:
   "a spawn description of the MIPS R2000 architecture is 128 lines").

   MIPS differs from SPARC in every way spawn must abstract over: opcode
   layout (opc/funct vs op/op2/op3), never-annulled delay slots, guard
   conditions computed from registers instead of condition codes, HI/LO
   instead of %y, and a different system-call shape. Programs here are
   hand-encoded with spawn's own encoder and executed by the RTL
   interpreter. *)

module Emu = Eel_emu.Emu
module Sef = Eel_sef.Sef
module Elab = Eel_spawn.Elab
module A = Eel_spawn.Analyze
module Instr = Eel_arch.Instr

let el =
  lazy
    (try Eel_spawn.Smach.load_description "../descriptions/mips.spawn"
     with Sys_error _ -> Eel_spawn.Smach.load_description "descriptions/mips.spawn")

(* register shorthands; values live in the s-registers because the shared
   emulator's system-call convention reads its argument from R[8], which
   [putint] therefore clobbers *)
let zero = 0
let t0 = 16
let t1 = 17
let t2 = 18
let a0 = 4
let ra = 31

let enc name fields = Elab.encode (Lazy.force el) name fields

(* assemble a word list into a runnable SEF image *)
let image ?(base = 0x10000) words =
  let text = Bytes.create (4 * List.length words) in
  List.iteri (fun i w -> Eel_util.Bytebuf.set32_be text (4 * i) w) words;
  Sef.create ~entry:base
    ~sections:
      [
        { Sef.sec_name = ".text"; sec_kind = Sef.Text; vaddr = base;
          size = Bytes.length text; contents = text };
      ]
    ~symbols:[]

let run words =
  let r, _ = Eel_spawn.Interp.run (Lazy.force el) (image words) in
  r

(* common MIPS idioms *)
let ori rt rs imm = enc "ori" [ ("rt", rt); ("rs", rs); ("imm16", imm) ]
let addiu rt rs imm = enc "addiu" [ ("rt", rt); ("rs", rs); ("imm16", imm land 0xFFFF) ]
let addu rd rs rt = enc "addu" [ ("rd", rd); ("rs", rs); ("rt", rt) ]
let nop = enc "sll" [ ("rd", 0); ("rt", 0); ("shamt", 0) ]
let syscall n = enc "syscall" [ ("code20", n) ]
let mov_a0 rs = addu a0 rs zero

(* our system-call convention for the MIPS description: the code field
   selects the call; the argument register is R[4] ($a0)... but the shared
   emulator reads %o0 = R[8] for arguments. Pass values in R[8]/R[9]
   directly — the machine state is architecture-neutral. *)
let putint rs = [ addu 8 rs zero; syscall 2 ]
let exit0 = [ ori 8 zero 0; syscall 1 ]

let test_decode () =
  let el = Lazy.force el in
  Alcotest.(check (option string)) "nop is sll" (Some "sll") (Elab.decode el nop);
  Alcotest.(check (option string)) "ori" (Some "ori") (Elab.decode el (ori t0 zero 7));
  Alcotest.(check (option string)) "syscall" (Some "syscall")
    (Elab.decode el (syscall 1));
  Alcotest.(check (option string)) "garbage is invalid" None
    (Elab.decode el 0xFFFFFFFF)

let test_arith () =
  let r =
    run
      ([ ori t0 zero 6; ori t1 zero 7;
         enc "mult" [ ("rs", t0); ("rt", t1) ];
         enc "mflo" [ ("rd", t2) ] ]
      @ putint t2 @ exit0)
  in
  Alcotest.(check string) "6*7 via mult/mflo" "42\n" r.Emu.out

let test_slt () =
  let r =
    run
      ([ addiu t0 zero (-5);
         ori t1 zero 3;
         enc "slt" [ ("rd", t2); ("rs", t0); ("rt", t1) ] ]
      @ putint t2
      @ [ enc "sltu" [ ("rd", t2); ("rs", t0); ("rt", t1) ] ]
      @ putint t2 @ exit0)
  in
  (* signed: -5 < 3 -> 1; unsigned: 0xFFFFFFFB < 3 -> 0 *)
  Alcotest.(check string) "signed vs unsigned compare" "1\n0\n" r.Emu.out

let test_branch_delay_slot () =
  (* MIPS delay slots always execute, even on the taken path *)
  let r =
    run
      ([
         ori t0 zero 1;
         enc "beq" [ ("rs", zero); ("rt", zero); ("imm16", 2) ]; (* skip one past the delay *)
         addiu t0 t0 10; (* delay slot: executes *)
         addiu t0 t0 100; (* jumped over *)
       ]
      @ putint t0 @ exit0)
  in
  Alcotest.(check string) "taken branch delay executes" "11\n" r.Emu.out

let test_loop () =
  (* count down from 5, summing: 5+4+3+2+1 = 15 *)
  let r =
    run
      ([
         ori t0 zero 5;
         ori t1 zero 0;
         (* Lloop: *)
         addu t1 t1 t0;
         addiu t0 t0 (-1);
         enc "bne" [ ("rs", t0); ("rt", zero); ("imm16", -3 land 0xFFFF) ];
         nop;
       ]
      @ putint t1 @ exit0)
  in
  Alcotest.(check string) "loop sum" "15\n" r.Emu.out

let test_call_and_return () =
  (* bgezal as call (always taken on $zero), jr $ra as return *)
  let r =
    run
      [
        (* 0x10000: call the doubler at +4 insns *)
        enc "bgezal" [ ("rs", zero); ("rt", 0x11); ("imm16", 5) ];
        ori a0 zero 21; (* delay: argument *)
        addu 8 2 zero; (* result (v0=R[2]) into R[8] for putint *)
        syscall 2;
        ori 8 zero 0;
        syscall 1;
        (* 0x10018: double: v0 = a0 + a0 *)
        addu 2 a0 a0;
        enc "jr" [ ("rs", ra) ];
        nop;
      ]
  in
  Alcotest.(check string) "call through bgezal/jr" "42\n" r.Emu.out

let test_memory () =
  let r =
    run
      ([
         enc "lui" [ ("rt", t0); ("imm16", 2) ]; (* 0x20000: scratch *)
         addiu t1 zero 258;
         enc "sw" [ ("rs", t0); ("rt", t1); ("imm16", 0) ];
         enc "lw" [ ("rs", t0); ("rt", t2); ("imm16", 0) ];
       ]
      @ putint t2
      @ [
          enc "sb" [ ("rs", t0); ("rt", t1); ("imm16", 8) ];
          enc "lbu" [ ("rs", t0); ("rt", t2); ("imm16", 8) ];
        ]
      @ putint t2 @ exit0)
  in
  Alcotest.(check string) "word and byte memory" "258\n2\n" r.Emu.out

(* spawn's derived analysis speaks about MIPS too *)
let test_analysis () =
  let el = Lazy.force el in
  let inst w = Option.get (Elab.instance el w) in
  (* beq: delayed, conditional, reads rs/rt, writes nothing *)
  let beq = inst (enc "beq" [ ("rs", t0); ("rt", t1); ("imm16", 4) ]) in
  let reads, writes = A.rtl_usage beq.Elab.i_rtl (Eel_arch.Regset.empty, Eel_arch.Regset.empty) in
  Alcotest.(check bool) "beq reads rs" true (Eel_arch.Regset.mem t0 reads);
  Alcotest.(check bool) "beq reads rt" true (Eel_arch.Regset.mem t1 reads);
  Alcotest.(check bool) "beq writes nothing" true (Eel_arch.Regset.is_empty writes);
  Alcotest.(check int) "beq is delayed (2 phases)" 2 (List.length beq.Elab.i_rtl);
  (* bgezal writes the link register *)
  let bal = inst (enc "bgezal" [ ("rs", zero); ("rt", 0x11); ("imm16", 4) ]) in
  let _, writes = A.rtl_usage bal.Elab.i_rtl (Eel_arch.Regset.empty, Eel_arch.Regset.empty) in
  Alcotest.(check bool) "bgezal writes $ra" true (Eel_arch.Regset.mem ra writes);
  (* jr is an indirect transfer through rs *)
  let jr = inst (enc "jr" [ ("rs", ra) ]) in
  let env = A.var_env_rtl jr.Elab.i_rtl [] in
  let pws = A.find_pc_writes env None jr.Elab.i_rtl [] in
  (match pws with
  | [ pw ] -> (
      match A.as_indirect env pw.A.pw_target with
      | Some (r, Instr.O_imm 0) -> Alcotest.(check int) "jr target reg" ra r
      | _ -> Alcotest.fail "jr target not recognized as indirect")
  | _ -> Alcotest.fail "jr should write pc once");
  (* lw is a 4-byte load with a recognizable effective address *)
  let lw = inst (enc "lw" [ ("rs", t0); ("rt", t2); ("imm16", 12) ]) in
  (match A.find_mem (A.var_env_rtl lw.Elab.i_rtl []) lw.Elab.i_rtl [] with
  | [ m ] ->
      Alcotest.(check int) "lw width" 4 m.A.ma_width;
      Alcotest.(check bool) "lw is a load" true (not m.A.ma_store)
  | _ -> Alcotest.fail "lw memory access not found")

(* the description is concise, as the paper claims for MIPS (128 lines) *)
let test_conciseness () =
  let path =
    if Sys.file_exists "../descriptions/mips.spawn" then "../descriptions/mips.spawn"
    else "descriptions/mips.spawn"
  in
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool) "under 140 lines" true
    (Eel_spawn.Codegen.loc_of_string src < 140)

let () =
  Alcotest.run "mips"
    [
      ( "mips",
        [
          Alcotest.test_case "decode" `Quick test_decode;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "signed/unsigned compare" `Quick test_slt;
          Alcotest.test_case "branch delay slot" `Quick test_branch_delay_slot;
          Alcotest.test_case "loop" `Quick test_loop;
          Alcotest.test_case "call and return" `Quick test_call_and_return;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "derived analysis" `Quick test_analysis;
          Alcotest.test_case "conciseness" `Quick test_conciseness;
        ] );
    ]
