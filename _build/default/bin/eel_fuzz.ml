(* Fault-injection fuzz driver: the executable form of the never-crash
   contract. A well-formed workload executable is mutated [--count] times
   (deterministically from [--seed], cycling through every mutation class),
   and each mutant is pushed through the full front end: SEF load, symbol
   refinement, CFG construction for every routine (hidden-routine queue
   drained), then a no-op edit + layout + output-image build. Each mutant
   must either succeed or be rejected with a structured [Diag.error] — any
   other exception is a crash, reported with its backtrace, and the driver
   exits 1. *)

module Sef = Eel_sef.Sef
module Diag = Eel_robust.Diag
module Mutate = Eel_mutate.Mutate
module E = Eel.Executable

type outcome =
  | Ok_load of int  (** diagnostics count *)
  | Rejected of Diag.error
  | Crashed of string

(* The load -> CFG -> edit pipeline under test. [jump_stats] forces every
   routine's CFG (draining the hidden-routine discovery queue);
   [to_edited_sef] performs the no-op edit, layout and invariant-verified
   image build. *)
let pipeline bytes =
  let diag = Diag.create () in
  match Sef.load ~diag bytes with
  | Error e -> Rejected e
  | Ok exe -> (
      let budget = Diag.budget ~stage:"fuzz" (8 * 1024 * 1024) in
      match E.open_exe ~diag ~budget Eel_sparc.Mach.mach exe with
      | Error e -> Rejected e
      | Ok t -> (
          match
            Diag.guard (fun () ->
                ignore (E.jump_stats t);
                ignore (E.to_edited_sef t ()))
          with
          | Ok () -> Ok_load (Diag.count diag)
          | Error e -> Rejected e))

let run_one bytes =
  try pipeline bytes with
  | Stack_overflow -> Crashed "Stack_overflow"
  | exn ->
      Crashed
        (Printf.sprintf "%s\n%s" (Printexc.to_string exn)
           (Printexc.get_backtrace ()))

let () =
  Printexc.record_backtrace true;
  let count = ref 200 and seed = ref 42 and routines = ref 12 in
  let verbose = ref false in
  Arg.parse
    [
      ("--count", Arg.Set_int count, "NUMBER of mutants (default 200)");
      ("--seed", Arg.Set_int seed, "SEED for mutation and the base workload (default 42)");
      ("--routines", Arg.Set_int routines, "ROUTINES in the base workload (default 12)");
      ("--verbose", Arg.Set verbose, "print one line per mutant");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "eel_fuzz: assert the front end never crashes on mutated executables";
  let base =
    Eel_workload.Gen.assemble_program
      { Eel_workload.Gen.default with seed = !seed; routines = !routines }
  in
  let corpus = Mutate.corpus ~seed:!seed ~count:!count base in
  let per_kind : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let bump kind slot =
    let o, r = Option.value ~default:(0, 0) (Hashtbl.find_opt per_kind kind) in
    Hashtbl.replace per_kind kind
      (match slot with `Ok -> (o + 1, r) | `Rej -> (o, r + 1))
  in
  let ok = ref 0 and rejected = ref 0 and crashed = ref 0 in
  List.iter
    (fun (i, kind, bytes) ->
      let kname = Mutate.name kind in
      match run_one bytes with
      | Ok_load ndiag ->
          incr ok;
          bump kname `Ok;
          if !verbose then
            Printf.printf "%4d %-22s ok (%d diagnostics)\n" i kname ndiag
      | Rejected e ->
          incr rejected;
          bump kname `Rej;
          if !verbose then
            Printf.printf "%4d %-22s rejected: %s\n" i kname
              (Diag.error_message e)
      | Crashed msg ->
          incr crashed;
          Printf.printf "%4d %-22s CRASH: %s\n" i kname msg)
    corpus;
  Printf.printf "eel_fuzz: %d mutants (seed %d): %d ok, %d rejected, %d crashed\n"
    (List.length corpus) !seed !ok !rejected !crashed;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_kind []
  |> List.sort compare
  |> List.iter (fun (k, (o, r)) ->
         Printf.printf "  %-22s %3d ok %3d rejected\n" k o r);
  if !crashed > 0 then exit 1
