(* qpt2 — the EEL-based edge profiler as a command-line tool (paper §5).

   Instruments FILE, writes FILE.count (paper Fig. 1 writes argv[1]
   ".count"), and with --run executes the edited program and prints the
   edge profile. *)

open Cmdliner
module E = Eel.Executable
module Emu = Eel_emu.Emu
module Qpt2 = Eel_tools.Qpt2

let main path run_it no_fold =
  let exe = Eel_sef.Sef.read_file path in
  let t0 = Unix.gettimeofday () in
  let prof = Qpt2.instrument ~fold_delay:(not no_fold) Eel_sparc.Mach.mach exe in
  let dt = Unix.gettimeofday () -. t0 in
  let out = path ^ ".count" in
  Eel_sef.Sef.write_file out prof.Qpt2.edited;
  Printf.printf "instrumented %s -> %s: %d counters, %d uneditable edges skipped (%.3fs)\n"
    path out
    (List.length prof.Qpt2.counters)
    prof.Qpt2.skipped_uneditable dt;
  if run_it then (
    let res, st = Emu.run_exe prof.Qpt2.edited in
    print_string res.Emu.out;
    Printf.printf "--- edge profile ---\n";
    List.iter
      (fun ((c : Qpt2.counter), n) ->
        if n > 0 then
          Printf.printf "%-20s block %-4d edge %-4d : %d\n" c.Qpt2.c_routine
            c.Qpt2.c_block c.Qpt2.c_edge n)
      (Qpt2.counts prof st.Emu.mem))

let main path run_it no_fold =
  try main path run_it no_fold with
  | Eel_robust.Diag.Error e ->
      Printf.eprintf "qpt2: %s\n" (Eel_robust.Diag.error_message e);
      exit 1
  | Emu.Fault m ->
      Printf.eprintf "qpt2: fault: %s\n" m;
      exit 1

let cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run_it = Arg.(value & flag & info [ "run" ] ~doc:"run and print profile") in
  let no_fold =
    Arg.(value & flag & info [ "no-fold" ] ~doc:"disable delay-slot refolding")
  in
  Cmd.v
    (Cmd.info "qpt2" ~doc:"EEL-based edge profiler")
    Term.(const main $ path $ run_it $ no_fold)

let () = exit (Cmd.eval cmd)
