(* eel_run — execute a SEF executable in the emulator.

   --rtl runs the program under the spawn-description-driven interpreter
   instead of the handwritten emulator (they must agree; see test_spawn). *)

open Cmdliner

let run path rtl trace fuel =
  let exe = Eel_sef.Sef.read_file path in
  let result =
    if rtl then (
      let el = Eel_spawn.Smach.load_description "descriptions/sparc.spawn" in
      let r, _ = Eel_spawn.Interp.run ~fuel el exe in
      r)
    else
      let hook =
        if trace then
          Some
            (function
            | Eel_emu.Emu.Ev_exec { pc; word } ->
                Printf.eprintf "%08x: %s\n" pc
                  (Eel_sparc.Mach.mach.Eel_arch.Machine.disas ~pc word)
            | _ -> ())
        else None
      in
      let r, _ = Eel_emu.Emu.run_exe ~fuel ?hook exe in
      r
  in
  print_string result.Eel_emu.Emu.out;
  Printf.eprintf "[exit=%d insns=%d loads=%d stores=%d]\n"
    result.Eel_emu.Emu.exit_code result.Eel_emu.Emu.insns
    result.Eel_emu.Emu.loads result.Eel_emu.Emu.stores;
  exit result.Eel_emu.Emu.exit_code

let run path rtl trace fuel =
  try run path rtl trace fuel with
  | Eel_robust.Diag.Error e ->
      Printf.eprintf "eel_run: %s\n" (Eel_robust.Diag.error_message e);
      exit 1
  | Eel_emu.Emu.Fault m ->
      Printf.eprintf "eel_run: fault: %s\n" m;
      exit 1

let cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let rtl =
    Arg.(value & flag & info [ "rtl" ] ~doc:"use the spawn RTL interpreter")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"trace execution") in
  let fuel =
    Arg.(value & opt int 200_000_000 & info [ "fuel" ] ~doc:"instruction budget")
  in
  Cmd.v
    (Cmd.info "eel_run" ~doc:"run a SEF executable")
    Term.(const run $ path $ rtl $ trace $ fuel)

let () = exit (Cmd.eval cmd)
