(* spawn_gen — elaborate a machine description and generate the
   machine-specific OCaml layer from it (paper §4).

   Prints the conciseness comparison the paper reports: description lines
   vs generated lines vs the handwritten equivalent. *)

open Cmdliner

let count_file_loc path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  ( s,
    List.length
      (List.filter
         (fun l ->
           let l = String.trim l in
           String.length l > 0 && l.[0] <> '!'
           && not (String.length l >= 2 && String.sub l 0 2 = "(*"))
         (String.split_on_char '\n' s)) )

let main desc out =
  let el = Eel_spawn.Smach.load_description desc in
  let code = Eel_spawn.Codegen.generate el in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc code;
      close_out oc;
      Printf.printf "wrote %s\n" path
  | None -> ());
  let _, desc_loc = count_file_loc desc in
  let gen_loc = Eel_spawn.Codegen.loc_of_string code in
  Printf.printf "description:    %4d non-comment lines (%s)\n" desc_loc desc;
  Printf.printf "generated code: %4d non-comment lines\n" gen_loc;
  Printf.printf "instructions described: %d\n" (List.length el.Eel_spawn.Elab.pats)

let cmd =
  let desc =
    Arg.(
      value
      & pos 0 string "descriptions/sparc.spawn"
      & info [] ~docv:"DESCRIPTION")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~doc:"write generated code")
  in
  Cmd.v
    (Cmd.info "spawn_gen" ~doc:"generate machine-specific code from a description")
    Term.(const main $ desc $ out)

let () = exit (Cmd.eval cmd)
