bin/eel_objdump.mli:
