bin/eel_run.mli:
