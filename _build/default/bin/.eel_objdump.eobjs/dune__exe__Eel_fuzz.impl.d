bin/eel_fuzz.ml: Arg Eel Eel_mutate Eel_robust Eel_sef Eel_sparc Eel_workload Hashtbl List Option Printexc Printf
