bin/eel_run.ml: Arg Cmd Cmdliner Eel_arch Eel_emu Eel_robust Eel_sef Eel_sparc Eel_spawn Printf Term
