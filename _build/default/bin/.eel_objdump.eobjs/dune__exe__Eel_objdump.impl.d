bin/eel_objdump.ml: Arg Array Cmd Cmdliner Eel Eel_arch Eel_robust Eel_sef Eel_sparc Format List Printf Term
