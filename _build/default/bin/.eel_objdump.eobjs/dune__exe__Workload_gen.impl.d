bin/workload_gen.ml: Arg Cmd Cmdliner Eel_sef Eel_sparc Eel_workload List Option Printf Term
