bin/qpt2.ml: Arg Cmd Cmdliner Eel Eel_emu Eel_robust Eel_sef Eel_sparc Eel_tools List Printf Term Unix
