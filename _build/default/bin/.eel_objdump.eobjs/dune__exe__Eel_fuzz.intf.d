bin/eel_fuzz.mli:
