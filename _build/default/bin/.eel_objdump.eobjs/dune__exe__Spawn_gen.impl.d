bin/spawn_gen.ml: Arg Cmd Cmdliner Eel_spawn List Printf String Term
