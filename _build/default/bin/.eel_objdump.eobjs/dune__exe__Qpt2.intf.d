bin/qpt2.mli:
