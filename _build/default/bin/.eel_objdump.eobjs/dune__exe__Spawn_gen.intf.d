bin/spawn_gen.mli:
