(* Quickstart: the paper's branch-counting tool (Figs. 1, 2 and 5).

   This example is a line-for-line OCaml rendition of the paper's Figure 1:
   open an executable, and for every basic block with more than one
   successor, add a counter-increment snippet along each outgoing edge.
   Process hidden routines as they are discovered, write the edited
   executable, run both versions in the emulator, and print the counters.

   Run with:  dune exec examples/quickstart.exe *)

module Sef = Eel_sef.Sef
module E = Eel.Executable
module C = Eel.Cfg
module Emu = Eel_emu.Emu
module Snippet = Eel.Snippet

let mach = Eel_sparc.Mach.mach

(* the program we instrument: a small loop nest with an if/else *)
let program =
  {|
        .text
        .global main
main:   mov 0, %l2              ! checksum
        mov 6, %l0              ! outer counter
Louter: andcc %l0, 1, %g0
        be Leven
        nop
        add %l2, 10, %l2        ! odd iteration
        ba Lnext
        nop
Leven:  add %l2, 1, %l2         ! even iteration
Lnext:  subcc %l0, 1, %l0
        bne Louter
        nop
        mov %l2, %o0
        ta 2                    ! print checksum
        mov 0, %o0
        ta 1                    ! exit
|}

(* Fig. 2: the low-level snippet that increments counter COUNTER_NUM.
   %v0/%v1 are virtual registers that EEL replaces with scavenged dead
   registers at each insertion point. *)
let incr_count exec counter_addr =
  ignore exec;
  Snippet.of_asm mach
    ~params:[ ("counter", counter_addr) ]
    {|
        sethi %hi($counter), %v0
        ld [%v0 + %lo($counter)], %v1
        add %v1, 1, %v1
        st %v1, [%v0 + %lo($counter)]
|}

(* Fig. 1: instrument(r) *)
let counters = ref []

let instrument exec r =
  let g = E.control_flow_graph exec r in
  let ed = E.editor exec r in
  List.iter
    (fun (b : C.block) ->
      if List.length b.C.succs > 1 then
        List.iter
          (fun (e : C.edge) ->
            if e.C.e_editable then (
              let addr = E.reserve_data exec 4 in
              counters := (addr, Format.asprintf "%a" C.pp_block b) :: !counters;
              Eel.Edit.add_along ed e (incr_count exec addr)))
          b.C.succs)
    (C.blocks g);
  E.produce_edited_routine exec r;
  E.delete_control_flow_graph r

(* Fig. 1: main *)
let () =
  let exe =
    match Eel_sparc.Asm.assemble program with
    | Ok e -> e
    | Error m -> failwith m
  in
  let exec = E.read_contents mach exe in
  List.iter (instrument exec) (E.routines exec);
  (* while (!exec->hidden_routines()->is_empty()) ... *)
  let rec drain () =
    match E.take_hidden exec with
    | Some r ->
        instrument exec r;
        drain ()
    | None -> ()
  in
  drain ();
  let x = E.edited_addr exec (E.start_address exec) in
  Printf.printf "entry 0x%x is edited to 0x%x\n" (E.start_address exec)
    (Option.get x);
  let edited = E.to_edited_sef exec () in
  (* run both versions; their observable behaviour must match *)
  let orig, _ = Emu.run_exe exe in
  let res, st = Emu.run_exe edited in
  Printf.printf "original output:  %s" orig.Emu.out;
  Printf.printf "edited output:    %s" res.Emu.out;
  Printf.printf "outputs match:    %b\n" (orig.Emu.out = res.Emu.out);
  Printf.printf "dynamic instructions: %d -> %d\n" orig.Emu.insns res.Emu.insns;
  Printf.printf "\nedge execution counts:\n";
  List.iter
    (fun (addr, what) ->
      Printf.printf "  %-24s %d\n" what (Eel_util.Bytebuf.get32_be st.Emu.mem addr))
    (List.rev !counters)
