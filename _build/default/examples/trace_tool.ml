(* Address tracing (paper §1: qpt-style tracing of memory references).

   The tracer inserts a snippet before every load and store that appends
   the reference's effective address to an in-memory buffer. This example
   instruments a workload, runs it, and cross-checks the recorded trace
   against the emulator's own memory-event stream — the "hardware" ground
   truth.

   Run with:  dune exec examples/trace_tool.exe *)

module Emu = Eel_emu.Emu
module Tracer = Eel_tools.Tracer

let mach = Eel_sparc.Mach.mach

let () =
  let src =
    Eel_workload.Gen.program
      { Eel_workload.Gen.default with routines = 8; seed = 12; mem_frac = 0.8 }
  in
  let exe =
    match Eel_sparc.Asm.assemble src with Ok e -> e | Error m -> failwith m
  in
  (* ground truth from the original run *)
  let truth = ref [] in
  let hook = function
    | Emu.Ev_load { addr; _ } | Emu.Ev_store { addr; _ } -> truth := addr :: !truth
    | _ -> ()
  in
  let orig, _ = Emu.run_exe ~hook exe in
  let truth = List.rev !truth in
  (* instrument and re-run *)
  let tr = Tracer.instrument mach exe in
  let res, st = Emu.run_exe tr.Tracer.edited in
  assert (orig.Emu.out = res.Emu.out);
  let recorded = Tracer.trace tr st.Emu.mem in
  Printf.printf "memory references (ground truth): %d\n" (List.length truth);
  Printf.printf "addresses recorded by the tool:   %d\n" (List.length recorded);
  Printf.printf "uninstrumentable references:      %d (uneditable sites)\n"
    tr.Tracer.skipped_uneditable;
  (* stack addresses differ between the two runs (the edited image is
     larger, so the stack sits higher); static-data references are
     run-independent, and their sub-traces must agree exactly *)
  let static a = a < 0x100000 in
  let t_static = List.filter static truth in
  let r_static = List.filter static recorded in
  Printf.printf "static-data references match:     %b (%d of them)\n"
    (t_static = r_static) (List.length t_static);
  Printf.printf "first 10 addresses: %s\n"
    (String.concat " "
       (List.map (Printf.sprintf "0x%x") (List.filteri (fun i _ -> i < 10) recorded)))
