(* Software fault isolation (paper §1, citing Wahbe et al.).

   A "plugin" routine misbehaves: besides its useful work it scribbles
   through a wild pointer. SFI editing rewrites every store so its
   effective address is forced into a sandbox segment. The demo shows the
   wild store landing harmlessly inside the sandbox while well-behaved
   stores (whose addresses are already in-segment) are unaffected.

   Run with:  dune exec examples/sandbox.exe *)

module Emu = Eel_emu.Emu
module Sfi = Eel_tools.Sfi

let mach = Eel_sparc.Mach.mach

let program =
  {|
        .text
        .global main
main:   set good, %l0
        mov 1234, %l1
        st %l1, [%l0]           ! a legitimate store (inside the sandbox)
        set 0x700000, %l0       ! a wild pointer, far outside the program
        mov 666, %l1
        st %l1, [%l0]           ! the rogue store
        set good, %l0
        ld [%l0], %o0
        ta 2                    ! print the legitimate value
        mov 0, %o0
        ta 1
        .data
        .align 4
good:   .word 0
|}

let () =
  let exe =
    match Eel_sparc.Asm.assemble program with Ok e -> e | Error m -> failwith m
  in
  (* sandbox: the 64 KiB segment holding the program's data *)
  let seg_base = 0x10000 and seg_size = 0x10000 in
  let sb = Sfi.instrument mach exe ~seg_base ~seg_size in
  Printf.printf "stores guarded: %d\n" sb.Sfi.guarded;
  let res, st = Emu.run_exe sb.Sfi.edited in
  print_string res.Emu.out;
  let peek a = Eel_util.Bytebuf.get32_be st.Emu.mem a in
  Printf.printf "wild address 0x700000 after run:     %d (untouched)\n"
    (peek 0x700000);
  let clamped = 0x700000 land (seg_size - 1) lor seg_base in
  Printf.printf "clamped address 0x%x after run:    %d (contained)\n" clamped
    (peek clamped);
  assert (peek 0x700000 = 0);
  assert (peek clamped = 666);
  print_endline "sandbox held."
