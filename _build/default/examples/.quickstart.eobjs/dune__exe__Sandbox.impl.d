examples/sandbox.ml: Eel_emu Eel_sparc Eel_tools Eel_util Printf
