examples/sandbox.mli:
