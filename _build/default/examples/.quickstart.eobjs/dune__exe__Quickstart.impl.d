examples/quickstart.ml: Eel Eel_emu Eel_sef Eel_sparc Eel_util Format List Option Printf
