examples/trace_tool.ml: Eel_emu Eel_sparc Eel_tools Eel_workload List Printf String
