examples/quickstart.mli:
