examples/cache_sim.mli:
