examples/trace_tool.mli:
