(* Active Memory cache simulation (paper §5).

   "Active Memory ... dramatically lowered the cost of cache simulation —
   to a 2-7x slowdown — by inserting cache-miss tests before a program's
   memory references rather than post-processing an address trace."

   This example instruments a memory-intensive workload with in-line
   presence tests (the simulated cache lives inside the edited program),
   runs original and edited versions, and reports miss counts and the
   dynamic-instruction slowdown — the paper's headline number for this
   tool.

   Run with:  dune exec examples/cache_sim.exe *)

module Emu = Eel_emu.Emu
module Amemory = Eel_tools.Amemory

let mach = Eel_sparc.Mach.mach

let () =
  Printf.printf "%-28s %10s %10s %8s %8s %9s\n" "workload" "orig-insn"
    "edit-insn" "slowdown" "refs" "misses";
  List.iter
    (fun (name, src) ->
      let exe =
        match Eel_sparc.Asm.assemble src with Ok e -> e | Error m -> failwith m
      in
      let orig, _ = Emu.run_exe exe in
      let am = Amemory.instrument mach exe in
      let res, st = Emu.run_exe am.Amemory.edited in
      assert (orig.Emu.out = res.Emu.out);
      Printf.printf "%-28s %10d %10d %7.2fx %8d %9d\n" name orig.Emu.insns
        res.Emu.insns
        (float_of_int res.Emu.insns /. float_of_int orig.Emu.insns)
        (Amemory.refs am st.Emu.mem)
        (Amemory.misses am st.Emu.mem))
    [
      ( "sequential-walk",
        Eel_workload.Gen.memory_bound ~iters:20 ~size_words:512 () );
      ( "small-working-set",
        Eel_workload.Gen.memory_bound ~iters:100 ~size_words:32 () );
      ( "mixed-workload",
        Eel_workload.Gen.program
          { Eel_workload.Gen.default with routines = 20; seed = 4; mem_frac = 0.9 }
      );
    ]
