(** A SPARC V8 (integer subset) emulator.

    The paper ran original and edited executables on real SPARC hardware;
    this emulator is the repository's stand-in (see DESIGN.md). It implements
    the pc/npc delayed-control-transfer model exactly — including annulled
    delay slots — so that EEL's delay-slot CFG normalization and delay-slot
    refolding are tested against real architectural behaviour, not a
    simplification.

    Besides executing programs, the emulator serves as {e ground truth} for
    every editing experiment: it counts dynamic instructions (the basis of
    the Active Memory slowdown experiment E6), records memory events and
    per-pc execution counts (validating qpt2's edge profiles), and checks
    that edited executables produce byte-identical observable output.

    System-call convention: [ta n] with arguments in %o0–%o2 and result in
    %o0 (the trap number selects the call, statically visible to EEL):

    - [ta 1] — exit; %o0 is the exit code
    - [ta 2] — putint: print %o0 as signed decimal plus newline
    - [ta 3] — putchar: print the byte in %o0
    - [ta 4] — write: print %o1 bytes starting at address %o0
    - [ta 5] — brk: set the heap break to %o0; returns it in %o0
    - [ta 7] — cycles: return the dynamic instruction count in %o0 *)

open Eel_sparc
module W = Eel_util.Word

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

type event =
  | Ev_exec of { pc : int; word : int }
  | Ev_load of { pc : int; addr : int; width : int }
  | Ev_store of { pc : int; addr : int; width : int }

(** {1 Observable events}

    The differential oracle (lib/diffexec) compares two executions by their
    {e observable} behaviour, not their instruction streams: system calls
    with their arguments, stores with address and value, and how the run
    ended. Every way a run can end — [ta 1] exit, a machine {!Fault}, fuel
    exhaustion — flows through the same constructor set, so an event log
    always terminates in exactly one of {!Ob_exit}, {!Ob_fault} or
    {!Ob_fuel} and a comparator never has to reconcile events against
    out-of-band exceptions.

    The [pc] carried by each event is the address the {e emitting} image
    executed at; original and edited images run the same program at
    different addresses, so comparators must treat [pc] as reporting
    metadata, not as part of the observable payload. *)

type obs_event =
  | Ob_trap of { pc : int; num : int; arg : int }
      (** a [ta n] system call; [arg] is %o0 at trap time *)
  | Ob_store of { pc : int; addr : int; width : int; value : int }
      (** for [std], [value] is the even register of the pair *)
  | Ob_syscall of {
      pc : int;
      num : int;  (** OS syscall number (already decoded from the immediate) *)
      a0 : int;  (** %o0 at trap time — fd / path address / exit code *)
      a1 : int;
      a2 : int;
      ret : int;  (** %o0 after the call: result, or errno when [err] *)
      err : bool;  (** the carry flag the call left behind *)
      data : int;
          (** checksum of the bytes actually transferred (reads/writes), 0
              otherwise — catches a same-length-different-bytes divergence
              without logging payloads *)
    }
      (** an OS-layer system call dispatched by an installed trap handler
          (see {!set_trap_handler}); the full call/return pair as one
          event, so the differential oracle compares syscall {e streams} *)
  | Ob_exit of { pc : int; code : int }  (** [ta 1] *)
  | Ob_fault of { pc : int; what : string }  (** machine fault (see {!Fault}) *)
  | Ob_fuel of { pc : int }  (** the fuel budget ran out at [pc] *)

let obs_pc = function
  | Ob_trap { pc; _ }
  | Ob_store { pc; _ }
  | Ob_syscall { pc; _ }
  | Ob_exit { pc; _ }
  | Ob_fault { pc; _ }
  | Ob_fuel { pc } ->
      pc

let pp_obs fmt = function
  | Ob_trap { pc; num; arg } ->
      Format.fprintf fmt "trap %d (arg=0x%x) at 0x%x" num arg pc
  | Ob_store { pc; addr; width; value } ->
      Format.fprintf fmt "store%d [0x%x]=0x%x at 0x%x" width addr value pc
  | Ob_syscall { pc; num; a0; a1; a2; ret; err; data } ->
      Format.fprintf fmt "syscall %d (0x%x, 0x%x, 0x%x) -> %s%d [data=0x%x] at 0x%x"
        num a0 a1 a2
        (if err then "E" else "")
        ret data pc
  | Ob_exit { pc; code } -> Format.fprintf fmt "exit %d at 0x%x" code pc
  | Ob_fault { pc; what } -> Format.fprintf fmt "fault at 0x%x: %s" pc what
  | Ob_fuel { pc } -> Format.fprintf fmt "out of fuel at 0x%x" pc

(** A bounded observable-event log. The first [limit] events are retained
    verbatim; later ones are counted but dropped, so a hostile or
    store-heavy program cannot drive the oracle into unbounded allocation.
    [obs_total > List.length (obs_events l)] tells a comparator the log was
    truncated (comparisons on a truncated log are prefix comparisons). *)
type obs_log = {
  ol_limit : int;
  ol_events : obs_event Eel_util.Dyn.t;
  mutable ol_total : int;
  mutable ol_filtered : int;
      (** events suppressed by an installed {!set_obs_filter} filter; they
          consume neither the bound nor [ol_total], so a filtered log
          compares length-for-length against an unfiltered one *)
  mutable ol_filtered_stores : int;  (** filtered events that were stores *)
  mutable ol_filtered_traps : int;  (** filtered events that were traps *)
  mutable ol_filtered_syscalls : int;
      (** filtered events that were OS syscalls *)
}

let default_obs_limit = 65536

let obs_log ?(limit = default_obs_limit) () =
  {
    ol_limit = max 0 limit;
    ol_events = Eel_util.Dyn.create ();
    ol_total = 0;
    ol_filtered = 0;
    ol_filtered_stores = 0;
    ol_filtered_traps = 0;
    ol_filtered_syscalls = 0;
  }

let obs_record l ev =
  l.ol_total <- l.ol_total + 1;
  if Eel_util.Dyn.length l.ol_events < l.ol_limit then
    Eel_util.Dyn.push l.ol_events ev

(** Retained events, in execution order. *)
let obs_events l = Eel_util.Dyn.to_list l.ol_events

let obs_events_array l = Eel_util.Dyn.to_array l.ol_events

(** Total events observed, including any dropped past the bound. *)
let obs_total l = l.ol_total

let obs_truncated l = l.ol_total > Eel_util.Dyn.length l.ol_events

(** Events an installed filter suppressed (0 when no filter ran). *)
let obs_filtered l = l.ol_filtered

(** Breakdown of {!obs_filtered} by event kind — the overhead ledger's
    "extra stores" / "extra traps" columns read these directly. *)
let obs_filtered_stores l = l.ol_filtered_stores

let obs_filtered_traps l = l.ol_filtered_traps

let obs_filtered_syscalls l = l.ol_filtered_syscalls

(** {1 Execution profiling}

    The emulator is the ground truth for every editing experiment; a
    {!profile} captures that ground truth as data a tool's own measurements
    can be validated against (ISSUE 2): per-basic-block execution counts
    (qpt2's edge profiles must be consistent with them), the dynamic
    instruction-class mix, fuel consumed, and memory-operation counts.

    A {e block entry} is an instruction reached non-sequentially — the
    target of a taken control transfer, or the first instruction executed.
    Those addresses are exactly the leaders of the dynamic basic blocks. *)

let iclass_names =
  [| "alu"; "branch"; "call"; "jump"; "load"; "store"; "sethi"; "trap"; "other" |]

let iclass_of = function
  | Insn.Alu _ -> 0
  | Insn.Bicc _ -> 1
  | Insn.Call _ -> 2
  | Insn.Jmpl _ -> 3
  | Insn.Mem { op; _ } -> if Insn.mem_is_store op then 5 else 4
  | Insn.Sethi _ -> 6
  | Insn.Ticc _ -> 7
  | Insn.Invalid _ | Insn.Unimp _ | Insn.Rdy _ | Insn.Wry _ -> 8

(** One node of the calling-context tree: a routine entry address reached
    by a call, with the dynamic instructions (and class mix) attributed to
    that context and the contexts called from it. *)
type cct = {
  cc_entry : int;  (** arrival pc of the call target; -1 at the root *)
  mutable cc_self : int;
  cc_classes : int array;  (** indexed like {!iclass_names} *)
  cc_children : (int, cct) Hashtbl.t;  (** callee entry pc -> context *)
}

type cframe = { cf_node : cct; cf_ret : int (* expected return address *) }

type profile = {
  mutable p_insns : int;  (** fuel consumed (dynamic instructions) *)
  mutable p_block_entries : int;  (** non-sequential arrivals *)
  p_block_counts : (int, int) Hashtbl.t;  (** block-leader pc -> entries *)
  p_pc_counts : (int, int) Hashtbl.t;  (** pc -> execution count *)
  p_class_counts : int array;  (** indexed like {!iclass_names} *)
  mutable p_last_pc : int;
  p_root : cct;  (** calling-context tree root (the entry routine) *)
  mutable p_cur : cct;  (** context currently executing *)
  mutable p_stack : cframe list;  (** shadow call stack (callers of cur) *)
  mutable p_depth : int;
  mutable p_pending_call : int;
      (** return address of a just-executed call, [min_int] when none; the
          next block entry within the DCTI window is its callee *)
  mutable p_pending_ret : bool;
  mutable p_pending_at : int;  (** [p_insns] when the pending flag was set *)
}

let new_cct entry =
  {
    cc_entry = entry;
    cc_self = 0;
    cc_classes = Array.make (Array.length iclass_names) 0;
    cc_children = Hashtbl.create 4;
  }

let create_profile () =
  let root = new_cct (-1) in
  {
    p_insns = 0;
    p_block_entries = 0;
    p_block_counts = Hashtbl.create 256;
    p_pc_counts = Hashtbl.create 1024;
    p_class_counts = Array.make (Array.length iclass_names) 0;
    p_last_pc = min_int;
    p_root = root;
    p_cur = root;
    p_stack = [];
    p_depth = 0;
    p_pending_call = min_int;
    p_pending_ret = false;
    p_pending_at = 0;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some n -> Hashtbl.replace tbl key (n + 1)
  | None -> Hashtbl.add tbl key 1

(* Shadow-stack depth cap: beyond it, callee instructions are attributed to
   the capped context instead of pushing (runaway recursion stays bounded;
   returns past the cap still unwind by matching return addresses). *)
let max_cct_depth = 512

(* A pending call/return explains a block entry only if it fired within the
   transfer's own DCTI window (the transfer plus its delay slot). *)
let pending_live p = p.p_insns - p.p_pending_at <= 2

let profile_step p ~pc insn =
  p.p_insns <- p.p_insns + 1;
  bump p.p_pc_counts pc;
  if pc <> p.p_last_pc + 4 then begin
    p.p_block_entries <- p.p_block_entries + 1;
    bump p.p_block_counts pc;
    (* call/return bookkeeping: non-sequential arrival is where a pending
       transfer lands *)
    if p.p_pending_call <> min_int && pending_live p then begin
      if p.p_depth < max_cct_depth then begin
        let child =
          match Hashtbl.find_opt p.p_cur.cc_children pc with
          | Some c -> c
          | None ->
              let c = new_cct pc in
              Hashtbl.add p.p_cur.cc_children pc c;
              c
        in
        p.p_stack <- { cf_node = p.p_cur; cf_ret = p.p_pending_call } :: p.p_stack;
        p.p_depth <- p.p_depth + 1;
        p.p_cur <- child
      end
    end
    else if p.p_pending_ret && pending_live p then begin
      (* pop to the frame expecting this return address; unwinding through
         intermediate frames handles tail-call escapes, and a return to an
         address no frame expects (e.g. a computed jump) pops nothing *)
      let rec unwind stack depth =
        match stack with
        | fr :: rest when fr.cf_ret = pc -> Some (fr.cf_node, rest, depth - 1)
        | _ :: rest -> unwind rest (depth - 1)
        | [] -> None
      in
      match unwind p.p_stack p.p_depth with
      | Some (node, rest, depth) ->
          p.p_cur <- node;
          p.p_stack <- rest;
          p.p_depth <- depth
      | None -> ()
    end;
    p.p_pending_call <- min_int;
    p.p_pending_ret <- false
  end;
  p.p_last_pc <- pc;
  let k = iclass_of insn in
  p.p_class_counts.(k) <- p.p_class_counts.(k) + 1;
  p.p_cur.cc_self <- p.p_cur.cc_self + 1;
  p.p_cur.cc_classes.(k) <- p.p_cur.cc_classes.(k) + 1;
  (* arm call/return tracking off the instruction just recorded: call and
     call-through-register (jmpl leaving the return address in %o7/%i7)
     push on landing; any other jmpl is a potential return *)
  match insn with
  | Insn.Call _ ->
      p.p_pending_call <- pc + 8;
      p.p_pending_at <- p.p_insns
  | Insn.Jmpl { rd; _ } ->
      if rd = 15 || rd = 31 then begin
        p.p_pending_call <- pc + 8;
        p.p_pending_at <- p.p_insns
      end
      else begin
        p.p_pending_ret <- true;
        p.p_pending_at <- p.p_insns
      end
  | _ -> ()

(** Times the block led by [pc] was entered via a control transfer (or
    program start); 0 for addresses only ever reached by fall-through. *)
let block_count p pc = Option.value ~default:0 (Hashtbl.find_opt p.p_block_counts pc)

(** Times the instruction at [pc] was executed. *)
let pc_count p pc = Option.value ~default:0 (Hashtbl.find_opt p.p_pc_counts pc)

let distinct_blocks p = Hashtbl.length p.p_block_counts

(** Dynamic memory-instruction count (loads + stores). *)
let mem_ops p = p.p_class_counts.(4) + p.p_class_counts.(5)

(** Dynamic store-instruction count. Each store instruction emits exactly
    one observable event, so under an equivalent verdict the edited run's
    store surplus must equal the contract's masked-store count — the
    ledger's zero-unexplained cross-check. *)
let store_ops p = p.p_class_counts.(5)

let load_ops p = p.p_class_counts.(4)

(** Dynamic instruction mix as [(class, count)] in {!iclass_names} order. *)
let class_mix p =
  Array.to_list (Array.mapi (fun i n -> (iclass_names.(i), n)) p.p_class_counts)

(** The calling-context tree recorded by {!profile_step}: root is the entry
    routine; children are keyed by callee entry pc. *)
let profile_cct p = p.p_root

(** [profile_hotspot ?name_of ?root ?prefix p] converts the calling-context
    tree into a named {!Eel_obs.Hotspot.t}: [name_of] renders a context's
    entry pc (default hex), [root] names the entry routine, and [prefix]
    frames (e.g. the program name) wrap the whole tree so many programs can
    merge into one flamegraph. *)
let profile_hotspot ?name_of ?(root = "<entry>") ?(prefix = []) p =
  let name_of =
    match name_of with Some f -> f | None -> Printf.sprintf "0x%x"
  in
  let h = Eel_obs.Hotspot.create ~classes:iclass_names () in
  let rec walk rev_stack node =
    if node.cc_self > 0 then
      Eel_obs.Hotspot.add h ~stack:(List.rev rev_stack)
        ~classes:node.cc_classes ~self:node.cc_self ();
    (* iteration order is irrelevant: Hotspot sums commute *)
    Hashtbl.iter
      (fun entry child -> walk (name_of entry :: rev_stack) child)
      node.cc_children
  in
  walk (root :: List.rev prefix) p.p_root;
  h

(** [publish_profile p] surfaces the profile in the {!Eel_obs.Metrics}
    registry under [<prefix>.*] so traces, tools and the benchmark harness
    read emulator ground truth from the same namespace as every other
    metric. *)
let publish_profile ?(prefix = "emu") p =
  let g name v =
    Eel_obs.Metrics.set
      (Eel_obs.Metrics.gauge (prefix ^ "." ^ name))
      (float_of_int v)
  in
  g "insns" p.p_insns;
  g "block_entries" p.p_block_entries;
  g "distinct_blocks" (distinct_blocks p);
  g "mem_ops" (p.p_class_counts.(4) + p.p_class_counts.(5));
  Array.iteri (fun i n -> g ("class." ^ iclass_names.(i)) n) p.p_class_counts

type t = {
  mem : Bytes.t;
  regs : int array;  (** 34 entries: 32 GPRs + icc + y *)
  mutable pc : int;
  mutable npc : int;
  mutable exited : int option;
  mutable ninsns : int;
  mutable nloads : int;
  mutable nstores : int;
  mutable brk : int;
  output : Buffer.t;
  mutable hook : (event -> unit) option;
  mutable obs : obs_log option;  (** observable-event sink; [None] = free *)
  mutable obs_filter : (obs_event -> bool) option;
      (** when installed, an event is recorded only if the filter returns
          [true]; rejected events are tallied in the log's filtered count.
          The equivalence oracle uses this to drop an edit contract's
          declared side effects at record time (spill traffic below the
          stack pointer can only be recognized while [sp] is live). *)
  mutable profile : profile option;
  mutable text_lo : int;
  mutable text_hi : int;
  code : Insn.t array;
      (** predecoded text segment, indexed by [(pc - code_lo) / 4]; [[||]]
          when predecoding is off (or the text geometry ruled it out).
          Kept coherent with [mem] by {!store_mem}: any store landing in
          the covered range re-decodes its word, so self-modifying code
          behaves exactly as the decode-per-step path. *)
  code_lo : int;  (** base address of [code]; meaningless when empty *)
  mutable pokes : poke list;
      (** pending environment faults, sorted by [pk_at]; see {!set_pokes} *)
  mutable alt_run : (int -> unit) option;
      (** alternate execution engine (the tier-2 block compiler installs
          itself here; see lib/emu/tier2.ml). {!run} dispatches to it with
          the fuel budget {e only} when no per-instruction hook, no
          profile and no poke plan is armed — those demand the
          interpreter's per-step visibility, so an armed one silently
          forces tier-1. The engine must leave [pc]/[npc]/[ninsns]
          materialized whenever it raises or returns, and must raise
          {!Fault} / {!Out_of_fuel} exactly as the interpreter would. *)
  mutable on_invalidate : (int -> unit) option;
      (** notified with the word-aligned address every time a store or
          poke lands in the predecoded text range ({!invalidate_code});
          the tier-2 code cache drops compiled blocks covering it. *)
  mutable trap_handler : (t -> int -> bool) option;
      (** optional OS layer (lib/os): consulted before the builtin [ta n]
          dispatch with the {e raw} trap number; returning [true] means the
          trap was handled (registers/memory/exit already updated and any
          {!Ob_syscall} event emitted), [false] falls through to the
          builtin convention. See {!set_trap_handler}. *)
}

(** A deterministic environment fault: when the machine has executed
    [pk_at] instructions, the 32-bit word at [pk_addr] is overwritten with
    [pk_value] — before the next instruction runs. Pokes model corruption
    arriving from {e outside} the program (the fault-injection campaign's
    image bit-flips and counter-skew attacks), so they are applied directly
    to memory: no observable event is recorded, no store count ticks. The
    predecoded code array {e is} kept coherent (a poke into text must
    change what executes, exactly like a program store would). A poke whose
    address is out of range or misaligned is dropped silently — a fault
    plan can never crash the machine. *)
and poke = { pk_at : int; pk_addr : int; pk_value : int }

(** Default extra space above the loaded image: heap + stack. *)
let default_headroom = 8 * 1024 * 1024

let stack_size = 1024 * 1024

(** Refuse to build images larger than this (a hostile section placed near
    the top of the 32-bit address space must fault, not drive [Bytes.make]
    into a multi-gigabyte allocation). *)
let max_image_bytes = 1024 * 1024 * 1024

(** Refuse to predecode text segments wider than this many words (16 MB of
    text). Hostile SEF geometry — a tiny text section at a huge vaddr next
    to one at a low vaddr — must not drive [Array.init] into a giant
    allocation; past the cap the emulator silently falls back to
    decode-per-step, which is always correct. *)
let max_predecode_words = 4 * 1024 * 1024

(** [load ?headroom ?predecode exe] builds a machine state with [exe]'s
    sections copied into a flat memory image, the stack pointer at the top
    of memory, and pc at the entry point. Raises {!Fault} when the image
    cannot be built: sections with negative geometry, contents shorter than
    the declared size, or an address space larger than {!max_image_bytes}.

    With [predecode] (the default) the text segment is decoded once into a
    dense instruction array so {!step} never calls [Insn.decode] on the hot
    path; [~predecode:false] keeps the decode-per-step behaviour (the
    benchmark harness measures one against the other). *)
let load ?(headroom = default_headroom) ?(predecode = true)
    (exe : Eel_sef.Sef.t) =
  let high = Eel_sef.Sef.high_addr exe in
  let size = high + headroom in
  if size < 0 || size > max_image_bytes then
    fault "image too large: sections end at 0x%x" high;
  let mem = Bytes.make size '\000' in
  List.iter
    (fun (s : Eel_sef.Sef.section) ->
      if s.sec_kind <> Eel_sef.Sef.Bss then (
        if s.vaddr < 0 || s.size < 0 || s.vaddr + s.size > size then
          fault "section %s does not fit the image: vaddr=0x%x size=%d"
            s.sec_name s.vaddr s.size;
        if Bytes.length s.contents < s.size then
          fault "section %s declares %d bytes but stores %d" s.sec_name s.size
            (Bytes.length s.contents);
        Bytes.blit s.contents 0 mem s.vaddr s.size))
    exe.sections;
  let regs = Array.make Regs.num_regs 0 in
  regs.(Regs.sp) <- W.mask (size - 64) land lnot 7;
  let text_lo, text_hi =
    match Eel_sef.Sef.text_sections exe with
    | [] -> (0, 0)
    | ss ->
        ( List.fold_left (fun a (s : Eel_sef.Sef.section) -> min a s.vaddr) max_int ss,
          List.fold_left
            (fun a (s : Eel_sef.Sef.section) -> max a (s.vaddr + s.size))
            0 ss )
  in
  let code =
    (* predecode only clean geometry: word-aligned base, inside the image,
       under the size cap; anything else falls back to decode-per-step *)
    if
      predecode && text_hi > text_lo
      && text_lo land 3 = 0
      && text_hi <= Bytes.length mem
      && (text_hi - text_lo) / 4 <= max_predecode_words
    then
      Array.init
        ((text_hi - text_lo) / 4)
        (fun i -> Insn.decode (Eel_util.Bytebuf.get32_be mem (text_lo + (i * 4))))
    else [||]
  in
  {
    mem;
    regs;
    pc = exe.entry;
    npc = exe.entry + 4;
    exited = None;
    ninsns = 0;
    nloads = 0;
    nstores = 0;
    brk = high;
    output = Buffer.create 256;
    hook = None;
    obs = None;
    obs_filter = None;
    profile = None;
    text_lo;
    text_hi;
    code;
    code_lo = text_lo;
    pokes = [];
    alt_run = None;
    on_invalidate = None;
    trap_handler = None;
  }

(** [set_obs t log] installs (or, with [None], removes) the observable-event
    sink. With no sink installed the interpreter loop performs a single
    [match] per potential event and allocates nothing. *)
let set_obs t log = t.obs <- log

(** [set_obs_filter t f] installs (or removes) the record-time event filter;
    it only matters while an observable-event sink is installed. *)
let set_obs_filter t f = t.obs_filter <- f

(** [set_profile t p] installs (or removes) a ground-truth profile sink,
    like {!run_exe}'s [?profile] but usable on an already-loaded machine. *)
let set_profile t p = t.profile <- p

let obs_of t = t.obs

(* route an event through the filter; callers guard on [t.obs] first so the
   no-sink path allocates nothing *)
let obs_emit t ev =
  match t.obs with
  | None -> ()
  | Some l -> (
      match t.obs_filter with
      | Some keep when not (keep ev) -> (
          l.ol_filtered <- l.ol_filtered + 1;
          match ev with
          | Ob_store _ -> l.ol_filtered_stores <- l.ol_filtered_stores + 1
          | Ob_trap _ -> l.ol_filtered_traps <- l.ol_filtered_traps + 1
          | Ob_syscall _ ->
              l.ol_filtered_syscalls <- l.ol_filtered_syscalls + 1
          | _ -> ())
      | _ -> obs_record l ev)

let reg t r = if r = Regs.g0 then 0 else t.regs.(r)

let set_reg t r v = if r <> Regs.g0 then t.regs.(r) <- W.mask v

let check_addr t addr width =
  if addr < 0 || addr + width > Bytes.length t.mem then
    fault "memory access out of range: addr=0x%x width=%d pc=0x%x" addr width t.pc;
  if addr land (min width 4 - 1) <> 0 then
    fault "misaligned %d-byte access at 0x%x (pc=0x%x)" width addr t.pc

let load_mem t addr width ~signed =
  check_addr t addr width;
  let byte i = Char.code (Bytes.get t.mem (addr + i)) in
  let v =
    match width with
    | 1 -> byte 0
    | 2 -> (byte 0 lsl 8) lor byte 1
    | 4 -> Eel_util.Bytebuf.get32_be t.mem addr
    | _ -> assert false
  in
  if signed then W.mask (W.sext (width * 8) v) else v

(* [check_addr] enforces natural alignment, so no store crosses a 4-byte
   boundary: a store touches exactly the word containing [addr], and
   re-decoding that one word keeps the predecoded array coherent. *)
let invalidate_code t addr =
  let idx = (addr - t.code_lo) asr 2 in
  if idx >= 0 && idx < Array.length t.code then begin
    let wa = t.code_lo + (idx lsl 2) in
    t.code.(idx) <- Insn.decode (Eel_util.Bytebuf.get32_be t.mem wa);
    match t.on_invalidate with None -> () | Some f -> f wa
  end

let store_mem t addr width v =
  check_addr t addr width;
  (match width with
  | 1 -> Bytes.set t.mem addr (Char.chr (v land 0xFF))
  | 2 ->
      Bytes.set t.mem addr (Char.chr ((v lsr 8) land 0xFF));
      Bytes.set t.mem (addr + 1) (Char.chr (v land 0xFF))
  | 4 -> Eel_util.Bytebuf.set32_be t.mem addr (W.mask v)
  | _ -> assert false);
  invalidate_code t addr

(** [set_pokes t ps] installs a fault plan (see {!poke}); the plan is
    consumed as {!run} reaches each poke's instruction count. Replaces any
    pending plan. *)
let set_pokes t ps =
  t.pokes <- List.stable_sort (fun a b -> compare a.pk_at b.pk_at) ps

(* drain every poke that has come due; bounds are checked here, not
   trusted, so a hostile plan degrades to a no-op instead of raising *)
let rec apply_pokes t =
  match t.pokes with
  | { pk_at; pk_addr; pk_value } :: rest when t.ninsns >= pk_at ->
      t.pokes <- rest;
      (* [addr <= len - 4], not [addr + 4 <= len]: the sum overflows for a
         hostile plan poking near max_int *)
      if pk_addr >= 0 && pk_addr <= Bytes.length t.mem - 4 && pk_addr land 3 = 0
      then (
        Eel_util.Bytebuf.set32_be t.mem pk_addr (W.mask pk_value);
        invalidate_code t pk_addr);
      apply_pokes t
  | _ -> ()

(** {1 Condition codes} *)

let icc_logic r =
  (if W.mask r land 0x8000_0000 <> 0 then 8 else 0) lor if W.mask r = 0 then 4 else 0

let icc_add a b r =
  let n = if r land 0x8000_0000 <> 0 then 8 else 0 in
  let z = if r = 0 then 4 else 0 in
  let v =
    if lnot (a lxor b) land (a lxor r) land 0x8000_0000 <> 0 then 2 else 0
  in
  let c = if a + b > 0xFFFF_FFFF then 1 else 0 in
  n lor z lor v lor c

let icc_sub a b r =
  let n = if r land 0x8000_0000 <> 0 then 8 else 0 in
  let z = if r = 0 then 4 else 0 in
  let v = if (a lxor b) land (a lxor r) land 0x8000_0000 <> 0 then 2 else 0 in
  let c = if a < b then 1 else 0 in
  n lor z lor v lor c

(** {1 System calls} *)

let builtin_syscall t num =
  (* trap and exit flow through the same observable-event constructor set
     as faults and fuel exhaustion; the match guard keeps the no-sink path
     allocation-free *)
  (match t.obs with
  | None -> ()
  | Some _ ->
      obs_emit t (Ob_trap { pc = t.pc; num; arg = reg t Regs.o0 });
      if num = 1 then
        obs_emit t (Ob_exit { pc = t.pc; code = reg t Regs.o0 land 0xFF }));
  match num with
  | 1 -> t.exited <- Some (reg t Regs.o0 land 0xFF)
  | 2 ->
      Buffer.add_string t.output (string_of_int (W.signed (reg t Regs.o0)));
      Buffer.add_char t.output '\n'
  | 3 -> Buffer.add_char t.output (Char.chr (reg t Regs.o0 land 0xFF))
  | 4 ->
      let addr = reg t Regs.o0 and len = reg t Regs.o1 in
      if addr < 0 || len < 0 || addr + len > Bytes.length t.mem then
        fault "write syscall out of range";
      Buffer.add_string t.output (Bytes.sub_string t.mem addr len)
  | 5 ->
      let nb = reg t Regs.o0 in
      if nb > t.brk && nb < Bytes.length t.mem - stack_size then t.brk <- nb;
      set_reg t Regs.o0 t.brk
  | 7 -> set_reg t Regs.o0 t.ninsns
  | n -> fault "unknown syscall %d at pc=0x%x" n t.pc

(* an installed OS-layer handler gets first refusal on every trap number;
   a [false] return falls through to the builtin convention above, so OS
   programs can still use e.g. [ta 2] (putint) for debugging output *)
let syscall t num =
  match t.trap_handler with
  | Some h when h t num -> ()
  | _ -> builtin_syscall t num

(** [set_trap_handler t h] installs (or, with [None], removes) an OS-layer
    trap handler (see {!type:t}'s [trap_handler]). *)
let set_trap_handler t h = t.trap_handler <- h

(** {1 Execution} *)

(* Fetch the instruction at [pc] (assumed word-aligned): a bounds-checked
   array read off the predecoded text, falling back to decode-per-step for
   addresses outside it (or when predecoding is off). The [unsafe_get] is
   guarded by the [idx] range check on the line above. *)
let fetch_insn t pc =
  let idx = (pc - t.code_lo) asr 2 in
  if idx >= 0 && idx < Array.length t.code then Array.unsafe_get t.code idx
  else begin
    if pc < 0 || pc + 4 > Bytes.length t.mem then fault "pc out of range 0x%x" pc;
    Insn.decode (Eel_util.Bytebuf.get32_be t.mem pc)
  end

(* Execute a fetched instruction at [pc] and advance pc/npc. *)
let exec_insn t pc insn =
  (* default successor state *)
  let next_pc = ref t.npc in
  let next_npc = ref (t.npc + 4) in
  (match insn with
  | Insn.Invalid w -> fault "illegal instruction 0x%08x at pc=0x%x" w pc
  | Insn.Unimp i -> fault "unimp 0x%x executed at pc=0x%x" i pc
  | Insn.Sethi { rd; imm22 } -> set_reg t rd (imm22 lsl 10)
  | Insn.Rdy { rd } -> set_reg t rd t.regs.(Regs.y)
  | Insn.Wry { rs1; op2 } ->
      let v2 = match op2 with Insn.O_imm i -> W.mask i | Insn.O_reg r -> reg t r in
      t.regs.(Regs.y) <- reg t rs1 lxor v2
  | Insn.Alu { op; rs1; op2; rd } -> (
      let a = reg t rs1 in
      let b = match op2 with Insn.O_imm i -> W.mask i | Insn.O_reg r -> reg t r in
      let set v = set_reg t rd v in
      let setcc v = t.regs.(Regs.icc) <- v in
      match op with
      | Insn.Add | Insn.Save | Insn.Restore -> set (W.add a b)
      | Insn.Sub -> set (W.sub a b)
      | Insn.And -> set (a land b)
      | Insn.Or -> set (a lor b)
      | Insn.Xor -> set (a lxor b)
      | Insn.Andn -> set (a land W.mask (lnot b))
      | Insn.Orn -> set (a lor W.mask (lnot b))
      | Insn.Xnor -> set (W.mask (lnot (a lxor b)))
      | Insn.Addcc ->
          let r = W.add a b in
          set r;
          setcc (icc_add a b r)
      | Insn.Subcc ->
          let r = W.sub a b in
          set r;
          setcc (icc_sub a b r)
      | Insn.Andcc ->
          let r = a land b in
          set r;
          setcc (icc_logic r)
      | Insn.Orcc ->
          let r = a lor b in
          set r;
          setcc (icc_logic r)
      | Insn.Xorcc ->
          let r = a lxor b in
          set r;
          setcc (icc_logic r)
      | Insn.Sll -> set (W.sll a b)
      | Insn.Srl -> set (W.srl a b)
      | Insn.Sra -> set (W.sra a b)
      | Insn.Umul ->
          let p = a * b in
          t.regs.(Regs.y) <- W.mask (p lsr 32);
          set (W.mask p)
      | Insn.Smul ->
          let p = W.signed a * W.signed b in
          t.regs.(Regs.y) <- p asr 32 land W.mask32;
          set (W.mask p)
      | Insn.Udiv ->
          if b = 0 then fault "division by zero at pc=0x%x" pc;
          let dividend = (t.regs.(Regs.y) lsl 32) lor a in
          set (W.mask (dividend / b))
      | Insn.Sdiv ->
          if b = 0 then fault "division by zero at pc=0x%x" pc;
          (* signed divide of Y:rs1; we use Y's sign as the dividend sign *)
          let hi = W.signed t.regs.(Regs.y) in
          let dividend = (hi * 4294967296) + a in
          set (W.of_signed (dividend / W.signed b)))
  | Insn.Bicc { cond; annul; disp22 } ->
      let target = W.add pc (disp22 * 4) in
      if cond = Insn.CA then
        if annul then (
          (* ba,a: delay slot annulled, jump immediately *)
          next_pc := target;
          next_npc := target + 4)
        else next_npc := target
      else if cond = Insn.CN then (
        if annul then (
          (* bn,a: skip the delay slot *)
          next_pc := t.npc + 4;
          next_npc := t.npc + 8))
      else if Insn.cond_eval cond t.regs.(Regs.icc) then next_npc := target
      else if annul then (
        (* untaken annulled conditional: squash delay slot *)
        next_pc := t.npc + 4;
        next_npc := t.npc + 8)
  | Insn.Call { disp30 } ->
      set_reg t Regs.o7 pc;
      next_npc := W.add pc (disp30 * 4)
  | Insn.Jmpl { rs1; op2; rd } ->
      let b = match op2 with Insn.O_imm i -> W.mask i | Insn.O_reg r -> reg t r in
      let target = W.add (reg t rs1) b in
      set_reg t rd pc;
      next_npc := target
  | Insn.Ticc { cond; rs1; op2 } ->
      let taken =
        cond = Insn.CA || Insn.cond_eval cond t.regs.(Regs.icc)
      in
      if taken then (
        let b = match op2 with Insn.O_imm i -> i | Insn.O_reg r -> reg t r in
        syscall t (reg t rs1 + b))
  | Insn.Mem { op; rs1; op2; rd } -> (
      let b = match op2 with Insn.O_imm i -> W.mask i | Insn.O_reg r -> reg t r in
      let addr = W.add (reg t rs1) b in
      let width = Insn.mem_width op in
      if Insn.mem_is_store op then (
        t.nstores <- t.nstores + 1;
        (match t.hook with
        | None -> ()
        | Some f -> f (Ev_store { pc; addr; width }));
        match t.obs with
        | None -> ()
        | Some _ -> obs_emit t (Ob_store { pc; addr; width; value = reg t rd }))
      else (
        t.nloads <- t.nloads + 1;
        match t.hook with
        | None -> ()
        | Some f -> f (Ev_load { pc; addr; width }));
      match op with
      | Insn.Ld -> set_reg t rd (load_mem t addr 4 ~signed:false)
      | Insn.Ldub -> set_reg t rd (load_mem t addr 1 ~signed:false)
      | Insn.Ldsb -> set_reg t rd (load_mem t addr 1 ~signed:true)
      | Insn.Lduh -> set_reg t rd (load_mem t addr 2 ~signed:false)
      | Insn.Ldsh -> set_reg t rd (load_mem t addr 2 ~signed:true)
      | Insn.Ldd ->
          (* SPARC: rd must be even; an odd pair would run past %r31 into
             the emulator's icc/y slots *)
          if rd land 1 <> 0 then fault "ldd with odd rd %%r%d at pc=0x%x" rd pc;
          set_reg t rd (load_mem t addr 4 ~signed:false);
          set_reg t (rd + 1) (load_mem t (addr + 4) 4 ~signed:false)
      | Insn.St -> store_mem t addr 4 (reg t rd)
      | Insn.Stb -> store_mem t addr 1 (reg t rd)
      | Insn.Sth -> store_mem t addr 2 (reg t rd)
      | Insn.Std ->
          if rd land 1 <> 0 then fault "std with odd rd %%r%d at pc=0x%x" rd pc;
          store_mem t addr 4 (reg t rd);
          store_mem t (addr + 4) 4 (reg t (rd + 1))));
  t.pc <- !next_pc;
  t.npc <- !next_npc

(** Execute a single instruction (at [t.pc]). *)
let step t =
  let pc = t.pc in
  if pc land 3 <> 0 then fault "misaligned pc 0x%x" pc;
  (* construct the event only when a hook is installed: neither the event
     record nor the word read may cost anything on the plain path *)
  (match t.hook with
  | None -> ()
  | Some f ->
      if pc < 0 || pc + 4 > Bytes.length t.mem then
        fault "pc out of range 0x%x" pc;
      f (Ev_exec { pc; word = Eel_util.Bytebuf.get32_be t.mem pc }));
  let insn = fetch_insn t pc in
  t.ninsns <- t.ninsns + 1;
  (match t.profile with None -> () | Some p -> profile_step p ~pc insn);
  exec_insn t pc insn

(* {!step} with the hook/profile option matches hoisted out: the inner loop
   for machines with neither installed (the common case for the fuzz and
   differential pipelines, which observe through the obs sink instead). *)
let step_plain t =
  let pc = t.pc in
  if pc land 3 <> 0 then fault "misaligned pc 0x%x" pc;
  let insn = fetch_insn t pc in
  t.ninsns <- t.ninsns + 1;
  exec_insn t pc insn

exception Out_of_fuel

type result = {
  exit_code : int;
  insns : int;
  loads : int;
  stores : int;
  out : string;
}

(** [run ?fuel t] executes until exit. Raises {!Fault} on machine faults and
    {!Out_of_fuel} after [fuel] instructions (default 200M). When an
    observable-event sink is installed, faults and fuel exhaustion are
    recorded in the log (as {!Ob_fault} / {!Ob_fuel}) before the exception
    propagates, so the log always carries the run's terminal event. *)
let run ?(fuel = 200_000_000) t =
  try
    (* dispatch once: the per-step hook/profile matches are paid only by
       machines that actually installed one *)
    (match (t.hook, t.profile) with
    | None, None when t.pokes = [] -> (
        (* an attached tier-2 engine takes over only here: hooks,
           profiles and poke plans need per-instruction interpretation *)
        match t.alt_run with
        | Some engine -> engine fuel
        | None ->
            while t.exited = None do
              if t.ninsns >= fuel then raise Out_of_fuel;
              step_plain t
            done)
    | None, None ->
        (* a fault plan is pending: same fast stepper, plus the due-poke
           check; once the plan drains the check is a single comparison *)
        while t.exited = None do
          if t.ninsns >= fuel then raise Out_of_fuel;
          if t.pokes <> [] then apply_pokes t;
          step_plain t
        done
    | _ ->
        while t.exited = None do
          if t.ninsns >= fuel then raise Out_of_fuel;
          if t.pokes <> [] then apply_pokes t;
          step t
        done);
    {
      exit_code = Option.get t.exited;
      insns = t.ninsns;
      loads = t.nloads;
      stores = t.nstores;
      out = Buffer.contents t.output;
    }
  with
  | Fault what as e ->
      (match t.obs with
      | None -> ()
      | Some l -> obs_record l (Ob_fault { pc = t.pc; what }));
      raise e
  | Out_of_fuel as e ->
      (match t.obs with
      | None -> ()
      | Some l -> obs_record l (Ob_fuel { pc = t.pc }));
      raise e

(** {1 Inquiry accessors (for the differential oracle)} *)

let output t = Buffer.contents t.output

let insns_executed t = t.ninsns

(** Current stack pointer — live machine state, for record-time filters
    that must recognize red-zone (below-sp) spill traffic. *)
let sp t = t.regs.(Regs.sp)

(** A copy of the register file (32 GPRs followed by icc and y). *)
let registers t = Array.copy t.regs

(** [run_exe ?fuel ?hook ?profile ?predecode exe] loads and runs an
    executable. [profile] collects ground-truth execution statistics (see
    {!profile}); when absent the per-instruction profiling cost is a single
    match. [~predecode:false] disables the predecoded fast path (see
    {!load}). *)
let run_exe ?fuel ?hook ?profile ?predecode exe =
  let t = Eel_obs.Trace.with_span "emu.load" (fun () -> load ?predecode exe) in
  t.hook <- hook;
  t.profile <- profile;
  let r = Eel_obs.Trace.with_span "emu.run" (fun () -> run ?fuel t) in
  (r, t)
