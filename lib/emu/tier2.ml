(** Tier-2 execution: hot basic blocks compiled to OCaml closures.

    The tier-1 interpreter ({!Emu.run}) dispatches one predecoded [Insn.t]
    at a time and re-materializes the full pc/npc machine after every
    instruction. This module adds a second tier in the style of a
    baseline JIT: straight-line basic blocks that the program enters often
    enough (a hotness threshold over non-sequential arrivals, the same
    notion of "block entry" as the ground-truth profile) are compiled once
    into a chain of OCaml closures, and compiled blocks link directly to
    their compiled successors, so steady-state execution never consults
    the decoder, the dispatch [match], or the pc/npc registers at all —
    those are materialized only at block boundaries.

    {2 Exactness and OSR deopt}

    The emulator is the repository's ground truth, so tier-2 must be
    {e indistinguishable} from tier-1: same registers, same memory, same
    observable events in the same order, same fault messages at the same
    instruction counts. Anything the straight-line code cannot reproduce
    exactly triggers an on-stack-replacement transfer back to the
    interpreter ("On-Stack Replacement à la Carte" is the playbook): the
    closure materializes pc/npc/ninsns at the current instruction
    boundary, raises {!Deopt}, and the interpreter replays from there.
    Deopt triggers:

    - {b faults} — a compiled memory access or division pre-checks its
      operands and deopts {e before} any side effect, so the interpreter
      replays the instruction and produces the exact fault message,
      [Ob_store]-before-[Ob_fault] event order, and counter values;
    - {b traps} — [Ticc] (syscalls, OS layer) is never compiled; the
      scanner cuts the block before it;
    - {b fuel} — a block is only entered when the remaining budget covers
      its worst-case length, so {!Emu.Out_of_fuel} always fires from the
      interpreter at the exact instruction, mid-block cutoffs included;
    - {b self-modifying code} — a store into the predecoded text range
      flows through {!Emu.invalidate_code} (keeping the tier-1 array
      coherent) and the {!Emu.t}'s [on_invalidate] hook kills every
      compiled block covering the word and unlinks it from its chain
      predecessors. A block that invalidates {e itself} completes the
      store — its effects are exactly tier-1's — and deopts at the next
      instruction boundary;
    - {b armed instrumentation} — per-instruction hooks, ground-truth
      profiles and poke plans need the interpreter; {!Emu.run} never
      dispatches to tier-2 while one is armed. Observable-event sinks
      ({!Emu.set_obs}) {e are} supported in compiled code: stores emit
      [Ob_store] from the closure with their static pc, after the fault
      pre-check, so the differential oracle can diff a tier-2 run against
      a tier-1 run event-for-event (and does, corpus-wide, in the tests).

    {2 Code cache}

    Compiled blocks are indexed by entry pc; a word-address cover map
    supports invalidation. Chaining installs direct [cblock] references in
    the taken/fall-through slots and records the back-edge, so a kill can
    sever every inbound chain in O(preds). Blocks never survive a store
    into their range — re-arrival recompiles from the fresh bytes. *)

open Eel_sparc
module W = Eel_util.Word

(** Raised (and caught inside {!run}) by compiled code after an OSR state
    transfer: pc/npc/ninsns are materialized and the interpreter takes
    over at that boundary. Never escapes this module. *)
exception Deopt

(** A compiled basic block: up to {!max_body} straight-line instructions
    plus an optional control-transfer terminator with its delay slot
    folded in at compile time. *)
type cblock = {
  cb_pc : int;  (** entry address *)
  cb_len : int;  (** worst-case dynamic instructions per execution *)
  cb_words : int;  (** text words covered (body + terminator + delay) *)
  cb_entry : unit -> int;
      (** run the block; returns the successor pc with pc/npc/ninsns
          already materialized (or raises {!Deopt} / never returns) *)
  mutable cb_taken : cblock option;  (** chained taken successor *)
  mutable cb_fall : cblock option;  (** chained fall-through successor *)
  mutable cb_preds : cblock list;  (** blocks chaining {e to} this one *)
  mutable cb_dead : bool;
}

(** Per-entry-pc compilation state. [Cold] counts non-sequential arrivals
    toward the hotness threshold; [Uncompilable] pins addresses whose
    leading instruction can never head a compiled block (e.g. a trap). *)
type cstate = Cold of int ref | Compiled of cblock | Uncompilable

type t = {
  t2_emu : Emu.t;
  t2_threshold : int;
  t2_entries : (int, cstate) Hashtbl.t;
  t2_cover : (int, cblock list ref) Hashtbl.t;
      (** word address -> compiled blocks whose range covers it *)
  t2_code_lo : int;
  t2_code_hi : int;  (** predecoded text range, hoisted from the machine *)
  mutable t2_next : int;
      (** successor pc resolved by a block terminator, read by a delay
          slot's OSR materializer (its npc is dynamic) *)
  mutable t2_exit : int;  (** 0 fall / 1 taken / 2 dynamic / 3 cut *)
  mutable t2_cur_pc : int;
      (** entry pc of the block currently executing, or [-1]; live blocks
          have unique entry pcs, so this identifies the block *)
  mutable t2_pending : bool;
      (** the current block invalidated itself; deopt at next boundary *)
  (* stats *)
  mutable t2_compiled : int;
  mutable t2_invalidated : int;
  mutable t2_links : int;
  mutable t2_unlinked : int;
  mutable t2_deopts : int;
  mutable t2_block_runs : int;
  mutable t2_interp_steps : int;
}

(** Longest compiled block body (straight-line instructions before the
    terminator). Generous: corpus blocks are far shorter. *)
let max_body = 64

(** Default hotness threshold: non-sequential arrivals at an entry pc
    before it is compiled. 2 skips one-shot straight-line code (startup)
    while catching every loop on its second iteration. *)
let default_threshold = 2

(* ------------------------------------------------------------------ *)
(* Block discovery                                                     *)
(* ------------------------------------------------------------------ *)

(* Instructions compilable in a block body (and in a delay slot): pure
   register/memory traffic. Control transfers are terminators; Ticc
   (traps/syscalls), Invalid and Unimp always run in the interpreter. *)
let body_ok = function
  | Insn.Sethi _ | Insn.Rdy _ | Insn.Wry _ | Insn.Alu _ -> true
  | Insn.Mem { op = Insn.Ldd | Insn.Std; rd; _ } -> rd land 1 = 0
  | Insn.Mem _ -> true
  | _ -> false

(* A block terminator with everything the compiler needs precomputed.
   [T_cut pc] ends the block before an uncompilable instruction (trap,
   invalid word, text-range end, length cap): the block falls back into
   the interpreter at [pc] with no control transfer of its own. *)
type term =
  | T_cut of int
  | T_bicc of { cond : Insn.cond; annul : bool; target : int; bpc : int; delay : Insn.t }
  | T_call of { target : int; bpc : int; delay : Insn.t }
  | T_jmpl of { rs1 : int; op2 : Insn.operand; rd : int; bpc : int; delay : Insn.t }

(* Scan a straight-line block starting at [pc] (word-aligned, inside the
   predecoded range). Returns the body instructions and the terminator,
   or [None] when the very first instruction is uncompilable. *)
let scan (m : Emu.t) pc =
  let code = m.Emu.code and code_lo = m.Emu.code_lo in
  let len = Array.length code in
  let idx0 = (pc - code_lo) asr 2 in
  let body = ref [] in
  let rec go i =
    if i >= len || i - idx0 >= max_body then T_cut (code_lo + (i lsl 2))
    else
      let bpc = code_lo + (i lsl 2) in
      match code.(i) with
      | Insn.Bicc { cond; annul; disp22 } when i + 1 < len && body_ok code.(i + 1)
        ->
          T_bicc { cond; annul; target = W.add bpc (disp22 * 4); bpc; delay = code.(i + 1) }
      | Insn.Call { disp30 } when i + 1 < len && body_ok code.(i + 1) ->
          T_call { target = W.add bpc (disp30 * 4); bpc; delay = code.(i + 1) }
      | Insn.Jmpl { rs1; op2; rd } when i + 1 < len && body_ok code.(i + 1) ->
          T_jmpl { rs1; op2; rd; bpc; delay = code.(i + 1) }
      | insn when body_ok insn ->
          body := insn :: !body;
          go (i + 1)
      | _ -> T_cut bpc
  in
  let term = go idx0 in
  let body = Array.of_list (List.rev !body) in
  match term with
  | T_cut _ when Array.length body = 0 -> None
  | _ -> Some (body, term)

(* ------------------------------------------------------------------ *)
(* OSR state transfer                                                  *)
(* ------------------------------------------------------------------ *)

(* Materialize the interpreter state at an instruction boundary and bail.
   [n] is the count of dynamic instructions the block has fully executed
   (they are the only effects applied so far). *)
let osr st ~pc ~npc ~n : 'a =
  let m = st.t2_emu in
  m.Emu.pc <- pc;
  m.Emu.npc <- npc;
  m.Emu.ninsns <- m.Emu.ninsns + n;
  st.t2_deopts <- st.t2_deopts + 1;
  raise Deopt

(* Terminator epilogue: materialize the block-boundary machine state and
   hand the successor pc to the chain driver. *)
let finish (m : Emu.t) n next =
  m.Emu.pc <- next;
  m.Emu.npc <- next + 4;
  m.Emu.ninsns <- m.Emu.ninsns + n;
  next

(* ------------------------------------------------------------------ *)
(* The instruction compiler                                            *)
(* ------------------------------------------------------------------ *)

(* Compile one straight-line instruction into a closure that applies its
   effects and tail-calls [k]. [pci] is the instruction's address, [n]
   how many dynamic instructions the block has consumed before it;
   [dslot] marks the folded delay slot, whose OSR npc is the resolved
   branch successor ([st.t2_next]) rather than [pci + 4].

   Exactness contract: a closure either applies ALL of the instruction's
   architectural effects and continues, or applies NONE and performs an
   OSR transfer at this instruction's boundary so the interpreter replays
   it — faults, event emission and counters then come out of tier-1 in
   tier-1's order. The one exception is a store that invalidates its own
   block: the store completes (its effects are exactly tier-1's, which
   does not deopt at all here) and the transfer happens at the NEXT
   boundary. *)
let compile_insn st ~pci ~n ~dslot insn k =
  let m = st.t2_emu in
  let regs = m.Emu.regs and mem = m.Emu.mem in
  let mem_len = Bytes.length mem in
  let code_lo = st.t2_code_lo and code_hi = st.t2_code_hi in
  (* register reads skip the %g0 special case: regs.(0) is invariantly 0
     (writes to rd=0 are compiled out below, and [Emu.set_reg] guards the
     interpreter's). Indices are 5-bit fields from the decoder, in range
     for the unsafe accessors. *)
  let deopt_before () =
    if dslot then osr st ~pc:pci ~npc:st.t2_next ~n
    else osr st ~pc:pci ~npc:(pci + 4) ~n
  in
  let deopt_after_store () =
    if dslot then
      let nx = st.t2_next in
      osr st ~pc:nx ~npc:(nx + 4) ~n:(n + 1)
    else osr st ~pc:(pci + 4) ~npc:(pci + 8) ~n:(n + 1)
  in
  (* a store that just landed in text: tier-1's array is already coherent
     ([Emu.invalidate_code] ran); kill covering blocks and, if one of
     them is the block being executed, deopt at the next boundary *)
  let text_store a =
    Emu.invalidate_code m a;
    if st.t2_pending then begin
      st.t2_pending <- false;
      deopt_after_store ()
    end
  in
  match insn with
  | Insn.Sethi { rd = 0; _ } -> k (* the canonical nop *)
  | Insn.Sethi { rd; imm22 } ->
      let v = imm22 lsl 10 in
      fun () ->
        Array.unsafe_set regs rd v;
        k ()
  | Insn.Rdy { rd } ->
      if rd = 0 then k
      else
        fun () ->
          Array.unsafe_set regs rd (Array.unsafe_get regs Regs.y);
          k ()
  | Insn.Wry { rs1; op2 } -> (
      match op2 with
      | Insn.O_imm i ->
          let b = W.mask i in
          fun () ->
            Array.unsafe_set regs Regs.y (Array.unsafe_get regs rs1 lxor b);
            k ()
      | Insn.O_reg r ->
          fun () ->
            Array.unsafe_set regs Regs.y
              (Array.unsafe_get regs rs1 lxor Array.unsafe_get regs r);
            k ())
  | Insn.Alu { op; rs1; op2; rd } -> (
      (* generic builders for the colder ops; the hot ones below get
         fully specialized closures (no indirect call per instruction) *)
      let pure f =
        match op2 with
        | Insn.O_imm i ->
            let b = W.mask i in
            if rd = 0 then k
            else
              fun () ->
                Array.unsafe_set regs rd (f (Array.unsafe_get regs rs1) b);
                k ()
        | Insn.O_reg r ->
            if rd = 0 then k
            else
              fun () ->
                Array.unsafe_set regs rd
                  (f (Array.unsafe_get regs rs1) (Array.unsafe_get regs r));
                k ()
      in
      let ccop f =
        (* f a b computes the result; icc derives from (a, b, result) *)
        let fin =
          match op with
          | Insn.Andcc | Insn.Orcc | Insn.Xorcc ->
              fun a b ->
                let r = f a b in
                if rd <> 0 then Array.unsafe_set regs rd r;
                Array.unsafe_set regs Regs.icc (Emu.icc_logic r)
          | Insn.Addcc ->
              fun a b ->
                let r = f a b in
                if rd <> 0 then Array.unsafe_set regs rd r;
                Array.unsafe_set regs Regs.icc (Emu.icc_add a b r)
          | _ ->
              fun a b ->
                let r = f a b in
                if rd <> 0 then Array.unsafe_set regs rd r;
                Array.unsafe_set regs Regs.icc (Emu.icc_sub a b r)
        in
        match op2 with
        | Insn.O_imm i ->
            let b = W.mask i in
            fun () ->
              fin (Array.unsafe_get regs rs1) b;
              k ()
        | Insn.O_reg r ->
            fun () ->
              fin (Array.unsafe_get regs rs1) (Array.unsafe_get regs r);
              k ()
      in
      match op with
      | Insn.Add | Insn.Save | Insn.Restore -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd
                    ((Array.unsafe_get regs rs1 + b) land 0xFFFF_FFFF);
                  k ()
          | Insn.O_reg r ->
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd
                    ((Array.unsafe_get regs rs1 + Array.unsafe_get regs r)
                    land 0xFFFF_FFFF);
                  k ())
      | Insn.Sub -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd
                    ((Array.unsafe_get regs rs1 - b) land 0xFFFF_FFFF);
                  k ()
          | Insn.O_reg r ->
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd
                    ((Array.unsafe_get regs rs1 - Array.unsafe_get regs r)
                    land 0xFFFF_FFFF);
                  k ())
      | Insn.Or -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd (Array.unsafe_get regs rs1 lor b);
                  k ()
          | Insn.O_reg r ->
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd
                    (Array.unsafe_get regs rs1 lor Array.unsafe_get regs r);
                  k ())
      | Insn.And -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd (Array.unsafe_get regs rs1 land b);
                  k ()
          | Insn.O_reg r ->
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd
                    (Array.unsafe_get regs rs1 land Array.unsafe_get regs r);
                  k ())
      | Insn.Xor -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd (Array.unsafe_get regs rs1 lxor b);
                  k ()
          | Insn.O_reg r ->
              if rd = 0 then k
              else
                fun () ->
                  Array.unsafe_set regs rd
                    (Array.unsafe_get regs rs1 lxor Array.unsafe_get regs r);
                  k ())
      | Insn.Subcc -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              if rd = 0 then
                fun () ->
                  let a = Array.unsafe_get regs rs1 in
                  Array.unsafe_set regs Regs.icc
                    (Emu.icc_sub a b ((a - b) land 0xFFFF_FFFF));
                  k ()
              else
                fun () ->
                  let a = Array.unsafe_get regs rs1 in
                  let r = (a - b) land 0xFFFF_FFFF in
                  Array.unsafe_set regs rd r;
                  Array.unsafe_set regs Regs.icc (Emu.icc_sub a b r);
                  k ()
          | Insn.O_reg rr ->
              if rd = 0 then
                fun () ->
                  let a = Array.unsafe_get regs rs1
                  and b = Array.unsafe_get regs rr in
                  Array.unsafe_set regs Regs.icc
                    (Emu.icc_sub a b ((a - b) land 0xFFFF_FFFF));
                  k ()
              else
                fun () ->
                  let a = Array.unsafe_get regs rs1
                  and b = Array.unsafe_get regs rr in
                  let r = (a - b) land 0xFFFF_FFFF in
                  Array.unsafe_set regs rd r;
                  Array.unsafe_set regs Regs.icc (Emu.icc_sub a b r);
                  k ())
      | Insn.Addcc -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              if rd = 0 then
                fun () ->
                  let a = Array.unsafe_get regs rs1 in
                  Array.unsafe_set regs Regs.icc
                    (Emu.icc_add a b ((a + b) land 0xFFFF_FFFF));
                  k ()
              else
                fun () ->
                  let a = Array.unsafe_get regs rs1 in
                  let r = (a + b) land 0xFFFF_FFFF in
                  Array.unsafe_set regs rd r;
                  Array.unsafe_set regs Regs.icc (Emu.icc_add a b r);
                  k ()
          | Insn.O_reg rr ->
              if rd = 0 then
                fun () ->
                  let a = Array.unsafe_get regs rs1
                  and b = Array.unsafe_get regs rr in
                  Array.unsafe_set regs Regs.icc
                    (Emu.icc_add a b ((a + b) land 0xFFFF_FFFF));
                  k ()
              else
                fun () ->
                  let a = Array.unsafe_get regs rs1
                  and b = Array.unsafe_get regs rr in
                  let r = (a + b) land 0xFFFF_FFFF in
                  Array.unsafe_set regs rd r;
                  Array.unsafe_set regs Regs.icc (Emu.icc_add a b r);
                  k ())
      | Insn.Sll -> pure (fun a b -> W.sll a b)
      | Insn.Srl -> pure (fun a b -> W.srl a b)
      | Insn.Sra -> pure (fun a b -> W.sra a b)
      | Insn.Andn -> pure (fun a b -> a land W.mask (lnot b))
      | Insn.Orn -> pure (fun a b -> a lor W.mask (lnot b))
      | Insn.Xnor -> pure (fun a b -> W.mask (lnot (a lxor b)))
      | Insn.Andcc -> ccop (fun a b -> a land b)
      | Insn.Orcc -> ccop (fun a b -> a lor b)
      | Insn.Xorcc -> ccop (fun a b -> a lxor b)
      | Insn.Umul ->
          (* replicate the interpreter's expressions verbatim (including
             its 63-bit overflow behaviour on huge products) *)
          let fin a b =
            let p = a * b in
            Array.unsafe_set regs Regs.y (W.mask (p lsr 32));
            if rd <> 0 then Array.unsafe_set regs rd (W.mask p)
          in
          (match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              fun () ->
                fin (Array.unsafe_get regs rs1) b;
                k ()
          | Insn.O_reg r ->
              fun () ->
                fin (Array.unsafe_get regs rs1) (Array.unsafe_get regs r);
                k ())
      | Insn.Smul ->
          let fin a b =
            let p = W.signed a * W.signed b in
            Array.unsafe_set regs Regs.y ((p asr 32) land W.mask32);
            if rd <> 0 then Array.unsafe_set regs rd (W.mask p)
          in
          (match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              fun () ->
                fin (Array.unsafe_get regs rs1) b;
                k ()
          | Insn.O_reg r ->
              fun () ->
                fin (Array.unsafe_get regs rs1) (Array.unsafe_get regs r);
                k ())
      | Insn.Udiv ->
          let fin a b =
            if b = 0 then deopt_before ();
            let dividend = (Array.unsafe_get regs Regs.y lsl 32) lor a in
            if rd <> 0 then Array.unsafe_set regs rd (W.mask (dividend / b))
          in
          (match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              fun () ->
                fin (Array.unsafe_get regs rs1) b;
                k ()
          | Insn.O_reg r ->
              fun () ->
                fin (Array.unsafe_get regs rs1) (Array.unsafe_get regs r);
                k ())
      | Insn.Sdiv ->
          let fin a b =
            if b = 0 then deopt_before ();
            let hi = W.signed (Array.unsafe_get regs Regs.y) in
            let dividend = (hi * 4294967296) + a in
            if rd <> 0 then
              Array.unsafe_set regs rd (W.of_signed (dividend / W.signed b))
          in
          (match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              fun () ->
                fin (Array.unsafe_get regs rs1) b;
                k ()
          | Insn.O_reg r ->
              fun () ->
                fin (Array.unsafe_get regs rs1) (Array.unsafe_get regs r);
                k ()))
  | Insn.Mem { op; rs1; op2; rd } -> (
      (* one Ob_store per store, before the memory write, value read with
         the %g0 convention — matching [Emu.exec_insn] exactly. Loads
         emit nothing (and hooks are never armed while tier-2 runs). *)
      let emit_store a width =
        match m.Emu.obs with
        | None -> ()
        | Some _ ->
            Emu.obs_emit m
              (Emu.Ob_store
                 { pc = pci; addr = a; width; value = Array.unsafe_get regs rd })
      in
      let addr_of =
        match op2 with
        | Insn.O_imm i ->
            let b = W.mask i in
            fun () -> (Array.unsafe_get regs rs1 + b) land 0xFFFF_FFFF
        | Insn.O_reg r ->
            fun () ->
              (Array.unsafe_get regs rs1 + Array.unsafe_get regs r)
              land 0xFFFF_FFFF
      in
      match op with
      | Insn.Ld -> (
          (* the hot one: specialize on the operand kind so the address
             computation is a single closure body with no inner call *)
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              fun () ->
                let a = (Array.unsafe_get regs rs1 + b) land 0xFFFF_FFFF in
                if a + 4 > mem_len || a land 3 <> 0 then deopt_before ();
                m.Emu.nloads <- m.Emu.nloads + 1;
                if rd <> 0 then
                  Array.unsafe_set regs rd (Eel_util.Bytebuf.get32_be mem a);
                k ()
          | Insn.O_reg r ->
              fun () ->
                let a =
                  (Array.unsafe_get regs rs1 + Array.unsafe_get regs r)
                  land 0xFFFF_FFFF
                in
                if a + 4 > mem_len || a land 3 <> 0 then deopt_before ();
                m.Emu.nloads <- m.Emu.nloads + 1;
                if rd <> 0 then
                  Array.unsafe_set regs rd (Eel_util.Bytebuf.get32_be mem a);
                k ())
      | Insn.Ldub ->
          fun () ->
            let a = addr_of () in
            if a >= mem_len then deopt_before ();
            m.Emu.nloads <- m.Emu.nloads + 1;
            if rd <> 0 then
              Array.unsafe_set regs rd (Char.code (Bytes.unsafe_get mem a));
            k ()
      | Insn.Ldsb ->
          fun () ->
            let a = addr_of () in
            if a >= mem_len then deopt_before ();
            m.Emu.nloads <- m.Emu.nloads + 1;
            if rd <> 0 then
              Array.unsafe_set regs rd
                (W.mask (W.sext 8 (Char.code (Bytes.unsafe_get mem a))));
            k ()
      | Insn.Lduh ->
          fun () ->
            let a = addr_of () in
            if a + 2 > mem_len || a land 1 <> 0 then deopt_before ();
            m.Emu.nloads <- m.Emu.nloads + 1;
            if rd <> 0 then
              Array.unsafe_set regs rd
                ((Char.code (Bytes.unsafe_get mem a) lsl 8)
                lor Char.code (Bytes.unsafe_get mem (a + 1)));
            k ()
      | Insn.Ldsh ->
          fun () ->
            let a = addr_of () in
            if a + 2 > mem_len || a land 1 <> 0 then deopt_before ();
            m.Emu.nloads <- m.Emu.nloads + 1;
            if rd <> 0 then
              Array.unsafe_set regs rd
                (W.mask
                   (W.sext 16
                      ((Char.code (Bytes.unsafe_get mem a) lsl 8)
                      lor Char.code (Bytes.unsafe_get mem (a + 1)))));
            k ()
      | Insn.Ldd ->
          (* both word accesses pre-checked: tier-1 faults on the second
             word only after writing rd, so a partial pair must replay *)
          fun () ->
            let a = addr_of () in
            if a + 8 > mem_len || a land 3 <> 0 then deopt_before ();
            m.Emu.nloads <- m.Emu.nloads + 1;
            if rd <> 0 then
              Array.unsafe_set regs rd (Eel_util.Bytebuf.get32_be mem a);
            Array.unsafe_set regs (rd + 1)
              (Eel_util.Bytebuf.get32_be mem (a + 4));
            k ()
      | Insn.St -> (
          match op2 with
          | Insn.O_imm i ->
              let b = W.mask i in
              fun () ->
                let a = (Array.unsafe_get regs rs1 + b) land 0xFFFF_FFFF in
                if a + 4 > mem_len || a land 3 <> 0 then deopt_before ();
                m.Emu.nstores <- m.Emu.nstores + 1;
                emit_store a 4;
                Eel_util.Bytebuf.set32_be mem a (Array.unsafe_get regs rd);
                if a >= code_lo && a < code_hi then text_store a;
                k ()
          | Insn.O_reg r ->
              fun () ->
                let a =
                  (Array.unsafe_get regs rs1 + Array.unsafe_get regs r)
                  land 0xFFFF_FFFF
                in
                if a + 4 > mem_len || a land 3 <> 0 then deopt_before ();
                m.Emu.nstores <- m.Emu.nstores + 1;
                emit_store a 4;
                Eel_util.Bytebuf.set32_be mem a (Array.unsafe_get regs rd);
                if a >= code_lo && a < code_hi then text_store a;
                k ())
      | Insn.Stb ->
          fun () ->
            let a = addr_of () in
            if a >= mem_len then deopt_before ();
            m.Emu.nstores <- m.Emu.nstores + 1;
            emit_store a 1;
            Bytes.unsafe_set mem a
              (Char.unsafe_chr (Array.unsafe_get regs rd land 0xFF));
            if a >= code_lo && a < code_hi then text_store a;
            k ()
      | Insn.Sth ->
          fun () ->
            let a = addr_of () in
            if a + 2 > mem_len || a land 1 <> 0 then deopt_before ();
            m.Emu.nstores <- m.Emu.nstores + 1;
            emit_store a 2;
            let v = Array.unsafe_get regs rd in
            Bytes.unsafe_set mem a (Char.unsafe_chr ((v lsr 8) land 0xFF));
            Bytes.unsafe_set mem (a + 1) (Char.unsafe_chr (v land 0xFF));
            if a >= code_lo && a < code_hi then text_store a;
            k ()
      | Insn.Std ->
          (* one event (width 8, value = the even register), both word
             writes, then a single pending-deopt check: the second write
             must land even when the first word invalidated this block *)
          fun () ->
            let a = addr_of () in
            if a + 8 > mem_len || a land 3 <> 0 then deopt_before ();
            m.Emu.nstores <- m.Emu.nstores + 1;
            emit_store a 8;
            Eel_util.Bytebuf.set32_be mem a (Array.unsafe_get regs rd);
            Eel_util.Bytebuf.set32_be mem (a + 4) (Array.unsafe_get regs (rd + 1));
            if a + 8 > code_lo && a < code_hi then begin
              if a >= code_lo && a < code_hi then Emu.invalidate_code m a;
              (let a4 = a + 4 in
               if a4 >= code_lo && a4 < code_hi then Emu.invalidate_code m a4);
              if st.t2_pending then begin
                st.t2_pending <- false;
                deopt_after_store ()
              end
            end;
            k ())
  | _ ->
      (* the scanner admits nothing else into a body or delay slot *)
      assert false

(* ------------------------------------------------------------------ *)
(* The block compiler                                                  *)
(* ------------------------------------------------------------------ *)

(* Compile the terminator (+ folded delay slot) into the block's tail
   closure. The terminator resolves the successor FIRST (so a deopting
   delay slot knows its npc via [st.t2_next]), then runs the delay
   closure, then materializes the boundary state via [finish]. *)
let compile_term st ~nb term =
  let m = st.t2_emu in
  let regs = m.Emu.regs in
  let delay_of d bpc = compile_insn st ~pci:(bpc + 4) ~n:(nb + 1) ~dslot:true d (fun () -> ()) in
  match term with
  | T_cut cut_pc ->
      fun () ->
        st.t2_exit <- 3;
        finish m nb cut_pc
  | T_bicc { cond; annul; target; bpc; delay } -> (
      let delay_k = delay_of delay bpc in
      let fall = bpc + 8 in
      match cond with
      | Insn.CA ->
          if annul then
            fun () ->
              st.t2_exit <- 1;
              finish m (nb + 1) target
          else
            fun () ->
              st.t2_exit <- 1;
              st.t2_next <- target;
              delay_k ();
              finish m (nb + 2) target
      | Insn.CN ->
          if annul then
            fun () ->
              st.t2_exit <- 0;
              finish m (nb + 1) fall
          else
            fun () ->
              st.t2_exit <- 0;
              st.t2_next <- fall;
              delay_k ();
              finish m (nb + 2) fall
      | _ ->
          if annul then
            fun () ->
              if Insn.cond_eval cond (Array.unsafe_get regs Regs.icc) then begin
                st.t2_exit <- 1;
                st.t2_next <- target;
                delay_k ();
                finish m (nb + 2) target
              end
              else begin
                st.t2_exit <- 0;
                finish m (nb + 1) fall
              end
          else
            fun () ->
              if Insn.cond_eval cond (Array.unsafe_get regs Regs.icc) then begin
                st.t2_exit <- 1;
                st.t2_next <- target;
                delay_k ();
                finish m (nb + 2) target
              end
              else begin
                st.t2_exit <- 0;
                st.t2_next <- fall;
                delay_k ();
                finish m (nb + 2) fall
              end)
  | T_call { target; bpc; delay } ->
      let delay_k = delay_of delay bpc in
      fun () ->
        Array.unsafe_set regs Regs.o7 bpc;
        st.t2_exit <- 1;
        st.t2_next <- target;
        delay_k ();
        finish m (nb + 2) target
  | T_jmpl { rs1; op2; rd; bpc; delay } -> (
      let delay_k = delay_of delay bpc in
      (* target latched from register values BEFORE the rd write and the
         delay slot, as in tier-1 (where next_npc is latched) *)
      match op2 with
      | Insn.O_imm i ->
          let b = W.mask i in
          if rd = 0 then
            fun () ->
              let target = (Array.unsafe_get regs rs1 + b) land 0xFFFF_FFFF in
              st.t2_exit <- 2;
              st.t2_next <- target;
              delay_k ();
              finish m (nb + 2) target
          else
            fun () ->
              let target = (Array.unsafe_get regs rs1 + b) land 0xFFFF_FFFF in
              Array.unsafe_set regs rd bpc;
              st.t2_exit <- 2;
              st.t2_next <- target;
              delay_k ();
              finish m (nb + 2) target
      | Insn.O_reg r ->
          if rd = 0 then
            fun () ->
              let target =
                (Array.unsafe_get regs rs1 + Array.unsafe_get regs r)
                land 0xFFFF_FFFF
              in
              st.t2_exit <- 2;
              st.t2_next <- target;
              delay_k ();
              finish m (nb + 2) target
          else
            fun () ->
              let target =
                (Array.unsafe_get regs rs1 + Array.unsafe_get regs r)
                land 0xFFFF_FFFF
              in
              Array.unsafe_set regs rd bpc;
              st.t2_exit <- 2;
              st.t2_next <- target;
              delay_k ();
              finish m (nb + 2) target)

let cover_add st wa cb =
  match Hashtbl.find_opt st.t2_cover wa with
  | Some l -> l := cb :: !l
  | None -> Hashtbl.add st.t2_cover wa (ref [ cb ])

(* Compile the block at [pc] and register it in the cache. [None] when
   the leading instruction cannot head a block. *)
let compile st pc =
  match scan st.t2_emu pc with
  | None -> None
  | Some (body, term) ->
      let nb = Array.length body in
      let words, len =
        match term with
        | T_cut _ -> (nb, nb)
        | _ -> (nb + 2, nb + 2)
      in
      let tail = compile_term st ~nb term in
      let entry = ref tail in
      for i = nb - 1 downto 0 do
        entry := compile_insn st ~pci:(pc + (i lsl 2)) ~n:i ~dslot:false body.(i) !entry
      done;
      let cb =
        {
          cb_pc = pc;
          cb_len = len;
          cb_words = words;
          cb_entry = !entry;
          cb_taken = None;
          cb_fall = None;
          cb_preds = [];
          cb_dead = false;
        }
      in
      for w = 0 to words - 1 do
        cover_add st (pc + (w lsl 2)) cb
      done;
      st.t2_compiled <- st.t2_compiled + 1;
      Hashtbl.replace st.t2_entries pc (Compiled cb);
      Some cb

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

let kill st cb =
  if not cb.cb_dead then begin
    cb.cb_dead <- true;
    st.t2_invalidated <- st.t2_invalidated + 1;
    (match Hashtbl.find_opt st.t2_entries cb.cb_pc with
    | Some (Compiled cb') when cb' == cb -> Hashtbl.remove st.t2_entries cb.cb_pc
    | _ -> ());
    for w = 0 to cb.cb_words - 1 do
      match Hashtbl.find_opt st.t2_cover (cb.cb_pc + (w lsl 2)) with
      | Some l -> l := List.filter (fun b -> b != cb) !l
      | None -> ()
    done;
    (* sever every inbound chain: a predecessor must re-resolve (and
       recompile) instead of jumping into stale code *)
    List.iter
      (fun p ->
        (match p.cb_taken with
        | Some b when b == cb ->
            p.cb_taken <- None;
            st.t2_unlinked <- st.t2_unlinked + 1
        | _ -> ());
        match p.cb_fall with
        | Some b when b == cb ->
            p.cb_fall <- None;
            st.t2_unlinked <- st.t2_unlinked + 1
        | _ -> ())
      cb.cb_preds;
    cb.cb_preds <- [];
    cb.cb_taken <- None;
    cb.cb_fall <- None;
    if cb.cb_pc = st.t2_cur_pc then st.t2_pending <- true
  end

(* [on_invalidate] hook: a store or poke re-decoded the word at [wa];
   every compiled block covering it is now stale. *)
let invalidate st wa =
  match Hashtbl.find_opt st.t2_cover wa with
  | None -> ()
  | Some l -> ( match !l with [] -> () | bs -> List.iter (kill st) bs)

(* ------------------------------------------------------------------ *)
(* Arrival resolution and the chain driver                             *)
(* ------------------------------------------------------------------ *)

type res = R_run of cblock | R_cold | R_uncomp | R_skip

(* A block entry is an arrival at a word-aligned, sequential-state pc
   inside the predecoded range. Bumps the hotness counter; compiles at
   the threshold. *)
let resolve st pc =
  let m = st.t2_emu in
  if pc land 3 <> 0 || m.Emu.npc <> pc + 4 || pc < st.t2_code_lo
     || pc >= st.t2_code_hi
  then R_skip
  else
    match Hashtbl.find_opt st.t2_entries pc with
    | Some (Compiled cb) -> R_run cb
    | Some Uncompilable -> R_uncomp
    | Some (Cold r) ->
        incr r;
        if !r >= st.t2_threshold then
          match compile st pc with
          | Some cb -> R_run cb
          | None ->
              Hashtbl.replace st.t2_entries pc Uncompilable;
              R_uncomp
        else R_cold
    | None ->
        if st.t2_threshold <= 1 then
          match compile st pc with
          | Some cb -> R_run cb
          | None ->
              Hashtbl.add st.t2_entries pc Uncompilable;
              R_uncomp
        else begin
          Hashtbl.add st.t2_entries pc (Cold (ref 1));
          R_cold
        end

(* Run [cb] and keep chaining while successors are compiled and the fuel
   budget covers their worst case. Chain slots are installed on the
   static taken/fall-through edges only; a dynamic (jmpl) successor is
   re-resolved every time. All recursive calls are tail calls. *)
let rec chain st fuel cb =
  let m = st.t2_emu in
  st.t2_block_runs <- st.t2_block_runs + 1;
  st.t2_cur_pc <- cb.cb_pc;
  match cb.cb_entry () with
  | exception Deopt -> st.t2_cur_pc <- -1
  | next -> (
      st.t2_cur_pc <- -1;
      match st.t2_exit with
      | 0 | 1 -> (
          let taken = st.t2_exit = 1 in
          match if taken then cb.cb_taken else cb.cb_fall with
          | Some nxt ->
              if fuel - m.Emu.ninsns >= nxt.cb_len then chain st fuel nxt
          | None -> (
              match resolve st next with
              | R_run nxt ->
                  if taken then cb.cb_taken <- Some nxt
                  else cb.cb_fall <- Some nxt;
                  nxt.cb_preds <- cb :: nxt.cb_preds;
                  st.t2_links <- st.t2_links + 1;
                  if fuel - m.Emu.ninsns >= nxt.cb_len then chain st fuel nxt
              | _ -> ()))
      | 2 -> (
          match resolve st next with
          | R_run nxt when fuel - m.Emu.ninsns >= nxt.cb_len ->
              chain st fuel nxt
          | _ -> ())
      | _ -> ())

(* The engine's outer loop ({!Emu.t}'s [alt_run]): interpret one
   instruction at a time, watching for block-entry arrivals; once an
   arrival is hot its compiled block (and everything chained behind it)
   runs without touching pc/npc. Fuel is enforced here and by the
   chain driver's worst-case entry gate, so {!Emu.Out_of_fuel} always
   fires from the interpreter loop at the exact cutoff. *)
let run st fuel =
  let m = st.t2_emu in
  (* the entry point is an arrival; thereafter any non-sequential pc is *)
  let arrival = ref true in
  while m.Emu.exited = None do
    if m.Emu.ninsns >= fuel then raise Emu.Out_of_fuel;
    let pc0 = m.Emu.pc in
    if !arrival then begin
      match resolve st pc0 with
      | R_run cb when fuel - m.Emu.ninsns >= cb.cb_len ->
          let d0 = st.t2_deopts in
          chain st fuel cb;
          (* chain exits at a block boundary: still an arrival. After an
             OSR transfer, though, the resumed pc must take at least one
             tier-1 step: a deopt-before cause (div-by-zero, a faulting
             access) would recur identically if the pc were re-resolved
             into a block whose leader is the deopting instruction. *)
          if st.t2_deopts > d0 && m.Emu.exited = None && m.Emu.ninsns < fuel
          then begin
            let p = m.Emu.pc in
            Emu.step_plain m;
            st.t2_interp_steps <- st.t2_interp_steps + 1;
            arrival := m.Emu.pc <> p + 4
          end
      | r ->
          Emu.step_plain m;
          st.t2_interp_steps <- st.t2_interp_steps + 1;
          (* after an uncompilable leader (a trap, say), the sequential
             successor is a fresh leader too — without this, the tail
             after every syscall would never tier up *)
          arrival :=
            m.Emu.pc <> pc0 + 4 || (match r with R_uncomp -> true | _ -> false)
    end
    else begin
      Emu.step_plain m;
      st.t2_interp_steps <- st.t2_interp_steps + 1;
      arrival := m.Emu.pc <> pc0 + 4
    end
  done

(* ------------------------------------------------------------------ *)
(* Attachment and inquiry                                              *)
(* ------------------------------------------------------------------ *)

(** [attach ?threshold m] installs the tier-2 engine on a loaded machine:
    {!Emu.run} will dispatch whole-run execution to it whenever no
    per-instruction instrumentation is armed, and every text invalidation
    is forwarded to the code cache. Returns [None] when the machine has
    no predecoded text (tier-2 rides on the predecode array). *)
let attach ?(threshold = default_threshold) (m : Emu.t) =
  if Array.length m.Emu.code = 0 then None
  else begin
    let st =
      {
        t2_emu = m;
        t2_threshold = max 1 threshold;
        t2_entries = Hashtbl.create 256;
        t2_cover = Hashtbl.create 1024;
        t2_code_lo = m.Emu.code_lo;
        t2_code_hi = m.Emu.code_lo + (Array.length m.Emu.code lsl 2);
        t2_next = 0;
        t2_exit = 0;
        t2_cur_pc = -1;
        t2_pending = false;
        t2_compiled = 0;
        t2_invalidated = 0;
        t2_links = 0;
        t2_unlinked = 0;
        t2_deopts = 0;
        t2_block_runs = 0;
        t2_interp_steps = 0;
      }
    in
    m.Emu.on_invalidate <- Some (invalidate st);
    m.Emu.alt_run <- Some (run st);
    Some st
  end

(** [detach m] removes any attached engine (the machine reverts to pure
    tier-1 interpretation). *)
let detach (m : Emu.t) =
  m.Emu.alt_run <- None;
  m.Emu.on_invalidate <- None

type stats = {
  st_compiled : int;  (** blocks compiled (lifetime) *)
  st_live : int;  (** compiled blocks currently in the cache *)
  st_invalidated : int;  (** blocks killed by stores/pokes into text *)
  st_links : int;  (** direct block-to-block chains installed *)
  st_unlinked : int;  (** chain slots severed by invalidation *)
  st_deopts : int;  (** OSR transfers back to the interpreter *)
  st_block_runs : int;  (** compiled block executions *)
  st_interp_steps : int;  (** instructions run in the tier-1 loop *)
}

let stats st =
  let live =
    Hashtbl.fold
      (fun _ s acc -> match s with Compiled _ -> acc + 1 | _ -> acc)
      st.t2_entries 0
  in
  {
    st_compiled = st.t2_compiled;
    st_live = live;
    st_invalidated = st.t2_invalidated;
    st_links = st.t2_links;
    st_unlinked = st.t2_unlinked;
    st_deopts = st.t2_deopts;
    st_block_runs = st.t2_block_runs;
    st_interp_steps = st.t2_interp_steps;
  }

let summary st =
  let s = stats st in
  Printf.sprintf
    "blocks=%d live=%d execs=%d links=%d deopts=%d invalidated=%d unlinked=%d interp-insns=%d"
    s.st_compiled s.st_live s.st_block_runs s.st_links s.st_deopts
    s.st_invalidated s.st_unlinked s.st_interp_steps

(* ------------------------------------------------------------------ *)
(* Tier selection (shared by the CLIs, the oracle and the bench)       *)
(* ------------------------------------------------------------------ *)

(** The three execution tiers. [Interp] decodes every step, [Predecode]
    dispatches the dense [Insn.t] array one instruction at a time,
    [Block] adds this module's compiled blocks on top of predecode. *)
type tier = Interp | Predecode | Block

let tier_name = function
  | Interp -> "interp"
  | Predecode -> "predecode"
  | Block -> "block"

let tier_of_string = function
  | "interp" -> Some Interp
  | "predecode" -> Some Predecode
  | "block" -> Some Block
  | _ -> None

let all_tiers = [ Interp; Predecode; Block ]
