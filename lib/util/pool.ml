(** A chunked domain pool: deterministic data-parallel [map] over OCaml 5
    domains.

    Every verification pipeline in this repository — the fuzz corpus, the
    differential oracle over the example programs, the contract sweeps in
    the benchmark harness — is a map of an expensive, independent job over
    an ordered work list. This module runs such maps across cores while
    keeping the {e observable result serial}: results come back indexed by
    job, so drivers that print or aggregate in job order produce
    byte-identical output whatever the domain count.

    Work is split into [jobs] contiguous chunks (chunk [k] covers items
    [n*k/jobs, n*(k+1)/jobs)); chunk 0 runs on the calling domain, the rest
    each on a freshly spawned domain. Contiguous chunking (rather than
    striding) matters for the join hooks below: merging worker state in
    chunk order reproduces the serial left-to-right order of side effects.

    The domain count defaults to [Domain.recommended_domain_count ()],
    overridable with the [EEL_JOBS] environment variable (and per call with
    [?jobs]). [EEL_JOBS=1] (or one core) degrades to a plain in-domain
    [Array.map] — no domains are spawned at all.

    {1 Join hooks}

    Jobs mutate per-domain ambient state — the {!Eel_obs.Metrics} registry
    and the [Eel.Stats] allocation counters are domain-local — and that
    state must survive the join. A hook registered with {!on_join} runs in
    each worker domain after its chunk finishes and returns a {e merge
    thunk}; the pool runs the merge thunks on the calling domain, in chunk
    order, before [map] returns. [Metrics] and [Stats] register their
    export/absorb pairs this way at start-up, so callers never thread
    registries by hand.

    Exceptions: a job that raises aborts the whole map — the worker's
    exception is re-raised on the calling domain by [Domain.join]. Jobs
    are expected to return errors as data (the never-crash convention). *)

(* Registered at module-init time (main domain), read-only afterwards:
   registration from inside a running pool is not supported. *)
let hooks : (unit -> unit -> unit) list ref = ref []

(** [on_join capture] registers a per-worker state capture. After a worker
    finishes its chunk, [capture ()] runs {e in the worker} and returns a
    thunk the pool runs {e in the caller} (in chunk order) to merge the
    worker's ambient state back. Call this only from module initializers. *)
let on_join f = hooks := !hooks @ [ f ]

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 && n <= 256 -> Some n
  | _ -> None

(** The [EEL_JOBS] override, when set and sane (1..256). *)
let env_jobs () = Option.bind (Sys.getenv_opt "EEL_JOBS") parse_jobs

(** {1 Cgroup CPU quota}

    In a container, [Domain.recommended_domain_count] reports the host's
    cores; a CI job pinned to 2 CPUs on a 64-core machine would spawn 64
    domains contending for 2 cores' worth of quota. When a cgroup CPU
    limit is visible, clamp to [ceil(quota / period)] — the number of
    cores the scheduler will actually grant. *)

(** [parse_cpu_max line] parses cgroup v2's [cpu.max] ("max 100000" or
    "25000 100000") into a core count, ceiling-divided so a fractional
    quota still gets one domain. *)
let parse_cpu_max line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "max"; _ ] | [ "max" ] -> None
  | quota :: period :: _ -> (
      match (int_of_string_opt quota, int_of_string_opt period) with
      | Some q, Some p when q > 0 && p > 0 -> Some ((q + p - 1) / p)
      | _ -> None)
  | _ -> None

(** [parse_cfs ~quota ~period] parses cgroup v1's [cpu.cfs_quota_us] /
    [cpu.cfs_period_us] pair ([-1] quota means unlimited). *)
let parse_cfs ~quota ~period =
  match (int_of_string_opt (String.trim quota), int_of_string_opt (String.trim period)) with
  | Some q, Some p when q > 0 && p > 0 -> Some ((q + p - 1) / p)
  | _ -> None

let read_line_of path =
  try
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    Some line
  with Sys_error _ -> None

let cgroup_quota () =
  match read_line_of "/sys/fs/cgroup/cpu.max" with
  | Some line -> parse_cpu_max line
  | None -> (
      match
        ( read_line_of "/sys/fs/cgroup/cpu/cpu.cfs_quota_us",
          read_line_of "/sys/fs/cgroup/cpu/cpu.cfs_period_us" )
      with
      | Some quota, Some period -> parse_cfs ~quota ~period
      | _ -> None)

(** [recommended_domain_count ()] — the runtime's recommendation clamped
    to the cgroup CPU quota when one is present, never less than 1. *)
let recommended_domain_count () =
  let n = max 1 (Domain.recommended_domain_count ()) in
  match cgroup_quota () with Some q -> max 1 (min n q) | None -> n

(** Domains a pool map will use by default: [EEL_JOBS] if set, otherwise
    {!recommended_domain_count}. *)
let default_jobs () =
  match env_jobs () with Some n -> n | None -> recommended_domain_count ()

(** [map ?jobs f items] — [Array.map f items] fanned out across domains.
    Results are in item order regardless of the domain count. *)
let map ?jobs f (items : 'a array) : 'b array =
  let n = Array.length items in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let w = min jobs n in
  if w <= 1 then Array.map f items
  else begin
    let bounds k = (n * k / w, n * (k + 1) / w) in
    let chunk k =
      let lo, hi = bounds k in
      Array.init (hi - lo) (fun i -> f items.(lo + i))
    in
    let work k () =
      let out = chunk k in
      (* capture per-domain ambient state while still on the worker *)
      let merges = List.map (fun capture -> capture ()) !hooks in
      (out, merges)
    in
    let domains = Array.init (w - 1) (fun k -> Domain.spawn (work (k + 1))) in
    (* chunk 0 runs here: its side effects land directly in the caller's
       ambient state, in serial order, before any worker merge. If it
       raises, every spawned domain is still joined first — no domain is
       left running past the map. *)
    let first = try Ok (chunk 0) with e -> Error e in
    let rest =
      Array.to_list
        (Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains)
    in
    let ok = function Ok v -> v | Error e -> raise e in
    let first = ok first in
    let rest = List.map ok rest in
    List.iter (fun (_, merges) -> List.iter (fun m -> m ()) merges) rest;
    Array.concat (first :: List.map fst rest)
  end

(** List version of {!map}; same ordering guarantee. *)
let map_list ?jobs f items =
  Array.to_list (map ?jobs f (Array.of_list items))
