(** SEF — the Simple Executable Format.

    SEF plays the role the paper assigns to Unix executable formats accessed
    through GNU bfd (§4): sections with virtual addresses, an entry point and
    a symbol table. Crucially for EEL, SEF symbol tables exhibit the same
    pathologies the paper's §3.1 analysis exists to repair: they may be
    incomplete (hidden routines), misleading (data tables in the text segment
    carrying function-looking symbols), polluted with temporary/debugging
    labels, or absent entirely (stripped executables).

    The on-disk encoding is a little-endian binary container; section
    contents are raw bytes (machine words inside text are big-endian, per
    SPARC convention). *)

open Eel_util
module Diag = Eel_robust.Diag

type sec_kind = Text | Data | Bss

type section = {
  sec_name : string;
  sec_kind : sec_kind;
  vaddr : int;
  size : int;  (** size in bytes; for [Bss] no contents are stored *)
  contents : bytes;  (** [Bytes.length contents = size] except for Bss *)
}

(** Symbol kinds, mirroring the zoo a real symbol table contains. [Label]
    and [Debug] entries are the "duplicate, temporary, and debugging labels"
    that EEL's stage-1 refinement discards. *)
type sym_kind = Func | Object | Label | Debug

type symbol = {
  sym_name : string;
  value : int;
  sym_size : int;  (** 0 when unknown *)
  kind : sym_kind;
  global : bool;
}

type t = { entry : int; sections : section list; symbols : symbol list }

let magic = "SEF1"

(** {1 Construction and inquiry} *)

let create ~entry ~sections ~symbols = { entry; sections; symbols }

let find_section t name =
  List.find_opt (fun s -> s.sec_name = name) t.sections

let text_sections t = List.filter (fun s -> s.sec_kind = Text) t.sections

(** [section_at t addr] finds the section whose address range contains
    [addr]. *)
let section_at t addr =
  List.find_opt (fun s -> addr >= s.vaddr && addr < s.vaddr + s.size) t.sections

(** [fetch32 t addr] reads the big-endian machine word at [addr], if [addr]
    lies within a non-bss section. *)
let fetch32 t addr =
  match section_at t addr with
  | Some s when s.sec_kind <> Bss && addr + 4 <= s.vaddr + s.size ->
      Some (Bytebuf.get32_be s.contents (addr - s.vaddr))
  | _ -> None

(** [patch32 t addr v] overwrites the word at [addr] in place. Returns
    [false] when the address is outside every stored section. *)
let patch32 t addr v =
  match section_at t addr with
  | Some s when s.sec_kind <> Bss && addr + 4 <= s.vaddr + s.size ->
      Bytebuf.set32_be s.contents (addr - s.vaddr) v;
      true
  | _ -> false

(** [strip t] removes the entire symbol table, producing the stripped
    executables of paper §3.1 stage 2. *)
let strip t = { t with symbols = [] }

(** Address of the end of the highest section. *)
let high_addr t =
  List.fold_left (fun a s -> max a (s.vaddr + s.size)) 0 t.sections

(** {1 Serialization} *)

let sec_kind_code = function Text -> 0 | Data -> 1 | Bss -> 2

let sec_kind_of_code ~offset = function
  | 0 -> Text
  | 1 -> Data
  | 2 -> Bss
  | n -> Diag.sef_error ~loc:(Diag.at_offset offset) "bad section kind %d" n

let sym_kind_code = function Func -> 0 | Object -> 1 | Label -> 2 | Debug -> 3

let sym_kind_of_code ~offset = function
  | 0 -> Func
  | 1 -> Object
  | 2 -> Label
  | 3 -> Debug
  | n -> Diag.sef_error ~loc:(Diag.at_offset offset) "bad symbol kind %d" n

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Bytebuf.w32 buf t.entry;
  Bytebuf.w32 buf (List.length t.sections);
  List.iter
    (fun s ->
      Bytebuf.wstr buf s.sec_name;
      Bytebuf.w8 buf (sec_kind_code s.sec_kind);
      Bytebuf.w32 buf s.vaddr;
      Bytebuf.w32 buf s.size;
      if s.sec_kind <> Bss then Bytebuf.wbytes buf s.contents)
    t.sections;
  Bytebuf.w32 buf (List.length t.symbols);
  List.iter
    (fun s ->
      Bytebuf.wstr buf s.sym_name;
      Bytebuf.w32 buf s.value;
      Bytebuf.w32 buf s.sym_size;
      Bytebuf.w8 buf (sym_kind_code s.kind);
      Bytebuf.w8 buf (if s.global then 1 else 0))
    t.symbols;
  Buffer.contents buf

(** {2 Parsing}

    [parse] decodes the container, raising {!Diag.Error} on structural
    damage. Anything recoverable (trailing bytes, suspicious metadata) goes
    to the diagnostics sink instead. *)

(** Addresses are 32-bit: every [vaddr .. vaddr+size) range must fit. *)
let max_addr = 0x1_0000_0000

let parse ?diag src =
  let r = Bytebuf.reader src in
  let m = Bytes.to_string (Bytebuf.rbytes r 4) in
  if m <> magic then
    Diag.sef_error ~loc:(Diag.at_offset 0) "bad magic %S (expected %S)" m magic;
  let entry = Bytebuf.r32 r in
  let nsec = Bytebuf.r32 r in
  (* a section costs at least 13 bytes on disk: an empty name (2), kind (1),
     vaddr (4) and size (4) make 11, plus the count word amortized — use a
     conservative floor to reject absurd counts before looping *)
  if nsec > String.length src then
    Diag.sef_error ~loc:(Diag.at_offset 8) "implausible section count %d" nsec;
  let sections =
    List.init nsec (fun _ ->
        let sec_name = Bytebuf.rstr r in
        let kind_off = r.Bytebuf.pos in
        let sec_kind = sec_kind_of_code ~offset:kind_off (Bytebuf.r8 r) in
        let vaddr = Bytebuf.r32 r in
        let size = Bytebuf.r32 r in
        let contents =
          if sec_kind = Bss then Bytes.empty else Bytebuf.rbytes r size
        in
        { sec_name; sec_kind; vaddr; size; contents })
  in
  let nsym_off = r.Bytebuf.pos in
  let nsym = Bytebuf.r32 r in
  if nsym > String.length src then
    Diag.sef_error ~loc:(Diag.at_offset nsym_off) "implausible symbol count %d" nsym;
  let symbols =
    List.init nsym (fun _ ->
        let sym_name = Bytebuf.rstr r in
        let value = Bytebuf.r32 r in
        let sym_size = Bytebuf.r32 r in
        let kind_off = r.Bytebuf.pos in
        let kind = sym_kind_of_code ~offset:kind_off (Bytebuf.r8 r) in
        let global = Bytebuf.r8 r = 1 in
        { sym_name; value; sym_size; kind; global })
  in
  if not (Bytebuf.eof r) then
    Diag.report diag Diag.Warn ~source:"sef" ~loc:(Diag.at_offset r.Bytebuf.pos)
      "%d trailing byte(s) after the symbol table"
      (String.length src - r.Bytebuf.pos);
  { entry; sections; symbols }

(** {2 Validation}

    [validate_exn] checks a (parsed or programmatically built) image for the
    invariants the rest of the pipeline relies on. Violations that would
    make later stages crash — size/contents mismatches, overflowing address
    ranges — are hard errors; merely suspicious structure (overlapping
    sections, dangling or misaligned symbols, a missing text section) is
    reported as warnings, because paper §3.1's whole point is to analyze
    such executables anyway. *)

let validate_exn ?diag t =
  let warn ?loc fmt = Diag.report diag Diag.Warn ~source:"sef" ?loc fmt in
  List.iter
    (fun s ->
      if s.size < 0 then
        Diag.sef_error ~loc:(Diag.at_addr s.vaddr) "section %s has negative size %d"
          s.sec_name s.size;
      if s.vaddr < 0 || s.vaddr + s.size > max_addr then
        Diag.sef_error "section %s range 0x%x+0x%x overflows the 32-bit address space"
          s.sec_name s.vaddr s.size;
      if s.sec_kind <> Bss && Bytes.length s.contents <> s.size then
        Diag.sef_error ~loc:(Diag.at_addr s.vaddr)
          "section %s declares %d bytes but stores %d" s.sec_name s.size
          (Bytes.length s.contents))
    t.sections;
  if t.entry < 0 || t.entry >= max_addr then
    Diag.sef_error "entry point 0x%x outside the 32-bit address space" t.entry;
  (* overlap: sort by vaddr and compare neighbours *)
  let sorted =
    List.sort (fun a b -> compare (a.vaddr, a.size) (b.vaddr, b.size)) t.sections
  in
  let rec check_overlap = function
    | a :: (b :: _ as rest) ->
        if a.vaddr + a.size > b.vaddr then
          warn ~loc:(Diag.at_addr b.vaddr) "sections %s and %s overlap" a.sec_name
            b.sec_name;
        check_overlap rest
    | _ -> []
  in
  ignore (check_overlap sorted);
  if not (List.exists (fun s -> s.sec_kind = Text) t.sections) then
    warn "no text section";
  (match section_at t t.entry with
  | Some s when s.sec_kind = Text ->
      if t.entry land 3 <> 0 then
        warn ~loc:(Diag.at_addr t.entry) "entry point 0x%x is misaligned" t.entry
  | Some s ->
      warn ~loc:(Diag.at_addr t.entry) "entry point 0x%x lies in non-text section %s"
        t.entry s.sec_name
  | None -> warn ~loc:(Diag.at_addr t.entry) "entry point 0x%x maps to no section" t.entry);
  (* symbol pathologies: cap the per-symbol reports so a mutant with a
     thousand bogus symbols cannot blow up the sink *)
  let reported = ref 0 in
  let cap = 16 in
  let sym_warn loc fmt =
    Printf.ksprintf
      (fun msg ->
        incr reported;
        if !reported <= cap then warn ~loc "%s" msg)
      fmt
  in
  List.iter
    (fun s ->
      match section_at t s.value with
      | None -> sym_warn (Diag.at_addr s.value) "symbol %s dangles at 0x%x" s.sym_name s.value
      | Some sec ->
          if sec.sec_kind = Text && s.value land 3 <> 0 then
            sym_warn (Diag.at_addr s.value)
              "symbol %s at 0x%x is not on an instruction boundary" s.sym_name
              s.value)
    t.symbols;
  if !reported > cap then
    warn "%d further symbol problems suppressed" (!reported - cap)

(** {2 Loading}

    [load] is the [Result]-returning front door: parse, then validate, then
    (in strict mode, or with a strict sink) refuse inputs that produced
    error-severity diagnostics. [of_string] is the historical exception shim
    over the same pipeline. *)

let load ?(strict = false) ?diag src =
  let sink = match diag with Some s -> s | None -> Diag.create ~strict () in
  Eel_obs.Trace.with_span "sef.load"
    ~args:[ ("bytes", string_of_int (String.length src)) ]
    (fun () ->
      Diag.guard (fun () ->
          let t = parse ~diag:sink src in
          validate_exn ~diag:sink t;
          if Diag.has_errors sink then
            Diag.sef_error "input rejected: %d error(s) recorded during load"
              (Diag.errors sink);
          t))

let of_string src =
  match load src with Ok t -> t | Error e -> raise (Diag.Error e)

let write_file path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let load_file ?strict ?diag path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m ->
      Error (Diag.Sef_error { what = m; loc = Diag.in_file path })
  | exception End_of_file ->
      Error (Diag.Sef_error { what = "unexpected end of file"; loc = Diag.in_file path })
  | s -> load ?strict ?diag s

let read_file path =
  match load_file path with Ok t -> t | Error e -> raise (Diag.Error e)

(** Total bytes of text and data contents — the "program size" reported in
    Table 1. *)
let image_size t =
  List.fold_left
    (fun acc s -> if s.sec_kind = Bss then acc else acc + s.size)
    0 t.sections

let pp fmt t =
  Format.fprintf fmt "entry=%a@\n" Word.pp t.entry;
  List.iter
    (fun s ->
      Format.fprintf fmt "section %-10s %s vaddr=%a size=%d@\n" s.sec_name
        (match s.sec_kind with Text -> "text" | Data -> "data" | Bss -> "bss")
        Word.pp s.vaddr s.size)
    t.sections;
  Format.fprintf fmt "%d symbols@\n" (List.length t.symbols)
