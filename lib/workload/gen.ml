(** Synthetic workload generator.

    The paper evaluates EEL on SPEC92 binaries compiled by gcc 2.6.2 (SunOS)
    and SunPro sc3.0.1 (Solaris). This generator is the repository's
    substitute (DESIGN.md): it emits deterministic, seeded assembly programs
    exhibiting the code idioms those compilers produced, so that the
    evaluation statistics (indirect-jump analyzability, uneditable-edge
    fraction, CFG block mix) are driven by the same {e shapes} of code:

    - loops with delayed and annulled loop branches;
    - if/else chains, including annulled-branch variants;
    - case statements dispatching through address tables (in [.data] or in
      the {e text} segment, where they double as data-vs-code tests);
    - call DAGs with callee-saved register discipline and return-address
      spills (delay slots after calls are the dominant uneditable blocks);
    - [Sunpro] style adds the tail-call idiom that produced all 138
      unanalyzable indirect jumps in the paper's Solaris measurement: the
      callee's address is loaded from memory and jumped through, with the
      target outside the jumping routine;
    - optional symbol-table pathologies: hidden routines reached through
      function pointers, data tables in text with misleading [Func] symbols,
      interprocedural jumps creating multiple entry points, and
      debug/internal label pollution (§3.1 stages 1–4).

    Programs print a checksum, so an edited executable's correctness is
    checked by comparing output — not just by not crashing. *)

type style = Gcc | Sunpro

type config = {
  seed : int;
  routines : int;  (** number of synthetic leaf/interior routines *)
  style : style;
  case_frac : float;  (** fraction of routines containing a case dispatch *)
  loop_frac : float;
  call_frac : float;
  mem_frac : float;
  hidden_routines : int;  (** routines reachable only via function pointers *)
  data_tables_in_text : int;  (** jump tables placed in the text segment *)
  multi_entry : int;  (** routines with an extra, jumped-to entry point *)
  pathological_symbols : bool;  (** debug/internal label pollution *)
  body_stmts : int * int;  (** min/max statements per routine body *)
  tail_frac : float;  (** [Sunpro] tail-call idiom probability *)
}

let default =
  {
    seed = 42;
    routines = 20;
    style = Gcc;
    case_frac = 0.45;
    loop_frac = 0.7;
    call_frac = 0.5;
    mem_frac = 0.5;
    hidden_routines = 1;
    data_tables_in_text = 1;
    multi_entry = 1;
    pathological_symbols = true;
    body_stmts = (6, 14);
    tail_frac = 0.06;
  }

type ctx = {
  rng : Random.State.t;
  buf : Buffer.t;
  data : Buffer.t;  (** .data section items *)
  mutable label : int;
  cfg : config;
}

let line ctx fmt = Printf.ksprintf (fun s -> Buffer.add_string ctx.buf (s ^ "\n")) fmt

let dline ctx fmt =
  Printf.ksprintf (fun s -> Buffer.add_string ctx.data (s ^ "\n")) fmt

let fresh ctx prefix =
  ctx.label <- ctx.label + 1;
  Printf.sprintf "L%s%d" prefix ctx.label

let rnd ctx n = Random.State.int ctx.rng n

let prob ctx p = Random.State.float ctx.rng 1.0 < p

(* locals: %l0..%l3 hold routine state; %l0 is the accumulator *)
let locals = [| "%l0"; "%l1"; "%l2"; "%l3" |]

let local ctx = locals.(rnd ctx 4)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let stmt_arith ctx =
  let ops = [| "add"; "sub"; "xor"; "and"; "or" |] in
  let op = ops.(rnd ctx (Array.length ops)) in
  let d = local ctx in
  match rnd ctx 3 with
  | 0 -> line ctx "        %s %s, %d, %s" op d (1 + rnd ctx 3000) d
  | 1 -> line ctx "        %s %s, %s, %s" op (local ctx) (local ctx) d
  | _ ->
      line ctx "        sll %s, %d, %s" (local ctx) (1 + rnd ctx 3) d;
      line ctx "        srl %s, %d, %s" d (1 + rnd ctx 2) d

let stmt_loop ctx body =
  let l = fresh ctx "loop" in
  let n = 2 + rnd ctx 6 in
  let counter = "%l4" in
  line ctx "        mov %d, %s" n counter;
  line ctx "%s:" l;
  body ();
  line ctx "        subcc %s, 1, %s" counter counter;
  if prob ctx 0.4 then (
    (* annulled loop branch: the delay instruction executes only when the
       branch is taken (one more iteration) — classic SPARC loop shape *)
    line ctx "        bne,a %s" l;
    line ctx "        add %%l0, 1, %%l0")
  else (
    line ctx "        bne %s" l;
    line ctx "        nop")

let stmt_if ctx =
  let lelse = fresh ctx "else" and lend = fresh ctx "fi" in
  line ctx "        cmp %s, %d" (local ctx) (rnd ctx 500);
  let conds = [| "be"; "bne"; "bg"; "ble"; "bgu"; "bcs" |] in
  let c = conds.(rnd ctx (Array.length conds)) in
  if prob ctx 0.3 then (
    (* annulled if: skip one instruction when untaken *)
    line ctx "        %s,a %s" c lend;
    line ctx "        add %%l1, 3, %%l1")
  else (
    line ctx "        %s %s" c lelse;
    line ctx "        nop";
    stmt_arith ctx;
    line ctx "        ba %s" lend;
    line ctx "        nop";
    line ctx "%s:" lelse;
    stmt_arith ctx);
  line ctx "%s:" lend

let stmt_case ctx ~in_text =
  let k = [| 2; 4; 8 |].(rnd ctx 3) in
  let tab = fresh ctx "tab" in
  let arms = List.init k (fun _ -> fresh ctx "case") in
  let lend = fresh ctx "esac" in
  line ctx "        and %%l0, %d, %%l5" (k - 1);
  line ctx "        sll %%l5, 2, %%l5";
  line ctx "        set %s, %%l6" tab;
  line ctx "        ld [%%l6 + %%l5], %%l6";
  line ctx "        jmp %%l6";
  line ctx "        nop";
  List.iteri
    (fun i arm ->
      line ctx "%s:" arm;
      line ctx "        add %%l0, %d, %%l0" (i + 1);
      line ctx "        ba %s" lend;
      line ctx "        nop")
    arms;
  line ctx "%s:" lend;
  let words = String.concat ", " arms in
  if in_text then (
    (* dispatch table in the text segment: data-vs-code discrimination *)
    line ctx "        .align 4";
    (* place it after the routine body via a skip *)
    let skip = fresh ctx "skip" in
    line ctx "        ba %s" skip;
    line ctx "        nop";
    line ctx "%s: .word %s" tab words;
    line ctx "%s:" skip)
  else (
    dline ctx "        .align 4";
    dline ctx "%s: .word %s" tab words)

let stmt_mem ctx =
  let idx = rnd ctx 64 * 4 in
  (match rnd ctx 3 with
  | 0 ->
      line ctx "        set gbuf, %%l5";
      line ctx "        st %s, [%%l5 + %d]" (local ctx) idx;
      line ctx "        ld [%%l5 + %d], %s" idx (local ctx)
  | 1 ->
      line ctx "        set gbuf, %%l5";
      line ctx "        stb %s, [%%l5 + %d]" (local ctx) (idx + 1);
      line ctx "        ldub [%%l5 + %d], %s" (idx + 1) (local ctx)
  | _ ->
      line ctx "        set gbuf, %%l5";
      line ctx "        sth %s, [%%l5 + %d]" (local ctx) (idx + 2);
      line ctx "        ldsh [%%l5 + %d], %s" (idx + 2) (local ctx))

let stmt_call ctx callee =
  line ctx "        mov %%l0, %%o0";
  if prob ctx 0.5 then (
    line ctx "        call %s" callee;
    line ctx "        nop")
  else (
    (* useful work in the call's delay slot *)
    line ctx "        call %s" callee;
    line ctx "        add %%o0, 1, %%o0");
  line ctx "        xor %%l0, %%o0, %%l0"

(* ------------------------------------------------------------------ *)
(* Routines                                                            *)
(* ------------------------------------------------------------------ *)

let fn_name i = Printf.sprintf "fn%d" i

(* frame: [%sp] = %o7, [%sp+4..] = saved %l0-%l6, 32 bytes total + pad *)
let frame_size = 48

let routine_body ctx ~idx ~name ~callees =
  line ctx "%s:" name;
  line ctx "        sub %%sp, %d, %%sp" frame_size;
  line ctx "        st %%o7, [%%sp]";
  for k = 0 to 6 do
    line ctx "        st %%l%d, [%%sp + %d]" k (4 + (4 * k))
  done;
  line ctx "        mov %%o0, %%l0";
  line ctx "        mov %d, %%l1" (idx + 1);
  line ctx "        mov %d, %%l2" ((idx * 17) land 0xFF);
  line ctx "        mov %d, %%l3" ((idx * 31) land 0x7F);
  let lo, hi = ctx.cfg.body_stmts in
  let nstmts = lo + rnd ctx (max 1 (hi - lo)) in
  for _ = 1 to nstmts do
    match rnd ctx 10 with
    | 0 | 1 | 2 -> stmt_arith ctx
    | 3 | 4 ->
        if prob ctx ctx.cfg.loop_frac then stmt_loop ctx (fun () -> stmt_arith ctx)
        else stmt_arith ctx
    | 5 | 6 -> stmt_if ctx
    | 7 ->
        if prob ctx ctx.cfg.case_frac then stmt_case ctx ~in_text:false
        else stmt_if ctx
    | 8 ->
        if prob ctx ctx.cfg.mem_frac then stmt_mem ctx else stmt_arith ctx
    | _ -> (
        match callees with
        | [] -> stmt_arith ctx
        | cs ->
            if prob ctx ctx.cfg.call_frac then
              stmt_call ctx (List.nth cs (rnd ctx (List.length cs)))
            else stmt_arith ctx)
  done;
  (* keep results bounded *)
  line ctx "        and %%l0, 1023, %%l0";
  line ctx "        mov %%l0, %%o0";
  (* epilogue *)
  line ctx "        ld [%%sp], %%o7";
  for k = 0 to 6 do
    line ctx "        ld [%%sp + %d], %%l%d" (4 + (4 * k)) k
  done;
  line ctx "        retl";
  line ctx "        add %%sp, %d, %%sp" frame_size

let routine ctx ~idx ~name ~callees ~tail_target =
  match tail_target with
  | None -> routine_body ctx ~idx ~name ~callees
  | Some callee ->
      line ctx "%s:" name;
      line ctx "        sub %%sp, %d, %%sp" frame_size;
      line ctx "        st %%o7, [%%sp]";
      line ctx "        st %%l0, [%%sp + 4]";
      line ctx "        mov %%o0, %%l0";
      stmt_arith ctx;
      line ctx "        and %%l0, 1023, %%l0";
      line ctx "        mov %%l0, %%o0";
      line ctx "        ld [%%sp + 4], %%l0";
      line ctx "        ld [%%sp], %%o7";
      (* load the callee's address from memory and tail-jump: the slice
         cannot bound the target (it leaves the routine) *)
      let ptr = fresh ctx "tail" in
      dline ctx "        .align 4";
      dline ctx "%s: .word %s" ptr callee;
      line ctx "        set %s, %%g1" ptr;
      line ctx "        ld [%%g1], %%g1";
      line ctx "        jmp %%g1";
      line ctx "        add %%sp, %d, %%sp" frame_size

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

(** [program cfg] generates a complete assembly program. Deterministic in
    [cfg.seed]. The program prints one checksum line and exits 0. *)
let program (cfg : config) =
  let ctx =
    {
      rng = Random.State.make [| cfg.seed |];
      buf = Buffer.create 65536;
      data = Buffer.create 4096;
      label = 0;
      cfg;
    }
  in
  line ctx "        .text";
  line ctx "        .global main";
  (* ---- main ---- *)
  line ctx "main:";
  line ctx "        mov 0, %%l7";
  let n = max 1 cfg.routines in
  for i = 0 to n - 1 do
    line ctx "        mov %d, %%o0" ((i * 7) land 0xFF);
    line ctx "        call %s" (fn_name i);
    line ctx "        nop";
    line ctx "        xor %%l7, %%o0, %%l7"
  done;
  (* call hidden routines through function pointers *)
  for h = 0 to cfg.hidden_routines - 1 do
    line ctx "        set hptr%d, %%l6" h;
    line ctx "        ld [%%l6], %%l6";
    line ctx "        mov %d, %%o0" (h + 3);
    line ctx "        jmpl %%l6, %%o7";
    line ctx "        nop";
    line ctx "        xor %%l7, %%o0, %%l7"
  done;
  (* enter the multi-entry routines through their side doors *)
  if cfg.multi_entry > 0 then (
    line ctx "        mov 5, %%o0";
    line ctx "        call me0_entry2";
    line ctx "        nop";
    line ctx "        xor %%l7, %%o0, %%l7");
  line ctx "        mov %%l7, %%o0";
  line ctx "        ta 2";
  line ctx "        mov 0, %%o0";
  line ctx "        ta 1";
  (* ---- regular routines (call DAG: fn_i may call fn_j, j < i) ---- *)
  for i = 0 to n - 1 do
    let callees =
      List.filteri (fun j _ -> j >= i - 4 && j < i) (List.init n fn_name)
    in
    let tail_target =
      if cfg.style = Sunpro && i > 0 && prob ctx cfg.tail_frac then
        Some (fn_name (rnd ctx i))
      else None
    in
    (if cfg.pathological_symbols && i mod 7 = 3 then (
       line ctx "        .debugsym %s" (fn_name i)));
    routine ctx ~idx:i ~name:(fn_name i) ~callees ~tail_target;
    (* occasionally a dispatch table in the text segment right after the
       routine, with a misleading Func-looking symbol *)
    if i < cfg.data_tables_in_text then (
      line ctx "        .align 4";
      line ctx "ttab%d: .word %s, %s" i (fn_name i) (fn_name i);
      if cfg.pathological_symbols then
        line ctx "        .symat fake_fn%d ttab%d func" i i)
  done;
  (* ---- hidden routines (no symbols; reached via pointers) ---- *)
  for h = 0 to cfg.hidden_routines - 1 do
    let name = Printf.sprintf "hfn%d" h in
    line ctx "        .nosym %s" name;
    line ctx "%s:" name;
    line ctx "        sll %%o0, 1, %%o0";
    line ctx "        retl";
    line ctx "        add %%o0, %d, %%o0" (h + 1);
    dline ctx "        .align 4";
    dline ctx "hptr%d: .word %s" h name
  done;
  (* ---- multi-entry routines ---- *)
  for m = 0 to cfg.multi_entry - 1 do
    let name = Printf.sprintf "me%d" m in
    line ctx "%s:" name;
    line ctx "        add %%o0, 100, %%o0";
    (* the second entry: a non-symbol label, called directly by main *)
    line ctx "        .nosym %s_entry2" name;
    line ctx "%s_entry2:" name;
    line ctx "        retl";
    line ctx "        add %%o0, 1, %%o0"
  done;
  (* ---- data ---- *)
  line ctx "        .data";
  Buffer.add_buffer ctx.buf ctx.data;
  line ctx "        .bss";
  line ctx "        .align 8";
  line ctx "gbuf:   .space 4096";
  Buffer.contents ctx.buf

(** A memory-intensive program for the Active Memory experiment (E6):
    repeated strided walks over an array, parameterized by iteration count
    and working-set size. *)
let memory_bound ?(iters = 50) ?(size_words = 1024) () =
  Printf.sprintf
    {|
        .text
        .global main
main:   mov %d, %%l0            ! outer iterations
        mov 0, %%l3              ! checksum
Louter: set gbuf, %%l1
        mov %d, %%l2             ! words per pass
Lwalk:  ld [%%l1], %%l4
        add %%l4, 1, %%l4
        st %%l4, [%%l1]
        xor %%l3, %%l4, %%l3
        add %%l1, 4, %%l1
        subcc %%l2, 1, %%l2
        bne Lwalk
        nop
        subcc %%l0, 1, %%l0
        bne Louter
        nop
        mov %%l3, %%o0
        ta 2
        mov 0, %%o0
        ta 1
        .bss
        .align 8
gbuf:   .space %d
|}
    iters size_words (4 * size_words)

(** The "spim-like" program for Table 1: a sizable mixed workload. *)
let spim_like ?(seed = 7) ?(routines = 120) ?(style = Gcc) () =
  program { default with seed; routines; style }

(** Convenience: generate and assemble. *)
let assemble_program cfg =
  match Eel_sparc.Asm.assemble (program cfg) with
  | Ok exe -> exe
  | Error m -> failwith ("workload generation produced bad assembly: " ^ m)

(** {1 OS-mode workloads}

    I/O-bound programs for the OS layer: byte filters, file-copy loops and
    config-reading dispatchers driven by [read]/[write]/[open]/[close]
    syscalls instead of arithmetic. The generator stays free of lib/os —
    an {!os_world} is plain data, and drivers build an [Eel_os.Spec.t]
    from it — so lib/workload keeps its dependency footprint.

    Determinism contract: {!os_program} is a pure function of [cfg.seed]
    (one private [Random.State], no ambient state), so the same seed
    yields byte-identical assembly and world at any [EEL_JOBS]. *)

type os_world = {
  ow_files : (string * string) list;  (** initial file-system snapshot *)
  ow_stdin : string;
}

(* OS trap immediates, kept literal so lib/workload does not depend on
   lib/os: trap base 16 + the Unix-v4 numbers (Eel_os.Abi is the one
   authoritative table; test_os pins these mirrors against it) *)
let ta_exit = 17
let ta_read = 19
let ta_write = 20
let ta_open = 21
let ta_close = 22

let os_alphabet =
  "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .\n"

let rand_text rng n =
  String.init n (fun _ ->
      os_alphabet.[Random.State.int rng (String.length os_alphabet)])

(** [os_program cfg] — one I/O-bound program and the OS world it expects,
    shaped by the seed: an upcasing stdin filter, a stdin byte counter, a
    file-copy loop, or a config-file dispatcher. Every shape branches only
    on [read] results and standard-stream state, never on [write] results
    or file-write success — so the same program stays event-equivalent
    under a write-denying interposition policy (the SFI OS story). *)
let os_program (cfg : config) : string * os_world =
  let rng = Random.State.make [| cfg.seed; 0x0e5 |] in
  let b = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  let chunk = 4 + Random.State.int rng 13 in
  let stdin = rand_text rng (24 + Random.State.int rng 49) in
  let shape = Random.State.int rng 4 in
  line "        .text";
  line "        .global main";
  line "main:";
  let world =
    match shape with
    | 0 ->
        (* upcase filter: read stdin in chunks, uppercase a-z in place,
           write each chunk to stdout *)
        line "Lrd:    mov 0, %%o0";
        line "        set buf, %%o1";
        line "        mov %d, %%o2" chunk;
        line "        ta %d" ta_read;
        line "        cmp %%o0, 0";
        line "        be Lfin";
        line "        nop";
        line "        mov %%o0, %%l4";
        line "        mov 0, %%l0";
        line "        set buf, %%l1";
        line "Lbyte:  ldub [%%l1 + %%l0], %%l2";
        line "        cmp %%l2, 97";
        line "        bl Lskip";
        line "        nop";
        line "        cmp %%l2, 122";
        line "        bg Lskip";
        line "        nop";
        line "        sub %%l2, 32, %%l2";
        line "        stb %%l2, [%%l1 + %%l0]";
        line "Lskip:  add %%l0, 1, %%l0";
        line "        cmp %%l0, %%l4";
        line "        bl Lbyte";
        line "        nop";
        line "        mov 1, %%o0";
        line "        set buf, %%o1";
        line "        mov %%l4, %%o2";
        line "        ta %d" ta_write;
        line "        ba Lrd";
        line "        nop";
        line "Lfin:";
        { ow_files = []; ow_stdin = stdin }
    | 1 ->
        (* byte counter: total stdin length through the builtin putint
           trap (mixing OS and builtin trap surfaces on purpose) *)
        line "        mov 0, %%l5";
        line "Lrd:    mov 0, %%o0";
        line "        set buf, %%o1";
        line "        mov %d, %%o2" chunk;
        line "        ta %d" ta_read;
        line "        cmp %%o0, 0";
        line "        be Lfin";
        line "        nop";
        line "        ba Lrd";
        line "        add %%l5, %%o0, %%l5";
        line "Lfin:   mov %%l5, %%o0";
        line "        ta 2";
        { ow_files = []; ow_stdin = stdin }
    | 2 ->
        (* file copy: in.dat -> out.dat; write results deliberately
           unused, so a denied write changes no later control flow *)
        let contents = rand_text rng (20 + Random.State.int rng 61) in
        line "        set inpath, %%o0";
        line "        mov 0, %%o1";
        line "        ta %d" ta_open;
        line "        bcs Lbad";
        line "        nop";
        line "        mov %%o0, %%l6";
        line "        set outpath, %%o0";
        line "        mov 1, %%o1";
        line "        ta %d" ta_open;
        line "        bcs Lbad";
        line "        nop";
        line "        mov %%o0, %%l7";
        line "Lcp:    mov %%l6, %%o0";
        line "        set buf, %%o1";
        line "        mov %d, %%o2" chunk;
        line "        ta %d" ta_read;
        line "        cmp %%o0, 0";
        line "        be Lcls";
        line "        nop";
        line "        mov %%o0, %%o2";
        line "        mov %%l7, %%o0";
        line "        set buf, %%o1";
        line "        ta %d" ta_write;
        line "        ba Lcp";
        line "        nop";
        line "Lcls:   mov %%l6, %%o0";
        line "        ta %d" ta_close;
        line "        mov %%l7, %%o0";
        line "        ta %d" ta_close;
        { ow_files = [ ("in.dat", contents) ]; ow_stdin = "" }
    | _ ->
        (* config dispatcher: first byte of the config file picks the
           branch; each branch prints a distinct seeded constant *)
        let mode = [| 'a'; 'b'; 'c' |].(Random.State.int rng 3) in
        let tail = rand_text rng (6 + Random.State.int rng 20) in
        let v = Array.init 3 (fun _ -> 10 + Random.State.int rng 240) in
        line "        set cfgpath, %%o0";
        line "        mov 0, %%o1";
        line "        ta %d" ta_open;
        line "        bcs Lbad";
        line "        nop";
        line "        mov %%o0, %%l6";
        line "        mov %%l6, %%o0";
        line "        set buf, %%o1";
        line "        mov 1, %%o2";
        line "        ta %d" ta_read;
        line "        cmp %%o0, 1";
        line "        bl Lbad";
        line "        nop";
        line "        mov %%l6, %%o0";
        line "        ta %d" ta_close;
        line "        set buf, %%l1";
        line "        ldub [%%l1], %%l2";
        line "        cmp %%l2, 97";
        line "        be La";
        line "        nop";
        line "        cmp %%l2, 98";
        line "        be Lb";
        line "        nop";
        line "        mov %d, %%o0" v.(2);
        line "        ba Lout";
        line "        nop";
        line "La:     mov %d, %%o0" v.(0);
        line "        ba Lout";
        line "        nop";
        line "Lb:     mov %d, %%o0" v.(1);
        line "Lout:   ta 2";
        {
          ow_files = [ ("app.cfg", Printf.sprintf "%c%s" mode tail) ];
          ow_stdin = "";
        }
  in
  line "        mov 0, %%o0";
  line "        ta %d" ta_exit;
  line "        nop";
  line "Lbad:   mov 1, %%o0";
  line "        ta %d" ta_exit;
  line "        nop";
  line "        .bss";
  line "        .align 4";
  line "buf:    .space %d" chunk;
  (match world.ow_files with
  | [] -> ()
  | _ ->
      line "        .data";
      if shape = 2 then (
        line "inpath: .asciz \"in.dat\"";
        line "outpath: .asciz \"out.dat\"")
      else line "cfgpath: .asciz \"app.cfg\"");
  (Buffer.contents b, world)
