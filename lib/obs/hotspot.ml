(** Calling-context hot-path attribution.

    A {!t} is a tree of string-named frames; each node carries the dynamic
    instructions attributed directly to that calling context ([self]) plus a
    per-instruction-class breakdown. The emulator's profiler builds one of
    these per run ({!Eel_emu.Emu.profile_hotspot} converts its pc-keyed
    calling-context tree into named frames); drivers merge many runs into
    the per-domain ambient tree and render the result as a routine table, a
    collapsed-stack flamegraph, or speedscope JSON.

    Everything here is integer sums over deterministic inputs, so merging
    commutes: parallel sweeps absorbed at {!Eel_util.Pool} joins produce the
    same tree as a serial sweep, and every renderer sorts its output, so
    exports are byte-identical at any domain count. *)

type node = {
  mutable n_self : int;  (** instructions attributed directly to this node *)
  mutable n_classes : int array;
  n_children : (string, node) Hashtbl.t;
}
(** [n_classes] may be shorter than the tree's class-name table (nodes from
    before a merge widened it); sums pad on demand. *)

type t = { mutable t_class_names : string array; t_root : node }

let new_node ncls =
  { n_self = 0; n_classes = Array.make ncls 0; n_children = Hashtbl.create 4 }

let create ?(classes = [||]) () =
  { t_class_names = classes; t_root = new_node (Array.length classes) }

let class_names t = t.t_class_names

let rec node_total n =
  Hashtbl.fold (fun _ c acc -> acc + node_total c) n.n_children n.n_self

(** Total dynamic instructions recorded in the tree. *)
let total t = node_total t.t_root

let is_empty t = total t = 0 && Hashtbl.length t.t_root.n_children = 0

(* Frame names become path components of the collapsed-stack format, where
   [';'] separates frames and the final [' '] separates path from weight. *)
let sanitize name =
  if String.exists (fun c -> c = ';' || c = ' ' || c = '\n' || c = '\t') name
  then
    String.map (fun c -> if c = ';' || Char.code c <= 0x20 then '_' else c) name
  else name

(* Sum [src] into [node.n_classes], widening the destination if needed. *)
let add_node_classes node src =
  let n = Array.length src in
  if n > 0 then begin
    if Array.length node.n_classes < n then begin
      let wide = Array.make n 0 in
      Array.blit node.n_classes 0 wide 0 (Array.length node.n_classes);
      node.n_classes <- wide
    end;
    for i = 0 to n - 1 do
      node.n_classes.(i) <- node.n_classes.(i) + src.(i)
    done
  end

(** [add t ~stack ~self ()] attributes [self] dynamic instructions to the
    calling context [stack] (outermost frame first). [classes], when given,
    must follow [t]'s class-name ordering. *)
let add t ~stack ?classes ~self () =
  let ncls = Array.length t.t_class_names in
  let rec descend node = function
    | [] -> node
    | name :: rest ->
        let name = sanitize name in
        let child =
          match Hashtbl.find_opt node.n_children name with
          | Some c -> c
          | None ->
              let c = new_node ncls in
              Hashtbl.add node.n_children name c;
              c
        in
        descend child rest
  in
  let node = descend t.t_root stack in
  node.n_self <- node.n_self + self;
  match classes with None -> () | Some cs -> add_node_classes node cs

(** Merge [src] into [into] (commutative integer sums; [src] unchanged). *)
let merge ~into src =
  if Array.length into.t_class_names = 0 then
    into.t_class_names <- src.t_class_names;
  let rec go dst s =
    dst.n_self <- dst.n_self + s.n_self;
    add_node_classes dst s.n_classes;
    Hashtbl.iter
      (fun name c ->
        let d =
          match Hashtbl.find_opt dst.n_children name with
          | Some d -> d
          | None ->
              let d = new_node (Array.length into.t_class_names) in
              Hashtbl.add dst.n_children name d;
              d
        in
        go d c)
      s.n_children
  in
  go into.t_root src.t_root

(** Deep copy, so exported snapshots are immune to later mutation. *)
let copy t =
  let fresh = create ~classes:t.t_class_names () in
  merge ~into:fresh t;
  fresh

(** {1 Per-routine aggregation} *)

type rstat = {
  rs_name : string;
  rs_self : int;  (** instructions executed in the routine itself *)
  rs_total : int;  (** self plus everything called from it *)
  rs_classes : int array;  (** class mix of [rs_self] *)
}

(** Collapse the context tree to per-routine rows. [rs_self] sums a
    routine's direct instructions over every context it appears in;
    [rs_total] counts each subtree only at the routine's outermost
    occurrence on a path, so recursion (fib calling fib) is not
    double-counted. Rows sort by descending total, then name. *)
let routines t =
  let ncls = Array.length t.t_class_names in
  let stats : (string, rstat ref) Hashtbl.t = Hashtbl.create 64 in
  let stat name =
    match Hashtbl.find_opt stats name with
    | Some r -> r
    | None ->
        let r =
          ref
            {
              rs_name = name;
              rs_self = 0;
              rs_total = 0;
              rs_classes = Array.make ncls 0;
            }
        in
        Hashtbl.add stats name r;
        r
  in
  let rec walk ancestors name node =
    let r = stat name in
    let cs = !r.rs_classes in
    let n = min (Array.length cs) (Array.length node.n_classes) in
    for i = 0 to n - 1 do
      cs.(i) <- cs.(i) + node.n_classes.(i)
    done;
    let total_inc =
      if List.mem name ancestors then 0 else node_total node
    in
    r :=
      {
        !r with
        rs_self = !r.rs_self + node.n_self;
        rs_total = !r.rs_total + total_inc;
      };
    Hashtbl.iter (walk (name :: ancestors)) node.n_children
  in
  Hashtbl.iter (walk []) t.t_root.n_children;
  Hashtbl.fold (fun _ r acc -> !r :: acc) stats []
  |> List.sort (fun a b ->
         match compare b.rs_total a.rs_total with
         | 0 -> compare a.rs_name b.rs_name
         | c -> c)

(** {1 Exports} *)

(* Leaf-weighted paths: every node with self > 0 contributes one sample,
   sorted lexicographically by joined path so output is stable. *)
let samples t =
  let acc = ref [] in
  let rec walk rev_path node =
    if node.n_self > 0 then acc := (List.rev rev_path, node.n_self) :: !acc;
    Hashtbl.iter (fun name c -> walk (name :: rev_path) c) node.n_children
  in
  Hashtbl.iter (fun name c -> walk [ name ] c) t.t_root.n_children;
  List.sort
    (fun (pa, _) (pb, _) -> compare (String.concat ";" pa) (String.concat ";" pb))
    !acc

(** Collapsed-stack ("folded") flamegraph lines: ["main;fib;fib 42\n"]. *)
let collapsed t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, w) ->
      Buffer.add_string buf (String.concat ";" path);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int w);
      Buffer.add_char buf '\n')
    (samples t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Speedscope file-format JSON (one "sampled" profile weighted in
    instructions, not time). Frames are deduplicated by name and sorted;
    samples follow {!collapsed} order. *)
let speedscope_json ?(name = "eel profile") t =
  let samples = samples t in
  let frame_tbl = Hashtbl.create 64 in
  List.iter
    (fun (path, _) ->
      List.iter (fun f -> Hashtbl.replace frame_tbl f ()) path)
    samples;
  let frames =
    Hashtbl.fold (fun f () acc -> f :: acc) frame_tbl [] |> List.sort compare
  in
  let index = Hashtbl.create 64 in
  List.iteri (fun i f -> Hashtbl.add index f i) frames;
  let endv = List.fold_left (fun acc (_, w) -> acc + w) 0 samples in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\"$schema\": \"https://www.speedscope.app/file-format-schema.json\",\n";
  Buffer.add_string buf " \"shared\": {\"frames\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "{\"name\": \"%s\"}" (json_escape f)))
    frames;
  Buffer.add_string buf "]},\n \"profiles\": [{\"type\": \"sampled\", ";
  Buffer.add_string buf
    (Printf.sprintf "\"name\": \"%s\", \"unit\": \"none\", " (json_escape name));
  Buffer.add_string buf
    (Printf.sprintf "\"startValue\": 0, \"endValue\": %d,\n  \"samples\": ["
       endv);
  List.iteri
    (fun i (path, _) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_char buf '[';
      List.iteri
        (fun j f ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int (Hashtbl.find index f)))
        path;
      Buffer.add_char buf ']')
    samples;
  Buffer.add_string buf "],\n  \"weights\": [";
  List.iteri
    (fun i (_, w) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (string_of_int w))
    samples;
  Buffer.add_string buf "]}],\n";
  Buffer.add_string buf
    (Printf.sprintf " \"name\": \"%s\", \"exporter\": \"eel\"}\n"
       (json_escape name));
  Buffer.contents buf

(** {1 Per-domain ambient tree}

    Mirrors {!Metrics}: each domain accumulates into its own tree;
    {!Eel_util.Pool} workers export at join time and the caller absorbs in
    chunk order. Sums commute, so the merged tree is order-independent. *)

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())
let ambient () = Domain.DLS.get key

(** Merge [src] into the calling domain's ambient tree. *)
let record src = merge ~into:(ambient ()) src

let reset () = Domain.DLS.set key (create ())

let () =
  Eel_util.Pool.on_join (fun () ->
      let ex = copy (ambient ()) in
      fun () -> record ex)
