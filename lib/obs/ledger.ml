(** Instrumentation-overhead ledger.

    One {!entry} per (tool, program) pair records what an instrumented edit
    cost, split the way the paper's qpt overhead tables are: static cost
    (bytes added to the image, routines whose edited form grew) and dynamic
    cost (extra instructions, extra memory operations, extra traps) — all
    cross-checked against the differential oracle's masked-event accounting
    so overhead is *explained*, not just observed ([le_unexplained] must be
    zero for an equivalent run).

    Entries live in a per-domain table merged at {!Eel_util.Pool} joins
    (keys are unique per job, so the union is order-independent), and every
    {!record} also bumps additive [eel.ledger.<tool>.*] counters in
    {!Metrics} for per-tool sweep totals. *)

type entry = {
  le_tool : string;
  le_prog : string;
  le_verdict : string;  (** "equivalent", "diverged", ... *)
  le_sites : int;  (** instrumentation sites placed *)
  le_bytes_orig : int;  (** original image bytes (text + data) *)
  le_bytes_edited : int;
  le_routines_touched : int;  (** routines whose edited body grew *)
  le_insns_orig : int;  (** dynamic instructions, original run *)
  le_insns_edited : int;
  le_mem_orig : int;  (** dynamic loads + stores, original run *)
  le_mem_edited : int;
  le_stores_masked : int;  (** store events masked by the contract *)
  le_traps_masked : int;  (** trap events masked by the contract *)
  le_sys_masked : int;
      (** OS syscall events masked by the contract: extra instrumentation
          calls plus declared suppressions (both the edited run's denial
          returns and the original run's suppressed calls) *)
  le_unexplained : int;
      (** extra store instructions the contract did not account for:
          (edited - original store insns) - masked stores; 0 when every
          byte of dynamic store overhead is declared *)
}

let bytes_added e = e.le_bytes_edited - e.le_bytes_orig
let extra_insns e = e.le_insns_edited - e.le_insns_orig
let extra_mem e = e.le_mem_edited - e.le_mem_orig
let masked e = e.le_stores_masked + e.le_traps_masked + e.le_sys_masked

(** Dynamic expansion factor ([edited / original] instructions). *)
let expansion e =
  if e.le_insns_orig = 0 then 1.0
  else float_of_int e.le_insns_edited /. float_of_int e.le_insns_orig

(** {1 Per-domain store} *)

let key : (string * string, entry) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let table () = Domain.DLS.get key

(** Record [e], replacing any previous entry for its (tool, program) key,
    and publish the additive per-tool counters. *)
let record e =
  Hashtbl.replace (table ()) (e.le_tool, e.le_prog) e;
  let c name v =
    if v <> 0 then
      Metrics.incr ~by:v
        (Metrics.counter (Printf.sprintf "eel.ledger.%s.%s" e.le_tool name))
  in
  c "programs" 1;
  c "sites" e.le_sites;
  c "bytes_added" (bytes_added e);
  c "extra_insns" (extra_insns e);
  c "extra_mem" (extra_mem e);
  c "extra_traps" e.le_traps_masked;
  c "sys_masked" e.le_sys_masked;
  c "masked_events" (masked e);
  c "unexplained" e.le_unexplained

(** All entries recorded in this domain (after a pool join: in any domain
    of the sweep), sorted by (tool, program). *)
let entries () =
  Hashtbl.fold (fun _ e acc -> e :: acc) (table ()) []
  |> List.sort (fun a b ->
         match compare a.le_tool b.le_tool with
         | 0 -> compare a.le_prog b.le_prog
         | c -> c)

let reset () = Hashtbl.reset (table ())

let () =
  Eel_util.Pool.on_join (fun () ->
      let ex = entries () in
      fun () ->
        let t = table () in
        List.iter (fun e -> Hashtbl.replace t (e.le_tool, e.le_prog) e) ex)

(** {1 Rendering} *)

let entry_to_json e =
  Printf.sprintf
    "{\"tool\": \"%s\", \"prog\": \"%s\", \"verdict\": \"%s\", \"sites\": \
     %d, \"bytes_orig\": %d, \"bytes_edited\": %d, \"bytes_added\": %d, \
     \"routines_touched\": %d, \"insns_orig\": %d, \"insns_edited\": %d, \
     \"expansion\": %.3f, \"mem_orig\": %d, \"mem_edited\": %d, \
     \"extra_mem\": %d, \"stores_masked\": %d, \"traps_masked\": %d, \
     \"sys_masked\": %d, \"unexplained\": %d}"
    e.le_tool e.le_prog e.le_verdict e.le_sites e.le_bytes_orig
    e.le_bytes_edited (bytes_added e) e.le_routines_touched e.le_insns_orig
    e.le_insns_edited (expansion e) e.le_mem_orig e.le_mem_edited
    (extra_mem e) e.le_stores_masked e.le_traps_masked e.le_sys_masked
    e.le_unexplained

let to_json es =
  "[" ^ String.concat ",\n " (List.map entry_to_json es) ^ "]"

type tool_row = {
  tr_tool : string;
  tr_programs : int;
  tr_sites : int;
  tr_bytes_added : int;
  tr_size_growth : float;  (** Σ edited bytes / Σ original bytes *)
  tr_expansion : float;  (** Σ edited insns / Σ original insns *)
  tr_extra_mem : int;
  tr_extra_traps : int;
  tr_masked : int;
  tr_unexplained : int;
}

(** Aggregate entries into one row per tool. [order] fixes row order
    (tools absent from it sort after, alphabetically). *)
let tool_rows ?(order = []) es =
  let tools =
    List.fold_left
      (fun acc e -> if List.mem e.le_tool acc then acc else e.le_tool :: acc)
      [] es
    |> List.sort (fun a b ->
           let rank t =
             let rec idx i = function
               | [] -> max_int
               | x :: _ when x = t -> i
               | _ :: tl -> idx (i + 1) tl
             in
             idx 0 order
           in
           match compare (rank a) (rank b) with
           | 0 -> compare a b
           | c -> c)
  in
  List.map
    (fun tool ->
      let es = List.filter (fun e -> e.le_tool = tool) es in
      let sum f = List.fold_left (fun acc e -> acc + f e) 0 es in
      let ratio num den =
        let d = sum den in
        if d = 0 then 1.0 else float_of_int (sum num) /. float_of_int d
      in
      {
        tr_tool = tool;
        tr_programs = List.length es;
        tr_sites = sum (fun e -> e.le_sites);
        tr_bytes_added = sum bytes_added;
        tr_size_growth =
          ratio (fun e -> e.le_bytes_edited) (fun e -> e.le_bytes_orig);
        tr_expansion =
          ratio (fun e -> e.le_insns_edited) (fun e -> e.le_insns_orig);
        tr_extra_mem = sum extra_mem;
        tr_extra_traps = sum (fun e -> e.le_traps_masked);
        tr_masked = sum masked;
        tr_unexplained = sum (fun e -> e.le_unexplained);
      })
    tools

(** The per-tool overhead table, in the spirit of the paper's Tables 3-5:
    static size growth and dynamic instruction expansion per tool. *)
let pp_tool_table ppf ?order es =
  let rows = tool_rows ?order es in
  Format.fprintf ppf
    "%-8s %5s %6s %10s %7s %7s %10s %7s %8s %6s@\n" "tool" "progs" "sites"
    "bytes+" "size x" "insns x" "mem+" "traps+" "masked" "unexpl";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %5d %6d %10d %7.3f %7.3f %10d %7d %8d %6d@\n"
        r.tr_tool r.tr_programs r.tr_sites r.tr_bytes_added r.tr_size_growth
        r.tr_expansion r.tr_extra_mem r.tr_extra_traps r.tr_masked
        r.tr_unexplained)
    rows
