(** A minimal JSON reader — just enough to validate what {!Trace} and
    {!Metrics} emit (the trace-smoke checker and test suite parse real
    output rather than pattern-matching on strings). Accepts standard JSON;
    numbers come back as [float]; no streaming, no extensions. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int  (** message, byte offset *)

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad (m, !pos))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> bad "expected %c, got %c" c x
    | None -> bad "expected %c, got end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else bad "bad literal"
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> bad "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then bad "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> bad "bad \\u escape %s" hex
                  in
                  (* keep it simple: encode the scalar as UTF-8 *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then (
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
                  else (
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
              | c -> bad "bad escape \\%c" c);
              go ())
      | Some c when Char.code c < 0x20 -> bad "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    let body = String.sub s start (!pos - start) in
    match float_of_string_opt body with
    | Some f -> f
    | None -> bad "bad number %S" body
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> bad "expected , or } in object"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> bad "expected , or ] in array"
          in
          Arr (elements [])
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (m, off) -> Error (Printf.sprintf "%s at offset %d" m off)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
