(** Hierarchical span tracing for the load→CFG→edit→layout→run pipeline.

    The paper's evaluation (§5, Tables 1–2) is built on per-phase cost
    measurement; this module is the substrate that makes those measurements
    a first-class, always-available artifact instead of ad-hoc stopwatch
    code in the benchmark harness.

    A {e span} covers one phase of work: it has a name, optional key/value
    arguments, a wall-clock duration, and the number of words the OCaml GC
    allocated while it was open (via {!Gc.quick_stat} deltas). Spans nest;
    diagnostics and other point-in-time observations are attached to the
    innermost open span as {e instant} events. A finished trace exports as

    - Chrome [trace_event] JSON ({!to_chrome_json}), loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}, and
    - a plain-text tree ({!pp_tree}) for terminals.

    Instrumented code does not thread a tracer through every call chain:
    it uses the {e ambient} tracer ({!set_current}/{!with_current}) through
    {!with_span} and {!mark}, which cost one ref read and one match when no
    tracer is installed — the disabled-instrumentation overhead budget is
    "not measurable" (ISSUE 2 acceptance: < 2% on E1). *)

type instant = {
  i_name : string;
  i_ts : float;  (** µs since the tracer epoch *)
  i_args : (string * string) list;
}

type span = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_start : float;  (** µs since the tracer epoch *)
  sp_alloc0 : float;  (** GC words allocated before the span opened *)
  mutable sp_dur : float;  (** µs; negative while the span is still open *)
  mutable sp_alloc : float;  (** words allocated while the span was open *)
  mutable sp_children : node list;  (** newest first *)
}

and node = N_span of span | N_instant of instant

type t = {
  epoch : float;  (** [Unix.gettimeofday] at creation *)
  root : span;  (** synthetic container for top-level spans *)
  mutable stack : span list;  (** open spans, innermost first; root last *)
  mutable n_spans : int;
  mutable unclosed : string list;  (** filled by {!seal} *)
  mutable sealed : bool;
}

let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let create () =
  let root =
    {
      sp_name = "<root>";
      sp_args = [];
      sp_start = 0.;
      sp_alloc0 = alloc_words ();
      sp_dur = -1.;
      sp_alloc = 0.;
      sp_children = [];
    }
  in
  {
    epoch = Unix.gettimeofday ();
    root;
    stack = [ root ];
    n_spans = 0;
    unclosed = [];
    sealed = false;
  }

let now_us t = (Unix.gettimeofday () -. t.epoch) *. 1e6

let num_spans t = t.n_spans

(** {1 Recording} *)

let enter t ?(args = []) name =
  let sp =
    {
      sp_name = name;
      sp_args = args;
      sp_start = now_us t;
      sp_alloc0 = alloc_words ();
      sp_dur = -1.;
      sp_alloc = 0.;
      sp_children = [];
    }
  in
  (match t.stack with
  | parent :: _ -> parent.sp_children <- N_span sp :: parent.sp_children
  | [] -> t.root.sp_children <- N_span sp :: t.root.sp_children);
  t.stack <- sp :: t.stack;
  t.n_spans <- t.n_spans + 1

(** Close the innermost open span. Exiting with only the root open is an
    imbalance (an [exit] without a matching [enter]); it is recorded rather
    than raised, because tracing must never abort the traced pipeline. *)
let exit t =
  match t.stack with
  | sp :: (_ :: _ as rest) ->
      sp.sp_dur <- now_us t -. sp.sp_start;
      sp.sp_alloc <- alloc_words () -. sp.sp_alloc0;
      t.stack <- rest
  | _ -> t.unclosed <- "<exit without enter>" :: t.unclosed

let span t ?args name f =
  enter t ?args name;
  Fun.protect ~finally:(fun () -> exit t) f

let instant t ?(args = []) name =
  let i = { i_name = name; i_ts = now_us t; i_args = args } in
  match t.stack with
  | sp :: _ -> sp.sp_children <- N_instant i :: sp.sp_children
  | [] -> t.root.sp_children <- N_instant i :: t.root.sp_children

(** [seal t] closes any span left open (recording its name in
    {!unclosed}) so exports see complete durations. Idempotent. *)
let seal t =
  if not t.sealed then (
    t.sealed <- true;
    let rec close () =
      match t.stack with
      | sp :: (_ :: _ as rest) ->
          t.unclosed <- sp.sp_name :: t.unclosed;
          sp.sp_dur <- now_us t -. sp.sp_start;
          sp.sp_alloc <- alloc_words () -. sp.sp_alloc0;
          t.stack <- rest;
          close ()
      | _ -> ()
    in
    close ())

(** Names of spans that were entered but never exited (innermost last),
    plus a marker for each unmatched [exit]. Seals the trace. *)
let unclosed t =
  seal t;
  List.rev t.unclosed

(** {1 The ambient tracer}

    The slot is domain-local: a tracer installed on the main domain is
    not visible to {!Eel_util.Pool} workers, whose spans would otherwise
    interleave racily into one mutable tree. Workers see [None] and
    their spans no-op; drivers that want a full trace run serially
    (they pass [~jobs:1] when [--trace] is set). *)

let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let set_current o = current () := o

let get_current () = !(current ())

let with_current t f =
  let cur = current () in
  let old = !cur in
  cur := Some t;
  Fun.protect ~finally:(fun () -> cur := old) f

(** [with_span name f] runs [f] inside a span of the ambient tracer, or
    just calls [f] when none is installed. *)
let with_span ?args name f =
  match !(current ()) with None -> f () | Some t -> span t ?args name f

(** [mark name] attaches an instant event to the ambient tracer's innermost
    open span (dropped when no tracer is installed). *)
let mark ?args name =
  match !(current ()) with None -> () | Some t -> instant t ?args name

(** {1 Export} *)

let children_in_order sp = List.rev sp.sp_children

(** Per-span-name totals: [(name, total µs, count)], sorted by name. The
    per-phase breakdown the benchmark harness persists next to its
    Bechamel numbers. *)
let totals t =
  seal t;
  let tbl : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let rec walk = function
    | N_instant _ -> ()
    | N_span sp ->
        (match Hashtbl.find_opt tbl sp.sp_name with
        | Some (d, n) ->
            d := !d +. sp.sp_dur;
            incr n
        | None -> Hashtbl.add tbl sp.sp_name (ref sp.sp_dur, ref 1));
        List.iter walk sp.sp_children
  in
  List.iter walk t.root.sp_children;
  Hashtbl.fold (fun name (d, n) acc -> (name, !d, !n) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun k (key, v) ->
      if k > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape key) (json_escape v)))
    args;
  Buffer.add_string buf "}"

(** Chrome [trace_event] JSON: one complete ("ph":"X") event per span, one
    instant ("ph":"i") event per mark. Timestamps are µs, as the format
    requires. Allocation deltas ride in each span's [args.alloc_words]. *)
let to_chrome_json t =
  seal t;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  let rec walk = function
    | N_instant i ->
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"eel\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":"
             (json_escape i.i_name) i.i_ts);
        add_args buf i.i_args;
        Buffer.add_string buf "}"
    | N_span sp ->
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"eel\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":"
             (json_escape sp.sp_name) sp.sp_start (max 0. sp.sp_dur));
        add_args buf
          (sp.sp_args
          @ [ ("alloc_words", Printf.sprintf "%.0f" sp.sp_alloc) ]);
        Buffer.add_string buf "}";
        List.iter walk (children_in_order sp)
  in
  List.iter walk (children_in_order t.root);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome_json t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json t))

let pp_tree fmt t =
  seal t;
  let rec walk indent = function
    | N_instant i ->
        Format.fprintf fmt "%s! %s%s@\n" indent i.i_name
          (match i.i_args with
          | [] -> ""
          | args ->
              " ["
              ^ String.concat ", "
                  (List.map (fun (k, v) -> k ^ "=" ^ v) args)
              ^ "]")
    | N_span sp ->
        Format.fprintf fmt "%s%-24s %10.3f ms %10.0f words@\n" indent
          sp.sp_name (sp.sp_dur /. 1e3) sp.sp_alloc;
        List.iter (walk (indent ^ "  ")) (children_in_order sp)
  in
  List.iter (walk "") (children_in_order t.root)
