(** A typed metrics registry: named counters, gauges, and fixed-bucket
    histograms.

    This is the uniform introspection surface the tools and the benchmark
    harness read instead of ad-hoc mutable records scattered per module.
    [Eel.Stats] (the paper's object-allocation counters) registers its
    fields here as callback gauges, so the hot increment paths keep their
    plain mutable-int cost while every consumer sees one namespace.

    Registration is idempotent by name: [counter "x"] returns the existing
    counter on the second call, and raises [Invalid_argument] if "x" is
    already registered as a different metric kind.

    The registry is {e domain-local}: each domain sees (and mutates) its
    own registry, so jobs fanned out through {!Eel_util.Pool} can bump
    counters without locks or races. The pool merges worker registries
    back into the caller's at join time — in chunk order, via the
    {!export}/{!absorb} pair registered as a pool join hook below — so a
    parallel run's final registry matches the serial run's: counters and
    histograms accumulate, gauges keep the last chunk that set them. *)

type histogram = {
  h_edges : float array;  (** strictly increasing upper bucket edges *)
  h_counts : int array;  (** length [Array.length h_edges + 1]; last = overflow *)
  mutable h_sum : float;
  mutable h_n : int;
}

type counter = int ref

type gauge = float ref

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_gauge_fn of (unit -> float)  (** read-through to external state *)
  | M_hist of histogram

(* one registry per domain: worker domains start empty, so an export after
   a pool chunk is exactly that chunk's delta *)
let registry_key : (string, metric) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_gauge_fn _ -> "gauge_fn"
  | M_hist _ -> "histogram"

let register name make match_existing =
  match Hashtbl.find_opt (registry ()) name with
  | None ->
      let m, v = make () in
      Hashtbl.add (registry ()) name m;
      v
  | Some m -> (
      match match_existing m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s is already registered as a %s" name
               (kind_name m)))

let counter name =
  register name
    (fun () ->
      let r = ref 0 in
      (M_counter r, r))
    (function M_counter r -> Some r | _ -> None)

let incr ?(by = 1) (c : counter) = c := !c + by

let gauge name =
  register name
    (fun () ->
      let r = ref 0. in
      (M_gauge r, r))
    (function M_gauge r -> Some r | _ -> None)

let set (g : gauge) v = g := v

(** [gauge_fn name f] registers (or replaces) a gauge whose value is read
    from [f] at snapshot time — zero cost on the instrumented path. *)
let gauge_fn name f =
  match Hashtbl.find_opt (registry ()) name with
  | None | Some (M_gauge_fn _) -> Hashtbl.replace (registry ()) name (M_gauge_fn f)
  | Some m ->
      invalid_arg
        (Printf.sprintf "Metrics: %s is already registered as a %s" name
           (kind_name m))

let histogram ~edges name =
  let ok = ref (Array.length edges > 0) in
  Array.iteri (fun i e -> if i > 0 && e <= edges.(i - 1) then ok := false) edges;
  if not !ok then
    invalid_arg "Metrics.histogram: edges must be non-empty and strictly increasing";
  register name
    (fun () ->
      let h =
        {
          h_edges = Array.copy edges;
          h_counts = Array.make (Array.length edges + 1) 0;
          h_sum = 0.;
          h_n = 0;
        }
      in
      (M_hist h, h))
    (function M_hist h -> Some h | _ -> None)

(** [observe h v] adds [v] to the first bucket whose upper edge is >= [v];
    values above every edge land in the overflow bucket. *)
let observe (h : histogram) v =
  let n = Array.length h.h_edges in
  let rec bucket i = if i >= n || v <= h.h_edges.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_n <- h.h_n + 1

(** {1 Snapshots}

    A snapshot is a pure value: reading it never perturbs the metrics. *)

type value =
  | Int of int
  | Float of float
  | Hist of { edges : float array; counts : int array; sum : float; n : int }

let read = function
  | M_counter r -> Int !r
  | M_gauge r -> Float !r
  | M_gauge_fn f -> Float (f ())
  | M_hist h ->
      Hist
        {
          edges = Array.copy h.h_edges;
          counts = Array.copy h.h_counts;
          sum = h.h_sum;
          n = h.h_n;
        }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, read m) :: acc) (registry ()) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find name = Option.map read (Hashtbl.find_opt (registry ()) name)

(** [reset ()] zeroes counters, gauges and histograms; callback gauges keep
    reading their external state (resetting that state is its owner's job,
    e.g. [Stats.reset]). Registrations survive. *)
let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter r -> r := 0
      | M_gauge r -> r := 0.
      | M_gauge_fn _ -> ()
      | M_hist h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.;
          h.h_n <- 0)
    (registry ())

(** [clear ()] drops every registration (test isolation). *)
let clear () = Hashtbl.reset (registry ())

(** {1 Cross-domain export/absorb}

    Worker domains in an {!Eel_util.Pool} fan-out start with an empty
    registry; [export] captures everything a chunk registered and
    [absorb] merges it into the caller's registry. The merge is the
    serial semantics, replayed: counters and histograms add, gauges are
    overwritten (the pool absorbs chunks in order, so the last chunk that
    set a gauge wins — exactly the serial last-writer). Callback gauges
    are skipped: they read external state their owning domain holds. *)

let export () =
  List.filter_map
    (fun (name, m) ->
      match m with M_gauge_fn _ -> None | m -> Some (name, read m))
    (Hashtbl.fold (fun name m acc -> (name, m) :: acc) (registry ()) [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let absorb ex =
  List.iter
    (fun (name, v) ->
      match (v, Hashtbl.find_opt (registry ()) name) with
      | Int n, (None | Some (M_counter _)) -> incr ~by:n (counter name)
      | Float f, (None | Some (M_gauge _)) -> set (gauge name) f
      | Hist { edges; counts; sum; n }, (None | Some (M_hist _)) ->
          let h = histogram ~edges name in
          if h.h_edges = edges then (
            Array.iteri
              (fun i c -> h.h_counts.(i) <- h.h_counts.(i) + c)
              counts;
            h.h_sum <- h.h_sum +. sum;
            h.h_n <- h.h_n + n)
      | _ ->
          (* kind drift between domains: drop rather than corrupt *)
          ())
    ex

(* a pool worker's registry rides home on the join hook *)
let () =
  Eel_util.Pool.on_join (fun () ->
      let ex = export () in
      fun () -> absorb ex)

(** {1 Rendering} *)

let float_json v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let value_to_json = function
  | Int i -> string_of_int i
  | Float f -> float_json f
  | Hist { edges; counts; sum; n } ->
      let arr f xs =
        "[" ^ String.concat "," (List.map f (Array.to_list xs)) ^ "]"
      in
      Printf.sprintf "{\"edges\":%s,\"counts\":%s,\"sum\":%s,\"n\":%d}"
        (arr float_json edges)
        (arr string_of_int counts)
        (float_json sum) n

(** The whole registry as a JSON object keyed by metric name. *)
let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (Trace.json_escape name) (value_to_json v)))
    (snapshot ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp_value fmt = function
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%g" f
  | Hist { edges; counts; sum; n } ->
      Format.fprintf fmt "n=%d sum=%g" n sum;
      Array.iteri
        (fun i c ->
          if i < Array.length edges then
            Format.fprintf fmt " le(%g)=%d" edges.(i) c
          else Format.fprintf fmt " inf=%d" c)
        counts

let pp fmt () =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-36s %a@\n" name pp_value v)
    (snapshot ())
