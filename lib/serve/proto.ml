(** The serve wire protocol: JSONL jobs over a stdin pipe.

    One JSON object per line on stdin, one response object per line on
    stdout, responses in input order. A job names a tool and an executable
    source:

    {v
    {"id": "j1", "tool": "qpt2", "corpus": "fib"}
    {"id": "j2", "tool": "sfi", "gen": {"seed": 9, "routines": 10, "style": "sunpro"}}
    {"id": "j3", "tool": "tracer", "file": "prog.sef", "fuel": 500000}
    {"id": "j4", "tool": "amemory", "sef_hex": "23204546..."}
    v}

    - [tool] (required): one of {!Eel_tools.Toolbox.names}.
    - exactly one source: [corpus] (a {!Eel_diffexec.Corpus} program name,
      including the OS-mode [os-*] programs), [gen] (a deterministic
      {!Eel_workload.Gen} workload; style ["os"] selects the I/O-bound
      OS-mode generator), [file] (a SEF path resolved in the daemon's
      cwd), or [sef_hex] (a hex-encoded SEF image inline — the
      pipe-friendly way to ship an executable that exists nowhere on
      disk). OS-mode sources carry their {!Eel_os.Spec} world implicitly:
      the corpus entry (or generator seed) determines it, and its digest
      participates in the result-cache key.
    - [id] (optional): echoed in the response; defaults to ["job-<n>"].
    - [fuel], [sfi_base], [sfi_size] (optional): forwarded to
      {!Eel_tools.Toolbox.measure}.

    Responses are deliberately deterministic (no wall-clock fields), so the
    response stream is byte-identical at any [EEL_JOBS]; timing lives in
    the stderr summary and the [--stats] JSON. *)

module Json = Eel_obs.Json

type src =
  | S_corpus of string
  | S_file of string
  | S_gen of { seed : int; routines : int; style : string }
  | S_inline of string  (** raw SEF container bytes, already un-hexed *)

type job = {
  j_id : string;
  j_tool : string;
  j_src : src;
  j_fuel : int option;
  j_sfi_base : int option;
  j_sfi_size : int option;
}

(* ---- hex codec (for sef_hex) ---- *)

let hex_encode (s : string) =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let hex_decode (s : string) : (string, string) result =
  let n = String.length s in
  if n mod 2 <> 0 then Error "sef_hex: odd length"
  else
    let nib c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.to_string out)
      else
        match (nib s.[i], nib s.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> Error (Printf.sprintf "sef_hex: bad digit at offset %d" i)
    in
    go 0

(* ---- JSON emission (the Json module only parses) ---- *)

let json_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* ---- parsing ---- *)

let num_field j name : (int option, string) result =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Num f) when Float.is_integer f -> Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let str_field j name : (string option, string) result =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let ( let* ) = Result.bind

let src_of_json j : (src, string) result =
  let* corpus = str_field j "corpus" in
  let* file = str_field j "file" in
  let* sef_hex = str_field j "sef_hex" in
  let gen = Json.member "gen" j in
  let named =
    List.filter_map Fun.id
      [
        Option.map (fun s -> `Corpus s) corpus;
        Option.map (fun s -> `File s) file;
        Option.map (fun s -> `Hex s) sef_hex;
        Option.map (fun g -> `Gen g) gen;
      ]
  in
  match named with
  | [ `Corpus name ] -> Ok (S_corpus name)
  | [ `File path ] -> Ok (S_file path)
  | [ `Hex hex ] ->
      let* raw = hex_decode hex in
      Ok (S_inline raw)
  | [ `Gen g ] ->
      let* seed = num_field g "seed" in
      let* routines = num_field g "routines" in
      let* style = str_field g "style" in
      let style = Option.value style ~default:"gcc" in
      if style <> "gcc" && style <> "sunpro" && style <> "os" then
        Error
          (Printf.sprintf
             "gen.style %S: expected \"gcc\", \"sunpro\" or \"os\"" style)
      else
        Ok
          (S_gen
             {
               seed = Option.value seed ~default:42;
               routines = Option.value routines ~default:8;
               style;
             })
  | [] -> Error "job needs one of: corpus, file, gen, sef_hex"
  | _ -> Error "job has more than one source (corpus/file/gen/sef_hex)"

(** [job_of_json ~seq j] — validate one decoded job object; [seq] numbers
    the default id. *)
let job_of_json ~seq j : (job, string) result =
  match j with
  | Json.Obj _ ->
      let* tool = str_field j "tool" in
      let* tool =
        match tool with
        | None -> Error "job is missing required field \"tool\""
        | Some t when List.mem t Eel_tools.Toolbox.names -> Ok t
        | Some t ->
            Error
              (Printf.sprintf "unknown tool %S (expected one of: %s)" t
                 (String.concat ", " Eel_tools.Toolbox.names))
      in
      let* src = src_of_json j in
      let* id = str_field j "id" in
      let* fuel = num_field j "fuel" in
      let* sfi_base = num_field j "sfi_base" in
      let* sfi_size = num_field j "sfi_size" in
      Ok
        {
          j_id = Option.value id ~default:(Printf.sprintf "job-%d" seq);
          j_tool = tool;
          j_src = src;
          j_fuel = fuel;
          j_sfi_base = sfi_base;
          j_sfi_size = sfi_size;
        }
  | _ -> Error "job line is not a JSON object"

let job_of_line ~seq line : (job, string) result =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "bad JSON: %s" m)
  | Ok j -> job_of_json ~seq j

(** Render a job back to one protocol line ([eel_batch --emit] uses this to
    write corpora that feed straight into [eel_serve]). *)
let job_to_line (j : job) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf {|{"id": %s, "tool": %s|} (json_str j.j_id) (json_str j.j_tool));
  (match j.j_src with
  | S_corpus name -> Buffer.add_string buf (Printf.sprintf {|, "corpus": %s|} (json_str name))
  | S_file path -> Buffer.add_string buf (Printf.sprintf {|, "file": %s|} (json_str path))
  | S_inline raw ->
      Buffer.add_string buf (Printf.sprintf {|, "sef_hex": %s|} (json_str (hex_encode raw)))
  | S_gen { seed; routines; style } ->
      Buffer.add_string buf
        (Printf.sprintf {|, "gen": {"seed": %d, "routines": %d, "style": %s}|} seed
           routines (json_str style)));
  Option.iter (fun f -> Buffer.add_string buf (Printf.sprintf {|, "fuel": %d|} f)) j.j_fuel;
  Option.iter (fun v -> Buffer.add_string buf (Printf.sprintf {|, "sfi_base": %d|} v)) j.j_sfi_base;
  Option.iter (fun v -> Buffer.add_string buf (Printf.sprintf {|, "sfi_size": %d|} v)) j.j_sfi_size;
  Buffer.add_char buf '}';
  Buffer.contents buf

(** Human label for the job's executable, used in reports and the ledger. *)
let prog_name (j : job) =
  match j.j_src with
  | S_corpus name -> name
  | S_file path -> Filename.basename path
  | S_gen { seed; routines; style } -> Printf.sprintf "gen-%s-s%d-r%d" style seed routines
  | S_inline raw -> Printf.sprintf "inline-%s" (String.sub (Digest.to_hex (Digest.string raw)) 0 8)
