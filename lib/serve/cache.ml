(** Content-addressed artifact cache for the rewriting service.

    Two layers, both keyed by [(namespace, hex-digest)] where the digest is
    a content hash of everything the artifact was computed from — so a key
    either misses or returns exactly the bytes some earlier computation
    produced, and "invalidation" is simply a changed key:

    - an {b in-memory} layer (a [Hashtbl] behind one [Mutex]) that is safe
      under {!Eel_util.Pool} domain fan-out and bounded by a byte budget
      with FIFO eviction — content-addressed entries never go stale, so
      recency bookkeeping buys nothing over insertion order here;
    - a {b durable on-disk} layer: one flat file per entry at
      [dir/<ns>-<key>], written atomically (temp file + [rename]), bounded
      by a byte budget ([EEL_CACHE_MB]) enforced by oldest-[mtime]-first
      eviction. Disk hits touch the file's mtime so the LRU order reflects
      use, and are promoted into the memory layer.

    Every operation bumps both [eel.cache.<ns>.*] metrics (domain-local,
    merged at pool joins) and a shared mutex-protected {!stats} record the
    tests can read mid-run from any domain. *)

type stats = {
  mutable st_mem_hits : int;
  mutable st_disk_hits : int;
  mutable st_misses : int;
  mutable st_stores : int;
  mutable st_store_bytes : int;
  mutable st_evictions : int;  (** disk files evicted *)
  mutable st_evicted_bytes : int;
}

type t = {
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t;
  order : string Queue.t;  (** mem keys, insertion order *)
  mutable mem_bytes : int;
  mem_budget : int;
  dir : string option;  (** [None]: memory-only cache *)
  disk_budget : int;
  mutable disk_bytes : int;  (** approximate; exact after each eviction scan *)
  mutable tmp_seq : int;
  stats : stats;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let metric ns what =
  Eel_obs.Metrics.incr
    (Eel_obs.Metrics.counter (Printf.sprintf "eel.cache.%s.%s" ns what))

let env_bytes name ~default_mb =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> mb * 1024 * 1024
      | _ -> default_mb * 1024 * 1024)
  | None -> default_mb * 1024 * 1024

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then (
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let is_tmp name = String.length name >= 4 && String.sub name 0 4 = ".tmp"

(* Entry files only; a crashed writer's temp files don't count against the
   budget and get swept by eviction. *)
let disk_entries dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if is_tmp name then None
             else
               let path = Filename.concat dir name in
               match Unix.stat path with
               | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                   Some (path, st_size, st_mtime)
               | _ -> None
               | exception Unix.Unix_error _ -> None)

(** [create ()] — a cache rooted at [?dir] (default [EEL_CACHE_DIR]; no
    directory means a memory-only cache), with the disk layer bounded by
    [?disk_budget_bytes] (default [EEL_CACHE_MB], else 256 MB) and the
    memory layer by [?mem_budget_bytes] (default 64 MB). *)
let create ?dir ?disk_budget_bytes ?mem_budget_bytes () =
  let dir =
    match dir with Some _ as d -> d | None -> Sys.getenv_opt "EEL_CACHE_DIR"
  in
  let disk_budget =
    match disk_budget_bytes with
    | Some b -> b
    | None -> env_bytes "EEL_CACHE_MB" ~default_mb:256
  in
  let mem_budget =
    match mem_budget_bytes with Some b -> b | None -> 64 * 1024 * 1024
  in
  Option.iter mkdir_p dir;
  let disk_bytes =
    match dir with
    | None -> 0
    | Some d -> List.fold_left (fun a (_, s, _) -> a + s) 0 (disk_entries d)
  in
  {
    lock = Mutex.create ();
    mem = Hashtbl.create 256;
    order = Queue.create ();
    mem_bytes = 0;
    mem_budget;
    dir;
    disk_budget;
    disk_bytes;
    tmp_seq = 0;
    stats =
      {
        st_mem_hits = 0;
        st_disk_hits = 0;
        st_misses = 0;
        st_stores = 0;
        st_store_bytes = 0;
        st_evictions = 0;
        st_evicted_bytes = 0;
      };
  }

let file_name ~ns key = ns ^ "-" ^ key

(* caller holds the lock *)
let mem_insert_locked t full v =
  if not (Hashtbl.mem t.mem full) then (
    Hashtbl.replace t.mem full v;
    Queue.push full t.order;
    t.mem_bytes <- t.mem_bytes + String.length v;
    while t.mem_bytes > t.mem_budget && Queue.length t.order > 1 do
      let victim = Queue.pop t.order in
      match Hashtbl.find_opt t.mem victim with
      | Some old ->
          Hashtbl.remove t.mem victim;
          t.mem_bytes <- t.mem_bytes - String.length old
      | None -> ()
    done)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | s -> Some s
      | exception (Sys_error _ | End_of_file) -> None)

(** Re-scan the disk layer and delete oldest-mtime entries until it fits
    the budget again. Exact: recomputes [disk_bytes] from the directory, so
    double-counted concurrent writes self-correct here. *)
let enforce_disk_budget t =
  match t.dir with
  | None -> ()
  | Some d ->
      with_lock t (fun () ->
          let entries = disk_entries d in
          let total = List.fold_left (fun a (_, s, _) -> a + s) 0 entries in
          t.disk_bytes <- total;
          if total > t.disk_budget then (
            let oldest_first =
              List.sort (fun (_, _, a) (_, _, b) -> compare a b) entries
            in
            let remaining = ref total in
            let n = List.length oldest_first in
            List.iteri
              (fun i (path, size, _) ->
                (* never evict the newest entry: a single oversized artifact
                   must not empty the cache it was just written into *)
                if !remaining > t.disk_budget && i < n - 1 then (
                  (try Sys.remove path with Sys_error _ -> ());
                  remaining := !remaining - size;
                  t.stats.st_evictions <- t.stats.st_evictions + 1;
                  t.stats.st_evicted_bytes <- t.stats.st_evicted_bytes + size))
              oldest_first;
            t.disk_bytes <- !remaining;
            metric "disk" "evict_scans"))

let get t ~ns key =
  let full = file_name ~ns key in
  let from_mem =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.mem full with
        | Some v ->
            t.stats.st_mem_hits <- t.stats.st_mem_hits + 1;
            Some v
        | None -> None)
  in
  match from_mem with
  | Some v ->
      metric ns "mem_hits";
      Some v
  | None -> (
      let from_disk =
        match t.dir with
        | None -> None
        | Some d -> (
            let path = Filename.concat d full in
            match read_file path with
            | Some v ->
                (* LRU touch: both times to "now" *)
                (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
                Some v
            | None -> None)
      in
      match from_disk with
      | Some v ->
          with_lock t (fun () ->
              t.stats.st_disk_hits <- t.stats.st_disk_hits + 1;
              mem_insert_locked t full v);
          metric ns "disk_hits";
          Some v
      | None ->
          with_lock t (fun () -> t.stats.st_misses <- t.stats.st_misses + 1);
          metric ns "misses";
          None)

let put t ~ns key v =
  let full = file_name ~ns key in
  let already =
    with_lock t (fun () ->
        if Hashtbl.mem t.mem full then true
        else (
          t.stats.st_stores <- t.stats.st_stores + 1;
          t.stats.st_store_bytes <- t.stats.st_store_bytes + String.length v;
          mem_insert_locked t full v;
          false))
  in
  if not already then (
    metric ns "stores";
    match t.dir with
    | None -> ()
    | Some d ->
        let path = Filename.concat d full in
        if not (Sys.file_exists path) then (
          let tmp =
            with_lock t (fun () ->
                t.tmp_seq <- t.tmp_seq + 1;
                Filename.concat d
                  (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ()) t.tmp_seq))
          in
          (try
             let oc = open_out_bin tmp in
             Fun.protect
               ~finally:(fun () -> close_out_noerr oc)
               (fun () -> output_string oc v);
             Sys.rename tmp path
           with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
          let over =
            with_lock t (fun () ->
                t.disk_bytes <- t.disk_bytes + String.length v;
                t.disk_bytes > t.disk_budget)
          in
          if over then enforce_disk_budget t))

(** Drop the whole memory layer (tests use this to force the disk path). *)
let mem_clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.mem;
      Queue.clear t.order;
      t.mem_bytes <- 0)

(** Number of entry files currently on disk. *)
let disk_entry_count t =
  match t.dir with None -> 0 | Some d -> List.length (disk_entries d)

type snapshot = {
  sn_mem_hits : int;
  sn_disk_hits : int;
  sn_misses : int;
  sn_stores : int;
  sn_store_bytes : int;
  sn_evictions : int;
  sn_evicted_bytes : int;
  sn_mem_entries : int;
  sn_mem_bytes : int;
  sn_disk_bytes : int;
}

let snapshot t =
  with_lock t (fun () ->
      {
        sn_mem_hits = t.stats.st_mem_hits;
        sn_disk_hits = t.stats.st_disk_hits;
        sn_misses = t.stats.st_misses;
        sn_stores = t.stats.st_stores;
        sn_store_bytes = t.stats.st_store_bytes;
        sn_evictions = t.stats.st_evictions;
        sn_evicted_bytes = t.stats.st_evicted_bytes;
        sn_mem_entries = Hashtbl.length t.mem;
        sn_mem_bytes = t.mem_bytes;
        sn_disk_bytes = t.disk_bytes;
      })

let hits s = s.sn_mem_hits + s.sn_disk_hits
let lookups s = hits s + s.sn_misses

let hit_rate s =
  let l = lookups s in
  if l = 0 then 0.0 else float_of_int (hits s) /. float_of_int l

let snapshot_to_json s =
  Printf.sprintf
    {|{"mem_hits": %d, "disk_hits": %d, "misses": %d, "hit_rate": %.4f, "stores": %d, "store_bytes": %d, "evictions": %d, "evicted_bytes": %d, "mem_entries": %d, "mem_bytes": %d, "disk_bytes": %d}|}
    s.sn_mem_hits s.sn_disk_hits s.sn_misses (hit_rate s) s.sn_stores
    s.sn_store_bytes s.sn_evictions s.sn_evicted_bytes s.sn_mem_entries
    s.sn_mem_bytes s.sn_disk_bytes

let stats_json t = snapshot_to_json (snapshot t)
