(** The rewriting-service engine: resolve a {!Proto.job} to an executable,
    route it through {!Eel_tools.Toolbox.measure} (so every served edit
    passes the contract oracle and lands in the overhead {!Eel_obs.Ledger}),
    and cache at two content-addressed granularities:

    - {b per-routine analysis facts} (namespace ["rf"], via {!Analysis}):
      installed ambiently for the whole batch, so even a cache-missing job
      re-slices only routines whose bytes changed;
    - {b whole-job results} (namespace ["job"]): keyed by a digest of the
      protocol version, tool, fuel/SFI parameters and the full image bytes.
      A hit replays the stored edited image and ledger entry without
      re-running instrument + verify. Only ["equivalent"] verdicts are
      stored — a divergence must re-verify every time, never be served from
      cache.

    Cache-hit responses are byte-identical to cache-miss responses by
    construction (the stored artifact {e is} the miss-path output), and the
    corpus-wide self-differential test pins exactly that. *)

module Toolbox = Eel_tools.Toolbox
module Diffexec = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
module Sef = Eel_sef.Sef
module Ledger = Eel_obs.Ledger
module Metrics = Eel_obs.Metrics
module Trace = Eel_obs.Trace
module B = Eel_util.Bytebuf
module Os_spec = Eel_os.Spec

type config = {
  c_cache : Cache.t;
  c_use_result : bool;  (** consult/populate the whole-job result cache *)
  c_use_analysis : bool;  (** install the per-routine analysis cache *)
  c_fuel : int;  (** default fuel for jobs that don't set one *)
}

let default_config cache =
  {
    c_cache = cache;
    c_use_result = true;
    c_use_analysis = true;
    c_fuel = Diffexec.default_fuel;
  }

(** What one job produced. [o_edited] is the full serialized edited image
    ([Sef.to_string]); the byte-identity guarantee is stated over it. *)
type outcome = {
  o_verdict : string;
  o_masked : int;
  o_result_hit : bool;  (** served from the result cache *)
  o_edited : string;
  o_entry : Ledger.entry;
}

type result = {
  sr_id : string;
  sr_tool : string;
  sr_prog : string;
  sr_outcome : (outcome, string) Stdlib.result;
}

let serve_metric what = Metrics.incr (Metrics.counter ("eel.serve." ^ what))

(* ---- job resolution ---- *)

(** [resolve j] — the job's executable plus, for OS-mode sources, the
    {!Os_spec} world it runs against. OS-ness is derived from the source
    itself (an [os-*] corpus entry, or gen style ["os"]): the job carries
    no separate world field, so a job line alone fully determines the
    run. *)
let resolve (j : Proto.job) :
    (Sef.t * Os_spec.t option, string) Stdlib.result =
  match j.Proto.j_src with
  | Proto.S_corpus name -> (
      match
        ( List.assoc_opt name Corpus.sources,
          List.assoc_opt name Corpus.os_sources )
      with
      | Some src, _ -> (
          match Eel_sparc.Asm.assemble src with
          | Ok exe -> Ok (exe, None)
          | Error m -> Error (Printf.sprintf "corpus %s: %s" name m))
      | None, Some (src, spec) -> (
          match Eel_sparc.Asm.assemble src with
          | Ok exe -> Ok (exe, Some spec)
          | Error m -> Error (Printf.sprintf "os corpus %s: %s" name m))
      | None, None -> Error (Printf.sprintf "unknown corpus program %S" name))
  | Proto.S_gen { seed; routines; style } when style = "os" -> (
      ignore routines;
      let src, world =
        Eel_workload.Gen.os_program { Eel_workload.Gen.default with seed }
      in
      match Eel_sparc.Asm.assemble src with
      | Ok exe -> Ok (exe, Some (Corpus.spec_of_world world))
      | Error m -> Error (Printf.sprintf "os gen workload: %s" m))
  | Proto.S_gen { seed; routines; style } -> (
      let style =
        if style = "sunpro" then Eel_workload.Gen.Sunpro else Eel_workload.Gen.Gcc
      in
      let src =
        Eel_workload.Gen.program
          { Eel_workload.Gen.default with seed; routines; style }
      in
      match Eel_sparc.Asm.assemble src with
      | Ok exe -> Ok (exe, None)
      | Error m -> Error (Printf.sprintf "gen workload: %s" m))
  | Proto.S_file path -> (
      match Sef.load_file path with
      | Ok exe -> Ok (exe, None)
      | Error e -> Error (Eel_robust.Diag.error_message e))
  | Proto.S_inline raw -> (
      match Sef.load raw with
      | Ok exe -> Ok (exe, None)
      | Error e -> Error (Eel_robust.Diag.error_message e))

(* ---- whole-job result cache ---- *)

let result_ns = "job"
let result_magic = "EELJ2"

(** The result key covers everything that can change the served bytes: the
    artifact version, the tool, every measure parameter, the OS world's
    digest (files, stdin and policy all shift the syscall stream), and the
    entire input image ([Sef.to_string] is canonical, so equal images
    digest equal). *)
let job_key (cfg : config) (j : Proto.job) ?os (image : string) =
  let buf = Buffer.create (String.length image + 64) in
  Buffer.add_string buf result_magic;
  Buffer.add_string buf Eel.Executable.analysis_version;
  B.wstr buf j.Proto.j_tool;
  B.w32 buf (Option.value j.Proto.j_fuel ~default:cfg.c_fuel);
  B.w32 buf (Option.value j.Proto.j_sfi_base ~default:(-1));
  B.w32 buf (Option.value j.Proto.j_sfi_size ~default:(-1));
  B.wstr buf (match os with None -> "" | Some spec -> Os_spec.digest spec);
  Buffer.add_string buf image;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let encode_outcome (o : outcome) =
  let e = o.o_entry in
  let buf = Buffer.create (String.length o.o_edited + 128) in
  Buffer.add_string buf result_magic;
  B.wstr buf o.o_verdict;
  B.w32 buf o.o_masked;
  B.w32 buf e.Ledger.le_sites;
  B.w32 buf e.Ledger.le_bytes_orig;
  B.w32 buf e.Ledger.le_bytes_edited;
  B.w32 buf e.Ledger.le_routines_touched;
  B.w32 buf e.Ledger.le_insns_orig;
  B.w32 buf e.Ledger.le_insns_edited;
  B.w32 buf e.Ledger.le_mem_orig;
  B.w32 buf e.Ledger.le_mem_edited;
  B.w32 buf e.Ledger.le_stores_masked;
  B.w32 buf e.Ledger.le_traps_masked;
  B.w32 buf e.Ledger.le_sys_masked;
  B.w32 buf e.Ledger.le_unexplained;
  B.w32 buf (String.length o.o_edited);
  Buffer.add_string buf o.o_edited;
  Buffer.contents buf

let decode_outcome ~tool ~prog (s : string) : outcome option =
  match
    let r = B.reader s in
    if B.rbytes r (String.length result_magic) <> Bytes.of_string result_magic
    then None
    else
      let verdict = B.rstr r in
      let masked = B.r32 r in
      let le_sites = B.r32 r in
      let le_bytes_orig = B.r32 r in
      let le_bytes_edited = B.r32 r in
      let le_routines_touched = B.r32 r in
      let le_insns_orig = B.r32 r in
      let le_insns_edited = B.r32 r in
      let le_mem_orig = B.r32 r in
      let le_mem_edited = B.r32 r in
      let le_stores_masked = B.r32 r in
      let le_traps_masked = B.r32 r in
      let le_sys_masked = B.r32 r in
      let le_unexplained = B.r32 r in
      let n = B.r32 r in
      let edited = Bytes.to_string (B.rbytes r n) in
      Some
        {
          o_verdict = verdict;
          o_masked = masked;
          o_result_hit = true;
          o_edited = edited;
          o_entry =
            {
              Ledger.le_tool = tool;
              le_prog = prog;
              le_verdict = verdict;
              le_sites;
              le_bytes_orig;
              le_bytes_edited;
              le_routines_touched;
              le_insns_orig;
              le_insns_edited;
              le_mem_orig;
              le_mem_edited;
              le_stores_masked;
              le_traps_masked;
              le_sys_masked;
              le_unexplained;
            };
        }
  with
  | v -> v
  | exception B.Truncated _ -> None

(* ---- the engine ---- *)

let run_job (cfg : config) (j : Proto.job) : result =
  let prog = Proto.prog_name j in
  Trace.with_span "serve.job"
    ~args:[ ("id", j.Proto.j_id); ("tool", j.Proto.j_tool); ("prog", prog) ]
    (fun () ->
      serve_metric "jobs";
      let outcome =
        match resolve j with
        | Error m ->
            serve_metric "resolve_errors";
            Error m
        | Ok (exe, os) -> (
            let image = Sef.to_string exe in
            let key =
              if cfg.c_use_result then Some (job_key cfg j ?os image) else None
            in
            let cached =
              match key with
              | None -> None
              | Some k ->
                  Option.bind
                    (Cache.get cfg.c_cache ~ns:result_ns k)
                    (decode_outcome ~tool:j.Proto.j_tool ~prog)
            in
            match cached with
            | Some o ->
                serve_metric "result_hits";
                (* a cache hit must leave the same ledger trail as a miss *)
                Ledger.record o.o_entry;
                Ok o
            | None -> (
                serve_metric "result_misses";
                let fuel = Option.value j.Proto.j_fuel ~default:cfg.c_fuel in
                match
                  Toolbox.measure ~fuel ?sfi_base:j.Proto.j_sfi_base
                    ?sfi_size:j.Proto.j_sfi_size ?os ~prog j.Proto.j_tool
                    Eel_sparc.Mach.mach exe
                with
                | Error e ->
                    serve_metric "measure_errors";
                    Error (Eel_robust.Diag.error_message e)
                | Ok ms ->
                    let entry = ms.Toolbox.ms_entry in
                    let o =
                      {
                        o_verdict = entry.Ledger.le_verdict;
                        o_masked = ms.Toolbox.ms_report.Diffexec.er_masked;
                        o_result_hit = false;
                        o_edited = Sef.to_string ms.Toolbox.ms_applied.Toolbox.ap_edited;
                        o_entry = entry;
                      }
                    in
                    (match key with
                    | Some k when o.o_verdict = "equivalent" ->
                        Cache.put cfg.c_cache ~ns:result_ns k (encode_outcome o)
                    | _ -> ());
                    Ok o))
      in
      (match outcome with Error _ -> serve_metric "errors" | Ok _ -> ());
      { sr_id = j.Proto.j_id; sr_tool = j.Proto.j_tool; sr_prog = prog; sr_outcome = outcome })

(** Run a batch across the pool with the analysis cache installed for the
    duration. Results come back in input order (the pool's merge is
    deterministic), so the response stream doesn't depend on [EEL_JOBS]. *)
let run_batch ?jobs (cfg : config) (batch : Proto.job list) : result list =
  let run () = Eel_util.Pool.map_list ?jobs (run_job cfg) batch in
  if cfg.c_use_analysis then (
    Analysis.install cfg.c_cache;
    Fun.protect ~finally:Analysis.uninstall run)
  else run ()

(* ---- the standard mixed corpus ---- *)

(** The deterministic mixed job corpus ([eel_batch] and the serve bench
    experiment share it): every corpus program (base and OS-mode) plus a
    spread of generated workloads (both compiler styles and the OS
    generator, varying sizes), crossed with all 6 tools by a stride
    coprime to the source count so neighbouring jobs differ in both tool
    and program. Fully determined by [(count, seed)]. *)
let mixed_jobs ~count ~seed =
  let gen_variants =
    List.init 9 (fun g ->
        Proto.S_gen
          {
            seed = seed + (17 * g);
            routines = 6 + (g mod 6);
            style = (if g mod 2 = 0 then "gcc" else "sunpro");
          })
  in
  let os_gen_variants =
    List.init 3 (fun g ->
        Proto.S_gen { seed = seed + (5 * g); routines = 0; style = "os" })
  in
  let sources =
    List.map (fun (name, _) -> Proto.S_corpus name) Corpus.sources
    @ List.map (fun (name, _) -> Proto.S_corpus name) Corpus.os_sources
    @ gen_variants @ os_gen_variants
  in
  let sources = Array.of_list sources in
  let n_src = Array.length sources in
  let tools = Array.of_list Toolbox.names in
  List.init count (fun i ->
      {
        Proto.j_id = Printf.sprintf "b%03d" i;
        j_tool = tools.(i mod Array.length tools);
        j_src = sources.((seed + (7 * i)) mod n_src);
        j_fuel = None;
        j_sfi_base = None;
        j_sfi_size = None;
      })

(* ---- response rendering (deterministic: no wall-clock fields) ---- *)

let result_to_line (r : result) =
  match r.sr_outcome with
  | Error m ->
      Printf.sprintf {|{"id": %s, "ok": false, "tool": %s, "prog": %s, "error": %s}|}
        (Proto.json_str r.sr_id) (Proto.json_str r.sr_tool)
        (Proto.json_str r.sr_prog) (Proto.json_str m)
  | Ok o ->
      Printf.sprintf
        {|{"id": %s, "ok": true, "tool": %s, "prog": %s, "verdict": %s, "cached": %b, "masked": %d, "sites": %d, "edited_bytes": %d, "edited_digest": %s, "unexplained": %d}|}
        (Proto.json_str r.sr_id) (Proto.json_str r.sr_tool)
        (Proto.json_str r.sr_prog) (Proto.json_str o.o_verdict) o.o_result_hit
        o.o_masked o.o_entry.Ledger.le_sites (String.length o.o_edited)
        (Proto.json_str (Digest.to_hex (Digest.string o.o_edited)))
        o.o_entry.Ledger.le_unexplained

let ok (r : result) =
  match r.sr_outcome with
  | Ok o -> o.o_verdict = "equivalent"
  | Error _ -> false

let cached (r : result) =
  match r.sr_outcome with Ok o -> o.o_result_hit | Error _ -> false
