(** Per-routine analysis artifacts: the bridge between {!Cache} and
    {!Eel.Executable}'s ambient analysis hooks.

    The artifact for one routine is its converged dispatch-table set — the
    output of the jump-table slicing fixpoint, which is the expensive,
    iterative part of CFG construction (the CFG itself rebuilds in one
    deterministic pass once the tables are known). Artifacts are stored
    under namespace ["rf"] keyed by {!Eel.Executable.routine_digest}, and
    carry a magic + version so a stale or foreign blob decodes to a miss,
    never a wrong answer. *)

module C = Eel.Cfg
module B = Eel_util.Bytebuf

let ns = "rf"
let magic = "EELA1"

let encode (tables : (int * C.table) list) : string =
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  B.w32 buf (List.length tables);
  List.iter
    (fun (jump_addr, (tbl : C.table)) ->
      B.w32 buf jump_addr;
      B.w8 buf (if tbl.C.t_addr < 0 then 1 else 0);
      B.w32 buf (abs tbl.C.t_addr);
      B.w32 buf (Array.length tbl.C.t_targets);
      Array.iter (B.w32 buf) tbl.C.t_targets)
    tables;
  Buffer.contents buf

let decode (s : string) : (int * C.table) list option =
  match
    let r = B.reader s in
    if B.rbytes r (String.length magic) <> Bytes.of_string magic then None
    else
      let n = B.r32 r in
      let rec go k acc =
        if k = 0 then Some (List.rev acc)
        else
          let jump_addr = B.r32 r in
          let neg = B.r8 r = 1 in
          let a = B.r32 r in
          let t_addr = if neg then -a else a in
          let count = B.r32 r in
          let t_targets = Array.init count (fun _ -> B.r32 r) in
          go (k - 1) ((jump_addr, { C.t_addr; t_targets }) :: acc)
      in
      go n []
  with
  | v -> v
  | exception B.Truncated _ -> None

(** Hooks backed by [cache]; install with
    [Eel.Executable.set_analysis_cache (Some (hooks cache))]. *)
let hooks (cache : Cache.t) : Eel.Executable.analysis_hooks =
  {
    Eel.Executable.ac_lookup =
      (fun digest ->
        match Cache.get cache ~ns digest with
        | None -> None
        | Some blob -> decode blob);
    ac_store =
      (fun digest tables -> Cache.put cache ~ns digest (encode tables));
  }

let install cache = Eel.Executable.set_analysis_cache (Some (hooks cache))
let uninstall () = Eel.Executable.set_analysis_cache None
