(** Address tracer — qpt's second mode (paper §1: "profiling and tracing
    tools, such as MIPS's pixie or qpt, edit executables to record execution
    frequencies or trace memory references").

    Before every editable load and store, a snippet appends the effective
    address to an in-memory trace buffer through a bump pointer. The trace
    is validated against the emulator's own memory-event stream (the ground
    truth a hardware-level tracer would see). The buffer wraps at a
    power-of-two size, so long runs are safe; tests use runs that fit. *)

module E = Eel.Executable
module C = Eel.Cfg
module Snippet = Eel.Snippet
module Instr = Eel_arch.Instr

type t = {
  edited : Eel_sef.Sef.t;
  exec : E.t;  (** the analyzed executable (address maps, CFG anchors) *)
  buf_addr : int;  (** trace buffer base *)
  buf_size : int;
  ptr_addr : int;  (** bump pointer (byte offset within the buffer) *)
  instrumented : int;
  skipped_uneditable : int;
}

let trace_asm mach (i : Instr.t) ~buf ~ptr ~mask =
  let rn = mach.Eel_arch.Machine.reg_name in
  let ea =
    match i.Instr.ea with
    | Some (rs1, Instr.O_imm k) ->
        Printf.sprintf "        add %s, %d, %%v0\n" (rn rs1) k
    | Some (rs1, Instr.O_reg r2) ->
        Printf.sprintf "        add %s, %s, %%v0\n" (rn rs1) (rn r2)
    | None -> invalid_arg "tracer: not a memory instruction"
  in
  ea
  ^ Printf.sprintf
      {|        sethi %%hi(%d), %%v1
        ld [%%v1 + %%lo(%d)], %%v2
        sethi %%hi(%d), %%v3
        or %%v3, %%lo(%d), %%v3
        st %%v0, [%%v3 + %%v2]
        add %%v2, 4, %%v2
        sethi %%hi(%d), %%v3
        or %%v3, %%lo(%d), %%v3
        and %%v2, %%v3, %%v2
        sethi %%hi(%d), %%v1
        st %%v2, [%%v1 + %%lo(%d)]
|}
      ptr ptr buf buf mask mask ptr ptr

(** [instrument mach exe] adds address tracing to every editable memory
    reference. [buf_size] must be a power of two (default 1 MiB). *)
let instrument ?(buf_size = 1 lsl 20) mach exe =
  if buf_size land (buf_size - 1) <> 0 then invalid_arg "tracer: buffer size";
  let t = E.read_contents mach exe in
  let buf_addr = E.reserve_data t buf_size in
  let ptr_addr = E.reserve_data t 4 in
  let instrumented = ref 0 and skipped = ref 0 in
  let do_routine (r : E.routine) =
    let g = E.control_flow_graph t r in
    let ed = E.editor t r in
    List.iter
      (fun (b : C.block) ->
        if b.C.reachable && not b.C.is_data then
          Array.iteri
            (fun idx (_, (i : Instr.t)) ->
              if Instr.is_memory i then
                if not b.C.editable then incr skipped
                else (
                  let s =
                    Snippet.of_asm mach
                      (trace_asm mach i ~buf:buf_addr ~ptr:ptr_addr
                         ~mask:(buf_size - 1))
                  in
                  Eel.Edit.add_before ed b idx s;
                  incr instrumented))
            b.C.instrs)
      (C.blocks g);
    E.produce_edited_routine t r
  in
  List.iter do_routine (E.routines t);
  let rec drain () =
    match E.take_hidden t with Some r -> do_routine r; drain () | None -> ()
  in
  drain ();
  {
    edited = E.to_edited_sef t ();
    exec = t;
    buf_addr;
    buf_size;
    ptr_addr;
    instrumented = !instrumented;
    skipped_uneditable = !skipped;
  }

(** Extract the recorded addresses from the memory of a finished run. *)
let trace (tr : t) (mem : Bytes.t) =
  let n = Eel_util.Bytebuf.get32_be mem tr.ptr_addr / 4 in
  List.init n (fun k -> Eel_util.Bytebuf.get32_be mem (tr.buf_addr + (4 * k)))

(** The tool's edit contract: stores land in the trace buffer and its bump
    pointer (plus snippet spill slots); when every memory reference was
    instrumented and the buffer did not wrap, the number of recorded
    entries must equal the original run's dynamic memory-instruction
    count. *)
let contract (tr : t) =
  let regions =
    [
      Eel_equiv.Contract.region ~name:"trace buffer" ~lo:tr.buf_addr
        ~size:tr.buf_size;
      Eel_equiv.Contract.region ~name:"trace pointer" ~lo:tr.ptr_addr ~size:4;
    ]
  in
  let check =
    {
      Eel_equiv.Contract.ck_name = "trace-length-matches-profile";
      ck_run =
        (fun ~profile ~mem ->
          let entries = Eel_util.Bytebuf.get32_be mem tr.ptr_addr / 4 in
          let truth = Eel_emu.Emu.mem_ops profile in
          if tr.skipped_uneditable = 0 && 4 * truth < tr.buf_size then
            if entries = truth then Ok ()
            else
              Error
                (Printf.sprintf
                   "trace has %d entries, original run executed %d memory \
                    instructions"
                   entries truth)
          else if entries <= truth then Ok ()
          else
            Error
              (Printf.sprintf
                 "trace has %d entries but only %d memory instructions ran"
                 entries truth));
    }
  in
  Eel_equiv.Contract.make "tracer" ~regions ~red_zone:Snippet.red_zone
    ~checks:[ check ]

(** Fault-campaign target: only the bump pointer is cross-validated (buffer
    {e contents} are not promised word-for-word, so corrupting a buffer
    slot is undetectable by design and not offered). Starting the pointer
    at 8 inflates the entry count past the ground-truth memory-op count on
    both branches of the length check. *)
let fault_targets (tr : t) = [ ("trace pointer", tr.ptr_addr, 8) ]
