(** qpt2 — the EEL-based profiler (paper Fig. 1 and Table 1).

    Follows the paper's branch-counting tool structure exactly: for every
    routine (and every hidden routine discovered along the way), place a
    counter snippet along each editable outgoing edge of every basic block
    with more than one successor, then produce the edited routine. Counter
    memory is reserved in the executable's added-data region, so the edited
    program counts its own edge executions as it runs; {!counts} reads the
    values back out of an emulator that ran it.

    {!contract} states the tool's side effects for the equivalence oracle
    (lib/equiv): stores land only in the counter span (plus snippet spill
    slots in the stack red zone), and — the tool's headline promise — the
    out-edge counters of every fully instrumented block sum to exactly the
    number of times that block's branch executed, per the emulator's
    ground-truth profile. *)

module E = Eel.Executable
module C = Eel.Cfg
module Snippet = Eel.Snippet
module Contract = Eel_equiv.Contract
module Emu = Eel_emu.Emu

type counter = {
  c_addr : int;  (** counter word's address in the edited program *)
  c_routine : string;
  c_block : int;  (** source block id *)
  c_edge : int;  (** edge id within the routine's CFG *)
  c_site_pc : int;
      (** original address of the block's terminating branch; -1 when the
          block has no terminator instruction *)
}

type t = {
  edited : Eel_sef.Sef.t;
  counters : counter list;
  exec : E.t;
  skipped_uneditable : int;  (** edges that could not carry code (§3.3) *)
  skipped_blocks : (string * int) list;
      (** blocks with at least one uninstrumented out-edge: their counter
          sums are lower bounds, not exact — excluded from cross-validation *)
}

(* paper Fig. 2: increment a counter word at a tool-chosen address *)
let incr_count mach counter_addr =
  Snippet.of_asm mach
    ~params:[ ("counter", counter_addr) ]
    {|
        sethi %hi($counter), %v0
        ld [%v0 + %lo($counter)], %v1
        add %v1, 1, %v1
        st %v1, [%v0 + %lo($counter)]
|}

(* paper Fig. 1: instrument one routine *)
let instrument_routine t (r : E.routine) counters skipped skipped_blocks =
  let g = E.control_flow_graph t r in
  let ed = E.editor t r in
  List.iter
    (fun (b : C.block) ->
      if b.C.reachable && List.length b.C.succs > 1 then (
        let site_pc =
          match C.term_instr b with Some (ta, _) -> ta | None -> -1
        in
        let block_skipped = ref false in
        List.iter
          (fun (e : C.edge) ->
            if e.C.e_editable then (
              let addr = E.reserve_data t 4 in
              counters :=
                {
                  c_addr = addr;
                  c_routine = r.E.r_name;
                  c_block = b.C.bid;
                  c_edge = e.C.eid;
                  c_site_pc = site_pc;
                }
                :: !counters;
              Eel.Edit.add_along ed e (incr_count t.E.mach addr))
            else (
              incr skipped;
              block_skipped := true))
          b.C.succs;
        if !block_skipped then
          skipped_blocks := (r.E.r_name, b.C.bid) :: !skipped_blocks))
    (C.blocks g);
  E.produce_edited_routine t r;
  E.delete_control_flow_graph r

(** [instrument mach exe] — the whole tool (paper Fig. 1's [main]). *)
let instrument ?(cache_instrs = true) ?(fold_delay = true) mach exe =
  let t = E.read_contents ~cache_instrs mach exe in
  t.E.fold_delay <- fold_delay;
  let counters = ref [] in
  let skipped = ref 0 in
  let skipped_blocks = ref [] in
  List.iter
    (fun r -> instrument_routine t r counters skipped skipped_blocks)
    (E.routines t);
  (* "while (!exec->hidden_routines()->is_empty()) ..." *)
  let rec drain () =
    match E.take_hidden t with
    | Some r ->
        instrument_routine t r counters skipped skipped_blocks;
        drain ()
    | None -> ()
  in
  drain ();
  let edited = E.to_edited_sef t () in
  {
    edited;
    counters = List.rev !counters;
    exec = t;
    skipped_uneditable = !skipped;
    skipped_blocks = !skipped_blocks;
  }

(** Read counter values from the memory of an emulator that ran the edited
    program. *)
let counts (prof : t) (mem : Bytes.t) =
  List.map
    (fun c -> (c, Eel_util.Bytebuf.get32_be mem c.c_addr))
    prof.counters

(** [validate_counts p ~profile ~mem] — the cross-validation promise: for
    every fully instrumented multi-successor block, the sum of its out-edge
    counters (read from the edited run's memory) must equal the number of
    times its terminating branch executed in the {e original} run
    (equivalent programs execute the same path). Exact equality — this is
    what catches off-by-one edge-instrumentation bugs around delay slots
    and annulled branches. *)
let validate_counts (p : t) ~profile ~(mem : Bytes.t) =
  (* group counters by instrumentation site *)
  let sums = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = (c.c_routine, c.c_block) in
      let sum, pc =
        Option.value ~default:(0, c.c_site_pc) (Hashtbl.find_opt sums key)
      in
      Hashtbl.replace sums key
        (sum + Eel_util.Bytebuf.get32_be mem c.c_addr, pc))
    p.counters;
  let skipped = p.skipped_blocks in
  Hashtbl.fold
    (fun (rname, bid) (sum, site_pc) acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          if site_pc < 0 || List.mem (rname, bid) skipped then Ok ()
          else
            let truth = Emu.pc_count profile site_pc in
            if sum = truth then Ok ()
            else
              Error
                (Printf.sprintf
                   "%s block %d: counters sum to %d, branch at 0x%x executed \
                    %d times"
                   rname bid sum site_pc truth))
    sums (Ok ())

(** The tool's edit contract (see {!Eel_equiv.Contract}): counter stores
    live in the span of reserved counter words, snippets may spill into the
    stack red zone, and the counters must reproduce the ground-truth
    profile. *)
let contract (p : t) =
  let regions =
    Option.to_list
      (Contract.span ~name:"qpt2 counters"
         (List.map (fun c -> c.c_addr) p.counters))
  in
  let check =
    {
      Contract.ck_name = "counters-match-profile";
      ck_run = (fun ~profile ~mem -> validate_counts p ~profile ~mem);
    }
  in
  Contract.make "qpt2" ~regions ~red_zone:Snippet.red_zone ~checks:[ check ]

(** Words the fault-injection campaign may corrupt with the guarantee that
    {!contract}'s post-run check notices: counter words whose block is
    fully instrumented (skewing a lower-bound counter of a skipped block
    would be absorbed by design). The value is the skew written before the
    run — any nonzero start breaks the exact-sum promise. *)
let fault_targets (p : t) =
  List.filter_map
    (fun c ->
      if c.c_site_pc >= 0 && not (List.mem (c.c_routine, c.c_block) p.skipped_blocks)
      then Some (Printf.sprintf "counter@0x%x" c.c_addr, c.c_addr, 7)
      else None)
    p.counters
