(** oldqpt — an ad-hoc, machine-specific branch-counting instrumenter.

    This is the Table 1 baseline: the counterpart of the original qpt, which
    was "14,500 non-comment, non-blank lines of C" of hand-written,
    SPARC-specific rewriting with no reusable abstractions. The tool here is
    deliberately built the way such tools were:

    - one linear pass over the text segment, no CFG, no liveness;
    - counter code uses two {e fixed} scavenged registers (%g6/%g7) instead
      of context-dependent allocation;
    - a branch sitting in another instruction's delay slot is silently
      skipped (the classic ad-hoc dodge for delayed-branch complications);
    - indirect control flow is "handled" by a heuristic sweep that rewrites
      any data word that looks like a text address — precisely the kind of
      unreliable trick the paper's §1 warns about ("ad-hoc systems are
      unlikely to employ reliable, general analyses").

    It is fast and small, and on well-behaved programs (like the generated
    workloads) it produces working output — which is what makes the
    comparison with qpt2 meaningful: EEL buys reliability and generality at
    a measured cost in tool time and allocated objects (experiments E1, E4,
    E8). *)

module Sef = Eel_sef.Sef
open Eel_sparc
module W = Eel_util.Word

type t = {
  edited : Sef.t;
  counters : (int * int) list;  (** counter address, original branch pc *)
  objects : int;  (** rough count of allocations, for experiment E8 *)
  blocks_seen : int;  (** "old-style" basic-block count, for E4 *)
  rev_map : (int, int) Hashtbl.t;
      (** edited instruction address -> original address, for the
          equivalence oracle's code-pointer normalization *)
}

let counter_words counter_addr =
  [
    Insn.encode (Insn.Sethi { rd = Regs.g6; imm22 = counter_addr lsr 10 });
    Insn.encode
      (Insn.Mem
         {
           op = Insn.Ld;
           rs1 = Regs.g6;
           op2 = Insn.O_imm (counter_addr land 0x3FF);
           rd = Regs.g7;
         });
    Insn.encode
      (Insn.Alu { op = Insn.Add; rs1 = Regs.g7; op2 = Insn.O_imm 1; rd = Regs.g7 });
    Insn.encode
      (Insn.Mem
         {
           op = Insn.St;
           rs1 = Regs.g6;
           op2 = Insn.O_imm (counter_addr land 0x3FF);
           rd = Regs.g7;
         });
  ]

let instrument (exe : Sef.t) =
  let objects = ref 0 in
  let text =
    match Sef.text_sections exe with
    | [ s ] -> s
    | _ -> failwith "oldqpt: expected one text section"
  in
  let text_lo = text.Sef.vaddr in
  let n = text.Sef.size / 4 in
  let word i = Eel_util.Bytebuf.get32_be text.Sef.contents (4 * i) in
  let align64k a = (a + 0xFFFF) land lnot 0xFFFF in
  let high = Sef.high_addr exe in
  let data_base = align64k high in
  let new_text_base = align64k (data_base + 0x40000) in
  (* pass 1: decode, decide insertion points, assign new offsets *)
  let insns = Array.init n (fun i -> Insn.decode (word i)) in
  objects := !objects + n;
  let is_delayed = function
    | Insn.Bicc _ | Insn.Call _ | Insn.Jmpl _ -> true
    | _ -> false
  in
  let in_delay_slot i = i > 0 && is_delayed insns.(i - 1) in
  let instrument_here i =
    match insns.(i) with
    | Insn.Bicc _ -> not (in_delay_slot i)
    | _ -> false
  in
  (* [new_index.(i)] is the word index where original instruction [i]'s
     code group starts (counter code first, if any); [insn_pos.(i)] is the
     index of the instruction itself. Transfers are remapped to the group
     start so instrumented branch targets still get counted. *)
  (* old-style basic-block count: leaders at transfer targets and after
     each control transfer (+delay); this is the flat notion of block the
     original qpt used (paper footnote: "the two programs use slightly
     different definitions of a basic block") *)
  let leader = Array.make (n + 1) false in
  leader.(0) <- true;
  for i = 0 to n - 1 do
    (match insns.(i) with
    | Insn.Bicc { disp22; _ } ->
        let tgt = i + disp22 in
        if tgt >= 0 && tgt <= n then leader.(tgt) <- true;
        if i + 2 <= n then leader.(min n (i + 2)) <- true
    | Insn.Call { disp30 } ->
        let tgt = i + disp30 in
        if tgt >= 0 && tgt <= n then leader.(tgt) <- true;
        if i + 2 <= n then leader.(min n (i + 2)) <- true
    | Insn.Jmpl _ -> if i + 2 <= n then leader.(min n (i + 2)) <- true
    | _ -> ())
  done;
  let blocks_seen = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then incr blocks_seen
  done;
  let new_index = Array.make (n + 1) 0 in
  let insn_pos = Array.make n 0 in
  let counters = ref [] in
  let data_cursor = ref data_base in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    new_index.(i) <- !cursor;
    if instrument_here i then cursor := !cursor + 4;
    insn_pos.(i) <- !cursor;
    incr cursor
  done;
  new_index.(n) <- !cursor;
  let map addr =
    if addr >= text_lo && addr < text_lo + (4 * n) && addr land 3 = 0 then
      Some (new_text_base + (4 * new_index.((addr - text_lo) / 4)))
    else None
  in
  (* pass 2: emit *)
  let out = Bytes.make (4 * !cursor) '\000' in
  let emit idx w = Eel_util.Bytebuf.set32_be out (4 * idx) w in
  let rev_map = Hashtbl.create n in
  for i = 0 to n - 1 do
    let old_pc = text_lo + (4 * i) in
    let new_pc = new_text_base + (4 * insn_pos.(i)) in
    Hashtbl.replace rev_map new_pc old_pc;
    (if instrument_here i then (
       let caddr = !data_cursor in
       data_cursor := !data_cursor + 4;
       counters := (caddr, old_pc) :: !counters;
       objects := !objects + 1;
       List.iteri (fun k w -> emit (new_index.(i) + k) w) (counter_words caddr)));
    let w =
      match insns.(i) with
      | Insn.Bicc b -> (
          let old_target = old_pc + (b.disp22 * 4) in
          match map old_target with
          | Some nt -> Insn.encode (Insn.Bicc { b with disp22 = (nt - new_pc) asr 2 })
          | None -> word i)
      | Insn.Call c -> (
          let old_target = old_pc + (c.disp30 * 4) in
          match map old_target with
          | Some nt -> Insn.encode (Insn.Call { disp30 = (nt - new_pc) asr 2 })
          | None -> word i)
      | _ -> word i
    in
    emit insn_pos.(i) w
  done;
  (* pass 3: the ad-hoc pointer sweep — rewrite anything in the data
     sections (or non-code text words) that looks like a code address *)
  let sections =
    List.map
      (fun (s : Sef.section) -> { s with Sef.contents = Bytes.copy s.Sef.contents })
      exe.Sef.sections
  in
  List.iter
    (fun (s : Sef.section) ->
      if s.Sef.sec_kind = Sef.Data then
        for k = 0 to (s.Sef.size / 4) - 1 do
          let v = Eel_util.Bytebuf.get32_be s.Sef.contents (4 * k) in
          match map v with
          | Some nv -> Eel_util.Bytebuf.set32_be s.Sef.contents (4 * k) nv
          | None -> ()
        done
      else if s.Sef.sec_kind = Sef.Text then
        (* non-code words inside text (jump tables): same sweep *)
        for k = 0 to (s.Sef.size / 4) - 1 do
          let w = Eel_util.Bytebuf.get32_be s.Sef.contents (4 * k) in
          (* a word is "probably data" if it decodes invalid *)
          match Insn.decode w with
          | Insn.Invalid _ | Insn.Unimp _ -> (
              match map w with
              | Some nv -> Eel_util.Bytebuf.set32_be s.Sef.contents (4 * k) nv
              | None -> ())
          | _ -> ()
        done)
    sections;
  let counter_sec =
    {
      Sef.sec_name = ".oldqpt.data";
      sec_kind = Sef.Bss;
      vaddr = data_base;
      size = max 8 (!data_cursor - data_base);
      contents = Bytes.empty;
    }
  in
  let text_sec =
    {
      Sef.sec_name = ".oldqpt.text";
      sec_kind = Sef.Text;
      vaddr = new_text_base;
      size = Bytes.length out;
      contents = out;
    }
  in
  let entry =
    match map exe.Sef.entry with Some e -> e | None -> exe.Sef.entry
  in
  {
    edited =
      Sef.create ~entry
        ~sections:(sections @ [ counter_sec; text_sec ])
        ~symbols:exe.Sef.symbols;
    counters = List.rev !counters;
    objects = !objects;
    blocks_seen = !blocks_seen;
    rev_map;
  }

(** Normalizer for the equivalence oracle: edited code addresses map back
    to their original ones (a spilled return address observes the edited
    pc), everything else passes through. *)
let inverse_address_norm (t : t) v =
  match Hashtbl.find_opt t.rev_map v with Some orig -> orig | None -> v

(** The tool's edit contract. oldqpt uses fixed scavenged registers
    (%g6/%g7) and never spills, so there is no red zone to declare — its
    only declared side effect is the counter stores. The promise is exact:
    each counter was placed before one non-delay-slot branch and must equal
    that branch pc's execution count in the ground-truth profile. When the
    ad-hoc rewriting goes wrong (the §1 failure modes this baseline
    exists to demonstrate), the oracle reports it. *)
let contract (t : t) =
  let regions =
    Option.to_list
      (Eel_equiv.Contract.span ~name:"oldqpt counters"
         (List.map fst t.counters))
  in
  let check =
    {
      Eel_equiv.Contract.ck_name = "counters-match-profile";
      ck_run =
        (fun ~profile ~mem ->
          List.fold_left
            (fun acc (caddr, branch_pc) ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let v = Eel_util.Bytebuf.get32_be mem caddr in
                  let truth = Eel_emu.Emu.pc_count profile branch_pc in
                  if v = truth then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "counter for branch 0x%x reads %d, branch executed \
                          %d times"
                         branch_pc v truth))
            (Ok ()) t.counters);
    }
  in
  Eel_equiv.Contract.make "oldqpt" ~regions ~checks:[ check ]

(** Fault-campaign targets: every counter is validated exactly against its
    branch's ground-truth count, so any nonzero starting skew is caught. *)
let fault_targets (t : t) =
  List.map
    (fun (caddr, branch_pc) ->
      (Printf.sprintf "counter@0x%x(branch 0x%x)" caddr branch_pc, caddr, 7))
    t.counters
