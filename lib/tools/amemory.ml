(** Active Memory — fast in-line cache simulation (paper §5, [16]).

    "Alvin Lebeck and David Wood built Active Memory, which is a platform
    for efficiently simulating memory systems. It inserts a quick test
    before load and store instructions to check the state of the accessed
    location. Different states invoke handlers to perform tasks such as
    cache simulation. Active Memory exploits EEL's ability to insert foreign
    code efficiently and to add many routines (another program) to an
    executable."

    The simulated cache is a presence-bitmap over 16-byte lines covering the
    whole address space the emulator can reach: each memory reference's line
    is tested in line; on a miss, a handler routine (added to the
    executable, as in the paper) marks the line present and counts the miss.
    Experiment E6 measures the edited program's dynamic-instruction slowdown
    — the paper reports 2–7×.

    The tool also reproduces the Blizzard-S optimization the paper calls
    out: "one optimization exploits EEL's live register analysis to insert a
    faster test sequence when condition codes are not live." When the
    condition codes are dead at the insertion point, the fast test uses an
    ordinary compare-and-branch; when they are {e live}, a branch-free
    sequence computes the join point's address arithmetically (a pc-relative
    jump indexed by the state byte) so the program's condition codes survive
    the test. *)

module E = Eel.Executable
module C = Eel.Cfg
module Snippet = Eel.Snippet
module Regset = Eel_arch.Regset
module Instr = Eel_arch.Instr

type t = {
  edited : Eel_sef.Sef.t;
  exec : E.t;  (** the analyzed executable (address maps, CFG anchors) *)
  miss_counter : int;  (** address of the miss-count word *)
  ref_counter : int;  (** address of the tested-reference count word *)
  state_table : int;
  mbox : int;  (** handler argument mailbox *)
  instrumented : int;
  skipped_uneditable : int;
  cc_live_sites : int;  (** sites that needed the cc-preserving sequence *)
}

let line_bytes = 16

(** Address-space coverage of the state table: 16 MiB, enough for any
    executable this repository's emulator can load (checked at run time by
    the emulator's own bounds). One byte per 16-byte line = 1 MiB table. *)
let cover = 16 * 1024 * 1024

let table_size = cover / line_bytes

(* The miss handler: marks the line present and counts the miss. It uses
   only EEL's reserved scratch registers and executes no cc-setting
   instruction, so it is transparent to program state (other than the
   simulated cache itself). *)
let handler_asm =
  {|
        sethi %hi($mbox), %g6
        ld [%g6 + %lo($mbox)], %g6      ! line index
        sethi %hi($table), %g7
        or %g7, %lo($table), %g7
        add %g7, %g6, %g6               ! state byte address
        mov 1, %g7
        stb %g7, [%g6]
        sethi %hi($miss), %g6
        ld [%g6 + %lo($miss)], %g7
        add %g7, 1, %g7
        retl
        st %g7, [%g6 + %lo($miss)]
|}

(* Fast-path test when the condition codes are DEAD at the site: ordinary
   compare and branch. %v0 = line index, %v1/%v2 scratch, %v3 saves %o7. *)
let test_cc_dead ea_asm =
  ea_asm
  ^ {|
        srl %v0, 4, %v0
        sethi %hi($table), %v1
        or %v1, %lo($table), %v1
        ldub [%v1 + %v0], %v2
        subcc %v2, 0, %g0
        bne Lhit
        nop
        mov %o7, %v3
        sethi %hi($mbox), %v2
        st %v0, [%v2 + %lo($mbox)]
        call $handler
        nop
        mov %v3, %o7
Lhit:   sethi %hi($refs), %v1
        ld [%v1 + %lo($refs)], %v2
        add %v2, 1, %v2
        st %v2, [%v1 + %lo($refs)]
|}

(* Branch-free variant when the condition codes are LIVE: select the join
   point arithmetically. The state byte (0 or 1) scales a pc-relative
   offset; no cc-setting instruction executes, and the handler is also
   cc-transparent. *)
let test_cc_live ea_asm =
  ea_asm
  ^ {|
        srl %v0, 4, %v0
        sethi %hi($table), %v1
        or %v1, %lo($table), %v1
        ldub [%v1 + %v0], %v2
        mov %o7, %v3
        call Lbase                      ! %o7 := pc, no cc effects
        sll %v2, 4, %v2                 ! delay: state*16 (miss path is 16 bytes)
Lbase:  add %v2, 20, %v2                ! Lmiss is 20 bytes past the call
        jmp %o7 + %v2
        nop
Lmiss:  sethi %hi($mbox), %v2           ! state=0: record and call handler
        st %v0, [%v2 + %lo($mbox)]
        call $handler
        nop
Lhit:   mov %v3, %o7
        sethi %hi($refs), %v1
        ld [%v1 + %lo($refs)], %v2
        add %v2, 1, %v2
        st %v2, [%v1 + %lo($refs)]
|}

(* effective-address computation for a memory instruction: the snippet runs
   BEFORE the reference, when its address registers still hold their
   values *)
let ea_asm mach (i : Instr.t) =
  match i.Instr.ea with
  | Some (rs1, Instr.O_imm k) ->
      Printf.sprintf "        add %s, %d, %%v0\n" (mach.Eel_arch.Machine.reg_name rs1) k
  | Some (rs1, Instr.O_reg r2) ->
      Printf.sprintf "        add %s, %s, %%v0\n"
        (mach.Eel_arch.Machine.reg_name rs1)
        (mach.Eel_arch.Machine.reg_name r2)
  | None -> invalid_arg "amemory: not a memory instruction"

let icc_reg = Eel_sparc.Regs.icc

(** [instrument mach exe] inserts a cache test before every editable memory
    reference. *)
let instrument ?(cc_optimization = true) mach exe =
  let t = E.read_contents mach exe in
  let state_table = E.reserve_data t table_size in
  let miss_counter = E.reserve_data t 4 in
  let ref_counter = E.reserve_data t 4 in
  let mbox = E.reserve_data t 4 in
  let handler =
    E.add_routine t ~name:"__am_handler"
      ~params:
        [ ("mbox", mbox); ("table", state_table); ("miss", miss_counter) ]
      handler_asm
  in
  let params =
    [
      ("table", state_table);
      ("mbox", mbox);
      ("handler", handler);
      ("refs", ref_counter);
    ]
  in
  let instrumented = ref 0 and skipped = ref 0 and cc_live_sites = ref 0 in
  let do_routine (r : E.routine) =
    let g = E.control_flow_graph t r in
    let ed = E.editor t r in
    let live = Eel.Dataflow.liveness g in
    List.iter
      (fun (b : C.block) ->
        if b.C.reachable && (not b.C.is_data) && b.C.kind <> C.Entry
           && b.C.kind <> C.Exit
        then
          Array.iteri
            (fun idx (_, (i : Instr.t)) ->
              if Instr.is_memory i then
                if not b.C.editable then incr skipped
                else (
                  let live_here = Eel.Dataflow.live_before live g b idx in
                  let cc_live = Regset.mem icc_reg live_here in
                  let body =
                    if cc_live && cc_optimization then (
                      incr cc_live_sites;
                      test_cc_live (ea_asm mach i))
                    else test_cc_dead (ea_asm mach i)
                  in
                  let s = Snippet.of_asm mach ~params body in
                  Eel.Edit.add_before ed b idx s;
                  incr instrumented))
            b.C.instrs)
      (C.blocks g);
    E.produce_edited_routine t r
  in
  List.iter do_routine (E.routines t);
  let rec drain () =
    match E.take_hidden t with
    | Some r ->
        do_routine r;
        drain ()
    | None -> ()
  in
  drain ();
  {
    edited = E.to_edited_sef t ();
    exec = t;
    miss_counter;
    ref_counter;
    state_table;
    mbox;
    instrumented = !instrumented;
    skipped_uneditable = !skipped;
    cc_live_sites = !cc_live_sites;
  }

let misses t mem = Eel_util.Bytebuf.get32_be mem t.miss_counter

let refs t mem = Eel_util.Bytebuf.get32_be mem t.ref_counter

(** The tool's edit contract: the simulated cache's whole state (presence
    bitmap, miss/reference counters, handler mailbox) lives in declared
    added-data regions; test snippets may spill into the red zone. The
    post-run promise is bounded rather than exact — entry/exit-kind blocks
    and uneditable sites are skipped by design, so the reference counter is
    at most (and with zero skips, exactly) the original run's dynamic
    memory-instruction count, and misses can never exceed references. *)
let contract (p : t) =
  let regions =
    [
      Eel_equiv.Contract.region ~name:"am state table" ~lo:p.state_table
        ~size:table_size;
      Eel_equiv.Contract.region ~name:"am miss counter" ~lo:p.miss_counter
        ~size:4;
      Eel_equiv.Contract.region ~name:"am ref counter" ~lo:p.ref_counter
        ~size:4;
      Eel_equiv.Contract.region ~name:"am mailbox" ~lo:p.mbox ~size:4;
    ]
  in
  let check =
    {
      Eel_equiv.Contract.ck_name = "refs-bounded-by-profile";
      ck_run =
        (fun ~profile ~mem ->
          let r = refs p mem and m = misses p mem in
          let truth = Eel_emu.Emu.mem_ops profile in
          if r > truth then
            Error
              (Printf.sprintf
                 "counted %d references but only %d memory instructions ran"
                 r truth)
          else if m > r then
            Error (Printf.sprintf "%d misses exceed %d references" m r)
          else Ok ());
    }
  in
  Eel_equiv.Contract.make "amemory" ~regions
    ~red_zone:Eel.Snippet.red_zone ~checks:[ check ]

(** Fault-campaign target: the reference counter, started far above any
    possible dynamic memory-op count, breaks the refs-bounded-by-profile
    promise. (The promise is bounded, not exact, so a small skew could hide
    under the skip allowance — the written value is chosen to clear the
    bound by construction.) *)
let fault_targets (p : t) = [ ("ref counter", p.ref_counter, 1 lsl 20) ]
