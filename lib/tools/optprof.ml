(** Optimal edge profiling — qpt's core algorithm (Ball & Larus [4],
    "Optimally Profiling and Tracing Programs").

    The paper explains why EEL's primary representation is the CFG: "the
    initial application of EEL, qpt, required CFGs to implement efficient
    profiling and tracing by placing instrumentation on CFG edges"
    — specifically, counters go only on edges {e not} in a spanning tree of
    the flow graph; the uninstrumented (tree) edges' counts are
    reconstructed afterwards from flow conservation. With counters kept off
    a maximum-weight spanning tree (weighted by loop depth), hot loop back
    edges typically carry no instrumentation at all.

    This module implements the placement and the post-run reconstruction:

    + build each routine's flow graph plus a virtual super-node closing the
      circulation (entry edges and exits/no-return blocks connect to it);
    + force {e uneditable} edges into the spanning tree (they cannot carry
      code); if uneditable edges alone contain a cycle, fall back to naive
      instrumentation for that routine;
    + grow the tree greedily by descending edge weight (10^loop-depth), so
      deep edges stay uninstrumented;
    + instrument every non-tree editable edge with the Fig. 2 counter
      snippet;
    + after the edited program runs, {!edge_counts} solves for the tree
      edges' counts with a worklist over flow conservation and returns a
      complete edge profile.

    The test suite checks the reconstruction against full (every-edge)
    instrumentation: identical counts from strictly fewer counters. *)

module E = Eel.Executable
module C = Eel.Cfg
module D = Eel.Dataflow

type redge = {
  re_id : int;  (** unique within the routine's reconstruction graph *)
  re_src : int;  (** bid, or -1 for the virtual super-node *)
  re_dst : int;
  re_cfg : C.edge option;  (** None for virtual edges *)
  re_counter : int option;  (** counter address when instrumented *)
}

type routine_prof = {
  rp_name : string;
  rp_cfg : C.t;
  rp_edges : redge list;
  rp_naive : bool;  (** optimal placement was infeasible here *)
}

type t = {
  edited : Eel_sef.Sef.t;
  exec : E.t;
  routines : routine_prof list;
  n_counters : int;
  n_edges : int;  (** total profiled (reconstructable) CFG edges *)
}

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let uf_find parent x =
  let rec go x = if parent.(x) = x then x else go parent.(x) in
  let r = go x in
  let rec compress x =
    if parent.(x) <> r then (
      let nxt = parent.(x) in
      parent.(x) <- r;
      compress nxt)
  in
  compress x;
  r

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra = rb then false
  else (
    parent.(ra) <- rb;
    true)

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let super = -1

(* loop-depth weight: edges inside deeper loops get higher weight so the
   spanning tree prefers them (fewer counters on hot paths) *)
let edge_weights (g : C.t) =
  let loops = D.natural_loops g in
  let depth = Hashtbl.create 32 in
  List.iter
    (fun (l : D.loop) ->
      List.iter
        (fun (b : C.block) ->
          Hashtbl.replace depth b.C.bid
            (1 + Option.value ~default:0 (Hashtbl.find_opt depth b.C.bid)))
        l.D.body)
    loops;
  fun (e : C.edge) ->
    let d b = Option.value ~default:0 (Hashtbl.find_opt depth b) in
    let k = max (d e.C.esrc.C.bid) (d e.C.edst.C.bid) in
    (* 10^k, capped *)
    let rec pow acc n = if n <= 0 then acc else pow (acc * 10) (n - 1) in
    pow 1 (min k 6)

(* the reconstruction graph: reachable CFG edges + virtual edges through
   the super-node *)
let build_edges (g : C.t) =
  let next = ref 0 in
  let fresh () =
    let i = !next in
    incr next;
    i
  in
  let edges = ref [] in
  let add re = edges := re :: !edges in
  List.iter
    (fun (b : C.block) ->
      if b.C.reachable then (
        List.iter
          (fun (e : C.edge) ->
            if e.C.edst.C.reachable then
              add
                {
                  re_id = fresh ();
                  re_src = b.C.bid;
                  re_dst = e.C.edst.C.bid;
                  re_cfg = Some e;
                  re_counter = None;
                })
          b.C.succs;
        (* no-successor reachable blocks flow to the super-node (exit
           system calls, the synthetic exit block) *)
        if b.C.succs = [] then
          add
            {
              re_id = fresh ();
              re_src = b.C.bid;
              re_dst = super;
              re_cfg = None;
              re_counter = None;
            }))
    (C.blocks g);
  (* the super-node feeds each entry block, closing the circulation *)
  List.iter
    (fun (eb : C.block) ->
      add
        {
          re_id = fresh ();
          re_src = super;
          re_dst = eb.C.bid;
          re_cfg = None;
          re_counter = None;
        })
    (C.entry_blocks g);
  List.rev !edges

(* choose the set of edges to instrument; None = uneditable cycle makes
   optimal placement infeasible *)
let choose_instrumented (g : C.t) edges =
  let nb = C.num_blocks g + 1 in
  let node b = if b = super then nb - 1 else b in
  let parent = Array.init nb (fun i -> i) in
  let weight = edge_weights g in
  (* 1: uninstrumentable edges must be tree edges *)
  let feasible = ref true in
  List.iter
    (fun re ->
      match re.re_cfg with
      | Some e when not e.C.e_editable ->
          if not (uf_union parent (node re.re_src) (node re.re_dst)) then
            feasible := false
      | None ->
          (* virtual edges carry no code either *)
          if not (uf_union parent (node re.re_src) (node re.re_dst)) then
            feasible := false
      | Some _ -> ())
    edges;
  if not !feasible then None
  else (
    (* 2: grow a maximum spanning tree over the editable edges *)
    let editable =
      List.filter
        (fun re ->
          match re.re_cfg with Some e -> e.C.e_editable | None -> false)
        edges
    in
    let by_weight =
      List.sort
        (fun a b ->
          compare
            (weight (Option.get b.re_cfg))
            (weight (Option.get a.re_cfg)))
        editable
    in
    let instrumented = ref [] in
    List.iter
      (fun re ->
        if not (uf_union parent (node re.re_src) (node re.re_dst)) then
          instrumented := re :: !instrumented)
      by_weight;
    Some !instrumented)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let instrument mach exe =
  let t = E.read_contents mach exe in
  let routines = ref [] in
  let n_counters = ref 0 in
  let n_edges = ref 0 in
  let do_routine (r : E.routine) =
    let g = E.control_flow_graph t r in
    let ed = E.editor t r in
    let edges = build_edges g in
    let naive, to_instrument =
      match choose_instrumented g edges with
      | Some chosen -> (false, chosen)
      | None ->
          ( true,
            List.filter
              (fun re ->
                match re.re_cfg with
                | Some e -> e.C.e_editable
                | None -> false)
              edges )
    in
    let edges =
      List.map
        (fun re ->
          if List.exists (fun c -> c.re_id = re.re_id) to_instrument then (
            let addr = E.reserve_data t 4 in
            incr n_counters;
            Eel.Edit.add_along ed
              (Option.get re.re_cfg)
              (Qpt2.incr_count t.E.mach addr);
            { re with re_counter = Some addr })
          else re)
        edges
    in
    n_edges := !n_edges + List.length edges;
    E.produce_edited_routine t r;
    (* CFGs are kept: reconstruction needs them *)
    routines := { rp_name = r.E.r_name; rp_cfg = g; rp_edges = edges; rp_naive = naive } :: !routines
  in
  List.iter do_routine (E.routines t);
  let rec drain () =
    match E.take_hidden t with
    | Some r ->
        do_routine r;
        drain ()
    | None -> ()
  in
  drain ();
  {
    edited = E.to_edited_sef t ();
    exec = t;
    routines = List.rev !routines;
    n_counters = !n_counters;
    n_edges = !n_edges;
  }

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

exception Underdetermined of string

(** [edge_counts p mem] — the complete edge profile, reconstructed from
    the counters in [mem] by flow conservation. Returns, per routine, the
    count of every CFG edge. *)
let edge_counts (p : t) (mem : Bytes.t) =
  List.map
    (fun rp ->
      let counts = Hashtbl.create 64 in
      (* seed with the instrumented edges *)
      List.iter
        (fun re ->
          match re.re_counter with
          | Some addr ->
              Hashtbl.replace counts re.re_id (Eel_util.Bytebuf.get32_be mem addr)
          | None -> ())
        rp.rp_edges;
      if not rp.rp_naive then (
        (* worklist over flow conservation: a node with exactly one
           unknown incident edge determines it *)
        let incident = Hashtbl.create 64 in
        let nodes = ref [] in
        List.iter
          (fun re ->
            List.iter
              (fun n ->
                if not (Hashtbl.mem incident n) then (
                  Hashtbl.add incident n [];
                  nodes := n :: !nodes);
                Hashtbl.replace incident n (re :: Hashtbl.find incident n))
              [ re.re_src; re.re_dst ])
          rp.rp_edges;
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun n ->
              let inc = Hashtbl.find incident n in
              let unknown =
                List.filter (fun re -> not (Hashtbl.mem counts re.re_id)) inc
              in
              match unknown with
              | [ re ] ->
                  (* conservation at n: sum(in) = sum(out); self-loops at n
                     cancel out and stay solvable through other nodes *)
                  if re.re_src <> re.re_dst then (
                    let flow =
                      List.fold_left
                        (fun acc r2 ->
                          if r2.re_id = re.re_id || r2.re_src = r2.re_dst then acc
                          else
                            let v =
                              Option.value ~default:0
                                (Hashtbl.find_opt counts r2.re_id)
                            in
                            if r2.re_dst = n then acc + v else acc - v)
                        0 inc
                    in
                    let v = if re.re_dst = n then -flow else flow in
                    Hashtbl.replace counts re.re_id (max 0 v);
                    changed := true)
              | _ -> ())
            !nodes
        done);
      let profile =
        List.filter_map
          (fun re ->
            match re.re_cfg with
            | Some e -> (
                match Hashtbl.find_opt counts re.re_id with
                | Some v -> Some (e, v)
                | None ->
                    if rp.rp_naive then None
                    else
                      raise
                        (Underdetermined
                           (Printf.sprintf "routine %s edge %d" rp.rp_name
                              e.C.eid)))
            | None -> None)
          rp.rp_edges
      in
      (rp.rp_name, profile))
    p.routines

(* ------------------------------------------------------------------ *)
(* Edit contract                                                       *)
(* ------------------------------------------------------------------ *)

(** The tool's edit contract: counter stores land in the span of reserved
    counter words (plus snippet spill slots in the red zone), and the
    {e reconstructed} edge profile must agree with emulator ground truth —
    for every fully-profiled multi-successor block of a non-naive routine,
    the out-edge counts sum to exactly the execution count of the block's
    terminating branch. This validates the whole spanning-tree pipeline:
    placement, the counters themselves, and flow-conservation
    reconstruction. *)
let contract (p : t) =
  let counter_addrs =
    List.concat_map
      (fun rp -> List.filter_map (fun re -> re.re_counter) rp.rp_edges)
      p.routines
  in
  let regions =
    Option.to_list
      (Eel_equiv.Contract.span ~name:"optprof counters" counter_addrs)
  in
  let check_routine profile rname edges =
    (* group reconstructed counts by source block *)
    let by_src = Hashtbl.create 32 in
    List.iter
      (fun ((e : C.edge), v) ->
        let b = e.C.esrc in
        let n, sum =
          Option.value ~default:(0, 0) (Hashtbl.find_opt by_src b.C.bid)
        in
        Hashtbl.replace by_src b.C.bid (n + 1, sum + v))
      edges;
    List.fold_left
      (fun acc ((e : C.edge), _) ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            let b = e.C.esrc in
            match (Hashtbl.find_opt by_src b.C.bid, C.term_instr b) with
            | Some (n, sum), Some (site_pc, _)
              when List.length b.C.succs > 1 && n = List.length b.C.succs ->
                let truth = Eel_emu.Emu.pc_count profile site_pc in
                if sum = truth then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "%s block %d: reconstructed out-edges sum to %d, \
                        branch at 0x%x executed %d times"
                       rname b.C.bid sum site_pc truth)
            | _ -> Ok ()))
      (Ok ()) edges
  in
  let check =
    {
      Eel_equiv.Contract.ck_name = "reconstruction-matches-profile";
      ck_run =
        (fun ~profile ~mem ->
          match edge_counts p mem with
          | exception Underdetermined what ->
              Error ("reconstruction underdetermined: " ^ what)
          | per_routine ->
              let naive rname =
                List.exists
                  (fun rp -> rp.rp_name = rname && rp.rp_naive)
                  p.routines
              in
              List.fold_left
                (fun acc (rname, edges) ->
                  match acc with
                  | Error _ -> acc
                  | Ok () when naive rname -> Ok ()
                  | Ok () -> check_routine profile rname edges)
                (Ok ()) per_routine);
    }
  in
  Eel_equiv.Contract.make "optprof" ~regions ~red_zone:Eel.Snippet.red_zone
    ~checks:[ check ]

(** Fault-campaign targets: counter words of non-naive routines. A skewed
    counter feeds the flow-conservation reconstruction, and the skew
    surfaces at whichever fully-profiled multi-successor block the solved
    circulation no longer matches ground truth at. Naive-routine counters
    are excluded — naive routines are skipped by the check by design. *)
let fault_targets (p : t) =
  List.concat_map
    (fun rp ->
      if rp.rp_naive then []
      else
        List.filter_map
          (fun re ->
            Option.map
              (fun addr -> (Printf.sprintf "counter@0x%x" addr, addr, 7))
              re.re_counter)
          rp.rp_edges)
    p.routines
