(** Toolbox — one door to every tool in lib/tools, for the equivalence
    oracle's drivers.

    [eel_diff --tool NAME], [eel_fuzz --diff --tool NAME], the benchmark
    harness and the tests all need the same four things from a tool: the
    edited image, the tool's {!Eel_equiv.Contract}, a value normalizer
    mapping edited code addresses back to original ones, and a CFG anchor
    for divergence reports. {!apply} packages them uniformly so a driver
    can iterate tools by name. *)

module E = Eel.Executable
module Contract = Eel_equiv.Contract

type applied = {
  ap_tool : string;
  ap_edited : Eel_sef.Sef.t;
  ap_contract : Contract.t;
  ap_norm_b : int -> int;  (** edited-side value normalizer *)
  ap_block_of : int -> (string * int) option;
  ap_sites : int;  (** instrumentation sites placed, for reporting *)
  ap_edited_addr : int -> int option;
      (** original instruction address → its edited location; the
          fault-injection campaign uses it to overwrite the edited form of
          an instruction the original run is known to execute *)
  ap_targets : (string * int * int) list;
      (** (label, word address, skew value): instrumentation words whose
          corruption the tool's own contract checks are guaranteed to
          catch — the count-skew fault class's menu *)
  ap_growth : (string * int * int) list;
      (** per-routine static cost, [(name, original bytes, edited bytes)]
          ({!E.edited_growth}); empty for tools with no EEL placement
          (oldqpt patches in place through its own map) *)
}

(** Tool names {!apply} accepts, in presentation order. *)
let names = [ "qpt2"; "oldqpt"; "tracer"; "sfi"; "amemory"; "optprof" ]

let of_exec ?(targets = []) tool (exec : E.t) edited contract sites =
  {
    ap_tool = tool;
    ap_edited = edited;
    ap_contract = contract;
    ap_norm_b = E.inverse_address_norm exec;
    ap_block_of = (fun a -> E.block_of_addr exec a);
    ap_sites = sites;
    ap_edited_addr = (fun a -> E.edited_addr exec a);
    ap_targets = targets;
    ap_growth = E.edited_growth exec;
  }

(** [apply name mach exe] instruments [exe] with the named tool and
    packages the result for the oracle. [Error _] is reserved for unknown
    tool names; tool failures propagate as the front end's structured
    exceptions (callers run under {!Eel_robust.Diag.guard}).

    [sfi_base]/[sfi_size] configure SFI's sandbox; the default segment
    ([0, 64 MiB)) covers every address the emulator can reach in an oracle
    run, making the clamp the identity — the right configuration for
    equivalence checking, where the question is "does sandboxing change
    anything it should not?". *)
let apply ?(sfi_base = 0) ?(sfi_size = 1 lsl 26) name mach exe :
    (applied, string) result =
  match name with
  | "qpt2" ->
      let p = Qpt2.instrument mach exe in
      Ok
        (of_exec "qpt2" p.Qpt2.exec p.Qpt2.edited (Qpt2.contract p)
           (List.length p.Qpt2.counters)
           ~targets:(Qpt2.fault_targets p))
  | "oldqpt" ->
      let p = Oldqpt.instrument exe in
      (* oldqpt is not EEL-based: no Executable.t to anchor blocks or map
         addresses, so its own rev_map stands in for both normalizers *)
      let fwd = Hashtbl.create 64 in
      Hashtbl.iter
        (fun edited orig ->
          if not (Hashtbl.mem fwd orig) then Hashtbl.add fwd orig edited)
        p.Oldqpt.rev_map;
      Ok
        {
          ap_tool = "oldqpt";
          ap_edited = p.Oldqpt.edited;
          ap_contract = Oldqpt.contract p;
          ap_norm_b = Oldqpt.inverse_address_norm p;
          ap_block_of = (fun _ -> None);
          ap_sites = List.length p.Oldqpt.counters;
          ap_edited_addr = (fun a -> Hashtbl.find_opt fwd a);
          ap_targets = Oldqpt.fault_targets p;
          ap_growth = [];
        }
  | "tracer" ->
      let p = Tracer.instrument mach exe in
      Ok
        (of_exec "tracer" p.Tracer.exec p.Tracer.edited (Tracer.contract p)
           p.Tracer.instrumented
           ~targets:(Tracer.fault_targets p))
  | "sfi" ->
      let p = Sfi.instrument mach exe ~seg_base:sfi_base ~seg_size:sfi_size in
      Ok
        (of_exec "sfi" p.Sfi.exec p.Sfi.edited (Sfi.contract p) p.Sfi.guarded
           ~targets:(Sfi.fault_targets p))
  | "amemory" ->
      let p = Amemory.instrument mach exe in
      Ok
        (of_exec "amemory" p.Amemory.exec p.Amemory.edited
           (Amemory.contract p) p.Amemory.instrumented
           ~targets:(Amemory.fault_targets p))
  | "optprof" ->
      let p = Optprof.instrument mach exe in
      Ok
        (of_exec "optprof" p.Optprof.exec p.Optprof.edited
           (Optprof.contract p) p.Optprof.n_counters
           ~targets:(Optprof.fault_targets p))
  | _ ->
      Error
        (Printf.sprintf "unknown tool %s (expected one of: %s)" name
           (String.concat ", " names))

(** {1 Measured application: apply + verify + overhead accounting} *)

module Diag = Eel_robust.Diag
module Diffexec = Eel_diffexec.Diffexec
module Emu = Eel_emu.Emu
module Ledger = Eel_obs.Ledger
module Sef = Eel_sef.Sef
module Os_spec = Eel_os.Spec
module Policy = Eel_os.Policy

type measured = {
  ms_applied : applied;
  ms_report : Diffexec.edit_report;
  ms_entry : Ledger.entry;
}

(* The ledger's zero-unexplained identity: every store instruction emits
   exactly one observable event, and an equivalent verdict means the edited
   run's unmasked events matched the original's event-for-event — so the
   edited side's surplus store *instructions* must equal the contract's
   masked-store count. Anything left over is overhead nobody declared.
   (Trap surplus is the masked-trap count by the same argument; the profile
   can't cross-check it because its trap class counts executed [ticc]s, not
   taken ones.) *)
let ledger_entry ~prog (ap : applied) (er : Diffexec.edit_report) orig =
  let verdict =
    Diffexec.verdict_name er.Diffexec.er_report.Diffexec.rp_verdict
  in
  let po = er.Diffexec.er_profile_orig in
  let pe = er.Diffexec.er_profile_edit in
  let stat f = function Some p -> f p | None -> 0 in
  let insns = stat (fun p -> p.Emu.p_insns) in
  let unexplained =
    match (verdict, po, pe) with
    | "equivalent", Some a, Some b ->
        Emu.store_ops b - Emu.store_ops a - er.Diffexec.er_masked_stores
    | _ -> 0
  in
  {
    Ledger.le_tool = ap.ap_tool;
    le_prog = prog;
    le_verdict = verdict;
    le_sites = ap.ap_sites;
    le_bytes_orig = Sef.image_size orig;
    le_bytes_edited = Sef.image_size ap.ap_edited;
    le_routines_touched =
      List.length (List.filter (fun (_, ob, eb) -> eb > ob) ap.ap_growth);
    le_insns_orig = insns po;
    le_insns_edited = insns pe;
    le_mem_orig = stat Emu.mem_ops po;
    le_mem_edited = stat Emu.mem_ops pe;
    le_stores_masked = er.Diffexec.er_masked_stores;
    le_traps_masked = er.Diffexec.er_masked_traps;
    le_sys_masked = er.Diffexec.er_masked_sys;
    le_unexplained = unexplained;
  }

(** {1 OS-mode verification} *)

(** SFI's syscall interposition table: writes may only reach the standard
    streams; a [write] to any other descriptor is a protection fault
    ([EPERM]), exactly as its store clamp confines addresses to the
    sandbox segment. *)
let sfi_policy = Policy.Deny_write_fd_above 2

(** [os_interpose ap spec] — the OS world each side of the verification
    runs against. Every tool's edited image runs in the same world as the
    original, except SFI: its edited side runs under {!sfi_policy}, and its
    contract declares the suppression so the oracle masks exactly the
    denials the policy makes — an undeclared denial stays a
    contract-violation verdict. *)
let os_interpose (ap : applied) spec =
  if ap.ap_tool <> "sfi" then (ap, spec)
  else
    let contract =
      {
        ap.ap_contract with
        Contract.ct_sys_suppress = Some (Policy.denies sfi_policy);
      }
    in
    ({ ap with ap_contract = contract }, Os_spec.with_policy spec sfi_policy)

(** [measure ~prog name mach exe] is {!apply} + {!Diffexec.verify_edit}
    with both sides profiled, folded into an overhead-ledger entry recorded
    under [(name, prog)]. This is the one door for drivers that want the
    paper's overhead tables: eel_report, eel_diff --tool, and the bench
    equiv sweep all come through here, so the ledger is populated (and
    merged at pool joins) no matter which driver ran. *)
let measure ?fuel ?limit ?sfi_base ?sfi_size ?pokes_b ?os ~prog name mach exe
    : (measured, Diag.error) result =
  match
    Diag.guard (fun () ->
        match apply ?sfi_base ?sfi_size name mach exe with
        | Ok ap -> ap
        | Error what -> Diag.fail (Diag.Exe_error { what }))
  with
  | Error e -> Error e
  | Ok ap -> (
      let ap, os_b =
        match os with
        | None -> (ap, None)
        | Some spec ->
            let ap, spec_b = os_interpose ap spec in
            (ap, Some spec_b)
      in
      match
        Diffexec.verify_edit ?fuel ?limit ?pokes_b ~profiles:true ?os ?os_b
          ~norm_b:ap.ap_norm_b ~block_of:ap.ap_block_of
          ~contract:ap.ap_contract exe ap.ap_edited
      with
      | Error e -> Error e
      | Ok er ->
          let entry = ledger_entry ~prog ap er exe in
          Ledger.record entry;
          Ok { ms_applied = ap; ms_report = er; ms_entry = entry })
