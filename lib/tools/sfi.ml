(** Software fault isolation (sandboxing) — paper §1, citing Wahbe et al.
    [27]: "software fault isolation (sandboxing) implements protection
    domains by modifying code to prevent it from referencing or transferring
    control out of its domain."

    Every store's effective address is forced into a power-of-two sandbox
    segment before the store executes: [addr' = (addr & (size-1)) | base].
    The original store is deleted and replaced by a store through the
    sandboxed address (held in a scavenged register). Stores that already
    cannot escape are still rewritten — the transformation is meant to be
    sound without proving anything about the program.

    This demonstrates EEL's {e delete + insert} editing (paper §3.3.1) as
    opposed to the purely additive instrumentation of qpt2/Active Memory. *)

module E = Eel.Executable
module C = Eel.Cfg
module Snippet = Eel.Snippet
module Instr = Eel_arch.Instr
open Eel_sparc

type t = {
  edited : Eel_sef.Sef.t;
  exec : E.t;  (** the analyzed executable (address maps, CFG anchors) *)
  seg_base : int;
  seg_size : int;
  guarded : int;  (** stores rewritten *)
  skipped_uneditable : int;
}

(* sandboxed replacement for a store: compute, mask, re-base, store.
   %v0 = sandboxed address. The store's value register is site-specific. *)
let guard_asm mach (i : Instr.t) ~seg_base ~seg_size =
  let rn = mach.Eel_arch.Machine.reg_name in
  let ea =
    match i.Instr.ea with
    | Some (rs1, Instr.O_imm k) -> Printf.sprintf "        add %s, %d, %%v0\n" (rn rs1) k
    | Some (rs1, Instr.O_reg r2) ->
        Printf.sprintf "        add %s, %s, %%v0\n" (rn rs1) (rn r2)
    | None -> invalid_arg "sfi: not a memory instruction"
  in
  (* which store, and of what register? re-emit with the sandboxed base *)
  let store =
    match Insn.decode i.Instr.word with
    | Insn.Mem { op; rd; _ } when Insn.mem_is_store op ->
        Printf.sprintf "        %s %s, [%%v0]\n" (Insn.mem_name op) (rn rd)
    | _ -> invalid_arg "sfi: not a store"
  in
  ea
  ^ Printf.sprintf
      {|        sethi %%hi(%d), %%v1
        or %%v1, %%lo(%d), %%v1
        and %%v0, %%v1, %%v0
        sethi %%hi(%d), %%v1
        or %%v0, %%v1, %%v0
|}
      (seg_size - 1) (seg_size - 1) seg_base
  ^ store

(** [instrument mach exe ~seg_base ~seg_size] rewrites every editable store
    to stay within [seg_base, seg_base+seg_size). [seg_size] must be a
    power of two and [seg_base] aligned to it. *)
let instrument mach exe ~seg_base ~seg_size =
  if seg_size land (seg_size - 1) <> 0 then invalid_arg "sfi: size not a power of 2";
  if seg_base land (seg_size - 1) <> 0 then invalid_arg "sfi: base misaligned";
  let t = E.read_contents mach exe in
  let guarded = ref 0 and skipped = ref 0 in
  let do_routine (r : E.routine) =
    let g = E.control_flow_graph t r in
    let ed = E.editor t r in
    List.iter
      (fun (b : C.block) ->
        if b.C.reachable && not b.C.is_data then
          Array.iteri
            (fun idx (_, (i : Instr.t)) ->
              if i.Instr.cat = Instr.Store then
                if not b.C.editable then incr skipped
                else (
                  let s =
                    Snippet.of_asm mach (guard_asm mach i ~seg_base ~seg_size)
                  in
                  Eel.Edit.add_before ed b idx s;
                  Eel.Edit.delete ed b idx;
                  incr guarded))
            b.C.instrs)
      (C.blocks g);
    E.produce_edited_routine t r
  in
  List.iter do_routine (E.routines t);
  let rec drain () =
    match E.take_hidden t with Some r -> do_routine r; drain () | None -> ()
  in
  drain ();
  {
    edited = E.to_edited_sef t ();
    exec = t;
    seg_base;
    seg_size;
    guarded = !guarded;
    skipped_uneditable = !skipped;
  }

(** [clamp t addr] — the sandbox transfer function the rewritten stores
    apply: [addr' = (addr & (size-1)) | base]. *)
let clamp (t : t) addr = addr land (t.seg_size - 1) lor t.seg_base

(** The tool's edit contract: SFI adds no bookkeeping state of its own —
    its observable effect is that {e every} program store address passes
    through {!clamp} (declared as the contract's [addr_norm], applied to
    the original run's stores before comparison), plus possible snippet
    spills in the red zone. With a sandbox segment covering the whole
    image, the clamp is the identity and the edited program must be
    store-for-store identical to the original. *)
let contract (t : t) =
  Eel_equiv.Contract.make "sfi" ~red_zone:Snippet.red_zone
    ~addr_norm:(clamp t)

(** SFI keeps no instrumentation state — there is no word whose corruption
    its contract's checks would notice, so the count-skew fault class does
    not apply. (Its lies live elsewhere: the phantom-transform and masking
    attacks on [addr_norm] and the event filter.) *)
let fault_targets (_ : t) : (string * int * int) list = []
