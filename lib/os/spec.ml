(** The deterministic OS world a run executes against: initial file
    snapshot, stdin bytes, and the interposition policy. A spec is pure
    data — every {!Os.install} rebuilds fresh state from it, and
    {!digest} gives the content-addressed cache a stable key. *)

type t = {
  sp_files : (string * string) list;  (** name -> initial contents *)
  sp_stdin : string;
  sp_policy : Policy.t;
}

let make ?(files = []) ?(stdin = "") ?(policy = Policy.Allow_all) () =
  { sp_files = files; sp_stdin = stdin; sp_policy = policy }

let empty = make ()

let with_policy t policy = { t with sp_policy = policy }

(* canonical encoding: length-prefixed fields, so no separator can be
   forged by file contents *)
let encode t =
  let b = Buffer.create 256 in
  let str s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  Buffer.add_string b "osspec1;";
  Buffer.add_string b (string_of_int (List.length t.sp_files));
  Buffer.add_char b ';';
  List.iter
    (fun (name, contents) ->
      str name;
      str contents)
    t.sp_files;
  str t.sp_stdin;
  str (Policy.name t.sp_policy);
  Buffer.contents b

(** A stable content digest of the whole world (files, stdin, policy). *)
let digest t = Digest.to_hex (Digest.string (encode t))
