(** The per-run file-descriptor table. Fds 0–2 are pre-opened: 0 reads the
    spec's stdin bytes, 1 and 2 append to the emulator's output buffer (so
    OS programs produce the same observable [out] stream the builtin
    write trap does). [open] hands out the lowest free slot at 3 or
    above, Unix style. *)

type target =
  | Fd_stdin of { data : string; mutable pos : int }
  | Fd_out  (** emulator output buffer (fds 1 and 2) *)
  | Fd_file of { file : Fs.file; mutable pos : int; writable : bool }

type t = { slots : target option array }

let create ~stdin =
  let slots = Array.make (Abi.max_fd + 1) None in
  slots.(0) <- Some (Fd_stdin { data = stdin; pos = 0 });
  slots.(1) <- Some Fd_out;
  slots.(2) <- Some Fd_out;
  { slots }

let get t fd =
  if fd < 0 || fd > Abi.max_fd then None else t.slots.(fd)

(** Lowest free fd >= 3, or [None] when the table is full ([EMFILE]). *)
let alloc t target =
  let rec find fd =
    if fd > Abi.max_fd then None
    else if t.slots.(fd) = None then begin
      t.slots.(fd) <- Some target;
      Some fd
    end
    else find (fd + 1)
  in
  find 3

let close t fd =
  match get t fd with
  | None -> false
  | Some _ ->
      t.slots.(fd) <- None;
      true
