(** Syscall interposition policies. A policy is consulted by the
    dispatcher {e before} any side effect; a denial returns the errno
    through the normal carry-flag convention with the call's effect fully
    suppressed. Policies are first-order data (not closures) so a
    {!Spec.t} stays digestible for the content-addressed job cache. *)

type t =
  | Allow_all
  | Deny_write_fd_above of int
      (** deny [write] to any fd strictly greater than the bound with
          [EPERM] — the SFI interposition table: fd 0–2 (the standard
          streams) stay writable, everything else is a protection fault *)

type verdict = Allow | Deny of int  (** errno *)

let check t ~num ~a0 =
  match t with
  | Allow_all -> Allow
  | Deny_write_fd_above bound ->
      if num = Abi.sys_write && a0 > bound then Deny Abi.eperm else Allow

let name = function
  | Allow_all -> "allow-all"
  | Deny_write_fd_above n -> Printf.sprintf "deny-write-fd>%d" n

(** Does [t] deny the (syscall, first-argument) pair? The contract layer
    uses this shape — a plain [(num, a0)] predicate — to declare the same
    suppression the policy enforces. *)
let denies t num a0 = check t ~num ~a0 <> Allow
