(** The OS layer: a syscall dispatcher keyed off [ta] immediates in the
    {!Abi} window, over a deterministic in-memory file system. [install]
    plugs it into an {!Emu.t} as the optional trap handler; every
    dispatched call emits one {!Emu.Ob_syscall} event through the obs
    sink, so the differential oracle compares syscall streams the same
    way it compares stores.

    Dispatch discipline, per call:
    - the interposition {!Policy} is consulted first; a denial takes the
      error return path ([carry] set, errno in %o0) with the call's side
      effect fully suppressed;
    - success clears the carry flag and returns the result in %o0;
    - failure sets carry and returns the errno in %o0;
    - in-window numbers with no call assigned fail [EINVAL] — the error
      path is itself part of the observable surface;
    - immediates outside the window are not handled (the emulator falls
      through to its builtin debug traps). *)

open Eel_sparc
module Emu = Eel_emu.Emu

type state = {
  st_spec : Spec.t;
  st_fs : Fs.t;
  st_fds : Fdtab.t;
  mutable st_sys : int;  (** dispatched OS syscalls (including errors) *)
  mutable st_denied : int;  (** calls suppressed by the policy *)
}

let fresh spec =
  {
    st_spec = spec;
    st_fs = Fs.create spec.Spec.sp_files;
    st_fds = Fdtab.create ~stdin:spec.Spec.sp_stdin;
    st_sys = 0;
    st_denied = 0;
  }

(* cheap order-sensitive checksum of transferred bytes: catches a
   same-args-same-length-different-payload divergence without logging the
   payload itself *)
let checksum s =
  let acc = ref 0 in
  String.iter (fun c -> acc := ((!acc * 131) + Char.code c) land 0x3FFF_FFFF) s;
  !acc

let set_carry (t : Emu.t) = t.regs.(Regs.icc) <- t.regs.(Regs.icc) lor 1
let clear_carry (t : Emu.t) = t.regs.(Regs.icc) <- t.regs.(Regs.icc) land lnot 1

(* guest-memory accessors for syscall buffers; out-of-range arguments are
   machine faults, mirroring the builtin write trap *)
let read_guest (t : Emu.t) addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.mem then
    Emu.fault "syscall buffer out of range: addr=0x%x len=%d pc=0x%x" addr len
      t.pc;
  Bytes.sub_string t.mem addr len

let write_guest (t : Emu.t) addr s =
  let len = String.length s in
  if addr < 0 || addr + len > Bytes.length t.mem then
    Emu.fault "syscall buffer out of range: addr=0x%x len=%d pc=0x%x" addr len
      t.pc;
  Bytes.blit_string s 0 t.mem addr len;
  (* keep the predecoded code array coherent, word by word, exactly as a
     program store would (a read(2) into text is self-modifying code) *)
  let lo = addr land lnot 3 and hi = addr + len in
  let w = ref lo in
  while !w < hi do
    Emu.invalidate_code t !w;
    w := !w + 4
  done

let max_path = 256

(* a path argument is a NUL-terminated string; an unterminated or
   out-of-range one is ENOENT (hostile pointers are error returns, not
   crashes, on the path lookup surface) *)
let read_path (t : Emu.t) addr =
  if addr < 0 || addr >= Bytes.length t.mem then None
  else
    let limit = min (addr + max_path) (Bytes.length t.mem) in
    let rec scan i =
      if i >= limit then None
      else if Bytes.get t.mem i = '\000' then
        Some (Bytes.sub_string t.mem addr (i - addr))
      else scan (i + 1)
    in
    scan addr

type outcome = Ret of int * int  (** result, data checksum *) | Err of int

let dispatch st (t : Emu.t) num a0 a1 a2 =
  match Policy.check st.st_spec.Spec.sp_policy ~num ~a0 with
  | Policy.Deny errno ->
      st.st_denied <- st.st_denied + 1;
      Err errno
  | Policy.Allow ->
      if num = Abi.sys_exit then begin
        t.exited <- Some (a0 land 0xFF);
        Ret (a0, 0)
      end
      else if num = Abi.sys_read then begin
        match Fdtab.get st.st_fds a0 with
        | Some (Fdtab.Fd_stdin s) ->
            let got = ref "" in
            if a2 > 0 then begin
              let n = min a2 (String.length s.data - s.pos) in
              if n > 0 then begin
                got := String.sub s.data s.pos n;
                s.pos <- s.pos + n
              end
            end;
            write_guest t a1 !got;
            Ret (String.length !got, checksum !got)
        | Some (Fdtab.Fd_file f) when not f.writable ->
            let got = Fs.read f.file ~pos:f.pos ~len:a2 in
            f.pos <- f.pos + String.length got;
            write_guest t a1 got;
            Ret (String.length got, checksum got)
        | Some Fdtab.Fd_out | Some (Fdtab.Fd_file _) | None -> Err Abi.ebadf
      end
      else if num = Abi.sys_write then begin
        match Fdtab.get st.st_fds a0 with
        | Some Fdtab.Fd_out ->
            let s = read_guest t a1 a2 in
            Buffer.add_string t.output s;
            Ret (a2, checksum s)
        | Some (Fdtab.Fd_file f) when f.writable ->
            let s = read_guest t a1 a2 in
            Fs.write f.file ~pos:f.pos s;
            f.pos <- f.pos + a2;
            Ret (a2, checksum s)
        | Some (Fdtab.Fd_stdin _) | Some (Fdtab.Fd_file _) | None ->
            Err Abi.ebadf
      end
      else if num = Abi.sys_open then begin
        match read_path t a0 with
        | None -> Err Abi.enoent
        | Some path ->
            let target =
              if a1 = Abi.o_wronly then
                Some
                  (Fdtab.Fd_file
                     { file = Fs.create_file st.st_fs path; pos = 0; writable = true })
              else
                match Fs.lookup st.st_fs path with
                | Some file -> Some (Fdtab.Fd_file { file; pos = 0; writable = false })
                | None -> None
            in
            (match target with
            | None -> Err Abi.enoent
            | Some tgt -> (
                match Fdtab.alloc st.st_fds tgt with
                | Some fd -> Ret (fd, 0)
                | None -> Err Abi.emfile))
      end
      else if num = Abi.sys_close then begin
        if Fdtab.close st.st_fds a0 then Ret (0, 0) else Err Abi.ebadf
      end
      else if num = Abi.sys_brk then begin
        if a0 > t.brk && a0 < Bytes.length t.mem - Emu.stack_size then
          t.brk <- a0;
        Ret (t.brk, 0)
      end
      else Err Abi.einval

(** The trap handler: [true] = this trap was an OS syscall and has been
    fully handled (including its {!Emu.Ob_syscall} event); [false] falls
    through to the emulator's builtin convention. *)
let handle st (t : Emu.t) imm =
  match Abi.num_of_trap_imm imm with
  | None -> false
  | Some num ->
      st.st_sys <- st.st_sys + 1;
      let a0 = Emu.reg t Regs.o0
      and a1 = Emu.reg t Regs.o1
      and a2 = Emu.reg t Regs.o2 in
      let ret, err, data =
        match dispatch st t num a0 a1 a2 with
        | Ret (r, d) ->
            clear_carry t;
            Emu.set_reg t Regs.o0 r;
            (r, false, d)
        | Err errno ->
            set_carry t;
            Emu.set_reg t Regs.o0 errno;
            (errno, true, 0)
      in
      (match t.obs with
      | None -> ()
      | Some _ ->
          Emu.obs_emit t
            (Emu.Ob_syscall { pc = t.pc; num; a0; a1; a2; ret; err; data });
          if num = Abi.sys_exit && not err then
            Emu.obs_emit t (Emu.Ob_exit { pc = t.pc; code = a0 land 0xFF }));
      true

(** [install t spec] builds fresh OS state from [spec] (snapshot/reset:
    nothing survives from any earlier run) and installs its dispatcher as
    [t]'s trap handler. Returns the state for post-run inquiry. *)
let install (t : Emu.t) spec =
  let st = fresh spec in
  Emu.set_trap_handler t (Some (handle st));
  st

let sys_count st = st.st_sys
let denied_count st = st.st_denied

(** Contents of a file in the (post-run) file system, for tests. *)
let file_contents st name = Option.map Fs.contents (Fs.lookup st.st_fs name)
