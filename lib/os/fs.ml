(** A deterministic in-memory file system: a flat namespace of growable
    byte files. A fresh [t] is rebuilt from its {!Spec}-declared snapshot
    at every {!Os.install}, so no state survives between runs — the
    per-run snapshot/reset guarantee the differential oracle depends on. *)

type file = { mutable f_data : Bytes.t; mutable f_size : int }

type t = { fs_files : (string, file) Hashtbl.t }

let file_of_string s =
  { f_data = Bytes.of_string s; f_size = String.length s }

(** [create files] builds a file system holding exactly [files] (later
    bindings of the same name win, matching [List.assoc] on a spec). *)
let create files =
  let t = { fs_files = Hashtbl.create 8 } in
  List.iter
    (fun (name, contents) ->
      Hashtbl.replace t.fs_files name (file_of_string contents))
    (List.rev files);
  t

let lookup t name = Hashtbl.find_opt t.fs_files name

(** Open-for-write semantics: truncate an existing file, or create an
    empty one. *)
let create_file t name =
  let f = file_of_string "" in
  Hashtbl.replace t.fs_files name f;
  f

let size f = f.f_size

(** [read f ~pos ~len] returns up to [len] bytes starting at [pos]; short
    (or empty, at/after EOF) reads are the EOF signal. *)
let read f ~pos ~len =
  if pos >= f.f_size || len <= 0 then ""
  else
    let n = min len (f.f_size - pos) in
    Bytes.sub_string f.f_data pos n

(** [write f ~pos s] writes [s] at [pos], growing the file as needed
    (zero-filling any gap, like seeking past EOF). *)
let write f ~pos s =
  let len = String.length s in
  let hi = pos + len in
  if hi > Bytes.length f.f_data then begin
    let cap = max hi (max 64 (2 * Bytes.length f.f_data)) in
    let grown = Bytes.make cap '\000' in
    Bytes.blit f.f_data 0 grown 0 f.f_size;
    f.f_data <- grown
  end;
  Bytes.blit_string s 0 f.f_data pos len;
  if hi > f.f_size then f.f_size <- hi

let contents f = Bytes.sub_string f.f_data 0 f.f_size
