(** The OS syscall ABI (Unix-v4 flavored; see DESIGN.md "OS layer ABI").

    OS syscalls claim the trap-immediate window [{!trap_base},
    {!trap_limit}): a [ta (trap_base + num)] instruction requests syscall
    [num]. Immediates below the window keep the emulator's builtin debug
    convention ([ta 1] exit, [ta 2] putint, ...), so OS-mode programs can
    still use those while running under the OS layer.

    Register convention (mirroring the SPARC kernel trap ABI): arguments in
    %o0–%o2, result in %o0. Errors follow the classic carry-flag
    convention: on success the carry bit of the condition codes is clear
    and %o0 holds the result; on failure carry is set and %o0 holds the
    errno. Programs branch on the flag with [bcs]/[bcc] right after the
    trap. Syscall numbers are Unix v4's. *)

let trap_base = 16
let trap_limit = 48

(* syscall numbers (Unix v4) *)
let sys_exit = 1
let sys_read = 3
let sys_write = 4
let sys_open = 5
let sys_close = 6
let sys_brk = 17

(* errnos *)
let eperm = 1
let enoent = 2
let ebadf = 9
let einval = 22
let emfile = 24

let names =
  [
    (sys_exit, "exit");
    (sys_read, "read");
    (sys_write, "write");
    (sys_open, "open");
    (sys_close, "close");
    (sys_brk, "brk");
  ]

let name num = List.assoc_opt num names

let errno_name = function
  | 1 -> "EPERM"
  | 2 -> "ENOENT"
  | 9 -> "EBADF"
  | 22 -> "EINVAL"
  | 24 -> "EMFILE"
  | n -> Printf.sprintf "E%d" n

(** Is this raw [ta] immediate inside the OS window? *)
let in_window imm = imm >= trap_base && imm < trap_limit

(** Raw trap immediate -> syscall number, when inside the OS window. *)
let num_of_trap_imm imm = if in_window imm then Some (imm - trap_base) else None

(** Raw trap immediate -> implemented-syscall mnemonic ([None] for
    immediates outside the window {e and} for in-window numbers no call is
    assigned to — callers annotating disassembly fall back silently). *)
let name_of_trap_imm imm = Option.bind (num_of_trap_imm imm) name

(** Syscall number -> the [ta] immediate that requests it (for program
    generators). *)
let trap_imm num = trap_base + num

(* open(2) modes *)
let o_rdonly = 0
let o_wronly = 1

(** Highest fd the table holds (0..max_fd); opens past it fail [EMFILE]. *)
let max_fd = 15
