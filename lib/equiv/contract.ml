(** Edit contracts — a tool's declaration of its observable side effects.

    EEL's headline claim is that a tool's edits preserve program behaviour
    {e modulo the tool's own declared effects}: qpt2 stores to its counter
    words, the tracer appends to its trace buffer, SFI clamps store
    addresses into the sandbox segment (paper §§5–7). The differential
    oracle (lib/diffexec) can therefore only certify a {e real} edit if it
    knows which observable events are the instrumentation talking and which
    are the program's own. A {!t} is that knowledge, stated by the tool
    that made the edit:

    - {e regions}: added-data address ranges the instrumentation stores to
      (counter words, trace buffers, state tables). A store into a declared
      region is the tool's, and is filtered from the edited run's event log
      at record time.
    - {e red zone}: snippets that could not scavenge enough registers spill
      below the stack pointer (see {!Eel.Snippet}); a store within
      [red_zone] bytes {e below the live sp} is instrumentation bookkeeping.
      Only the emulator knows sp at store time, so this part of the mask is
      applied by the record-time filter, never post-hoc.
    - {e traps}: extra system-call numbers the instrumentation issues (a
      tracing edit that emits [ta] trace traps declares them here).
    - {e addr_norm}: a transfer function the edit applies to {e every}
      program store address (SFI's clamp). The oracle applies it to the
      {e original} run's store addresses so both sides land in the image
      the edited program actually produces.
    - {e checks}: promises about the instrumentation's own output, verified
      after an equivalent run against emulator ground truth (qpt2's counter
      words must equal the profile's execution counts).

    The contract deliberately has no opinion about {e values} stored by the
    program, exit codes, or program output: those are the oracle's job.
    Everything the contract masks is accounted for (the emulator counts
    filtered events), so "equivalent" always comes with "and this much
    traffic was masked under the contract". *)

module Emu = Eel_emu.Emu

(** A half-open address range [\[rg_lo, rg_hi)] the instrumentation owns. *)
type region = { rg_name : string; rg_lo : int; rg_hi : int }

(** A post-run promise about the instrumentation's own output: given the
    {e original} run's ground-truth profile and the {e edited} run's final
    memory, decide whether the instrumentation told the truth. *)
type check = {
  ck_name : string;
  ck_run : profile:Emu.profile -> mem:Bytes.t -> (unit, string) result;
}

type t = {
  ct_tool : string;
  ct_regions : region list;
  ct_red_zone : int;
      (** bytes below the live stack pointer masked in the edited run
          (snippet spill slots); 0 = the edit never spills *)
  ct_traps : int list;  (** extra trap numbers the instrumentation issues *)
  ct_addr_norm : (int -> int) option;
      (** applied to original-side store addresses before comparison *)
  ct_sys_extra : int list;
      (** extra OS {e syscall} numbers the instrumentation issues (masked
          from the edited run's log at record time, like [ct_traps]) *)
  ct_sys_suppress : (int -> int -> bool) option;
      (** declared syscall suppression, as a [(num, a0)] predicate: the
          edit interposes on matching calls and denies them (SFI's policy
          table). The oracle drops the matching {e error} returns from the
          edited run at record time and the matching {e successful} calls
          from the original run post-hoc, so both streams describe the
          world the sandboxed program actually reaches. An undeclared
          denial is a contract violation, not an allowed effect. *)
  ct_fd_norm : (int -> int -> int) option;
      (** fd-space transform [(num, a0) -> a0'] applied to original-side
          syscall fd arguments before comparison (an edit that renumbers
          descriptors, the fd analog of [ct_addr_norm]) *)
  ct_checks : check list;
}

let make ?(regions = []) ?(red_zone = 0) ?(traps = []) ?addr_norm
    ?(sys_extra = []) ?sys_suppress ?fd_norm ?(checks = []) tool =
  {
    ct_tool = tool;
    ct_regions = regions;
    ct_red_zone = max 0 red_zone;
    ct_traps = traps;
    ct_addr_norm = addr_norm;
    ct_sys_extra = sys_extra;
    ct_sys_suppress = sys_suppress;
    ct_fd_norm = fd_norm;
    ct_checks = checks;
  }

let region ~name ~lo ~size = { rg_name = name; rg_lo = lo; rg_hi = lo + size }

(** [span ~name addrs] — the smallest region covering every 4-byte word in
    [addrs]; [None] when the list is empty (an edit that placed nothing). *)
let span ~name = function
  | [] -> None
  | a :: rest ->
      let lo = List.fold_left min a rest and hi = List.fold_left max a rest in
      Some { rg_name = name; rg_lo = lo; rg_hi = hi + 4 }

let in_region r a = a >= r.rg_lo && a < r.rg_hi

(** Does the contract declare a store to address [a]? (Regions only — the
    red zone needs a live sp, see {!declared}.) *)
let declares_store t a = List.exists (fun r -> in_region r a) t.ct_regions

(** [declared t ~sp ev] — is [ev] the instrumentation's own traffic under
    this contract, given the live stack pointer [sp]? This is the
    record-time mask the oracle installs as the edited run's event filter. *)
let declared t ~sp ev =
  match ev with
  | Emu.Ob_store { addr; _ } ->
      declares_store t addr
      || (t.ct_red_zone > 0 && addr >= sp - t.ct_red_zone && addr < sp)
  | Emu.Ob_trap { num; _ } -> List.mem num t.ct_traps
  | Emu.Ob_syscall { num; a0; err; _ } ->
      List.mem num t.ct_sys_extra
      || err
         && (match t.ct_sys_suppress with
            | Some f -> f num a0
            | None -> false)
  | _ -> false

(** Does the contract declare the suppression of syscall [num] with first
    argument [a0]? *)
let suppresses t num a0 =
  match t.ct_sys_suppress with Some f -> f num a0 | None -> false

(** [suppressed_orig t ev] — is [ev] an original-side event the declared
    syscall suppression removes from the comparison? Any call the
    interposition denies is dropped, whatever its original outcome: the
    sandboxed world has no record of whether the call would have
    succeeded or failed, only that it was refused. Applied post-hoc by
    the oracle. *)
let suppressed_orig t ev =
  match ev with
  | Emu.Ob_syscall { num; a0; _ } -> suppresses t num a0
  | _ -> false

(** [normalize_orig t ev] — the original-side event as the edited program
    would observe it: store addresses pushed through [addr_norm] (SFI's
    clamp) and syscall fd arguments through [fd_norm]; everything else
    unchanged. *)
let normalize_orig t ev =
  match ev with
  | Emu.Ob_store { pc; addr; width; value } -> (
      match t.ct_addr_norm with
      | Some f -> Emu.Ob_store { pc; addr = f addr; width; value }
      | None -> ev)
  | Emu.Ob_syscall ({ num; a0; _ } as s) -> (
      match t.ct_fd_norm with
      | Some f ->
          let a0' = f num a0 in
          if a0' = a0 then ev else Emu.Ob_syscall { s with a0 = a0' }
      | None -> ev)
  | _ -> ev

(** [mask_events t evs] — post-hoc filtering of an event array under the
    contract's {e static} mask (regions and traps; the red zone cannot be
    recovered after the fact). For tests and offline log analysis; the
    oracle itself filters at record time. *)
let mask_events t evs =
  Array.of_list
    (List.filter
       (fun ev -> not (declared t ~sp:min_int ev))
       (Array.to_list evs))

(** {1 Adversarial contract surgery}

    The fault-injection campaign (lib/robust's [Fault]) needs to state
    {e lies}: contracts that under-declare, over-declare or mis-declare a
    tool's side effects, so the oracle can be shown to catch each kind of
    lie. These transformers produce such contracts from an honest one; they
    are pure (the original contract is untouched). *)

(** Forget one declared region (by index into [ct_regions]) — the
    "missing declaration" lie: the tool's stores there become undeclared
    side effects the oracle must flag. Out-of-range indices are identity. *)
let forget_region t i =
  {
    t with
    ct_regions = List.filteri (fun j _ -> j <> i) t.ct_regions;
  }

(** Claim one extra region — the "over-declaration" lie: when the region
    covers memory the {e program} writes, the oracle's masked edited run
    goes silent where the original does not, and lockstep breaks. *)
let claim_region t r = { t with ct_regions = r :: t.ct_regions }

(** Claim an extra instrumentation trap number — masking a trap the
    program itself issues. *)
let claim_trap t n = { t with ct_traps = n :: t.ct_traps }

(** Replace the declared store-address transform — the "phantom transform"
    lie: the contract claims every program store address is rewritten by
    [f], but the edit applies no such thing (or a different one), so the
    normalized original stores and the edited run's raw stores no longer
    meet. *)
let claim_addr_norm t f = { t with ct_addr_norm = Some f }

(** Claim an extra instrumentation {e syscall} number — masking an OS call
    the program itself makes (the syscall-surface analog of
    {!claim_trap}). *)
let claim_sys t n = { t with ct_sys_extra = n :: t.ct_sys_extra }

(** Claim a syscall suppression the edit never applies — the "phantom
    interposition" lie: the oracle drops matching successful calls from
    the original stream, but the edited run still makes them, so lockstep
    breaks. *)
let claim_sys_suppress t f = { t with ct_sys_suppress = Some f }

(** Forget the declared suppression while the edit still interposes — the
    "undeclared deny" lie: the edited run's denials surface as undeclared
    error returns and the original's suppressed calls go unmatched. *)
let forget_sys_suppress t = { t with ct_sys_suppress = None }

(** Drop every post-run promise — the "broken promise" direction is
    exercised the other way around (keep the checks, skew the output), but
    the campaign also needs promise-free variants for isolating event-level
    verdicts. *)
let forget_checks t = { t with ct_checks = [] }

(** [run_checks t ~profile ~mem] runs every post-run check; the result is
    the first failure, tagged with its check's name. *)
let run_checks t ~profile ~mem =
  List.fold_left
    (fun acc ck ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match ck.ck_run ~profile ~mem with
          | Ok () -> Ok ()
          | Error msg -> Error (Printf.sprintf "check %s: %s" ck.ck_name msg)))
    (Ok ()) t.ct_checks

let pp_region fmt r =
  Format.fprintf fmt "%s [0x%x, 0x%x)" r.rg_name r.rg_lo r.rg_hi

let pp fmt t =
  Format.fprintf fmt "contract %s:" t.ct_tool;
  List.iter (fun r -> Format.fprintf fmt " %a;" pp_region r) t.ct_regions;
  if t.ct_red_zone > 0 then
    Format.fprintf fmt " red-zone %d;" t.ct_red_zone;
  List.iter (fun n -> Format.fprintf fmt " trap %d;" n) t.ct_traps;
  if t.ct_addr_norm <> None then Format.fprintf fmt " addr-norm;";
  List.iter (fun n -> Format.fprintf fmt " sys %d;" n) t.ct_sys_extra;
  if t.ct_sys_suppress <> None then Format.fprintf fmt " sys-suppress;";
  if t.ct_fd_norm <> None then Format.fprintf fmt " fd-norm;";
  List.iter (fun c -> Format.fprintf fmt " check %s;" c.ck_name) t.ct_checks
