(** Editing CFGs and producing edited routines (paper §3.3.1).

    "A tool edits a routine's CFG by deleting instructions, adding new code
    before or after any instruction, or adding code along a control-flow
    graph edge. [...] EEL accumulates edits without changing the CFG. [...]
    Producing an edited routine involves laying out its blocks and snippets
    to minimize unnecessary jumps and adjusting displacements and addresses
    in control-transfer instructions — or occasionally replacing these
    instructions by snippets containing instructions with a longer span."

    The layout engine re-emits each routine:

    - unedited delayed branches are {e refolded}: the original branch word
      and its delay instruction are emitted verbatim (only the displacement
      is adjusted), undoing the CFG's delay-slot duplication;
    - edited branches are rewritten in expanded form (annul bit cleared,
      [nop] in the slot) with out-of-line stubs carrying taken-edge code;
    - indirect jumps through rewritten dispatch tables keep their original
      form; {e unanalyzable} indirect jumps and indirect calls are replaced
      by a run-time address-translation sequence through the executable's
      translation table (§3.3: "run-time code ensures that control passes to
      the correct edited instruction");
    - conditional branches whose displacement no longer fits (or exceeds an
      artificial [max_span], for the ablation experiment) are re-targeted at
      a long-jump thunk appended to the routine (§3.3.1's "instructions with
      a longer span").

    The result ({!edited}) is position independent: words carry symbolic
    patches ([P_orig] for cross-routine targets, [P_reloc] for absolute
    targets such as added handler routines, [P_hi_label]/[P_lo_label] for
    thunk address materialization) that {!Executable} resolves once every
    routine's final address is known. *)

open Eel_arch
module C = Cfg
module Diag = Eel_robust.Diag

(** Historical alias: edit failures are now {!Diag.Error} values carrying
    {!Diag.Edit_error}; kept so old match arms keep compiling. *)
exception Edit_error of string

let err fmt = Diag.edit_error fmt

(* ------------------------------------------------------------------ *)
(* Edit accumulation                                                   *)
(* ------------------------------------------------------------------ *)

type editor = {
  g : C.t;
  mach : Machine.t;
  xlat_delta : int;
      (** translation-table displacement: [xlat_base - old_text_lo] *)
  fold_delay : bool;  (** delay-slot refolding enabled (ablation E-fold) *)
  max_span : int option;  (** artificial branch-span limit (ablation) *)
  gaps : (int * int, Snippet.t list ref) Hashtbl.t;
      (** (bid, gap) -> snippets; gap [i] is the point before instruction
          [i]; gap [length instrs] is the point before the terminator *)
  edge_code : (int, Snippet.t list ref) Hashtbl.t;  (** eid -> snippets *)
  deleted : (int * int, unit) Hashtbl.t;
  mutable n_snippets : int;
  mutable n_spilled : int;
}

let create ?(fold_delay = true) ?max_span ~xlat_delta (g : C.t) =
  {
    g;
    mach = g.C.mach;
    xlat_delta;
    fold_delay;
    max_span;
    gaps = Hashtbl.create 32;
    edge_code = Hashtbl.create 16;
    deleted = Hashtbl.create 8;
    n_snippets = 0;
    n_spilled = 0;
  }

let check_block_editable (b : C.block) =
  if not b.C.editable then err "block %d is not editable" b.C.bid;
  if b.C.is_data then err "block %d is data" b.C.bid

let add_at ed (b : C.block) gap s =
  check_block_editable b;
  let n = Array.length b.C.instrs in
  if gap < 0 || gap > n then err "bad insertion point %d in block %d" gap b.C.bid;
  b.C.edited <- true;
  ed.n_snippets <- ed.n_snippets + 1;
  (match Hashtbl.find_opt ed.gaps (b.C.bid, gap) with
  | Some r -> r := !r @ [ s ]
  | None -> Hashtbl.add ed.gaps (b.C.bid, gap) (ref [ s ]))

(** Insert [s] before instruction [idx] of [b]. *)
let add_before ed b idx s = add_at ed b idx s

(** Insert [s] after instruction [idx] of [b]. *)
let add_after ed (b : C.block) idx s = add_at ed b (idx + 1) s

(** Insert [s] at the end of [b]'s straight-line body (before its
    terminator, if any). *)
let add_at_end ed (b : C.block) s = add_at ed b (Array.length b.C.instrs) s

(** Add code along a CFG edge (paper Fig. 1: [e->add_code_along]). *)
let add_along ed (e : C.edge) s =
  if not e.C.e_editable then err "edge %d is not editable" e.C.eid;
  e.C.e_edited <- true;
  e.C.esrc.C.edited <- true;
  ed.n_snippets <- ed.n_snippets + 1;
  match Hashtbl.find_opt ed.edge_code e.C.eid with
  | Some r -> r := !r @ [ s ]
  | None -> Hashtbl.add ed.edge_code e.C.eid (ref [ s ])

(** Delete instruction [idx] of block [b]. Terminators cannot be deleted. *)
let delete ed (b : C.block) idx =
  check_block_editable b;
  if idx < 0 || idx >= Array.length b.C.instrs then
    err "bad deletion point %d in block %d" idx b.C.bid;
  b.C.edited <- true;
  Hashtbl.replace ed.deleted (b.C.bid, idx) ()

let gap_snippets ed (b : C.block) gap =
  match Hashtbl.find_opt ed.gaps (b.C.bid, gap) with Some r -> !r | None -> []

let edge_snippets ed (e : C.edge) =
  match Hashtbl.find_opt ed.edge_code e.C.eid with Some r -> !r | None -> []

let is_deleted ed (b : C.block) idx = Hashtbl.mem ed.deleted (b.C.bid, idx)

(** A block is untouched if no gap code, edge code or deletion refers to
    it — the condition for refolding its delay slot. *)
let block_untouched ed (b : C.block) = not b.C.edited

(* ------------------------------------------------------------------ *)
(* Edited-routine representation                                       *)
(* ------------------------------------------------------------------ *)

type patch =
  | P_none
  | P_label of int  (** pc-relative to a local label (resolved here) *)
  | P_orig of int
      (** pc-relative to the edited location of original address *)
  | P_reloc of int  (** pc-relative to an absolute address *)
  | P_hi_label of int  (** absolute-high of a local label's final address *)
  | P_lo_label of int

type eword = { mutable w : int; mutable patch : patch }

type edited = {
  ed_words : eword array;
  ed_labels : (int, int) Hashtbl.t;  (** label id -> word index *)
  ed_entries : (int * int) list;  (** original entry address -> word index *)
  ed_origin : (int, int) Hashtbl.t;  (** original instr address -> word index *)
  ed_callbacks : (int * Snippet.instance) list;  (** word index, instance *)
  ed_tables : C.table list;  (** dispatch tables to rewrite in place *)
  ed_uses_xlat : bool;
}

let size_bytes ed = 4 * Array.length ed.ed_words

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

type emitter = {
  e : editor;
  words : eword Eel_util.Dyn.t;
  labels : (int, int) Hashtbl.t;  (** label id -> word index *)
  mutable next_label : int;
  origin : (int, int) Hashtbl.t;
  mutable callbacks : (int * Snippet.instance) list;
  mutable pending_stubs : (int * (unit -> unit)) list;  (** label, emit fn *)
  live : Dataflow.live;
  mutable uses_xlat : bool;
}

let here em = Eel_util.Dyn.length em.words

let fresh_label em =
  let l = em.next_label in
  em.next_label <- l + 1;
  l

let place_label em l = Hashtbl.replace em.labels l (here em)

let push em w patch = Eel_util.Dyn.push em.words { w; patch }

let record_origin ?(force = true) em addr =
  if force || not (Hashtbl.mem em.origin addr) then
    Hashtbl.replace em.origin addr (here em)

(* Destination of control flow: a local label or an original address outside
   the routine. *)
type dest = D_label of int | D_orig of int

let block_label em (b : C.block) = 100000 + b.C.bid
(* block labels use a distinct id space; fresh labels start at 0 and stay
   below 100000 because routines are far smaller *)

let dest_of_edge em (e : C.edge) : dest =
  match e.C.ekind with
  | C.Ek_xfer a -> D_orig a
  | _ -> (
      match e.C.edst.C.kind with
      | C.Normal -> D_label (block_label em e.C.edst)
      | _ -> err "unexpected edge destination %d" e.C.edst.C.bid)

let emit_goto em (d : dest) =
  let m = em.e.mach in
  (match d with
  | D_label l -> push em (m.Machine.mk_ba ~disp:0) (P_label l)
  | D_orig a -> push em (m.Machine.mk_ba ~disp:0) (P_orig a));
  push em m.Machine.nop P_none

(* Emit accumulated snippets with scavenged registers from [live]. *)
let emit_snippets em snips ~live =
  List.iter
    (fun s ->
      let inst = Snippet.instantiate em.e.mach s ~live in
      em.e.n_spilled <- em.e.n_spilled + inst.Snippet.in_spilled;
      let start = here em in
      Array.iteri
        (fun i w ->
          let patch =
            match
              List.find_opt
                (fun (r : Template.reloc) -> r.Template.index = i)
                inst.Snippet.in_relocs
            with
            | Some r -> P_reloc r.Template.target
            | None -> P_none
          in
          push em w patch)
        inst.Snippet.in_words;
      if inst.Snippet.in_callback <> None then
        em.callbacks <- (start, inst) :: em.callbacks)
    snips

(* Emit a delay block's body honoring its gap edits and deletions. [force]
   controls origin recording priority (delay copies record weakly). *)
let emit_delay_body em (d : C.block) ~live =
  Array.iteri
    (fun idx (a, (i : Instr.t)) ->
      record_origin ~force:false em a;
      emit_snippets em (gap_snippets em.e d idx) ~live;
      if not (is_deleted em.e d idx) then push em i.Instr.word P_none)
    d.C.instrs;
  emit_snippets em (gap_snippets em.e d (Array.length d.C.instrs)) ~live

(* The single outgoing edge of a delay block (to its final destination). *)
let delay_out (d : C.block) =
  match d.C.succs with
  | [ e ] -> e
  | _ -> err "delay block %d has %d successors" d.C.bid (List.length d.C.succs)

let taken_edge (b : C.block) =
  match
    List.find_opt (fun (e : C.edge) -> e.C.ekind = C.Ek_taken) b.C.succs
  with
  | Some e -> e
  | None -> err "block %d has no taken edge" b.C.bid

let fall_edge (b : C.block) =
  match
    List.find_opt
      (fun (e : C.edge) ->
        match e.C.ekind with C.Ek_fall | C.Ek_xfer _ -> true | _ -> false)
      b.C.succs
  with
  | Some e -> e
  | None -> err "block %d has no fall edge" b.C.bid

(* Is the chain rooted at edge [e] (edge + optional delay block + its out
   edge) free of edits, so the branch can be refolded? *)
let chain_untouched ed (e : C.edge) =
  (not e.C.e_edited)
  &&
  match e.C.edst.C.kind with
  | C.Delay -> block_untouched ed e.C.edst && not (delay_out e.C.edst).C.e_edited
  | _ -> true

(* Final destination reached through edge [e] (skipping a delay block). *)
let chain_dest em (e : C.edge) =
  match e.C.edst.C.kind with
  | C.Delay -> dest_of_edge em (delay_out e.C.edst)
  | _ -> dest_of_edge em e

(* Emit the code carried by edge [e]: edge snippets plus the delay block
   body (if the edge leads through one); returns the final destination. *)
let emit_chain em (e : C.edge) =
  let live = Dataflow.live_on_edge em.live e in
  (match edge_snippets em.e e with
  | [] -> ()
  | snips -> emit_snippets em snips ~live);
  match e.C.edst.C.kind with
  | C.Delay ->
      emit_delay_body em e.C.edst ~live;
      (* code along the delay block's outgoing edge runs after the delay
         instruction, before the final destination *)
      let out = delay_out e.C.edst in
      (match edge_snippets em.e out with
      | [] -> ()
      | snips ->
          emit_snippets em snips ~live:(Dataflow.live_on_edge em.live out));
      dest_of_edge em out
  | _ -> dest_of_edge em e

(* Emit "fall to [d]": nothing if [d] is the next block in layout order,
   otherwise an explicit goto. *)
let emit_fall em d ~next =
  match (d, next) with
  | D_label l, Some (nb : C.block) when l = block_label em nb -> ()
  | _ -> emit_goto em d

(* The run-time translation sequence for an indirect transfer whose target
   is an ORIGINAL code address held in registers (paper §3.3). Clobbers the
   two EEL-reserved scratch registers. *)
let emit_xlat_transfer em ~rs1 ~op2 ~link ~delay_emit =
  let m = em.e.mach in
  em.uses_xlat <- true;
  let g6 = m.Machine.reserved_scratch2 and g7 = m.Machine.reserved_scratch in
  (* old target into %g6 *)
  push em (m.Machine.mk_add ~rs1 ~op2 ~dst:g6) P_none;
  (* the original delay instruction (and its edits) run before the
     transfer, after the target has been captured *)
  delay_emit ();
  (* new target = *(old_target + (xlat_base - old_text_lo)) *)
  List.iter
    (fun w -> push em w P_none)
    (m.Machine.mk_set_const ~reg:g7 em.e.xlat_delta);
  push em
    (m.Machine.mk_ld_word ~addr_rs1:g6 ~addr_op2:(Instr.O_reg g7) ~dst:g7)
    P_none;
  push em (m.Machine.mk_jmp_reg ~rs1:g7 ~op2:(Instr.O_imm 0) ~link) P_none;
  push em m.Machine.nop P_none

(* ------------------------------------------------------------------ *)
(* Block emission                                                      *)
(* ------------------------------------------------------------------ *)

let emit_block em (b : C.block) ~next =
  let ed = em.e in
  let m = ed.mach in
  place_label em (block_label em b);
  if b.C.is_data then
    (* data inside a routine stays in the original image; nothing to emit *)
    ()
  else (
    (* ---- straight-line body ---- *)
    let body_live idx = Dataflow.live_before em.live ed.g b idx in
    let emit_gap idx =
      (* liveness is only needed when there is code to place *)
      match gap_snippets ed b idx with
      | [] -> ()
      | snips -> emit_snippets em snips ~live:(body_live idx)
    in
    Array.iteri
      (fun idx (a, (i : Instr.t)) ->
        (* record BEFORE the gap snippets: a transfer to this instruction
           must execute the code inserted before it *)
        record_origin em a;
        emit_gap idx;
        if not (is_deleted ed b idx) then push em i.Instr.word P_none)
      b.C.instrs;
    let n = Array.length b.C.instrs in
    (match C.term_instr b with
    | Some (taddr, _) -> record_origin em taddr
    | None -> ());
    emit_gap n;
    (* ---- terminator ---- *)
    match b.C.term with
    | C.T_none -> (
        match b.C.succs with
        | [] -> () (* no successors: end of region or dead end *)
        | [ e ] ->
            let d = emit_chain em e in
            emit_fall em d ~next
        | _ -> err "fall-through block %d has multiple successors" b.C.bid)
    | C.T_branch { i; addr } -> (
        let never =
          match i.Instr.ctl with
          | Instr.C_branch { never; _ } -> never
          | _ -> false
        in
        if never then (
          (* bn: no transfer ever happens; emit the delay path inline *)
          let fe = fall_edge b in
          let d = emit_chain em fe in
          emit_fall em d ~next)
        else
          let te = taken_edge b in
          let fe = fall_edge b in
          let foldable =
            ed.fold_delay && chain_untouched ed te && chain_untouched ed fe
          in
          if foldable then (
            (* re-emit the original branch (annul bit preserved) with its
               delay instruction back in the slot *)
            let taken_dest = chain_dest em te in
            (match taken_dest with
            | D_label l -> push em i.Instr.word (P_label l)
            | D_orig a -> push em i.Instr.word (P_orig a));
            (* the delay instruction: taken chain's delay block (always
               present for a conditional branch) *)
            (match te.C.edst.C.kind with
            | C.Delay ->
                let a, di = te.C.edst.C.instrs.(0) in
                record_origin ~force:false em a;
                push em di.Instr.word P_none
            | _ -> err "taken edge of branch at 0x%x lacks a delay block" addr);
            let fall_dest = chain_dest em fe in
            emit_fall em fall_dest ~next)
          else (
            (* expanded form: annul cleared, nop in the slot, taken-edge
               code in an out-of-line stub *)
            let stub = fresh_label em in
            push em (m.Machine.set_annul i.Instr.word false) (P_label stub);
            push em m.Machine.nop P_none;
            (* fall path continues inline *)
            let fall_dest = emit_chain em fe in
            emit_fall em fall_dest ~next;
            em.pending_stubs <-
              ( stub,
                fun () ->
                  place_label em stub;
                  let taken_dest = emit_chain em te in
                  emit_goto em taken_dest )
              :: em.pending_stubs))
    | C.T_goto { i; addr } ->
        let te = taken_edge b in
        if ed.fold_delay && chain_untouched ed te then (
          let d = chain_dest em te in
          (match d with
          | D_label l -> push em i.Instr.word (P_label l)
          | D_orig a -> push em i.Instr.word (P_orig a));
          match te.C.edst.C.kind with
          | C.Delay ->
              let a, di = te.C.edst.C.instrs.(0) in
              record_origin ~force:false em a;
              push em di.Instr.word P_none
          | _ ->
              (* annulled goto: slot never executes *)
              push em m.Machine.nop P_none)
        else (
          let d = emit_chain em te in
          emit_goto em d)
    | C.T_call { addr; _ } | C.T_icall { addr; _ } -> (
        let is_direct = match b.C.term with C.T_call _ -> true | _ -> false in
        (* locate delay slot and surrogate *)
        let dslot =
          match b.C.succs with
          | [ e ] when e.C.edst.C.kind = C.Delay -> e.C.edst
          | _ -> err "call at 0x%x lacks a delay block" addr
        in
        let surrogate = (delay_out dslot).C.edst in
        let cont_edge =
          match surrogate.C.succs with
          | [ e ] -> e
          | _ -> err "call surrogate after 0x%x is malformed" addr
        in
        (if is_direct then (
           let target =
             match b.C.term with C.T_call { target; _ } -> target | _ -> assert false
           in
           push em (m.Machine.mk_call ~disp:0) (P_orig target);
           let a, di = dslot.C.instrs.(0) in
           record_origin ~force:false em a;
           push em di.Instr.word P_none)
         else
           match b.C.term with
           | C.T_icall { i; addr } ->
               let rs1, op2, link =
                 match i.Instr.ctl with
                 | Instr.C_jump_ind { rs1; op2; link } -> (rs1, op2, link)
                 | _ -> assert false
               in
               (* indirect calls go through function pointers holding
                  ORIGINAL addresses: translate at run time *)
               emit_xlat_transfer em ~rs1 ~op2 ~link ~delay_emit:(fun () ->
                   let a, di = dslot.C.instrs.(0) in
                   record_origin ~force:false em a;
                   push em di.Instr.word P_none)
           | _ -> assert false);
        (* continuation: code along the surrogate->continuation edge runs
           "after the call" *)
        let live = Dataflow.live_on_edge em.live cont_edge in
        emit_snippets em (edge_snippets ed cont_edge) ~live;
        match cont_edge.C.ekind with
        | C.Ek_xfer a -> emit_goto em (D_orig a)
        | _ -> emit_fall em (dest_of_edge em cont_edge) ~next)
    | C.T_return { i; addr } ->
        let dslot =
          match b.C.succs with
          | [ e ] when e.C.edst.C.kind = C.Delay -> e.C.edst
          | _ -> err "return at 0x%x lacks a delay block" addr
        in
        (* links hold edited addresses: a return needs no translation *)
        push em i.Instr.word P_none;
        let a, di = dslot.C.instrs.(0) in
        record_origin ~force:false em a;
        push em di.Instr.word P_none
    | C.T_jump { i; addr; table } -> (
        let dslot =
          match b.C.succs with
          | [ e ] when e.C.edst.C.kind = C.Delay -> e.C.edst
          | _ -> err "jump at 0x%x lacks a delay block" addr
        in
        let rs1, op2, link =
          match i.Instr.ctl with
          | Instr.C_jump_ind { rs1; op2; link } -> (rs1, op2, link)
          | _ -> assert false
        in
        (* a table jump's delay block has one computed edge per target *)
        let live = em.live.Dataflow.l_out.(dslot.C.bid) in
        match table with
        | Some tbl when tbl.C.t_addr = -1 ->
            (* literal target: becomes a direct transfer *)
            emit_delay_body em dslot ~live;
            emit_goto em (D_orig tbl.C.t_targets.(0))
        | Some _ ->
            (* dispatch table rewritten in place: the loaded value is
               already an edited address *)
            if block_untouched ed dslot then (
              push em i.Instr.word P_none;
              let a, di = dslot.C.instrs.(0) in
              record_origin ~force:false em a;
              push em di.Instr.word P_none)
            else (
              (* edited delay: capture the (already-new) target first *)
              let g6 = m.Machine.reserved_scratch2 in
              push em (m.Machine.mk_add ~rs1 ~op2 ~dst:g6) P_none;
              emit_delay_body em dslot ~live;
              push em
                (m.Machine.mk_jmp_reg ~rs1:g6 ~op2:(Instr.O_imm 0) ~link)
                P_none;
              push em m.Machine.nop P_none)
        | None ->
            (* unanalyzable: run-time translation *)
            emit_xlat_transfer em ~rs1 ~op2 ~link ~delay_emit:(fun () ->
                emit_delay_body em dslot ~live))
  )

(* ------------------------------------------------------------------ *)
(* produce_edited_routine                                              *)
(* ------------------------------------------------------------------ *)

(** [produce ed] lays out the edited routine (paper §3.3.1). *)
let produce (ed : editor) : edited =
  let g = ed.g in
  let live = Dataflow.liveness g in
  let em =
    {
      e = ed;
      words = Eel_util.Dyn.create ();
      labels = Hashtbl.create 64;
      next_label = 0;
      origin = Hashtbl.create 256;
      callbacks = [];
      pending_stubs = [];
      live;
      uses_xlat = false;
    }
  in
  (* Layout order: Normal blocks by original address. Reachable blocks
     always; when the CFG is INCOMPLETE (an unanalyzable indirect jump is
     present, §3.3) unreachable code blocks are emitted too — they may be
     targets of the translated jump, so every original instruction needs an
     edited location. *)
  let order =
    List.filter
      (fun (b : C.block) ->
        b.C.kind = C.Normal
        && (b.C.reachable || ((not g.C.complete) && not b.C.is_data)))
      (C.blocks g)
    |> List.sort (fun (a : C.block) b -> compare a.C.baddr b.C.baddr)
  in
  (* entry stubs for entries whose edges carry code *)
  let entry_fixups = ref [] in
  List.iter
    (fun (addr, (eb : C.block)) ->
      match eb.C.succs with
      | [ e ] ->
          let snips = edge_snippets ed e in
          if snips <> [] then (
            let pos = here em in
            emit_snippets em snips ~live:(Dataflow.live_on_edge live e);
            emit_goto em (dest_of_edge em e);
            entry_fixups := (addr, `Idx pos) :: !entry_fixups)
          else entry_fixups := (addr, `Dest (dest_of_edge em e)) :: !entry_fixups
      | _ -> err "entry block %d malformed" eb.C.bid)
    g.C.entries;
  (* blocks *)
  let rec emit_all = function
    | [] -> ()
    | b :: rest ->
        emit_block em b ~next:(match rest with n :: _ -> Some n | [] -> None);
        emit_all rest
  in
  emit_all order;
  (* out-of-line stubs (in creation order) *)
  let rec drain () =
    match List.rev em.pending_stubs with
    | [] -> ()
    | stubs ->
        em.pending_stubs <- [];
        List.iter (fun (_, f) -> f ()) stubs;
        drain ()
  in
  drain ();
  (* ---- resolve local-label branches, expanding span overflows ---- *)
  let words = em.words in
  let span_limit =
    match ed.max_span with
    | Some s -> min s ed.mach.Machine.branch_span
    | None -> ed.mach.Machine.branch_span
  in
  let expansions : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    let n = Eel_util.Dyn.length words in
    for idx = 0 to n - 1 do
      let ew = Eel_util.Dyn.get words idx in
      match ew.patch with
      | P_label l -> (
          let target =
            match Hashtbl.find_opt em.labels l with
            | Some t -> t
            | None -> err "unresolved label %d" l
          in
          let disp = 4 * (target - idx) in
          let instr = ed.mach.Machine.lift ew.w in
          let fits =
            abs disp <= span_limit
            &&
            match ed.mach.Machine.retarget instr ~disp with
            | Some w' ->
                ew.w <- w';
                true
            | None -> false
          in
          if not fits then (
            (* §3.3.1: replace by a longer-span sequence — retarget the
               branch at a thunk that materializes the absolute address.
               Thunks live at the end of the routine, so a branch whose
               distance to the END exceeds the span cannot be fixed this
               way; bound the retries and fail loudly instead of looping. *)
            let tries = Option.value ~default:0 (Hashtbl.find_opt expansions idx) in
            if tries >= 2 then
              err
                "branch at word %d cannot reach a long-jump thunk within the \
                 span limit" idx;
            Hashtbl.replace expansions idx (tries + 1);
            let thunk = fresh_label em in
            place_label em thunk;
            let g7 = ed.mach.Machine.reserved_scratch in
            (* sethi %hi(label), %g7 / or %g7, %lo(label), %g7 — the label's
               absolute address is known only to the writer *)
            (match ed.mach.Machine.mk_set_const ~reg:g7 0 with
            | [ hi; lo ] ->
                push em hi (P_hi_label l);
                push em lo (P_lo_label l)
            | ws -> List.iter (fun w -> push em w P_none) ws);
            push em
              (ed.mach.Machine.mk_jmp_reg ~rs1:g7 ~op2:(Instr.O_imm 0) ~link:0)
              P_none;
            push em ed.mach.Machine.nop P_none;
            ew.patch <- P_label thunk;
            changed := true))
      | _ -> ()
    done
  done;
  (* final pass: mark resolved labels as plain words *)
  Eel_util.Dyn.iter
    (fun ew -> match ew.patch with P_label _ -> ew.patch <- P_none | _ -> ())
    words;
  let resolve_dest = function
    | `Idx i -> i
    | `Dest (D_label l) -> Hashtbl.find em.labels l
    | `Dest (D_orig _) -> err "routine entry leads straight out of the routine"
  in
  let tables =
    List.filter_map
      (fun (b : C.block) ->
        match b.C.term with
        | C.T_jump { table = Some t; _ } when t.C.t_addr >= 0 -> Some t
        | _ -> None)
      (C.blocks g)
  in
  {
    ed_words = Eel_util.Dyn.to_array words;
    ed_labels = em.labels;
    ed_entries = List.map (fun (a, d) -> (a, resolve_dest d)) !entry_fixups;
    ed_origin = em.origin;
    ed_callbacks = em.callbacks;
    ed_tables = tables;
    ed_uses_xlat = em.uses_xlat;
  }

(* ------------------------------------------------------------------ *)
(* Post-produce invariant verification                                 *)
(* ------------------------------------------------------------------ *)

(** [verify ed] checks the structural invariants an {!edited} routine must
    satisfy before it may be placed in an output image. Returns the list of
    violations (empty = sound):

    - every word is a representable 32-bit instruction;
    - no unresolved local-label patch survived {!produce};
    - every label, entry stub and origin-map index lies within the emitted
      word array ([= length] is tolerated for degenerate entries that fall
      off the end of a routine whose tail was classified as data). *)
let verify (ed : edited) : string list =
  let n = Array.length ed.ed_words in
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iteri
    (fun idx (ew : eword) ->
      if ew.w < 0 || ew.w > 0xFFFF_FFFF then
        bad "word %d is not a 32-bit value: 0x%x" idx ew.w;
      match ew.patch with
      | P_label l -> bad "word %d carries an unresolved local label %d" idx l
      | P_none | P_orig _ | P_reloc _ | P_hi_label _ | P_lo_label _ -> ())
    ed.ed_words;
  Hashtbl.iter
    (fun l idx ->
      if idx < 0 || idx > n then bad "label %d resolves outside the routine: %d" l idx)
    ed.ed_labels;
  List.iter
    (fun (orig, idx) ->
      if idx < 0 || idx > n then
        bad "entry 0x%x maps outside the routine: word %d of %d" orig idx n)
    ed.ed_entries;
  Hashtbl.iter
    (fun orig idx ->
      if idx < 0 || idx > n then
        bad "origin 0x%x maps outside the routine: word %d of %d" orig idx n)
    ed.ed_origin;
  List.rev !problems

(** [verify_exn ?name ed] — {!verify}, with violations surfaced as the
    structured {!Diag.Invariant_error} every oracle and driver already
    matches on, instead of an ad-hoc exception. This is the form the
    differential-execution oracle invokes automatically on every routine it
    lays out, so invariant violations degrade into [Result.Error] values
    (via {!Diag.guard}) rather than crashing a verification run. *)
let verify_exn ?(name = "<routine>") (ed : edited) =
  match verify ed with
  | [] -> ()
  | p :: rest ->
      Diag.invariant_error "routine %s: %s%s" name p
        (match rest with
        | [] -> ""
        | _ -> Printf.sprintf " (and %d more)" (List.length rest))
