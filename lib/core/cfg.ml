(** Control-flow graphs of routines (paper §3.3).

    The CFG is EEL's primary program representation. Its defining feature is
    that {e instructions' internal control flow is made explicit}: delayed
    branches, annulled branches and calls are normalized so that every
    instruction in the graph appears to be a simple, non-delayed instruction
    (paper Fig. 3). Concretely:

    - the delay-slot instruction of a {e non-annulled conditional branch} is
      duplicated into two single-instruction [Delay] blocks, one on the taken
      edge and one on the fall-through edge;
    - for an {e annulled} conditional branch the delay instruction appears
      only on the taken edge;
    - for [ba,a] (and [bn,a]) the delay instruction appears on no edge;
    - a {e call}'s delay block is followed by a distinguished zero-length
      [Call_surrogate] block standing for the callee's execution;
    - synthetic [Entry] and [Exit] blocks bracket the routine.

    Some blocks and edges are {e uneditable} (paper: "most uneditable blocks
    and edges transfer control out of the current routine, e.g. the delay
    slot after a call"); experiment E3 measures their fraction.

    Construction is conservative in the presence of data: invalid words form
    [is_data] blocks, and unreachable valid code at the end of the region is
    reported as a {e hidden routine} candidate for the executable-level
    analysis (paper §3.1 stage 4). *)

open Eel_arch
module I = Instr
module Diag = Eel_robust.Diag

(** Historical alias: CFG-construction failures are now {!Diag.Error}
    values carrying {!Diag.Exe_error}/{!Diag.Decode_error}; this exception
    is kept only so old match arms keep compiling. *)
exception Eel_error of string

let err fmt =
  Printf.ksprintf (fun s -> raise (Diag.Error (Diag.Exe_error { what = s }))) fmt

type block_kind = Normal | Delay | Call_surrogate | Entry | Exit

type edge_kind =
  | Ek_fall  (** sequential flow *)
  | Ek_taken  (** branch taken *)
  | Ek_call  (** delay block to call surrogate *)
  | Ek_cont  (** call surrogate to the return continuation *)
  | Ek_computed of int option
      (** indirect jump; [Some a] = resolved original target, [None] =
          unanalyzable *)
  | Ek_exit  (** to the synthetic exit block (returns) *)
  | Ek_xfer of int
      (** direct transfer that leaves the routine (interprocedural branch or
          fall-through off the end); payload = original destination *)

(** A jump's dispatch table, discovered by backward slicing (§3.3). *)
type table = {
  t_addr : int;  (** address of the first table entry *)
  t_targets : int array;  (** original code addresses stored in the table *)
}

type term =
  | T_none  (** block falls through *)
  | T_branch of { i : I.t; addr : int }
      (** conditional (or never-taken) pc-relative branch *)
  | T_goto of { i : I.t; addr : int }  (** unconditional branch (ba) *)
  | T_call of { i : I.t; addr : int; target : int }
  | T_icall of { i : I.t; addr : int }  (** indirect call through a register *)
  | T_jump of { i : I.t; addr : int; mutable table : table option }
  | T_return of { i : I.t; addr : int }

type block = {
  bid : int;
  kind : block_kind;
  baddr : int option;  (** original address of the first instruction *)
  mutable instrs : (int * I.t) array;
      (** (original address, instruction); duplicated delay-slot copies
          share their original address *)
  mutable term : term;
  mutable succs : edge list;
  mutable preds : edge list;
  mutable editable : bool;
  mutable reachable : bool;
  mutable is_data : bool;
  mutable edited : bool;  (** set once any edit touches this block *)
}

and edge = {
  eid : int;
  esrc : block;
  edst : block;
  ekind : edge_kind;
  mutable e_editable : bool;
  mutable e_edited : bool;
}

type t = {
  mach : Machine.t;
  lo : int;
  hi : int;
  blocks : block Eel_util.Dyn.t;  (** all blocks, entry/exit included *)
  entries : (int * block) list;  (** entry address -> Entry block *)
  exit_block : block;
  mutable complete : bool;
      (** false when an indirect jump could not be analyzed; the editor then
          falls back on run-time address translation (§3.3) *)
  mutable hidden_candidate : int option;
      (** start of unreachable trailing code: a hidden routine (§3.1) *)
  block_at : (int, block) Hashtbl.t;  (** original address -> Normal block *)
}

(** {1 Inquiries} *)

let blocks g = Eel_util.Dyn.to_list g.blocks

let num_blocks g = Eel_util.Dyn.length g.blocks

let edges g =
  List.concat_map (fun b -> b.succs) (blocks g)

let entry_blocks g = List.map snd g.entries

let block_at g addr = Hashtbl.find_opt g.block_at addr

(** Terminator instruction and its address, if any. *)
let term_instr b =
  match b.term with
  | T_none -> None
  | T_branch { i; addr } | T_goto { i; addr } | T_call { i; addr; _ }
  | T_icall { i; addr } | T_jump { i; addr; _ } | T_return { i; addr } ->
      Some (addr, i)

(** All instructions of a block including the terminator (for analyses). *)
let all_instrs b =
  match term_instr b with
  | None -> Array.to_list b.instrs
  | Some ai -> Array.to_list b.instrs @ [ ai ]

(** Array form of {!all_instrs} — the hot path for slicing and liveness.
    Blocks without a terminator share their body array (tools never mutate
    block bodies: edits accumulate outside the CFG, §3.3.1). *)
let all_instrs_array b =
  match term_instr b with
  | None -> b.instrs
  | Some ai -> Array.append b.instrs [| ai |]

let indirect_jumps g =
  List.filter_map
    (fun b -> match b.term with T_jump j -> Some (b, j.addr) | _ -> None)
    (blocks g)

(** Number of original instruction words covered by a block (delay copies
    count once at their original address — used for statistics only). *)
let pp_block fmt b =
  let kind =
    match b.kind with
    | Normal -> "block"
    | Delay -> "delay"
    | Call_surrogate -> "surrogate"
    | Entry -> "entry"
    | Exit -> "exit"
  in
  Format.fprintf fmt "%s#%d%s%s" kind b.bid
    (match b.baddr with Some a -> Printf.sprintf "@0x%x" a | None -> "")
    (if b.editable then "" else " (uneditable)")

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type builder = {
  b_blocks : block Eel_util.Dyn.t;
  mutable next_bid : int;
  mutable next_eid : int;
  mutable b_complete : bool;
}

let new_block bld ?(editable = true) ?addr kind instrs =
  let b =
    {
      bid = bld.next_bid;
      kind;
      baddr = addr;
      instrs;
      term = T_none;
      succs = [];
      preds = [];
      editable;
      reachable = false;
      is_data = false;
      edited = false;
    }
  in
  bld.next_bid <- bld.next_bid + 1;
  (Stats.stats ()).blocks_alloc <- (Stats.stats ()).blocks_alloc + 1;
  Eel_util.Dyn.push bld.b_blocks b;
  b

let connect bld ?(editable = true) src dst ekind =
  let e =
    { eid = bld.next_eid; esrc = src; edst = dst; ekind; e_editable = editable; e_edited = false }
  in
  bld.next_eid <- bld.next_eid + 1;
  (Stats.stats ()).edges_alloc <- (Stats.stats ()).edges_alloc + 1;
  src.succs <- src.succs @ [ e ];
  dst.preds <- e :: dst.preds;
  e

(** A stand-in instruction for text-segment words that could not even be
    fetched (e.g. a declared range the section does not back). Classified
    [Invalid], so such bytes degrade to data blocks instead of aborting the
    routine — the paper's [mark_as_impossible] discipline. *)
let unmapped_instr =
  {
    I.word = 0;
    cat = I.Invalid;
    reads = Regset.empty;
    writes = Regset.empty;
    ctl = I.C_none;
    delayed = false;
    width = 0;
    ea = None;
    mnem = "<unmapped>";
  }

(** [build ~mach ~cache ~fetch ~lo ~hi ~entries ~tables ()] constructs the
    normalized CFG of the routine occupying [lo, hi) with the given entry
    addresses. [fetch a] returns the machine word at [a]. [tables] maps
    indirect-jump addresses to previously-discovered dispatch tables (the
    slicing fixpoint: {!Routine} re-builds after {!Slice} finds tables).

    [diag] collects degradation diagnostics: reachable-but-undecodable
    regions, malformed delay slots and DCTI couples are downgraded to
    data-marked blocks with a warning instead of aborting construction.
    [budget] bounds the decode work (anti-non-termination guard). *)
let build ?diag ?budget ~mach ~cache ~fetch ~lo ~hi ~entries ~tables () =
  Eel_obs.Trace.with_span "cfg.build"
    ~args:[ ("lo", Printf.sprintf "0x%x" lo); ("hi", Printf.sprintf "0x%x" hi) ]
  @@ fun () ->
  if lo land 3 <> 0 then err "routine start 0x%x misaligned" lo;
  let n_words = (hi - lo) / 4 in
  Option.iter (fun b -> Diag.spend b (n_words + 1)) budget;
  let bld =
    { b_blocks = Eel_util.Dyn.create (); next_bid = 0; next_eid = 0; b_complete = true }
  in
  let exit_block = new_block bld ~editable:false Exit [||] in
  (Stats.stats ()).cfgs_built <- (Stats.stats ()).cfgs_built + 1;
  let instr_at a =
    if a < lo || a + 4 > hi then None
    else Option.map (Instr_cache.lift cache) (fetch a)
  in
  let insn = Array.init n_words (fun i -> instr_at (lo + (4 * i))) in
  let get a =
    match insn.((a - lo) / 4) with Some i -> i | None -> unmapped_instr
  in
  let in_range a = a >= lo && a < hi && a land 3 = 0 in
  (* ---- leaders ---- *)
  let leaders = Hashtbl.create 64 in
  let add_leader a = if in_range a then Hashtbl.replace leaders a () in
  List.iter add_leader entries;
  add_leader lo;
  List.iter
    (fun (_, tbl) -> Array.iter add_leader tbl.t_targets)
    tables;
  for i = 0 to n_words - 1 do
    let a = lo + (4 * i) in
    match insn.(i) with
    | None -> ()
    | Some ins -> (
        match ins.I.ctl with
        | I.C_branch _ | I.C_call _ ->
            (match I.abs_target ~pc:a ins with
            | Some t -> add_leader t
            | None -> ());
            add_leader (a + 8)
        | I.C_jump_ind _ -> add_leader (a + 8)
        | _ -> ())
  done;
  (* ---- carve Normal blocks ----
     A block runs from a leader to the next leader, a control-transfer
     instruction (whose delay slot it consumes), or a code/data validity
     boundary. *)
  let block_start = Hashtbl.create 64 in
  (* record where each block begins; instr spans recorded as (start, stop,
     term_at option) then materialized *)
  let raw = ref [] in
  let i = ref 0 in
  while !i < n_words do
    let start = lo + (4 * !i) in
    let j = ref !i in
    let stop = ref None in
    let noret = ref false in
    (* a block is data iff its first word is invalid; group consecutive
       same-validity words *)
    let first_valid =
      match insn.(!i) with Some k -> k.I.cat <> I.Invalid | None -> false
    in
    let continue_ = ref true in
    while !continue_ do
      if !j >= n_words then continue_ := false
      else
        let a = lo + (4 * !j) in
        match insn.(!j) with
      | None ->
          (* unmapped word: it groups with data; when the block started with
             real code this is a validity boundary (never at !i = !j, so the
             carving loop always advances) *)
          if first_valid then continue_ := false
          else (
            incr j;
            if !j < n_words && Hashtbl.mem leaders (lo + (4 * !j)) then
              continue_ := false)
      | Some ins ->
          let valid = ins.I.cat <> I.Invalid in
          if valid <> first_valid then continue_ := false
          else if valid && I.is_cti ins && ins.I.delayed then (
            (* control transfer: consume the delay slot and stop *)
            stop := Some a;
            j := !j + 2;
            continue_ := false)
          else if valid && mach.Machine.noreturn ins then (
            (* e.g. the exit system call: the block ends with no
               fall-through successor *)
            noret := true;
            incr j;
            continue_ := false)
          else (
            incr j;
            if !j < n_words && Hashtbl.mem leaders (lo + (4 * !j)) then
              continue_ := false)
    done;
    let j = min !j n_words in
    raw := (start, lo + (4 * j), !stop, not first_valid, !noret) :: !raw;
    i := j
  done;
  let raw = List.rev !raw in
  List.iter
    (fun (start, bend, term_at, is_data, _noret) ->
      let body_end = match term_at with Some a -> a | None -> bend in
      let instrs =
        Array.init ((body_end - start) / 4) (fun k ->
            (start + (4 * k), get (start + (4 * k))))
      in
      let b = new_block bld ~addr:start Normal instrs in
      b.is_data <- is_data;
      (match term_at with
      | None -> ()
      | Some a ->
          let ins = get a in
          b.term <-
            (match ins.I.cat with
            | I.Branch ->
                (match ins.I.ctl with
                | I.C_branch { always = true; _ } -> T_goto { i = ins; addr = a }
                | _ -> T_branch { i = ins; addr = a })
            | I.Call ->
                T_call
                  { i = ins; addr = a; target = Option.get (I.abs_target ~pc:a ins) }
            | I.Call_indirect -> T_icall { i = ins; addr = a }
            | I.Return -> T_return { i = ins; addr = a }
            | I.Jump_indirect | I.Jump ->
                T_jump { i = ins; addr = a; table = List.assoc_opt a tables }
            | _ -> err "unexpected delayed instruction at 0x%x" a));
      Hashtbl.replace block_start start b)
    raw;
  (* ---- edges with delay-slot normalization ---- *)
  let target_block a kind =
    (* edge destination for a direct transfer to original address [a] *)
    if in_range a then
      match Hashtbl.find_opt block_start a with
      | Some b -> `Local b
      | None -> `Extern a (* e.g. branch into a delay slot consumed elsewhere *)
    else `Extern a
  in
  (* Raised while wiring a block's successors when its terminator turns out
     to be malformed (bit flips, data mis-classified as code). The block is
     then downgraded to data with a diagnostic instead of aborting the whole
     CFG — raised before any edge of the block is connected, so degradation
     leaves no dangling edges. *)
  let exception Degrade of { addr : int; what : string } in
  let delay_instr addr =
    match instr_at (addr + 4) with
    | None ->
        raise
          (Degrade
             {
               addr;
               what = Printf.sprintf "control transfer at 0x%x has no delay slot" addr;
             })
    | Some d ->
        if d.I.cat = I.Invalid then
          raise
            (Degrade
               {
                 addr;
                 what =
                   Printf.sprintf "delay slot at 0x%x holds an invalid word 0x%08x"
                     (addr + 4) d.I.word;
               });
        if I.is_cti d && d.I.delayed then
          raise
            (Degrade
               {
                 addr;
                 what =
                   Printf.sprintf
                     "unsupported DCTI couple: control transfer in the delay slot \
                      at 0x%x"
                     (addr + 4);
               });
        d
  in
  let mk_delay bld ?(editable = true) addr d =
    new_block bld ~editable ~addr:(addr + 4) Delay [| (addr + 4, d) |]
  in
  let goto_dst bld src a ~ekind_local ~editable =
    match target_block a ekind_local with
    | `Local b -> ignore (connect bld ~editable src b ekind_local)
    | `Extern a -> ignore (connect bld ~editable:false src exit_block (Ek_xfer a))
  in
  List.iter
    (fun (start, bend, term_at, _is_data, noret) ->
      let b = Hashtbl.find block_start start in
      if b.is_data then () (* data blocks have no successors *)
      else
        try
          match b.term with
        | T_none when noret -> () (* ends in exit: no successors *)
        | T_none ->
            (* falls through to bend *)
            if bend < hi then goto_dst bld b bend ~ekind_local:Ek_fall ~editable:true
            else ignore (connect bld ~editable:false b exit_block (Ek_xfer bend))
        | T_branch { i; addr } -> (
            let d = delay_instr addr in
            let target = Option.get (I.abs_target ~pc:addr i) in
            let never = match i.I.ctl with I.C_branch { never; _ } -> never | _ -> false in
            let annul = I.is_annulled i in
            let fall_addr = addr + 8 in
            if never then (
              (* bn: no taken path *)
              if annul then goto_dst bld b fall_addr ~ekind_local:Ek_fall ~editable:true
              else (
                let df = mk_delay bld addr d in
                ignore (connect bld b df Ek_fall);
                goto_dst bld df fall_addr ~ekind_local:Ek_fall ~editable:true))
            else (
              (* taken path always runs the delay instruction *)
              let dt = mk_delay bld addr d in
              ignore (connect bld b dt Ek_taken);
              goto_dst bld dt target ~ekind_local:Ek_fall ~editable:true;
              (* fall path *)
              if annul then goto_dst bld b fall_addr ~ekind_local:Ek_fall ~editable:true
              else (
                let df = mk_delay bld addr d in
                ignore (connect bld b df Ek_fall);
                goto_dst bld df fall_addr ~ekind_local:Ek_fall ~editable:true)))
        | T_goto { i; addr } ->
            let target = Option.get (I.abs_target ~pc:addr i) in
            if I.is_annulled i then
              goto_dst bld b target ~ekind_local:Ek_taken ~editable:true
            else (
              let d = delay_instr addr in
              let dt = mk_delay bld addr d in
              ignore (connect bld b dt Ek_taken);
              goto_dst bld dt target ~ekind_local:Ek_fall ~editable:true)
        | T_call { addr; _ } | T_icall { addr; _ } ->
            (* delay slot after a call is uneditable (paper §3.3) *)
            let d = delay_instr addr in
            let dslot = mk_delay bld ~editable:false addr d in
            ignore (connect bld ~editable:false b dslot Ek_fall);
            let s = new_block bld ~editable:false Call_surrogate [||] in
            ignore (connect bld ~editable:false dslot s Ek_call);
            let cont = addr + 8 in
            if cont < hi then goto_dst bld s cont ~ekind_local:Ek_cont ~editable:true
            else ignore (connect bld ~editable:false s exit_block (Ek_xfer cont))
        | T_return { addr; _ } ->
            let d = delay_instr addr in
            let dslot = mk_delay bld ~editable:false addr d in
            ignore (connect bld ~editable:false b dslot Ek_fall);
            ignore (connect bld ~editable:false dslot exit_block Ek_exit)
        | T_jump { addr; table; _ } -> (
            let d = delay_instr addr in
            let dslot = mk_delay bld addr d in
            ignore (connect bld b dslot Ek_fall);
            match table with
            | Some tbl ->
                Array.iter
                  (fun tgt ->
                    match target_block tgt Ek_fall with
                    | `Local tb ->
                        ignore
                          (connect bld ~editable:false dslot tb (Ek_computed (Some tgt)))
                    | `Extern a ->
                        ignore
                          (connect bld ~editable:false dslot exit_block (Ek_xfer a)))
                  tbl.t_targets
            | None ->
                bld.b_complete <- false;
                ignore
                  (connect bld ~editable:false dslot exit_block (Ek_computed None)))
        with Degrade { addr; what } ->
          Diag.report diag Diag.Warn ~source:"cfg" ~loc:(Diag.at_addr addr)
            "%s; block at 0x%x degraded to data" what start;
          b.is_data <- true;
          b.term <- T_none)
    raw;
  (* ---- entry and exit blocks ---- *)
  let entry_list =
    List.filter_map
      (fun a ->
        if not (in_range a) then None
        else
          match Hashtbl.find_opt block_start a with
          | None -> None
          | Some b ->
              let e = new_block bld ~editable:false Entry [||] in
              ignore (connect bld e b Ek_fall);
              Some (a, e))
      (List.sort_uniq compare entries)
  in
  let g =
    {
      mach;
      lo;
      hi;
      blocks = bld.b_blocks;
      entries = entry_list;
      exit_block;
      complete = bld.b_complete;
      hidden_candidate = None;
      block_at = Hashtbl.copy block_start;
    }
  in
  (* ---- reachability (explicit worklist: degenerate mutants can produce
     block chains deep enough to overflow the OCaml stack) ---- *)
  let visit b0 =
    let stack = ref [ b0 ] in
    let continue_ = ref true in
    while !continue_ do
      match !stack with
      | [] -> continue_ := false
      | b :: rest ->
          stack := rest;
          if not b.reachable then (
            b.reachable <- true;
            List.iter (fun e -> stack := e.edst :: !stack) b.succs)
    done
  in
  List.iter (fun (_, e) -> visit e) entry_list;
  (* ---- hidden-routine candidate: unreachable valid code after the last
     reachable instruction (paper §3.1 stage 4) ---- *)
  let last_reachable =
    Eel_util.Dyn.fold
      (fun acc b ->
        if b.reachable && b.kind = Normal then
          match b.baddr with
          | Some a -> max acc (a + (4 * Array.length b.instrs)
                               + (match term_instr b with Some _ -> 8 | None -> 0))
          | None -> acc
        else acc)
      lo g.blocks
  in
  let candidate =
    List.filter_map
      (fun (start, _, _, is_data, _) ->
        let b = Hashtbl.find block_start start in
        if (not b.reachable) && (not is_data) && start >= last_reachable then Some start
        else None)
      raw
  in
  (* an INCOMPLETE CFG (unanalyzable indirect jump) gets no hidden-routine
     carving: the unreachable code may be the jump's targets and must stay
     part of this routine, to be emitted conservatively (§3.3) *)
  g.hidden_candidate <-
    (if not g.complete then None
     else match candidate with [] -> None | a :: _ -> Some a);
  g

(** {1 Statistics (experiments E3 and E4)} *)

type stats = {
  s_blocks : int;
  s_normal : int;
  s_delay : int;
  s_surrogate : int;
  s_entry_exit : int;
  s_edges : int;
  s_uneditable_blocks : int;
  s_uneditable_edges : int;
}

let stats_of g =
  let bs = blocks g in
  let es = edges g in
  let count p l = List.length (List.filter p l) in
  {
    s_blocks = List.length bs;
    s_normal = count (fun b -> b.kind = Normal) bs;
    s_delay = count (fun b -> b.kind = Delay) bs;
    s_surrogate = count (fun b -> b.kind = Call_surrogate) bs;
    s_entry_exit = count (fun b -> b.kind = Entry || b.kind = Exit) bs;
    s_edges = List.length es;
    s_uneditable_blocks = count (fun b -> not b.editable) bs;
    s_uneditable_edges = count (fun e -> not e.e_editable) es;
  }
