(** Backward slicing and indirect-jump analysis (paper §3.3, Fig. 4).

    "Most indirect jumps occur in case statements, in which they jump through
    a dispatch table of addresses. EEL finds this type of table — in an
    architecture and compiler-independent manner — by computing a backward
    slice from the jump instruction's registers. [...] After finding the
    table's address, EEL builds a precise CFG for the indirect jump and
    subsequently modifies the table to point to edited locations. The same
    slice also can find the address used in the common idiom of an indirect
    jump to a literal value. If a slice fails [...] EEL marks the CFG as
    incomplete and inserts code to translate the jump's target address at
    run time."

    The slice walks backward over the (possibly still incomplete) CFG,
    constant-folding computations through the machine description's
    {!Eel_arch.Machine.t.eval_compute} hook. Loads are resolved only when
    their {e address} slices to a constant (the dispatch-table case);
    floating-point and other untraceable definitions make the jump
    unanalyzable, exactly as in the paper's Fig. 4. *)

open Eel_arch
module C = Cfg

type value =
  | Const of int  (** the register holds this constant on every path *)
  | Table_load of { base : int; index_known : bool }
      (** defined by a load whose address is [base + unknown index] *)
  | Unknown

(** Result of analyzing one indirect jump. *)
type jump_resolution =
  | Literal of int  (** jump to a statically-known address *)
  | Dispatch of C.table  (** jump through a dispatch table *)
  | Unanalyzable

let max_depth = 64

let max_table_entries = 4096

(* [const_before g b idx r] — the constant value of register [r] immediately
   before position [idx] of block [b] (positions index Cfg.all_instrs), or
   None. Joins over predecessors must agree. *)
let rec const_before (g : C.t) visited depth (b : C.block) idx r =
  if r = -1 then None
  else if Regset.mem r g.C.mach.Machine.zero_regs then Some 0
  else if depth > max_depth then None
  else
    let instrs = C.all_instrs_array b in
    let rec scan k =
      if k < 0 then at_block_entry g visited depth b r
      else
        let _, (i : Instr.t) = instrs.(k) in
        if Regset.mem r (Machine.real_writes g.C.mach i) then
          (* found the defining instruction: fold it *)
          let read reg = const_before g visited (depth + 1) b k reg in
          match g.C.mach.Machine.eval_compute i ~read with
          | Some (rd, v) when rd = r -> Some v
          | _ -> None
        else scan (k - 1)
    in
    scan (min (idx - 1) (Array.length instrs - 1))

and at_block_entry g visited depth (b : C.block) r =
  if Hashtbl.mem visited (b.C.bid, r) then None
  else (
    Hashtbl.add visited (b.C.bid, r) ();
    match b.C.preds with
    | [] -> None
    | preds ->
        (* a call surrogate clobbers volatile registers with unknown values *)
        let vals =
          List.map
            (fun (e : C.edge) ->
              let p = e.C.esrc in
              if p.C.kind = C.Call_surrogate && Regset.mem r Dataflow.volatile_regs
              then None
              else
                const_before g visited (depth + 1) p
                  (Array.length (C.all_instrs_array p))
                  r)
            preds
        in
        match vals with
        | Some v :: rest when List.for_all (( = ) (Some v)) rest -> Some v
        | _ -> None)

(* Find the instruction (block, position) that defines [r] before position
   [idx] of [b], following straight-line predecessors. Returns the defining
   instruction when it is unique along all paths. *)
let rec def_before (g : C.t) depth (b : C.block) idx r :
    (C.block * int * Instr.t) option =
  if depth > max_depth then None
  else
    let instrs = C.all_instrs_array b in
    let rec scan k =
      if k < 0 then
        match b.C.preds with
        | [ e ] ->
            let p = e.C.esrc in
            def_before g (depth + 1) p (Array.length (C.all_instrs_array p)) r
        | _ -> None
      else
        let _, (i : Instr.t) = instrs.(k) in
        if Regset.mem r (Machine.real_writes g.C.mach i) then Some (b, k, i)
        else scan (k - 1)
    in
    scan (min (idx - 1) (Array.length instrs - 1))

(** [value_of_operand g b idx (rs1, op2)] — constant effective address
    [rs1 + op2], if it folds. *)
let const_operand g b idx rs1 op2 =
  let visited = Hashtbl.create 16 in
  let v1 = const_before g visited 0 b idx rs1 in
  let v2 =
    match op2 with
    | Instr.O_imm i -> Some i
    | Instr.O_reg r ->
        let visited = Hashtbl.create 16 in
        const_before g visited 0 b idx r
  in
  match (v1, v2) with
  | Some a, Some b -> Some (Eel_util.Word.add a b)
  | _ -> None

(** Read a dispatch table's targets: consecutive words at [base] that are
    plausible code addresses within the routine, capped at [bound] entries
    when the index computation bounds the table's extent. *)
let read_table ~fetch ~(g : C.t) ?bound base =
  let cap = match bound with Some b -> min b max_table_entries | None -> max_table_entries in
  let targets = ref [] in
  let continue_ = ref true in
  let k = ref 0 in
  while !continue_ && !k < cap do
    match fetch (base + (4 * !k)) with
    | Some w when w land 3 = 0 && w >= g.C.lo && w < g.C.hi ->
        targets := w :: !targets;
        incr k
    | _ -> continue_ := false
  done;
  match !targets with
  | [] -> None
  | l -> Some { C.t_addr = base; t_targets = Array.of_list (List.rev l) }

(* Bound the number of table entries from the index register's defining
   computation: the [index << log2(word) ] of [index & mask] shape bounds
   the table to mask+1 entries. This is the extra precision that keeps the
   table scan from running into adjacent data. *)
let infer_bound (g : C.t) db dk idx_reg =
  match def_before g 0 db dk idx_reg with
  | Some (b2, k2, d1) -> (
      match g.C.mach.Machine.shift_left d1 with
      | Some (src, sh) when 1 lsl sh = 4 -> (
          match def_before g 0 b2 k2 src with
          | Some (_, _, d2) -> (
              match g.C.mach.Machine.mask_bound d2 with
              | Some (_, m) when m >= 0 && m < max_table_entries -> Some (m + 1)
              | _ -> None)
          | None -> None)
      | _ -> (
          (* unscaled: a direct mask on the index register *)
          match g.C.mach.Machine.mask_bound d1 with
          | Some (_, m) when m >= 0 && m < max_table_entries -> Some ((m / 4) + 1)
          | _ -> None))
  | None -> None

(** Analyze one indirect jump terminator (paper §3.3). [b] must have a
    [T_jump] terminator. *)
let resolve_jump ~fetch (g : C.t) (b : C.block) =
  match b.C.term with
  | C.T_jump { i; _ } | C.T_icall { i; _ } -> (
      let rs1, op2 =
        match i.Instr.ctl with
        | Instr.C_jump_ind { rs1; op2; _ } -> (rs1, op2)
        | _ -> assert false
      in
      let term_idx = Array.length (C.all_instrs_array b) - 1 in
      (* Case 1: the whole target folds to a literal. *)
      match const_operand g b term_idx rs1 op2 with
      | Some target -> Literal target
      | None -> (
          (* Case 2: target register defined by a load from
             [table_base + index]. *)
          let jump_reg =
            match op2 with
            | Instr.O_imm 0 -> Some rs1
            | Instr.O_imm _ -> None (* reg + imm with unknown reg *)
            | Instr.O_reg r ->
                (* one of the two registers must be zero for the idiom *)
                if r = 0 then Some rs1 else if rs1 = 0 then Some r else None
          in
          match jump_reg with
          | None -> Unanalyzable
          | Some jr -> (
              match def_before g 0 b (term_idx + 1) jr with
              | Some (db, dk, di) when di.Instr.cat = Instr.Load -> (
                  match di.Instr.ea with
                  | None -> Unanalyzable
                  | Some (ars1, aop2) -> (
                      (* the table base is whichever address component is
                         constant; the other is the scaled case index *)
                      let visited () = Hashtbl.create 16 in
                      let c1 = const_before g (visited ()) 0 db dk ars1 in
                      let c2 =
                        match aop2 with
                        | Instr.O_imm v -> Some v
                        | Instr.O_reg r2 -> const_before g (visited ()) 0 db dk r2
                      in
                      let base, idx_reg =
                        match (c1, c2) with
                        | Some a, Some b -> (Some (Eel_util.Word.add a b), None)
                        | Some a, None ->
                            ( Some a,
                              match aop2 with
                              | Instr.O_reg r -> Some r
                              | _ -> None )
                        | None, Some b -> (Some b, Some ars1)
                        | None, None -> (None, None)
                      in
                      match base with
                      | None -> Unanalyzable
                      | Some base -> (
                          let bound =
                            match idx_reg with
                            | Some r -> infer_bound g db dk r
                            | None -> Some 1
                          in
                          match read_table ~fetch ~g ?bound base with
                          | Some tbl -> Dispatch tbl
                          | None -> Unanalyzable)))
              | _ -> Unanalyzable)))
  | _ ->
      invalid_arg
        "Slice.resolve_jump: block does not end in an indirect transfer"

(** Advisory resolution for call-graph construction: when an indirect
    transfer's target register was loaded from a {e statically-known}
    location, return that cell's initial contents. This is unsound for
    editing (the cell may be overwritten at run time — which is why
    {!resolve_jump} does not do it) but is the conventional approximation
    for an advisory interprocedural call graph. *)
let loaded_cell ~fetch (g : C.t) (b : C.block) =
  match b.C.term with
  | C.T_jump { i; _ } | C.T_icall { i; _ } -> (
      match i.Instr.ctl with
      | Instr.C_jump_ind { rs1; op2; _ } -> (
          let term_idx = Array.length (C.all_instrs_array b) - 1 in
          let jump_reg =
            match op2 with
            | Instr.O_imm 0 -> Some rs1
            | Instr.O_reg r when r = 0 -> Some rs1
            | Instr.O_reg r when rs1 = 0 -> Some r
            | _ -> None
          in
          match jump_reg with
          | None -> None
          | Some jr -> (
              match def_before g 0 b (term_idx + 1) jr with
              | Some (db, dk, di) when di.Instr.cat = Instr.Load -> (
                  match di.Instr.ea with
                  | Some (ars1, aop2) -> (
                      match const_operand g db dk ars1 aop2 with
                      | Some addr -> fetch addr
                      | None -> None)
                  | None -> None)
              | _ -> None))
      | _ -> None)
  | _ -> None

(** Analyze every indirect jump of a CFG; returns discovered tables (for the
    CFG rebuild fixpoint) and the number of unanalyzable jumps. A [Literal]
    resolution is represented as a single-entry pseudo-table with
    [t_addr = -1] (nothing to rewrite in the image). *)
let resolve_all ~fetch (g : C.t) =
  Eel_obs.Trace.with_span "cfg.slice" @@ fun () ->
  let tables = ref [] in
  let unanalyzable = ref 0 in
  List.iter
    (fun ((b : C.block), addr) ->
      match b.C.term with
      | C.T_jump { table = Some _; _ } -> () (* already resolved *)
      | _ -> (
          match resolve_jump ~fetch g b with
          | Literal t ->
              tables := (addr, { C.t_addr = -1; t_targets = [| t |] }) :: !tables
          | Dispatch tbl -> tables := (addr, tbl) :: !tables
          | Unanalyzable -> incr unanalyzable))
    (C.indirect_jumps g);
  (!tables, !unanalyzable)
