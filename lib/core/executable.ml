(** Executables and routines (paper §3.1, §3.2) — EEL's top-level
    abstraction.

    "A tool opens an executable, examines and modifies its contents, and
    writes an edited version."

    The heart of this module is {e symbol-table refinement}: executable
    symbol tables are "typically incomplete or misleading", so EEL analyzes
    the program to find data tables, hidden routines, and multiple entry
    points (§3.1):

    + discard duplicate, temporary and debugging labels, labels not on an
      instruction boundary, and labels that are branch targets from the
      preceding routine (internal labels);
    + for stripped executables, seed routines with the program entry point,
      the first text address, and the targets of direct calls;
    + make the destinations of calls and out-of-routine jumps additional
      entry points of the routines containing them;
    + during CFG construction, classify reachable-but-invalid instructions
      as data, and unreachable trailing code as {e hidden routines}, which
      are queued on {!hidden_routines} for the tool to process (and whose
      analysis may add entry points to existing routines).

    Editing output model: the original sections are kept at their original
    addresses (so every address constant into data — including data tables
    in the text segment — stays valid), and edited code is placed in new
    high-address sections. Dispatch tables are rewritten in place to point
    at edited code; indirect calls and unanalyzable indirect jumps go
    through a run-time translation table mapping original instruction
    addresses to edited ones. [edited_addr] exposes the mapping, as in
    paper Fig. 1. *)

open Eel_arch
module Sef = Eel_sef.Sef
module C = Cfg
module Diag = Eel_robust.Diag

(** Historical alias: executable-level failures are now {!Diag.Error} values
    carrying {!Diag.Exe_error}; kept so old match arms keep compiling. *)
exception Exe_error of string

let err fmt = Diag.exe_error fmt

type routine = {
  r_name : string;
  r_lo : int;
  mutable r_hi : int;
  mutable r_entries : int list;  (** entry addresses; [r_lo] is always one *)
  mutable r_cfg : C.t option;
  mutable r_editor : Edit.editor option;
  mutable r_edited : Edit.edited option;
  r_hidden : bool;  (** discovered by analysis rather than the symbol table *)
}

type t = {
  exe : Sef.t;
  mach : Machine.t;
  cache : Instr_cache.t;
  text_lo : int;
  text_hi : int;
  mutable routines : routine list;  (** sorted by [r_lo] *)
  mutable hidden : routine list;  (** discovery queue (paper Fig. 1) *)
  (* new-region allocation *)
  xlat_base : int;
  data_base : int;
  mutable data_cursor : int;
  code_base : int;
  mutable code_cursor : int;
  mutable added_data : (int * bytes) list;
  mutable added_routines : (string * int * int array) list;
  (* editing policy knobs (ablations) *)
  mutable fold_delay : bool;
  mutable max_span : int option;
  mutable slicing : bool;  (** dispatch-table slicing enabled *)
  (* finalized layout *)
  mutable addr_map : (int, int) Hashtbl.t option;
  mutable placed : (routine * Edit.edited * int) list;
  mutable new_text_base : int;
  mutable new_text_size : int;
  (* robustness plumbing *)
  diag : Diag.sink option;  (** degradation diagnostics accumulate here *)
  work : Diag.budget;  (** decode/analysis work bound (anti-non-termination) *)
}

let data_region_size = 4 * 1024 * 1024

(** {1 Opening} *)

let text_section exe =
  match Sef.text_sections exe with
  | [ s ] -> s
  | [] -> err "executable has no text section"
  | _ -> err "multiple text sections are not supported"

let read_contents_inner ?(cache_instrs = true) ?diag ?budget (mach : Machine.t)
    (exe : Sef.t) =
  let text = text_section exe in
  let text_lo = text.Sef.vaddr and text_hi = text.Sef.vaddr + text.Sef.size in
  if text_lo land 3 <> 0 then
    Diag.fail
      (Diag.Sef_error
         {
           what = Printf.sprintf "text section base 0x%x is misaligned" text_lo;
           loc = Diag.at_addr text_lo;
         });
  let work =
    match budget with
    | Some b -> b
    | None -> Diag.budget ~stage:"analysis" Diag.default_budget_units
  in
  let high = Sef.high_addr exe in
  let align64k a = (a + 0xFFFF) land lnot 0xFFFF in
  let xlat_base = align64k high in
  let data_base = align64k (xlat_base + (text_hi - text_lo)) in
  let code_base = data_base + data_region_size in
  let cache = Instr_cache.create ~enabled:cache_instrs mach in
  let t =
    {
      exe;
      mach;
      cache;
      text_lo;
      text_hi;
      routines = [];
      hidden = [];
      xlat_base;
      data_base;
      data_cursor = data_base;
      code_base;
      code_cursor = code_base;
      added_data = [];
      added_routines = [];
      fold_delay = true;
      max_span = None;
      slicing = true;
      addr_map = None;
      placed = [];
      new_text_base = 0;
      new_text_size = 0;
      diag;
      work;
    }
  in
  Diag.spend work (((text_hi - text_lo) / 4) + 1);
  (* ---- one linear scan of the text segment for control transfers ---- *)
  let call_targets = Hashtbl.create 64 in
  let branch_pairs = ref [] in
  let a = ref text_lo in
  while !a < text_hi do
    (match Sef.fetch32 exe !a with
    | None -> ()
    | Some w -> (
        let i = Instr_cache.lift cache w in
        match (i.Instr.cat, Instr.abs_target ~pc:!a i) with
        | Instr.Call, Some tgt ->
            if tgt >= text_lo && tgt < text_hi then
              Hashtbl.replace call_targets tgt ()
        | Instr.Branch, Some tgt ->
            if tgt >= text_lo && tgt < text_hi then
              branch_pairs := (!a, tgt) :: !branch_pairs
        | _ -> ()));
    a := !a + 4
  done;
  let branch_targets = Hashtbl.create 64 in
  List.iter (fun (_, tgt) -> Hashtbl.replace branch_targets tgt ()) !branch_pairs;
  (* ---- stage 1: filter the symbol table ---- *)
  let text_syms =
    List.filter
      (fun (s : Sef.symbol) -> s.Sef.value >= text_lo && s.Sef.value < text_hi)
      exe.Sef.symbols
  in
  let stage1 =
    text_syms
    |> List.filter (fun (s : Sef.symbol) ->
           (* temporary and debugging labels *)
           s.Sef.kind <> Sef.Debug && s.Sef.kind <> Sef.Label
           (* not aligned on an instruction boundary *)
           && s.Sef.value land 3 = 0)
    |> List.sort (fun (a : Sef.symbol) b -> compare a.Sef.value b.Sef.value)
  in
  (* drop duplicates (same address) *)
  let stage1 =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (s : Sef.symbol) ->
        if Hashtbl.mem seen s.Sef.value then false
        else (
          Hashtbl.add seen s.Sef.value ();
          true))
      stage1
  in
  (* drop labels branched to from the preceding routine and never called:
     probably internal labels *)
  let rec drop_internal acc prev_start = function
    | [] -> List.rev acc
    | (s : Sef.symbol) :: rest ->
        let internal =
          Hashtbl.mem branch_targets s.Sef.value
          && (not (Hashtbl.mem call_targets s.Sef.value))
          && List.exists
               (fun (src, tgt) ->
                 tgt = s.Sef.value && src >= prev_start && src < s.Sef.value)
               !branch_pairs
        in
        if internal then drop_internal acc prev_start rest
        else drop_internal (s :: acc) s.Sef.value rest
  in
  let stage1 = drop_internal [] text_lo stage1 in
  (* ---- stage 2: stripped executables ---- *)
  let starts =
    if stage1 <> [] then
      List.map (fun (s : Sef.symbol) -> (s.Sef.value, s.Sef.sym_name)) stage1
    else (
      (* "the initial set of routines contains only the program's entry
         point and the first address in the text segment. In this case, EEL
         makes an extra pass [...] to find direct subroutine calls." *)
      let seeds = ref [ (text_lo, "__text_start") ] in
      if exe.Sef.entry >= text_lo && exe.Sef.entry < text_hi then
        seeds := (exe.Sef.entry, "__start") :: !seeds;
      Hashtbl.iter
        (fun tgt () -> seeds := (tgt, Printf.sprintf "f_0x%x" tgt) :: !seeds)
        call_targets;
      List.sort_uniq compare !seeds)
  in
  (* ensure the text base is covered *)
  let starts =
    if List.mem_assoc text_lo starts then starts
    else (text_lo, "__text_start") :: starts
  in
  let starts = List.sort (fun (a, _) (b, _) -> compare a b) starts in
  (* dedupe by address, keep first name *)
  let rec dedupe = function
    | (a1, n1) :: (a2, _) :: rest when a1 = a2 -> dedupe ((a1, n1) :: rest)
    | x :: rest -> x :: dedupe rest
    | [] -> []
  in
  let starts = dedupe starts in
  let rec mk_routines = function
    | [] -> []
    | (lo, name) :: rest ->
        let hi = match rest with (nlo, _) :: _ -> nlo | [] -> text_hi in
        {
          r_name = name;
          r_lo = lo;
          r_hi = hi;
          r_entries = [ lo ];
          r_cfg = None;
          r_editor = None;
          r_edited = None;
          r_hidden = false;
        }
        :: mk_routines rest
  in
  t.routines <- mk_routines starts;
  (* ---- stage 3: multiple entry points ----
     "EEL then examines instructions to find jumps out of a routine or
     calls on routines not in this initial set. The destinations of these
     control transfers become entry points to the routines that contain
     them." *)
  let find_routine addr =
    List.find_opt (fun r -> addr >= r.r_lo && addr < r.r_hi) t.routines
  in
  let add_entry addr =
    match find_routine addr with
    | Some r when addr <> r.r_lo ->
        if not (List.mem addr r.r_entries) then r.r_entries <- addr :: r.r_entries
    | _ -> ()
  in
  Hashtbl.iter (fun tgt () -> add_entry tgt) call_targets;
  List.iter
    (fun (src, tgt) ->
      match (find_routine src, find_routine tgt) with
      | Some rs, Some rt when rs != rt -> add_entry tgt
      | _ -> ())
    !branch_pairs;
  t

(** [read_contents ?cache_instrs ?diag ?budget mach exe] opens an executable
    and performs symbol-table refinement stages 1–3. Stage 4 happens lazily
    as CFGs are built. [diag] receives degradation warnings from the whole
    pipeline; [budget] bounds total analysis work (default
    {!Diag.default_budget_units}). *)
let read_contents ?cache_instrs ?diag ?budget (mach : Machine.t) (exe : Sef.t) =
  Eel_obs.Trace.with_span "exe.open" (fun () ->
      read_contents_inner ?cache_instrs ?diag ?budget mach exe)

(** [open_exe ?strict ?diag ?cache_instrs ?budget mach exe] — the
    Result-returning front door. Re-validates the in-memory image (callers
    may have constructed [exe] directly rather than via {!Sef.load}), then
    runs symbol-table refinement. [Error _] carries the structured failure;
    diagnostics, if a sink was supplied, describe everything that was
    degraded along the way. In [strict] mode the sink promotes warnings to
    errors and validation failures reject the executable. *)
let open_exe ?(strict = false) ?diag ?cache_instrs ?budget (mach : Machine.t)
    (exe : Sef.t) : (t, Diag.error) result =
  Diag.guard (fun () ->
      let sink = match diag with Some s -> Some s | None when strict -> Some (Diag.create ~strict ()) | None -> None in
      Sef.validate_exn ?diag:sink exe;
      (match sink with
      | Some s when Diag.has_errors s ->
          Diag.fail
            (Diag.Sef_error
               {
                 what =
                   Printf.sprintf "input rejected: %d validation error(s)"
                     (Diag.errors s);
                 loc = Diag.no_loc;
               })
      | _ -> ());
      read_contents ?cache_instrs ?diag:sink ?budget mach exe)

let routines t = t.routines

let hidden_routines t = t.hidden

(** {1 Routine-granular analysis artifacts (the serve subsystem's cache)}

    Everything CFG construction and the slicing fixpoint derive from a
    routine is a function of the routine's text bytes, its entry set and
    its placement — so it can be cached content-addressed and reused across
    invocations, and a patched executable only re-analyzes the routines
    whose bytes actually changed. {!routine_digest} is the key;
    {!set_analysis_cache} installs an ambient lookup/store pair that
    {!build_cfg} consults (lib/serve provides one backed by its
    content-addressed store; when none is installed the pipeline behaves
    exactly as before). *)

(** Bump when anything that feeds {!routine_digest} or the cached artifact
    encoding changes shape: stale artifacts must miss, not corrupt. *)
let analysis_version = "eel.rf.v1"

(** [routine_digest t r] — content digest (hex) of everything the routine's
    analysis depends on: the artifact-format version, the machine, the
    slicing policy, the routine's placement [r_lo] (dispatch-table targets
    are absolute addresses), extent, sorted relative entry offsets, and the
    routine's text bytes. Table {e contents} live in data sections outside
    the digest; cached tables are therefore re-validated against memory
    before use (see {!build_cfg}). *)
let routine_digest t (r : routine) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf analysis_version;
  Buffer.add_char buf '\000';
  Buffer.add_string buf t.mach.Machine.name;
  Buffer.add_char buf (if t.slicing then '\001' else '\000');
  Eel_util.Bytebuf.w32 buf r.r_lo;
  Eel_util.Bytebuf.w32 buf (r.r_hi - r.r_lo);
  List.iter
    (fun e -> Eel_util.Bytebuf.w32 buf (e - r.r_lo))
    (List.sort_uniq compare r.r_entries);
  let text = text_section t.exe in
  Buffer.add_string buf
    (Bytes.sub_string text.Sef.contents (r.r_lo - text.Sef.vaddr)
       (r.r_hi - r.r_lo));
  Digest.to_hex (Digest.string (Buffer.contents buf))

type analysis_hooks = {
  ac_lookup : string -> (int * C.table) list option;
      (** digest -> previously-converged dispatch tables, if cached *)
  ac_store : string -> (int * C.table) list -> unit;
      (** record a converged table set under the routine's digest *)
}

(* Ambient, process-wide: set once before any fan-out (worker domains read
   it, never write), so tools that open executables internally pick the
   cache up without plumbing. Atomic so the install is a clean publish
   across domains. *)
let analysis_cache : analysis_hooks option Atomic.t = Atomic.make None

(** [set_analysis_cache h] installs (or, with [None], removes) the ambient
    per-routine analysis cache. Call before spawning pool workers. *)
let set_analysis_cache h = Atomic.set analysis_cache h

let start_address t = t.exe.Sef.entry

let find_routine t addr =
  List.find_opt (fun r -> addr >= r.r_lo && addr < r.r_hi) t.routines

let routine_named t name = List.find_opt (fun r -> r.r_name = name) t.routines

let fetch t addr = Sef.fetch32 t.exe addr

(** {1 CFG construction with the slicing fixpoint (stage 4)} *)

(* A cached table is trusted only if the memory it points at still decodes
   to the recorded targets: the routine digest covers the routine's text,
   not the data section holding the table, so a patched dispatch table must
   demote the hit to a full re-analysis. Literal tables (t_addr = -1) carry
   their one target in the slice itself, which the digest does cover. *)
let table_still_valid ~fetch (_jump_addr, (tbl : C.table)) =
  tbl.C.t_addr < 0
  ||
  let ok = ref true in
  Array.iteri
    (fun k tgt -> if fetch (tbl.C.t_addr + (4 * k)) <> Some tgt then ok := false)
    tbl.C.t_targets;
  !ok

let rec build_cfg t (r : routine) =
  let fetch = fetch t in
  let build tables =
    C.build ?diag:t.diag ~budget:t.work ~mach:t.mach ~cache:t.cache ~fetch
      ~lo:r.r_lo ~hi:r.r_hi ~entries:r.r_entries ~tables ()
  in
  let g =
    if not t.slicing then build []
    else
      let hooks = Atomic.get analysis_cache in
      let digest =
        match hooks with Some _ -> Some (routine_digest t r) | None -> None
      in
      let seeded =
        match (hooks, digest) with
        | Some h, Some d -> (
            match h.ac_lookup d with
            | Some tables when List.for_all (table_still_valid ~fetch) tables ->
                Some tables
            | _ -> None)
        | _ -> None
      in
      match seeded with
      | Some tables ->
          (* the cached set is the converged fixpoint for these exact bytes
             (and the tables re-validated against memory), so one build
             reproduces the from-scratch graph with no slicing at all *)
          build tables
      | None ->
          let rec fixpoint tables iter =
            let g = build tables in
            let new_tables, _unan = Slice.resolve_all ~fetch g in
            let fresh =
              List.filter (fun (a, _) -> not (List.mem_assoc a tables)) new_tables
            in
            if fresh = [] then (
              (match (hooks, digest) with
              | Some h, Some d ->
                  h.ac_store d
                    (List.sort (fun (a, _) (b, _) -> compare a b) tables)
              | _ -> ());
              g)
            else if iter > 4 then g
            else fixpoint (fresh @ tables) (iter + 1)
          in
          fixpoint [] 0
  in
  r.r_cfg <- Some g;
  (* ---- stage 4: hidden routines ---- *)
  (match g.C.hidden_candidate with
  | Some cand when cand > r.r_lo && cand < r.r_hi ->
      let h =
        {
          r_name = Printf.sprintf "hidden_0x%x" cand;
          r_lo = cand;
          r_hi = r.r_hi;
          r_entries = [ cand ];
          r_cfg = None;
          r_editor = None;
          r_edited = None;
          r_hidden = true;
        }
      in
      r.r_hi <- cand;
      (* rebuild this routine's CFG with the tightened extent *)
      r.r_cfg <- None;
      t.hidden <- t.hidden @ [ h ];
      (* "recognizing a new routine may add entry points to existing
         routines": scan the carved region for out-bound transfers *)
      let a = ref cand in
      while !a < h.r_hi do
        (match fetch !a with
        | None -> ()
        | Some w -> (
            let i = Instr_cache.lift t.cache w in
            match (i.Instr.cat, Instr.abs_target ~pc:!a i) with
            | (Instr.Call | Instr.Branch), Some tgt -> (
                match find_routine t tgt with
                | Some rt
                  when tgt <> rt.r_lo
                       && (not (List.mem tgt rt.r_entries))
                       && not (tgt >= h.r_lo && tgt < h.r_hi) ->
                    rt.r_entries <- tgt :: rt.r_entries;
                    (* entry set changed: rebuild lazily — but never
                       invalidate a CFG a tool is already editing *)
                    if rt.r_editor = None && rt.r_edited = None then
                      rt.r_cfg <- None
                | _ -> ())
            | _ -> ()));
        a := !a + 4
      done;
      build_cfg t r
  | _ -> ())

(** [control_flow_graph t r] — the routine's CFG, built on first use. *)
let control_flow_graph t r =
  match r.r_cfg with
  | Some g -> g
  | None ->
      Eel_obs.Trace.with_span "cfg.routine"
        ~args:[ ("routine", r.r_name) ]
        (fun () -> build_cfg t r);
      Option.get r.r_cfg

(** [take_hidden t] pops one discovered hidden routine and registers it as a
    normal routine (the paper Fig. 1 main loop). *)
let take_hidden t =
  match t.hidden with
  | [] -> None
  | h :: rest ->
      t.hidden <- rest;
      t.routines <-
        List.sort (fun a b -> compare a.r_lo b.r_lo) (h :: t.routines);
      Some h

(** A "routine" that analysis revealed to be pure data (e.g. a table in the
    text segment carrying a function-looking symbol). *)
let is_data_table t r =
  let g = control_flow_graph t r in
  List.for_all
    (fun (b : C.block) -> b.C.kind <> C.Normal || b.C.is_data || not b.C.reachable)
    (C.blocks g)
  && List.exists (fun (b : C.block) -> b.C.is_data) (C.blocks g)

(** {1 Editing} *)

let editor t r =
  match r.r_editor with
  | Some e -> e
  | None ->
      let g = control_flow_graph t r in
      let e =
        Edit.create ?max_span:t.max_span ~fold_delay:t.fold_delay
          ~xlat_delta:(t.xlat_base - t.text_lo) g
      in
      r.r_editor <- Some e;
      e

(** [produce_edited_routine t r] lays out the routine's accumulated edits
    (paper §3.3.1). Safe to call with no edits: the routine is re-emitted
    verbatim with adjusted displacements. *)
let produce_edited_routine t r =
  let e = editor t r in
  r.r_edited <- Some (Edit.produce e)

(** [delete_control_flow_graph r] — drop analysis state (paper Fig. 1 frees
    CFGs after each routine to bound memory). The edited form is kept. *)
let delete_control_flow_graph (r : routine) =
  r.r_cfg <- None;
  r.r_editor <- None

(** {1 Adding data and routines} *)

(** [reserve_data t ?init size] allocates [size] bytes in the added-data
    region (zero-initialized unless [init] is given) and returns the
    address — known immediately, so tools can bake it into snippets
    (paper Fig. 2's [COUNTER_START]). *)
let reserve_data t ?init size =
  let addr = (t.data_cursor + 7) land lnot 7 in
  if addr + size > t.data_base + data_region_size then
    err "added-data region exhausted";
  let bytes =
    match init with
    | Some b ->
        if Bytes.length b <> size then err "reserve_data: init size mismatch";
        b
    | None -> Bytes.make size '\000'
  in
  t.data_cursor <- addr + size;
  t.added_data <- (addr, bytes) :: t.added_data;
  addr

(** [add_routine t ~name body] assembles [body] (snippet syntax: labels,
    [$params], no directives) and places it at a fresh address, returned
    immediately so snippets can call it. This is how Active Memory "adds
    many routines (another program) to an executable" (§5). *)
let add_routine t ~name ?(params = []) body =
  match t.mach.Machine.asm ~params body with
  | Error m -> err "add_routine %s: %s" name m
  | Ok tpl ->
      if tpl.Template.vuses <> [] then
        err "add_routine %s: virtual registers not allowed" name;
      let addr = (t.code_cursor + 15) land lnot 15 in
      let words = Array.copy tpl.Template.words in
      (* relocs: pc-relative transfers to absolute targets *)
      List.iter
        (fun (rl : Template.reloc) ->
          let pc = addr + (4 * rl.Template.index) in
          let i = t.mach.Machine.lift words.(rl.Template.index) in
          match t.mach.Machine.retarget i ~disp:(rl.Template.target - pc) with
          | Some w -> words.(rl.Template.index) <- w
          | None -> err "add_routine %s: reloc out of range" name)
        tpl.Template.relocs;
      t.code_cursor <- addr + (4 * Array.length words);
      t.added_routines <- (name, addr, words) :: t.added_routines;
      addr

(** {1 Finalization and output} *)

(** Lay out every routine and build the original->edited address map.
    Routines without accumulated edits are re-emitted verbatim. *)
let finalize t =
  match t.addr_map with
  | Some _ -> ()
  | None ->
      Eel_obs.Trace.with_span "edit.finalize" @@ fun () ->
      let work = t.routines @ t.hidden in
      (* producing may discover more hidden routines; iterate to a fixpoint.
         The iteration count is bounded: each round either produces every
         known routine or was triggered by a freshly-discovered hidden
         routine, and hidden discovery strictly shrinks extents — but a
         hostile input must not turn an invariant bug into a hang, so cap
         the rounds and fail loudly instead. *)
      let rec produce_all iter =
        if iter > 1024 then
          Diag.invariant_error "finalize: produce fixpoint did not converge";
        List.iter
          (fun r ->
            if r.r_edited = None then
              if is_data_table t r then () else produce_edited_routine t r)
          (t.routines @ t.hidden);
        if List.exists (fun r -> r.r_edited = None && not (is_data_table t r))
             (t.routines @ t.hidden)
        then produce_all (iter + 1)
      in
      ignore work;
      produce_all 0;
      (* assign bases *)
      let text_base = (t.code_cursor + 0xFFF) land lnot 0xFFF in
      let cursor = ref text_base in
      let placed =
        List.filter_map
          (fun r ->
            match r.r_edited with
            | None -> None
            | Some ed ->
                let base = !cursor in
                cursor := base + Edit.size_bytes ed;
                Some (r, ed, base))
          (List.sort (fun a b -> compare a.r_lo b.r_lo) (t.routines @ t.hidden))
      in
      (* global address map *)
      let map = Hashtbl.create 4096 in
      List.iter
        (fun (_, (ed : Edit.edited), base) ->
          Hashtbl.iter
            (fun orig idx -> Hashtbl.replace map orig (base + (4 * idx)))
            ed.Edit.ed_origin;
          (* entry stubs override plain block positions *)
          List.iter
            (fun (orig, idx) -> Hashtbl.replace map orig (base + (4 * idx)))
            ed.Edit.ed_entries)
        placed;
      t.addr_map <- Some map;
      (* stash placement for the writer *)
      t.placed <- placed;
      t.new_text_base <- text_base;
      t.new_text_size <- !cursor - text_base;
      (* ---- post-edit invariant verification (runs before any output can
         be produced: [to_edited_sef] and [edited_addr] both come through
         here). A violation is an EEL bug or a hostile input that slipped
         past degradation — either way, fail with a typed error rather than
         emit a silently-corrupt image. ---- *)
      List.iter
        (fun ((r : routine), (ed : Edit.edited), base) ->
          Edit.verify_exn ~name:r.r_name ed;
          (* the translation map must be total and consistent over the
             routine's edited entry points *)
          List.iter
            (fun (orig, idx) ->
              match Hashtbl.find_opt map orig with
              | None ->
                  Diag.invariant_error
                    "routine %s: entry 0x%x missing from the address map"
                    r.r_name orig
              | Some v when v <> base + (4 * idx) ->
                  Diag.invariant_error
                    "routine %s: entry 0x%x maps to 0x%x, expected 0x%x"
                    r.r_name orig v
                    (base + (4 * idx))
              | Some _ -> ())
            ed.Edit.ed_entries)
        placed

(** [edited_addr t a] — the edited location of original instruction address
    [a] (paper Fig. 1). *)
let edited_addr t a =
  finalize t;
  match t.addr_map with
  | Some map -> Hashtbl.find_opt map a
  | None -> assert false

(** [edited_address_map t] — the complete original→edited instruction
    address map (finalizing the layout if needed). The differential oracle
    inverts this to normalize code-pointer values (e.g. a spilled return
    address) observed in an edited run back to original addresses before
    comparing against the original run. Treat the table as read-only. *)
let edited_address_map t =
  finalize t;
  match t.addr_map with Some map -> map | None -> assert false

(** [edited_growth t] — per-routine static cost of the accumulated edits:
    [(name, original bytes, edited bytes)] for every routine an edited form
    was placed for, sorted by name. The overhead ledger's "routines
    touched" and static-size columns come from here. *)
let edited_growth t =
  finalize t;
  List.map
    (fun ((r : routine), (ed : Edit.edited), _base) ->
      (r.r_name, r.r_hi - r.r_lo, Edit.size_bytes ed))
    t.placed
  |> List.sort compare

(** [inverse_address_norm t] — a value normalizer for the differential
    oracle: edited instruction addresses map back to their original ones,
    anything else passes through. An edited run that spills a code pointer
    (e.g. a return address after [call]) observes the edited address; this
    maps it back so the value compares equal to the original run's. *)
let inverse_address_norm t =
  let map = edited_address_map t in
  let inv = Hashtbl.create (Hashtbl.length map) in
  Hashtbl.iter
    (fun orig na -> if not (Hashtbl.mem inv na) then Hashtbl.add inv na orig)
    map;
  fun v -> match Hashtbl.find_opt inv v with Some orig -> orig | None -> v

(** [block_of_addr t a] — the CFG block id and routine name containing the
    original instruction address [a], if analysis placed it in one. Used by
    divergence reports to anchor a PC in CFG terms. *)
let block_of_addr t a =
  match find_routine t a with
  | None -> None
  | Some r -> (
      match r.r_cfg with
      | None -> None
      | Some g ->
          List.find_map
            (fun (b : C.block) ->
              if
                b.C.kind = C.Normal
                && Array.exists (fun (ia, _) -> ia = a) b.C.instrs
              then Some (r.r_name, b.C.bid)
              else
                match C.term_instr b with
                | Some (ta, _) when ta = a && b.C.kind = C.Normal ->
                    Some (r.r_name, b.C.bid)
                | _ -> None)
            (C.blocks g))

(** {1 Building the edited image} *)

let patch_word t map ~pc (ew : Edit.eword) ~labels ~base =
  let lift w = t.mach.Machine.lift w in
  match ew.Edit.patch with
  | Edit.P_none | Edit.P_label _ -> ew.Edit.w
  | Edit.P_orig a -> (
      match Hashtbl.find_opt map a with
      | Some na -> (
          match t.mach.Machine.retarget (lift ew.Edit.w) ~disp:(na - pc) with
          | Some w -> w
          | None -> err "cross-routine displacement to 0x%x does not fit" na)
      | None ->
          (* a statically-dead transfer (e.g. fall-through off a routine's
             end into data): emit an invalid word so reaching it faults *)
          Logs.debug (fun m ->
              m "eel: transfer to unedited address 0x%x becomes a trap" a);
          0)
  | Edit.P_reloc abs -> (
      match t.mach.Machine.retarget (lift ew.Edit.w) ~disp:(abs - pc) with
      | Some w -> w
      | None -> err "snippet relocation to 0x%x does not fit" abs)
  | Edit.P_hi_label l ->
      let addr = base + (4 * Hashtbl.find labels l) in
      t.mach.Machine.set_const_hi ew.Edit.w ~value:addr
  | Edit.P_lo_label l ->
      let addr = base + (4 * Hashtbl.find labels l) in
      t.mach.Machine.set_const_lo ew.Edit.w ~value:addr

(** [to_edited_sef t ?entry ()] builds the edited executable image: original
    sections (with dispatch tables rewritten in place), the edited text
    section, added data/routines, the run-time translation table if needed,
    and a refreshed symbol table mapping routine names to their edited
    locations. *)
let to_edited_sef t ?entry () =
  finalize t;
  Eel_obs.Trace.with_span "edit.emit" @@ fun () ->
  let map = Option.get t.addr_map in
  let lookup a =
    match Hashtbl.find_opt map a with
    | Some v -> v
    | None -> err "edited_addr: 0x%x has no edited location" a
  in
  (* deep-copy original sections so table rewriting is non-destructive *)
  let orig_sections =
    List.map
      (fun (s : Sef.section) -> { s with Sef.contents = Bytes.copy s.Sef.contents })
      t.exe.Sef.sections
  in
  let copy_exe =
    Sef.create ~entry:t.exe.Sef.entry ~sections:orig_sections
      ~symbols:t.exe.Sef.symbols
  in
  (* ---- edited text ---- *)
  let text = Bytes.make t.new_text_size '\000' in
  let uses_xlat = ref false in
  List.iter
    (fun ((_r : routine), (ed : Edit.edited), base) ->
      if ed.Edit.ed_uses_xlat then uses_xlat := true;
      Array.iteri
        (fun idx ew ->
          let pc = base + (4 * idx) in
          let w = patch_word t map ~pc ew ~labels:ed.Edit.ed_labels ~base in
          Eel_util.Bytebuf.set32_be text (pc - t.new_text_base) w)
        ed.Edit.ed_words;
      (* snippet call-backs: run after register allocation and placement *)
      List.iter
        (fun (start, (inst : Snippet.instance)) ->
          match inst.Snippet.in_callback with
          | None -> ()
          | Some cb ->
              let len = Array.length inst.Snippet.in_words in
              let words =
                Array.init len (fun k ->
                    Eel_util.Bytebuf.get32_be text
                      (base + (4 * (start + k)) - t.new_text_base))
              in
              let ctx =
                {
                  Snippet.cb_words = words;
                  cb_addr = base + (4 * start);
                  cb_assigned = inst.Snippet.in_assigned;
                }
              in
              cb ctx;
              Array.iteri
                (fun k w ->
                  Eel_util.Bytebuf.set32_be text
                    (base + (4 * (start + k)) - t.new_text_base)
                    w)
                words)
        ed.Edit.ed_callbacks;
      (* dispatch tables: rewrite entries in the ORIGINAL image to point at
         edited code (paper §3.3: "subsequently modifies the table to point
         to edited locations") *)
      List.iter
        (fun (tbl : C.table) ->
          Array.iteri
            (fun k old ->
              if not (Sef.patch32 copy_exe (tbl.C.t_addr + (4 * k)) (lookup old))
              then err "dispatch table entry at 0x%x not writable" (tbl.C.t_addr + (4 * k)))
            tbl.C.t_targets)
        ed.Edit.ed_tables)
    t.placed;
  (* ---- run-time translation table ---- *)
  let xlat_sections =
    if not !uses_xlat then []
    else (
      let size = t.text_hi - t.text_lo in
      let b = Bytes.make size '\000' in
      Hashtbl.iter
        (fun orig na ->
          if orig >= t.text_lo && orig < t.text_hi then
            Eel_util.Bytebuf.set32_be b (orig - t.text_lo) na)
        map;
      [
        {
          Sef.sec_name = ".eel.xlat";
          sec_kind = Sef.Data;
          vaddr = t.xlat_base;
          size;
          contents = b;
        };
      ])
  in
  (* ---- added data (single section covering the reserved region) ---- *)
  let data_sections =
    if t.added_data = [] then []
    else (
      let size = t.data_cursor - t.data_base in
      let b = Bytes.make size '\000' in
      List.iter
        (fun (addr, bytes) ->
          Bytes.blit bytes 0 b (addr - t.data_base) (Bytes.length bytes))
        t.added_data;
      [
        {
          Sef.sec_name = ".eel.data";
          sec_kind = Sef.Data;
          vaddr = t.data_base;
          size;
          contents = b;
        };
      ])
  in
  (* ---- added routines ---- *)
  let code_sections =
    if t.added_routines = [] then []
    else (
      let size = t.code_cursor - t.code_base in
      let b = Bytes.make size '\000' in
      List.iter
        (fun (_, addr, words) ->
          Array.iteri
            (fun k w -> Eel_util.Bytebuf.set32_be b (addr - t.code_base + (4 * k)) w)
            words)
        t.added_routines;
      [
        {
          Sef.sec_name = ".eel.code";
          sec_kind = Sef.Text;
          vaddr = t.code_base;
          size;
          contents = b;
        };
      ])
  in
  let text_section =
    {
      Sef.sec_name = ".eel.text";
      sec_kind = Sef.Text;
      vaddr = t.new_text_base;
      size = t.new_text_size;
      contents = text;
    }
  in
  (* ---- symbols: routines at their edited addresses, original data
     symbols kept (paper §3.1: EEL maintains symbol information so standard
     tools work on edited programs) ---- *)
  let routine_syms =
    List.filter_map
      (fun ((r : routine), (_ : Edit.edited), _base) ->
        match Hashtbl.find_opt map r.r_lo with
        | Some na ->
            Some
              {
                Sef.sym_name = r.r_name;
                value = na;
                sym_size = 0;
                kind = Sef.Func;
                global = not r.r_hidden;
              }
        | None -> None)
      t.placed
  in
  let added_syms =
    List.map
      (fun (name, addr, words) ->
        {
          Sef.sym_name = name;
          value = addr;
          sym_size = 4 * Array.length words;
          kind = Sef.Func;
          global = false;
        })
      t.added_routines
  in
  let data_syms =
    List.filter
      (fun (s : Sef.symbol) -> s.Sef.value < t.text_lo || s.Sef.value >= t.text_hi)
      t.exe.Sef.symbols
  in
  let entry =
    match entry with Some e -> e | None -> lookup t.exe.Sef.entry
  in
  Sef.create ~entry
    ~sections:
      (copy_exe.Sef.sections @ xlat_sections @ data_sections @ code_sections
     @ [ text_section ])
    ~symbols:(routine_syms @ added_syms @ data_syms)

(** [write_edited_executable t path ~entry] — paper Fig. 1's final step. *)
let write_edited_executable t path ~entry =
  Sef.write_file path (to_edited_sef t ~entry ())

(** {1 Program-wide statistics (experiments E2–E5, E8)} *)

type jump_stats = {
  js_routines : int;
  js_instructions : int;  (** text words *)
  js_indirect_jumps : int;
  js_unanalyzable : int;
}

(** Build every routine's CFG and count indirect-jump analyzability — the
    paper's §3.3 SPEC92 measurement. *)
let jump_stats t =
  Eel_obs.Trace.with_span "exe.jump_stats" @@ fun () ->
  (* force analysis of everything, including queued hidden routines *)
  let rec force () =
    List.iter (fun r -> ignore (control_flow_graph t r)) t.routines;
    match t.hidden with
    | [] -> ()
    | _ ->
        let rec drain () = match take_hidden t with Some _ -> drain () | None -> () in
        drain ();
        force ()
  in
  force ();
  let jumps = ref 0 and unan = ref 0 in
  List.iter
    (fun r ->
      match r.r_cfg with
      | None -> ()
      | Some g ->
          List.iter
            (fun ((b : C.block), _) ->
              incr jumps;
              match b.C.term with
              | C.T_jump { table = Some _; _ } -> ()
              | _ -> incr unan)
            (C.indirect_jumps g))
    t.routines;
  {
    js_routines = List.length t.routines;
    js_instructions = (t.text_hi - t.text_lo) / 4;
    js_indirect_jumps = !jumps;
    js_unanalyzable = !unan;
  }

(** Aggregate CFG statistics over every routine (experiments E3, E4). *)
let cfg_stats t =
  let zero =
    {
      C.s_blocks = 0;
      s_normal = 0;
      s_delay = 0;
      s_surrogate = 0;
      s_entry_exit = 0;
      s_edges = 0;
      s_uneditable_blocks = 0;
      s_uneditable_edges = 0;
    }
  in
  List.fold_left
    (fun acc r ->
      let s = C.stats_of (control_flow_graph t r) in
      {
        C.s_blocks = acc.C.s_blocks + s.C.s_blocks;
        s_normal = acc.C.s_normal + s.C.s_normal;
        s_delay = acc.C.s_delay + s.C.s_delay;
        s_surrogate = acc.C.s_surrogate + s.C.s_surrogate;
        s_entry_exit = acc.C.s_entry_exit + s.C.s_entry_exit;
        s_edges = acc.C.s_edges + s.C.s_edges;
        s_uneditable_blocks = acc.C.s_uneditable_blocks + s.C.s_uneditable_blocks;
        s_uneditable_edges = acc.C.s_uneditable_edges + s.C.s_uneditable_edges;
      })
    zero t.routines
