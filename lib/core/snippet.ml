(** Code snippets (paper §3.5, Figs. 2 and 5).

    "A code snippet encapsulates foreign code that is added to an executable.
    [...] EEL finds the live registers at the point at which the snippet is
    inserted and assigns dead (unused) registers to the snippet. If EEL
    cannot find enough dead registers, it wraps the snippet with code to
    spill registers to the stack."

    A snippet's body is written in the target machine's assembly syntax with
    {e virtual registers} ([%v0]–[%v7]) standing for the registers EEL will
    scavenge, and [$name] parameters for tool-supplied constants (counter
    addresses, handler entry points). Tools may also patch constant fields
    after creation ({!patch_hi}/{!patch_lo} — the paper's [SET_SETHI_HI]
    idiom) and may register a {e call-back} that runs after register
    allocation and placement, receiving the final instruction words and
    address (used for displacement fix-ups and address recording). *)

open Eel_arch

(** Context passed to a snippet call-back after register allocation and
    placement (paper §3.5). The call-back may modify [cb_words] in place
    but must not change the snippet's length. *)
type cb_ctx = {
  cb_words : int array;  (** final, register-allocated instruction words *)
  cb_addr : int;  (** address of the snippet's first instruction *)
  cb_assigned : int array;  (** virtual register -> physical register *)
}

type t = {
  sn_template : Template.t;
  sn_forbid : Regset.t;
      (** registers the allocator must not use even if dead (paper: "a
          snippet must use a particular register ... EEL should not spill or
          assign it") *)
  sn_callback : (cb_ctx -> unit) option;
}

exception Snippet_error of string

(** [of_asm mach ?params ?forbid ?callback body] assembles a snippet body. *)
let of_asm (mach : Machine.t) ?(params = []) ?(forbid = Regset.empty) ?callback
    body =
  match mach.Machine.asm ~params body with
  | Error m -> raise (Snippet_error m)
  | Ok sn_template ->
      (Stats.stats ()).snippets_alloc <- (Stats.stats ()).snippets_alloc + 1;
      { sn_template; sn_forbid = forbid; sn_callback = callback }

(** [of_words words] wraps raw machine words (no virtual registers). *)
let of_words ?(forbid = Regset.empty) ?callback words =
  (Stats.stats ()).snippets_alloc <- (Stats.stats ()).snippets_alloc + 1;
  { sn_template = Template.of_words words; sn_forbid = forbid; sn_callback = callback }

let length s = Template.length s.sn_template

(** [patch s index f] rewrites template word [index] with [f] — the
    low-level customization hook of paper Fig. 5 ([find_inst] +
    [SET_SETHI_HI]). Returns a new snippet. *)
let patch s index f =
  let words = Array.copy s.sn_template.Template.words in
  words.(index) <- f words.(index);
  { s with sn_template = { s.sn_template with Template.words } }

let patch_hi (mach : Machine.t) s index ~value =
  patch s index (fun w -> mach.Machine.set_const_hi w ~value)

let patch_lo (mach : Machine.t) s index ~value =
  patch s index (fun w -> mach.Machine.set_const_lo w ~value)

(** Result of instantiating a snippet at a program point. *)
type instance = {
  in_words : int array;  (** body with registers assigned, spills wrapped *)
  in_relocs : Template.reloc list;  (** indices adjusted for the prologue *)
  in_callback : (cb_ctx -> unit) option;
  in_assigned : int array;
  in_body_off : int;  (** index of the first body word (after spill code) *)
  in_spilled : int;  (** number of spilled registers (for statistics) *)
}

(** EEL's red zone: snippet spill slots live below the stack pointer. The
    ABI in this repository reserves 64 bytes of red zone for the editor. *)
let red_zone = 64

(** [instantiate mach s ~live] performs context-dependent register
    allocation (scavenging): virtual registers receive registers that are
    dead at the insertion point; when too few are dead, victims are spilled
    around the body. *)
let instantiate (mach : Machine.t) s ~live =
  let nv = Template.num_vregs s.sn_template in
  let avail =
    Regset.diff
      (Regset.diff mach.Machine.allocatable live)
      s.sn_forbid
  in
  let assigned = Array.make (max nv 1) (-1) in
  let pool = ref avail in
  let spills = ref [] in
  for v = 0 to nv - 1 do
    match Regset.choose !pool with
    | Some r ->
        assigned.(v) <- r;
        pool := Regset.remove r !pool
    | None ->
        (* scavenging failed: spill a live allocatable register *)
        let victims =
          Regset.diff
            (Regset.diff mach.Machine.allocatable s.sn_forbid)
            (Regset.of_list
               (List.filter (fun r -> r >= 0) (Array.to_list assigned)))
        in
        let victims =
          Regset.diff victims (Regset.of_list (List.map fst !spills))
        in
        (match Regset.choose victims with
        | None -> raise (Snippet_error "no spillable register for snippet")
        | Some r ->
            let slot = -8 * (List.length !spills + 1) in
            if -slot > red_zone then
              raise (Snippet_error "snippet needs too many registers");
            spills := (r, slot) :: !spills;
            assigned.(v) <- r)
  done;
  let body = Template.subst_vregs s.sn_template assigned in
  let spills = List.rev !spills in
  let pro =
    List.map (fun (r, slot) -> mach.Machine.mk_spill ~reg:r ~sp_off:slot) spills
  in
  let epi =
    List.map (fun (r, slot) -> mach.Machine.mk_unspill ~reg:r ~sp_off:slot) spills
  in
  let npro = List.length pro in
  let in_words = Array.of_list (pro @ Array.to_list body @ epi) in
  let in_relocs =
    List.map
      (fun (r : Template.reloc) -> { r with Template.index = r.Template.index + npro })
      s.sn_template.Template.relocs
  in
  {
    in_words;
    in_relocs;
    in_callback = s.sn_callback;
    in_assigned = Array.sub assigned 0 nv;
    in_body_off = npro;
    in_spilled = List.length spills;
  }
