(** Global allocation counters for EEL objects.

    The paper compares the number of objects allocated by the EEL-based qpt2
    against the ad-hoc qpt (317,494 vs 84,655, §5) and reports that the
    instruction-sharing optimization reduces allocated EEL instructions by a
    factor of four (§3.4). These counters make both measurements
    reproducible (experiments E5 and E8).

    The mutable record behind {!stats} is the hot-path representation (a
    plain int store per event); consumers should read through the pure
    {!snapshot} instead of aliasing the record. Every field is also visible
    in the {!Eel_obs.Metrics} registry under [eel.stats.*] as a callback
    gauge, so tools and the benchmark harness see one metrics namespace.

    The record is {e domain-local}: each domain increments its own copy,
    so analysis jobs fanned out through {!Eel_util.Pool} never race on the
    counters. At pool join the workers' deltas are summed into the
    caller's record (the join hook below), so the totals a driver reads
    after a parallel sweep equal the serial run's. *)

type t = {
  mutable instrs_lifted : int;  (** total machine words lifted *)
  mutable instrs_alloc : int;  (** EEL instruction objects actually allocated *)
  mutable blocks_alloc : int;
  mutable edges_alloc : int;
  mutable snippets_alloc : int;
  mutable cfgs_built : int;
}

let fresh () =
  {
    instrs_lifted = 0;
    instrs_alloc = 0;
    blocks_alloc = 0;
    edges_alloc = 0;
    snippets_alloc = 0;
    cfgs_built = 0;
  }

let stats_key : t Domain.DLS.key = Domain.DLS.new_key fresh

(** The calling domain's counter record. Increment its fields directly on
    hot paths; never cache it across a {!Eel_util.Pool} boundary. *)
let stats () = Domain.DLS.get stats_key

let reset () =
  let s = stats () in
  s.instrs_lifted <- 0;
  s.instrs_alloc <- 0;
  s.blocks_alloc <- 0;
  s.edges_alloc <- 0;
  s.snippets_alloc <- 0;
  s.cfgs_built <- 0

(** A pure copy of the counters at the moment of the call. Tools should use
    this rather than reading the shared mutable record, whose fields can
    move under them as analysis proceeds. *)
type snapshot = {
  s_instrs_lifted : int;
  s_instrs_alloc : int;
  s_blocks_alloc : int;
  s_edges_alloc : int;
  s_snippets_alloc : int;
  s_cfgs_built : int;
}

let snapshot () =
  let s = stats () in
  {
    s_instrs_lifted = s.instrs_lifted;
    s_instrs_alloc = s.instrs_alloc;
    s_blocks_alloc = s.blocks_alloc;
    s_edges_alloc = s.edges_alloc;
    s_snippets_alloc = s.snippets_alloc;
    s_cfgs_built = s.cfgs_built;
  }

(** Total EEL objects allocated since the last {!reset}.

    Deliberately excludes [instrs_lifted]: that field counts machine words
    {e examined} by the lifter (work performed), not objects allocated —
    with instruction sharing on (§3.4), many lifted words resolve to the
    same shared [instrs_alloc] object. Only the four object counters
    ([instrs_alloc], [blocks_alloc], [edges_alloc], [snippets_alloc])
    contribute; [cfgs_built] is likewise a work counter, not an object
    population. *)
let total_objects () =
  let s = stats () in
  s.instrs_alloc + s.blocks_alloc + s.edges_alloc + s.snippets_alloc

let pp fmt () =
  let s = stats () in
  Format.fprintf fmt
    "instrs lifted=%d allocated=%d blocks=%d edges=%d snippets=%d cfgs=%d"
    s.instrs_lifted s.instrs_alloc s.blocks_alloc s.edges_alloc
    s.snippets_alloc s.cfgs_built

(* Absorb the record into the metrics registry: callback gauges read the
   live counters at snapshot time, so the increment paths stay plain int
   stores. *)
let () =
  let reg name read =
    Eel_obs.Metrics.gauge_fn ("eel.stats." ^ name) (fun () ->
        float_of_int (read ()))
  in
  reg "instrs_lifted" (fun () -> (stats ()).instrs_lifted);
  reg "instrs_alloc" (fun () -> (stats ()).instrs_alloc);
  reg "blocks_alloc" (fun () -> (stats ()).blocks_alloc);
  reg "edges_alloc" (fun () -> (stats ()).edges_alloc);
  reg "snippets_alloc" (fun () -> (stats ()).snippets_alloc);
  reg "cfgs_built" (fun () -> (stats ()).cfgs_built);
  reg "total_objects" (fun () -> total_objects ())

(* Pool workers start from a zeroed record, so the capture below is the
   worker's delta; summing it into the caller's record reproduces the
   serial totals. *)
let () =
  Eel_util.Pool.on_join (fun () ->
      let d = snapshot () in
      fun () ->
        let s = stats () in
        s.instrs_lifted <- s.instrs_lifted + d.s_instrs_lifted;
        s.instrs_alloc <- s.instrs_alloc + d.s_instrs_alloc;
        s.blocks_alloc <- s.blocks_alloc + d.s_blocks_alloc;
        s.edges_alloc <- s.edges_alloc + d.s_edges_alloc;
        s.snippets_alloc <- s.snippets_alloc + d.s_snippets_alloc;
        s.cfgs_built <- s.cfgs_built + d.s_cfgs_built)
