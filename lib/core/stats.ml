(** Global allocation counters for EEL objects.

    The paper compares the number of objects allocated by the EEL-based qpt2
    against the ad-hoc qpt (317,494 vs 84,655, §5) and reports that the
    instruction-sharing optimization reduces allocated EEL instructions by a
    factor of four (§3.4). These counters make both measurements
    reproducible (experiments E5 and E8).

    The mutable {!stats} record is the hot-path representation (a plain int
    store per event); consumers should read through the pure {!snapshot}
    instead of aliasing the record. Every field is also visible in the
    {!Eel_obs.Metrics} registry under [eel.stats.*] as a callback gauge, so
    tools and the benchmark harness see one metrics namespace. *)

type t = {
  mutable instrs_lifted : int;  (** total machine words lifted *)
  mutable instrs_alloc : int;  (** EEL instruction objects actually allocated *)
  mutable blocks_alloc : int;
  mutable edges_alloc : int;
  mutable snippets_alloc : int;
  mutable cfgs_built : int;
}

let stats =
  {
    instrs_lifted = 0;
    instrs_alloc = 0;
    blocks_alloc = 0;
    edges_alloc = 0;
    snippets_alloc = 0;
    cfgs_built = 0;
  }

let reset () =
  stats.instrs_lifted <- 0;
  stats.instrs_alloc <- 0;
  stats.blocks_alloc <- 0;
  stats.edges_alloc <- 0;
  stats.snippets_alloc <- 0;
  stats.cfgs_built <- 0

(** A pure copy of the counters at the moment of the call. Tools should use
    this rather than reading the shared mutable {!stats} record, whose
    fields can move under them as analysis proceeds. *)
type snapshot = {
  s_instrs_lifted : int;
  s_instrs_alloc : int;
  s_blocks_alloc : int;
  s_edges_alloc : int;
  s_snippets_alloc : int;
  s_cfgs_built : int;
}

let snapshot () =
  {
    s_instrs_lifted = stats.instrs_lifted;
    s_instrs_alloc = stats.instrs_alloc;
    s_blocks_alloc = stats.blocks_alloc;
    s_edges_alloc = stats.edges_alloc;
    s_snippets_alloc = stats.snippets_alloc;
    s_cfgs_built = stats.cfgs_built;
  }

(** Total EEL objects allocated since the last {!reset}.

    Deliberately excludes [instrs_lifted]: that field counts machine words
    {e examined} by the lifter (work performed), not objects allocated —
    with instruction sharing on (§3.4), many lifted words resolve to the
    same shared [instrs_alloc] object. Only the four object counters
    ([instrs_alloc], [blocks_alloc], [edges_alloc], [snippets_alloc])
    contribute; [cfgs_built] is likewise a work counter, not an object
    population. *)
let total_objects () =
  stats.instrs_alloc + stats.blocks_alloc + stats.edges_alloc
  + stats.snippets_alloc

let pp fmt () =
  Format.fprintf fmt
    "instrs lifted=%d allocated=%d blocks=%d edges=%d snippets=%d cfgs=%d"
    stats.instrs_lifted stats.instrs_alloc stats.blocks_alloc stats.edges_alloc
    stats.snippets_alloc stats.cfgs_built

(* Absorb the record into the metrics registry: callback gauges read the
   live counters at snapshot time, so the increment paths stay plain int
   stores. *)
let () =
  let reg name read =
    Eel_obs.Metrics.gauge_fn ("eel.stats." ^ name) (fun () ->
        float_of_int (read ()))
  in
  reg "instrs_lifted" (fun () -> stats.instrs_lifted);
  reg "instrs_alloc" (fun () -> stats.instrs_alloc);
  reg "blocks_alloc" (fun () -> stats.blocks_alloc);
  reg "edges_alloc" (fun () -> stats.edges_alloc);
  reg "snippets_alloc" (fun () -> stats.snippets_alloc);
  reg "cfgs_built" (fun () -> stats.cfgs_built);
  reg "total_objects" (fun () -> total_objects ())
