(** Instruction sharing (paper §3.4).

    "To improve efficiency, EEL allocates only one instruction to represent
    all instances of a particular machine instruction. Typically, this
    optimization reduces the number of allocated EEL instructions by a
    factor of four."

    EEL instructions ({!Eel_arch.Instr.t}) are position independent — control
    transfer targets are displacements — so all occurrences of one encoding
    word can share a single value. The cache can be disabled to measure the
    effect (experiment E5). *)

type t = {
  mach : Eel_arch.Machine.t;
  table : (int, Eel_arch.Instr.t) Hashtbl.t;
  enabled : bool;
}

let create ?(enabled = true) mach = { mach; table = Hashtbl.create 1024; enabled }

(** [lift c word] returns the (possibly shared) EEL instruction for a machine
    word, updating the {!Stats} counters. The hit path uses [Hashtbl.find]
    with an exception handler rather than [find_opt], so a shared lookup
    allocates nothing. *)
let lift c word =
  let s = Stats.stats () in
  s.instrs_lifted <- s.instrs_lifted + 1;
  if not c.enabled then (
    s.instrs_alloc <- s.instrs_alloc + 1;
    c.mach.Eel_arch.Machine.lift word)
  else
    match Hashtbl.find c.table word with
    | i -> i
    | exception Not_found ->
        let i = c.mach.Eel_arch.Machine.lift word in
        s.instrs_alloc <- s.instrs_alloc + 1;
        Hashtbl.add c.table word i;
        i

(** Number of distinct instruction objects allocated through this cache. *)
let unique c = Hashtbl.length c.table
