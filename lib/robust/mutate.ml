(** Deterministic, seeded SEF mutation — the fault-injection half of the
    never-crash guarantee.

    Each {!kind} models one pathology the paper's §3.1 analysis claims to
    survive: corrupted containers (truncation, bad magic, bogus kind codes,
    lying size fields), hostile section layouts (overlap, disorder, empty or
    giant text), and the full symbol-table zoo (dangling addresses,
    mid-instruction labels, duplicate/[Debug] pollution, fully stripped).
    [Bit_flip_text] additionally turns instruction words into data, the
    situation EEL's data-vs-code classification exists for.

    Mutants are produced from a {e well-formed} executable plus an integer
    seed; the same [(seed, kind, input)] triple always yields the same
    bytes, so a fuzz corpus is reproducible from one integer. The PRNG is a
    self-contained LCG — deliberately not [Stdlib.Random], whose sequence
    may change between OCaml releases. *)

module Sef = Eel_sef.Sef

(** {1 Deterministic PRNG} *)

type rng = { mutable state : int }

let rng seed = { state = (seed * 2654435761) lxor 0x9E3779B9 }

let next r =
  (* 62-bit LCG; top bits are best *)
  r.state <- ((r.state * 2862933555777941757) + 3037000493) land max_int;
  r.state lsr 17

let rand r n = if n <= 0 then 0 else next r mod n

let pick r l = List.nth l (rand r (List.length l))

(** {1 Mutation classes} *)

type kind =
  | Bit_flip_text  (** flip 1–8 bits inside a text section's contents *)
  | Truncate_header  (** cut the file inside the 12-byte header *)
  | Truncate_tail  (** cut the file at a random later offset *)
  | Bad_magic  (** corrupt the magic bytes *)
  | Bogus_section_kind  (** first section's kind byte becomes garbage *)
  | Giant_section_size  (** a section declares far more bytes than it stores *)
  | Empty_text  (** the text section shrinks to zero bytes *)
  | Huge_vaddr  (** a section is moved to the top of the address space *)
  | Overlapping_sections  (** a section is moved on top of another *)
  | Shuffled_sections  (** section records in decreasing-address order *)
  | Bad_entry  (** entry point is misaligned and outside every section *)
  | Dangling_symbol  (** a symbol's value maps to no section *)
  | Misaligned_symbol  (** a text symbol lands mid-instruction *)
  | Duplicate_symbols  (** the whole symbol table appears twice *)
  | Debug_pollution  (** dozens of temporary/debugging labels added *)
  | Stripped  (** no symbol table at all *)

let all =
  [
    Bit_flip_text;
    Truncate_header;
    Truncate_tail;
    Bad_magic;
    Bogus_section_kind;
    Giant_section_size;
    Empty_text;
    Huge_vaddr;
    Overlapping_sections;
    Shuffled_sections;
    Bad_entry;
    Dangling_symbol;
    Misaligned_symbol;
    Duplicate_symbols;
    Debug_pollution;
    Stripped;
  ]

let name = function
  | Bit_flip_text -> "bit-flip-text"
  | Truncate_header -> "truncate-header"
  | Truncate_tail -> "truncate-tail"
  | Bad_magic -> "bad-magic"
  | Bogus_section_kind -> "bogus-section-kind"
  | Giant_section_size -> "giant-section-size"
  | Empty_text -> "empty-text"
  | Huge_vaddr -> "huge-vaddr"
  | Overlapping_sections -> "overlapping-sections"
  | Shuffled_sections -> "shuffled-sections"
  | Bad_entry -> "bad-entry"
  | Dangling_symbol -> "dangling-symbol"
  | Misaligned_symbol -> "misaligned-symbol"
  | Duplicate_symbols -> "duplicate-symbols"
  | Debug_pollution -> "debug-pollution"
  | Stripped -> "stripped"

(* Structural mutations must not alias the input's buffers. *)
let copy_section (s : Sef.section) = { s with Sef.contents = Bytes.copy s.Sef.contents }

let copy (t : Sef.t) =
  Sef.create ~entry:t.Sef.entry
    ~sections:(List.map copy_section t.Sef.sections)
    ~symbols:t.Sef.symbols

let with_sections t sections =
  Sef.create ~entry:t.Sef.entry ~sections ~symbols:t.Sef.symbols

let with_symbols t symbols =
  Sef.create ~entry:t.Sef.entry ~sections:t.Sef.sections ~symbols

let text_addrs r (t : Sef.t) =
  match Sef.text_sections t with
  | [] -> 0
  | ss ->
      let s = pick r ss in
      s.Sef.vaddr + (4 * rand r (max 1 (s.Sef.size / 4)))

(* Byte offset of the first section's kind byte in the serialized form:
   magic (4) + entry (4) + nsec (4) + name length (2) + name. *)
let first_kind_offset (t : Sef.t) =
  match t.Sef.sections with
  | [] -> None
  | s :: _ -> Some (14 + String.length s.Sef.sec_name)

let patch_byte s off v =
  if off >= String.length s then s
  else (
    let b = Bytes.of_string s in
    Bytes.set b off (Char.chr (v land 0xFF));
    Bytes.to_string b)

(** [apply r kind t] — the mutated, serialized executable. *)
let apply r kind (t : Sef.t) : string =
  match kind with
  | Bit_flip_text -> (
      let t = copy t in
      match Sef.text_sections t with
      | [] -> Sef.to_string t
      | ss ->
          let s = pick r ss in
          let nbits = 1 + rand r 8 in
          for _ = 1 to nbits do
            if Bytes.length s.Sef.contents > 0 then (
              let off = rand r (Bytes.length s.Sef.contents) in
              let bit = rand r 8 in
              Bytes.set s.Sef.contents off
                (Char.chr (Char.code (Bytes.get s.Sef.contents off) lxor (1 lsl bit))))
          done;
          Sef.to_string t)
  | Truncate_header ->
      let s = Sef.to_string t in
      String.sub s 0 (rand r (min 12 (String.length s)))
  | Truncate_tail ->
      let s = Sef.to_string t in
      let n = String.length s in
      String.sub s 0 (12 + rand r (max 1 (n - 12)))
  | Bad_magic ->
      let s = Sef.to_string t in
      patch_byte s (rand r 4) (next r)
  | Bogus_section_kind -> (
      let s = Sef.to_string t in
      match first_kind_offset t with
      | Some off -> patch_byte s off (3 + rand r 250)
      | None -> s)
  | Giant_section_size ->
      (* the size field promises more than the stored bytes: the reader
         either consumes the rest of the file as "contents" or truncates *)
      with_sections t
        (List.map
           (fun (s : Sef.section) ->
             if s.Sef.sec_kind = Sef.Text then
               { s with Sef.size = s.Sef.size + 0x10000 + rand r 0x10000 }
             else s)
           t.Sef.sections)
      |> Sef.to_string
  | Empty_text ->
      with_sections t
        (List.map
           (fun (s : Sef.section) ->
             if s.Sef.sec_kind = Sef.Text then
               { s with Sef.size = 0; contents = Bytes.empty }
             else s)
           t.Sef.sections)
      |> Sef.to_string
  | Huge_vaddr ->
      with_sections t
        (match t.Sef.sections with
        | [] -> []
        | s :: rest -> { s with Sef.vaddr = 0xFFFF_FFF0 } :: rest)
      |> Sef.to_string
  | Overlapping_sections ->
      with_sections t
        (match t.Sef.sections with
        | a :: b :: rest ->
            a :: { b with Sef.vaddr = a.Sef.vaddr + rand r (max 1 a.Sef.size) } :: rest
        | l -> l)
      |> Sef.to_string
  | Shuffled_sections ->
      with_sections t
        (List.sort
           (fun (a : Sef.section) b -> compare b.Sef.vaddr a.Sef.vaddr)
           t.Sef.sections)
      |> Sef.to_string
  | Bad_entry ->
      Sef.create
        ~entry:(0xDEAD_0000 + 1 + rand r 3)
        ~sections:t.Sef.sections ~symbols:t.Sef.symbols
      |> Sef.to_string
  | Dangling_symbol ->
      with_symbols t
        ({
           Sef.sym_name = "ghost";
           value = 0xEE00_0000 + (4 * rand r 1024);
           sym_size = 0;
           kind = Sef.Func;
           global = true;
         }
        :: t.Sef.symbols)
      |> Sef.to_string
  | Misaligned_symbol ->
      with_symbols t
        ({
           Sef.sym_name = "askew";
           value = text_addrs r t + 1 + rand r 3;
           sym_size = 0;
           kind = Sef.Func;
           global = true;
         }
        :: t.Sef.symbols)
      |> Sef.to_string
  | Duplicate_symbols ->
      with_symbols t (t.Sef.symbols @ t.Sef.symbols) |> Sef.to_string
  | Debug_pollution ->
      let extra =
        List.init (24 + rand r 24) (fun i ->
            {
              Sef.sym_name = Printf.sprintf "Ldbg%d" i;
              value = text_addrs r t;
              sym_size = 0;
              kind = (if i land 1 = 0 then Sef.Debug else Sef.Label);
              global = false;
            })
      in
      with_symbols t (extra @ t.Sef.symbols) |> Sef.to_string
  | Stripped -> Sef.to_string (Sef.strip t)

(** [mutant ~seed t] picks a class and applies it, both deterministically
    from [seed]. *)
let mutant ~seed (t : Sef.t) : kind * string =
  let r = rng seed in
  let kind = List.nth all (rand r (List.length all)) in
  (kind, apply r kind t)

(** [corpus ~seed ~count t] — [count] reproducible mutants, cycling through
    every class so small corpora still cover all of them. *)
let corpus ~seed ~count (t : Sef.t) : (int * kind * string) list =
  let n = List.length all in
  List.init count (fun i ->
      let r = rng (seed + (i * 7919)) in
      let kind = List.nth all (i mod n) in
      (i, kind, apply r kind t))
