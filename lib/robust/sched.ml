(** Coverage-guided mutation scheduling (ROADMAP: "coverage-guided
    mutation").

    {!Mutate.corpus} cycles through the mutation classes blindly: every
    class receives [count / 16] attempts no matter what those attempts
    discover. This module replaces the blind cycle with a
    coverage-feedback loop: after each mutant runs, the driver reports the
    {e signature} of what that mutant exercised — which structured
    diagnostic it was rejected with, which degradation path it took,
    which divergence class the differential oracle assigned — and the
    scheduler biases subsequent picks toward the classes still producing
    {e new} signatures.

    The pick rule is a deterministic richness estimate (a Laplace-smoothed
    discovery rate): class [k]'s score is

    {[ (distinct_signatures(k) + 1) / (attempts(k) + 2) ]}

    — the expected probability that one more attempt at [k] reveals
    behaviour nobody has seen. Classes that keep yielding fresh signatures
    (historically [bit-flip-text], whose mutants scatter across the whole
    diagnostic and divergence space) retain a high score; classes that
    saturate after one signature (e.g. [bad-magic], which is always
    [rejected:sef]) decay as [1/attempts] and stop consuming budget.
    A never-attempted class beats any score, and ties break toward the
    least-attempted class, then the lowest class index — so the first 16
    picks visit every class once: guided coverage is a superset of one
    blind cycle before any bias kicks in.

    Coverage is also published through the {!Eel_obs.Metrics} registry —
    [<prefix>.<class>] gauges hold per-class distinct-signature counts and
    [<prefix>.distinct] the global count — so the fuzz outcome table and
    any external consumer read scheduling state from the same namespace as
    every other metric. *)

type 'a t = {
  classes : 'a array;
  label : 'a -> string;  (** metrics/report name of a class *)
  sigs : (string, unit) Hashtbl.t array;  (** per-class signature sets *)
  attempts : int array;
  global : (string, unit) Hashtbl.t;  (** distinct signatures, all classes *)
  mutable picks : int;
  prefix : string;
}

(** [make ?prefix ~label classes] — a scheduler over an arbitrary arm
    space. The fault-injection campaign schedules over
    [(tool × fault-class)] arms with exactly the same discovery-rate rule
    the SEF mutation loop uses; [label] renders an arm for metrics and
    reports. [classes] must be non-empty and its elements distinct under
    structural equality. *)
let make ?(prefix = "eel.diff.cover") ~label (classes : 'a array) =
  if Array.length classes = 0 then invalid_arg "Sched.make: no classes";
  {
    classes;
    label;
    sigs = Array.init (Array.length classes) (fun _ -> Hashtbl.create 8);
    attempts = Array.make (Array.length classes) 0;
    global = Hashtbl.create 64;
    picks = 0;
    prefix;
  }

(** The SEF-mutation scheduler: one arm per {!Mutate.kind}. *)
let create ?prefix () =
  make ?prefix ~label:Mutate.name (Array.of_list Mutate.all)

let num_classes t = Array.length t.classes

let attempts_of t kind =
  let rec find i = if t.classes.(i) = kind then i else find (i + 1) in
  t.attempts.(find 0)

let distinct_of t kind =
  let rec find i = if t.classes.(i) = kind then i else find (i + 1) in
  Hashtbl.length t.sigs.(find 0)

(** Distinct signatures observed across every class. *)
let distinct t = Hashtbl.length t.global

let signatures t =
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) t.global [])

(* Laplace-smoothed discovery rate; compared cross-multiplied so the
   schedule is exact integer arithmetic (no float-tie platform drift). *)
let score_num t i = Hashtbl.length t.sigs.(i) + 1

let score_den t i = t.attempts.(i) + 2

(** [next t] — the class the next mutant should come from. Deterministic:
    the pick depends only on the sequence of {!observe} calls so far.
    A never-attempted class always wins (lowest index first), so the first
    16 picks visit every class once — the exploration floor without which
    a single always-fresh class would monopolize the whole budget. *)
let next t =
  let rec unvisited i =
    if i >= Array.length t.classes then None
    else if t.attempts.(i) = 0 then Some i
    else unvisited (i + 1)
  in
  let best =
    match unvisited 0 with
    | Some i -> i
    | None ->
        let best = ref 0 in
        for i = 1 to Array.length t.classes - 1 do
          let b = !best in
          let cmp =
            compare
              (score_num t i * score_den t b)
              (score_num t b * score_den t i)
          in
          let better =
            cmp > 0
            || (cmp = 0 && t.attempts.(i) < t.attempts.(b))
            (* final tie: keep the lower index *)
          in
          if better then best := i
        done;
        !best
  in
  t.picks <- t.picks + 1;
  t.classes.(best)

(** [observe t kind ~signature] feeds back what the mutant of class [kind]
    exercised. Returns [true] when the signature is new for that class. *)
let observe t kind ~signature =
  let rec find i = if t.classes.(i) = kind then i else find (i + 1) in
  let i = find 0 in
  t.attempts.(i) <- t.attempts.(i) + 1;
  let fresh = not (Hashtbl.mem t.sigs.(i) signature) in
  if fresh then Hashtbl.add t.sigs.(i) signature ();
  if not (Hashtbl.mem t.global signature) then
    Hashtbl.add t.global signature ();
  let g name v =
    Eel_obs.Metrics.set (Eel_obs.Metrics.gauge name) (float_of_int v)
  in
  g (t.prefix ^ "." ^ t.label kind) (Hashtbl.length t.sigs.(i));
  g (t.prefix ^ ".distinct") (Hashtbl.length t.global);
  fresh

(** {1 Schedules}

    A schedule is the sequence of classes a [count]-mutant budget is spent
    on. [blind] reproduces {!Mutate.corpus}'s cycle; [guided] closes the
    loop through a caller-supplied runner that maps each mutant to its
    coverage signature. Both are deterministic in [(seed, count)]. *)

let blind ~count =
  let all = Array.of_list Mutate.all in
  List.init count (fun i -> all.(i mod Array.length all))

(** [guided t ~seed ~count base ~run] drives [count] mutants: each round
    picks a class with {!next}, derives the mutant deterministically from
    [seed] and the round index (the same PRNG stream {!Mutate.corpus}
    uses), runs it, and feeds the resulting signature back with
    {!observe}. Returns the per-round [(index, kind, signature)] trace. *)
let guided t ~seed ~count base ~run =
  List.init count (fun i -> i)
  |> List.map (fun i ->
         let kind = next t in
         let r = Mutate.rng (seed + (i * 7919)) in
         let bytes = Mutate.apply r kind base in
         let signature = run i kind bytes in
         ignore (observe t kind ~signature);
         (i, kind, signature))
