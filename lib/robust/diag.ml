(** Structured diagnostics and the unified front-end error hierarchy.

    EEL's core claim (paper §3.1) is that it survives hostile inputs:
    stripped executables, "incomplete or misleading" symbol tables, data
    tables embedded in the text segment. Surviving means two things for an
    API: recoverable problems become {e diagnostics} attached to the
    operation that observed them, and unrecoverable problems become {e typed
    error values}, never bare [Failure] strings or escaped [Invalid_argument]
    exceptions from innocent-looking [Bytes] primitives.

    This module provides both halves:

    - {!sink}: a per-load diagnostics channel (severity × source location ×
      message) with an optional {e strict} mode that promotes warnings to
      errors, so a tool can choose between "load whatever can be salvaged"
      and "refuse anything suspicious";
    - {!error}: the single sum type under which every front-end failure —
      SEF parsing, executable analysis, instruction decoding, editing,
      invariant verification, resource exhaustion — is reported, and the
      single {!Error} exception used by the exception-shim entry points.

    The {!budget} type bounds the work an analysis may perform, mirroring
    [Emu.Out_of_fuel]: a hostile input must not be able to drive the front
    end into effective non-termination. *)

(** {1 Severities and source locations} *)

type severity = Note | Warn | Err

let severity_name = function Note -> "note" | Warn -> "warning" | Err -> "error"

(** Where in the input a problem was observed. For binary front ends a
    "source location" is a file (when known), a byte offset into the
    container, and/or a virtual address inside the image. *)
type loc = {
  l_file : string option;
  l_offset : int option;  (** byte offset into the serialized container *)
  l_addr : int option;  (** virtual address inside the loaded image *)
}

let no_loc = { l_file = None; l_offset = None; l_addr = None }

let at_offset offset = { no_loc with l_offset = Some offset }

let at_addr addr = { no_loc with l_addr = Some addr }

let in_file file = { no_loc with l_file = Some file }

let pp_loc fmt l =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        l.l_file;
        Option.map (Printf.sprintf "offset %d") l.l_offset;
        Option.map (Printf.sprintf "addr 0x%x") l.l_addr;
      ]
  in
  match parts with
  | [] -> Format.fprintf fmt "<input>"
  | ps -> Format.fprintf fmt "%s" (String.concat ", " ps)

(** {1 The unified error hierarchy}

    One sum covers the whole load→CFG→edit pipeline, so callers match on a
    single type no matter which layer failed. *)

type error =
  | Sef_error of { what : string; loc : loc }
      (** malformed SEF container: bad magic, truncation, inconsistent
          section metadata *)
  | Exe_error of { what : string }
      (** executable-level analysis failure: no text section, malformed
          routine structure *)
  | Decode_error of { addr : int; word : int; what : string }
      (** an instruction word that analysis cannot proceed past *)
  | Edit_error of { what : string }  (** edit accumulation or layout failure *)
  | Invariant_error of { what : string }
      (** the post-edit verifier rejected an edited image *)
  | Budget_error of { stage : string; limit : int }
      (** a work budget was exhausted: the input demanded more decode/CFG
          work than the caller allowed (anti-non-termination guard) *)

let error_message = function
  | Sef_error { what; loc } ->
      Format.asprintf "SEF: %s (%a)" what pp_loc loc
  | Exe_error { what } -> Printf.sprintf "executable: %s" what
  | Decode_error { addr; word; what } ->
      Printf.sprintf "decode: %s (word 0x%08x at 0x%x)" what word addr
  | Edit_error { what } -> Printf.sprintf "edit: %s" what
  | Invariant_error { what } -> Printf.sprintf "invariant: %s" what
  | Budget_error { stage; limit } ->
      Printf.sprintf "budget: %s exhausted its work budget of %d" stage limit

let pp_error fmt e = Format.fprintf fmt "%s" (error_message e)

(** The error's layer, as a short stable tag ("sef", "exe", "decode",
    "edit", "invariant", "budget") — the coverage signature the
    coverage-guided mutation scheduler and the fuzz outcome tables key on. *)
let error_kind = function
  | Sef_error _ -> "sef"
  | Exe_error _ -> "exe"
  | Decode_error _ -> "decode"
  | Edit_error _ -> "edit"
  | Invariant_error _ -> "invariant"
  | Budget_error _ -> "budget"

(** The one exception the exception-shim entry points raise. Code that wants
    values uses the [Result]-returning APIs ([Sef.load],
    [Executable.open_exe]) or {!guard}. *)
exception Error of error

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Robust.Error: " ^ error_message e)
    | _ -> None)

let fail e = raise (Error e)

let sef_error ?(loc = no_loc) fmt =
  Printf.ksprintf (fun what -> fail (Sef_error { what; loc })) fmt

let exe_error fmt = Printf.ksprintf (fun what -> fail (Exe_error { what })) fmt

let decode_error ~addr ~word fmt =
  Printf.ksprintf (fun what -> fail (Decode_error { addr; word; what })) fmt

let edit_error fmt = Printf.ksprintf (fun what -> fail (Edit_error { what })) fmt

let invariant_error fmt =
  Printf.ksprintf (fun what -> fail (Invariant_error { what })) fmt

(** [guard f] turns the exception-shim convention back into a value:
    {!Error} and the legacy truncation exception from {!Eel_util.Bytebuf}
    become [Result.Error]; every other exception propagates (an exception
    other than these escaping the front end is a bug, and the fuzz driver
    treats it as one). *)
let guard f =
  try Ok (f ()) with
  | Error e -> Result.Error e
  | Eel_util.Bytebuf.Truncated { context; offset; wanted; available } ->
      Result.Error
        (Sef_error
           {
             what =
               Printf.sprintf "%s: truncated input (wanted %d bytes, %d available)"
                 context wanted available;
             loc = at_offset offset;
           })

(** {1 Diagnostics sinks} *)

type diagnostic = {
  d_sev : severity;
  d_source : string;  (** component that observed the problem, e.g. "sef" *)
  d_loc : loc;
  d_msg : string;
}

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s: %s: %s (%a)" (severity_name d.d_sev) d.d_source d.d_msg
    pp_loc d.d_loc

type sink = {
  strict : bool;  (** promote warnings to errors *)
  mutable items : diagnostic list;  (** newest first *)
  mutable n_notes : int;
  mutable n_warnings : int;
  mutable n_errors : int;
}

let create ?(strict = false) () =
  { strict; items = []; n_notes = 0; n_warnings = 0; n_errors = 0 }

(** Emit one diagnostic. In a strict sink, [Warn] is recorded as [Err] —
    the promotion the paper's cautious tools want ("refuse anything the
    analysis is not sure about"). When an ambient tracer is installed the
    diagnostic is also attached to the active span as an instant event, so
    warnings appear on the timeline next to the phase that produced them. *)
let emit sink sev ~source ?(loc = no_loc) fmt =
  Printf.ksprintf
    (fun msg ->
      let sev = if sink.strict && sev = Warn then Err else sev in
      (match sev with
      | Note -> sink.n_notes <- sink.n_notes + 1
      | Warn -> sink.n_warnings <- sink.n_warnings + 1
      | Err -> sink.n_errors <- sink.n_errors + 1);
      sink.items <- { d_sev = sev; d_source = source; d_loc = loc; d_msg = msg } :: sink.items;
      match Eel_obs.Trace.get_current () with
      | None -> ()
      | Some tr ->
          Eel_obs.Trace.instant tr
            ("diag:" ^ severity_name sev)
            ~args:
              [
                ("source", source);
                ("message", msg);
                ("loc", Format.asprintf "%a" pp_loc loc);
              ])
    fmt

(** [report sink_opt sev ~source ?loc fmt] — emit when a sink is present,
    drop silently otherwise. The degradation paths in analysis code use this
    so they work with or without a collector. *)
let report sink_opt sev ~source ?loc fmt =
  match sink_opt with
  | Some sink -> emit sink sev ~source ?loc fmt
  | None -> Printf.ksprintf (fun _ -> ()) fmt

(** Diagnostics in emission order. *)
let diagnostics sink = List.rev sink.items

let notes sink = sink.n_notes

let warnings sink = sink.n_warnings

let errors sink = sink.n_errors

let has_errors sink = sink.n_errors > 0

let count sink = sink.n_notes + sink.n_warnings + sink.n_errors

let pp_sink fmt sink =
  List.iter (fun d -> Format.fprintf fmt "%a@\n" pp_diagnostic d) (diagnostics sink)

(** {1 Work budgets}

    Decode and CFG-construction loops driven by hostile inputs must
    terminate. A budget is a decrementing counter, shared by all stages of
    one load; exhaustion raises {!Error} with {!Budget_error}, mirroring the
    emulator's [Out_of_fuel]. *)

type budget = { b_stage : string; b_limit : int; mutable b_left : int }

(** A budget large enough that no legitimate executable hits it: ~64M work
    units (one unit ≈ one instruction word examined). *)
let default_budget_units = 64 * 1024 * 1024

let budget ?(stage = "analysis") limit = { b_stage = stage; b_limit = limit; b_left = limit }

let unlimited () = budget max_int

(** [spend b n] consumes [n] units, failing with {!Budget_error} when the
    budget runs dry. *)
let spend b n =
  b.b_left <- b.b_left - n;
  if b.b_left < 0 then fail (Budget_error { stage = b.b_stage; limit = b.b_limit })

let budget_left b = max 0 b.b_left
