(** Systematic fault injection against the verification stack itself
    (ROADMAP: "contract-guided mutation").

    PRs 3–4 built the oracle — lockstep differential execution plus edit
    contracts — and the clean corpus verifies under it. But a green oracle
    over clean inputs proves nothing about the oracle's {e blind spots}: a
    clobbering snippet, a counter placed on live data, or a contract that
    quietly under-declares would all sail through if [verify_edit] had a
    hole shaped like them. This module manufactures exactly those known-bad
    inputs, deterministically, and demands the oracle flag every one.

    Three attack surfaces:

    - {e instrumentation mutation} (the edit lies): the edited image is
      re-patched at sites the original run provably executes — a stray
      store into live low memory, a clobbered register, an off-by-one spill
      just past the red zone, a wild trap — or the tool's own counter words
      are skewed mid-run through the emulator's fault hooks
      ({!Eel_emu.Emu.poke}).
    - {e contract mutation} (the declaration lies): a declared region is
      forgotten, a phantom region masks the program's own stores, a program
      trap number is claimed as instrumentation traffic, a store-address
      transform is claimed that the edit never applies (see
      {!Eel_equiv.Contract}'s surgery helpers).
    - {e environment faults}: fuel exhaustion at exact boundaries, image
      bit-flips, tiny observation logs, tiny work budgets, trap storms,
      wild poke plans — under the never-crash guarantee: typed
      {!Diag} errors or classified verdicts, never exceptions.

    Every fault is addressed by a {e site index} into a per-class site
    list, so a reproducer is four values — (tool, program, class, sites) —
    and rebuilding it is deterministic. {!triage} dedups flagged trials by
    (tool, divergence class, anchor pc) and {!minimize} shrinks each to a
    single site; {!repro_to_json}/{!spec_of_json} round-trip reproducers
    through the JSON artifacts CI uploads. *)

module Sef = Eel_sef.Sef
module Emu = Eel_emu.Emu
module Diag = Eel_robust.Diag
module Diffexec = Eel_diffexec.Diffexec
module Corpus = Eel_diffexec.Corpus
module Toolbox = Eel_tools.Toolbox
module Contract = Eel_equiv.Contract
module Insn = Eel_sparc.Insn
module Regs = Eel_sparc.Regs
module Json = Eel_obs.Json
module Metrics = Eel_obs.Metrics

let mach = Eel_sparc.Mach.mach

(** {1 Fault classes} *)

type fclass =
  | Stray_store  (** edited insn becomes a store into live low memory *)
  | Clobber_reg  (** edited insn becomes an [%o0]-clobbering add *)
  | Redzone_spill  (** edited insn becomes a spill one slot past the zone *)
  | Wild_trap  (** edited insn becomes a trap the program never issues *)
  | Count_skew  (** an instrumentation word is corrupted mid-run *)
  | Drop_syscall  (** an executed OS-trap insn becomes a nop: dropped call *)
  | Undeclared_deny
      (** edited side runs under a denying interposition policy with no
          declared suppression — the "undeclared deny" lie on a live
          world *)
  | Forget_region  (** contract forgets a declared region *)
  | Mask_store  (** contract claims a region over live program data *)
  | Mask_trap  (** contract claims a program trap as instrumentation *)
  | Mask_sys  (** contract claims a program {e syscall} as its own *)
  | Phantom_norm  (** contract claims an addr transform the edit lacks *)

let all_classes =
  [
    Stray_store; Clobber_reg; Redzone_spill; Wild_trap; Count_skew;
    Drop_syscall; Undeclared_deny; Forget_region; Mask_store; Mask_trap;
    Mask_sys; Phantom_norm;
  ]

let class_name = function
  | Stray_store -> "stray-store"
  | Clobber_reg -> "clobber-reg"
  | Redzone_spill -> "redzone-spill"
  | Wild_trap -> "wild-trap"
  | Count_skew -> "count-skew"
  | Drop_syscall -> "drop-syscall"
  | Undeclared_deny -> "undeclared-deny"
  | Forget_region -> "forget-region"
  | Mask_store -> "mask-store"
  | Mask_trap -> "mask-trap"
  | Mask_sys -> "mask-sys"
  | Phantom_norm -> "phantom-norm"

let class_of_name s =
  List.find_opt (fun c -> class_name c = s) all_classes

(** Which of the tentpole's attack surfaces a class belongs to. *)
let surface = function
  | Stray_store | Clobber_reg | Redzone_spill | Wild_trap | Count_skew
  | Drop_syscall ->
      "edit"
  | Undeclared_deny | Forget_region | Mask_store | Mask_trap | Mask_sys
  | Phantom_norm ->
      "contract"

(** {1 Site discovery}

    Faults are only worth injecting where the program provably goes: a
    clobber in dead code is undetectable {e by design}, not an oracle blind
    spot. One profiled run of the {e original} image yields the executed
    trap sites (mapped to their edited addresses — that is where the bad
    word lands), the program's own store addresses (targets for the
    masking lie), and its trap numbers. *)

type inst = {
  i_tool : string;
  i_prog : string;
  i_orig : Sef.t;
  i_ap : Toolbox.applied;
  i_traps : (int * int) list;
      (** (edited address of an executed trap insn, its trap number),
          in first-execution order, deduplicated *)
  i_stores : int list;  (** distinct original-run store addresses *)
  i_nums : int list;  (** distinct trap numbers, first-seen order *)
  i_os : Eel_os.Spec.t option;  (** the OS world, for OS-mode programs *)
  i_sys : (int * int) list;
      (** (edited address of an executed OS-trap insn, its syscall
          number), first-execution order, deduplicated *)
  i_sys_nums : int list;  (** distinct syscall numbers, first-seen order *)
  i_sys_deny : bool;
      (** the run made a call the write-denying policy would refuse *)
  i_live_regions : int list;
      (** indices into the contract's regions that the {e edited} run
          actually stores into — forgetting a region nobody wrote is
          undetectable by design, not an oracle blind spot *)
}

(* cap per-class site lists so full-set arming and greedy minimization stay
   bounded on store- or counter-heavy programs *)
let max_sites = 6

let take n l = List.filteri (fun i _ -> i < n) l

(** [instrument ~fuel ?os tool (prog, exe)] applies [tool] and discovers
    the injectable sites from one profiled run of the original; [os] runs
    it against an OS world, adding the syscall-surface sites. *)
let instrument ~fuel ?os tool (prog, exe) : (inst, string) result =
  match
    Diag.guard (fun () ->
        match Toolbox.apply tool mach exe with
        | Ok ap -> ap
        | Error m -> Diag.fail (Diag.Exe_error { what = m }))
  with
  | Error e -> Error (Diag.error_message e)
  | Ok ap -> (
      (* the discovery run must see the same memory geometry verify_edit
         will use, or stack store addresses would not line up *)
      let head_a, head_b =
        Diffexec.equalized_headroom exe ap.Toolbox.ap_edited
      in
      (* one raw edited run (no contract filter): which declared regions
         does the instrumentation actually store into here? *)
      let live_regions =
        let regions = ap.Toolbox.ap_contract.Contract.ct_regions in
        if regions = [] then []
        else
          match
            Diffexec.execute ~fuel ~headroom:head_b ?os
              ap.Toolbox.ap_edited
          with
          | Error _ -> []
          | Ok rb ->
              List.mapi (fun i r -> (i, r)) regions
              |> List.filter_map (fun (i, r) ->
                     let hit = ref false in
                     Array.iter
                       (function
                         | Emu.Ob_store { addr; _ }
                           when Contract.in_region r addr ->
                             hit := true
                         | _ -> ())
                       rb.Diffexec.r_events;
                     if !hit then Some i else None)
      in
      match Diffexec.execute ~fuel ~headroom:head_a ?os exe with
      | Error e -> Error (Diag.error_message e)
      | Ok r ->
          let traps = ref [] and stores = ref [] and nums = ref [] in
          let sys = ref [] and sys_nums = ref [] and sys_deny = ref false in
          let seen_pc = Hashtbl.create 16 in
          let seen_addr = Hashtbl.create 64 in
          let seen_sys_pc = Hashtbl.create 16 in
          Array.iter
            (function
              | Emu.Ob_trap { pc; num; _ } ->
                  if not (Hashtbl.mem seen_pc pc) then (
                    Hashtbl.add seen_pc pc ();
                    match ap.Toolbox.ap_edited_addr pc with
                    | Some epc -> traps := (epc, num) :: !traps
                    | None -> ());
                  if not (List.mem num !nums) then nums := num :: !nums
              | Emu.Ob_syscall { pc; num; a0; _ } ->
                  if not (Hashtbl.mem seen_sys_pc pc) then (
                    Hashtbl.add seen_sys_pc pc ();
                    match ap.Toolbox.ap_edited_addr pc with
                    | Some epc -> sys := (epc, num) :: !sys
                    | None -> ());
                  if not (List.mem num !sys_nums) then
                    sys_nums := num :: !sys_nums;
                  if Eel_os.Policy.denies Toolbox.sfi_policy num a0 then
                    sys_deny := true
              | Emu.Ob_store { addr; _ } ->
                  if not (Hashtbl.mem seen_addr addr) then (
                    Hashtbl.add seen_addr addr ();
                    stores := addr :: !stores)
              | _ -> ())
            r.Diffexec.r_events;
          Ok
            {
              i_tool = tool;
              i_prog = prog;
              i_orig = exe;
              i_ap = ap;
              i_traps = List.rev !traps;
              i_stores = List.rev !stores;
              i_nums = List.rev !nums;
              i_os = os;
              i_sys = List.rev !sys;
              i_sys_nums = List.rev !sys_nums;
              i_sys_deny = !sys_deny;
              i_live_regions = live_regions;
            })

(** {1 Arming a fault}

    A {e site} is an index into the class's site list for this
    instrumented program; {!arm} turns a set of sites into concrete verify
    inputs: a (possibly re-patched copy of the) edited image, a (possibly
    lying) contract, and a poke plan. *)

(* hand-assembled injected words; [Insn.encode] keeps them honest *)
let stray_addr = 64

let word_stray =
  Insn.encode
    (Insn.Mem
       { op = Insn.St; rs1 = Regs.g0; op2 = Insn.O_imm stray_addr; rd = Regs.g1 })

let word_clobber =
  Insn.encode
    (Insn.Alu { op = Insn.Add; rs1 = Regs.o0; op2 = Insn.O_imm 13; rd = Regs.o0 })

(* one word below the declared 64-byte red zone: sp-68 is program territory *)
let word_redzone =
  Insn.encode
    (Insn.Mem
       {
         op = Insn.St;
         rs1 = Regs.sp;
         op2 = Insn.O_imm (-(Eel.Snippet.red_zone + 4));
         rd = Regs.g1;
       })

let word_wild_trap ~avoid =
  let num = if avoid = 3 then 2 else 3 in
  Insn.encode (Insn.Ticc { cond = Insn.CA; rs1 = Regs.g0; op2 = Insn.O_imm num })

(* [add %g0, 0, %g0]: the nop that drops a syscall *)
let word_nop =
  Insn.encode
    (Insn.Alu { op = Insn.Add; rs1 = Regs.g0; op2 = Insn.O_imm 0; rd = Regs.g0 })

(* [Drop_syscall]'s menu: only calls whose loss leaves the program
   terminating and observably different. Dropping an [open] or [read]
   leaves a stale register driving the I/O loop, so the edited run
   spins to fuel exhaustion — the oracle rightly reports truncation,
   not divergence, and the trial proves nothing. Dropping a [write],
   [close] or [exit] keeps the read-driven control flow intact and
   surfaces as a missing event. *)
let droppable_sys (t : inst) =
  take max_sites
    (List.filter
       (fun (_, num) ->
         List.mem num
           [ Eel_os.Abi.sys_write; Eel_os.Abi.sys_close; Eel_os.Abi.sys_exit ])
       t.i_sys)

(** The class's site menu: one human-readable description per site.
    An empty list means the class does not apply to this instrumented
    program (SFI declares no regions and exposes no counters). *)
let sites (t : inst) cls : string list =
  let trap_sites () =
    take max_sites
      (List.map
         (fun (epc, num) -> Printf.sprintf "trap %d site at edited 0x%x" num epc)
         t.i_traps)
  in
  match cls with
  | Stray_store | Clobber_reg | Redzone_spill | Wild_trap -> trap_sites ()
  | Count_skew ->
      take max_sites
        (List.map (fun (label, _, _) -> label) t.i_ap.Toolbox.ap_targets)
  | Drop_syscall ->
      List.map
        (fun (epc, num) ->
          Printf.sprintf "os syscall %d site at edited 0x%x" num epc)
        (droppable_sys t)
  | Undeclared_deny ->
      if t.i_sys_deny then
        [ "deny write-to-fd>2 with no declared suppression" ]
      else []
  | Mask_sys ->
      List.map
        (fun n -> Printf.sprintf "mask program syscall %d" n)
        t.i_sys_nums
  | Forget_region ->
      (* only regions the edited run stores into: forgetting a region
         nobody wrote is undetectable by design, not an oracle gap *)
      let regions = t.i_ap.Toolbox.ap_contract.Contract.ct_regions in
      List.map
        (fun i ->
          let r : Contract.region = List.nth regions i in
          "forget region " ^ r.Contract.rg_name)
        t.i_live_regions
  | Mask_store ->
      take max_sites
        (List.map
           (fun a -> Printf.sprintf "mask program store at 0x%x" a)
           t.i_stores)
  | Mask_trap ->
      List.map (fun n -> Printf.sprintf "mask program trap %d" n) t.i_nums
  | Phantom_norm ->
      if t.i_stores = [] then []
      else [ "claim addr transform (xor 4) the edit does not apply" ]

type armed = {
  a_edited : Sef.t;
  a_contract : Contract.t;
  a_pokes : Emu.poke list;
  a_os_b : Eel_os.Spec.t option;
      (** edited-side OS world override ([Undeclared_deny]) *)
  a_desc : string;
}

(** [arm t cls idxs] builds the faulted trial for site set [idxs] (indices
    into [sites t cls]; out-of-range indices are ignored). *)
let arm (t : inst) cls idxs : armed =
  let contract = t.i_ap.Toolbox.ap_contract in
  let descs = sites t cls in
  let chosen = List.filter (fun i -> i >= 0 && i < List.length descs) idxs in
  let desc =
    String.concat "; " (List.map (fun i -> List.nth descs i) chosen)
  in
  let base =
    { a_edited = t.i_ap.Toolbox.ap_edited; a_contract = contract;
      a_pokes = []; a_os_b = None; a_desc = desc }
  in
  let patch word_of =
    let edited = Mutate.copy t.i_ap.Toolbox.ap_edited in
    List.iter
      (fun i ->
        let epc, num = List.nth t.i_traps i in
        ignore (Sef.patch32 edited epc (word_of ~avoid:num)))
      chosen;
    { base with a_edited = edited }
  in
  match cls with
  | Stray_store -> patch (fun ~avoid:_ -> word_stray)
  | Clobber_reg -> patch (fun ~avoid:_ -> word_clobber)
  | Redzone_spill -> patch (fun ~avoid:_ -> word_redzone)
  | Wild_trap -> patch (fun ~avoid -> word_wild_trap ~avoid)
  | Drop_syscall ->
      let edited = Mutate.copy t.i_ap.Toolbox.ap_edited in
      let menu = droppable_sys t in
      List.iter
        (fun i ->
          let epc, _ = List.nth menu i in
          ignore (Sef.patch32 edited epc word_nop))
        chosen;
      { base with a_edited = edited }
  | Undeclared_deny ->
      if chosen = [] then base
      else
        {
          base with
          a_os_b =
            Option.map
              (fun s -> Eel_os.Spec.with_policy s Toolbox.sfi_policy)
              t.i_os;
        }
  | Mask_sys ->
      let c =
        List.fold_left
          (fun c i -> Contract.claim_sys c (List.nth t.i_sys_nums i))
          contract chosen
      in
      { base with a_contract = c }
  | Count_skew ->
      let targets = take max_sites t.i_ap.Toolbox.ap_targets in
      let pokes =
        List.map
          (fun i ->
            let _, addr, value = List.nth targets i in
            { Emu.pk_at = 0; pk_addr = addr; pk_value = value })
          chosen
      in
      { base with a_pokes = pokes }
  | Forget_region ->
      (* menu indices name live regions; map back to contract indices,
         descending, so earlier removals don't shift later ones *)
      let region_idxs = List.map (List.nth t.i_live_regions) chosen in
      let c =
        List.fold_left
          (fun c i -> Contract.forget_region c i)
          contract
          (List.sort (fun a b -> compare b a) region_idxs)
      in
      { base with a_contract = c }
  | Mask_store ->
      let c =
        List.fold_left
          (fun c i ->
            Contract.claim_region c
              (Contract.region ~name:"phantom"
                 ~lo:(List.nth t.i_stores i) ~size:4))
          contract chosen
      in
      { base with a_contract = c }
  | Mask_trap ->
      let c =
        List.fold_left
          (fun c i -> Contract.claim_trap c (List.nth t.i_nums i))
          contract chosen
      in
      { base with a_contract = c }
  | Phantom_norm ->
      if chosen = [] then base
      else
        { base with
          a_contract = Contract.claim_addr_norm contract (fun a -> a lxor 4) }

(** {1 Running one trial} *)

type attempt = {
  at_flagged : bool;  (** the oracle flagged the fault (any divergence) *)
  at_verdict : string;  (** verdict, [error:<kind>], or [crash:<what>] *)
  at_dclass : string;  (** divergence class name; [""] when none *)
  at_anchor : int;  (** divergence anchor pc; 0 when none *)
  at_signature : string;  (** coverage key for the guided hunt *)
  at_crash : bool;
}

(** [attempt ~fuel t a] runs the faulted trial under the contract oracle.
    Crashes are data — the never-crash guarantee is asserted by counting
    them, not by dying. *)
let attempt ~fuel (t : inst) (a : armed) : attempt =
  match
    try
      `R
        (Diffexec.verify_edit ~fuel ~norm_b:t.i_ap.Toolbox.ap_norm_b
           ~block_of:t.i_ap.Toolbox.ap_block_of ~pokes_b:a.a_pokes
           ?os:t.i_os ?os_b:a.a_os_b ~contract:a.a_contract t.i_orig
           a.a_edited)
    with
    | Stack_overflow -> `Crash "Stack_overflow"
    | exn -> `Crash (Printexc.to_string exn)
  with
  | `Crash what ->
      {
        at_flagged = false;
        at_verdict = "crash:" ^ what;
        at_dclass = "";
        at_anchor = 0;
        at_signature = "crash";
        at_crash = true;
      }
  | `R (Error e) ->
      let kind = Diag.error_kind e in
      {
        at_flagged = false;
        at_verdict = "error:" ^ kind;
        at_dclass = "";
        at_anchor = 0;
        at_signature = "rejected:" ^ kind;
        at_crash = false;
      }
  | `R (Ok er) ->
      let rp = er.Diffexec.er_report in
      let flagged = Diffexec.is_divergence rp.Diffexec.rp_verdict in
      let dclass, anchor =
        match rp.Diffexec.rp_divergence with
        | Some dv ->
            (Diffexec.dclass_name dv.Diffexec.dv_class, dv.Diffexec.dv_pc)
        | None -> ("", 0)
      in
      let signature =
        Diffexec.coverage_signature rp
        ^ if flagged then Printf.sprintf "@0x%x" anchor else ""
      in
      {
        at_flagged = flagged;
        at_verdict = Diffexec.verdict_name rp.Diffexec.rp_verdict;
        at_dclass = dclass;
        at_anchor = anchor;
        at_signature = signature;
        at_crash = false;
      }

(** {1 Reproducers and triage} *)

type repro = {
  rx_tool : string;
  rx_prog : string;
  rx_class : fclass;
  rx_sites : int list;  (** minimized site set (a singleton after triage) *)
  rx_desc : string;
  rx_verdict : string;
  rx_dclass : string;
  rx_anchor : int;
}

(** [minimize ~fuel t cls idxs] greedily shrinks a flagged site set to a
    single site: the first site that reproduces a divergence on its own
    wins. Falls back to the full set if no single site reproduces (a
    genuinely conjunctive fault — none of the current classes are, but the
    triage stage must not lose a reproducer to that assumption). *)
let minimize ~fuel (t : inst) cls idxs : int list * attempt option =
  match idxs with
  | [] | [ _ ] -> (idxs, None)
  | _ -> (
      let single =
        List.find_map
          (fun i ->
            let at = attempt ~fuel t (arm t cls [ i ]) in
            if at.at_flagged then Some (i, at) else None)
          idxs
      in
      match single with
      | Some (i, at) -> ([ i ], Some at)
      | None -> (idxs, None))

(** [triage rs] — dedup by (tool, divergence class, anchor pc), keeping
    the first reproducer of each equivalence class. *)
let triage (rs : repro list) : repro list =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun r ->
      let key = (r.rx_tool, r.rx_dclass, r.rx_anchor) in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.add seen key ();
        true))
    rs

let repro_to_json r =
  Printf.sprintf
    {|{"tool":"%s","program":"%s","class":"%s","sites":[%s],"desc":"%s","verdict":"%s","dclass":"%s","anchor_pc":%d}|}
    r.rx_tool r.rx_prog (class_name r.rx_class)
    (String.concat "," (List.map string_of_int r.rx_sites))
    (Eel_obs.Trace.json_escape r.rx_desc)
    r.rx_verdict r.rx_dclass r.rx_anchor

(** What {!replay} needs back out of a reproducer artifact. *)
type spec = {
  sp_tool : string;
  sp_prog : string;
  sp_class : fclass;
  sp_sites : int list;
}

let spec_of_json (j : Json.t) : (spec, string) result =
  let str k =
    match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
  in
  match (str "tool", str "program", Option.bind (str "class") class_of_name) with
  | Some tool, Some prog, Some cls ->
      let sites =
        match Json.member "sites" j with
        | Some (Json.Arr xs) ->
            List.filter_map
              (function Json.Num n -> Some (int_of_float n) | _ -> None)
              xs
        | _ -> []
      in
      if sites = [] then Error "reproducer has no sites"
      else Ok { sp_tool = tool; sp_prog = prog; sp_class = cls; sp_sites = sites }
  | _ -> Error "reproducer is missing tool/program/class"

(* resolve a program name across both corpora, with its OS world *)
let lookup_prog prog : (Sef.t * Eel_os.Spec.t option) option =
  match List.assoc_opt prog (Corpus.all ()) with
  | Some exe -> Some (exe, None)
  | None ->
      List.find_map
        (fun (n, exe, spec) -> if n = prog then Some (exe, Some spec) else None)
        (Corpus.all_os ())

(** [replay ~fuel s] deterministically rebuilds a reproducer and re-runs
    the oracle; returns the fresh attempt (flagged = reproduced) plus the
    trial description. *)
let replay ~fuel (s : spec) : (attempt * string, string) result =
  match lookup_prog s.sp_prog with
  | None -> Error (Printf.sprintf "unknown corpus program %s" s.sp_prog)
  | Some (exe, os) -> (
      match instrument ~fuel ?os s.sp_tool (s.sp_prog, exe) with
      | Error m -> Error m
      | Ok t ->
          let a = arm t s.sp_class s.sp_sites in
          Ok (attempt ~fuel t a, a.a_desc))

(** {1 The campaign} *)

(** One (tool × fault-class) cell of the canonical detection matrix. *)
type cell = {
  cl_tool : string;
  cl_prog : string;
  cl_class : fclass;
  cl_sites : int;  (** sites armed in the full-set trial *)
  cl_flagged : bool;
  cl_verdict : string;
  cl_repro : repro option;  (** minimized, present iff flagged *)
}

(* the canonical matrix program: recursion, branches, stores, two trap
   numbers — every non-OS fault class has live sites on it *)
let matrix_prog = "fib"

(* the OS matrix program: open/read/write/close over a real file, with
   writes the deny policy refuses — every OS-surface class has live sites *)
let os_matrix_prog = "os-copy"

let instrument_all ~fuel tools =
  let progs = Corpus.all () in
  let exe = List.assoc matrix_prog progs in
  let os_exe, os_spec =
    match lookup_prog os_matrix_prog with
    | Some (exe, Some spec) -> (exe, spec)
    | _ -> failwith ("missing os corpus program " ^ os_matrix_prog)
  in
  List.concat_map
    (fun tool ->
      [
        (tool, instrument ~fuel tool (matrix_prog, exe));
        (tool, instrument ~fuel ~os:os_spec tool (os_matrix_prog, os_exe));
      ])
    tools

(** [matrix ~fuel insts] — for every tool and every applicable fault
    class: arm {e all} sites, demand a flagged verdict, then minimize to a
    single-site reproducer. The acceptance gate is
    [List.for_all (fun c -> c.cl_flagged) cells]. *)
let matrix ~fuel (insts : (string * (inst, string) result) list) : cell list =
  List.concat_map
    (fun (tool, it) ->
      match it with
      | Error m ->
          [
            {
              cl_tool = tool;
              cl_prog = matrix_prog;
              cl_class = Stray_store;
              cl_sites = 0;
              cl_flagged = false;
              cl_verdict = "error:" ^ m;
              cl_repro = None;
            };
          ]
      | Ok t ->
          List.filter_map
            (fun cls ->
              let menu = sites t cls in
              if menu = [] then None
              else
                let idxs = List.init (List.length menu) Fun.id in
                let full = attempt ~fuel t (arm t cls idxs) in
                let repro =
                  if not full.at_flagged then None
                  else
                    let min_sites, min_at = minimize ~fuel t cls idxs in
                    let at = Option.value ~default:full min_at in
                    let a = arm t cls min_sites in
                    Some
                      {
                        rx_tool = tool;
                        rx_prog = t.i_prog;
                        rx_class = cls;
                        rx_sites = min_sites;
                        rx_desc = a.a_desc;
                        rx_verdict = at.at_verdict;
                        rx_dclass = at.at_dclass;
                        rx_anchor = at.at_anchor;
                      }
                in
                Some
                  {
                    cl_tool = tool;
                    cl_prog = t.i_prog;
                    cl_class = cls;
                    cl_sites = List.length idxs;
                    cl_flagged = full.at_flagged;
                    cl_verdict = full.at_verdict;
                    cl_repro = repro;
                  })
            all_classes)
    insts

(** [hunt ~fuel ~budget insts] — the coverage-guided stage: the scheduler
    runs over (tool × fault-class) arms with sites cycled within each arm,
    hunting {e distinct violation signatures}
    (verdict refined by divergence kind and anchor pc) exactly as the SEF
    fuzzing loop hunts diagnostic signatures. Returns the flagged
    single-site reproducers, the distinct-signature count, the attempt
    count, and how many trials crashed. *)
let hunt ~fuel ~budget (insts : (string * (inst, string) result) list) :
    repro list * int * int * int =
  let good =
    Array.of_list
      (List.filter_map
         (fun (tool, it) ->
           match it with Ok t -> Some (tool, t) | Error _ -> None)
         insts)
  in
  (* arms are (inst index, class): a tool appears once per instrumented
     program (fib and the OS matrix program), so the index — not the tool
     name — addresses the instrumentation *)
  let arms =
    List.concat_map
      (fun gi ->
        let _, t = good.(gi) in
        List.filter_map
          (fun cls -> if sites t cls = [] then None else Some (gi, cls))
          all_classes)
      (List.init (Array.length good) Fun.id)
  in
  if arms = [] || budget <= 0 then ([], 0, 0, 0)
  else begin
    let sched =
      Sched.make ~prefix:"eel.inject.cover"
        ~label:(fun (gi, cls) ->
          let tool, t = good.(gi) in
          Printf.sprintf "%s:%s:%s" tool t.i_prog (class_name cls))
        (Array.of_list arms)
    in
    let repros = ref [] and crashes = ref 0 in
    for _ = 1 to budget do
      let (gi, cls) as a = Sched.next sched in
      let tool, t = good.(gi) in
      let menu = sites t cls in
      let site = Sched.attempts_of sched a mod List.length menu in
      let armed = arm t cls [ site ] in
      let at = attempt ~fuel t armed in
      if at.at_crash then incr crashes;
      if at.at_flagged then
        repros :=
          {
            rx_tool = tool;
            rx_prog = t.i_prog;
            rx_class = cls;
            rx_sites = [ site ];
            rx_desc = armed.a_desc;
            rx_verdict = at.at_verdict;
            rx_dclass = at.at_dclass;
            rx_anchor = at.at_anchor;
          }
          :: !repros;
      ignore (Sched.observe sched a ~signature:at.at_signature)
    done;
    (List.rev !repros, Sched.distinct sched, budget, !crashes)
  end

(** [clean_sweep ~fuel tools] — the false-positive gate: every tool over
    every corpus program (base and OS-mode), {e unmodified}, must verify
    without a divergence or violation. OS-mode trials go through
    {!Toolbox.measure} so SFI gets its interposition world and declared
    suppression, exactly as the drivers run it. Returns (trials, false
    violations, crashes). *)
let clean_sweep ~fuel tools : int * int * int =
  let progs = Corpus.all () in
  let os_progs = Corpus.all_os () in
  let total = ref 0 and bad = ref 0 and crashes = ref 0 in
  List.iter
    (fun tool ->
      List.iter
        (fun (prog, exe) ->
          incr total;
          match
            try
              `R
                (Diag.guard (fun () ->
                     match Toolbox.apply tool mach exe with
                     | Ok ap -> ap
                     | Error m -> Diag.fail (Diag.Exe_error { what = m })))
            with exn -> `Crash (Printexc.to_string exn)
          with
          | `Crash _ -> incr crashes
          | `R (Error _) -> incr bad
          | `R (Ok ap) -> (
              match
                try
                  `R
                    (Diffexec.verify_edit ~fuel ~norm_b:ap.Toolbox.ap_norm_b
                       ~block_of:ap.Toolbox.ap_block_of
                       ~contract:ap.Toolbox.ap_contract exe
                       ap.Toolbox.ap_edited)
                with exn -> `Crash (Printexc.to_string exn)
              with
              | `Crash _ -> incr crashes
              | `R (Error _) -> incr bad
              | `R (Ok er) ->
                  if
                    Diffexec.is_divergence
                      er.Diffexec.er_report.Diffexec.rp_verdict
                  then (
                    ignore prog;
                    incr bad)))
        progs;
      List.iter
        (fun (prog, exe, spec) ->
          incr total;
          match
            try `R (Toolbox.measure ~fuel ~os:spec ~prog tool mach exe)
            with exn -> `Crash (Printexc.to_string exn)
          with
          | `Crash _ -> incr crashes
          | `R (Error _) -> incr bad
          | `R (Ok ms) ->
              if ms.Toolbox.ms_entry.Eel_obs.Ledger.le_verdict <> "equivalent"
              then incr bad)
        os_progs)
    tools;
  (!total, !bad, !crashes)

(** {1 Environment faults}

    No detection demanded here — a bit-flip may be semantically dead, a
    fuel boundary is truncation by definition. What is demanded is the
    never-crash guarantee: every trial returns a verdict or a typed
    [Diag] error. *)

let storm_src =
  {|
        mov 200, %l0
loop:   mov 65, %o0
        ta 3
        subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 1
        nop
|}

(** [env_sweep ~seed ~fuel ()] returns (trials, crashes). *)
let env_sweep ~seed ~fuel () : int * int =
  let trials = ref 0 and crashes = ref 0 in
  let guard f =
    incr trials;
    try ignore (f ()) with
    | Stack_overflow -> incr crashes
    | exn ->
        incr crashes;
        if Sys.getenv_opt "EEL_INJECT_DEBUG" <> None then
          Printf.eprintf "env trial %d crashed: %s\n%!" !trials
            (Printexc.to_string exn)
  in
  let progs = Corpus.all () in
  let exe = List.assoc matrix_prog progs in
  match instrument ~fuel "qpt2" (matrix_prog, exe) with
  | Error _ ->
      (* front end refused the clean corpus program: count it and stop —
         the matrix stage will report the real failure *)
      (1, 1)
  | Ok t ->
      let verify ?fuel:f ?limit ?pokes_b edited =
        Diffexec.verify_edit
          ~fuel:(Option.value ~default:fuel f)
          ?limit ?pokes_b ~norm_b:t.i_ap.Toolbox.ap_norm_b
          ~contract:t.i_ap.Toolbox.ap_contract t.i_orig edited
      in
      let edited = t.i_ap.Toolbox.ap_edited in
      (* fuel exhaustion at exact boundaries, including around the
         original run's full length *)
      let n =
        match Diffexec.execute ~fuel exe with
        | Ok r -> r.Diffexec.r_insns
        | Error _ -> 64
      in
      List.iter
        (fun f -> guard (fun () -> verify ~fuel:(max 1 f) edited))
        [ 1; 2; 3; 17; n - 1; n; n + 1 ];
      (* tiny observation logs *)
      List.iter
        (fun limit -> guard (fun () -> verify ~limit edited))
        [ 1; 4; 64 ];
      (* image bit-flips in the edited text, through the full load path *)
      for k = 0 to 5 do
        guard (fun () ->
            let r = Mutate.rng (seed + k) in
            let bytes = Mutate.apply r Mutate.Bit_flip_text (Mutate.copy edited) in
            match Sef.load bytes with
            | Error _ -> ()
            | Ok mut -> ignore (verify mut))
      done;
      (* bit-flipped originals pushed through carve + edit (the front end
         under Diag.guard), not just the emulator *)
      for k = 0 to 3 do
        guard (fun () ->
            let r = Mutate.rng (seed + 100 + k) in
            let bytes = Mutate.apply r Mutate.Bit_flip_text (Mutate.copy exe) in
            match Sef.load bytes with
            | Error _ -> ()
            | Ok mut ->
                ignore
                  (Diag.guard (fun () ->
                       match Toolbox.apply "qpt2" mach mut with
                       | Ok ap -> ap
                       | Error m -> Diag.fail (Diag.Exe_error { what = m }))))
      done;
      (* wild poke plans: out of range, misaligned, negative, mid-run text
         corruption — all must degrade, never raise *)
      guard (fun () ->
          verify
            ~pokes_b:
              [
                { Emu.pk_at = 0; pk_addr = -4; pk_value = 1 };
                { Emu.pk_at = 1; pk_addr = max_int - 3; pk_value = 1 };
                { Emu.pk_at = 2; pk_addr = 0x10001; pk_value = 1 };
                { Emu.pk_at = 10; pk_addr = exe.Sef.entry; pk_value = 0 };
                { Emu.pk_at = 50; pk_addr = exe.Sef.entry + 8; pk_value = 0xFFFFFFFF };
              ]
            edited);
      (* tiny work budgets through the whole front end *)
      List.iter
        (fun b ->
          guard (fun () ->
              Diffexec.identity_roundtrip ~fuel
                ~budget:(Diag.budget ~stage:"inject-env" b)
                ~mach exe))
        [ 64; 4096; 1 lsl 20 ];
      (* trap storm under a tiny observation log *)
      guard (fun () ->
          match Eel_sparc.Asm.assemble storm_src with
          | Error m -> failwith m
          | Ok storm -> (
              match instrument ~fuel "qpt2" ("storm", storm) with
              | Error _ -> ()
              | Ok st ->
                  ignore
                    (Diffexec.verify_edit ~fuel ~limit:128
                       ~norm_b:st.i_ap.Toolbox.ap_norm_b
                       ~contract:st.i_ap.Toolbox.ap_contract storm
                       st.i_ap.Toolbox.ap_edited)));
      (!trials, !crashes)

(** {1 The whole campaign} *)

type outcome = {
  o_cells : cell list;
  o_repros : repro list;  (** deduped, minimized, matrix + hunt *)
  o_injected : int;  (** matrix cells armed *)
  o_caught : int;  (** matrix cells flagged *)
  o_crashes : int;  (** crashes anywhere in the campaign *)
  o_hunt_attempts : int;
  o_hunt_distinct : int;
  o_clean_total : int;
  o_clean_bad : int;  (** clean-corpus false violations (must be 0) *)
  o_env_trials : int;
}

(** Did the campaign meet the acceptance bar? 100% detection, zero
    crashes, zero false violations. *)
let passed o =
  o.o_caught = o.o_injected && o.o_injected > 0 && o.o_crashes = 0
  && o.o_clean_bad = 0

let publish (o : outcome) =
  let g name v = Metrics.set (Metrics.gauge ("eel.inject." ^ name)) (float_of_int v) in
  g "injected" o.o_injected;
  g "caught" o.o_caught;
  g "crashes" o.o_crashes;
  g "clean_bad" o.o_clean_bad;
  g "hunt_distinct" o.o_hunt_distinct;
  g "reproducers" (List.length o.o_repros);
  List.iter
    (fun c ->
      g
        (Printf.sprintf "%s.%s" c.cl_tool (class_name c.cl_class))
        (if c.cl_flagged then 1 else 0))
    o.o_cells

(** [campaign ?seed ?fuel ?budget ()] — matrix, guided hunt, clean sweep
    and environment sweep, in that order; reproducers triaged across the
    matrix and the hunt. *)
let campaign ?(seed = 42) ?(fuel = Diffexec.default_fuel) ?(budget = 48) () :
    outcome =
  let insts = instrument_all ~fuel Toolbox.names in
  let cells = matrix ~fuel insts in
  let hunt_repros, hunt_distinct, hunt_attempts, hunt_crashes =
    hunt ~fuel ~budget insts
  in
  let clean_total, clean_bad, clean_crashes =
    clean_sweep ~fuel Toolbox.names
  in
  let env_trials, env_crashes = env_sweep ~seed ~fuel () in
  let matrix_crashes =
    List.length
      (List.filter
         (fun c ->
           String.length c.cl_verdict >= 6
           && String.sub c.cl_verdict 0 6 = "crash:")
         cells)
  in
  let repros =
    triage (List.filter_map (fun c -> c.cl_repro) cells @ hunt_repros)
  in
  let o =
    {
      o_cells = cells;
      o_repros = repros;
      o_injected = List.length cells;
      o_caught = List.length (List.filter (fun c -> c.cl_flagged) cells);
      o_crashes = matrix_crashes + hunt_crashes + clean_crashes + env_crashes;
      o_hunt_attempts = hunt_attempts;
      o_hunt_distinct = hunt_distinct;
      o_clean_total = clean_total;
      o_clean_bad = clean_bad;
      o_env_trials = env_trials;
    }
  in
  publish o;
  o
