(** Differential execution oracle: does editing preserve behaviour?

    EEL's core claim (paper §3.3, §5) is that a fully-linked executable can
    be edited without changing what it {e does}: "run-time code ensures that
    control passes to the correct edited instruction", dispatch tables are
    rewritten consistently, and the edited SPEC binaries "produce the same
    output". The paper validates this indirectly, by running edited
    benchmarks; Datalog Disassembly's methodology is stronger — round-trip
    real binaries through the rewriter and {e check} functional equivalence.
    This module is that methodology made executable:

    - {!execute} runs one image under {!Eel_emu.Emu} with the
      observable-event sink installed, capturing traps (with arguments),
      stores (with address and value), and the terminal event — exit, fault
      or fuel exhaustion — as one bounded log;
    - {!compare_runs} is the lockstep comparator: it walks the two logs
      index-by-index and classifies the first divergence as an
      {e event-kind mismatch}, a {e value mismatch}, or a
      {e fault asymmetry} — or the whole pair as {e equivalent},
      {e fuel-truncated-equal} (neither side can be refuted under the
      shared budget) or {e both-fault};
    - {!identity_roundtrip} is the round-trip oracle: load → CFG (hidden
      routines drained) → {e no-op edit} → finalize (which runs
      {!Eel.Edit.verify} on every routine, surfacing violations as
      structured {!Eel_robust.Diag} errors) → emit → run both images and
      require event-equivalence.

    Two normalizations make the comparison exact rather than heuristic:

    + {e memory geometry}: both images are loaded with headroom chosen so
      their address spaces have identical size, hence identical initial
      stack pointers — stack traffic compares address-for-address;
    + {e code pointers}: an edited run observes edited code addresses
      (e.g. a spilled return address after [call]); the oracle inverts the
      executable's original→edited address map ({!Eel.Executable.edited_address_map})
      and maps such values back before comparing.

    Results are exported through [eel.diff.*] metrics and trace spans, so
    divergence rates appear in the same observability namespace as every
    other pipeline measurement. *)

module Emu = Eel_emu.Emu
module Tier2 = Eel_emu.Tier2
module Sef = Eel_sef.Sef
module E = Eel.Executable
module Diag = Eel_robust.Diag
module Trace = Eel_obs.Trace
module Metrics = Eel_obs.Metrics
module Contract = Eel_equiv.Contract

(** Default shared fuel budget for a differential run: small enough that a
    hostile mutant cannot stall a fuzzing campaign, large enough that every
    corpus program runs to completion. *)
let default_fuel = 2_000_000

(** {1 Running one side} *)

(** How a run ended. Mirrors the terminal observable event — {!Emu.Ob_exit},
    {!Emu.Ob_fault} or {!Emu.Ob_fuel} — as a summary value. *)
type stop = S_exit of int | S_fault of string | S_fuel

let stop_name = function
  | S_exit _ -> "exit"
  | S_fault _ -> "fault"
  | S_fuel -> "fuel"

let pp_stop fmt = function
  | S_exit c -> Format.fprintf fmt "exit %d" c
  | S_fault m -> Format.fprintf fmt "fault: %s" m
  | S_fuel -> Format.fprintf fmt "out of fuel"

(** One side of a differential comparison: the bounded observable-event
    log plus end-of-run machine state. *)
type run = {
  r_stop : stop;
  r_events : Emu.obs_event array;  (** retained events, execution order *)
  r_total : int;  (** all events, including any dropped past the bound *)
  r_truncated : bool;
  r_filtered : int;  (** events a contract filter masked at record time *)
  r_filtered_stores : int;  (** masked events that were stores *)
  r_filtered_traps : int;  (** masked events that were traps *)
  r_filtered_syscalls : int;  (** masked events that were OS syscalls *)
  r_out : string;
  r_insns : int;
  r_regs : int array;  (** final register file *)
  r_mem : Bytes.t;  (** final memory image (contract checks read it) *)
  r_profile : Emu.profile option;  (** ground-truth profile, when requested *)
}

(** [execute ?fuel ?limit ?headroom exe] loads and runs [exe] with the
    observable-event sink installed. Machine faults and fuel exhaustion are
    {e data} here, not errors — they end the log like any other terminal
    event. [Error _] is reserved for images the emulator cannot even load
    (hostile geometry), reported as a structured {!Diag.error} so drivers
    degrade like the rest of the front end.

    [profile] additionally collects the ground-truth execution profile;
    [filter] installs a record-time event filter with access to the live
    machine (the contract oracle masks an edit's declared side effects
    there, where the stack pointer is still known); [pokes] installs a
    deterministic environment-fault plan ({!Emu.poke}) — the injection
    campaign corrupts chosen words mid-run through it; [os] installs the
    OS layer (lib/os) with fresh per-run state built from the spec, so
    the run's syscalls surface as {!Emu.Ob_syscall} events.

    [tier] selects the execution engine ({!Tier2.tier}); the default is
    {!Tier2.Block} — the block-compiled tier is event-identical to the
    interpreter (the test suite pins this corpus-wide) and the engine
    itself falls back to tier-1 whenever per-instruction instrumentation
    (a profile or a poke plan) is armed, so callers need not care.
    [~predecode:false] without an explicit [tier] means {!Tier2.Interp}. *)
let execute ?(fuel = default_fuel) ?limit ?headroom ?(profile = false) ?filter
    ?predecode ?tier ?(pokes = []) ?os (exe : Sef.t) : (run, Diag.error) result
    =
  let tier =
    match (tier, predecode) with
    | Some tr, _ -> tr
    | None, Some false -> Tier2.Interp
    | None, _ -> Tier2.Block
  in
  let predecode = tier <> Tier2.Interp in
  match
    try Ok (Emu.load ?headroom ~predecode exe)
    with Emu.Fault m -> Error (Diag.Exe_error { what = "emulator load: " ^ m })
  with
  | Error e -> Error e
  | Ok t ->
      (if tier = Tier2.Block then ignore (Tier2.attach t));
      (match os with
      | None -> ()
      | Some spec -> ignore (Eel_os.Os.install t spec));
      let log = Emu.obs_log ?limit () in
      Emu.set_obs t (Some log);
      let prof =
        if profile then (
          let p = Emu.create_profile () in
          Emu.set_profile t (Some p);
          Some p)
        else None
      in
      (match filter with
      | None -> ()
      | Some keep -> Emu.set_obs_filter t (Some (fun ev -> keep t ev)));
      if pokes <> [] then Emu.set_pokes t pokes;
      let stop =
        match Emu.run ~fuel t with
        | r -> S_exit r.Emu.exit_code
        | exception Emu.Fault m -> S_fault m
        | exception Emu.Out_of_fuel -> S_fuel
      in
      Ok
        {
          r_stop = stop;
          r_events = Emu.obs_events_array log;
          r_total = Emu.obs_total log;
          r_truncated = Emu.obs_truncated log;
          r_filtered = Emu.obs_filtered log;
          r_filtered_stores = Emu.obs_filtered_stores log;
          r_filtered_traps = Emu.obs_filtered_traps log;
          r_filtered_syscalls = Emu.obs_filtered_syscalls log;
          r_out = Emu.output t;
          r_insns = Emu.insns_executed t;
          r_regs = Emu.registers t;
          r_mem = t.Emu.mem;
          r_profile = prof;
        }

(** {1 The lockstep comparator} *)

(** First-divergence classification (the comparator's contract). *)
type dclass =
  | D_kind  (** the two sides produced different {e kinds} of event *)
  | D_value  (** same event kind, different payload (address/value/code) *)
  | D_fault_asym  (** one side faulted where the other did something else *)
  | D_contract
      (** the mismatch is the edited side's own instrumentation stepping
          outside its contract (e.g. a counter store to an undeclared
          address), not a program-behaviour change *)

let dclass_name = function
  | D_kind -> "kind-mismatch"
  | D_value -> "value-mismatch"
  | D_fault_asym -> "fault-asymmetry"
  | D_contract -> "contract"

type verdict =
  | Equivalent  (** both exited; logs and output identical *)
  | Fuel_truncated_equal
      (** identical up to where fuel (or the log bound) ran out on at
          least one side: equivalence is neither proven nor refuted *)
  | Both_fault  (** both faulted after identical observable prefixes *)
  | Diverged of dclass
  | Contract_violation
      (** the edit broke its own contract: either an undeclared side
          effect surfaced in the event stream, or a post-run check on the
          instrumentation's output failed *)

let verdict_name = function
  | Equivalent -> "equivalent"
  | Fuel_truncated_equal -> "fuel-truncated-equal"
  | Both_fault -> "both-fault"
  | Diverged c -> "diverged:" ^ dclass_name c
  | Contract_violation -> "contract-violation"

let is_divergence = function
  | Diverged _ | Contract_violation -> true
  | _ -> false

(** Where (and how) the two runs first disagreed. [dv_pc] is the
    {e original-side} program counter — the address a tool-writer can find
    in the unedited binary; [dv_block] anchors it in CFG terms when the
    oracle has the analysis at hand. For a {!Contract_violation} classified
    from the event stream, [dv_pc] is instead the {e edited-side} pc of the
    offending instrumentation event — the undeclared side effect has no
    original-side home by definition. *)
type divergence = {
  dv_class : dclass;
  dv_index : int;  (** event index of the first mismatch *)
  dv_pc : int;
  dv_block : (string * int) option;  (** routine name, block id *)
  dv_what : string;
  dv_orig : Emu.obs_event option;
  dv_edit : Emu.obs_event option;
  dv_reg_delta : (int * int * int) list;
      (** registers differing at end of run: (reg, original, edited);
          normalized values compared, raw values reported *)
}

type report = {
  rp_verdict : verdict;
  rp_divergence : divergence option;
  rp_events : int * int;  (** total observable events per side *)
  rp_insns : int * int;  (** dynamic instructions per side *)
  rp_stops : stop * stop;  (** how each side ended *)
}

(* Event payload comparison under per-side value normalization. [Ok] means
   the events match; [Error] classifies and describes the mismatch. The pc
   is never part of the payload: the two images execute at different
   addresses by construction. *)
let same_event ~norm_a ~norm_b (a : Emu.obs_event) (b : Emu.obs_event) :
    (unit, dclass * string) result =
  match (a, b) with
  | ( Emu.Ob_trap { num = na; arg = aa; _ },
      Emu.Ob_trap { num = nb; arg = ab; _ } ) ->
      if na <> nb then
        Error (D_value, Printf.sprintf "trap %d vs trap %d" na nb)
      else if norm_a aa <> norm_b ab then
        Error (D_value, Printf.sprintf "trap %d arg 0x%x vs 0x%x" na aa ab)
      else Ok ()
  | ( Emu.Ob_store { addr = adra; width = wa; value = va; _ },
      Emu.Ob_store { addr = adrb; width = wb; value = vb; _ } ) ->
      if adra <> adrb || wa <> wb then
        Error
          ( D_value,
            Printf.sprintf "store%d [0x%x] vs store%d [0x%x]" wa adra wb adrb )
      else if norm_a va <> norm_b vb then
        Error
          ( D_value,
            Printf.sprintf "store%d [0x%x]: value 0x%x vs 0x%x" wa adra va vb )
      else Ok ()
  | ( Emu.Ob_syscall { num = na; a0 = a0a; a1 = a1a; a2 = a2a; ret = ra;
                       err = ea; data = da; _ },
      Emu.Ob_syscall { num = nb; a0 = a0b; a1 = a1b; a2 = a2b; ret = rb;
                       err = eb; data = db; _ } ) ->
      (* the whole call/return pair is the payload: number, arguments
         (addresses normalized per side — a buffer in added data moves),
         success/error, result, and the transferred-byte checksum. The pc
         is reporting metadata, as everywhere. *)
      if na <> nb then
        Error (D_value, Printf.sprintf "syscall %d vs syscall %d" na nb)
      else if ea <> eb then
        Error
          ( D_value,
            Printf.sprintf "syscall %d: %s vs %s" na
              (if ea then "error" else "success")
              (if eb then "error" else "success") )
      else if a0a <> a0b || norm_a a1a <> norm_b a1b || a2a <> a2b then
        Error
          ( D_value,
            Printf.sprintf "syscall %d args (0x%x,0x%x,0x%x) vs (0x%x,0x%x,0x%x)"
              na a0a a1a a2a a0b a1b a2b )
      else if ra <> rb then
        Error (D_value, Printf.sprintf "syscall %d returned %d vs %d" na ra rb)
      else if da <> db then
        Error
          ( D_value,
            Printf.sprintf "syscall %d transferred data 0x%x vs 0x%x" na da db )
      else Ok ()
  | Emu.Ob_exit { code = ca; _ }, Emu.Ob_exit { code = cb; _ } ->
      if ca = cb then Ok ()
      else Error (D_value, Printf.sprintf "exit %d vs exit %d" ca cb)
  | Emu.Ob_fault _, Emu.Ob_fault _ ->
      (* fault messages embed image-specific pcs; two faults at the same
         point in the observable stream are the same behaviour *)
      Ok ()
  | Emu.Ob_fuel _, Emu.Ob_fuel _ -> Ok ()
  | Emu.Ob_fault _, _ | _, Emu.Ob_fault _ ->
      (D_fault_asym, "one side faulted") |> Result.error
  | _ ->
      Error
        ( D_kind,
          Format.asprintf "%a vs %a" Emu.pp_obs a Emu.pp_obs b )

let event_at (r : run) i =
  if i >= 0 && i < Array.length r.r_events then Some r.r_events.(i) else None

(* pc to anchor a divergence at index [i]: the original side's event there,
   falling back to its last retained event. *)
let anchor_pc (a : run) i =
  match event_at a i with
  | Some ev -> Emu.obs_pc ev
  | None ->
      if Array.length a.r_events > 0 then
        Emu.obs_pc a.r_events.(Array.length a.r_events - 1)
      else 0

let reg_delta ~norm_a ~norm_b (a : run) (b : run) =
  let n = min (Array.length a.r_regs) (Array.length b.r_regs) in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if norm_a a.r_regs.(i) <> norm_b b.r_regs.(i) then
      out := (i, a.r_regs.(i), b.r_regs.(i)) :: !out
  done;
  !out

(** [compare_runs ?norm_a ?norm_b ?block_of ?suspect a b] — the lockstep
    comparator. [a] is conventionally the original image's run, [b] the
    edited one; [norm_a]/[norm_b] normalize observed values (the oracle
    passes the inverse address map as [norm_b]); [block_of] maps an
    original pc to a (routine, block id) anchor for the report.

    [suspect] is the contract oracle's classifier: at the first mismatch,
    an edited-side event it recognizes as instrumentation traffic (a store
    to an address the original run never stores to) turns the verdict into
    {!Contract_violation} — the edit leaked an undeclared side effect —
    instead of a plain program-behaviour divergence. *)
let compare_runs ?(norm_a = fun v -> v) ?(norm_b = fun v -> v)
    ?(block_of = fun _ -> None) ?(suspect = fun (_ : Emu.obs_event) -> false)
    (a : run) (b : run) : report =
  let na = Array.length a.r_events and nb = Array.length b.r_events in
  let n = min na nb in
  let mk_divergence ?pc cls i what =
    let pc = match pc with Some pc -> pc | None -> anchor_pc a i in
    {
      dv_class = cls;
      dv_index = i;
      dv_pc = pc;
      dv_block = block_of pc;
      dv_what = what;
      dv_orig = event_at a i;
      dv_edit = event_at b i;
      dv_reg_delta = reg_delta ~norm_a ~norm_b a b;
    }
  in
  let finish verdict divergence =
    {
      rp_verdict = verdict;
      rp_divergence = divergence;
      rp_events = (a.r_total, b.r_total);
      rp_insns = (a.r_insns, b.r_insns);
      rp_stops = (a.r_stop, b.r_stop);
    }
  in
  (* scan the common prefix for the first mismatch *)
  let rec scan i =
    if i >= n then None
    else
      match (a.r_events.(i), b.r_events.(i)) with
      (* fuel exhaustion anywhere is truncation, never divergence: the
         exhausted side might have matched had it been allowed to continue
         (the edited image legitimately executes more instructions) *)
      | Emu.Ob_fuel _, _ | _, Emu.Ob_fuel _ -> Some (`Fuel, i)
      | ea, eb -> (
          match same_event ~norm_a ~norm_b ea eb with
          | Ok () -> scan (i + 1)
          | Error (cls, what) -> Some (`Mismatch (cls, what), i))
  in
  (* a mismatch whose edited-side event is recognizable instrumentation
     traffic is the edit breaking its contract, not the program changing
     behaviour; anchor the report at the offending edited-side pc *)
  let classify cls i what =
    match event_at b i with
    | Some ev when suspect ev ->
        finish Contract_violation
          (Some
             (mk_divergence ~pc:(Emu.obs_pc ev) D_contract i
                ("undeclared side effect: " ^ what)))
    | _ -> finish (Diverged cls) (Some (mk_divergence cls i what))
  in
  match scan 0 with
  | Some (`Fuel, i) ->
      (* both-fuel at the same index is the canonical fuel-truncated-equal;
         asymmetric fuel (one side exhausted where the other kept going) is
         still truncation, not refutation *)
      ignore i;
      finish Fuel_truncated_equal None
  | Some (`Mismatch (cls, what), i) -> classify cls i what
  | None ->
      if na <> nb then
        if a.r_truncated || b.r_truncated then finish Fuel_truncated_equal None
        else
          (* a complete log always ends in a terminal event, and terminal
             events stop execution — a longer log with an identical prefix
             means the shorter side stopped where the longer continued *)
          classify D_kind n
            (Printf.sprintf "%d observable events vs %d" a.r_total b.r_total)
      else if a.r_truncated || b.r_truncated then finish Fuel_truncated_equal None
      else
        match (a.r_stop, b.r_stop) with
        | S_fuel, _ | _, S_fuel -> finish Fuel_truncated_equal None
        | S_fault _, S_fault _ -> finish Both_fault None
        | S_exit _, S_exit _ ->
            if String.equal a.r_out b.r_out then finish Equivalent None
            else
              finish (Diverged D_value)
                (Some
                   (mk_divergence D_value n
                      (Printf.sprintf "output differs (%d vs %d bytes)"
                         (String.length a.r_out) (String.length b.r_out))))
        | _ ->
            (* equal logs but different stop kinds cannot happen (the stop
               is itself the final event); keep the comparator total *)
            finish (Diverged D_kind)
              (Some (mk_divergence D_kind (max 0 (n - 1)) "terminal mismatch"))

(** {1 Metrics} *)

let publish ?(prefix = "eel.diff") (rp : report) =
  let c name = Metrics.incr (Metrics.counter (prefix ^ "." ^ name)) in
  c "runs";
  (match rp.rp_verdict with
  | Equivalent -> c "equivalent"
  | Fuel_truncated_equal -> c "fuel_truncated_equal"
  | Both_fault -> c "both_fault"
  | Contract_violation -> c "contract_violation"
  | Diverged cls ->
      c "diverged";
      c ("class." ^ dclass_name cls));
  match rp.rp_divergence with
  | Some dv ->
      Metrics.set
        (Metrics.gauge (prefix ^ ".last_divergence_pc"))
        (float_of_int dv.dv_pc)
  | None -> ()

let obs_kind_name : Emu.obs_event -> string = function
  | Emu.Ob_trap _ -> "trap"
  | Emu.Ob_store _ -> "store"
  | Emu.Ob_syscall _ -> "syscall"
  | Emu.Ob_exit _ -> "exit"
  | Emu.Ob_fault _ -> "fault"
  | Emu.Ob_fuel _ -> "fuel"

(* stable first-word tag of a fault message: "illegal", "misaligned",
   "memory", "division", ... *)
let fault_tag what =
  match String.index_opt what ' ' with
  | Some i -> String.sub what 0 i
  | None -> what

(** [coverage_signature rp] — the report compressed to a stable coverage
    key for the mutation scheduler: the verdict, refined by the diverging
    event's kind ([diverged:value-mismatch:store]) or, for both-fault, the
    fault category ([both-fault:illegal]). Finer than {!verdict_name} so
    rich mutation classes keep discovering new behaviour worth budget. *)
let coverage_signature rp =
  match rp.rp_verdict with
  | Diverged cls ->
      let kind =
        match rp.rp_divergence with
        | Some { dv_orig = Some ev; _ } -> ":" ^ obs_kind_name ev
        | Some { dv_edit = Some ev; _ } -> ":" ^ obs_kind_name ev
        | _ -> ""
      in
      "diverged:" ^ dclass_name cls ^ kind
  | Contract_violation -> (
      match rp.rp_divergence with
      | Some { dv_edit = Some ev; _ } ->
          "contract-violation:" ^ obs_kind_name ev
      | _ -> "contract-violation:check")
  | Both_fault -> (
      match rp.rp_stops with
      | S_fault wa, _ -> "both-fault:" ^ fault_tag wa
      | _, S_fault wb -> "both-fault:" ^ fault_tag wb
      | _ -> "both-fault")
  | v -> verdict_name v

(** {1 Image-level comparison and the round-trip oracle} *)

(* Load both images into address spaces of identical size, so the initial
   stack pointers (and hence all stack traffic) coincide. *)
let equalized_headroom a b =
  let ha = Sef.high_addr a and hb = Sef.high_addr b in
  let top = max ha hb + Emu.default_headroom in
  (top - ha, top - hb)

(** [compare_images ?fuel ?limit ?norm_b ?block_of a b] runs two arbitrary
    images under the shared fuel budget and compares their observable
    behaviour. Used directly by the fuzz driver (mutant vs. its own no-op
    edited form) and by tests seeding known semantics-changing mutants. *)
let compare_images ?fuel ?limit ?norm_b ?block_of (a : Sef.t) (b : Sef.t) :
    (report, Diag.error) result =
  Trace.with_span "diff.compare" @@ fun () ->
  let head_a, head_b = equalized_headroom a b in
  match execute ?fuel ?limit ~headroom:head_a a with
  | Error e -> Error e
  | Ok ra -> (
      match execute ?fuel ?limit ~headroom:head_b b with
      | Error e -> Error e
      | Ok rb ->
          let rp = compare_runs ?norm_b ?block_of ra rb in
          publish rp;
          Ok rp)

(** [identity_roundtrip ?fuel ?limit ?diag ?budget ~mach exe] — the paper's
    correctness claim, made executable. The executable is pushed through
    the whole pipeline with {e no} edits accumulated: open (symbol-table
    refinement), every routine's CFG built and the hidden-routine queue
    drained, layout, post-edit invariant verification ({!Eel.Edit.verify},
    automatic — violations surface as [Error (Invariant_error _)], never as
    exceptions), image emission. Then original and edited images run under
    the same fuel budget and must be event-equivalent.

    [Ok report] describes the comparison; [Error e] means some front-end
    stage refused the input with a structured diagnostic — the oracle
    degrades exactly like the rest of the never-crash front end. *)
let identity_roundtrip ?fuel ?limit ?diag ?budget ~mach (exe : Sef.t) :
    (report, Diag.error) result =
  Trace.with_span "diff.oracle" @@ fun () ->
  let front =
    Diag.guard (fun () ->
        match E.open_exe ?diag ?budget mach exe with
        | Error e -> Diag.fail e
        | Ok t ->
            (* force every CFG and drain hidden-routine discovery: the
               no-op edit must cover the whole program *)
            ignore (E.jump_stats t);
            let edited =
              Trace.with_span "diff.emit" (fun () -> E.to_edited_sef t ())
            in
            (t, edited))
  in
  match front with
  | Error e -> Error e
  | Ok (t, edited) ->
      (* an edited run that spills a code pointer (return address) observes
         the edited address; map it back before comparing *)
      let norm_b = E.inverse_address_norm t in
      let block_of pc = E.block_of_addr t pc in
      let head_a, head_b = equalized_headroom exe edited in
      (match
         Trace.with_span "diff.run.original" (fun () ->
             execute ?fuel ?limit ~headroom:head_a exe)
       with
      | Error e -> Error e
      | Ok ra -> (
          match
            Trace.with_span "diff.run.edited" (fun () ->
                execute ?fuel ?limit ~headroom:head_b edited)
          with
          | Error e -> Error e
          | Ok rb ->
              let rp = compare_runs ~norm_b ~block_of ra rb in
              publish rp;
              Ok rp))

(** {1 The contract oracle: verifying real edits}

    {!identity_roundtrip} certifies the no-op edit; {!verify_edit} certifies
    a {e real} one. The tool supplies its {!Contract} alongside the edited
    image; the oracle then:

    + runs the original with ground-truth profiling on;
    + runs the edited image with the contract installed as the emulator's
      record-time event filter, so declared instrumentation traffic
      (counter stores, trace-buffer appends, red-zone spills) never enters
      the log — what remains must match the original event-for-event;
    + normalizes the original's store addresses under the contract's
      [addr_norm] (SFI's clamp) and the edited side's values under the
      inverse address map, exactly like the identity oracle;
    + classifies any mismatching edited-side store to an address the
      original run never touched as a {!Contract_violation} — the edit
      leaked an undeclared side effect — rather than a program divergence;
    + on equivalence, runs the contract's post-run checks (qpt2's counter
      words vs the profile's ground truth), demoting a broken promise to
      {!Contract_violation} as well.

    Results are published under [eel.equiv.*]. *)

(** A {!report} plus how much edited-run traffic the contract masked —
    "equivalent" always comes with "and this much was masked to get there". *)
type edit_report = {
  er_report : report;
  er_masked : int;  (** edited-run events filtered under the contract *)
  er_masked_stores : int;  (** masked events that were stores *)
  er_masked_traps : int;  (** masked events that were traps *)
  er_masked_sys : int;
      (** masked syscall events: the edited run's filtered denials plus
          the original-side calls dropped under a declared suppression *)
  er_profile_orig : Emu.profile option;
      (** the original run's ground-truth profile (always collected) *)
  er_profile_edit : Emu.profile option;
      (** the edited run's profile, when [~profiles:true]; the overhead
          ledger diffs the two *)
}

(** [os] runs both sides under the OS layer with that world spec; [os_b]
    overrides the {e edited} side's spec (SFI interposition verifies the
    edited image under a deny policy while the original runs unrestricted,
    with the suppression contract-declared). *)
let verify_edit ?fuel ?limit ?(norm_b = fun v -> v) ?block_of ?pokes_b
    ?(profiles = false) ?os ?os_b ~(contract : Contract.t) (orig : Sef.t)
    (edited : Sef.t) : (edit_report, Diag.error) result =
  Trace.with_span "equiv.verify"
    ~args:[ ("tool", contract.Contract.ct_tool) ]
  @@ fun () ->
  let head_a, head_b = equalized_headroom orig edited in
  let os_edit = match os_b with Some _ -> os_b | None -> os in
  match
    Trace.with_span "equiv.run.original" (fun () ->
        execute ?fuel ?limit ~headroom:head_a ~profile:true ?os orig)
  with
  | Error e -> Error e
  | Ok ra -> (
      let keep t ev = not (Contract.declared contract ~sp:(Emu.sp t) ev) in
      match
        Trace.with_span "equiv.run.edited" (fun () ->
            execute ?fuel ?limit ~headroom:head_b ~profile:profiles
              ~filter:keep ?pokes:pokes_b ?os:os_edit edited)
      with
      | Error e -> Error e
      | Ok rb ->
          (* the original's events as the edited program would observe
             them: store addresses pushed through the edit's transform,
             syscall fds through the fd transform *)
          let ra =
            if
              contract.Contract.ct_addr_norm <> None
              || contract.Contract.ct_fd_norm <> None
            then
              {
                ra with
                r_events =
                  Array.map (Contract.normalize_orig contract) ra.r_events;
              }
            else ra
          in
          (* a declared syscall suppression removes the matching
             {e successful} calls from the original stream post-hoc (the
             edited side's denials were filtered at record time) *)
          let suppressed_orig = ref 0 in
          let ra =
            if contract.Contract.ct_sys_suppress = None then ra
            else begin
              let keep_evs =
                Array.of_list
                  (List.filter
                     (fun ev ->
                       if Contract.suppressed_orig contract ev then begin
                         incr suppressed_orig;
                         false
                       end
                       else true)
                     (Array.to_list ra.r_events))
              in
              {
                ra with
                r_events = keep_evs;
                r_total = ra.r_total - !suppressed_orig;
              }
            end
          in
          (* an edited-side store to an address the original run never
             stores to is instrumentation traffic, not the program; an
             edited-side syscall error return the original run never
             produces for that call — or a syscall number it never makes —
             is an undeclared interposition *)
          let orig_stores = Hashtbl.create 1024 in
          let orig_sys = Hashtbl.create 16 in
          let orig_sys_err = Hashtbl.create 16 in
          Array.iter
            (function
              | Emu.Ob_store { addr; _ } -> Hashtbl.replace orig_stores addr ()
              | Emu.Ob_syscall { num; err; _ } ->
                  Hashtbl.replace orig_sys num ();
                  if err then Hashtbl.replace orig_sys_err num ()
              | _ -> ())
            ra.r_events;
          let suspect = function
            | Emu.Ob_store { addr; _ } -> not (Hashtbl.mem orig_stores addr)
            | Emu.Ob_syscall { num; err; _ } ->
                (not (Hashtbl.mem orig_sys num))
                || (err && not (Hashtbl.mem orig_sys_err num))
            | _ -> false
          in
          let rp = compare_runs ~norm_b ?block_of ~suspect ra rb in
          let rp =
            match (rp.rp_verdict, ra.r_profile) with
            | Equivalent, Some profile -> (
                match Contract.run_checks contract ~profile ~mem:rb.r_mem with
                | Ok () -> rp
                | Error what ->
                    (* event streams matched but the instrumentation's own
                       output broke its promise *)
                    {
                      rp with
                      rp_verdict = Contract_violation;
                      rp_divergence =
                        Some
                          {
                            dv_class = D_contract;
                            dv_index = Array.length rb.r_events;
                            dv_pc = 0;
                            dv_block = None;
                            dv_what = what;
                            dv_orig = None;
                            dv_edit = None;
                            dv_reg_delta = [];
                          };
                    })
            | _ -> rp
          in
          publish ~prefix:"eel.equiv" rp;
          Metrics.incr ~by:rb.r_filtered
            (Metrics.counter "eel.equiv.masked_events");
          Ok
            {
              er_report = rp;
              er_masked = rb.r_filtered + !suppressed_orig;
              er_masked_stores = rb.r_filtered_stores;
              er_masked_traps = rb.r_filtered_traps;
              er_masked_sys = rb.r_filtered_syscalls + !suppressed_orig;
              er_profile_orig = ra.r_profile;
              er_profile_edit = rb.r_profile;
            })

(** {1 Rendering} *)

let pp_divergence fmt dv =
  Format.fprintf fmt "%s at event %d, pc 0x%x" (dclass_name dv.dv_class)
    dv.dv_index dv.dv_pc;
  (match dv.dv_block with
  | Some (rname, bid) -> Format.fprintf fmt " (%s, block %d)" rname bid
  | None -> ());
  Format.fprintf fmt ": %s" dv.dv_what;
  match dv.dv_reg_delta with
  | [] -> ()
  | ds ->
      let shown = List.filteri (fun i _ -> i < 6) ds in
      Format.fprintf fmt "; regs differ:";
      List.iter
        (fun (r, va, vb) ->
          Format.fprintf fmt " r%d=0x%x/0x%x" r va vb)
        shown;
      if List.length ds > 6 then
        Format.fprintf fmt " (+%d more)" (List.length ds - 6)

let pp_report fmt rp =
  let ea, eb = rp.rp_events and ia, ib = rp.rp_insns in
  Format.fprintf fmt "%s (events %d/%d, insns %d/%d)"
    (verdict_name rp.rp_verdict) ea eb ia ib;
  match rp.rp_divergence with
  | Some dv -> Format.fprintf fmt "@\n  %a" pp_divergence dv
  | None -> ()

(* machine-readable verdicts (eel_diff --json) *)

let esc s = Trace.json_escape s

let stop_to_json = function
  | S_exit c -> Printf.sprintf {|{"kind":"exit","code":%d}|} c
  | S_fault m -> Printf.sprintf {|{"kind":"fault","what":"%s"}|} (esc m)
  | S_fuel -> {|{"kind":"fuel"}|}

let divergence_to_json dv =
  let block =
    match dv.dv_block with
    | Some (rname, bid) -> Printf.sprintf {|["%s",%d]|} (esc rname) bid
    | None -> "null"
  in
  Printf.sprintf
    {|{"class":"%s","index":%d,"pc":%d,"block":%s,"what":"%s"}|}
    (dclass_name dv.dv_class) dv.dv_index dv.dv_pc block (esc dv.dv_what)

(** [report_to_json ?masked rp] — one report as a JSON object (verdict,
    per-side event/instruction totals, stops, masked-event count, and the
    first divergence when there is one). *)
let report_to_json ?(masked = 0) rp =
  let ea, eb = rp.rp_events and ia, ib = rp.rp_insns in
  let sa, sb = rp.rp_stops in
  Printf.sprintf
    {|{"verdict":"%s","events":[%d,%d],"insns":[%d,%d],"masked":%d,"stops":[%s,%s],"divergence":%s}|}
    (verdict_name rp.rp_verdict) ea eb ia ib masked (stop_to_json sa)
    (stop_to_json sb)
    (match rp.rp_divergence with
    | Some dv -> divergence_to_json dv
    | None -> "null")
