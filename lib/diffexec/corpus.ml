(** The differential-oracle corpus: every example executable the identity
    round-trip oracle must prove event-equivalent.

    Hand-written programs cover each observable-event source and each
    control idiom the editor must preserve — delayed/annulled branches,
    jump-table dispatch, recursion that spills return addresses (the code
    pointers the oracle's address-map normalization exists for), every
    memory-access width — and the {!Eel_workload.Gen} programs reproduce
    the compiler-shaped workloads the rest of the evaluation runs on.

    Corpus programs never use [ta 7] (cycle counter): the edited image
    legitimately executes extra translation instructions, so cycle counts
    are the one observable that {e should} differ between equivalent
    images. *)

module Gen = Eel_workload.Gen

let exit0 = "        mov 0, %o0\n        ta 1\n        nop\n"

(* arithmetic + condition-code loop: traps carry computed values *)
let countdown =
  {|
main:   mov 5, %l0
Lloop:  mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
  ^ exit0

(* delayed and annulled control transfer, taken and untaken *)
let delay_slots =
  {|
main:   mov 1, %l0
        ba Lnext
        add %l0, 10, %l0
Lnext:  cmp %l0, 11
        be,a Ltaken
        add %l0, 100, %l0
        add %l0, 1000, %l0
Ltaken: mov %l0, %o0
        ta 2
        cmp %l0, 0
        be,a Ldead
        add %l0, 7, %l0
        mov %l0, %o0
        ta 2
Ldead:
|}
  ^ exit0

(* every store width, so the Ob_store payloads span widths 1/2/4/8 *)
let mem_widths =
  {|
main:   set buf, %l0
        mov 258, %l1
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
        sth %l1, [%l0 + 8]
        lduh [%l0 + 8], %o0
        ta 2
        stb %l1, [%l0 + 12]
        ldub [%l0 + 12], %o0
        ta 2
        mov 7, %l2
        mov 9, %l3
        std %l2, [%l0 + 16]
        ldd [%l0 + 16], %o2
        add %o2, %o3, %o0
        ta 2
|}
  ^ exit0
  ^ {|
        .bss
        .align 8
buf:    .space 32
|}

(* register-indirect dispatch through a .data address table: the editor
   must translate the table's code pointers *)
let jump_table =
  {|
main:   mov 0, %l7
        mov 0, %l3
Lcase:  set table, %l0
        sll %l3, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
c0:     add %l7, 100, %l7
        ba Lnext
        nop
c1:     add %l7, 200, %l7
        ba Lnext
        nop
c2:     add %l7, 400, %l7
Lnext:  add %l3, 1, %l3
        cmp %l3, 3
        bl Lcase
        nop
        mov %l7, %o0
        ta 2
|}
  ^ exit0
  ^ {|
        .data
        .align 4
table:  .word c0, c1, c2
|}

(* recursion with explicit %o7 spills: stored return addresses are code
   pointers — the values the oracle's inverse address map normalizes *)
let fib =
  {|
main:   mov 10, %o0
        call fib
        nop
        ta 2
|}
  ^ exit0
  ^ {|
fib:    cmp %o0, 2
        bl Lbase
        nop
        sub %sp, 16, %sp
        st %o7, [%sp]
        st %o0, [%sp + 4]
        call fib
        sub %o0, 1, %o0
        st %o0, [%sp + 8]
        ld [%sp + 4], %o0
        call fib
        sub %o0, 2, %o0
        ld [%sp + 8], %o1
        add %o0, %o1, %o0
        ld [%sp], %o7
        add %sp, 16, %sp
        retl
        nop
Lbase:  retl
        mov 1, %o0
|}

(* the write syscall: trap argument is a pointer into .data *)
let hello =
  {|
main:   set msg, %o0
        mov 6, %o1
        ta 4
        mov 42, %o0
        ta 2
|}
  ^ exit0
  ^ {|
        .data
msg:    .ascii "hello\n"
|}

let sources : (string * string) list =
  [
    ("countdown", countdown);
    ("delay-slots", delay_slots);
    ("mem-widths", mem_widths);
    ("jump-table", jump_table);
    ("fib", fib);
    ("hello", hello);
    ("gcc-small", Gen.program { Gen.default with seed = 42; routines = 12 });
    ("gcc-tiny", Gen.program { Gen.default with seed = 7; routines = 8 });
    ( "sunpro-small",
      Gen.program
        { Gen.default with seed = 42; routines = 10; style = Gen.Sunpro } );
    ( "sunpro-tiny",
      Gen.program
        { Gen.default with seed = 3; routines = 6; style = Gen.Sunpro } );
    ("memory-bound", Gen.memory_bound ~iters:4 ~size_words:64 ());
  ]

(** Every corpus program, assembled. The corpus is part of the test
    contract: a program that stops assembling is a build break, not a
    skipped case. *)
let all () =
  List.map
    (fun (name, src) ->
      match Eel_sparc.Asm.assemble src with
      | Ok exe -> (name, exe)
      | Error m -> failwith (Printf.sprintf "corpus %s: %s" name m))
    sources

(** {1 The OS-mode corpus}

    I/O-bound programs over the {!Eel_os} syscall ABI: each pairs an
    assembly source with the {!Eel_os.Spec} world it runs against. The
    programs branch on [read] results and error flags, never on [write]
    results — the property that lets the same binaries stay
    event-equivalent under SFI's write-denying interposition policy.

    Like [ta 7] (cycle counter) in the base corpus, [brk] is excluded
    here: its return value is the image's data-segment end, which an
    edited (grown) image legitimately moves — the one syscall result that
    {e should} differ between equivalent images. [brk] is exercised by
    the OS unit tests instead. *)

module Os_spec = Eel_os.Spec

(* OS trap immediates: Abi.trap_base (16) + the Unix-v4 syscall number *)
let t_exit = 16 + Eel_os.Abi.sys_exit
let t_read = 16 + Eel_os.Abi.sys_read
let t_write = 16 + Eel_os.Abi.sys_write
let t_open = 16 + Eel_os.Abi.sys_open
let t_close = 16 + Eel_os.Abi.sys_close

let os_exit0 = Printf.sprintf "        mov 0, %%o0\n        ta %d\n        nop\n" t_exit

(* write to stdout and stderr (both reach the emulator's output stream),
   then exit through the OS call rather than the builtin trap *)
let os_hello =
  Printf.sprintf
    {|
main:   mov 1, %%o0
        set msg, %%o1
        mov 15, %%o2
        ta %d
        mov 2, %%o0
        set msg2, %%o1
        mov 8, %%o2
        ta %d
|}
    t_write t_write
  ^ os_exit0
  ^ {|
        .data
msg:    .ascii "hello, os world"
msg2:   .ascii "and err\n"
|}

(* stdin-to-stdout pump: the canonical read-until-EOF loop *)
let os_cat =
  Printf.sprintf
    {|
main:
Lrd:    mov 0, %%o0
        set buf, %%o1
        mov 16, %%o2
        ta %d
        cmp %%o0, 0
        be Lfin
        nop
        mov %%o0, %%o2
        mov 1, %%o0
        set buf, %%o1
        ta %d
        ba Lrd
        nop
Lfin:
|}
    t_read t_write
  ^ os_exit0
  ^ {|
        .bss
        .align 4
buf:    .space 16
|}

(* upcasing filter: per-byte loads/stores between the read and the write,
   so the OS stream interleaves with ordinary observable stores *)
let os_upcase =
  Printf.sprintf
    {|
main:
Lrd:    mov 0, %%o0
        set buf, %%o1
        mov 12, %%o2
        ta %d
        cmp %%o0, 0
        be Lfin
        nop
        mov %%o0, %%l4
        mov 0, %%l0
        set buf, %%l1
Lbyte:  ldub [%%l1 + %%l0], %%l2
        cmp %%l2, 97
        bl Lskip
        nop
        cmp %%l2, 122
        bg Lskip
        nop
        sub %%l2, 32, %%l2
        stb %%l2, [%%l1 + %%l0]
Lskip:  add %%l0, 1, %%l0
        cmp %%l0, %%l4
        bl Lbyte
        nop
        mov 1, %%o0
        set buf, %%o1
        mov %%l4, %%o2
        ta %d
        ba Lrd
        nop
Lfin:
|}
    t_read t_write
  ^ os_exit0
  ^ {|
        .bss
        .align 4
buf:    .space 12
|}

(* byte counter: accumulates read lengths in a delay slot, reports the
   total through the builtin putint trap (the two trap surfaces coexist),
   and exits with the count — the --exit-status satellite's test program *)
let os_count =
  Printf.sprintf
    {|
main:   mov 0, %%l5
Lrd:    mov 0, %%o0
        set buf, %%o1
        mov 8, %%o2
        ta %d
        cmp %%o0, 0
        be Lfin
        nop
        ba Lrd
        add %%l5, %%o0, %%l5
Lfin:   mov %%l5, %%o0
        ta 2
        mov %%l5, %%o0
        ta %d
        nop
        .bss
        .align 4
buf:    .space 8
|}
    t_read t_exit

(* file copy through open/read/write/close; write results are deliberately
   unused, so SFI's deny-write-fd>2 policy suppresses the writes without
   changing any later control flow *)
let os_copy =
  Printf.sprintf
    {|
main:   set inpath, %%o0
        mov 0, %%o1
        ta %d
        bcs Lbad
        nop
        mov %%o0, %%l6
        set outpath, %%o0
        mov 1, %%o1
        ta %d
        bcs Lbad
        nop
        mov %%o0, %%l7
Lcp:    mov %%l6, %%o0
        set buf, %%o1
        mov 10, %%o2
        ta %d
        cmp %%o0, 0
        be Lcls
        nop
        mov %%o0, %%o2
        mov %%l7, %%o0
        set buf, %%o1
        ta %d
        ba Lcp
        nop
Lcls:   mov %%l6, %%o0
        ta %d
        mov %%l7, %%o0
        ta %d
|}
    t_open t_open t_read t_write t_close t_close
  ^ os_exit0
  ^ Printf.sprintf
      {|
Lbad:   ta 2
        mov 1, %%o0
        ta %d
        nop
        .bss
        .align 4
buf:    .space 10
        .data
inpath: .asciz "in.txt"
outpath: .asciz "out.txt"
|}
      t_exit

(* config-reading dispatcher: the first byte of a config file selects the
   branch — data-dependent control flow rooted in file contents *)
let os_config =
  Printf.sprintf
    {|
main:   set cfgpath, %%o0
        mov 0, %%o1
        ta %d
        bcs Lbad
        nop
        mov %%o0, %%l6
        mov %%l6, %%o0
        set buf, %%o1
        mov 4, %%o2
        ta %d
        cmp %%o0, 1
        bl Lbad
        nop
        mov %%l6, %%o0
        ta %d
        set buf, %%l1
        ldub [%%l1], %%l2
        cmp %%l2, 97
        be La
        nop
        cmp %%l2, 98
        be Lb
        nop
        mov 300, %%o0
        ba Lout
        nop
La:     mov 100, %%o0
        ba Lout
        nop
Lb:     mov 200, %%o0
Lout:   ta 2
|}
    t_open t_read t_close
  ^ os_exit0
  ^ {|
Lbad:   mov 99, %o0
        ta 2
        mov 1, %o0
|}
  ^ Printf.sprintf "        ta %d\n        nop\n" t_exit
  ^ {|
        .bss
        .align 4
buf:    .space 4
        .data
cfgpath: .asciz "app.cfg"
|}

(* the error surface: every errno path the ABI defines, each checked with
   the carry-flag convention (bcc = "this call unexpectedly succeeded").
   The bad-write probe uses fd 0 — stdin is unwritable (EBADF) but inside
   the standard streams, so SFI's deny-write-fd>2 policy never rewrites
   the errno this program goes on to print *)
let os_err =
  Printf.sprintf
    {|
main:   set missing, %%o0
        mov 0, %%o1
        ta %d
        bcc Lbad
        nop
        ta 2
        mov 0, %%o0
        set buf, %%o1
        mov 4, %%o2
        ta %d
        bcc Lbad
        nop
        ta 2
        mov 1, %%o0
        set buf, %%o1
        mov 4, %%o2
        ta %d
        bcc Lbad
        nop
        ta 2
        mov 7, %%o0
        ta %d
        bcc Lbad
        nop
        ta 2
        ta 35
        bcc Lbad
        nop
        ta 2
|}
    t_open t_write t_read t_close
  ^ os_exit0
  ^ Printf.sprintf
      {|
Lbad:   mov 999, %%o0
        ta 2
        mov 1, %%o0
        ta %d
        nop
        .bss
        .align 4
buf:    .space 4
        .data
missing: .asciz "no-such-file"
|}
      t_exit

let spec_of_world (w : Gen.os_world) =
  Os_spec.make ~files:w.Gen.ow_files ~stdin:w.Gen.ow_stdin ()

let os_gen seed =
  let src, world = Gen.os_program { Gen.default with seed } in
  (src, spec_of_world world)

(** name -> (source, world). Hand-written programs covering each syscall,
    each errno path and each I/O shape, plus seeded generator variants
    (one per {!Gen.os_program} shape). *)
let os_sources : (string * (string * Os_spec.t)) list =
  [
    ("os-hello", (os_hello, Os_spec.empty));
    ( "os-cat",
      (os_cat, Os_spec.make ~stdin:"The quick brown fox.\nJumps over.\n" ()) );
    ( "os-upcase",
      (os_upcase, Os_spec.make ~stdin:"Mixed Case input 123 ok?\n" ()) );
    ( "os-count",
      (os_count, Os_spec.make ~stdin:"count the stdin bytes, please\n" ()) );
    ( "os-copy",
      ( os_copy,
        Os_spec.make ~files:[ ("in.txt", "payload to copy, 33 bytes long.\n") ]
          () ) );
    ( "os-config",
      (os_config, Os_spec.make ~files:[ ("app.cfg", "b=fast\n") ] ()) );
    ("os-err", (os_err, Os_spec.empty));
    ("os-gen-filter", os_gen 7);
    ("os-gen-count", os_gen 3);
    ("os-gen-copy", os_gen 0);
    ("os-gen-config", os_gen 1);
  ]

(** The OS corpus, assembled; same contract as {!all}. *)
let all_os () =
  List.map
    (fun (name, (src, spec)) ->
      match Eel_sparc.Asm.assemble src with
      | Ok exe -> (name, exe, spec)
      | Error m -> failwith (Printf.sprintf "os corpus %s: %s" name m))
    os_sources
