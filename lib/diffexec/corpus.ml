(** The differential-oracle corpus: every example executable the identity
    round-trip oracle must prove event-equivalent.

    Hand-written programs cover each observable-event source and each
    control idiom the editor must preserve — delayed/annulled branches,
    jump-table dispatch, recursion that spills return addresses (the code
    pointers the oracle's address-map normalization exists for), every
    memory-access width — and the {!Eel_workload.Gen} programs reproduce
    the compiler-shaped workloads the rest of the evaluation runs on.

    Corpus programs never use [ta 7] (cycle counter): the edited image
    legitimately executes extra translation instructions, so cycle counts
    are the one observable that {e should} differ between equivalent
    images. *)

module Gen = Eel_workload.Gen

let exit0 = "        mov 0, %o0\n        ta 1\n        nop\n"

(* arithmetic + condition-code loop: traps carry computed values *)
let countdown =
  {|
main:   mov 5, %l0
Lloop:  mov %l0, %o0
        ta 2
        subcc %l0, 1, %l0
        bne Lloop
        nop
|}
  ^ exit0

(* delayed and annulled control transfer, taken and untaken *)
let delay_slots =
  {|
main:   mov 1, %l0
        ba Lnext
        add %l0, 10, %l0
Lnext:  cmp %l0, 11
        be,a Ltaken
        add %l0, 100, %l0
        add %l0, 1000, %l0
Ltaken: mov %l0, %o0
        ta 2
        cmp %l0, 0
        be,a Ldead
        add %l0, 7, %l0
        mov %l0, %o0
        ta 2
Ldead:
|}
  ^ exit0

(* every store width, so the Ob_store payloads span widths 1/2/4/8 *)
let mem_widths =
  {|
main:   set buf, %l0
        mov 258, %l1
        st %l1, [%l0]
        ld [%l0], %o0
        ta 2
        sth %l1, [%l0 + 8]
        lduh [%l0 + 8], %o0
        ta 2
        stb %l1, [%l0 + 12]
        ldub [%l0 + 12], %o0
        ta 2
        mov 7, %l2
        mov 9, %l3
        std %l2, [%l0 + 16]
        ldd [%l0 + 16], %o2
        add %o2, %o3, %o0
        ta 2
|}
  ^ exit0
  ^ {|
        .bss
        .align 8
buf:    .space 32
|}

(* register-indirect dispatch through a .data address table: the editor
   must translate the table's code pointers *)
let jump_table =
  {|
main:   mov 0, %l7
        mov 0, %l3
Lcase:  set table, %l0
        sll %l3, 2, %l1
        ld [%l0 + %l1], %l2
        jmp %l2
        nop
c0:     add %l7, 100, %l7
        ba Lnext
        nop
c1:     add %l7, 200, %l7
        ba Lnext
        nop
c2:     add %l7, 400, %l7
Lnext:  add %l3, 1, %l3
        cmp %l3, 3
        bl Lcase
        nop
        mov %l7, %o0
        ta 2
|}
  ^ exit0
  ^ {|
        .data
        .align 4
table:  .word c0, c1, c2
|}

(* recursion with explicit %o7 spills: stored return addresses are code
   pointers — the values the oracle's inverse address map normalizes *)
let fib =
  {|
main:   mov 10, %o0
        call fib
        nop
        ta 2
|}
  ^ exit0
  ^ {|
fib:    cmp %o0, 2
        bl Lbase
        nop
        sub %sp, 16, %sp
        st %o7, [%sp]
        st %o0, [%sp + 4]
        call fib
        sub %o0, 1, %o0
        st %o0, [%sp + 8]
        ld [%sp + 4], %o0
        call fib
        sub %o0, 2, %o0
        ld [%sp + 8], %o1
        add %o0, %o1, %o0
        ld [%sp], %o7
        add %sp, 16, %sp
        retl
        nop
Lbase:  retl
        mov 1, %o0
|}

(* the write syscall: trap argument is a pointer into .data *)
let hello =
  {|
main:   set msg, %o0
        mov 6, %o1
        ta 4
        mov 42, %o0
        ta 2
|}
  ^ exit0
  ^ {|
        .data
msg:    .ascii "hello\n"
|}

let sources : (string * string) list =
  [
    ("countdown", countdown);
    ("delay-slots", delay_slots);
    ("mem-widths", mem_widths);
    ("jump-table", jump_table);
    ("fib", fib);
    ("hello", hello);
    ("gcc-small", Gen.program { Gen.default with seed = 42; routines = 12 });
    ("gcc-tiny", Gen.program { Gen.default with seed = 7; routines = 8 });
    ( "sunpro-small",
      Gen.program
        { Gen.default with seed = 42; routines = 10; style = Gen.Sunpro } );
    ( "sunpro-tiny",
      Gen.program
        { Gen.default with seed = 3; routines = 6; style = Gen.Sunpro } );
    ("memory-bound", Gen.memory_bound ~iters:4 ~size_words:64 ());
  ]

(** Every corpus program, assembled. The corpus is part of the test
    contract: a program that stops assembling is a build break, not a
    skipped case. *)
let all () =
  List.map
    (fun (name, src) ->
      match Eel_sparc.Asm.assemble src with
      | Ok exe -> (name, exe)
      | Error m -> failwith (Printf.sprintf "corpus %s: %s" name m))
    sources
